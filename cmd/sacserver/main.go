// Command sacserver serves SAC search over HTTP — the system prototype of
// the paper's Section 6 future work.
//
// Usage:
//
//	sacserver -dataset brightkite -scale 0.05 -addr :8080
//
// Then:
//
//	curl localhost:8080/api/health
//	curl -X POST localhost:8080/api/query -d '{"q":17,"k":4,"algo":"exact+"}'
//	curl -X POST localhost:8080/api/batch -d '{"queries":[{"q":17,"k":4},{"q":23,"k":4}]}'
//	curl -X POST localhost:8080/api/checkin -d '{"v":17,"x":0.5,"y":0.5}'
//
// The process runs a configured http.Server (read/write/idle timeouts, not
// the bare ListenAndServe defaults) and shuts down gracefully on SIGINT or
// SIGTERM: the listener closes, in-flight queries drain up to the grace
// period, then the snapshot writer stops.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os/signal"
	"syscall"
	"time"

	"sacsearch/internal/dataset"
	"sacsearch/internal/server"
)

func main() {
	var (
		name     = flag.String("dataset", "brightkite", "dataset preset to serve")
		scale    = flag.Float64("scale", 0.05, "dataset scale in (0,1]")
		addr     = flag.String("addr", ":8080", "listen address")
		qTimeout = flag.Duration("query-timeout", 15*time.Second, "per-request query deadline")
		maxBody  = flag.Int64("max-body", 1<<20, "maximum POST body size in bytes")
		grace    = flag.Duration("grace", 20*time.Second, "shutdown drain period for in-flight requests")
	)
	flag.Parse()

	ds, err := dataset.Load(*name, *scale)
	if err != nil {
		log.Fatalf("sacserver: %v", err)
	}
	// Capture the counts before the server's writer goroutine takes
	// ownership of the graph — reading it afterwards would race with writes
	// already arriving on the listener.
	vertices, edges := ds.Graph.NumVertices(), ds.Graph.NumEdges()
	api := server.NewWithConfig(ds.Name, ds.Graph, server.Config{
		QueryTimeout: *qTimeout,
		MaxBodyBytes: *maxBody,
	})
	defer api.Close()

	// ReadHeaderTimeout bounds slow-loris headers; WriteTimeout leaves room
	// for the query deadline plus response encoding so the server never cuts
	// off a legitimate slow Exact before the API-level deadline does.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *qTimeout + 15*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("sacserver: serving %s (%d vertices, %d edges) on %s\n",
		ds.Name, vertices, edges, *addr)

	select {
	case err := <-errc:
		log.Fatalf("sacserver: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("sacserver: signal received, draining for up to %v", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("sacserver: shutdown: %v", err)
		}
		log.Printf("sacserver: drained, stopping snapshot writer")
	}
}
