// Package server implements the system prototype the paper's Section 6
// plans ("we will also develop a system prototype"): an HTTP JSON API over
// the SAC search library, the shape a geo-social backend (event
// recommendation, social marketing) would embed.
//
// Endpoints:
//
//	GET  /api/health            service, dataset and snapshot/writer status
//	GET  /api/algorithms        available algorithms and their parameters
//	GET  /api/vertex/{id}       one vertex: location, degree, core number
//	POST /api/query             one SAC query
//	POST /api/batch             many SAC queries, answered in parallel
//	POST /api/checkin           update one vertex's location (dynamic graphs)
//	POST /api/edge              insert or delete one friendship edge
//
// Concurrency model: snapshot isolation, no locks on the query path. A
// single writer goroutine (internal/snapshot.Engine) owns the mutable
// graph, applies check-ins and edge events in batches, and publishes
// immutable snapshots through an atomic pointer. Every query pins the
// current snapshot with one atomic load and runs on a pooled worker rebound
// to that snapshot — readers never block writers, writers never block
// readers, and a query observes exactly one published state from start to
// finish. Mutating requests return once the snapshot containing their write
// is published (read-your-writes). Each request carries a context with a
// per-request deadline: an abandoned client or an expired deadline cancels
// the query at its next loop boundary instead of burning CPU to completion.
// POST bodies are capped by http.MaxBytesReader; oversized payloads come
// back as 413 before any JSON is decoded.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"time"

	"sacsearch/internal/batch"
	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/snapshot"
	"sacsearch/internal/store"
)

// Config tunes a Server. The zero value serves defaults.
type Config struct {
	// QueryTimeout is the per-request deadline applied on top of the
	// client's own cancellation for /api/query and /api/batch, and the wait
	// bound for /api/checkin and /api/edge publication. Default 15s.
	QueryTimeout time.Duration
	// MaxBodyBytes caps every POST body; larger payloads are rejected with
	// 413 before decoding. Default 1 MiB.
	MaxBodyBytes int64
	// WriterQueue and WriterBatch configure the snapshot engine's event
	// queue capacity and maximum events applied per publication (defaults
	// from internal/snapshot).
	WriterQueue int
	WriterBatch int
}

func (c Config) queryTimeout() time.Duration {
	if c.QueryTimeout > 0 {
		return c.QueryTimeout
	}
	return 15 * time.Second
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 1 << 20
}

// Server serves SAC queries over one spatial graph.
type Server struct {
	name string
	eng  *snapshot.Engine
	st   *store.Store // non-nil when serving a durable store
	cfg  Config
	mux  *http.ServeMux
}

// New creates a server over g with default configuration. The server takes
// ownership of g (its writer goroutine mutates it); release the writer with
// Close when done. name labels the dataset in /api/health.
func New(name string, g *graph.Graph) *Server {
	return NewWithConfig(name, g, Config{})
}

// NewWithConfig creates a server over g with explicit configuration.
func NewWithConfig(name string, g *graph.Graph, cfg Config) *Server {
	return newServer(name, snapshot.New(g, snapshot.Options{
		QueueLen: cfg.WriterQueue,
		BatchMax: cfg.WriterBatch,
	}), nil, cfg)
}

// NewWithStore creates a server over an open durable store: writes ride the
// store's write-ahead log (write-visible implies logged), /api/health gains
// the durability stats, and Close shuts the store down (final checkpoint
// included). The store's engine options win over cfg.WriterQueue/WriterBatch
// — they were fixed at store.Open.
func NewWithStore(name string, st *store.Store, cfg Config) *Server {
	return newServer(name, st.Engine(), st, cfg)
}

func newServer(name string, eng *snapshot.Engine, st *store.Store, cfg Config) *Server {
	s := &Server{
		name: name,
		eng:  eng,
		st:   st,
		cfg:  cfg,
		mux:  http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /api/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /api/vertex/{id}", s.handleVertex)
	s.mux.HandleFunc("POST /api/query", s.handleQuery)
	s.mux.HandleFunc("POST /api/batch", s.handleBatch)
	s.mux.HandleFunc("POST /api/checkin", s.handleCheckin)
	s.mux.HandleFunc("POST /api/edge", s.handleEdge)
	return s
}

// Close stops the writer goroutine (and, for a durable server, checkpoints
// and closes the store). In-flight queries finish against their pinned
// snapshots; pending writes fail with an error.
func (s *Server) Close() {
	if s.st != nil {
		_ = s.st.Close()
		return
	}
	s.eng.Close()
}

// Engine exposes the snapshot engine (benchmarks and embedding callers).
func (s *Server) Engine() *snapshot.Engine { return s.eng }

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler directly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// --- wire types -----------------------------------------------------------

// CircleJSON is a JSON-friendly circle.
type CircleJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	R float64 `json:"r"`
}

// StatsJSON carries the per-query work counters.
type StatsJSON struct {
	CandidateSize     int    `json:"candidateSize"`
	FeasibilityChecks int    `json:"feasibilityChecks"`
	BinaryIters       int    `json:"binaryIters"`
	ElapsedMicros     int64  `json:"elapsedMicros"`
	Algorithm         string `json:"algorithm"`
}

// QueryRequest is one SAC query. The epsilon fields are pointers so the wire
// distinguishes "absent → server default" from an explicit zero: AppFast(0)
// is a legitimate request (it degenerates to the AppInc answer) that a plain
// float64 field could never express.
type QueryRequest struct {
	Q    graph.V  `json:"q"`
	K    int      `json:"k"`
	Algo string   `json:"algo"`           // appfast | appinc | appacc | exact+ | exact | theta
	EpsF *float64 `json:"epsF,omitempty"` // AppFast (default 0.5)
	EpsA *float64 `json:"epsA,omitempty"` // AppAcc / Exact+ (defaults 0.5 / 1e-3)
	// Theta is θ-SAC's radius (required when algo = "theta").
	Theta float64 `json:"theta,omitempty"`
}

// QueryResponse is one SAC answer.
type QueryResponse struct {
	Q       graph.V    `json:"q"`
	K       int        `json:"k"`
	Members []graph.V  `json:"members"`
	MCC     CircleJSON `json:"mcc"`
	Delta   float64    `json:"delta"`
	Stats   StatsJSON  `json:"stats"`
}

// BatchRequest is a set of queries answered together. Epsilons are pointers
// for the same absent-versus-zero reason as QueryRequest.
type BatchRequest struct {
	Queries []struct {
		Q graph.V `json:"q"`
		K int     `json:"k"`
	} `json:"queries"`
	Algo    string   `json:"algo,omitempty"`
	EpsF    *float64 `json:"epsF,omitempty"`
	EpsA    *float64 `json:"epsA,omitempty"`
	Workers int      `json:"workers,omitempty"`
}

// BatchResponse carries per-query answers; failed queries have Error set.
type BatchResponse struct {
	Items []BatchItemJSON `json:"items"`
}

// BatchItemJSON is one batch answer.
type BatchItemJSON struct {
	Q       graph.V    `json:"q"`
	K       int        `json:"k"`
	Members []graph.V  `json:"members,omitempty"`
	MCC     CircleJSON `json:"mcc"`
	Error   string     `json:"error,omitempty"`
}

// CheckinRequest moves one vertex.
type CheckinRequest struct {
	V graph.V `json:"v"`
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// EdgeRequest inserts or deletes one undirected friendship edge.
type EdgeRequest struct {
	U  graph.V `json:"u"`
	V  graph.V `json:"v"`
	Op string  `json:"op"` // insert | delete
}

// EdgeResponse reports the outcome of an edge update. Changed is false when
// the request was a no-op (inserting a present edge, deleting an absent
// one); Edges is the undirected edge count afterwards.
type EdgeResponse struct {
	OK      bool `json:"ok"`
	Changed bool `json:"changed"`
	Edges   int  `json:"edges"`
}

// errorJSON is the error envelope.
type errorJSON struct {
	Error string `json:"error"`
}

// --- handlers ---------------------------------------------------------------

// handleHealth reports the published snapshot's epochs, the writer queue
// depth and the worker-pool size, so operators can see publication lag at a
// glance: a growing writerQueue with a stalled snapshotSeq means the writer
// is behind.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	snap := s.eng.Current()
	health := map[string]any{
		"status":        "ok",
		"dataset":       s.name,
		"vertices":      snap.Graph().NumVertices(),
		"edges":         snap.Edges(),
		"topoEpoch":     snap.TopoEpoch(),
		"locEpoch":      snap.LocEpoch(),
		"snapshotSeq":   snap.Seq(),
		"writerQueue":   s.eng.QueueDepth(),
		"eventsApplied": s.eng.Applied(),
		"poolClones":    s.eng.PoolClones(),
		"durable":       s.st != nil,
	}
	if s.st != nil {
		// Durability at a glance: a growing walSegments with a stalled
		// lastCheckpointSeq (or a non-empty checkpointError) means the
		// checkpointer fell behind and recovery time is growing.
		ds := s.st.Stats()
		health["walSegments"] = ds.WalSegments
		health["walBytes"] = ds.WalBytes
		health["walLastSeq"] = ds.WalLastSeq
		health["lastCheckpointSeq"] = ds.LastCheckpointSeq
		health["fsyncPolicy"] = ds.FsyncPolicy
		if ds.CheckpointError != "" {
			health["checkpointError"] = ds.CheckpointError
		}
	}
	writeJSON(w, http.StatusOK, health)
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, []map[string]any{
		{"name": "appfast", "ratio": "2+epsF", "params": []string{"epsF"}},
		{"name": "appinc", "ratio": "2", "params": []string{}},
		{"name": "appacc", "ratio": "1+epsA", "params": []string{"epsA"}},
		{"name": "exact+", "ratio": "1", "params": []string{"epsA"}},
		{"name": "exact", "ratio": "1", "params": []string{}},
		{"name": "theta", "ratio": "-", "params": []string{"theta"}},
	})
}

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	snap := s.eng.Current()
	g := snap.Graph()
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 || id >= g.NumVertices() {
		writeJSON(w, http.StatusNotFound, errorJSON{fmt.Sprintf("unknown vertex %q", r.PathValue("id"))})
		return
	}
	v := graph.V(id)
	loc := g.Loc(v)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     v,
		"x":      loc.X,
		"y":      loc.Y,
		"degree": g.Degree(v),
		"core":   snap.CoreNumber(v),
	})
}

// decodeJSON decodes a POST body under the configured size cap, translating
// an exceeded cap into 413 and malformed JSON into 400. It reports whether
// decoding succeeded; on failure the response has been written.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeJSON(w, http.StatusRequestEntityTooLarge,
				errorJSON{fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit)})
			return false
		}
		writeJSON(w, http.StatusBadRequest, errorJSON{"invalid JSON: " + err.Error()})
		return false
	}
	return true
}

// requestCtx derives the per-request context: the client's own cancellation
// plus the server's query deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.queryTimeout())
}

// writeQueryError maps a query error onto a status code.
func writeQueryError(w http.ResponseWriter, err error) {
	status := http.StatusUnprocessableEntity
	switch {
	case errors.Is(err, core.ErrNoCommunity):
		status = http.StatusNotFound
	case errors.Is(err, core.ErrCanceled):
		// The deadline fired (a vanished client never reads the response, so
		// in practice this status reports server-side timeouts).
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorJSON{err.Error()})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	res, err := s.runQuery(ctx, req)
	if err != nil {
		writeQueryError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, toQueryResponse(req.Algo, res))
}

// epsOrDefault dereferences an optional wire epsilon. An explicit value is
// passed through verbatim — zero included — so clients can request
// AppFast(0); only an absent field falls back to the server default.
func epsOrDefault(p *float64, def float64) (float64, error) {
	if p == nil {
		return def, nil
	}
	if math.IsNaN(*p) || math.IsInf(*p, 0) {
		return 0, fmt.Errorf("server: epsilon %v is not finite", *p)
	}
	return *p, nil
}

// runQuery pins the current snapshot and dispatches one request on a pooled
// worker rebound to it — no locks anywhere on this path.
func (s *Server) runQuery(ctx context.Context, req QueryRequest) (*core.Result, error) {
	snap := s.eng.Current()
	searcher := snap.Get()
	defer snap.Put(searcher)
	switch req.Algo {
	case "", "appfast":
		epsF, err := epsOrDefault(req.EpsF, 0.5)
		if err != nil {
			return nil, err
		}
		return searcher.AppFastCtx(ctx, req.Q, req.K, epsF)
	case "appinc":
		return searcher.AppIncCtx(ctx, req.Q, req.K)
	case "appacc":
		epsA, err := epsOrDefault(req.EpsA, 0.5)
		if err != nil {
			return nil, err
		}
		return searcher.AppAccCtx(ctx, req.Q, req.K, epsA)
	case "exact+":
		epsA, err := epsOrDefault(req.EpsA, 1e-3)
		if err != nil {
			return nil, err
		}
		return searcher.ExactPlusCtx(ctx, req.Q, req.K, epsA)
	case "exact":
		return searcher.ExactCtx(ctx, req.Q, req.K)
	case "theta":
		if !(req.Theta > 0) || math.IsInf(req.Theta, 0) {
			return nil, fmt.Errorf("server: algo \"theta\" requires finite theta > 0")
		}
		return searcher.ThetaSACCtx(ctx, req.Q, req.K, req.Theta)
	default:
		return nil, fmt.Errorf("server: unknown algorithm %q", req.Algo)
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorJSON{"empty batch"})
		return
	}
	opt := batch.Options{Workers: req.Workers}
	if req.EpsF != nil {
		epsF, err := epsOrDefault(req.EpsF, 0)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
			return
		}
		// EpsFSet marks the value as deliberate so batch does not coerce an
		// explicit 0 (AppFast(0), the AppInc answer) back to its default.
		opt.EpsF, opt.EpsFSet = epsF, true
	}
	if req.EpsA != nil {
		epsA, err := epsOrDefault(req.EpsA, 0)
		if err == nil && (epsA <= 0 || epsA >= 1) {
			err = fmt.Errorf("server: epsA = %v must be in (0,1)", epsA)
		}
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
			return
		}
		opt.EpsA = epsA
	}
	switch req.Algo {
	case "", "appfast":
		opt.Algorithm = batch.AlgoAppFast
	case "appinc":
		opt.Algorithm = batch.AlgoAppInc
	case "appacc":
		opt.Algorithm = batch.AlgoAppAcc
	case "exact+":
		opt.Algorithm = batch.AlgoExactPlus
	case "exact":
		opt.Algorithm = batch.AlgoExact
	default:
		writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("unknown algorithm %q", req.Algo)})
		return
	}
	queries := make([]batch.Query, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = batch.Query{Q: q.Q, K: q.K}
	}
	// The whole batch runs pinned to one snapshot: the Snap is the worker
	// source, so every worker is rebound to the same published state and the
	// batch deadline cancels stragglers mid-algorithm.
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	items := batch.RunOn(ctx, s.eng.Current(), queries, opt)
	// A batch whose deadline actually cut queries short is a server-side
	// timeout, same as a single query's: report 503 rather than
	// 200-with-error-items, so status-keyed clients and monitors see it.
	// The signal is the items themselves, not ctx.Err() — a deadline that
	// fires in the instant after the last query completed should not throw
	// a fully successful batch away. (Partial results are discarded; the
	// client's retry re-runs the batch.)
	for _, it := range items {
		if it.Err != nil && errors.Is(it.Err, core.ErrCanceled) {
			writeJSON(w, http.StatusServiceUnavailable, errorJSON{"batch deadline exceeded: " + it.Err.Error()})
			return
		}
	}

	resp := BatchResponse{Items: make([]BatchItemJSON, len(items))}
	for i, it := range items {
		out := BatchItemJSON{Q: it.Q, K: it.K}
		if it.Err != nil {
			out.Error = it.Err.Error()
		} else {
			out.Members = it.Result.Members
			out.MCC = CircleJSON{X: it.Result.MCC.C.X, Y: it.Result.MCC.C.Y, R: it.Result.MCC.R}
		}
		resp.Items[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeWriteError maps a mutation error (checkin/edge) onto a status code.
func (s *Server) writeWriteError(w http.ResponseWriter, err error) {
	status := http.StatusUnprocessableEntity
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, snapshot.ErrClosed):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.Canceled):
		status = http.StatusServiceUnavailable
	case errors.Is(err, snapshot.ErrPersist):
		// The WAL refused the write; the engine is read-only until the
		// operator intervenes. 503, not 422 — the request was fine.
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, errorJSON{err.Error()})
}

func (s *Server) handleCheckin(w http.ResponseWriter, r *http.Request) {
	var req CheckinRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.V < 0 || int(req.V) >= s.eng.NumVertices() {
		writeJSON(w, http.StatusNotFound, errorJSON{fmt.Sprintf("unknown vertex %d", req.V)})
		return
	}
	// Reject non-finite coordinates before they reach the graph: NaN poisons
	// every distance sort it touches and ±Inf breaks geom.MCC, silently, on
	// queries that may run long after this request returned 200.
	if !geom.Finite(req.X) || !geom.Finite(req.Y) {
		writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("coordinates (%v, %v) must be finite", req.X, req.Y)})
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if err := s.eng.CheckIn(ctx, req.V, geom.Point{X: req.X, Y: req.Y}); err != nil {
		s.writeWriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleEdge mutates the friendship graph through the writer goroutine,
// which repairs the core decomposition incrementally and publishes a
// snapshot containing the change before this handler responds; queries
// pinned to older snapshots keep serving the pre-change state.
func (s *Server) handleEdge(w http.ResponseWriter, r *http.Request) {
	var req EdgeRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	for _, v := range [2]graph.V{req.U, req.V} {
		if v < 0 || int(v) >= s.eng.NumVertices() {
			writeJSON(w, http.StatusNotFound, errorJSON{fmt.Sprintf("unknown vertex %d", v)})
			return
		}
	}
	if req.U == req.V {
		writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("self-loop (%d,%d) rejected", req.U, req.V)})
		return
	}
	var insert bool
	switch req.Op {
	case "insert":
		insert = true
	case "delete":
		insert = false
	default:
		writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("unknown op %q (want insert or delete)", req.Op)})
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	changed, err := s.eng.UpdateEdge(ctx, req.U, req.V, insert)
	if err != nil {
		s.writeWriteError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, EdgeResponse{OK: true, Changed: changed, Edges: s.eng.Current().Edges()})
}

// toQueryResponse converts a core result to the wire shape.
func toQueryResponse(algo string, res *core.Result) QueryResponse {
	if algo == "" {
		algo = "appfast"
	}
	return QueryResponse{
		Q:       res.Query,
		K:       res.K,
		Members: res.Members,
		MCC:     CircleJSON{X: res.MCC.C.X, Y: res.MCC.C.Y, R: res.MCC.R},
		Delta:   res.Delta,
		Stats: StatsJSON{
			CandidateSize:     res.Stats.CandidateSize,
			FeasibilityChecks: res.Stats.FeasibilityChecks,
			BinaryIters:       res.Stats.BinaryIters,
			ElapsedMicros:     res.Stats.Elapsed.Microseconds(),
			Algorithm:         algo,
		},
	}
}

// writeJSON writes v with the given status; encoding errors are reported to
// the client only through a truncated body (the status line is already out).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
