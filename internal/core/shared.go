package core

import "sacsearch/internal/graph"

// Shared candidate plans. A batch of queries pinned to one snapshot repeats
// the same per-community work on every worker: the membership BFS, the
// induced CSR, and — for the binary-search algorithms — the prefix-
// feasibility oracle are all rebuilt per worker cache, even though they
// depend only on the (immutable) snapshot. A SharedPlans table front-loads
// that work once on a single builder searcher and shares it read-only:
//
//   - one membership BFS + induced CSR per distinct community per k
//     (k-core communities partition vertices per k, so the table fans each
//     entry out to every member — the candCache.store trick applied across
//     the whole batch up front), and
//   - one sorted view + prefix oracle per distinct (q, k), built by the
//     builder instead of once per worker that happens to draw the query.
//
// The table is immutable after Build: entries are stored with their induced
// CSR forced and views with their oracle forced, so every lazy-build
// mutation path in the cached hot paths short-circuits and concurrent
// workers only ever read. Lookups are guarded by the graph pointer and both
// epochs; any churn since Build makes every lookup miss and the searcher
// falls back to its own cache — a stale table can cost time, never
// correctness.
type SharedPlans struct {
	g           *graph.Graph
	topoEpoch   uint64
	locEpoch    uint64
	plans       map[cacheKey]*sharedPlan
	communities int
}

// sharedPlan is one (q, k)'s prebuilt candidate state: the community entry
// (shared between plans of the same community) and the q-sorted view with
// its oracle.
type sharedPlan struct {
	entry *cacheEntry
	view  sortedView
}

// PlanKey names one (q, k) pair to plan for.
type PlanKey struct {
	Q graph.V
	K int
}

// BuildSharedPlans precomputes candidate plans for the given (q, k) pairs on
// the builder searcher s, which must not be in use by another goroutine for
// the duration of the call. Only the k-core structure metric has prefix
// oracles; for other metrics the call returns nil and callers run the batch
// unshared. Duplicate keys are planned once; keys whose vertex has no
// feasible community get a negative plan that answers ErrNoCommunity
// directly.
func BuildSharedPlans(s *Searcher, keys []PlanKey) *SharedPlans {
	if s.structure != StructureKCore {
		return nil
	}
	p := &SharedPlans{
		g:         s.g,
		topoEpoch: s.g.TopoEpoch(),
		locEpoch:  s.g.LocEpoch(),
		plans:     make(map[cacheKey]*sharedPlan, len(keys)),
	}
	// entryFor fans every built entry out to all community members, so later
	// keys into the same community reuse the BFS and induced CSR.
	entryFor := make(map[cacheKey]*cacheEntry, len(keys))
	for _, key := range keys {
		if key.Q < 0 || int(key.Q) >= s.g.NumVertices() || key.K < 0 {
			continue // invalid keys fall back to the normal path's error
		}
		ck := cacheKey{key.Q, int32(key.K)}
		if _, ok := p.plans[ck]; ok {
			continue
		}
		e, ok := entryFor[ck]
		if !ok {
			members := s.communityOf(key.Q, key.K)
			e = &cacheEntry{members: members}
			if members == nil {
				entryFor[ck] = e
			} else {
				s.bindLocal(e)
				e.buildInduced(s.g, s.localOf, s.localValid)
				for _, v := range members {
					entryFor[cacheKey{v, int32(key.K)}] = e
				}
				p.communities++
			}
		}
		pl := &sharedPlan{entry: e}
		if e.members != nil {
			vw := &pl.view
			vw.q = key.Q
			vw.epoch = p.locEpoch
			vw.verts = append([]graph.V(nil), e.members...)
			vw.dists = make([]float64, 0, len(e.members))
			qp := s.g.Loc(key.Q)
			for _, v := range vw.verts {
				vw.dists = append(vw.dists, qp.Dist(s.g.Loc(v)))
			}
			sortByDist(vw.verts, vw.dists)
			s.bindLocal(e)
			s.buildPrefixOracle(e, vw, key.Q, key.K)
		}
		p.plans[ck] = pl
	}
	// The builder's local binding points at a table entry; drop it so the
	// builder's next ordinary query rebinds cleanly.
	s.localEntry = nil
	return p
}

// lookup returns the plan for (q, k) when the table was built for exactly
// this graph at its current epochs, else nil.
func (p *SharedPlans) lookup(g *graph.Graph, q graph.V, k int) *sharedPlan {
	if p.g != g || p.topoEpoch != g.TopoEpoch() || p.locEpoch != g.LocEpoch() {
		return nil
	}
	return p.plans[cacheKey{q, int32(k)}]
}

// Len returns the number of planned (q, k) pairs.
func (p *SharedPlans) Len() int { return len(p.plans) }

// Communities returns the number of distinct feasible communities the table
// holds (the number of BFS + induced-CSR builds it amortizes).
func (p *SharedPlans) Communities() int { return p.communities }

// SetSharedPlans points the searcher at a prebuilt plan table (nil
// detaches). Planned queries resolve their candidate set from the table —
// read-only, so any number of searchers over the same snapshot may share
// one table concurrently; unplanned or epoch-stale queries take the normal
// cached path.
func (s *Searcher) SetSharedPlans(p *SharedPlans) { s.sharedPlans = p }
