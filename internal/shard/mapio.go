package shard

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// The shard-map artifact is the versioned, checksummed file every shard and
// the router load at boot; /v1/shard/info reports its checksum so a mixed
// topology (shards cut from different maps) is detectable.
//
//	magic   "SACSHM01"        8 bytes
//	version u32 little-endian (format version, currently 1)
//	shards  u32
//	n       u64
//	edges   u64
//	cross   u64
//	owner   n × u16           owning shard per vertex
//	crc     u32               IEEE CRC-32 of everything above

const (
	mapMagic   = "SACSHM01"
	mapVersion = 1
)

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return c.w.Write(p)
}

// writeBody serializes everything the trailing CRC covers.
func (m *Map) writeBody(w io.Writer) error {
	if _, err := io.WriteString(w, mapMagic); err != nil {
		return err
	}
	hdr := make([]byte, 4+4+8+8+8)
	binary.LittleEndian.PutUint32(hdr[0:], mapVersion)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(m.Shards))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(m.N))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(m.Edges))
	binary.LittleEndian.PutUint64(hdr[24:], uint64(m.CrossEdges))
	if _, err := w.Write(hdr); err != nil {
		return err
	}
	buf := make([]byte, 2*4096)
	for off := 0; off < len(m.Owner); {
		nn := 0
		for off < len(m.Owner) && nn+2 <= len(buf) {
			binary.LittleEndian.PutUint16(buf[nn:], m.Owner[off])
			nn += 2
			off++
		}
		if _, err := w.Write(buf[:nn]); err != nil {
			return err
		}
	}
	return nil
}

// WriteMap serializes m. The output is deterministic: the same Map always
// produces the same bytes.
func (m *Map) WriteMap(w io.Writer) error {
	bw := bufio.NewWriter(w)
	cw := &crcWriter{w: bw}
	if err := m.writeBody(cw); err != nil {
		return err
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	if _, err := bw.Write(tail[:]); err != nil {
		return err
	}
	return bw.Flush()
}

// Checksum returns the artifact CRC — the content identity /v1/shard/info
// and the router use to verify every node loaded the same map.
func (m *Map) Checksum() uint32 {
	cw := &crcWriter{w: io.Discard}
	_ = m.writeBody(cw)
	return cw.crc
}

// ReadMap deserializes and validates a shard map written by WriteMap.
func ReadMap(r io.Reader) (*Map, error) {
	br := bufio.NewReader(r)
	crc := uint32(0)
	read := func(p []byte) error {
		if _, err := io.ReadFull(br, p); err != nil {
			return fmt.Errorf("shard: truncated shard map: %w", err)
		}
		crc = crc32.Update(crc, crc32.IEEETable, p)
		return nil
	}
	magic := make([]byte, len(mapMagic))
	if err := read(magic); err != nil {
		return nil, err
	}
	if string(magic) != mapMagic {
		return nil, fmt.Errorf("shard: bad shard-map magic %q", magic)
	}
	hdr := make([]byte, 4+4+8+8+8)
	if err := read(hdr); err != nil {
		return nil, err
	}
	if v := binary.LittleEndian.Uint32(hdr[0:]); v != mapVersion {
		return nil, fmt.Errorf("shard: unsupported shard-map version %d (want %d)", v, mapVersion)
	}
	m := &Map{
		Shards:     int(binary.LittleEndian.Uint32(hdr[4:])),
		N:          int(binary.LittleEndian.Uint64(hdr[8:])),
		Edges:      int(binary.LittleEndian.Uint64(hdr[16:])),
		CrossEdges: int(binary.LittleEndian.Uint64(hdr[24:])),
	}
	if m.Shards < 1 || m.Shards > 1<<16 {
		return nil, fmt.Errorf("shard: shard map declares %d shards", m.Shards)
	}
	if m.N < 0 || m.N > 1<<31 {
		return nil, fmt.Errorf("shard: shard map declares %d vertices", m.N)
	}
	m.Owner = make([]uint16, m.N)
	buf := make([]byte, 2*4096)
	for off := 0; off < m.N; {
		chunk := (m.N - off) * 2
		if chunk > len(buf) {
			chunk = len(buf)
		}
		if err := read(buf[:chunk]); err != nil {
			return nil, err
		}
		for i := 0; i < chunk; i += 2 {
			m.Owner[off] = binary.LittleEndian.Uint16(buf[i:])
			off++
		}
	}
	want := crc
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return nil, fmt.Errorf("shard: truncated shard map: %w", err)
	}
	if got := binary.LittleEndian.Uint32(tail[:]); got != want {
		return nil, fmt.Errorf("shard: shard-map checksum mismatch (file %08x, computed %08x)", got, want)
	}
	for v, o := range m.Owner {
		if int(o) >= m.Shards {
			return nil, fmt.Errorf("shard: vertex %d assigned to shard %d of %d", v, o, m.Shards)
		}
	}
	return m, nil
}
