// Command sacgen writes synthetic datasets to disk in the text formats the
// library reads back (<name>.edges, <name>.locs), or the checksummed binary
// format (<name>.sacg) with -binary.
//
// Usage:
//
//	sacgen -name brightkite -scale 0.1 -out ./data
//	sacgen -name syn1 -out ./data          # full Table 4 size
//	sacgen -name foursquare -binary -out ./data
//	sacgen -list                           # show presets
package main

import (
	"flag"
	"fmt"
	"os"

	"sacsearch/internal/dataset"
)

func main() {
	var (
		name   = flag.String("name", "", "dataset preset name")
		scale  = flag.Float64("scale", 1.0, "fraction of the published size, in (0,1]")
		out    = flag.String("out", ".", "output directory")
		list   = flag.Bool("list", false, "list presets and exit")
		binary = flag.Bool("binary", false, "write the binary .sacg format instead of text")
	)
	flag.Parse()

	if *list {
		fmt.Printf("%-12s %10s %10s %8s\n", "name", "vertices", "edges", "avg deg")
		for _, p := range dataset.Presets {
			fmt.Printf("%-12s %10d %10d %8.2f\n", p.Name, p.Vertices, p.Edges, p.AvgDeg)
		}
		return
	}
	if *name == "" {
		fmt.Fprintln(os.Stderr, "sacgen: -name is required (try -list)")
		os.Exit(2)
	}
	ds, err := dataset.Load(*name, *scale)
	if err != nil {
		fmt.Fprintf(os.Stderr, "sacgen: %v\n", err)
		os.Exit(1)
	}
	files := "{edges,locs}"
	saveErr := error(nil)
	if *binary {
		files = "sacg"
		saveErr = ds.SaveBinary(*out)
	} else {
		saveErr = ds.Save(*out)
	}
	if saveErr != nil {
		fmt.Fprintf(os.Stderr, "sacgen: %v\n", saveErr)
		os.Exit(1)
	}
	fmt.Printf("wrote %s: n=%d m=%d avg deg %.2f → %s/%s.%s\n",
		ds.Name, ds.Graph.NumVertices(), ds.Graph.NumEdges(), ds.Graph.AvgDegree(), *out, ds.Name, files)
}
