package core

import "sacsearch/internal/graph"

// localPeeler answers restricted k-core feasibility queries against a cached
// community's induced adjacency (cacheEntry.adjOff/adjLocal). It mirrors
// kcore.Peeler but works in local ids — positions in the entry's member
// slice — so buffers are sized to the community, the adjacency it walks has
// no cross-community edges, and memory access stays dense. The feasibility
// probes of the binary searches call this thousands of times per query
// stream; it is the hottest loop of the cached hot path.
type localPeeler struct {
	inS     *graph.Marker // candidate-set membership, local ids
	visited *graph.Marker // BFS visited set, local ids
	deg     []int32       // degree within the surviving candidate set
	sLocal  []int32       // candidate set translated to local ids
	queue   []int32       // peeling / BFS queue, local ids
	out     []graph.V     // result buffer, global ids
}

// ensure sizes the buffers for a community of n members.
func (p *localPeeler) ensure(n int) {
	if p.inS == nil || p.inS.Len() < n {
		p.inS = graph.NewMarker(n)
		p.visited = graph.NewMarker(n)
		p.deg = make([]int32, n)
	}
}

// kcoreWithinCached returns the connected k-core of G[S] containing q, or
// nil, where S ⊆ e.members. The returned slice is scratch-owned and valid
// until the next call; callers that retain it must copy. Semantics match
// kcore.Peeler.KCoreWithin exactly — only the adjacency representation
// differs.
func (s *Searcher) kcoreWithinCached(e *cacheEntry, S []graph.V, q graph.V, k int) []graph.V {
	if e.adjOff == nil {
		e.buildInduced(s.g, s.localOf, s.localValid)
	}
	p := &s.lp
	p.ensure(len(e.members))
	p.inS.Reset()
	p.sLocal = p.sLocal[:0]
	qSeen := false
	for _, v := range S {
		lv := s.localOf[v]
		p.inS.Mark(lv)
		p.sLocal = append(p.sLocal, lv)
		if v == q {
			qSeen = true
		}
	}
	if !qSeen {
		return nil
	}
	qLocal := s.localOf[q]

	// Degrees within S over the induced adjacency.
	p.queue = p.queue[:0]
	for _, lv := range p.sLocal {
		d := int32(0)
		for _, lu := range e.adjLocal[e.adjOff[lv]:e.adjOff[lv+1]] {
			if p.inS.Has(lu) {
				d++
			}
		}
		p.deg[lv] = d
		if d < int32(k) {
			p.queue = append(p.queue, lv)
		}
	}
	// Peel vertices whose in-S degree dropped below k.
	for head := 0; head < len(p.queue); head++ {
		lv := p.queue[head]
		if !p.inS.Has(lv) {
			continue
		}
		p.inS.Unmark(lv)
		if lv == qLocal {
			return nil
		}
		for _, lu := range e.adjLocal[e.adjOff[lv]:e.adjOff[lv+1]] {
			if !p.inS.Has(lu) {
				continue
			}
			p.deg[lu]--
			if p.deg[lu] == int32(k)-1 {
				p.queue = append(p.queue, lu)
			}
		}
	}
	if !p.inS.Has(qLocal) {
		return nil
	}
	// Connected component of q within the survivors (every survivor keeps
	// ≥ k surviving neighbors, so the component has minimum degree ≥ k).
	p.visited.Reset()
	p.visited.Mark(qLocal)
	p.out = p.out[:0]
	p.queue = append(p.queue[:0], qLocal)
	for head := 0; head < len(p.queue); head++ {
		lv := p.queue[head]
		p.out = append(p.out, e.members[lv])
		for _, lu := range e.adjLocal[e.adjOff[lv]:e.adjOff[lv+1]] {
			if p.inS.Has(lu) && !p.visited.Has(lu) {
				p.visited.Mark(lu)
				p.queue = append(p.queue, lu)
			}
		}
	}
	return p.out
}

// bindLocal points the Searcher's global→local id translation at e. Binding
// is O(|members|) and skipped when e is already bound, so repeated queries
// into the same community pay nothing.
func (s *Searcher) bindLocal(e *cacheEntry) {
	if s.localEntry == e {
		return
	}
	if s.localOf == nil {
		n := s.g.NumVertices()
		s.localOf = make([]int32, n)
		s.localValid = graph.NewMarker(n)
	}
	s.localValid.Reset()
	for i, v := range e.members {
		s.localOf[v] = int32(i)
		s.localValid.Mark(v)
	}
	s.localEntry = e
}
