package geom

import (
	"math"
)

// mccSeed makes the Welzl shuffle deterministic so that repeated runs over
// the same input produce bit-identical circles.
const mccSeed = 0x5ac5ea2c

// MCC returns the minimum covering circle of pts (Definition 2). The empty
// set yields a zero Circle; a single point yields a radius-0 circle.
//
// The implementation is the classic randomized incremental algorithm of
// Welzl with expected linear running time; the shuffle is seeded so results
// are deterministic.
func MCC(pts []Point) Circle {
	switch len(pts) {
	case 0:
		return Circle{}
	case 1:
		return Circle{C: pts[0]}
	case 2:
		return CircleFrom2(pts[0], pts[1])
	case 3:
		return CircleFrom3(pts[0], pts[1], pts[2])
	}
	p := make([]Point, len(pts))
	copy(p, pts)
	// Deterministic in-place Fisher–Yates driven by splitmix64. MCC sits on
	// the query hot path (once per result, once per improving circle in the
	// exact algorithms); seeding a math/rand source per call cost more than
	// the Welzl walk itself on typical community sizes.
	state := uint64(mccSeed)
	for i := len(p) - 1; i > 0; i-- {
		state += 0x9e3779b97f4a7c15
		z := state
		z ^= z >> 30
		z *= 0xbf58476d1ce4e5b9
		z ^= z >> 27
		z *= 0x94d049bb133111eb
		z ^= z >> 31
		j := int(z % uint64(i+1))
		p[i], p[j] = p[j], p[i]
	}

	c := CircleFrom2(p[0], p[1])
	for i := 2; i < len(p); i++ {
		if c.Contains(p[i]) {
			continue
		}
		// p[i] is on the boundary of the MCC of p[:i+1].
		c = mccWithOne(p[:i], p[i])
	}
	return c
}

// mccWithOne returns the MCC of pts ∪ {q} given that q is on its boundary.
func mccWithOne(pts []Point, q Point) Circle {
	c := Circle{C: q}
	for i := 0; i < len(pts); i++ {
		if c.Contains(pts[i]) {
			continue
		}
		c = mccWithTwo(pts[:i], q, pts[i])
	}
	return c
}

// mccWithTwo returns the MCC of pts ∪ {q1,q2} given both are on its boundary.
// The invariant requires every update to keep q1 and q2 on the boundary, so
// an uncovered point joins them on the circumcircle — not the minimum
// covering circle of the triple, which for an obtuse triangle would drop q1
// or q2 off the boundary and break the induction for later points.
func mccWithTwo(pts []Point, q1, q2 Point) Circle {
	c := CircleFrom2(q1, q2)
	for i := 0; i < len(pts); i++ {
		if c.Contains(pts[i]) {
			continue
		}
		if cc, ok := Circumcircle(q1, q2, pts[i]); ok {
			c = cc
		} else {
			// Nearly collinear triple: no finite circle through q1 and q2
			// reaches pts[i]; cover the triple directly as a safety net.
			c = CircleFrom3(q1, q2, pts[i])
		}
	}
	return c
}

// MaxPairwiseDist returns the largest Euclidean distance between any two of
// pts, 0 for fewer than two points. It is O(n²) and intended for community
// sized inputs (the paper's Lemma 2 relates it to the MCC radius:
// √3·r ≤ maxdist ≤ 2·r for sets whose MCC radius is r).
func MaxPairwiseDist(pts []Point) float64 {
	var best float64
	for i := 1; i < len(pts); i++ {
		for j := 0; j < i; j++ {
			if d := pts[i].Dist2(pts[j]); d > best {
				best = d
			}
		}
	}
	return math.Sqrt(best)
}
