// Package batch implements batched SAC query processing — the paper's
// Section 6 future work ("we will study how to support batch processing for
// SAC search"). Applications like event recommendation fire many SAC queries
// at once (one per online user); answering them together beats answering
// them one by one because
//
//   - the O(m) core decomposition is computed once and shared by every
//     worker (core.Pool clones share the immutable decompositions),
//   - duplicate (q, k) pairs — common when hot users re-query — are
//     answered once and fanned back out,
//   - queries run on a configurable number of workers drawn from a
//     Source (a core.Pool, or a published snapshot that pins the whole
//     batch to one graph state), each owning isolated scratch space and a
//     candidate cache, so the batch saturates the machine without data
//     races — and when the caller keeps the pool alive across batches
//     (RunOn/StreamOn), the workers' warmed caches survive between batches
//     too.
//
// Every entry point takes a context: when it fires, in-flight queries stop
// at their next loop boundary and return core.ErrCanceled, and queries not
// yet dispatched are failed with the same error without running — a batch
// deadline bounds the whole batch, not just the queries that happened to
// start. Results come back in input order (Run/RunOn) or as they complete
// (Stream/StreamOn).
package batch

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"sacsearch/internal/core"
	"sacsearch/internal/graph"
)

// Source supplies searcher workers for exclusive per-goroutine use. A
// *core.Pool is a Source; so is a published snapshot (internal/snapshot's
// Snap), which hands out workers pinned to one immutable graph state.
type Source interface {
	Get() *core.Searcher
	Put(*core.Searcher)
}

// Algo selects the SAC algorithm a batch runs.
type Algo int

const (
	// AlgoAppFast runs AppFast(εF) — the default: fastest with a 2+εF
	// guarantee.
	AlgoAppFast Algo = iota
	// AlgoAppInc runs AppInc (parameter-free 2-approximation).
	AlgoAppInc
	// AlgoAppAcc runs AppAcc(εA) (1+εA approximation).
	AlgoAppAcc
	// AlgoExactPlus runs ExactPlus(εA) (exact).
	AlgoExactPlus
	// AlgoExact runs the naive Exact — correctness baseline, small graphs
	// only.
	AlgoExact
)

func (a Algo) String() string {
	switch a {
	case AlgoAppFast:
		return "AppFast"
	case AlgoAppInc:
		return "AppInc"
	case AlgoAppAcc:
		return "AppAcc"
	case AlgoExactPlus:
		return "ExactPlus"
	case AlgoExact:
		return "Exact"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// Query is one SAC request.
type Query struct {
	Q graph.V
	K int
}

// Item is one answered query. Exactly one of Result and Err is set.
//
// Deduplicated batches alias: every occurrence of the same (q, k) in a
// Run/RunOn batch carries the SAME *core.Result pointer. Results are
// read-only by contract, so the sharing is safe; callers that mutate a
// result (sorting Members in place, say) must copy it first.
type Item struct {
	Query
	Result *core.Result
	Err    error
}

// Options configures a batch run. The zero value runs AppFast(0.5) on
// GOMAXPROCS workers.
//
// Algorithm selection goes through the core algorithm registry: the
// preferred form is Template, a core.Query carrying the algorithm name and
// parameters (its Q and K are overwritten per batch item). The legacy
// enum-plus-epsilons fields remain as a thin mapping onto a template, so
// existing callers keep working unchanged.
type Options struct {
	// Workers is the number of concurrent searchers; ≤ 0 means GOMAXPROCS.
	Workers int
	// Template, when its Algo is non-empty, selects the algorithm and
	// parameters for every item in the batch — any registered algorithm,
	// θ-SAC included. Per-item Q and K replace the template's. Template
	// wins over the legacy Algorithm/EpsF/EpsA fields.
	Template core.Query
	// Algorithm selects the SAC algorithm (default AlgoAppFast). Legacy;
	// prefer Template.
	Algorithm Algo
	// EpsF is AppFast's εF (default 0.5 when zero and Algorithm is
	// AlgoAppFast; 0 is meaningful only if EpsFSet). Legacy; prefer
	// Template.
	EpsF float64
	// EpsFSet marks EpsF as deliberately zero (AppFast(0) is the AppInc
	// result, which is a valid choice). Legacy; prefer Template.
	EpsFSet bool
	// EpsA is AppAcc's / ExactPlus's εA (default 0.5 for AppAcc, 1e-3 for
	// ExactPlus). Legacy; prefer Template.
	EpsA float64
	// SharedOracle front-loads one shared candidate plan table for the
	// batch's distinct (q, k) pairs — community BFS, induced CSR and prefix
	// oracle built once on a single worker and shared read-only by every
	// worker in the call — instead of each worker rebuilding them in its own
	// cache. Worth it when many queries land in the same communities (the
	// common event-recommendation shape). Applies to Run/RunOn with the
	// k-core structure metric and a candidate-based algorithm; other
	// configurations ignore it. The table is epoch-guarded, so a snapshot
	// republication between build and execution costs time, never
	// correctness.
	SharedOracle bool
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// template resolves the algorithm selection to one core.Query the registry
// can dispatch: Template verbatim when set, otherwise the legacy enum and
// epsilon fields translated to the equivalent query (absent parameters stay
// nil pointers so the registry's defaults apply — which match the legacy
// defaults: εF 0.5, εA 0.5 for AppAcc and 1e-3 for ExactPlus).
func (o Options) template() core.Query {
	if o.Template.Algo != "" {
		return o.Template
	}
	t := o.Template // keep Structure/Timeout if a caller set them without Algo
	switch o.Algorithm {
	case AlgoAppInc:
		t.Algo = "appinc"
	case AlgoAppAcc:
		t.Algo = "appacc"
		if o.EpsA != 0 {
			t.EpsA = core.Float(o.EpsA)
		}
	case AlgoExactPlus:
		t.Algo = "exact+"
		if o.EpsA != 0 {
			t.EpsA = core.Float(o.EpsA)
		}
	case AlgoExact:
		t.Algo = "exact"
	default:
		t.Algo = "appfast"
		if o.EpsF != 0 || o.EpsFSet {
			t.EpsF = core.Float(o.EpsF)
		}
	}
	return t
}

// run dispatches one query on one searcher through the unified Search entry
// point (and so through the algorithm registry).
func run(ctx context.Context, s *core.Searcher, q Query, t core.Query) (*core.Result, error) {
	t.Q, t.K = q.Q, q.K
	return s.Search(ctx, t)
}

// canceledErr is the error stamped on queries a fired context kept from
// running; it matches the in-flight shape (errors.Is on core.ErrCanceled and
// on the context cause both hold).
func canceledErr(cause error) error {
	return fmt.Errorf("%w: %w", core.ErrCanceled, cause)
}

// Run answers every query and returns the items in input order, using a
// transient worker pool over s. Prefer RunOn with a long-lived core.Pool
// when batches repeat against the same graph — pooled workers keep their
// warmed candidate caches between batches.
func Run(ctx context.Context, s *core.Searcher, queries []Query, opt Options) []Item {
	return RunOn(ctx, core.NewPool(s), queries, opt)
}

// RunOn answers every query on workers drawn from p and returns the items
// in input order. Duplicate (q, k) pairs are answered once and fanned back
// out. A pool's base searcher is never used directly, so it may be in use
// elsewhere as long as the graph's locations are not mutated concurrently;
// snapshot sources have no such caveat. When ctx fires, undispatched
// queries fail with core.ErrCanceled without running.
func RunOn(ctx context.Context, p Source, queries []Query, opt Options) []Item {
	items := make([]Item, len(queries))

	// Deduplicate: first occurrence owns the computation.
	type slot struct {
		first int   // index into queries that computes the answer
		rest  []int // indices that reuse it
	}
	order := make([]Query, 0, len(queries))
	slots := make(map[Query]*slot, len(queries))
	for i, q := range queries {
		if sl, ok := slots[q]; ok {
			sl.rest = append(sl.rest, i)
			continue
		}
		slots[q] = &slot{first: i}
		order = append(order, q)
	}

	// cancelFrom fails every query from order[i:] on without running it.
	cancelFrom := func(i int, cause error) {
		err := canceledErr(cause)
		for _, q := range order[i:] {
			items[slots[q].first] = Item{Query: q, Err: err}
		}
	}

	tmpl := opt.template()
	workers := opt.workers()
	if workers > len(order) {
		workers = len(order)
	}

	// Shared-oracle mode: plan the deduplicated (q, k) set once, up front, on
	// a single worker. BuildSharedPlans returns nil for structure metrics
	// without prefix oracles, and θ-SAC never touches the candidate
	// machinery, so those fall back to the unshared path unchanged.
	var plans *core.SharedPlans
	if opt.SharedOracle && ctx.Err() == nil {
		if spec, ok := core.LookupAlgo(tmpl.Algo); !ok || spec.Name != "theta" {
			keys := make([]core.PlanKey, len(order))
			for i, q := range order {
				keys[i] = core.PlanKey{Q: q.Q, K: q.K}
			}
			func() {
				w := p.Get()
				defer p.Put(w)
				plans = core.BuildSharedPlans(w, keys)
			}()
		}
	}

	if workers <= 1 {
		// Run inline on a single pooled worker; no goroutines to coordinate.
		// The deferred Put matches the worker-goroutine path: if run panics
		// (a searcher bug surfaced by a query), the worker still returns to
		// the pool instead of leaking.
		func() {
			w := p.Get()
			defer p.Put(w)
			if plans != nil {
				w.SetSharedPlans(plans)
				defer w.SetSharedPlans(nil)
			}
			for i, q := range order {
				if err := ctx.Err(); err != nil {
					cancelFrom(i, err)
					return
				}
				res, err := run(ctx, w, q, tmpl)
				items[slots[q].first] = Item{Query: q, Result: res, Err: err}
			}
		}()
	} else {
		feed := make(chan Query)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := p.Get()
				defer p.Put(ws)
				if plans != nil {
					ws.SetSharedPlans(plans)
					defer ws.SetSharedPlans(nil)
				}
				for q := range feed {
					res, err := run(ctx, ws, q, tmpl)
					items[slots[q].first] = Item{Query: q, Result: res, Err: err}
				}
			}()
		}
	feedLoop:
		for i, q := range order {
			select {
			case feed <- q:
			case <-ctx.Done():
				cancelFrom(i, ctx.Err())
				break feedLoop
			}
		}
		close(feed)
		wg.Wait()
	}

	// Fan duplicate answers back out.
	for q, sl := range slots {
		for _, i := range sl.rest {
			items[i] = items[sl.first]
			items[i].Query = q
		}
	}
	return items
}

// Stream answers queries from in as they arrive on a transient worker pool
// over s; see StreamOn for the pooled variant.
func Stream(ctx context.Context, s *core.Searcher, in <-chan Query, opt Options) <-chan Item {
	return StreamOn(ctx, core.NewPool(s), in, opt)
}

// StreamOn answers queries from in as they arrive and sends items on the
// returned channel as they complete (not in input order). The channel is
// closed when in is closed and all in-flight queries have finished.
// Duplicate queries are not deduplicated — streams are unbounded, so the
// memory of past answers is the caller's concern. When ctx fires, queries
// still arriving come back immediately as core.ErrCanceled items; the
// caller remains responsible for closing in. After cancellation, delivery
// turns best-effort: a consumer that stopped draining out does not block
// the workers (items are dropped instead), so canceling and walking away
// leaks nothing as long as in is eventually closed.
func StreamOn(ctx context.Context, p Source, in <-chan Query, opt Options) <-chan Item {
	out := make(chan Item)
	tmpl := opt.template()
	workers := opt.workers()
	// send delivers one item, except after cancellation, when it refuses to
	// block on an abandoned consumer: the worker must get back to draining
	// in so the close-out contract (and the worker itself) survives. The
	// non-blocking first attempt keeps delivery reliable for a consumer
	// that is actively draining even after ctx fires (a two-way select
	// would drop at random once Done is closed).
	send := func(it Item) {
		select {
		case out <- it:
			return
		default:
		}
		select {
		case out <- it:
		case <-ctx.Done():
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := p.Get()
			defer p.Put(ws)
			for q := range in {
				if err := ctx.Err(); err != nil {
					send(Item{Query: q, Err: canceledErr(err)})
					continue
				}
				res, err := run(ctx, ws, q, tmpl)
				send(Item{Query: q, Result: res, Err: err})
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Workload builds the all-pairs batch for one k over a set of query
// vertices — a convenience for benchmark harnesses and the batch example.
func Workload(qs []graph.V, k int) []Query {
	out := make([]Query, len(qs))
	for i, q := range qs {
		out[i] = Query{Q: q, K: k}
	}
	return out
}
