package kcore

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sacsearch/internal/graph"
)

// paperGraph builds the 10-vertex example of Figure 3: vertices
// Q,A,B,C,D,E,F,G,H,I = 0..9. Edges are chosen so that the 2-core has two
// components {Q,A,B,C,D,E} and {F,G,H}, the 3-core is {Q,A,B,C,D}-ish —
// we encode the published k-core structure (Example 1): 2-core components
// {Q,A,B,C,D,E} and {F,G,H}; I is in no 2-core.
func paperGraph() *graph.Graph {
	// 0=Q 1=A 2=B 3=C 4=D 5=E 6=F 7=G 8=H 9=I
	b := graph.NewBuilder(10)
	edges := [][2]graph.V{
		{0, 1}, {0, 2}, {1, 2}, // triangle Q,A,B
		{0, 3}, {0, 4}, {3, 4}, // triangle Q,C,D
		{3, 5}, {4, 5}, // E joins C,D
		{6, 7}, {6, 8}, {7, 8}, // triangle F,G,H (separate 2-ĉore)
		{5, 9}, // I hangs off E
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func sorted(vs []graph.V) []graph.V {
	out := append([]graph.V(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func eq(a, b []graph.V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// bruteCore computes core numbers by repeated peeling — O(n·m) reference.
func bruteCore(g *graph.Graph) []int32 {
	n := g.NumVertices()
	core := make([]int32, n)
	alive := make([]bool, n)
	deg := make([]int32, n)
	for k := int32(1); ; k++ {
		for v := 0; v < n; v++ {
			alive[v] = true
			deg[v] = int32(g.Degree(graph.V(v)))
		}
		// Peel everything below k.
		changed := true
		for changed {
			changed = false
			for v := 0; v < n; v++ {
				if alive[v] && deg[v] < k {
					alive[v] = false
					changed = true
					for _, u := range g.Neighbors(graph.V(v)) {
						if alive[u] {
							deg[u]--
						}
					}
				}
			}
		}
		any := false
		for v := 0; v < n; v++ {
			if alive[v] {
				core[v] = k
				any = true
			}
		}
		if !any {
			return core
		}
	}
}

func TestDecomposeSmall(t *testing.T) {
	// Triangle + pendant: triangle vertices have core 2, pendant core 1.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	b.AddEdge(2, 3)
	g := b.Build()
	core := Decompose(g)
	want := []int32{2, 2, 2, 1}
	for v := range want {
		if core[v] != want[v] {
			t.Fatalf("core[%d] = %d, want %d (all: %v)", v, core[v], want[v], core)
		}
	}
	if MaxCore(core) != 2 {
		t.Fatalf("MaxCore = %d", MaxCore(core))
	}
}

func TestDecomposeEmptyAndIsolated(t *testing.T) {
	g := graph.NewBuilder(0).Build()
	if got := Decompose(g); len(got) != 0 {
		t.Fatalf("empty graph core = %v", got)
	}
	g = graph.NewBuilder(3).Build() // three isolated vertices
	core := Decompose(g)
	for v, c := range core {
		if c != 0 {
			t.Fatalf("isolated core[%d] = %d", v, c)
		}
	}
}

func TestDecomposeClique(t *testing.T) {
	n := 6
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.V(i), graph.V(j))
		}
	}
	core := Decompose(b.Build())
	for v, c := range core {
		if c != int32(n-1) {
			t.Fatalf("clique core[%d] = %d, want %d", v, c, n-1)
		}
	}
}

func TestDecomposePaperExample(t *testing.T) {
	g := paperGraph()
	core := Decompose(g)
	// 2-core must be exactly {Q,A,B,C,D,E} ∪ {F,G,H}; I has core 1.
	want2 := map[graph.V]bool{0: true, 1: true, 2: true, 3: true, 4: true, 5: true, 6: true, 7: true, 8: true}
	for v := 0; v < g.NumVertices(); v++ {
		in2 := core[v] >= 2
		if in2 != want2[graph.V(v)] {
			t.Fatalf("vertex %d: core=%d, want in 2-core = %v", v, core[v], want2[graph.V(v)])
		}
	}
	if core[9] != 1 {
		t.Fatalf("core[I] = %d, want 1", core[9])
	}
}

func TestDecomposeMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rnd.Intn(40)
		b := graph.NewBuilder(n)
		m := rnd.Intn(4 * n)
		for i := 0; i < m; i++ {
			b.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
		}
		g := b.Build()
		got := Decompose(g)
		want := bruteCore(g)
		for v := 0; v < n; v++ {
			if got[v] != want[v] {
				t.Fatalf("trial %d vertex %d: got %d, want %d", trial, v, got[v], want[v])
			}
		}
	}
}

// Property: core numbers are valid — the subgraph induced by {v: core(v)>=k}
// has min degree >= k within itself for every k, and core(v) <= deg(v).
func TestDecomposeInvariants(t *testing.T) {
	f := func(seed int64, nRaw, mRaw uint8) bool {
		n := int(nRaw%30) + 3
		rnd := rand.New(rand.NewSource(seed))
		b := graph.NewBuilder(n)
		for i := 0; i < int(mRaw); i++ {
			b.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
		}
		g := b.Build()
		core := Decompose(g)
		maxK := MaxCore(core)
		for v := 0; v < n; v++ {
			if int(core[v]) > g.Degree(graph.V(v)) {
				return false
			}
		}
		for k := int32(1); k <= maxK; k++ {
			for v := 0; v < n; v++ {
				if core[v] < k {
					continue
				}
				d := 0
				for _, u := range g.Neighbors(graph.V(v)) {
					if core[u] >= k {
						d++
					}
				}
				if d < int(k) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCommunityOf(t *testing.T) {
	g := paperGraph()
	core := Decompose(g)
	// Q's 2-ĉore is {Q,A,B,C,D,E}; F,G,H are a separate 2-ĉore.
	got := sorted(CommunityOf(g, core, 0, 2))
	if !eq(got, []graph.V{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("CommunityOf(Q, 2) = %v", got)
	}
	got = sorted(CommunityOf(g, core, 6, 2))
	if !eq(got, []graph.V{6, 7, 8}) {
		t.Fatalf("CommunityOf(F, 2) = %v", got)
	}
	// I is in no 2-core.
	if got := CommunityOf(g, core, 9, 2); got != nil {
		t.Fatalf("CommunityOf(I, 2) = %v, want nil", got)
	}
	// k=0: the whole connected component of I, which excludes {F,G,H}.
	got = CommunityOf(g, core, 9, 0)
	if len(got) != 7 {
		t.Fatalf("CommunityOf(I, 0) size = %d, want 7", len(got))
	}
}

func TestPeelerBasic(t *testing.T) {
	g := paperGraph()
	p := NewPeeler(g)
	all := make([]graph.V, g.NumVertices())
	for i := range all {
		all[i] = graph.V(i)
	}
	// Full graph, k=2 from Q: same as CommunityOf.
	got := sorted(p.KCoreWithin(all, 0, 2))
	if !eq(got, []graph.V{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("KCoreWithin(all, Q, 2) = %v", got)
	}
	// Restricted to {Q,A,B}: the triangle is a 2-core.
	got = sorted(p.KCoreWithin([]graph.V{0, 1, 2}, 0, 2))
	if !eq(got, []graph.V{0, 1, 2}) {
		t.Fatalf("KCoreWithin(triangle, Q, 2) = %v", got)
	}
	// Restricted to {Q,A,C}: no triangle (A and C not adjacent): infeasible.
	if got := p.KCoreWithin([]graph.V{0, 1, 3}, 0, 2); got != nil {
		t.Fatalf("KCoreWithin(QAC, Q, 2) = %v, want nil", got)
	}
	// q not in S.
	if got := p.KCoreWithin([]graph.V{1, 2}, 0, 2); got != nil {
		t.Fatalf("q outside S should be infeasible, got %v", got)
	}
}

func TestPeelerDisconnectedCandidates(t *testing.T) {
	g := paperGraph()
	p := NewPeeler(g)
	// S contains both 2-ĉores; the result must be only Q's component.
	S := []graph.V{0, 1, 2, 3, 4, 5, 6, 7, 8}
	got := sorted(p.KCoreWithin(S, 0, 2))
	if !eq(got, []graph.V{0, 1, 2, 3, 4, 5}) {
		t.Fatalf("component isolation failed: %v", got)
	}
	got = sorted(p.KCoreWithin(S, 7, 2))
	if !eq(got, []graph.V{6, 7, 8}) {
		t.Fatalf("component isolation failed for G-side: %v", got)
	}
}

func TestPeelerCascade(t *testing.T) {
	// Path 0-1-2-3-4 with k=1: feasible (whole path); with k=2 infeasible
	// because peeling the ends cascades through everything.
	b := graph.NewBuilder(5)
	for i := 0; i < 4; i++ {
		b.AddEdge(graph.V(i), graph.V(i+1))
	}
	g := b.Build()
	p := NewPeeler(g)
	S := []graph.V{0, 1, 2, 3, 4}
	if got := p.KCoreWithin(S, 2, 1); len(got) != 5 {
		t.Fatalf("k=1 on path = %v", got)
	}
	if got := p.KCoreWithin(S, 2, 2); got != nil {
		t.Fatalf("k=2 on path should be infeasible, got %v", got)
	}
}

func TestPeelerMatchesDecompose(t *testing.T) {
	// On the full vertex set, KCoreWithin(q,k) must equal the connected
	// k-ĉore from the decomposition, for random graphs.
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		n := 10 + rnd.Intn(50)
		b := graph.NewBuilder(n)
		for i := 0; i < 5*n; i++ {
			b.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
		}
		g := b.Build()
		core := Decompose(g)
		p := NewPeeler(g)
		all := make([]graph.V, n)
		for i := range all {
			all[i] = graph.V(i)
		}
		for k := 1; k <= 4; k++ {
			q := graph.V(rnd.Intn(n))
			want := CommunityOf(g, core, q, k)
			got := p.KCoreWithin(all, q, k)
			if (got == nil) != (want == nil) {
				t.Fatalf("trial %d k=%d q=%d: feasibility mismatch (%v vs %v)", trial, k, q, got, want)
			}
			if got != nil && !eq(sorted(got), sorted(want)) {
				t.Fatalf("trial %d k=%d q=%d: %v vs %v", trial, k, q, sorted(got), sorted(want))
			}
		}
	}
}

func TestPeelerResultInvariants(t *testing.T) {
	// Whatever the candidate set, a non-nil result is connected, contains q,
	// and has min internal degree >= k.
	rnd := rand.New(rand.NewSource(123))
	for trial := 0; trial < 50; trial++ {
		n := 10 + rnd.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < 4*n; i++ {
			b.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
		}
		g := b.Build()
		p := NewPeeler(g)
		// Random candidate subset.
		var S []graph.V
		for v := 0; v < n; v++ {
			if rnd.Float64() < 0.7 {
				S = append(S, graph.V(v))
			}
		}
		if len(S) == 0 {
			continue
		}
		q := S[rnd.Intn(len(S))]
		k := 1 + rnd.Intn(3)
		res := p.KCoreWithin(S, q, k)
		if res == nil {
			continue
		}
		members := make(map[graph.V]bool, len(res))
		hasQ := false
		for _, v := range res {
			members[v] = true
			if v == q {
				hasQ = true
			}
		}
		if !hasQ {
			t.Fatalf("trial %d: result missing q", trial)
		}
		for _, v := range res {
			d := 0
			for _, u := range g.Neighbors(v) {
				if members[u] {
					d++
				}
			}
			if d < k {
				t.Fatalf("trial %d: vertex %d has internal degree %d < k=%d", trial, v, d, k)
			}
		}
		// Connectivity: BFS within members from q must reach all.
		visited := graph.NewMarker(n)
		reach := graph.BFSFrom(g, q, func(v graph.V) bool { return members[v] }, visited, nil)
		if len(reach) != len(res) {
			t.Fatalf("trial %d: result not connected (%d vs %d)", trial, len(reach), len(res))
		}
	}
}

func TestPeelerReuseNoCorruption(t *testing.T) {
	g := paperGraph()
	p := NewPeeler(g)
	S1 := []graph.V{0, 1, 2}
	S2 := []graph.V{6, 7, 8}
	a := append([]graph.V(nil), p.KCoreWithin(S1, 0, 2)...)
	_ = p.KCoreWithin(S2, 6, 2)
	b := append([]graph.V(nil), p.KCoreWithin(S1, 0, 2)...)
	if !eq(sorted(a), sorted(b)) {
		t.Fatalf("reuse corrupted results: %v vs %v", a, b)
	}
	if !p.Feasible(S1, 0, 2) || p.Feasible([]graph.V{0, 1}, 0, 2) {
		t.Fatal("Feasible wrapper broken")
	}
}

func BenchmarkDecompose(b *testing.B) {
	rnd := rand.New(rand.NewSource(1))
	n := 20000
	bb := graph.NewBuilder(n)
	for i := 0; i < 100000; i++ {
		bb.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
	}
	g := bb.Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = Decompose(g)
	}
}

func BenchmarkPeeler(b *testing.B) {
	rnd := rand.New(rand.NewSource(2))
	n := 5000
	bb := graph.NewBuilder(n)
	for i := 0; i < 40000; i++ {
		bb.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
	}
	g := bb.Build()
	p := NewPeeler(g)
	S := make([]graph.V, n)
	for i := range S {
		S[i] = graph.V(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.KCoreWithin(S, 0, 4)
	}
}
