package kcore

import (
	"math/rand"
	"testing"

	"sacsearch/internal/gen"
	"sacsearch/internal/graph"
)

// requireCoresMatch fails unless the maintained numbers equal a fresh
// decomposition of g's current topology.
func requireCoresMatch(t *testing.T, g *graph.Graph, core []int32, step int) {
	t.Helper()
	want := Decompose(g)
	for v := range want {
		if core[v] != want[v] {
			t.Fatalf("step %d: core[%d] = %d, want %d (m=%d)", step, v, core[v], want[v], g.NumEdges())
		}
	}
}

func buildRandom(n, m int, seed int64) *graph.Graph {
	rnd := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		u, v := graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n))
		if u != v {
			b.AddEdge(u, v)
		}
	}
	return b.Build()
}

// TestMaintainerInsertSmall pins the worked promotion cases: closing a
// triangle promotes exactly its vertices, and adding a chord to a cycle
// promotes nothing.
func TestMaintainerInsertSmall(t *testing.T) {
	// Path 0-1-2 plus edge {0,2} closes a triangle: all three go 1 -> 2.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	m := NewMaintainer(g, Decompose(g))
	if !m.InsertEdge(0, 2) {
		t.Fatal("InsertEdge(0,2) = false")
	}
	want := []int32{2, 2, 2, 1}
	for v, w := range want {
		if m.Core()[v] != w {
			t.Fatalf("core[%d] = %d, want %d", v, m.Core()[v], w)
		}
	}
	// Re-inserting is a no-op.
	if m.InsertEdge(0, 2) || m.InsertEdge(2, 2) {
		t.Fatal("duplicate/self-loop insert returned true")
	}
	requireCoresMatch(t, g, m.Core(), 0)
}

// TestMaintainerRemoveSmall pins the demotion cascade: breaking a triangle
// demotes all three vertices, and the pendant stays put.
func TestMaintainerRemoveSmall(t *testing.T) {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	g := b.Build()
	m := NewMaintainer(g, Decompose(g))
	if !m.RemoveEdge(0, 1) {
		t.Fatal("RemoveEdge(0,1) = false")
	}
	want := []int32{1, 1, 1, 1}
	for v, w := range want {
		if m.Core()[v] != w {
			t.Fatalf("core[%d] = %d, want %d", v, m.Core()[v], w)
		}
	}
	if m.RemoveEdge(0, 1) {
		t.Fatal("removing a missing edge returned true")
	}
	requireCoresMatch(t, g, m.Core(), 0)
}

// TestMaintainerDifferentialChurn is the workhorse: random insert/remove
// sequences over random graphs, verifying after EVERY operation that the
// maintained numbers equal a from-scratch decomposition.
func TestMaintainerDifferentialChurn(t *testing.T) {
	for _, tc := range []struct {
		n, m0, ops int
		seed       int64
	}{
		{30, 40, 400, 1},   // sparse: lots of promotions from low cores
		{25, 140, 400, 2},  // dense: high cores, deep cascades
		{50, 0, 300, 3},    // grown from empty
		{40, 100, 500, 17}, // mixed
	} {
		g := buildRandom(tc.n, tc.m0, tc.seed)
		m := NewMaintainer(g, Decompose(g))
		rnd := rand.New(rand.NewSource(tc.seed * 31))
		for step := 1; step <= tc.ops; step++ {
			u, v := graph.V(rnd.Intn(tc.n)), graph.V(rnd.Intn(tc.n))
			if u == v {
				continue
			}
			if g.HasEdge(u, v) && rnd.Float64() < 0.45 {
				if !m.RemoveEdge(u, v) {
					t.Fatalf("seed %d step %d: RemoveEdge(%d,%d) = false", tc.seed, step, u, v)
				}
			} else if !g.HasEdge(u, v) {
				if !m.InsertEdge(u, v) {
					t.Fatalf("seed %d step %d: InsertEdge(%d,%d) = false", tc.seed, step, u, v)
				}
			} else {
				continue
			}
			requireCoresMatch(t, g, m.Core(), step)
		}
	}
}

// TestMaintainerSharedSlice verifies in-place maintenance: consumers holding
// the same slice observe updates without re-fetching.
func TestMaintainerSharedSlice(t *testing.T) {
	g := buildRandom(20, 30, 5)
	core := Decompose(g)
	shared := core // same backing array
	m := NewMaintainer(g, core)
	changed := false
	rnd := rand.New(rand.NewSource(8))
	for i := 0; i < 50 && !changed; i++ {
		u, v := graph.V(rnd.Intn(20)), graph.V(rnd.Intn(20))
		if u == v || g.HasEdge(u, v) {
			continue
		}
		before := append([]int32(nil), shared...)
		m.InsertEdge(u, v)
		for x := range shared {
			if shared[x] != before[x] {
				changed = true
			}
		}
	}
	if !changed {
		t.Skip("no insertion changed a core number; fixture too dense")
	}
}

// BenchmarkMaintainerChurn measures incremental maintenance against the
// re-decompose baseline on a power-law social graph, whose diverse core
// numbers keep subcores community-sized (on uniform-core graphs the level
// set — and thus the subcore walk — can span the whole graph, and the two
// approaches converge).
func BenchmarkMaintainerChurn(b *testing.B) {
	g := gen.SocialGraph(5000, 25000, 42).Build()
	m := NewMaintainer(g, Decompose(g))
	rnd := rand.New(rand.NewSource(7))
	type op struct {
		u, v graph.V
	}
	ops := make([]op, 1024)
	for i := range ops {
		ops[i] = op{graph.V(rnd.Intn(5000)), graph.V(rnd.Intn(5000))}
	}
	b.Run("incremental", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := ops[i%len(ops)]
			if o.u == o.v {
				continue
			}
			if g.HasEdge(o.u, o.v) {
				m.RemoveEdge(o.u, o.v)
			} else {
				m.InsertEdge(o.u, o.v)
			}
		}
	})
	b.Run("redecompose", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			o := ops[i%len(ops)]
			if o.u == o.v {
				continue
			}
			if g.HasEdge(o.u, o.v) {
				g.RemoveEdge(o.u, o.v)
			} else {
				g.AddEdge(o.u, o.v)
			}
			Decompose(g)
		}
	})
}
