// Package graph implements the spatial-graph substrate of the paper's data
// model (Section 3): an undirected graph G(V, E) whose vertices carry 2-D
// locations. Vertices are dense int32 indices 0..n-1; adjacency is stored in
// compressed sparse row (CSR) form so neighbor iteration is allocation-free.
//
// Locations are mutable (SetLoc) because the dynamic experiment of Section
// 5.2.3 replays check-ins that move users. Topology is mutable too — real
// geo-social backends churn friendships, not just locations — through a
// copy-on-write delta layer over the CSR (AddEdge, RemoveEdge, dynamic.go)
// that is periodically compacted back into CSR form; a separate topology
// epoch versions the edge set the way the location epoch versions locations.
package graph

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"sacsearch/internal/geom"
)

// V is the vertex identifier type. Dense indices keep the per-vertex arrays
// used by every algorithm compact.
type V = int32

// Graph is an undirected spatial graph in CSR form.
type Graph struct {
	// n is the vertex count. It is immutable for the life of the Graph and
	// deliberately NOT derived from offsets: Compact replaces the offsets
	// slice under topology mutation, so every accessor that must stay safe
	// without the caller's lock (NumVertices, and through it range checks
	// and Searcher.Clone scratch sizing) reads this field instead.
	n int

	offsets []int32 // len n+1; adjacency of v is adj[offsets[v]:offsets[v+1]]
	adj     []V

	// patched holds the adjacency rows mutated since the last compaction:
	// AddEdge/RemoveEdge copy a vertex's CSR row here on first touch and
	// edit the copy in place (see dynamic.go). nil when the graph has no
	// pending deltas, which keeps the static read path at one nil check.
	patched map[V][]V

	locs   []geom.Point
	m      int      // number of undirected edges
	labels []string // optional external vertex names; may be nil

	// frozen marks the graph as an immutable published view (Freeze). Every
	// mutator panics on a frozen graph: snapshot-isolated serving publishes
	// clones to lock-free readers, so a mutation slipping through would be a
	// data race, not a recoverable error.
	frozen bool

	// locEpoch counts SetLoc calls. Location-derived caches (sorted candidate
	// distances, spatial indexes) validate against it instead of re-deriving
	// from scratch on every query: a cache is stale only when the epoch moved.
	locEpoch uint64
	// topoEpoch counts AddEdge/RemoveEdge calls, versioning the edge set the
	// same way. Topology-derived caches (community memberships, induced
	// subgraphs, core numbers) validate against it.
	topoEpoch uint64
}

// NumVertices returns |V|. Safe to call concurrently with topology
// mutation (the count never changes); everything else on a mutating Graph
// needs the caller's usual locking.
func (g *Graph) NumVertices() int { return g.n }

// NumEdges returns |E| (undirected edges counted once).
func (g *Graph) NumEdges() int { return g.m }

// AvgDegree returns 2m/n, the d̂ statistic of Table 4.
func (g *Graph) AvgDegree() float64 {
	n := g.NumVertices()
	if n == 0 {
		return 0
	}
	return 2 * float64(g.m) / float64(n)
}

// Neighbors returns the adjacency list of v as a shared slice, sorted
// ascending. Callers must not modify it; it is valid until the next topology
// mutation.
func (g *Graph) Neighbors(v V) []V {
	if g.patched != nil {
		if nb, ok := g.patched[v]; ok {
			return nb
		}
	}
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Degree returns deg_G(v).
func (g *Graph) Degree(v V) int {
	if g.patched != nil {
		if nb, ok := g.patched[v]; ok {
			return len(nb)
		}
	}
	return int(g.offsets[v+1] - g.offsets[v])
}

// Loc returns the location of v.
func (g *Graph) Loc(v V) geom.Point { return g.locs[v] }

// SetLoc updates the location of v. It is not safe for concurrent use with
// readers, and panics on a frozen graph.
func (g *Graph) SetLoc(v V, p geom.Point) {
	g.mustBeMutable()
	g.locs[v] = p
	g.locEpoch++
}

// Freeze marks the graph immutable: every later SetLoc, AddEdge, RemoveEdge
// or Compact panics. A frozen graph is safe for concurrent readers without
// any locking — the property snapshot publication relies on. Freezing is
// one-way; Clone returns a mutable copy.
func (g *Graph) Freeze() { g.frozen = true }

// Frozen reports whether Freeze has been called.
func (g *Graph) Frozen() bool { return g.frozen }

// mustBeMutable panics when the graph is frozen. Mutating a published
// snapshot is a programming bug (it races with lock-free readers), so it is
// a panic rather than an error.
func (g *Graph) mustBeMutable() {
	if g.frozen {
		panic("graph: mutation of a frozen graph")
	}
}

// LocEpoch returns the location version: it changes whenever SetLoc is
// called. Consumers that cache location-derived data compare epochs to
// decide whether the cache is still valid.
func (g *Graph) LocEpoch() uint64 { return g.locEpoch }

// Locs returns the backing location slice (shared, do not resize). It exists
// so bulk consumers (spatial index, generators) avoid per-vertex calls.
func (g *Graph) Locs() []geom.Point { return g.locs }

// Dist returns the Euclidean distance |u, v| between the locations of u and v.
func (g *Graph) Dist(u, v V) float64 { return g.locs[u].Dist(g.locs[v]) }

// HasEdge reports whether {u, v} is an edge. Adjacency lists are sorted, so
// this is a binary search.
func (g *Graph) HasEdge(u, v V) bool {
	nb := g.Neighbors(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	return i < len(nb) && nb[i] == v
}

// Label returns the external name of v, or its index rendered as text when
// no labels were provided.
func (g *Graph) Label(v V) string {
	if g.labels != nil && g.labels[v] != "" {
		return g.labels[v]
	}
	return fmt.Sprintf("v%d", v)
}

// SetLabels attaches external vertex names; len(labels) must equal n. It is
// a mutator like SetLoc and panics on a frozen graph.
func (g *Graph) SetLabels(labels []string) error {
	g.mustBeMutable()
	if len(labels) != g.NumVertices() {
		return fmt.Errorf("graph: %d labels for %d vertices", len(labels), g.NumVertices())
	}
	g.labels = labels
	return nil
}

// Points returns the locations of the given vertices, appended to dst.
func (g *Graph) Points(vs []V, dst []geom.Point) []geom.Point {
	for _, v := range vs {
		dst = append(dst, g.locs[v])
	}
	return dst
}

// MCCOf returns the minimum covering circle of the given vertices' locations.
func (g *Graph) MCCOf(vs []V) geom.Circle {
	pts := make([]geom.Point, 0, len(vs))
	return geom.MCC(g.Points(vs, pts))
}

// NearestNeighbor returns the adjacent vertex of q closest to q's location,
// or -1 when q has no neighbors. Used by the k=1 fast path of SAC search
// (Section 4.1).
func (g *Graph) NearestNeighbor(q V) V {
	best := V(-1)
	bestD := math.Inf(1)
	for _, u := range g.Neighbors(q) {
		if d := g.locs[q].Dist2(g.locs[u]); d < bestD {
			bestD = d
			best = u
		}
	}
	return best
}

// Clone returns a deep copy of the graph. The CSR slices are shared — they
// are never edited in place (mutations go through the delta layer and
// compaction replaces them wholesale) — while the delta layer, locations and
// labels are copied so the clone can diverge, which the dynamic-replay
// experiments and snapshot publication rely on. The clone is always mutable,
// even when g is frozen.
func (g *Graph) Clone() *Graph {
	locs := make([]geom.Point, len(g.locs))
	copy(locs, g.locs)
	var labels []string
	if g.labels != nil {
		labels = make([]string, len(g.labels))
		copy(labels, g.labels)
	}
	var patched map[V][]V
	if g.patched != nil {
		patched = make(map[V][]V, len(g.patched))
		for v, nb := range g.patched {
			patched[v] = append([]V(nil), nb...)
		}
	}
	return &Graph{
		n: g.n, offsets: g.offsets, adj: g.adj, patched: patched,
		locs: locs, m: g.m, labels: labels,
		locEpoch: g.locEpoch, topoEpoch: g.topoEpoch,
	}
}

// Builder accumulates edges and locations, then produces an immutable Graph.
// Duplicate edges and self-loops are dropped at Build time.
type Builder struct {
	n     int
	us    []V
	vs    []V
	locs  []geom.Point
	hasLo []bool
}

// NewBuilder creates a builder for a graph with n vertices, all initially at
// the origin.
func NewBuilder(n int) *Builder {
	return &Builder{
		n:     n,
		locs:  make([]geom.Point, n),
		hasLo: make([]bool, n),
	}
}

// NumVertices returns the vertex count the builder was created with.
func (b *Builder) NumVertices() int { return b.n }

// AddEdge records the undirected edge {u, v}. Self-loops are ignored.
// Vertices out of range cause a panic: callers construct ids themselves, so
// a range error is a programming bug, not an input error.
func (b *Builder) AddEdge(u, v V) {
	if u == v {
		return
	}
	if u < 0 || int(u) >= b.n || v < 0 || int(v) >= b.n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, b.n))
	}
	b.us = append(b.us, u)
	b.vs = append(b.vs, v)
}

// SetLoc records the location of v.
func (b *Builder) SetLoc(v V, p geom.Point) {
	b.locs[v] = p
	b.hasLo[v] = true
}

// HasLoc reports whether SetLoc has been called for v.
func (b *Builder) HasLoc(v V) bool { return b.hasLo[v] }

// LocOf returns the location recorded for v (the zero Point when unset).
func (b *Builder) LocOf(v V) geom.Point { return b.locs[v] }

// NumEdgesAdded returns the raw count of AddEdge calls (before dedup).
func (b *Builder) NumEdgesAdded() int { return len(b.us) }

// Build produces the immutable CSR graph, deduplicating parallel edges.
func (b *Builder) Build() *Graph {
	n := b.n
	deg := make([]int32, n)
	for i := range b.us {
		deg[b.us[i]]++
		deg[b.vs[i]]++
	}
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + deg[v]
	}
	adj := make([]V, offsets[n])
	cursor := make([]int32, n)
	copy(cursor, offsets[:n])
	for i := range b.us {
		u, v := b.us[i], b.vs[i]
		adj[cursor[u]] = v
		cursor[u]++
		adj[cursor[v]] = u
		cursor[v]++
	}
	// Sort each adjacency list and drop duplicates in place.
	outOff := make([]int32, n+1)
	out := adj[:0]
	written := int32(0)
	for v := 0; v < n; v++ {
		lo, hi := offsets[v], offsets[v+1]
		nb := adj[lo:hi]
		slices.Sort(nb)
		outOff[v] = written
		var prev V = -1
		for _, u := range nb {
			if u != prev {
				out = append(out, u)
				written++
				prev = u
			}
		}
	}
	outOff[n] = written
	// out aliases adj; copy the compacted prefix into a right-sized slice.
	finalAdj := make([]V, written)
	copy(finalAdj, out)
	m := 0
	for v := 0; v < n; v++ {
		m += int(outOff[v+1] - outOff[v])
	}
	g := &Graph{n: n, offsets: outOff, adj: finalAdj, locs: b.locs, m: m / 2}
	return g
}
