// Package shard partitions a spatial graph into per-shard subgraphs for the
// scatter-gather serving topology (cmd/sacrouter over N sacserver shards).
//
// The partitioner is spatial and deterministic: vertices are bucketed by the
// uniform grid the query path already uses (internal/spatial), cells are
// walked in row-major order, and contiguous runs of cells are assigned to
// shards greedily so vertex counts stay balanced. SAC queries are spatially
// local — the answer lives inside a small circle around q — so grid-contiguous
// shards keep most candidate communities inside one shard.
//
// Every shard subgraph keeps the full global vertex-id space (vertices owned
// elsewhere are simply isolated), so the snapshot engine, WAL, checkpoints
// and replication all run on it unchanged and no id remapping exists
// anywhere. Edges with at least one owned endpoint are materialized; the
// non-owned endpoint of such a cut edge is a ghost vertex: its adjacency is
// partial and its location is frozen at partition time, which is safe because
// no certified answer ever reads a ghost's location (see cert.go) and the
// router's slow path re-reads every vertex from its owning shard.
package shard

import (
	"errors"
	"fmt"

	"sacsearch/internal/graph"
	"sacsearch/internal/spatial"
)

// cellsPerShard is the grid granularity target: enough cells per shard that
// the greedy walk can balance vertex counts, few enough that cells stay
// spatially meaningful.
const cellsPerShard = 64

// Map is a shard assignment: exactly one owning shard per vertex, plus the
// edge accounting the router needs to report global totals.
type Map struct {
	Shards int
	N      int // global vertex count
	// Edges is the global undirected edge count at partition time.
	Edges int
	// CrossEdges is how many of those edges have endpoints on two different
	// shards (each such edge is materialized on both shards, with a ghost
	// endpoint on each side).
	CrossEdges int
	// Owner maps each vertex to its owning shard.
	Owner []uint16
}

// OwnerOf returns the shard owning v.
func (m *Map) OwnerOf(v graph.V) int { return int(m.Owner[v]) }

// OwnedCount returns how many vertices shard id owns.
func (m *Map) OwnedCount(id int) int {
	c := 0
	for _, o := range m.Owner {
		if int(o) == id {
			c++
		}
	}
	return c
}

// Partition assigns every vertex of g to one of the given number of shards.
// The assignment is a pure function of the vertex locations and shard count:
// the same graph (or a Clone of it) partitioned with the same count yields an
// identical Map, so shards cut on different machines from the same graph file
// agree.
func Partition(g *graph.Graph, shards int) (*Map, error) {
	n := g.NumVertices()
	if shards < 1 {
		return nil, errors.New("shard: shard count must be >= 1")
	}
	if shards > 1<<16 {
		return nil, fmt.Errorf("shard: shard count %d exceeds the format limit %d", shards, 1<<16)
	}
	if n == 0 {
		return nil, errors.New("shard: cannot partition an empty graph")
	}

	target := n / (shards * cellsPerShard)
	if target < 1 {
		target = 1
	}
	grid := spatial.NewGrid(g.Locs(), target)
	cols, rows := grid.Dims()

	owner := make([]uint16, n)
	cur := 0
	curCount := 0
	remaining := n
	remainingShards := shards
	quota := (remaining + remainingShards - 1) / remainingShards
	for idx := 0; idx < cols*rows; idx++ {
		bucket := grid.Bucket(idx)
		for _, v := range bucket {
			owner[v] = uint16(cur)
		}
		curCount += len(bucket)
		remaining -= len(bucket)
		if curCount >= quota && cur < shards-1 {
			cur++
			curCount = 0
			remainingShards--
			if remaining > 0 {
				quota = (remaining + remainingShards - 1) / remainingShards
			}
		}
	}

	m := &Map{Shards: shards, N: n, Owner: owner}
	for u := 0; u < n; u++ {
		for _, w := range g.Neighbors(graph.V(u)) {
			if int(w) <= u {
				continue
			}
			m.Edges++
			if owner[u] != owner[w] {
				m.CrossEdges++
			}
		}
	}
	return m, nil
}

// Subgraph extracts shard id's serving graph: the full global vertex-id
// space, every edge with at least one endpoint owned by id, and every
// location copied as of g's current state. Vertices owned elsewhere are
// either ghosts (endpoints of cut edges, partial adjacency) or isolated.
func Subgraph(g *graph.Graph, m *Map, id int) (*graph.Graph, error) {
	if id < 0 || id >= m.Shards {
		return nil, fmt.Errorf("shard: id %d out of range [0,%d)", id, m.Shards)
	}
	if g.NumVertices() != m.N {
		return nil, fmt.Errorf("shard: graph has %d vertices, map covers %d", g.NumVertices(), m.N)
	}
	b := graph.NewBuilder(m.N)
	for u := 0; u < m.N; u++ {
		for _, w := range g.Neighbors(graph.V(u)) {
			if int(w) <= u {
				continue
			}
			if int(m.Owner[u]) == id || int(m.Owner[w]) == id {
				b.AddEdge(graph.V(u), w)
			}
		}
	}
	for v := 0; v < m.N; v++ {
		b.SetLoc(graph.V(v), g.Loc(graph.V(v)))
	}
	return b.Build(), nil
}

// Serving is one shard's view of the topology: the map plus its own id.
type Serving struct {
	Map *Map
	ID  int
}

// NewServing validates id against m.
func NewServing(m *Map, id int) (*Serving, error) {
	if m == nil {
		return nil, errors.New("shard: nil map")
	}
	if id < 0 || id >= m.Shards {
		return nil, fmt.Errorf("shard: id %d out of range [0,%d)", id, m.Shards)
	}
	return &Serving{Map: m, ID: id}, nil
}

// Owns reports whether this shard owns v.
func (s *Serving) Owns(v graph.V) bool {
	return int(v) >= 0 && int(v) < s.Map.N && int(s.Map.Owner[v]) == s.ID
}

// Counts returns how many vertices this shard owns and how many ghosts
// (non-owned vertices with materialized edges) its graph g carries.
func (s *Serving) Counts(g *graph.Graph) (owned, ghosts int) {
	for v := 0; v < g.NumVertices(); v++ {
		if s.Owns(graph.V(v)) {
			owned++
		} else if g.Degree(graph.V(v)) > 0 {
			ghosts++
		}
	}
	return owned, ghosts
}
