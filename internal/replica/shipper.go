package replica

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sacsearch/internal/graph"
	"sacsearch/internal/store"
	"sacsearch/internal/telemetry"
	"sacsearch/internal/wal"
)

// ShipperOptions tunes the leader side of replication. The zero value
// serves: 500 ms heartbeats, 5 ms tail polling, 512-record batches.
type ShipperOptions struct {
	// Heartbeat is the interval between heartbeat messages on an idle
	// stream; a follower declares the leader dead after missing several.
	Heartbeat time.Duration
	// Poll paces the WAL tail polling loop when the cursor is caught up.
	Poll time.Duration
	// BatchMax bounds the records shipped in one stream message.
	BatchMax int
	// Logger receives connection-level events (defaults to slog.Default()).
	Logger *slog.Logger
	// Metrics, when non-nil, exports follower counts, the slowest acked
	// sequence, and snapshot-transfer counters.
	Metrics *telemetry.Registry
}

func (o ShipperOptions) heartbeat() time.Duration {
	if o.Heartbeat > 0 {
		return o.Heartbeat
	}
	return 500 * time.Millisecond
}

func (o ShipperOptions) poll() time.Duration {
	if o.Poll > 0 {
		return o.Poll
	}
	return 5 * time.Millisecond
}

func (o ShipperOptions) batchMax() int {
	if o.BatchMax > 0 {
		return o.BatchMax
	}
	return 512
}

func (o ShipperOptions) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.Default()
}

// Shipper accepts follower connections and streams the store's WAL to each:
// a snapshot first when the follower cannot resume (fresh, behind the
// truncation horizon, or from another epoch), then the live tail via a
// wal.Cursor per connection. It also enforces fencing: a handshake proving
// a higher epoch exists fences the store before the connection is refused.
type Shipper struct {
	st  *store.Store
	ln  net.Listener
	opt ShipperOptions

	mu     sync.Mutex
	conns  map[net.Conn]*shipSession
	closed bool
	done   chan struct{}

	snapshots atomic.Uint64 // snapshot transfers sent
}

// shipSession is the leader's per-follower state: whether the session
// reached the streaming phase (handshake accepted, state transferred) and
// the highest sequence the follower has acknowledged applying.
type shipSession struct {
	streaming atomic.Bool
	acked     atomic.Uint64
}

// ShipperStatus is the leader-side replication summary /v1/health surfaces.
type ShipperStatus struct {
	// Followers is how many follower sessions are live and streaming.
	Followers int `json:"followers"`
	// MinAckedSeq is the slowest live follower's acknowledged applied seq
	// (0 when no follower is connected, or a follower has yet to ack).
	MinAckedSeq uint64 `json:"minAckedSeq"`
}

// Status reports the current follower sessions. Comparing MinAckedSeq with
// the store's WalLastSeq gives replication lag as seen from the leader.
func (s *Shipper) Status() ShipperStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	var st ShipperStatus
	for _, sess := range s.conns {
		if !sess.streaming.Load() {
			continue
		}
		a := sess.acked.Load()
		if st.Followers == 0 || a < st.MinAckedSeq {
			st.MinAckedSeq = a
		}
		st.Followers++
	}
	return st
}

// NewShipper starts serving replication on ln (owned by the shipper from
// now on). Close stops the accept loop and every active stream.
func NewShipper(st *store.Store, ln net.Listener, opt ShipperOptions) *Shipper {
	s := &Shipper{st: st, ln: ln, opt: opt,
		conns: make(map[net.Conn]*shipSession), done: make(chan struct{})}
	if reg := opt.Metrics; reg != nil {
		reg.GaugeFunc("sac_replication_followers", "Live streaming follower sessions.",
			func() float64 { return float64(s.Status().Followers) })
		reg.GaugeFunc("sac_replication_min_acked_seq", "Slowest live follower's acknowledged WAL seq.",
			func() float64 { return float64(s.Status().MinAckedSeq) })
		reg.CounterFunc("sac_replication_snapshot_transfers_total", "Full snapshot transfers sent to followers.",
			s.snapshots.Load)
	}
	go s.acceptLoop()
	return s
}

// Addr returns the listening address followers dial.
func (s *Shipper) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and tears down active streams.
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.ln.Close()
	<-s.done
}

func (s *Shipper) acceptLoop() {
	defer close(s.done)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		sess := &shipSession{}
		s.conns[conn] = sess
		s.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			s.serve(conn, sess)
			s.mu.Lock()
			delete(s.conns, conn)
			s.mu.Unlock()
		}()
	}
}

// serve runs one follower session to completion.
func (s *Shipper) serve(conn net.Conn, sess *shipSession) {
	defer conn.Close()
	logger := s.opt.logger()
	peer := conn.RemoteAddr()

	conn.SetReadDeadline(time.Now().Add(10 * time.Second))
	hs, err := readHandshake(conn)
	if err != nil {
		logger.Warn("replication handshake failed", "peer", peer, "err", err)
		return
	}
	conn.SetReadDeadline(time.Time{})

	// Fencing, inbound: the follower has seen a leader newer than us. Fence
	// our store durably before telling the follower anything, so the
	// rejection can never race a write that forks history.
	if hs.MaxEpochSeen > s.st.Epoch() {
		if err := s.st.Fence(hs.MaxEpochSeen); err != nil {
			logger.Error("fencing failed", "peer", peer, "epoch", hs.MaxEpochSeen, "err", err)
			return
		}
		logger.Warn("fenced by peer, rejecting writes", "peer", peer, "epoch", hs.MaxEpochSeen)
		s.reject(conn, hs.MaxEpochSeen)
		return
	}
	if s.st.Fenced() {
		s.reject(conn, s.st.FencedBy())
		return
	}

	epoch := s.st.Epoch()
	hbMillis := uint32(s.opt.heartbeat() / time.Millisecond)

	// Tail resume is only sound within one epoch (seq numbering aliases
	// across promotions) and while the WAL still holds the follower's
	// position; everything else gets a snapshot.
	var cur *wal.Cursor
	startSeq := hs.AfterSeq
	if hs.AppliedEpoch == epoch && hs.AfterSeq <= s.st.WalLastSeq() {
		cur, err = wal.OpenCursor(s.st.Dir(), hs.AfterSeq)
		if err != nil && !errors.Is(err, wal.ErrGap) {
			logger.Warn("opening replication cursor failed", "peer", peer, "seq", hs.AfterSeq, "err", err)
			return
		}
	}
	if cur == nil {
		cur, startSeq, err = s.sendSnapshot(conn, epoch, hbMillis)
		if err != nil {
			logger.Warn("snapshot transfer failed", "peer", peer, "err", err)
			return
		}
		s.snapshots.Add(1)
	} else {
		if err := writeResponse(conn, response{Status: statusTail, Epoch: epoch,
			StartSeq: startSeq, HeartbeatMillis: hbMillis}); err != nil {
			return
		}
	}
	defer cur.Close()

	// The connection's read side carries follower acks from here on: a
	// dedicated reader keeps sess.acked current and kills the connection on
	// any framing error (the writer side then fails fast).
	ackDone := make(chan struct{})
	go func() {
		defer close(ackDone)
		var buf []byte
		for {
			typ, payload, err := readMessage(conn, buf)
			if err != nil {
				conn.Close()
				return
			}
			buf = payload[:0]
			if typ != msgAck {
				conn.Close()
				return
			}
			seq, err := decodeAck(payload)
			if err != nil {
				conn.Close()
				return
			}
			sess.acked.Store(seq)
		}
	}()
	defer func() { conn.Close(); <-ackDone }()
	sess.streaming.Store(true)

	if err := s.ship(conn, cur, epoch); err != nil {
		logger.Info("replication stream ended", "peer", peer, "seq", cur.Pos(), "err", err)
	}
}

func (s *Shipper) reject(conn net.Conn, epoch uint64) {
	conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
	_ = writeResponse(conn, response{Status: statusRejected, Epoch: epoch})
}

// sendSnapshot transfers the current published state and opens the cursor
// that continues right after it. Retried a few times because a checkpoint
// truncation can race the cursor open on a busy leader.
func (s *Shipper) sendSnapshot(conn net.Conn, epoch uint64, hbMillis uint32) (*wal.Cursor, uint64, error) {
	for attempt := 0; ; attempt++ {
		snap := s.st.Current()
		seq := snap.WalSeq()
		cur, err := wal.OpenCursor(s.st.Dir(), seq)
		if err != nil {
			if errors.Is(err, wal.ErrGap) && attempt < 3 {
				continue // truncation raced us; re-grab a fresher snapshot
			}
			return nil, 0, err
		}
		var buf bytes.Buffer
		if err := graph.WriteBinary(&buf, snap.Graph()); err != nil {
			cur.Close()
			return nil, 0, err
		}
		if err := writeResponse(conn, response{Status: statusSnapshot, Epoch: epoch,
			StartSeq: seq, HeartbeatMillis: hbMillis}); err != nil {
			cur.Close()
			return nil, 0, err
		}
		var lenBuf [8]byte
		binary.LittleEndian.PutUint64(lenBuf[:], uint64(buf.Len()))
		conn.SetWriteDeadline(time.Now().Add(time.Minute))
		if _, err := conn.Write(lenBuf[:]); err != nil {
			cur.Close()
			return nil, 0, err
		}
		if _, err := conn.Write(buf.Bytes()); err != nil {
			cur.Close()
			return nil, 0, err
		}
		conn.SetWriteDeadline(time.Time{})
		return cur, seq, nil
	}
}

// ship is the steady-state loop: poll the cursor, send record batches, and
// heartbeat when idle. Returns when the connection drops, the cursor hits
// truncated history (the follower re-syncs via snapshot on reconnect), the
// store gets fenced, or the shipper closes.
func (s *Shipper) ship(conn net.Conn, cur *wal.Cursor, epoch uint64) error {
	var payload []byte
	hbInterval := s.opt.heartbeat()
	nextHB := time.Now() // first heartbeat immediately: it carries the lag baseline
	writeDeadline := 4 * hbInterval
	if writeDeadline < 5*time.Second {
		writeDeadline = 5 * time.Second
	}
	for {
		if s.st.Fenced() {
			return store.ErrFenced
		}
		recs, err := cur.Next(s.opt.batchMax())
		if err != nil {
			return err
		}
		if len(recs) > 0 {
			payload = payload[:0]
			for i := range recs {
				payload = wal.EncodeFrame(payload, &recs[i])
			}
			conn.SetWriteDeadline(time.Now().Add(writeDeadline))
			if err := writeMessage(conn, msgRecords, payload); err != nil {
				return err
			}
			continue // drain the backlog before pausing
		}
		if now := time.Now(); !now.Before(nextHB) {
			payload = encodeHeartbeat(payload, heartbeat{
				LastSeq: s.st.WalLastSeq(), UnixNano: now.UnixNano(), Epoch: s.st.Epoch()})
			conn.SetWriteDeadline(now.Add(writeDeadline))
			if err := writeMessage(conn, msgHeartbeat, payload); err != nil {
				return err
			}
			nextHB = now.Add(hbInterval)
		}
		s.mu.Lock()
		closed := s.closed
		s.mu.Unlock()
		if closed {
			return errors.New("replica: shipper closed")
		}
		time.Sleep(s.opt.poll())
	}
}

// FenceLeader dials a leader's replication address and announces that epoch
// exists, fencing the leader if that outranks it — the operator-facing fence
// half of follower promotion, and the path a promoted node uses to make its
// predecessor reject writes. Returns the leader's reported epoch.
func FenceLeader(addr string, epoch uint64, timeout time.Duration) (uint64, error) {
	if timeout <= 0 {
		timeout = 5 * time.Second
	}
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	conn.SetDeadline(time.Now().Add(timeout))
	if err := writeHandshake(conn, handshake{MaxEpochSeen: epoch}); err != nil {
		return 0, err
	}
	resp, err := readResponse(conn)
	if err != nil {
		return 0, err
	}
	if resp.Status != statusRejected {
		return resp.Epoch, fmt.Errorf("replica: leader at %s accepted epoch %d as current (status %d)",
			addr, epoch, resp.Status)
	}
	return resp.Epoch, nil
}
