package client_test

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sacsearch/client"
	"sacsearch/internal/server"
)

// scriptedSSE serves GET /v1/subscribe from a per-connection script, so the
// reconnect/resume machinery can be exercised deterministically — real
// servers cut connections at uncontrollable points.
type scriptedSSE struct {
	t     *testing.T
	conns atomic.Int32
	serve func(conn int, w http.ResponseWriter, r *http.Request)
}

func (s *scriptedSSE) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.serve(int(s.conns.Add(1)), w, r)
}

func sseEvent(w http.ResponseWriter, id int, event, data string) {
	w.Header().Set("Content-Type", "text/event-stream")
	fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", id, event, data)
	w.(http.Flusher).Flush()
}

func collectEvents(t *testing.T, sub *client.Subscription, n int) []client.SubEvent {
	t.Helper()
	var out []client.SubEvent
	deadline := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case ev, ok := <-sub.Events:
			if !ok {
				return out
			}
			out = append(out, ev)
		case <-deadline:
			t.Fatalf("timed out: %d/%d events (got %+v)", len(out), n, out)
		}
	}
	return out
}

func TestSubscribeReconnectResumes(t *testing.T) {
	handler := &scriptedSSE{t: t}
	handler.serve = func(conn int, w http.ResponseWriter, r *http.Request) {
		switch conn {
		case 1:
			if r.Header.Get("Last-Event-ID") != "" {
				t.Error("first connection must not carry Last-Event-ID")
			}
			sseEvent(w, 1, "init", `{"sub":"s1","seq":1,"members":[1,2,3],"hash":"a"}`)
			// Connection dies without a bye: the client must reconnect.
		case 2:
			if got := r.Header.Get("Last-Event-ID"); got != "1" {
				t.Errorf("reconnect Last-Event-ID = %q, want 1", got)
			}
			sseEvent(w, 2, "delta", `{"sub":"s1","seq":2,"joined":[4],"hash":"b"}`)
			sseEvent(w, 3, "bye", `{"sub":"s1","reason":"test over"}`)
		default:
			t.Errorf("unexpected connection %d", conn)
		}
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(t.Context(), client.Query{Q: 0, K: 3}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	evs := collectEvents(t, sub, 3)
	if evs[0].Kind != "init" || evs[1].Kind != "delta" || evs[2].Kind != "bye" {
		t.Fatalf("kinds = %s/%s/%s", evs[0].Kind, evs[1].Kind, evs[2].Kind)
	}
	if evs[1].Joined[0] != 4 {
		t.Fatalf("delta joined = %v", evs[1].Joined)
	}
	if sub.ID() != "s1" {
		t.Errorf("id = %q, want the server-assigned s1", sub.ID())
	}
	if _, ok := <-sub.Events; ok {
		t.Fatal("Events still open after bye")
	}
	if !errors.Is(sub.Err(), client.ErrSubscriptionClosed) {
		t.Fatalf("Err = %v, want ErrSubscriptionClosed", sub.Err())
	}
}

func TestSubscribeExpiredResumeRestartsFresh(t *testing.T) {
	handler := &scriptedSSE{t: t}
	handler.serve = func(conn int, w http.ResponseWriter, r *http.Request) {
		switch conn {
		case 1:
			sseEvent(w, 1, "init", `{"sub":"s1","seq":1,"members":[1],"hash":"a"}`)
		case 2:
			// Resume state gone: the wire contract's 404.
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusNotFound)
			json.NewEncoder(w).Encode(server.ErrorJSON{
				Error: "unknown subscription", Code: server.CodeUnknownSubscription, Field: "id",
			})
		case 3:
			if got := r.Header.Get("Last-Event-ID"); got != "" {
				t.Errorf("fresh restart still carried Last-Event-ID %q", got)
			}
			sseEvent(w, 1, "init", `{"sub":"s1","seq":1,"members":[1,2],"hash":"b"}`)
			sseEvent(w, 2, "bye", `{"sub":"s1","reason":"done"}`)
		default:
			t.Errorf("unexpected connection %d", conn)
		}
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := c.Subscribe(t.Context(), client.Query{Q: 0, K: 3}, &client.SubscribeOptions{ID: "s1"})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()

	evs := collectEvents(t, sub, 3)
	if evs[0].Kind != "init" || evs[1].Kind != "init" || evs[2].Kind != "bye" {
		t.Fatalf("kinds = %s/%s/%s, want init/init/bye", evs[0].Kind, evs[1].Kind, evs[2].Kind)
	}
	if len(evs[1].Members) != 2 {
		t.Fatalf("fresh init members = %v", evs[1].Members)
	}
}

func TestSubscribeTerminalRejection(t *testing.T) {
	handler := &scriptedSSE{t: t}
	handler.serve = func(conn int, w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusBadRequest)
		json.NewEncoder(w).Encode(server.ErrorJSON{
			Error: "k out of range", Code: "invalid_query", Field: "k",
		})
	}
	ts := httptest.NewServer(handler)
	defer ts.Close()
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	// The first dial is synchronous, so validation failures surface at the
	// call site instead of on the channel.
	_, err = c.Subscribe(t.Context(), client.Query{Q: 0, K: -1}, nil)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "invalid_query" {
		t.Fatalf("Subscribe error = %v, want invalid_query APIError", err)
	}
}
