package dynamic

import (
	"context"
	"errors"
	"math"
	"sort"
	"strings"
	"testing"

	"sacsearch/internal/core"
	"sacsearch/internal/gen"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// movingWorld builds a graph where the query user 0 sits between two
// triangles: {0,1,2} near location L1 and {0,3,4} near L2. When user 0 is at
// L1 its SAC is the first triangle; at L2, the second.
func movingWorld() *graph.Graph {
	b := graph.NewBuilder(5)
	edges := [][2]graph.V{{0, 1}, {0, 2}, {1, 2}, {0, 3}, {0, 4}, {3, 4}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	b.SetLoc(0, geom.Point{X: 0.1, Y: 0.1})
	b.SetLoc(1, geom.Point{X: 0.1, Y: 0.12})
	b.SetLoc(2, geom.Point{X: 0.12, Y: 0.1})
	b.SetLoc(3, geom.Point{X: 0.9, Y: 0.9})
	b.SetLoc(4, geom.Point{X: 0.9, Y: 0.88})
	return b.Build()
}

func searchWith(s *core.Searcher) SearchFunc {
	return func(q graph.V, k int) ([]graph.V, geom.Circle, error) {
		res, err := s.ExactPlus(q, k, 0.2)
		if err != nil {
			return nil, geom.Circle{}, err
		}
		return res.Members, res.MCC, nil
	}
}

func TestReplayMovingUser(t *testing.T) {
	g := movingWorld()
	s := core.NewSearcher(g)
	checkins := []gen.Checkin{
		{User: 0, Time: 0.5, Loc: geom.Point{X: 0.1, Y: 0.1}},  // warm-up
		{User: 0, Time: 1.0, Loc: geom.Point{X: 0.11, Y: 0.1}}, // near triangle 1
		{User: 0, Time: 2.0, Loc: geom.Point{X: 0.89, Y: 0.9}}, // moved to triangle 2
	}
	timelines, err := Replay(context.Background(), g, checkins, []graph.V{0}, 0.9, 2, searchWith(s))
	if err != nil {
		t.Fatal(err)
	}
	snaps := timelines[0]
	if len(snaps) != 2 {
		t.Fatalf("got %d snapshots, want 2", len(snaps))
	}
	// First snapshot: community {0,1,2}; second: {0,3,4}.
	want1 := map[graph.V]bool{0: true, 1: true, 2: true}
	for _, v := range snaps[0].Members {
		if !want1[v] {
			t.Fatalf("snapshot 1 = %v", snaps[0].Members)
		}
	}
	want2 := map[graph.V]bool{0: true, 3: true, 4: true}
	for _, v := range snaps[1].Members {
		if !want2[v] {
			t.Fatalf("snapshot 2 = %v", snaps[1].Members)
		}
	}
	// The graph's final state reflects the last check-in.
	if g.Loc(0).Dist(geom.Point{X: 0.89, Y: 0.9}) > 1e-12 {
		t.Fatal("final location not applied")
	}
}

func TestReplayRejectsUnsorted(t *testing.T) {
	g := movingWorld()
	s := core.NewSearcher(g)
	checkins := []gen.Checkin{
		{User: 0, Time: 2, Loc: geom.Point{X: 0.1, Y: 0.1}},
		{User: 0, Time: 1, Loc: geom.Point{X: 0.2, Y: 0.1}},
	}
	if _, err := Replay(context.Background(), g, checkins, []graph.V{0}, 0, 2, searchWith(s)); err == nil {
		t.Fatal("unsorted stream accepted")
	}
}

func TestReplaySkipsInfeasible(t *testing.T) {
	// Vertex 0 in a path cannot form a 2-core: snapshots must be skipped,
	// not error out.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()
	s := core.NewSearcher(g)
	checkins := []gen.Checkin{{User: 0, Time: 1, Loc: geom.Point{X: 0.5, Y: 0.5}}}
	timelines, err := Replay(context.Background(), g, checkins, []graph.V{0}, 0, 2, searchWith(s))
	if err != nil {
		t.Fatal(err)
	}
	if len(timelines[0]) != 0 {
		t.Fatalf("expected no snapshots, got %v", timelines[0])
	}
}

func TestDecayComputation(t *testing.T) {
	// Hand-built timeline: identical communities 1 day apart, disjoint ones
	// 10 days apart.
	mcc1 := geom.Circle{C: geom.Point{X: 0.1, Y: 0.1}, R: 0.05}
	mcc2 := geom.Circle{C: geom.Point{X: 0.9, Y: 0.9}, R: 0.05}
	timelines := map[graph.V][]Snapshot{
		0: {
			{Time: 0, Members: []graph.V{0, 1, 2}, MCC: mcc1},
			{Time: 1, Members: []graph.V{0, 1, 2}, MCC: mcc1},
			{Time: 11, Members: []graph.V{0, 8, 9}, MCC: mcc2},
		},
	}
	points := Decay(timelines, []float64{0.5, 5})
	if len(points) != 2 {
		t.Fatalf("points = %v", points)
	}
	// η = 0.5: pairs (0,1) CJS=1 and (1,11) CJS=1/5. Average 0.6.
	p := points[0]
	if p.Pairs != 2 || math.Abs(p.CJS-0.6) > 1e-9 {
		t.Fatalf("η=0.5 point = %+v", p)
	}
	// η = 5: only pair (0, 11): CJS = 1/5, CAO = 0.
	p = points[1]
	if p.Pairs != 1 || math.Abs(p.CJS-0.2) > 1e-9 || p.CAO != 0 {
		t.Fatalf("η=5 point = %+v", p)
	}
}

// End-to-end miniature of Figure 13: synthetic stream over a clustered
// graph; CJS at small η exceeds CJS at large η.
func TestDecayEndToEnd(t *testing.T) {
	bld := gen.PowerLawGraph(400, 2400, 31)
	gen.PlaceSpatial(bld, gen.DefaultDistMean, gen.DefaultDistSigma, 32)
	g := bld.Build()
	cfg := gen.DefaultCheckinConfig()
	cfg.Days = 60
	cfg.PerUserMean = 8
	checkins := gen.Checkins(g, cfg, 33)
	movers := gen.SelectMovers(g, checkins, 5, 10)
	if len(movers) == 0 {
		t.Skip("no movers on this fixture")
	}
	s := core.NewSearcher(g)
	search := func(q graph.V, k int) ([]graph.V, geom.Circle, error) {
		res, err := s.AppFast(q, k, 0.5)
		if err != nil {
			return nil, geom.Circle{}, err
		}
		return res.Members, res.MCC, nil
	}
	timelines, err := Replay(context.Background(), g, checkins, movers, 10, 3, search)
	if err != nil {
		t.Fatal(err)
	}
	points := Decay(timelines, []float64{0.25, 20})
	if points[0].Pairs == 0 || points[1].Pairs == 0 {
		t.Skipf("insufficient pairs: %+v", points)
	}
	if points[1].CJS > points[0].CJS+0.15 {
		t.Fatalf("CJS did not decay: η=0.25 → %v, η=20 → %v", points[0].CJS, points[1].CJS)
	}
}

// TestReplayPropagatesGenuineErrors pins the error contract: only
// core.ErrNoCommunity snapshots are skipped; any other search failure aborts
// the replay, wrapped with the user and time it happened at.
func TestReplayPropagatesGenuineErrors(t *testing.T) {
	g := movingWorld()
	checkins := []gen.Checkin{
		{User: 0, Time: 1, Loc: geom.Point{X: 0.1, Y: 0.1}},
		{User: 0, Time: 2, Loc: geom.Point{X: 0.1, Y: 0.1}},
	}
	boom := errors.New("searcher exploded")
	calls := 0
	search := func(q graph.V, k int) ([]graph.V, geom.Circle, error) {
		calls++
		if calls == 1 {
			return nil, geom.Circle{}, core.ErrNoCommunity // skipped, not fatal
		}
		return nil, geom.Circle{}, boom
	}
	_, err := Replay(context.Background(), g, checkins, []graph.V{0}, 0, 2, search)
	if err == nil {
		t.Fatal("genuine search error swallowed")
	}
	if !errors.Is(err, boom) {
		t.Fatalf("error %v does not wrap the search failure", err)
	}
	if !strings.Contains(err.Error(), "user 0") || !strings.Contains(err.Error(), "2.000") {
		t.Fatalf("error %q lacks user/time context", err)
	}
	if calls != 2 {
		t.Fatalf("search called %d times, want 2 (ErrNoCommunity must not abort)", calls)
	}
}

// TestReplayWithEdgesChangesCommunities replays friendship churn: deleting
// the {1,2} tie at day 5 breaks user 0's home triangle (the search falls
// back to the far triangle {0,3,4}), and re-inserting it at day 8 restores
// the home community — each snapshot sees the topology of its instant.
func TestReplayWithEdgesChangesCommunities(t *testing.T) {
	g := movingWorld()
	s := core.NewSearcher(g)
	var checkins []gen.Checkin
	for day := 1; day <= 10; day++ {
		checkins = append(checkins, gen.Checkin{User: 0, Time: float64(day), Loc: geom.Point{X: 0.1, Y: 0.1}})
	}
	edges := []gen.EdgeEvent{
		{U: 1, V: 2, Time: 4.5, Insert: false},
		{U: 1, V: 2, Time: 7.5, Insert: true},
	}
	timelines, err := ReplayWithEdges(context.Background(), g, checkins, edges, []graph.V{0}, 0, 2, searchWith(s), ApplyVia(s))
	if err != nil {
		t.Fatal(err)
	}
	snaps := timelines[0]
	if len(snaps) != 10 {
		t.Fatalf("snapshots = %d, want 10", len(snaps))
	}
	wantHome := []graph.V{0, 1, 2}
	wantFar := []graph.V{0, 3, 4}
	for _, sn := range snaps {
		want := wantHome
		if sn.Time > 4.5 && sn.Time < 7.5 {
			want = wantFar
		}
		got := append([]graph.V(nil), sn.Members...)
		sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
		if len(got) != len(want) {
			t.Fatalf("day %.0f: members %v, want %v", sn.Time, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("day %.0f: members %v, want %v", sn.Time, got, want)
			}
		}
	}
	// The replayed searcher ends bit-identical to one built fresh on the
	// final topology (the edge was restored, so core numbers match too).
	fresh := core.NewSearcher(g)
	for v := 0; v < g.NumVertices(); v++ {
		if s.CoreNumber(graph.V(v)) != fresh.CoreNumber(graph.V(v)) {
			t.Fatalf("core[%d]: replayed %d != fresh %d", v, s.CoreNumber(graph.V(v)), fresh.CoreNumber(graph.V(v)))
		}
	}
}

// TestReplayWithEdgesValidation covers the edge-stream error paths.
func TestReplayWithEdgesValidation(t *testing.T) {
	g := movingWorld()
	s := core.NewSearcher(g)
	checkins := []gen.Checkin{{User: 0, Time: 1, Loc: geom.Point{X: 0.1, Y: 0.1}}}
	edges := []gen.EdgeEvent{{U: 1, V: 2, Time: 0.5}}
	if _, err := ReplayWithEdges(context.Background(), g, checkins, edges, nil, 0, 2, searchWith(s), nil); err == nil {
		t.Fatal("edge events without an apply function accepted")
	}
	unsorted := []gen.EdgeEvent{{U: 1, V: 2, Time: 0.8}, {U: 1, V: 2, Time: 0.2, Insert: true}}
	if _, err := ReplayWithEdges(context.Background(), g, checkins, unsorted, nil, 0, 2, searchWith(s), ApplyVia(s)); err == nil {
		t.Fatal("unsorted edge events accepted")
	}
	bad := []gen.EdgeEvent{{U: 1, V: 99, Time: 0.5, Insert: true}}
	if _, err := ReplayWithEdges(context.Background(), movingWorld(), checkins, bad, nil, 0, 2, searchWith(s), ApplyVia(s)); err == nil {
		t.Fatal("out-of-range edge event accepted")
	}
}
