package router

import (
	"errors"
	"fmt"
	"sort"
	"testing"
	"time"

	"sacsearch/client"
)

// replayView folds a subscription's event stream into the state a consumer
// would hold.
type replayView struct {
	members     map[int64]bool
	noCommunity bool
	sawInit     bool
}

func (rv *replayView) apply(t *testing.T, ev client.SubEvent) {
	t.Helper()
	switch ev.Kind {
	case "init":
		rv.sawInit = true
		rv.members = make(map[int64]bool, len(ev.Members))
		for _, v := range ev.Members {
			rv.members[v] = true
		}
	case "delta":
		if !rv.sawInit {
			t.Fatalf("delta before init: %+v", ev)
		}
		for _, v := range ev.Joined {
			rv.members[v] = true
		}
		for _, v := range ev.Left {
			delete(rv.members, v)
		}
	case "bye":
	default:
		t.Fatalf("unexpected event kind %q", ev.Kind)
	}
	rv.noCommunity = ev.NoCommunity
}

func (rv *replayView) sorted() []int64 {
	out := make([]int64, 0, len(rv.members))
	for v := range rv.members {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// matchesFresh reports whether the replayed view equals a fresh routed
// query answered on the current (quiesced) topology.
func (rv *replayView) matchesFresh(tp *topology, t *testing.T, q client.Query) bool {
	t.Helper()
	res, err := tp.routerCl.Query(t.Context(), q)
	if err != nil {
		if errors.Is(err, client.ErrNoCommunity) {
			return rv.sawInit && rv.noCommunity
		}
		t.Fatalf("fresh routed query: %v", err)
	}
	if !rv.sawInit || rv.noCommunity {
		return false
	}
	return fmt.Sprint(rv.sorted()) == fmt.Sprint(res.Members)
}

// TestRoutedSubscriptionDifferential is the routed twin of the
// single-engine differential: standing queries held by the router, fed by
// the shards' publication firehoses, must converge on exactly the answer a
// fresh routed /v1/query gives on the final topology — across certified,
// assembled and θ-SAC paths, under cross-shard churn.
func TestRoutedSubscriptionDifferential(t *testing.T) {
	g := testGraph(200, 900, 17)
	tp := newTopology(t, g, 2)

	queries := []client.Query{
		{Q: 3, K: 3, Algo: "appfast"},
		{Q: 3, K: 3, Algo: "appinc"},
		{Q: 11, K: 2, Algo: "appacc"},
		{Q: 3, K: 2, Algo: "theta", Theta: client.Float(0.3)},
		{Q: 7, K: 40, Algo: "appfast"}, // no community at this k
	}
	subs := make([]*client.Subscription, len(queries))
	views := make([]*replayView, len(queries))
	for i, q := range queries {
		sub, err := tp.routerCl.Subscribe(t.Context(), q, &client.SubscribeOptions{
			ID: fmt.Sprintf("routed-%d", i), Buffer: 1024,
		})
		if err != nil {
			t.Fatalf("subscribe %s: %v", q.Algo, err)
		}
		defer sub.Close()
		subs[i] = sub
		views[i] = &replayView{}
	}

	// Every subscription must deliver its init before churn starts, so the
	// stream observes the transitions rather than folding them into the
	// first evaluation.
	for i := range subs {
		select {
		case ev := <-subs[i].Events:
			views[i].apply(t, ev)
		case <-time.After(15 * time.Second):
			t.Fatalf("no init for %s", queries[i].Algo)
		}
	}

	// Cross-shard churn through the router's write path: moves near and
	// far, edge flips crossing the cut.
	ctx := t.Context()
	for i := 0; i < 30; i++ {
		v := int64((i * 7) % g.NumVertices())
		loc := g.Loc(0)
		if err := tp.routerCl.CheckIn(ctx, v, loc.X+float64(i)*0.01, loc.Y-float64(i)*0.005); err != nil {
			t.Fatalf("checkin: %v", err)
		}
		if i%3 == 0 {
			u, w := int64(i%g.NumVertices()), int64((i*13+1)%g.NumVertices())
			if u != w {
				if _, err := tp.routerCl.Edge(ctx, u, w, i%2 == 0); err != nil {
					t.Fatalf("edge: %v", err)
				}
			}
		}
	}

	// Convergence: drain each stream until the replayed state matches a
	// fresh routed query on the quiesced topology.
	for i, q := range queries {
		deadline := time.After(20 * time.Second)
		for {
			if views[i].matchesFresh(tp, t, q) {
				break
			}
			select {
			case ev, ok := <-subs[i].Events:
				if !ok {
					t.Fatalf("%s: stream closed before convergence: %v", q.Algo, subs[i].Err())
				}
				views[i].apply(t, ev)
			case <-deadline:
				res, err := tp.routerCl.Query(t.Context(), q)
				t.Fatalf("%s: never converged: replayed %v (noCommunity=%v), fresh %+v err=%v",
					q.Algo, views[i].sorted(), views[i].noCommunity, res, err)
			}
		}
	}
}

// TestRoutedSubscriptionGate: with the candidate watch set wholly inside
// one shard, far-away check-ins must be absorbed by the router's gate.
func TestRoutedSubscriptionGate(t *testing.T) {
	g := testGraph(200, 900, 17)
	tp := newTopology(t, g, 2)
	rtHandler := tp.routerHandler(t)

	sub, err := tp.routerCl.Subscribe(t.Context(), client.Query{Q: 3, K: 3, Algo: "appfast"},
		&client.SubscribeOptions{ID: "gated", Buffer: 1024})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	select {
	case <-sub.Events:
	case <-time.After(15 * time.Second):
		t.Fatal("no init")
	}

	gsub, ok := rtHandler.subs.hub.Get("gated")
	if !ok {
		t.Fatal("subscription not registered on the router")
	}
	rg := gsub.Gate.(*rgate)
	if rg.watch == nil {
		t.Skip("watch set unknown (assembled answer too wide); gate degrades to evaluate-all")
	}
	// Pick movers outside the watch set.
	var movers []int64
	for v := 0; v < g.NumVertices() && len(movers) < 10; v++ {
		if _, in := rg.watch[int64(v)]; !in {
			movers = append(movers, int64(v))
		}
	}
	skipped0 := rtHandler.subs.hub.Skipped().Value()
	evals0 := rtHandler.subs.hub.Evals().Value()
	ctx := t.Context()
	for i, v := range movers {
		if err := tp.routerCl.CheckIn(ctx, v, 0.9+float64(i)*0.001, 0.9); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(10 * time.Second)
	for rtHandler.subs.hub.Skipped().Value() <= skipped0 {
		if time.Now().After(deadline) {
			t.Fatalf("router gate never skipped: skipped %d -> %d, evals %d -> %d",
				skipped0, rtHandler.subs.hub.Skipped().Value(), evals0, rtHandler.subs.hub.Evals().Value())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := rtHandler.subs.hub.Evals().Value(); got != evals0 {
		t.Errorf("far-away moves re-evaluated the routed standing query (%d -> %d)", evals0, got)
	}
}

// TestRoutedSubscriptionDrain: DrainSubscriptions must flush a terminal bye
// to every attached stream.
func TestRoutedSubscriptionDrain(t *testing.T) {
	g := testGraph(80, 300, 5)
	tp := newTopology(t, g, 2)
	rtHandler := tp.routerHandler(t)

	sub, err := tp.routerCl.Subscribe(t.Context(), client.Query{Q: 1, K: 2, Algo: "appfast"},
		&client.SubscribeOptions{ID: "drained"})
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	select {
	case <-sub.Events:
	case <-time.After(15 * time.Second):
		t.Fatal("no init")
	}
	rtHandler.DrainSubscriptions()
	deadline := time.After(10 * time.Second)
	for {
		select {
		case ev, ok := <-sub.Events:
			if !ok {
				t.Fatalf("stream closed without bye: %v", sub.Err())
			}
			if ev.Kind == "bye" {
				return
			}
		case <-deadline:
			t.Fatal("no bye after router drain")
		}
	}
}
