package exp

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// Experiment is one registered table/figure reproduction.
type Experiment struct {
	ID    string
	Title string
	// Paper summarizes the shape the paper reports, so a reader can compare
	// the printed rows against the expectation without the PDF.
	Paper string
	Run   func(cfg Config, w io.Writer) error
}

// Registry holds every experiment, keyed by id.
var Registry = map[string]Experiment{
	"table3": {
		ID: "table3", Title: "Table 3: algorithm ratios and complexities",
		Paper: "static overview; ratios validated empirically by fig9",
		Run: func(cfg Config, w io.Writer) error {
			printTable3(w, Table3())
			return nil
		},
	},
	"table4": {
		ID: "table4", Title: "Table 4: dataset statistics",
		Paper: "six datasets, 30k-2.1M vertices, avg degree 7.67-20",
		Run: func(cfg Config, w io.Writer) error {
			rows, err := Table4(cfg)
			if err != nil {
				return err
			}
			printTable4(w, rows, cfg.Scale)
			return nil
		},
	},
	"table5": {
		ID: "table5", Title: "Table 5: parameter settings",
		Paper: "εF/εA defaults 0.5, k default 4, θ default 1e-4",
		Run: func(cfg Config, w io.Writer) error {
			printTable5(w, Table5())
			return nil
		},
	},
	"fig9a": {
		ID: "fig9a", Title: "Figure 9(a): AppFast actual vs theoretical ratio",
		Paper: "actual ratio ≈2.0 even when the guarantee is 4.0",
		Run: func(cfg Config, w io.Writer) error {
			rows, err := Fig9AppFast(cfg)
			if err != nil {
				return err
			}
			printFig9(w, rows)
			return nil
		},
	},
	"fig9b": {
		ID: "fig9b", Title: "Figure 9(b): AppAcc actual vs theoretical ratio",
		Paper: "actual ratio ≤1.1 across εA ∈ [0.01, 0.9]",
		Run: func(cfg Config, w io.Writer) error {
			rows, err := Fig9AppAcc(cfg)
			if err != nil {
				return err
			}
			printFig9(w, rows)
			return nil
		},
	},
	"fig10": {
		ID: "fig10", Title: "Figure 10: radius and distPr vs Global/Local/GeoModu",
		Paper: "Global/Local radii 50×/20× SAC's; GeoModu in between with avg degree ≈2.2/1.1",
		Run: func(cfg Config, w io.Writer) error {
			rows, err := Fig10(cfg)
			if err != nil {
				return err
			}
			printFig10(w, rows)
			return nil
		},
	},
	"fig11": {
		ID: "fig11", Title: "Figure 11: θ-SAC sensitivity",
		Paper: "small θ → few non-empty results; large θ → radii 5-10× Exact+",
		Run: func(cfg Config, w io.Writer) error {
			rows, err := Fig11(cfg)
			if err != nil {
				return err
			}
			printFig11(w, rows)
			return nil
		},
	},
	"fig12approx": {
		ID: "fig12approx", Title: "Figure 12(a-e): approximation algorithms vs k",
		Paper: "AppFast fastest; AppInc grows with k; AppAcc stable in k",
		Run: func(cfg Config, w io.Writer) error {
			rows, err := Fig12Approx(cfg)
			if err != nil {
				return err
			}
			printFig12(w, rows)
			return nil
		},
	},
	"fig12exact": {
		ID: "fig12exact", Title: "Figure 12(f-j): exact algorithms vs k",
		Paper: "Exact+ ≥4 orders of magnitude faster than Exact",
		Run: func(cfg Config, w io.Writer) error {
			rows, err := Fig12Exact(cfg)
			if err != nil {
				return err
			}
			printFig12(w, rows)
			return nil
		},
	},
	"fig12scale": {
		ID: "fig12scale", Title: "Figure 12(k-o): scalability vs vertex percentage",
		Paper: "all approximation algorithms scale near-linearly with n",
		Run: func(cfg Config, w io.Writer) error {
			rows, err := Fig12Scale(cfg)
			if err != nil {
				return err
			}
			printFig12Scale(w, rows)
			return nil
		},
	},
	"fig13": {
		ID: "fig13", Title: "Figure 13: CJS/CAO decay on a dynamic spatial graph",
		Paper: "CJS ≈75% after 6h, decaying toward 0.4-0.5 by 15 days",
		Run: func(cfg Config, w io.Writer) error {
			fcfg := DefaultFig13Config()
			fcfg.Config = cfg
			fcfg.FastSearch = cfg.Quick
			points, err := Fig13(fcfg)
			if err != nil {
				return err
			}
			printFig13(w, points)
			return nil
		},
	},
	"fig14": {
		ID: "fig14", Title: "Figure 14: effect of εA on Exact+",
		Paper: "|F1| grows with εA; run time has a local minimum",
		Run: func(cfg Config, w io.Writer) error {
			rows, err := Fig14(cfg)
			if err != nil {
				return err
			}
			printFig14(w, rows)
			return nil
		},
	},
	"extensions": {
		ID: "extensions", Title: "Section 6 extensions: structure metrics, min-diameter, batch",
		Paper: "future-work features validated on the figure workloads (not a paper artifact)",
		Run: func(cfg Config, w io.Writer) error {
			st, err := ExtStructures(cfg)
			if err != nil {
				return err
			}
			dm, err := ExtMinDiam(cfg)
			if err != nil {
				return err
			}
			bt, err := ExtBatch(cfg)
			if err != nil {
				return err
			}
			printExtensions(w, st, dm, bt)
			return nil
		},
	},
}

// IDs returns the registered experiment ids, sorted.
func IDs() []string {
	out := make([]string, 0, len(Registry))
	for id := range Registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Run executes one experiment by id.
func Run(id string, cfg Config, w io.Writer) error {
	e, ok := Registry[id]
	if !ok {
		return fmt.Errorf("exp: unknown experiment %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	fprintf(w, "== %s — %s\n", e.ID, e.Title)
	fprintf(w, "   paper: %s\n", e.Paper)
	return e.Run(cfg, w)
}

// RunAll executes every experiment in id order.
func RunAll(cfg Config, w io.Writer) error {
	for _, id := range IDs() {
		if err := Run(id, cfg, w); err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		fprintf(w, "\n")
	}
	return nil
}
