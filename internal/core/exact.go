package core

import (
	"context"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// Exact is the basic exact algorithm of Section 4.1 (Algorithm 1). By Lemma
// 1, the optimal MCC is fixed by two or three vertices on its boundary, so
// Exact enumerates every pair and triple of candidate vertices — ordered so
// the member farthest from q comes last — computes the circle each fixes,
// and keeps the smallest circle whose vertex set contains a feasible
// community. The enumeration stops early once the farthest member of a
// combination is more than 2·r from q (every vertex of a feasible solution
// inside a radius-r circle that contains q is within 2r of q).
//
// Worst-case cost is O(m·n³); this is the paper's deliberately naive
// baseline and is only practical on small graphs.
func (s *Searcher) Exact(q graph.V, k int) (*Result, error) {
	return s.ExactCtx(context.Background(), q, k)
}

// ExactCtx is Exact with cancellation: the context is checked once per
// enumerated candidate pair (bounding the work after cancellation to the
// triples of one pair), returning ErrCanceled when it fires.
func (s *Searcher) ExactCtx(ctx context.Context, q graph.V, k int) (*Result, error) {
	start := s.begin()
	s.beginCtx(ctx)
	if err := s.checkQuery(q, k); err != nil {
		return nil, err
	}
	if res, handled, err := s.trivialK(q, k); handled {
		return s.finish(res, start), err
	}
	cand, err := s.candidates(q, k)
	if err != nil {
		return nil, err
	}
	X := cand.verts
	d := cand.dists
	qLoc := s.g.Loc(q)

	// Index the candidate set once; every enumerated circle then gathers its
	// members with an output-sensitive range query instead of scanning X.
	s.sGrid.Build(s.g, X, gridTargetPerCell)

	// Seed the incumbent before the scan, not after it: X itself is feasible
	// (it is the connected k-structure containing q), so its MCC bounds ropt
	// from above and makes the d[i] > 2·rcur break and the Lemma 2 filters
	// tight from the first iteration. The degenerate pair {X[0], X[1]} — the
	// loop starts at i = 2 and never forms it — is likewise tried up front.
	s.ptsBuf = s.g.Points(X, s.ptsBuf[:0])
	rcur := geom.MCC(s.ptsBuf).R
	best := append(s.bestBuf[:0], X...)

	// tryCircle tests one fixed circle and updates the incumbent.
	tryCircle := func(cc geom.Circle) {
		s.stats.CirclesExamined++
		if cc.R >= rcur {
			return
		}
		// The community contains q, so its MCC must cover q's location.
		if !cc.Contains(qLoc) {
			return
		}
		// Last boundary before the expensive member gather + peel: bounds
		// post-cancellation work to the feasibility check already in flight.
		if s.canceled() {
			return
		}
		R := s.circleMembers(cc)
		if c := s.feasible(R, q, k); c != nil {
			mcc := s.g.MCCOf(c)
			if mcc.R < rcur {
				rcur = mcc.R
				best = append(best[:0], c...)
			}
		}
	}

	if len(X) >= 2 {
		tryCircle(geom.CircleFrom2(s.g.Loc(X[0]), s.g.Loc(X[1])))
	}

	if ws := s.parWorkersFor(len(X) - 2); ws != nil {
		if r, c, ok := s.exactScanPar(ctx, ws, X, d, qLoc, q, k, rcur); ok {
			rcur = r
			best = append(best[:0], c...)
		}
	} else {
	enum:
		for i := 2; i < len(X); i++ {
			if d[i] > 2*rcur {
				break // Algorithm 1, line 13
			}
			for j := 0; j < i; j++ {
				if s.canceled() {
					break enum
				}
				// Pair-fixed circle: segment X[j]X[i] as diameter (Lemma 1).
				pj := s.g.Loc(X[j])
				pi := s.g.Loc(X[i])
				if pj.Dist(pi) <= 2*rcur {
					tryCircle(geom.CircleFrom2(pj, pi))
				}
				for h := j + 1; h < i; h++ {
					if s.canceledTick() {
						break enum
					}
					ph := s.g.Loc(X[h])
					// Lemma 2: all pairwise distances in Ψ are ≤ 2·ropt < 2·rcur.
					if pj.Dist(ph) > 2*rcur || ph.Dist(pi) > 2*rcur || pj.Dist(pi) > 2*rcur {
						continue
					}
					tryCircle(geom.CircleFrom3(pj, ph, pi))
				}
			}
		}
	}
	s.bestBuf = best
	if s.ctxErr != nil {
		return s.ctxResult(nil, nil)
	}
	res := s.buildResult(q, k, best, rcur)
	return s.finish(res, start), nil
}

// gridTargetPerCell is the bucket occupancy the per-query candidate grid
// aims for; ~4 keeps range queries touching a handful of cells.
const gridTargetPerCell = 4

// circleMembers gathers the working candidate set's vertices inside cc via
// the per-query grid (built by Exact over X, by appAcc over S), appending to
// the shared scratch buffer. Output-sensitive: cost is proportional to the
// grid cells the circle touches, not the candidate-set size.
func (s *Searcher) circleMembers(cc geom.Circle) []graph.V {
	s.vertBuf = s.sGrid.InCircle(cc, s.vertBuf[:0])
	return s.vertBuf
}
