// Package exp implements the experiment harness for Section 5: one runner
// per table and figure, each producing the same rows/series the paper
// reports. Experiments are registered by id (fig9a … fig14, table3 …
// table5) and can be driven from cmd/sacbench, from the top-level
// bench_test.go, or programmatically.
//
// Absolute numbers differ from the paper (different hardware, language and
// — for the real datasets — synthetic stand-ins; see DESIGN.md §3), but the
// qualitative shapes are preserved and recorded in EXPERIMENTS.md.
package exp

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"sacsearch/internal/core"
	"sacsearch/internal/dataset"
	"sacsearch/internal/graph"
)

// Config sizes an experiment run. The zero value is unusable; start from
// DefaultConfig (quick, minutes for the full registry) or PaperConfig
// (larger, for overnight runs).
type Config struct {
	Datasets []string // dataset preset names
	Scale    float64  // dataset scale in (0,1]
	Queries  int      // query vertices per dataset (paper: 200)
	K        int      // default minimum degree (paper default: 4)
	MinCore  int      // workload constraint (paper: core number ≥ 4)
	Seed     int64
	// ExactCap skips the naive Exact algorithm for queries whose candidate
	// k-ĉore exceeds this size (the paper likewise skips Exact runs that
	// would take over 10 hours).
	ExactCap int
	// Quick trades a little fidelity for wall time in the experiments that
	// offer a cheaper substitute (currently fig13's per-check-in search).
	Quick bool
	// LoadPath, when non-empty, benches a saved binary graph file (see the
	// facade's SaveGraph) instead of the dataset presets: every experiment
	// runs on that one graph, and Datasets/Scale are ignored.
	LoadPath string
}

// DefaultConfig is sized so the entire registry finishes in a few minutes.
func DefaultConfig() Config {
	return Config{
		Datasets: []string{"brightkite", "gowalla"},
		Scale:    0.02,
		Queries:  20,
		K:        4,
		MinCore:  4,
		Seed:     42,
		ExactCap: 200,
		Quick:    true,
	}
}

// PaperConfig runs closer to the paper's workload sizes. Expect hours.
func PaperConfig() Config {
	return Config{
		Datasets: []string{"brightkite", "gowalla", "flickr", "foursquare", "syn1", "syn2"},
		Scale:    0.2,
		Queries:  200,
		K:        4,
		MinCore:  4,
		Seed:     42,
		ExactCap: 2000,
	}
}

// loadDataset resolves one experiment graph: the LoadPath file when set, the
// named preset otherwise.
func loadDataset(cfg Config, name string) (*dataset.Dataset, error) {
	if cfg.LoadPath == "" {
		return dataset.Load(name, cfg.Scale)
	}
	f, err := os.Open(cfg.LoadPath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("exp: reading %s: %w", cfg.LoadPath, err)
	}
	base := strings.TrimSuffix(filepath.Base(cfg.LoadPath), filepath.Ext(cfg.LoadPath))
	return &dataset.Dataset{Name: base, Graph: g, Scale: 1}, nil
}

// loadWorkload builds one dataset and its query set.
func loadWorkload(cfg Config, name string) (*dataset.Dataset, []graph.V, error) {
	ds, err := loadDataset(cfg, name)
	if err != nil {
		return nil, nil, err
	}
	qs := dataset.QueryWorkload(ds.Graph, cfg.MinCore, cfg.Queries, cfg.Seed)
	if len(qs) == 0 {
		return nil, nil, fmt.Errorf("exp: dataset %s at scale %v has no vertices with core ≥ %d",
			name, cfg.Scale, cfg.MinCore)
	}
	return ds, qs, nil
}

// runTimed executes fn over the queries and returns mean wall time per
// successful query plus the per-query results. Queries with no community
// are skipped (they do not occur with the core-number workload constraint
// unless k exceeds MinCore).
func runTimed(qs []graph.V, fn func(q graph.V) (*core.Result, error)) (time.Duration, []*core.Result) {
	var total time.Duration
	var results []*core.Result
	for _, q := range qs {
		res, err := fn(q)
		if err != nil {
			continue
		}
		total += res.Stats.Elapsed
		results = append(results, res)
	}
	if len(results) == 0 {
		return 0, nil
	}
	return total / time.Duration(len(results)), results
}

// fprintf writes a formatted row, ignoring write errors deliberately: the
// harness streams progress to a terminal or file and a failed write there
// should not abort a long experiment.
func fprintf(w io.Writer, format string, args ...any) {
	fmt.Fprintf(w, format, args...)
}
