package core

import (
	"context"
	"fmt"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// ThetaSAC is the θ-SAC search of Section 3: a variant of Global [29] that
// first gathers the vertices connected to q inside the fixed circle O(q, θ)
// by BFS, then returns the k-ĉore containing q within them. Unlike SAC
// search it needs the caller to guess θ: too small and no community exists
// (ErrNoCommunity), too large and the community is not spatially compact —
// the sensitivity Figure 11 quantifies.
func (s *Searcher) ThetaSAC(q graph.V, k int, theta float64) (*Result, error) {
	return s.ThetaSACCtx(context.Background(), q, k, theta)
}

// ThetaSACCtx is ThetaSAC with cancellation: the context is checked between
// the BFS gather and the single feasibility peel (the two O(m) phases),
// returning ErrCanceled when it fires.
func (s *Searcher) ThetaSACCtx(ctx context.Context, q graph.V, k int, theta float64) (*Result, error) {
	start := s.begin()
	s.beginCtx(ctx)
	if err := s.checkQuery(q, k); err != nil {
		return nil, err
	}
	if theta < 0 {
		return nil, fmt.Errorf("core: θ = %v must be non-negative", theta)
	}
	if k == 0 {
		res := s.buildResult(q, k, []graph.V{q}, 0)
		return s.finish(res, start), nil
	}
	if s.canceled() {
		return s.ctxResult(nil, nil)
	}
	circle := geom.Circle{C: s.g.Loc(q), R: theta}
	inCircle := func(v graph.V) bool { return circle.Contains(s.g.Loc(v)) }
	S := graph.BFSFrom(s.g, q, inCircle, s.visited, s.vertBuf[:0])
	s.vertBuf = S
	s.stats.CandidateSize = len(S)
	if s.canceled() {
		return s.ctxResult(nil, nil)
	}
	if c := s.feasible(S, q, k); c != nil {
		res := s.buildResult(q, k, c, theta)
		return s.finish(res, start), nil
	}
	return nil, ErrNoCommunity
}
