package store

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"sacsearch/internal/core"
	"sacsearch/internal/graph"
	"sacsearch/internal/wal"
)

// This file is the crash-injection differential suite: every injected cut or
// corruption must leave store.Open with exactly two outcomes — a loud error,
// or a recovered state differentially identical (same answers from all five
// algorithms) to a never-crashed graph holding the same WAL prefix. Serving
// silently wrong state is the one forbidden outcome.

// answersEqual runs Exact, ExactPlus, AppInc, AppFast and AppAcc for (q, k)
// on both searchers and compares members and MCC exactly.
func answersEqual(t *testing.T, label string, got, want *core.Searcher, q graph.V, k int) {
	t.Helper()
	type algo struct {
		name string
		run  func(s *core.Searcher) (*core.Result, error)
	}
	for _, a := range []algo{
		{"exact", func(s *core.Searcher) (*core.Result, error) { return s.Exact(q, k) }},
		{"exact+", func(s *core.Searcher) (*core.Result, error) { return s.ExactPlus(q, k, 1e-3) }},
		{"appinc", func(s *core.Searcher) (*core.Result, error) { return s.AppInc(q, k) }},
		{"appfast", func(s *core.Searcher) (*core.Result, error) { return s.AppFast(q, k, 0.5) }},
		{"appacc", func(s *core.Searcher) (*core.Result, error) { return s.AppAcc(q, k, 0.5) }},
	} {
		rg, eg := a.run(got)
		rw, ew := a.run(want)
		if (eg == nil) != (ew == nil) {
			t.Fatalf("%s: %s(%d,%d): recovered err=%v, reference err=%v", label, a.name, q, k, eg, ew)
		}
		if eg != nil {
			if errors.Is(eg, core.ErrNoCommunity) && errors.Is(ew, core.ErrNoCommunity) {
				continue
			}
			t.Fatalf("%s: %s(%d,%d): errors %v vs %v", label, a.name, q, k, eg, ew)
		}
		if len(rg.Members) != len(rw.Members) {
			t.Fatalf("%s: %s(%d,%d): %d members vs %d", label, a.name, q, k, len(rg.Members), len(rw.Members))
		}
		for i := range rg.Members {
			if rg.Members[i] != rw.Members[i] {
				t.Fatalf("%s: %s(%d,%d): members differ: %v vs %v", label, a.name, q, k, rg.Members, rw.Members)
			}
		}
		if rg.MCC != rw.MCC {
			t.Fatalf("%s: %s(%d,%d): MCC %+v vs %+v", label, a.name, q, k, rg.MCC, rw.MCC)
		}
	}
}

// diffCheck pins the recovered store's answers to a fresh single-threaded
// searcher over the reference graph for a spread of query vertices.
func diffCheck(t *testing.T, label string, st *Store, ref *graph.Graph) {
	t.Helper()
	graphsEqual(t, label, st.Current().Graph(), ref)
	snap := st.Current()
	w := snap.Get()
	defer snap.Put(w)
	cold := core.NewSearcher(ref)
	cold.SetCandidateCaching(false)
	for _, q := range []graph.V{0, 7, 20, 41} {
		answersEqual(t, label, w, cold, q, 3)
	}
}

// TestRecoveryDifferentialAtRandomCutPoints is the satellite recovery test:
// a churn stream runs through a durable engine, SIGKILL is simulated by
// reopening from dataDir at random cut points, and post-recovery answers are
// pinned to a fresh searcher on the same logical state — then the stream
// continues on the recovered store, so recovery composes across crashes.
func TestRecoveryDifferentialAtRandomCutPoints(t *testing.T) {
	dir := t.TempDir()
	opt := Options{
		Init:               testGraph(),
		SegmentBytes:       1 << 10, // many rotations
		CheckpointEvents:   40,      // checkpoints interleave the stream
		CheckpointInterval: -1,
	}
	rnd := rand.New(rand.NewSource(99))
	var all []churnEvent
	st, err := Open(dir, opt)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		n := 20 + rnd.Intn(120) // the random cut point
		all = append(all, driveChurn(t, st, int64(1000+round), n)...)
		st.Crash()

		st, err = Open(dir, Options{SegmentBytes: opt.SegmentBytes,
			CheckpointEvents: opt.CheckpointEvents, CheckpointInterval: -1})
		if err != nil {
			t.Fatalf("round %d: recovery: %v", round, err)
		}
		s := st.Stats()
		if s.WalLastSeq != uint64(len(all)) {
			t.Fatalf("round %d: recovered seq %d, want %d (lost acknowledged writes)",
				round, s.WalLastSeq, len(all))
		}
		diffCheck(t, "round", st, refGraph(t, all, len(all)))
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// walSegments lists the data dir's WAL segment files in order.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var segs []string
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), "wal-") && strings.HasSuffix(e.Name(), ".seg") {
			segs = append(segs, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(segs)
	return segs
}

// copyDir clones a data dir so each injection starts from the same bytes.
func copyDir(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// TestRecoveryAtArbitraryByteOffsets kills the log at arbitrary byte
// offsets: for every cut k of the final segment, recovery must come back
// with some prefix S of the acknowledged history and answer exactly like a
// never-crashed graph at S — or refuse loudly. Checkpoints are disabled so
// the full stream stays in the WAL and every cut is meaningful.
func TestRecoveryAtArbitraryByteOffsets(t *testing.T) {
	master := t.TempDir()
	st, err := Open(master, Options{Init: testGraph(), CheckpointInterval: -1, SegmentBytes: 4 << 10})
	if err != nil {
		t.Fatal(err)
	}
	events := driveChurn(t, st, 77, 160)
	st.Crash()

	segs := walSegments(t, master)
	last := segs[len(segs)-1]
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatal(err)
	}
	size := int(fi.Size())
	rnd := rand.New(rand.NewSource(5))
	cuts := []int{0, 1, 7, 8, 9, size - 1, size / 2}
	for i := 0; i < 10; i++ {
		cuts = append(cuts, rnd.Intn(size))
	}
	for _, cut := range cuts {
		dir := copyDir(t, master)
		if err := os.Truncate(filepath.Join(dir, filepath.Base(last)), int64(cut)); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(dir, Options{CheckpointInterval: -1})
		if err != nil {
			// A loud refusal is an acceptable outcome (e.g. the segment
			// magic itself was cut).
			continue
		}
		prefix := int(st2.Stats().WalLastSeq)
		if prefix > len(events) {
			t.Fatalf("cut %d: recovered %d events, only %d were written", cut, prefix, len(events))
		}
		diffCheck(t, "cut", st2, refGraph(t, events, prefix))
		st2.Crash()
	}
}

// TestRecoveryWithCorruptCRC flips single bytes across the WAL: damage in
// acknowledged history (followed by valid records) must fail loudly; damage
// in the final record may be absorbed as a torn write, recovering the exact
// prefix before it.
func TestRecoveryWithCorruptCRC(t *testing.T) {
	master := t.TempDir()
	st, err := Open(master, Options{Init: testGraph(), CheckpointInterval: -1, SegmentBytes: 2 << 10})
	if err != nil {
		t.Fatal(err)
	}
	events := driveChurn(t, st, 31, 120)
	st.Crash()

	segs := walSegments(t, master)
	if len(segs) < 2 {
		t.Fatalf("want ≥2 segments, got %d", len(segs))
	}
	flip := func(path string, off int) {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		data[off] ^= 0xff
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	// Sealed-segment corruption: always loud.
	{
		dir := copyDir(t, master)
		seg := filepath.Join(dir, filepath.Base(segs[0]))
		flip(seg, 100)
		if _, err := Open(dir, Options{CheckpointInterval: -1}); err == nil {
			t.Fatal("sealed-segment bit rot recovered silently")
		}
	}
	// Mid-final-segment corruption (valid records follow): loud.
	{
		dir := copyDir(t, master)
		seg := filepath.Join(dir, filepath.Base(segs[len(segs)-1]))
		flip(seg, 20)
		if _, err := Open(dir, Options{CheckpointInterval: -1}); err == nil {
			t.Fatal("mid-log bit rot recovered silently")
		}
	}
	// Final-record corruption: absorbed as a torn write; the recovered
	// prefix must answer exactly like the reference at that prefix.
	{
		dir := copyDir(t, master)
		seg := filepath.Join(dir, filepath.Base(segs[len(segs)-1]))
		fi, err := os.Stat(seg)
		if err != nil {
			t.Fatal(err)
		}
		flip(seg, int(fi.Size())-3)
		st2, err := Open(dir, Options{CheckpointInterval: -1})
		if err != nil {
			t.Fatalf("torn final record refused: %v", err)
		}
		prefix := int(st2.Stats().WalLastSeq)
		if prefix != len(events)-1 {
			t.Fatalf("torn final record: prefix %d, want %d", prefix, len(events)-1)
		}
		diffCheck(t, "torn-tail", st2, refGraph(t, events, prefix))
		st2.Crash()
	}
}

// TestTruncatedCheckpointFallsBack damages the newest checkpoint: recovery
// must fall back to the previous one and replay the retained WAL forward to
// the identical final state; with every checkpoint damaged it must refuse.
func TestTruncatedCheckpointFallsBack(t *testing.T) {
	master := t.TempDir()
	st, err := Open(master, Options{
		Init:               testGraph(),
		SegmentBytes:       1 << 10,
		CheckpointEvents:   30,
		CheckpointInterval: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	events := driveChurn(t, st, 13, 200)
	st.Crash()

	ckpts, err := listCheckpoints(master)
	if err != nil || len(ckpts) != 2 {
		t.Fatalf("retained checkpoints = %v (err %v), want 2", ckpts, err)
	}

	// Truncate the newest checkpoint to half: fall back, same final state.
	{
		dir := copyDir(t, master)
		newest := filepath.Join(dir, ckptName(ckpts[len(ckpts)-1]))
		fi, err := os.Stat(newest)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(newest, fi.Size()/2); err != nil {
			t.Fatal(err)
		}
		st2, err := Open(dir, Options{CheckpointInterval: -1})
		if err != nil {
			t.Fatalf("fallback recovery refused: %v", err)
		}
		s := st2.Stats()
		if s.WalLastSeq != uint64(len(events)) {
			t.Fatalf("fallback lost writes: seq %d, want %d", s.WalLastSeq, len(events))
		}
		if s.ReplayedRecords == 0 {
			t.Fatal("fallback did not replay the WAL gap")
		}
		diffCheck(t, "ckpt-fallback", st2, refGraph(t, events, len(events)))
		st2.Crash()
	}
	// Every checkpoint damaged: loud refusal, never a silent fresh start.
	{
		dir := copyDir(t, master)
		for _, seq := range ckpts {
			if err := os.Truncate(filepath.Join(dir, ckptName(seq)), 10); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := Open(dir, Options{CheckpointInterval: -1, Init: testGraph()}); err == nil {
			t.Fatal("all-checkpoints-damaged recovered silently")
		}
	}
}

// TestWalRecordsOnlyStateChanges pins the log's contents to the
// state-changing event stream: no-op edge toggles must not occupy WAL
// sequence numbers.
func TestWalRecordsOnlyStateChanges(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Init: testGraph(), CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	events := driveChurn(t, st, 55, 80)
	st.Crash()
	var recs []wal.Record
	if _, err := wal.Replay(dir, 0, func(r wal.Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(events) {
		t.Fatalf("WAL holds %d records, %d events changed state", len(recs), len(events))
	}
	for i, r := range recs {
		ev := events[i]
		if (r.Kind == wal.KindCheckin) != ev.checkin {
			t.Fatalf("record %d kind mismatch: %+v vs %+v", i, r, ev)
		}
		if ev.checkin && (r.V != ev.v || r.Loc != ev.loc) {
			t.Fatalf("record %d: %+v vs %+v", i, r, ev)
		}
		if !ev.checkin && (r.U != ev.u || r.W != ev.w || r.Insert != ev.insert) {
			t.Fatalf("record %d: %+v vs %+v", i, r, ev)
		}
	}
}
