package geom

import (
	"math"
	"math/rand"
	"testing"
)

// Regression for the mccWithTwo boundary-invariant bug: replacing the
// current circle with the minimum covering circle of {q1, q2, p} (instead of
// their circumcircle) let previously-covered points escape. These folded
// adversarial coordinates produced an MCC missing a point by 33 % of R.
func TestMCCBoundaryInvariantRegression(t *testing.T) {
	raw := [][2]float64{
		{1.7588497475762836e+308, 1.4666389268309737e+308},
		{-7.780771349879504e+305, 7.106054601985026e+307},
		{1.3350919336503553e+308, -8.241417676240638e+307},
		{1.672437878963429e+308, 1.0279282634780688e+308},
		{-9.325895346473627e+307, -1.5416447859950337e+308},
		{-3.68549130450666e+307, 1.1022760186518094e+308},
		{1.9822248743426687e+307, -8.637705814022209e+307},
		{1.0235771297506593e+308, -1.729587063277462e+308},
		{1.2221295745610873e+308, 1.1606732885988668e+307},
		{-1.613954076728618e+308, -1.399827194442227e+308},
		{4.724356066184593e+307, -1.218178698088338e+308},
		{9.891791158284718e+306, 2.2098089956316698e+307},
		{-7.115069518882066e+307, 7.043680378553386e+307},
		{-1.0452517042298494e+308, -1.4699952797023586e+308},
		{1.1480675443314422e+308, -1.5201449579840045e+308},
		{-1.1669518694147045e+308, -1.5922609531601997e+308},
		{7.614321003837332e+307, -7.119993909522116e+307},
		{-1.7657896055368502e+308, -7.826261419533627e+307},
		{3.29252584524028e+307, -5.398123781935739e+307},
		{-1.511950418284858e+308, -1.7890095974403077e+308},
		{1.7729899472470647e+308, 5.432593426373693e+307},
		{3.8195659361535514e+307, 2.846794559200662e+307},
		{9.495452208642032e+307, -5.269427669238503e+307},
		{-6.417873723427525e+307, 1.2673599817570226e+308},
		{1.2078388160674425e+308, -1.3690700529985897e+307},
		{3.314860415805645e+307, -4.85588114412259e+307},
		{5.725296007998161e+307, -3.4520601243109694e+306},
		{7.013278341179429e+306, -8.861740434413058e+306},
		{1.5447674304861517e+308, 7.279202545888165e+307},
		{-1.6478974555495418e+308, 1.105200114983695e+308},
		{-1.7419022871794629e+308, 2.1526031432084696e+307},
		{-1.2059567053403506e+308, 4.218404619558533e+307},
		{1.5713877932945272e+308, 7.126859327928299e+307},
		{1.32621344007438e+308, -4.710472674345578e+307},
		{-8.136742008997846e+307, -1.2475781507527604e+308},
		{-6.106968546721411e+307, -4.889909291619701e+307},
		{-9.892596145768476e+307, 3.948623137052438e+307},
		{-2.744074426824271e+307, -8.154806983304149e+307},
	}
	pts := make([]Point, 0, len(raw))
	for _, r := range raw {
		pts = append(pts, Point{math.Mod(math.Abs(r[0]), 1000), math.Mod(math.Abs(r[1]), 1000)})
	}
	c := MCC(pts)
	slack := 1e-9 * (1 + c.R) // relative at this coordinate scale
	for i, p := range pts {
		if d := c.C.Dist(p) - c.R; d > slack {
			t.Fatalf("point %d outside MCC by %v (R = %v)", i, d, c.R)
		}
	}
}

// Stress the same invariant on scaled random inputs: every point covered and
// the radius matching an O(n³) brute force over boundary pairs/triples.
func TestMCCScaledStress(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		scale := math.Pow(10, float64(rnd.Intn(7))-3) // 1e-3 .. 1e3
		n := 3 + rnd.Intn(25)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rnd.Float64() * scale, rnd.Float64() * scale}
		}
		// Duplicate and near-duplicate points sharpen the degeneracies.
		if n > 5 {
			pts[n-1] = pts[0]
			pts[n-2] = Point{pts[1].X + scale*1e-13, pts[1].Y}
		}
		c := MCC(pts)
		slack := 1e-9 * (1 + scale)
		for i, p := range pts {
			if d := c.C.Dist(p) - c.R; d > slack {
				t.Fatalf("trial %d (scale %g): point %d outside by %v (R=%v)", trial, scale, i, d, c.R)
			}
		}
		// Minimality against brute force over pairs and triples.
		best := math.Inf(1)
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if cc := CircleFrom2(pts[i], pts[j]); cc.R < best && coversAll(cc, pts, slack) {
					best = cc.R
				}
				for k := j + 1; k < n; k++ {
					if cc, ok := Circumcircle(pts[i], pts[j], pts[k]); ok && cc.R < best && coversAll(cc, pts, slack) {
						best = cc.R
					}
				}
			}
		}
		if c.R > best*(1+1e-7)+slack {
			t.Fatalf("trial %d (scale %g): MCC R=%v, brute=%v", trial, scale, c.R, best)
		}
	}
}

func coversAll(c Circle, pts []Point, slack float64) bool {
	for _, p := range pts {
		if c.C.Dist(p)-c.R > slack {
			return false
		}
	}
	return true
}
