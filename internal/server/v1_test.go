package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"sacsearch/internal/core"
	"sacsearch/internal/graph"
)

// TestV1AliasesAPI pins the versioning contract: /v1/* and the deprecated
// /api/* serve identical answers from the same handlers, and only the
// legacy prefix carries the Deprecation header plus a Link to its
// successor.
func TestV1AliasesAPI(t *testing.T) {
	ts, _ := newTestServer(t)
	var v1, legacy QueryResponse
	req := QueryRequest{Q: 1, K: 4, Algo: "exact+"}
	_, body := postJSON(t, ts.URL+"/v1/query", req)
	if err := json.Unmarshal(body, &v1); err != nil {
		t.Fatal(err)
	}
	_, body = postJSON(t, ts.URL+"/api/query", req)
	if err := json.Unmarshal(body, &legacy); err != nil {
		t.Fatal(err)
	}
	if len(v1.Members) == 0 || len(v1.Members) != len(legacy.Members) || v1.MCC != legacy.MCC {
		t.Fatalf("v1 %+v != legacy %+v", v1, legacy)
	}

	for _, route := range []string{"/v1/health", "/v1/algorithms", "/v1/vertex/1"} {
		if resp := getJSON(t, ts.URL+route, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("%s status = %d", route, resp.StatusCode)
		}
	}

	resp := getJSON(t, ts.URL+"/api/health", nil)
	if resp.Header.Get("Deprecation") != "true" {
		t.Fatal("/api/* response missing Deprecation header")
	}
	if link := resp.Header.Get("Link"); !strings.Contains(link, "/v1/health") ||
		!strings.Contains(link, "successor-version") {
		t.Fatalf("/api/* Link header = %q", link)
	}
	resp = getJSON(t, ts.URL+"/v1/health", nil)
	if resp.Header.Get("Deprecation") != "" {
		t.Fatal("/v1/* response carries a Deprecation header")
	}
}

// TestErrorEnvelope drives every non-2xx path of the API and asserts the
// structured envelope: a human message, a machine code, and the request id
// matching the X-Request-Id response header.
func TestErrorEnvelope(t *testing.T) {
	ts, _ := newTestServer(t)
	post := func(route, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+route, "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	get := func(route string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		return resp
	}
	cases := []struct {
		name   string
		do     func() *http.Response
		status int
		code   string
	}{
		{"malformed JSON", func() *http.Response { return post("/v1/query", "{nope") },
			http.StatusBadRequest, CodeInvalidJSON},
		{"unknown algo", func() *http.Response { return post("/v1/query", `{"q":1,"k":4,"algo":"bogus"}`) },
			http.StatusBadRequest, core.ErrCodeUnknownAlgorithm},
		{"k below 1", func() *http.Response { return post("/v1/query", `{"q":1,"k":0}`) },
			http.StatusBadRequest, core.ErrCodeInvalidQuery},
		{"param not accepted", func() *http.Response { return post("/v1/query", `{"q":1,"k":4,"algo":"appinc","epsF":0.5}`) },
			http.StatusBadRequest, core.ErrCodeInvalidParam},
		{"missing theta", func() *http.Response { return post("/v1/query", `{"q":1,"k":4,"algo":"theta"}`) },
			http.StatusBadRequest, core.ErrCodeMissingParam},
		{"structure mismatch", func() *http.Response { return post("/v1/query", `{"q":1,"k":4,"structure":"ktruss"}`) },
			http.StatusBadRequest, core.ErrCodeStructureMismatch},
		{"no community", func() *http.Response { return post("/v1/query", `{"q":1,"k":40}`) },
			http.StatusNotFound, CodeNoCommunity},
		{"empty batch", func() *http.Response { return post("/v1/batch", `{"queries":[]}`) },
			http.StatusBadRequest, core.ErrCodeInvalidQuery},
		{"batch bad epsA", func() *http.Response {
			return post("/v1/batch", `{"queries":[{"q":1,"k":4}],"algo":"appacc","epsA":7}`)
		},
			http.StatusBadRequest, core.ErrCodeInvalidParam},
		{"batch structure mismatch", func() *http.Response {
			return post("/v1/batch", `{"queries":[{"q":1,"k":4}],"structure":"ktruss"}`)
		},
			http.StatusBadRequest, core.ErrCodeStructureMismatch},
		{"batch unknown structure", func() *http.Response {
			return post("/v1/batch", `{"queries":[{"q":1,"k":4}],"structure":"bogus"}`)
		},
			http.StatusBadRequest, core.ErrCodeStructureMismatch},
		{"checkin unknown vertex", func() *http.Response { return post("/v1/checkin", `{"v":9999,"x":0.5,"y":0.5}`) },
			http.StatusNotFound, CodeUnknownVertex},
		{"edge bad op", func() *http.Response { return post("/v1/edge", `{"u":0,"v":1,"op":"sever"}`) },
			http.StatusBadRequest, CodeInvalidArgument},
		{"malformed vertex id", func() *http.Response { return get("/v1/vertex/abc") },
			http.StatusBadRequest, CodeInvalidArgument},
		{"unknown vertex id", func() *http.Response { return get("/v1/vertex/9999") },
			http.StatusNotFound, CodeUnknownVertex},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp := tc.do()
			defer resp.Body.Close()
			if resp.StatusCode != tc.status {
				t.Fatalf("status = %d, want %d", resp.StatusCode, tc.status)
			}
			var env ErrorJSON
			if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
				t.Fatalf("non-2xx body is not an error envelope: %v", err)
			}
			if env.Code != tc.code {
				t.Fatalf("code = %q, want %q (error: %s)", env.Code, tc.code, env.Error)
			}
			if env.Error == "" {
				t.Fatal("empty error message")
			}
			if env.RequestID == "" || env.RequestID != resp.Header.Get("X-Request-Id") {
				t.Fatalf("requestId %q vs header %q", env.RequestID, resp.Header.Get("X-Request-Id"))
			}
		})
	}
}

// TestRequestIDPropagation: a well-formed caller-supplied X-Request-Id is
// echoed; a hostile one is replaced.
func TestRequestIDPropagation(t *testing.T) {
	ts, _ := newTestServer(t)
	req, _ := http.NewRequest("GET", ts.URL+"/v1/health", nil)
	req.Header.Set("X-Request-Id", "trace-42_a.b")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got != "trace-42_a.b" {
		t.Fatalf("echoed id = %q", got)
	}
	req, _ = http.NewRequest("GET", ts.URL+"/v1/health", nil)
	req.Header.Set("X-Request-Id", "bad id with spaces")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := resp.Header.Get("X-Request-Id"); got == "bad id with spaces" || got == "" {
		t.Fatalf("hostile id not replaced: %q", got)
	}
}

// TestAlgorithmsFromRegistry asserts /v1/algorithms is the registry,
// verbatim: same names, same order, same parameter schemas.
func TestAlgorithmsFromRegistry(t *testing.T) {
	ts, _ := newTestServer(t)
	var out []struct {
		Name   string `json:"name"`
		Ratio  string `json:"ratio"`
		Params []struct {
			Name     string   `json:"name"`
			Type     string   `json:"type"`
			Required bool     `json:"required"`
			Default  *float64 `json:"default"`
		} `json:"params"`
	}
	if resp := getJSON(t, ts.URL+"/v1/algorithms", &out); resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	specs := core.Algorithms()
	if len(out) != len(specs) {
		t.Fatalf("%d algorithms served, registry has %d", len(out), len(specs))
	}
	for i, spec := range specs {
		if out[i].Name != spec.Name || out[i].Ratio != spec.Ratio {
			t.Fatalf("entry %d = %+v, want %s (%s)", i, out[i], spec.Name, spec.Ratio)
		}
		if len(out[i].Params) != len(spec.Params) {
			t.Fatalf("%s: %d params served, registry has %d", spec.Name, len(out[i].Params), len(spec.Params))
		}
		for j, p := range spec.Params {
			served := out[i].Params[j]
			if served.Name != p.Name || served.Type != "float" || served.Required != p.Required {
				t.Fatalf("%s param %d = %+v, want %+v", spec.Name, j, served, p)
			}
			if !p.Required && (served.Default == nil || *served.Default != p.Default) {
				t.Fatalf("%s param %s default = %v, want %v", spec.Name, p.Name, served.Default, p.Default)
			}
		}
	}
}

// TestV1BatchTheta runs a θ-SAC batch — an algorithm the legacy batch
// endpoint could not express before the registry-driven request shape.
func TestV1BatchTheta(t *testing.T) {
	ts, g := newTestServer(t)
	req := BatchRequest{Algo: "theta", Theta: core.Float(0.2), Workers: 2}
	for _, q := range []graph.V{1, 7} {
		req.Queries = append(req.Queries, BatchQueryJSON{Q: q, K: 4})
	}
	resp, body := postJSON(t, ts.URL+"/v1/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d body %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	s := core.NewSearcher(g)
	for i, q := range []graph.V{1, 7} {
		want, err := s.ThetaSAC(q, 4, 0.2)
		if err != nil {
			if out.Items[i].Error == "" {
				t.Fatalf("item %d: expected error, got %+v", i, out.Items[i])
			}
			continue
		}
		if len(out.Items[i].Members) != len(want.Members) {
			t.Fatalf("item %d: members %v, want %v", i, out.Items[i].Members, want.Members)
		}
	}
}
