// Command sacserver serves SAC search over HTTP — the system prototype of
// the paper's Section 6 future work.
//
// Usage:
//
//	sacserver -dataset brightkite -scale 0.05 -addr :8080
//	sacserver -load graph.bin -data-dir /var/lib/sacsearch -fsync always
//
// Then (the versioned /v1 API; the unversioned /api/* aliases still answer
// but are deprecated):
//
//	curl localhost:8080/v1/health
//	curl localhost:8080/v1/algorithms
//	curl -X POST localhost:8080/v1/query -d '{"q":17,"k":4,"algo":"exact+"}'
//	curl -X POST localhost:8080/v1/batch -d '{"queries":[{"q":17,"k":4},{"q":23,"k":4}]}'
//	curl -X POST localhost:8080/v1/checkin -d '{"v":17,"x":0.5,"y":0.5}'
//
// Downstream Go programs should prefer the typed client (sacsearch/client)
// over hand-rolled HTTP.
//
// With -data-dir the server is durable: writes go through a write-ahead log
// before becoming visible (fsync policy from -fsync), a background
// checkpointer bounds recovery time, and a restart recovers the last served
// state from the directory — the -dataset/-load graph then only seeds the
// very first boot. Without -data-dir the graph lives and dies with the
// process, as before.
//
// The process runs a configured http.Server (read/write/idle timeouts, not
// the bare ListenAndServe defaults) and shuts down gracefully on SIGINT or
// SIGTERM: the listener closes, in-flight queries drain up to the grace
// period, then the snapshot writer stops (and a durable server writes its
// final checkpoint).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sacsearch/internal/dataset"
	"sacsearch/internal/graph"
	"sacsearch/internal/server"
	"sacsearch/internal/store"
)

func main() {
	var (
		name     = flag.String("dataset", "brightkite", "dataset preset to serve")
		scale    = flag.Float64("scale", 0.05, "dataset scale in (0,1]")
		load     = flag.String("load", "", "serve a saved binary graph file instead of a dataset preset")
		dataDir  = flag.String("data-dir", "", "durable state directory (WAL + checkpoints); empty = in-memory only")
		fsync    = flag.String("fsync", "always", "WAL fsync policy: always, interval or never (with -data-dir)")
		addr     = flag.String("addr", ":8080", "listen address")
		qTimeout = flag.Duration("query-timeout", 15*time.Second, "per-request query deadline")
		maxBody  = flag.Int64("max-body", 1<<20, "maximum POST body size in bytes")
		grace    = flag.Duration("grace", 20*time.Second, "shutdown drain period for in-flight requests")
	)
	flag.Parse()

	// -load and -dataset both name the graph to serve; explicitly setting
	// the two together is ambiguous, so refuse rather than pick one.
	datasetSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dataset" {
			datasetSet = true
		}
	})
	if *load != "" && datasetSet {
		log.Fatal("sacserver: -load and -dataset are mutually exclusive")
	}

	cfg := server.Config{QueryTimeout: *qTimeout, MaxBodyBytes: *maxBody}
	srvName := graphName(*load, *name)

	var api *server.Server
	if *dataDir != "" {
		policy, err := store.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("sacserver: %v", err)
		}
		// Recovery discards the bootstrap graph, so only build it (seconds
		// for the big presets) when the data dir holds nothing to recover.
		var g *graph.Graph
		if !store.HasState(*dataDir) {
			if g, err = buildGraph(*load, *name, *scale); err != nil {
				log.Fatalf("sacserver: %v", err)
			}
		}
		st, err := store.Open(*dataDir, store.Options{Init: g, Fsync: policy})
		if err != nil {
			log.Fatalf("sacserver: %v", err)
		}
		s := st.Stats()
		if s.Recovered {
			log.Printf("sacserver: recovered %s from %s (checkpoint seq %d, %d WAL records replayed); the -dataset/-load graph was not built",
				srvName, *dataDir, s.LastCheckpointSeq, s.ReplayedRecords)
		} else {
			log.Printf("sacserver: bootstrapped %s into %s (fsync %s)", srvName, *dataDir, s.FsyncPolicy)
		}
		api = server.NewWithStore(srvName, st, cfg)
	} else {
		g, err := buildGraph(*load, *name, *scale)
		if err != nil {
			log.Fatalf("sacserver: %v", err)
		}
		api = server.NewWithConfig(srvName, g, cfg)
	}
	defer api.Close()

	// Counts come from the published snapshot: the engine owns the mutable
	// graph as soon as the server exists.
	snap := api.Engine().Current()
	vertices, edges := snap.Graph().NumVertices(), snap.Edges()

	// ReadHeaderTimeout bounds slow-loris headers; WriteTimeout leaves room
	// for the query deadline plus response encoding so the server never cuts
	// off a legitimate slow Exact before the API-level deadline does.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *qTimeout + 15*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("sacserver: serving %s (%d vertices, %d edges) on %s (API /v1, deprecated alias /api)\n",
		srvName, vertices, edges, *addr)

	select {
	case err := <-errc:
		log.Fatalf("sacserver: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		log.Printf("sacserver: signal received, draining for up to %v", *grace)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			log.Printf("sacserver: shutdown: %v", err)
		}
		log.Printf("sacserver: drained, stopping snapshot writer")
	}
}

// graphName labels the served graph without building it: the -load file's
// basename, or the preset name.
func graphName(load, name string) string {
	if load == "" {
		return name
	}
	return strings.TrimSuffix(filepath.Base(load), filepath.Ext(load))
}

// buildGraph materializes the serving graph: a saved binary file with
// -load, a dataset preset otherwise.
func buildGraph(load, name string, scale float64) (*graph.Graph, error) {
	if load == "" {
		ds, err := dataset.Load(name, scale)
		if err != nil {
			return nil, err
		}
		return ds.Graph, nil
	}
	f, err := os.Open(load)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", load, err)
	}
	return g, nil
}
