// Quickstart: build a small geo-social graph by hand, run every SAC search
// algorithm on the same query, and compare the circles they return.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"sacsearch"
)

func main() {
	// Nine users in three "cities", mirroring the paper's Figure 1: a tight
	// triangle in the middle city, a looser group to the west, and a
	// separate clique to the east.
	b := sacsearch.NewBuilder(9)
	type loc struct{ x, y float64 }
	locs := []loc{
		{0.50, 0.50}, // 0: Tom   (query user, middle city)
		{0.51, 0.50}, // 1: Jeff
		{0.50, 0.51}, // 2: Jim
		{0.20, 0.20}, // 3: Jack  (west city)
		{0.21, 0.20}, // 4: Bob
		{0.20, 0.22}, // 5: Leo
		{0.80, 0.80}, // 6: Jason (east city)
		{0.81, 0.80}, // 7: John
		{0.80, 0.81}, // 8: Eric
	}
	names := []string{"Tom", "Jeff", "Jim", "Jack", "Bob", "Leo", "Jason", "John", "Eric"}
	for v, l := range locs {
		b.SetLoc(sacsearch.V(v), sacsearch.Point{X: l.x, Y: l.y})
	}
	edges := [][2]sacsearch.V{
		{0, 1}, {1, 2}, {2, 0}, // middle triangle
		{3, 4}, {4, 5}, {5, 3}, // west triangle
		{6, 7}, {7, 8}, {8, 6}, // east triangle
		{0, 3}, {0, 4}, // Tom also knows two westerners
		{2, 6}, // Jim knows Jason
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	g := b.Build()
	if err := g.SetLabels(names); err != nil {
		log.Fatal(err)
	}

	s := sacsearch.NewSearcher(g)
	q, k := sacsearch.V(0), 2 // Tom wants a dinner group: everyone knows 2 others
	ctx := context.Background()

	// One unified entry point: every algorithm is a Query naming it in the
	// registry (parameters default per algorithm when omitted).
	fmt.Printf("SAC search for %s with k=%d\n\n", g.Label(q), k)
	for _, algo := range []string{"exact", "exact+", "appinc", "appfast", "appacc"} {
		res, err := s.Search(ctx, sacsearch.Query{Algo: algo, Q: q, K: k})
		if err != nil {
			log.Fatalf("%s: %v", algo, err)
		}
		fmt.Printf("%-9s radius %.4f  members:", algo, res.Radius())
		for _, v := range res.Members {
			fmt.Printf(" %s", g.Label(v))
		}
		fmt.Println()
	}

	// Contrast with the non-spatial Global baseline: it returns Tom's whole
	// 2-core, spanning two cities.
	base := sacsearch.NewBaselineSearcher(g)
	global := base.Global(q, k)
	fmt.Printf("\nGlobal (non-spatial) community has %d members across radius %.4f —\n",
		len(global), sacsearch.CommunityRadius(g, global))
	fmt.Println("SAC search keeps the dinner group in one city.")
}
