package gen

import (
	"math"
	"math/rand"
	"sort"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// Checkin is one timestamped location report by a user, mirroring the
// Brightkite/Gowalla check-in records the dynamic experiment (Section 5.2.3)
// replays. Time is measured in fractional days from the stream's origin.
type Checkin struct {
	User graph.V
	Time float64 // days since stream start
	Loc  geom.Point
}

// CheckinConfig controls the synthetic check-in stream.
type CheckinConfig struct {
	Days          float64 // total stream duration (Brightkite spans ~900 days)
	PerUserMean   float64 // mean check-ins per user over the whole stream
	HomeSigma     float64 // spatial jitter around the current base location
	TripProb      float64 // per-check-in probability of relocating to a new base
	TripDistMean  float64 // mean distance of a relocation
	TripDistSigma float64
}

// DefaultCheckinConfig mirrors the qualitative shape of Brightkite: users
// mostly check in near a base location, occasionally traveling far (the
// "place A to place B" moves of Figure 2).
func DefaultCheckinConfig() CheckinConfig {
	return CheckinConfig{
		Days:          900,
		PerUserMean:   30,
		HomeSigma:     0.01,
		TripProb:      0.08,
		TripDistMean:  0.3,
		TripDistSigma: 0.15,
	}
}

// Checkins generates a time-sorted check-in stream for every vertex of g,
// starting from each vertex's current (static) location as its first base.
func Checkins(g *graph.Graph, cfg CheckinConfig, seed int64) []Checkin {
	rnd := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	var out []Checkin
	for v := 0; v < n; v++ {
		base := g.Loc(graph.V(v))
		// Poisson-ish count: geometric mixture around the mean.
		count := 1 + rnd.Intn(int(2*cfg.PerUserMean))
		times := make([]float64, count)
		for i := range times {
			times[i] = rnd.Float64() * cfg.Days
		}
		sort.Float64s(times)
		for _, t := range times {
			if rnd.Float64() < cfg.TripProb {
				// Travel: move the base a long way.
				d := rnd.NormFloat64()*cfg.TripDistSigma + cfg.TripDistMean
				if d < 0 {
					d = -d
				}
				ang := rnd.Float64() * 2 * math.Pi
				base = geom.Point{
					X: clamp01(base.X + d*math.Cos(ang)),
					Y: clamp01(base.Y + d*math.Sin(ang)),
				}
			}
			loc := geom.Point{
				X: clamp01(base.X + rnd.NormFloat64()*cfg.HomeSigma),
				Y: clamp01(base.Y + rnd.NormFloat64()*cfg.HomeSigma),
			}
			out = append(out, Checkin{User: graph.V(v), Time: t, Loc: loc})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].User < out[j].User
	})
	return out
}

// TravelDistance sums the distances between consecutive check-ins per user —
// the statistic the paper ranks query users by ("who travel the longest").
func TravelDistance(checkins []Checkin, n int) []float64 {
	dist := make([]float64, n)
	last := make([]geom.Point, n)
	seen := make([]bool, n)
	for _, c := range checkins {
		if seen[c.User] {
			dist[c.User] += last[c.User].Dist(c.Loc)
		}
		last[c.User] = c.Loc
		seen[c.User] = true
	}
	return dist
}

// SelectMovers returns up to count users ranked by descending total travel
// distance among those with at least minFriends neighbors — the paper's
// query-set construction for the dynamic experiment (100 users, ≥ 20
// friends, longest travel).
func SelectMovers(g *graph.Graph, checkins []Checkin, minFriends, count int) []graph.V {
	dist := TravelDistance(checkins, g.NumVertices())
	type cand struct {
		v graph.V
		d float64
	}
	var cands []cand
	for v := 0; v < g.NumVertices(); v++ {
		if g.Degree(graph.V(v)) >= minFriends {
			cands = append(cands, cand{graph.V(v), dist[v]})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].d != cands[j].d {
			return cands[i].d > cands[j].d
		}
		return cands[i].v < cands[j].v
	})
	if len(cands) > count {
		cands = cands[:count]
	}
	out := make([]graph.V, len(cands))
	for i, c := range cands {
		out[i] = c.v
	}
	return out
}
