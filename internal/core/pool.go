package core

import "sync"

// Pool is a concurrency-safe pool of Searcher clones over one graph — the
// parallel execution substrate for batch and server traffic. A single
// Searcher is cheap to query repeatedly but owns mutable scratch space and a
// candidate cache, so it must not be shared across goroutines; Pool hands
// each concurrent caller its own clone (sharing the immutable core/truss
// decompositions) and recycles clones across requests so their scratch
// buffers and warmed candidate caches survive between queries — the
// property that makes repeated-community server traffic cheap.
//
// The zero Pool is not usable; create one with NewPool. All methods are safe
// for concurrent use.
type Pool struct {
	base *Searcher
	p    sync.Pool
}

// NewPool creates a pool of clones of base. base itself is never handed
// out, so it remains safe to use on the caller's own goroutine.
func NewPool(base *Searcher) *Pool {
	pl := &Pool{base: base}
	pl.p.New = func() any { return base.Clone() }
	return pl
}

// Base returns the Searcher the pool clones from.
func (p *Pool) Base() *Searcher { return p.base }

// Get returns a Searcher for exclusive use by the calling goroutine. Return
// it with Put when done; Searchers that are never Put are simply collected.
func (p *Pool) Get() *Searcher { return p.p.Get().(*Searcher) }

// Put returns a Searcher obtained from Get to the pool.
func (p *Pool) Put(s *Searcher) { p.p.Put(s) }

// Do runs f with a pooled Searcher, returning the Searcher afterwards even
// if f panics.
func (p *Pool) Do(f func(*Searcher) error) error {
	s := p.Get()
	defer p.Put(s)
	return f(s)
}
