package core

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// Pairwise-distance SAC search — the paper's Section 6 future work ("we
// will examine other spatial cohesiveness measures (e.g., pair-wise vertex
// distances)"). Instead of minimizing the MCC radius, these variants
// minimize the community's diameter: the maximum distance between any two
// members.
//
// Minimizing the diameter exactly is much harder than minimizing the MCC
// radius: a candidate set with all pairwise distances ≤ d is a clique in the
// distance graph, so the feasibility test loses the monotone circle
// structure the MCC algorithms exploit (Guo et al. [17], which the paper
// cites for Lemma 2, study the same obstacle for the m-closest-keywords
// query and settle for approximations). We follow the same path:
//
//   - MinDiam2Approx: the k-ĉore inside the smallest q-centered ball that
//     contains a feasible solution has diameter ≤ 2·Dopt.
//   - MinDiamLens: enumerating member pairs (u,v) in ascending distance and
//     testing the lens ball(u,|u,v|) ∩ ball(v,|u,v|) tightens the guarantee
//     to √3·Dopt, because all of Ψ lies in the lens of its own diameter
//     pair, and a lens of radius d has geometric diameter √3·d.

// DiameterOf returns the maximum pairwise distance among the members'
// locations (0 for fewer than two members).
func DiameterOf(g *graph.Graph, members []graph.V) float64 {
	var best float64
	for i := 0; i < len(members); i++ {
		pi := g.Loc(members[i])
		for j := i + 1; j < len(members); j++ {
			if d := pi.Dist(g.Loc(members[j])); d > best {
				best = d
			}
		}
	}
	return best
}

// MinDiam2Approx returns a connected k-structure community containing q
// whose diameter is at most twice the minimum possible. It finds the
// smallest q-centered ball containing a feasible solution (every feasible
// solution of diameter D fits in ball(q, D), so the ball radius δ ≤ Dopt)
// and returns the maximal community inside it (diameter ≤ 2δ ≤ 2·Dopt).
// Result.Delta carries the achieved diameter.
func (s *Searcher) MinDiam2Approx(q graph.V, k int) (*Result, error) {
	start := s.begin()
	if err := s.checkQuery(q, k); err != nil {
		return nil, err
	}
	if res, handled, err := s.trivialK(q, k); handled {
		return s.finishDiam(res, start), err
	}
	cand, err := s.candidates(q, k)
	if err != nil {
		return nil, err
	}
	members, _ := s.appFastSearch(cand, q, k, 0)
	res := s.buildResult(q, k, members, 0)
	return s.finishDiam(res, start), nil
}

// MinDiamLens returns a connected k-structure community containing q whose
// diameter is at most √3 times the minimum possible. It enumerates candidate
// pairs (u, v) in ascending distance; for each it collects the lens of
// vertices within |u,v| of both endpoints (q must be inside) and tests
// feasibility. The first feasible lens at distance d proves Dopt ≥ d is not
// needed — rather d ≤ Dopt because the optimal community's own diameter pair
// yields a feasible lens — and the community found inside it has diameter at
// most the lens's geometric diameter √3·d ≤ √3·Dopt. Result.Delta carries
// the achieved diameter.
//
// The enumeration is bounded by the 2-approximation: only candidates within
// ball(q, D2) matter, where D2 is MinDiam2Approx's achieved diameter, and
// pair distances beyond D2 never improve on it.
func (s *Searcher) MinDiamLens(q graph.V, k int) (*Result, error) {
	start := s.begin()
	if err := s.checkQuery(q, k); err != nil {
		return nil, err
	}
	if res, handled, err := s.trivialK(q, k); handled {
		return s.finishDiam(res, start), err
	}
	cand, err := s.candidates(q, k)
	if err != nil {
		return nil, err
	}

	// Upper bound from the 2-approximation.
	bestMembers, _ := s.appFastSearch(cand, q, k, 0)
	bestDiam := DiameterOf(s.g, bestMembers)
	best := append([]graph.V(nil), bestMembers...)

	// Candidates that can participate in any solution beating the bound:
	// every member is within bestDiam of q.
	X := cand.prefixWithin(bestDiam)

	// Pairs in ascending distance. q itself participates as a degenerate
	// "pair" only through its own membership in X; every real pair must
	// keep q inside its lens.
	type pair struct {
		u, v graph.V
		d    float64
	}
	var pairs []pair
	for i := 0; i < len(X); i++ {
		pi := s.g.Loc(X[i])
		for j := i + 1; j < len(X); j++ {
			d := pi.Dist(s.g.Loc(X[j]))
			if d >= bestDiam-geom.Eps {
				continue // cannot beat the current best
			}
			qp := s.g.Loc(q)
			if qp.Dist(pi) > d+geom.Eps || qp.Dist(s.g.Loc(X[j])) > d+geom.Eps {
				continue // q outside the lens
			}
			pairs = append(pairs, pair{X[i], X[j], d})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].d < pairs[j].d })

	lens := s.subBuf[:0]
	for _, p := range pairs {
		if p.d >= bestDiam-geom.Eps {
			break // later pairs only get wider
		}
		pu, pv := s.g.Loc(p.u), s.g.Loc(p.v)
		lens = lens[:0]
		for _, w := range X {
			pw := s.g.Loc(w)
			if pw.Dist(pu) <= p.d+geom.Eps && pw.Dist(pv) <= p.d+geom.Eps {
				lens = append(lens, w)
			}
		}
		if c := s.feasible(lens, q, k); c != nil {
			if d := DiameterOf(s.g, c); d < bestDiam {
				bestDiam = d
				best = append(best[:0], c...)
			}
			// The first feasible lens already certifies the √3 guarantee;
			// smaller pairs cannot produce feasible lenses with smaller d
			// since pairs are sorted ascending.
			break
		}
	}
	s.subBuf = lens
	res := s.buildResult(q, k, best, 0)
	return s.finishDiam(res, start), nil
}

// finishDiam stamps elapsed time and stores the achieved diameter in Delta.
func (s *Searcher) finishDiam(res *Result, start time.Time) *Result {
	if res != nil {
		res.Delta = DiameterOf(s.g, res.Members)
	}
	return s.finish(res, start)
}

// MinDiamBrute enumerates every member subset of the candidate set (which
// must have at most maxBrute vertices) and returns the exact minimum
// diameter over feasible subsets. It exists as a test oracle and for tiny
// interactive queries; it is exponential.
const maxBrute = 20

func (s *Searcher) MinDiamBrute(q graph.V, k int) (*Result, error) {
	start := s.begin()
	if err := s.checkQuery(q, k); err != nil {
		return nil, err
	}
	if res, handled, err := s.trivialK(q, k); handled {
		return s.finishDiam(res, start), err
	}
	cand, err := s.candidates(q, k)
	if err != nil {
		return nil, err
	}
	X := cand.verts
	if len(X) > maxBrute {
		return nil, fmt.Errorf("core: MinDiamBrute candidate set too large (%d > %d)", len(X), maxBrute)
	}
	qi := -1
	for i, v := range X {
		if v == q {
			qi = i
		}
	}
	bestDiam := math.Inf(1)
	var best []graph.V
	subset := make([]graph.V, 0, len(X))
	for mask := 1; mask < 1<<len(X); mask++ {
		if mask&(1<<qi) == 0 {
			continue
		}
		subset = subset[:0]
		for i := range X {
			if mask&(1<<i) != 0 {
				subset = append(subset, X[i])
			}
		}
		c := s.feasible(subset, q, k)
		if c == nil || len(c) != len(subset) {
			continue // not all of the subset survives: the subset itself infeasible
		}
		if d := DiameterOf(s.g, c); d < bestDiam {
			bestDiam = d
			best = append(best[:0], c...)
		}
	}
	if best == nil {
		return nil, ErrNoCommunity
	}
	res := s.buildResult(q, k, best, 0)
	return s.finishDiam(res, start), nil
}
