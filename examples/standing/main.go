// Standing-query drill: boot a real sacserver process, open a standing
// community query over SSE through the typed client, churn the graph, and
// verify the pushed deltas replay to exactly the answer a fresh /v1/query
// gives. The drill then checks the invalidation gate's telemetry on
// /metrics and finishes with a graceful SIGTERM: the server must flush a
// terminal bye down the stream before its listener closes.
//
// This is the single-process standing-query integration test CI runs
// against the shipped binary (see .github/workflows/ci.yml):
//
//	go build -o /tmp/sacserver ./cmd/sacserver
//	go run ./examples/standing -sacserver /tmp/sacserver
//
// Without -sacserver the drill builds the binary itself, so a plain
// `go run ./examples/standing` from the module root also works. The drill
// exits 0 only if every step held; any violated expectation is fatal.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"sacsearch/client"
)

var (
	binPath = flag.String("sacserver", "", "path to a built sacserver binary (empty = build it into a temp dir)")
	addr    = flag.String("addr", "127.0.0.1:18095", "server HTTP address")
)

func main() {
	flag.Parse()
	log.SetFlags(log.Ltime | log.Lmicroseconds)
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	if err := run(ctx); err != nil {
		log.Fatalf("standing: FAIL: %v", err)
	}
	fmt.Println("standing: PASS — deltas replayed to the fresh answer, gate counted, drain said bye")
}

func run(ctx context.Context) error {
	bin := *binPath
	scratch, err := os.MkdirTemp("", "sacstanding-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)
	if bin == "" {
		bin = filepath.Join(scratch, "sacserver")
		log.Printf("standing: building %s", bin)
		build := exec.Command("go", "build", "-o", bin, "./cmd/sacserver")
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			return fmt.Errorf("building sacserver: %w", err)
		}
	}

	baseURL := "http://" + *addr
	srv := exec.Command(bin, "-dataset", "syn1", "-scale", "0.02", "-addr", *addr)
	srv.Stdout, srv.Stderr = os.Stdout, os.Stderr
	if err := srv.Start(); err != nil {
		return fmt.Errorf("starting sacserver: %w", err)
	}
	killed := false
	defer func() {
		if !killed {
			_ = srv.Process.Kill()
			_, _ = srv.Process.Wait()
		}
	}()
	if err := waitReady(ctx, baseURL); err != nil {
		return fmt.Errorf("server never became ready: %w", err)
	}

	cl, err := client.New(baseURL)
	if err != nil {
		return err
	}

	// Find an anchor vertex that actually has a 3-core community.
	q := client.Query{K: 3, Algo: "appfast"}
	var res *client.Result
	for v := int64(0); v < 40; v++ {
		q.Q = v
		if res, err = cl.Query(ctx, q); err == nil {
			break
		}
		if !errors.Is(err, client.ErrNoCommunity) {
			return fmt.Errorf("probing for an anchor: %w", err)
		}
	}
	if res == nil {
		return errors.New("no vertex in [0,40) has a 3-core community; dataset too sparse")
	}
	log.Printf("standing: anchor q=%d k=%d, initial community has %d members", q.Q, q.K, len(res.Members))

	// --- subscribe and verify the init snapshot -------------------------
	sub, err := cl.Subscribe(ctx, q, &client.SubscribeOptions{ID: "standing-demo", Buffer: 256})
	if err != nil {
		return fmt.Errorf("subscribe: %w", err)
	}
	defer sub.Close()

	members := map[int64]bool{}
	init, err := nextEvent(ctx, sub, 30*time.Second)
	if err != nil {
		return fmt.Errorf("waiting for init: %w", err)
	}
	if init.Kind != "init" {
		return fmt.Errorf("first event is %q, want init", init.Kind)
	}
	for _, v := range init.Members {
		members[v] = true
	}
	log.Printf("standing: init delivered (%d members, seq %d)", len(init.Members), init.Seq)

	// --- churn: move the anchor, expect a pushed delta ------------------
	// Moving the query vertex itself always changes the answer's MCC, so a
	// delta (or at least a changed result hash) is guaranteed.
	anchor, err := cl.Vertex(ctx, q.Q)
	if err != nil {
		return err
	}
	deltas := 0
	for round := 0; round < 5 && deltas == 0; round++ {
		if err := cl.CheckIn(ctx, q.Q, anchor.X+0.05+0.02*float64(round), anchor.Y+0.03); err != nil {
			return fmt.Errorf("churn check-in: %w", err)
		}
		ev, err := nextEvent(ctx, sub, 10*time.Second)
		if err != nil {
			continue // coalesced or hash-equal; move further and retry
		}
		if ev.Kind != "delta" {
			return fmt.Errorf("churn produced a %q event, want delta", ev.Kind)
		}
		deltas++
		for _, v := range ev.Joined {
			members[v] = true
		}
		for _, v := range ev.Left {
			delete(members, v)
		}
		log.Printf("standing: delta seq %d (+%d/-%d members, mcc %+v)", ev.Seq, len(ev.Joined), len(ev.Left), ev.MCC)
	}
	if deltas == 0 {
		return errors.New("moving the anchor never pushed a delta")
	}

	// The replayed membership must equal a fresh query on the final graph.
	fresh, err := cl.Query(ctx, q)
	if err != nil {
		return fmt.Errorf("fresh query after churn: %w", err)
	}
	if got, want := sortedKeys(members), fresh.Members; fmt.Sprint(got) != fmt.Sprint(want) {
		return fmt.Errorf("replayed membership diverged:\n  replayed: %v\n  fresh:    %v", got, want)
	}
	log.Printf("standing: replayed stream equals the fresh answer (%d members)", len(fresh.Members))

	// --- gate telemetry on /metrics -------------------------------------
	metrics, err := scrape(ctx, baseURL+"/metrics")
	if err != nil {
		return err
	}
	for _, name := range []string{
		"sac_subscriptions_active",
		"sac_subscription_evaluations_total",
		"sac_subscription_skipped_by_gate_total",
		"sac_subscription_deltas_total",
	} {
		if !strings.Contains(metrics, name) {
			return fmt.Errorf("/metrics is missing %s", name)
		}
	}
	log.Printf("standing: subscription telemetry exported on /metrics")

	// --- graceful drain: SIGTERM must flush a bye -----------------------
	log.Printf("standing: sending SIGTERM")
	if err := srv.Process.Signal(syscall.SIGTERM); err != nil {
		return err
	}
	byeDeadline := time.Now().Add(30 * time.Second)
	sawBye := false
	for !sawBye && time.Now().Before(byeDeadline) {
		ev, err := nextEvent(ctx, sub, time.Until(byeDeadline))
		if err != nil {
			break // channel closed: check Err below
		}
		sawBye = ev.Kind == "bye"
	}
	if !sawBye && !errors.Is(sub.Err(), client.ErrSubscriptionClosed) {
		return fmt.Errorf("no bye after SIGTERM (stream err: %v)", sub.Err())
	}
	if err := srv.Wait(); err != nil {
		return fmt.Errorf("server exited non-zero after SIGTERM: %w", err)
	}
	killed = true
	log.Printf("standing: drain flushed the terminal bye, server exited cleanly")
	return nil
}

// nextEvent waits for one event or times out. A closed channel is an error
// carrying the subscription's terminal status.
func nextEvent(ctx context.Context, sub *client.Subscription, d time.Duration) (client.SubEvent, error) {
	select {
	case ev, ok := <-sub.Events:
		if !ok {
			return client.SubEvent{}, fmt.Errorf("stream ended: %w", sub.Err())
		}
		return ev, nil
	case <-time.After(d):
		return client.SubEvent{}, errors.New("timed out waiting for an event")
	case <-ctx.Done():
		return client.SubEvent{}, ctx.Err()
	}
}

func sortedKeys(m map[int64]bool) []int64 {
	out := make([]int64, 0, len(m))
	for v := range m {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func scrape(ctx context.Context, url string) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return "", err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

// waitReady polls GET /v1/ready until it answers 200.
func waitReady(ctx context.Context, baseURL string) error {
	deadline := time.Now().Add(60 * time.Second)
	for {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+"/v1/ready", nil)
		if err == nil {
			if resp, err := http.DefaultClient.Do(req); err == nil {
				resp.Body.Close()
				if resp.StatusCode == http.StatusOK {
					return nil
				}
			}
		}
		if time.Now().After(deadline) {
			return errors.New("timed out")
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(100 * time.Millisecond):
		}
	}
}
