package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
)

// ErrGap reports that a cursor's next record is no longer in the log: the
// segment holding it was truncated away (checkpoint-covered) or removed
// under an in-progress read. The reader cannot continue from its position —
// it must restart from a snapshot, never skip silently.
var ErrGap = errors.New("wal: history gap")

// Cursor tails a live log directory: it streams records in sequence order,
// tolerating concurrent appends to the active segment (a partial frame at
// the tail is an in-progress write, retried on the next call) and following
// segment rotations. Unlike Replay it may run while the owning Log appends;
// it reads only CRC-valid complete frames, so it can never observe a torn
// batch as data. A Cursor is not safe for concurrent use.
//
// The replication shipper is the intended caller: one cursor per follower,
// polled for new records since the follower's acknowledged sequence.
type Cursor struct {
	dir    string
	f      *os.File
	first  uint64 // current segment's first sequence
	off    int64  // byte offset past the last complete frame
	expect uint64 // next sequence the current segment's chain must produce
	emit   uint64 // next sequence to deliver to the caller
	buf    []byte
}

// maxCursorRead bounds one Next call's read so a huge backlog streams in
// chunks instead of one giant allocation.
const maxCursorRead = 1 << 20

// OpenCursor positions a cursor to stream records with Seq > afterSeq from
// dir. It fails with ErrGap when the log no longer holds afterSeq+1 (the
// segments covering it were truncated) — the caller must fall back to a full
// snapshot rather than resume past a hole.
func OpenCursor(dir string, afterSeq uint64) (*Cursor, error) {
	c := &Cursor{dir: dir, emit: afterSeq + 1}
	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		// Nothing written yet; the first Next call finds the segment once it
		// exists. Valid only when no history is being skipped.
		if afterSeq > 0 {
			return nil, fmt.Errorf("%w: log is empty, cursor wants seq %d", ErrGap, afterSeq+1)
		}
		return c, nil
	}
	// The segment holding emit is the last one starting at or before it; a
	// fresh rotation may also name the active segment exactly emit.
	idx := -1
	for i, s := range segs {
		if s.first <= c.emit {
			idx = i
		}
	}
	if idx < 0 {
		return nil, fmt.Errorf("%w: log starts at seq %d, cursor wants %d", ErrGap, segs[0].first, c.emit)
	}
	if err := c.open(segs[idx]); err != nil {
		return nil, err
	}
	return c, nil
}

// open switches the cursor to segment s, validating its magic.
func (c *Cursor) open(s segment) error {
	f, err := os.Open(s.path)
	if err != nil {
		if os.IsNotExist(err) {
			return fmt.Errorf("%w: segment %s vanished", ErrGap, s.path)
		}
		return fmt.Errorf("wal: cursor opening %s: %w", s.path, err)
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil || magic != segMagic {
		f.Close()
		return fmt.Errorf("wal: cursor: %s: bad segment magic", s.path)
	}
	if c.f != nil {
		c.f.Close()
	}
	c.f = f
	c.first = s.first
	c.off = int64(len(segMagic))
	c.expect = s.first
	return nil
}

// Next returns up to max records past the cursor's position, without
// blocking: an empty result means the cursor is caught up with the log (or a
// tail append is still in flight). Errors are permanent: ErrGap when needed
// history was truncated away, anything else is corruption.
func (c *Cursor) Next(max int) ([]Record, error) {
	var out []Record
	for {
		if c.f == nil {
			segs, err := listSegments(c.dir)
			if err != nil || len(segs) == 0 {
				return out, err
			}
			if segs[0].first > c.emit {
				return out, fmt.Errorf("%w: log starts at seq %d, cursor wants %d", ErrGap, segs[0].first, c.emit)
			}
			if err := c.open(segs[0]); err != nil {
				return out, err
			}
		}
		fi, err := c.f.Stat()
		if err != nil {
			return out, fmt.Errorf("wal: cursor stat: %w", err)
		}
		leftover := 0
		if fi.Size() > c.off {
			need := fi.Size() - c.off
			capped := need > maxCursorRead
			if capped {
				need = maxCursorRead
			}
			if int64(cap(c.buf)) < need {
				c.buf = make([]byte, need)
			}
			rn, err := c.f.ReadAt(c.buf[:need], c.off)
			if err != nil && err != io.EOF {
				return out, fmt.Errorf("wal: cursor read: %w", err)
			}
			data := c.buf[:rn]
			pos := 0
			for pos < len(data) {
				fn, rec, ok := DecodeFrame(data[pos:])
				if !ok {
					break
				}
				if rec.Seq != c.expect {
					return out, fmt.Errorf("wal: cursor: %s: record seq %d, want %d", c.f.Name(), rec.Seq, c.expect)
				}
				c.expect++
				pos += fn
				c.off += int64(fn)
				if rec.Seq >= c.emit {
					out = append(out, rec)
					c.emit = rec.Seq + 1
					if len(out) >= max {
						return out, nil
					}
				}
			}
			leftover = len(data) - pos
			if capped {
				// More bytes exist past this chunk. A frame is at most a few
				// dozen bytes, so an unparseable full-size chunk is corruption,
				// not a torn tail; otherwise re-read from the new offset.
				if pos == 0 {
					return out, fmt.Errorf("wal: cursor: corrupt record in segment %s at byte %d", segName(c.first), c.off)
				}
				continue
			}
		}
		// Nothing more parses here: either caught up on the active segment,
		// or the segment is sealed and the chain continues in its successor.
		advanced, err := c.advance(leftover)
		if err != nil {
			return out, err
		}
		if !advanced {
			return out, nil
		}
	}
}

// advance moves to the successor segment when the current one is sealed and
// fully consumed. leftover is the count of unparseable bytes at the current
// read position: on the active (last) segment that is an in-progress append;
// on a sealed segment it is corruption.
func (c *Cursor) advance(leftover int) (bool, error) {
	segs, err := listSegments(c.dir)
	if err != nil {
		return false, err
	}
	present := false
	var succ *segment
	for i := range segs {
		if segs[i].first == c.first {
			present = true
		}
		if segs[i].first > c.first && (succ == nil || segs[i].first < succ.first) {
			succ = &segs[i]
		}
	}
	if !present {
		return false, fmt.Errorf("%w: segment %s removed under cursor at seq %d", ErrGap, segName(c.first), c.expect)
	}
	if succ == nil {
		return false, nil // active segment: wait for more appends
	}
	if leftover > 0 {
		return false, fmt.Errorf("wal: cursor: corrupt record in sealed segment %s at byte %d", segName(c.first), c.off)
	}
	if succ.first != c.expect {
		return false, fmt.Errorf("wal: cursor: segment after %s starts at seq %d, want %d", segName(c.first), succ.first, c.expect)
	}
	return true, c.open(*succ)
}

// Pos returns the sequence of the last record delivered (the next Next call
// continues after it).
func (c *Cursor) Pos() uint64 { return c.emit - 1 }

// Close releases the cursor's file handle.
func (c *Cursor) Close() error {
	if c.f == nil {
		return nil
	}
	err := c.f.Close()
	c.f = nil
	return err
}
