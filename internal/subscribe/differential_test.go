package subscribe

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"time"

	"sacsearch/internal/core"
	"sacsearch/internal/gen"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/snapshot"
)

// The differential contract: for every algorithm, replaying a standing
// query's event stream (init + deltas) over the initial state must land on
// exactly the community a fresh Search reports on the final snapshot. Any
// gate that wrongly skips a re-evaluation, or any diff that drops a member,
// breaks this equality.

// replayState folds a subscription's event stream into the member set a
// client would hold after consuming it.
type replayState struct {
	members     map[int64]bool
	mcc         Circle
	delta       float64
	noCommunity bool
	sawInit     bool
	events      int
}

func (rs *replayState) apply(t *testing.T, ev Event) {
	t.Helper()
	if ev.Kind == KindBye {
		return
	}
	var p EventJSON
	if err := json.Unmarshal(ev.Data, &p); err != nil {
		t.Fatalf("unmarshal %s event: %v", ev.Kind, err)
	}
	rs.events++
	switch ev.Kind {
	case KindInit:
		rs.sawInit = true
		rs.members = make(map[int64]bool, len(p.Members))
		for _, v := range p.Members {
			rs.members[v] = true
		}
	case KindDelta:
		if !rs.sawInit {
			t.Fatalf("delta before init (seq %d)", ev.Seq)
		}
		for _, v := range p.Joined {
			if rs.members[v] {
				t.Fatalf("delta joins %d which is already a member", v)
			}
			rs.members[v] = true
		}
		for _, v := range p.Left {
			if !rs.members[v] {
				t.Fatalf("delta removes %d which is not a member", v)
			}
			delete(rs.members, v)
		}
	default:
		t.Fatalf("unexpected event kind %q", ev.Kind)
	}
	rs.noCommunity = p.NoCommunity
	if p.MCC != nil {
		rs.mcc = *p.MCC
	}
	rs.delta = p.Delta
	if rs.noCommunity && len(rs.members) != 0 {
		t.Fatalf("noCommunity event carried %d members", len(rs.members))
	}
}

func (rs *replayState) sorted() []int64 {
	out := make([]int64, 0, len(rs.members))
	for v := range rs.members {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// drainStream empties the buffered events of a quiesced stream.
func drainStream(st *Stream) []Event {
	var out []Event
	for {
		select {
		case ev := <-st.C:
			out = append(out, ev)
		default:
			return out
		}
	}
}

// waitProcessed blocks until the manager has dispatched through seq.
func waitProcessed(t *testing.T, m *Manager, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for m.ProcessedSeq() < seq {
		if time.Now().After(deadline) {
			t.Fatalf("manager stuck: processed %d, want >= %d", m.ProcessedSeq(), seq)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// churnGraph builds a connected spatial social graph small enough for the
// exact algorithms to keep up with re-evaluation.
func churnGraph(t *testing.T, n, m int, seed int64) *graph.Graph {
	t.Helper()
	b := gen.SocialGraph(n, m, seed)
	gen.PlaceSpatial(b, gen.DefaultDistMean, gen.DefaultDistSigma, seed+1)
	return b.Build()
}

func TestDifferentialAllAlgorithms(t *testing.T) {
	g := churnGraph(t, 120, 420, 7)
	n := g.NumVertices()
	eng := snapshot.New(g, snapshot.Options{})
	defer eng.Close()

	mgr := NewManager(ManagerOptions{
		Current: eng.Current,
		// A big stream buffer lets the test read events after quiescence
		// instead of racing a consumer goroutine against the dispatcher.
		Hub: Options{StreamBuf: 8192},
	})
	defer mgr.Close()
	eng.SetOnPublish(mgr.Notify)

	// The highest-degree vertex anchors the standing queries: it is the
	// likeliest to stay in the 3-core through churn, so the streams see both
	// member turnover and (occasionally) no-community transitions.
	q := graph.V(0)
	for v := 1; v < n; v++ {
		if g.Degree(graph.V(v)) > g.Degree(q) {
			q = graph.V(v)
		}
	}
	theta := 0.35
	queries := []core.Query{
		{Q: q, K: 3, Algo: "exact"},
		{Q: q, K: 3, Algo: "exact+"},
		{Q: q, K: 3, Algo: "appfast"},
		{Q: q, K: 3, Algo: "appinc"},
		{Q: q, K: 3, Algo: "appacc"},
		{Q: q, K: 3, Algo: "theta", Theta: &theta},
		// A k no vertex reaches exercises the no-community gate arm.
		{Q: q, K: 40, Algo: "appfast"},
	}
	type tracked struct {
		sub *Sub
		st  *Stream
	}
	subs := make([]tracked, len(queries))
	for i, cq := range queries {
		sub, err := mgr.Register(fmt.Sprintf("diff-%d", i), cq)
		if err != nil {
			t.Fatalf("register %s: %v", cq.Algo, err)
		}
		st, replay, err := sub.Attach(0, false)
		if err != nil {
			t.Fatalf("attach %s: %v", cq.Algo, err)
		}
		if len(replay) != 0 {
			t.Fatalf("fresh subscription replayed %d events", len(replay))
		}
		subs[i] = tracked{sub, st}
	}

	// Churn: moves dominate (the check-in workload of the paper), with
	// enough edge churn to reshape candidate sets.
	rnd := rand.New(rand.NewSource(99))
	ctx := context.Background()
	for i := 0; i < 200; i++ {
		switch {
		case rnd.Float64() < 0.6:
			v := graph.V(rnd.Intn(n))
			cur := eng.Current().Graph().Loc(v)
			p := geom.Point{
				X: cur.X + (rnd.Float64()-0.5)*0.1,
				Y: cur.Y + (rnd.Float64()-0.5)*0.1,
			}
			if err := eng.CheckIn(ctx, v, p); err != nil {
				t.Fatalf("checkin: %v", err)
			}
		default:
			u, w := graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n))
			if u == w {
				continue
			}
			if _, err := eng.UpdateEdge(ctx, u, w, rnd.Float64() < 0.7); err != nil {
				t.Fatalf("edge: %v", err)
			}
		}
	}

	final := eng.Current()
	waitProcessed(t, mgr, final.Seq())

	worker := final.Get()
	defer final.Put(worker)
	for i, cq := range queries {
		var rs replayState
		for _, ev := range drainStream(subs[i].st) {
			rs.apply(t, ev)
		}
		if !rs.sawInit {
			t.Fatalf("%s: no init event arrived", cq.Algo)
		}
		res, err := worker.Search(ctx, cq)
		label := fmt.Sprintf("%s k=%d", cq.Algo, cq.K)
		switch {
		case err == nil:
			if rs.noCommunity {
				t.Fatalf("%s: stream says no community, fresh search found %d members",
					label, len(res.Members))
			}
			want := make([]int64, len(res.Members))
			for j, v := range res.Members {
				want[j] = int64(v)
			}
			got := rs.sorted()
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Errorf("%s: replayed members %v != fresh %v (%d events)",
					label, got, want, rs.events)
			}
			if math.Abs(rs.mcc.R-res.MCC.R) > 1e-9 {
				t.Errorf("%s: replayed radius %v != fresh %v", label, rs.mcc.R, res.MCC.R)
			}
		case err == core.ErrNoCommunity || rs.noCommunity:
			if (err == core.ErrNoCommunity) != rs.noCommunity {
				t.Errorf("%s: stream noCommunity=%v, fresh search err=%v", label, rs.noCommunity, err)
			}
		default:
			t.Fatalf("%s: fresh search: %v", label, err)
		}
		if t.Failed() {
			return
		}
	}
}

// TestDifferentialCommunityFlips drives a subscription through
// community → no-community → community transitions by deleting and
// re-inserting the edges that keep q in the k-core.
func TestDifferentialCommunityFlips(t *testing.T) {
	// Two triangles sharing vertex 0 plus a stranded pair: k=2 community
	// around 0 exists iff its triangle edges do.
	b := graph.NewBuilder(7)
	rnd := rand.New(rand.NewSource(3))
	for v := 0; v < 7; v++ {
		b.SetLoc(graph.V(v), geom.Point{X: rnd.Float64(), Y: rnd.Float64()})
	}
	tri := [][2]graph.V{{0, 1}, {1, 2}, {0, 2}, {0, 3}, {3, 4}, {0, 4}}
	for _, e := range tri {
		b.AddEdge(e[0], e[1])
	}
	b.AddEdge(5, 6)
	g := b.Build()

	eng := snapshot.New(g, snapshot.Options{})
	defer eng.Close()
	mgr := NewManager(ManagerOptions{Current: eng.Current, Hub: Options{StreamBuf: 8192}})
	defer mgr.Close()
	eng.SetOnPublish(mgr.Notify)

	cq := core.Query{Q: 0, K: 2, Algo: "appfast"}
	sub, err := mgr.Register("flip", cq)
	if err != nil {
		t.Fatal(err)
	}
	st, _, err := sub.Attach(0, false)
	if err != nil {
		t.Fatal(err)
	}

	// Quiesce between phases: the dispatcher coalesces publications, so
	// without a barrier a delete+re-insert round can collapse into a single
	// no-op evaluation. Each barrier forces the transition onto the stream.
	ctx := context.Background()
	for round := 0; round < 3; round++ {
		for _, e := range tri {
			if _, err := eng.UpdateEdge(ctx, e[0], e[1], false); err != nil {
				t.Fatal(err)
			}
		}
		waitProcessed(t, mgr, eng.Current().Seq())
		for _, e := range tri {
			if _, err := eng.UpdateEdge(ctx, e[0], e[1], true); err != nil {
				t.Fatal(err)
			}
		}
		waitProcessed(t, mgr, eng.Current().Seq())
	}
	final := eng.Current()
	waitProcessed(t, mgr, final.Seq())

	var rs replayState
	for _, ev := range drainStream(st) {
		rs.apply(t, ev)
	}
	if !rs.sawInit {
		t.Fatal("no init event")
	}
	// init + at least one delta per quiesced phase (6 phases, each flipping
	// community existence).
	if rs.events < 7 {
		t.Fatalf("expected a transition per quiesced phase, got %d events", rs.events)
	}
	worker := final.Get()
	defer final.Put(worker)
	res, err := worker.Search(ctx, cq)
	if err != nil {
		t.Fatalf("fresh search after re-insert: %v", err)
	}
	want := make([]int64, len(res.Members))
	for j, v := range res.Members {
		want[j] = int64(v)
	}
	if rs.noCommunity {
		t.Fatal("stream ended on no-community; edges were re-inserted")
	}
	if fmt.Sprint(rs.sorted()) != fmt.Sprint(want) {
		t.Fatalf("replayed members %v != fresh %v", rs.sorted(), want)
	}
}
