package server

import (
	"fmt"
	"net/http"

	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/shard"
	"sacsearch/internal/snapshot"
)

// The /v1/shard/* protocol is the router-facing half of the sharded
// topology. A shard never answers a /v1/shard/search unless it can prove
// the answer equals the single-engine one (the optimistic-peel certificate,
// internal/shard); otherwise it reports contained=false and the router
// assembles the global candidate set via /v1/shard/expand across shards.
// /v1/shard/range serves the θ-SAC path: every vertex this shard owns
// inside a disk, with authoritative location and full adjacency.
//
// All three POST endpoints serve from one pinned snapshot per request, so a
// reply is internally consistent; replicas of a shard serve them too (the
// usual staleness gate applies).

// ShardInfoResponse describes this node's place in the topology.
type ShardInfoResponse struct {
	ShardID int `json:"shardId"`
	Shards  int `json:"shards"`
	// MapChecksum identifies the shard-map artifact; the router refuses to
	// mix shards loaded from different maps.
	MapChecksum uint32 `json:"mapChecksum"`
	Vertices    int    `json:"vertices"` // global id space
	Owned       int    `json:"owned"`
	Ghosts      int    `json:"ghosts"`
	Edges       int    `json:"edges"` // edges materialized on this shard
	Role        string `json:"role"`
}

// ShardSearchResponse is a shard's verdict on one query. Contained=true
// means the attached outcome is certified equal to a whole-graph answer;
// contained=false means the candidate community may cross shard boundaries
// and the router must scatter-gather.
type ShardSearchResponse struct {
	Contained   bool           `json:"contained"`
	NoCommunity bool           `json:"noCommunity,omitempty"`
	Result      *QueryResponse `json:"result,omitempty"`
}

// ShardExpandRequest asks for the optimistic k-core closure around seeds
// this shard owns.
type ShardExpandRequest struct {
	K     int       `json:"k"`
	Seeds []graph.V `json:"seeds"`
}

// ShardVertexJSON is one owned vertex with its authoritative location and
// full adjacency — the unit of the router's subgraph assembly.
type ShardVertexJSON struct {
	V   graph.V   `json:"v"`
	X   float64   `json:"x"`
	Y   float64   `json:"y"`
	Adj []graph.V `json:"adj"`
}

// ShardExpandResponse carries the owned members of the seed components and
// the frontier ghosts (owned by other shards) bordering them.
type ShardExpandResponse struct {
	Members  []ShardVertexJSON `json:"members"`
	Frontier []graph.V         `json:"frontier"`
}

// ShardRangeRequest asks for every owned vertex inside the closed disk.
type ShardRangeRequest struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	R float64 `json:"r"`
}

// ShardRangeResponse lists the owned vertices inside the disk.
type ShardRangeResponse struct {
	Members []ShardVertexJSON `json:"members"`
}

// certCache pins one certificate to the engine lineage and topology epoch
// it was built for. The engine pointer matters on replicas, which swap
// engines on re-sync (epochs could alias across lineages).
type certCache struct {
	eng       *snapshot.Engine
	topoEpoch uint64
	cert      *shard.Cert
}

// certFor returns the exactness certificate for snap, rebuilding it when
// the topology epoch moved. Location churn never invalidates it — the peel
// is purely topological. A concurrent rebuild race wastes one build, never
// correctness: certificates for the same topology are interchangeable.
func (s *Server) certFor(eng *snapshot.Engine, snap *snapshot.Snap) *shard.Cert {
	te := snap.TopoEpoch()
	if c := s.cert.Load(); c != nil && c.eng == eng && c.topoEpoch == te {
		return c.cert
	}
	c := &certCache{eng: eng, topoEpoch: te, cert: shard.NewCert(snap.Graph(), s.cfg.Shard)}
	s.cert.Store(c)
	return c.cert
}

func (s *Server) handleShardInfo(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.readEngine(w, r)
	if !ok {
		return
	}
	snap := eng.Current()
	g := snap.Graph()
	owned, ghosts := s.cfg.Shard.Counts(g)
	writeJSON(w, http.StatusOK, ShardInfoResponse{
		ShardID:     s.cfg.Shard.ID,
		Shards:      s.cfg.Shard.Map.Shards,
		MapChecksum: s.cfg.Shard.Map.Checksum(),
		Vertices:    g.NumVertices(),
		Owned:       owned,
		Ghosts:      ghosts,
		Edges:       snap.Edges(),
		Role:        s.role(),
	})
}

// handleShardSearch answers a query locally if and only if the certificate
// holds. Validation runs exactly as /v1/query's would, so a router
// forwarding the error envelope is indistinguishable from a single server.
func (s *Server) handleShardSearch(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	eng, ok := s.readEngine(w, r)
	if !ok {
		return
	}
	snap := eng.Current()
	searcher := snap.Get()
	defer snap.Put(searcher)
	q := req.toQuery()
	if err := searcher.ValidateQuery(q); err != nil {
		writeQueryError(w, r, err)
		return
	}
	if !s.cfg.Shard.Owns(req.Q) {
		writeError(w, r, http.StatusBadRequest, CodeWrongShard, "q",
			fmt.Sprintf("vertex %d is owned by shard %d, not shard %d",
				req.Q, s.cfg.Shard.Map.OwnerOf(req.Q), s.cfg.Shard.ID))
		return
	}
	// The certificate covers the k-core candidate construction; θ-SAC scans
	// a fixed disk instead and is always assembled router-side.
	if spec, _ := core.LookupAlgo(req.Algo); spec != nil && spec.Name == "theta" {
		writeJSON(w, http.StatusOK, ShardSearchResponse{Contained: false})
		return
	}
	alive, certified := s.certFor(eng, snap).Contained(req.Q, req.K)
	if !alive {
		// q has fewer than k supporting neighbors even if every unseen edge
		// survives: ErrNoCommunity is the exact global answer.
		writeJSON(w, http.StatusOK, ShardSearchResponse{Contained: true, NoCommunity: true})
		return
	}
	if !certified {
		writeJSON(w, http.StatusOK, ShardSearchResponse{Contained: false})
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	res, err := searcher.Search(ctx, q)
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	spec, _ := core.LookupAlgo(req.Algo)
	s.observeQuery(spec.Name, res.Stats)
	resp := toQueryResponse(spec.Name, res)
	writeJSON(w, http.StatusOK, ShardSearchResponse{Contained: true, Result: &resp})
}

func (s *Server) handleShardExpand(w http.ResponseWriter, r *http.Request) {
	var req ShardExpandRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.K < 1 {
		writeError(w, r, http.StatusBadRequest, CodeInvalidArgument, "k",
			fmt.Sprintf("k must be >= 1, got %d", req.K))
		return
	}
	eng, ok := s.readEngine(w, r)
	if !ok {
		return
	}
	snap := eng.Current()
	g := snap.Graph()
	for _, v := range req.Seeds {
		if v < 0 || int(v) >= g.NumVertices() {
			writeError(w, r, http.StatusNotFound, CodeUnknownVertex, "seeds",
				fmt.Sprintf("unknown vertex %d", v))
			return
		}
		if !s.cfg.Shard.Owns(v) {
			writeError(w, r, http.StatusBadRequest, CodeWrongShard, "seeds",
				fmt.Sprintf("seed %d is owned by shard %d, not shard %d",
					v, s.cfg.Shard.Map.OwnerOf(v), s.cfg.Shard.ID))
			return
		}
	}
	members, frontier := s.certFor(eng, snap).Expand(req.Seeds, req.K)
	resp := ShardExpandResponse{Members: make([]ShardVertexJSON, len(members)), Frontier: frontier}
	for i, v := range members {
		resp.Members[i] = shardVertex(g, v)
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleShardRange(w http.ResponseWriter, r *http.Request) {
	var req ShardRangeRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if !geom.Finite(req.X) || !geom.Finite(req.Y) || !geom.Finite(req.R) || req.R < 0 {
		writeError(w, r, http.StatusBadRequest, CodeInvalidArgument, "r",
			fmt.Sprintf("disk (%v, %v, r=%v) must be finite with r >= 0", req.X, req.Y, req.R))
		return
	}
	eng, ok := s.readEngine(w, r)
	if !ok {
		return
	}
	snap := eng.Current()
	g := snap.Graph()
	circle := geom.Circle{C: geom.Point{X: req.X, Y: req.Y}, R: req.R}
	var resp ShardRangeResponse
	// Same closed-disk predicate (geom.Eps tolerance) as θ-SAC's own scan,
	// so the assembled membership matches a single-engine run bit for bit.
	for v := 0; v < g.NumVertices(); v++ {
		if s.cfg.Shard.Owns(graph.V(v)) && circle.Contains(g.Loc(graph.V(v))) {
			resp.Members = append(resp.Members, shardVertex(g, graph.V(v)))
		}
	}
	writeJSON(w, http.StatusOK, resp)
}

// shardVertex snapshots one owned vertex for the wire: location plus full
// adjacency (complete by the subgraph invariant — every edge of an owned
// vertex is materialized on its owner).
func shardVertex(g *graph.Graph, v graph.V) ShardVertexJSON {
	loc := g.Loc(v)
	adj := g.Neighbors(v)
	out := ShardVertexJSON{V: v, X: loc.X, Y: loc.Y}
	if len(adj) > 0 {
		out.Adj = append([]graph.V(nil), adj...)
	}
	return out
}
