package spatial

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

func randomPoints(n int, seed int64) []geom.Point {
	rnd := rand.New(rand.NewSource(seed))
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
	}
	return pts
}

func bruteInCircle(pts []geom.Point, c geom.Circle) []graph.V {
	var out []graph.V
	for i, p := range pts {
		if c.Contains(p) {
			out = append(out, graph.V(i))
		}
	}
	return out
}

func sortedIDs(vs []graph.V) []graph.V {
	out := append([]graph.V(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func eqIDs(a, b []graph.V) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestEmptyGrid(t *testing.T) {
	g := NewGrid(nil, 4)
	if g.NumPoints() != 0 {
		t.Fatalf("NumPoints = %d", g.NumPoints())
	}
	if got := g.InCircle(geom.Circle{C: geom.Point{X: 0.5, Y: 0.5}, R: 10}, nil); len(got) != 0 {
		t.Fatalf("InCircle on empty = %v", got)
	}
	if got := g.KNearest(geom.Point{}, 3, nil); len(got) != 0 {
		t.Fatalf("KNearest on empty = %v", got)
	}
}

func TestSinglePoint(t *testing.T) {
	g := NewGrid([]geom.Point{{X: 0.3, Y: 0.7}}, 4)
	got := g.InCircle(geom.Circle{C: geom.Point{X: 0.3, Y: 0.7}, R: 0}, nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("InCircle = %v", got)
	}
	if got := g.InCircle(geom.Circle{C: geom.Point{X: 0.9, Y: 0.9}, R: 0.1}, nil); len(got) != 0 {
		t.Fatalf("miss = %v", got)
	}
}

func TestInCircleMatchesBrute(t *testing.T) {
	pts := randomPoints(2000, 42)
	g := NewGrid(pts, 4)
	rnd := rand.New(rand.NewSource(43))
	for trial := 0; trial < 100; trial++ {
		c := geom.Circle{
			C: geom.Point{X: rnd.Float64() * 1.2, Y: rnd.Float64() * 1.2},
			R: rnd.Float64() * 0.4,
		}
		got := sortedIDs(g.InCircle(c, nil))
		want := sortedIDs(bruteInCircle(pts, c))
		if !eqIDs(got, want) {
			t.Fatalf("trial %d circle %+v: got %d pts, want %d", trial, c, len(got), len(want))
		}
	}
}

func TestInCircleNegativeRadius(t *testing.T) {
	g := NewGrid(randomPoints(10, 1), 4)
	if got := g.InCircle(geom.Circle{C: geom.Point{X: 0.5, Y: 0.5}, R: -1}, nil); len(got) != 0 {
		t.Fatalf("negative radius = %v", got)
	}
}

func TestInAnnulus(t *testing.T) {
	pts := []geom.Point{
		{X: 0.5, Y: 0.5},  // center, dist 0
		{X: 0.6, Y: 0.5},  // dist 0.1
		{X: 0.8, Y: 0.5},  // dist 0.3
		{X: 0.95, Y: 0.5}, // dist 0.45
	}
	g := NewGrid(pts, 1)
	got := sortedIDs(g.InAnnulus(geom.Point{X: 0.5, Y: 0.5}, 0.05, 0.35, nil))
	if !eqIDs(got, []graph.V{1, 2}) {
		t.Fatalf("annulus = %v, want [1 2]", got)
	}
	// Inner radius 0 includes the center point.
	got = sortedIDs(g.InAnnulus(geom.Point{X: 0.5, Y: 0.5}, 0, 0.35, nil))
	if !eqIDs(got, []graph.V{0, 1, 2}) {
		t.Fatalf("annulus with rInner=0 = %v", got)
	}
}

func TestKNearestMatchesBrute(t *testing.T) {
	pts := randomPoints(500, 7)
	g := NewGrid(pts, 4)
	rnd := rand.New(rand.NewSource(8))
	for trial := 0; trial < 50; trial++ {
		p := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
		k := 1 + rnd.Intn(20)
		got := g.KNearest(p, k, nil)
		if len(got) != k {
			t.Fatalf("trial %d: got %d ids, want %d", trial, len(got), k)
		}
		// Brute force: k smallest distances.
		type cand struct {
			id graph.V
			d  float64
		}
		all := make([]cand, len(pts))
		for i, q := range pts {
			all[i] = cand{graph.V(i), q.Dist2(p)}
		}
		sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
		for i := 0; i < k; i++ {
			// Compare distances (ids may tie).
			if gd := pts[got[i]].Dist2(p); gd != all[i].d {
				t.Fatalf("trial %d position %d: dist %v, want %v", trial, i, gd, all[i].d)
			}
		}
	}
}

func TestKNearestWithFilter(t *testing.T) {
	pts := randomPoints(100, 9)
	g := NewGrid(pts, 4)
	even := func(v graph.V) bool { return v%2 == 0 }
	got := g.KNearest(geom.Point{X: 0.5, Y: 0.5}, 10, even)
	if len(got) != 10 {
		t.Fatalf("got %d", len(got))
	}
	for _, id := range got {
		if id%2 != 0 {
			t.Fatalf("filter violated: %d", id)
		}
	}
	// Request more than available.
	got = g.KNearest(geom.Point{X: 0.5, Y: 0.5}, 80, even)
	if len(got) != 50 {
		t.Fatalf("got %d acceptable points, want all 50 even ids", len(got))
	}
}

func TestKNearestZero(t *testing.T) {
	g := NewGrid(randomPoints(10, 3), 4)
	if got := g.KNearest(geom.Point{}, 0, nil); got != nil {
		t.Fatalf("k=0 = %v", got)
	}
}

func TestDegenerateAllSamePoint(t *testing.T) {
	pts := make([]geom.Point, 20)
	for i := range pts {
		pts[i] = geom.Point{X: 0.5, Y: 0.5}
	}
	g := NewGrid(pts, 4)
	got := g.InCircle(geom.Circle{C: geom.Point{X: 0.5, Y: 0.5}, R: 0.01}, nil)
	if len(got) != 20 {
		t.Fatalf("got %d, want 20", len(got))
	}
	if got := g.KNearest(geom.Point{X: 0.5, Y: 0.5}, 5, nil); len(got) != 5 {
		t.Fatalf("KNearest = %v", got)
	}
}

func TestNewGridForGraph(t *testing.T) {
	b := graph.NewBuilder(3)
	b.SetLoc(0, geom.Point{X: 0, Y: 0})
	b.SetLoc(1, geom.Point{X: 1, Y: 1})
	b.SetLoc(2, geom.Point{X: 0.5, Y: 0.5})
	g := b.Build()
	grid := NewGridForGraph(g, 1)
	got := grid.InCircle(geom.Circle{C: geom.Point{X: 0.5, Y: 0.5}, R: 0.1}, nil)
	if len(got) != 1 || got[0] != 2 {
		t.Fatalf("InCircle = %v", got)
	}
}

// Property: InCircle returns exactly the brute-force set for arbitrary
// circles and point clouds.
func TestInCircleProperty(t *testing.T) {
	f := func(seed int64, nRaw uint8, cxRaw, cyRaw, rRaw uint16) bool {
		n := int(nRaw%100) + 1
		pts := randomPoints(n, seed)
		g := NewGrid(pts, 3)
		c := geom.Circle{
			C: geom.Point{X: float64(cxRaw) / 65535, Y: float64(cyRaw) / 65535},
			R: float64(rRaw) / 65535 * 0.5,
		}
		return eqIDs(sortedIDs(g.InCircle(c, nil)), sortedIDs(bruteInCircle(pts, c)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInCircleGrid(b *testing.B) {
	pts := randomPoints(100000, 11)
	g := NewGrid(pts, 4)
	c := geom.Circle{C: geom.Point{X: 0.5, Y: 0.5}, R: 0.05}
	buf := make([]graph.V, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = g.InCircle(c, buf[:0])
	}
}

func BenchmarkInCircleLinearScan(b *testing.B) {
	pts := randomPoints(100000, 11)
	c := geom.Circle{C: geom.Point{X: 0.5, Y: 0.5}, R: 0.05}
	buf := make([]graph.V, 0, 4096)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = buf[:0]
		for j, p := range pts {
			if c.Contains(p) {
				buf = append(buf, graph.V(j))
			}
		}
	}
}
