package server

import (
	"fmt"
	"net/http"
	"strconv"
	"time"

	"sacsearch/internal/core"
	"sacsearch/internal/graph"
	"sacsearch/internal/subscribe"
)

// Standing queries: GET /v1/subscribe registers (or resumes) a standing SAC
// query and streams its result as Server-Sent Events — an init frame with
// the full current community, then a delta frame whenever a published
// snapshot changes it. See the README's "Standing queries" section for the
// wire contract.

func (c Config) subscribeHeartbeat() time.Duration {
	if c.SubscribeHeartbeat > 0 {
		return c.SubscribeHeartbeat
	}
	return 15 * time.Second
}

// ParseSubscribeQuery decodes the standing query from /v1/subscribe URL
// parameters — the GET-shaped twin of QueryRequest.toQuery. Numeric
// failures surface as the same invalid_query envelopes a malformed POST
// body would get. Exported so the router serves the identical contract.
func ParseSubscribeQuery(r *http.Request) (core.Query, error) {
	var cq core.Query
	vals := r.URL.Query()
	intField := func(name string) (int64, error) {
		raw := vals.Get(name)
		if raw == "" {
			return 0, &core.QueryError{Code: core.ErrCodeInvalidQuery, Field: name,
				Reason: fmt.Sprintf("missing required parameter %q", name)}
		}
		n, err := strconv.ParseInt(raw, 10, 64)
		if err != nil {
			return 0, &core.QueryError{Code: core.ErrCodeInvalidQuery, Field: name,
				Reason: fmt.Sprintf("malformed %s %q", name, raw)}
		}
		return n, nil
	}
	floatField := func(name string) (*float64, error) {
		raw := vals.Get(name)
		if raw == "" {
			return nil, nil
		}
		f, err := strconv.ParseFloat(raw, 64)
		if err != nil {
			return nil, &core.QueryError{Code: core.ErrCodeInvalidParam, Field: name,
				Reason: fmt.Sprintf("malformed %s %q", name, raw)}
		}
		return &f, nil
	}
	q, err := intField("q")
	if err != nil {
		return cq, err
	}
	k, err := intField("k")
	if err != nil {
		return cq, err
	}
	cq.Q, cq.K = graph.V(q), int(k)
	cq.Algo = vals.Get("algo")
	cq.Structure = vals.Get("structure")
	if cq.EpsF, err = floatField("epsF"); err != nil {
		return cq, err
	}
	if cq.EpsA, err = floatField("epsA"); err != nil {
		return cq, err
	}
	if cq.Theta, err = floatField("theta"); err != nil {
		return cq, err
	}
	return cq, nil
}

// handleSubscribe serves GET /v1/subscribe. Registration and resume share
// the route: a request whose id matches a live subscription attaches to it
// (replaying per Last-Event-ID); an unknown id with a Last-Event-ID is a
// 404 unknown_subscription (the resume state is gone — re-subscribe
// fresh); anything else registers a new standing query.
func (s *Server) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.readEngine(w, r)
	if !ok {
		return
	}
	cq, err := ParseSubscribeQuery(r)
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	// Full validation (vertex range, k, structure, params) against the
	// current snapshot, and canonicalization of the algorithm name so
	// SameQuery and event payloads compare like with like.
	sn := eng.Current()
	worker := sn.Get()
	err = worker.ValidateQuery(cq)
	sn.Put(worker)
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	spec, _ := core.LookupAlgo(cq.Algo)
	cq.Algo = spec.Name
	id := sanitizeRequestID(r.URL.Query().Get("id"))
	if raw := r.URL.Query().Get("id"); raw != "" && id == "" {
		writeError(w, r, http.StatusBadRequest, CodeInvalidArgument, "id",
			fmt.Sprintf("malformed subscription id %q", raw))
		return
	}
	lastID, hasLast := subscribe.ParseLastEventID(r)
	var sub *subscribe.Sub
	if id != "" {
		if existing, found := s.subs.Get(id); found {
			if !subscribe.SameQuery(existing.Query, cq) {
				writeError(w, r, http.StatusBadRequest, CodeInvalidArgument, "id",
					fmt.Sprintf("subscription %q is bound to a different query", id))
				return
			}
			sub = existing
		}
	} else {
		id = "sub-" + s.newRequestID()
	}
	if sub == nil {
		if hasLast {
			writeError(w, r, http.StatusNotFound, CodeUnknownSubscription, "id",
				fmt.Sprintf("unknown subscription %q: resume window expired, subscribe fresh", id))
			return
		}
		sub, err = s.subs.Register(id, cq)
		switch {
		case err == nil:
		case err == subscribe.ErrLimit:
			w.Header().Set("Retry-After", "1")
			writeError(w, r, http.StatusTooManyRequests, CodeSubscriptionLimit, "",
				fmt.Sprintf("subscription limit reached (%d active)", s.subs.Hub().Active()))
			return
		default: // ErrClosed (draining) or a lost Register/Register race
			w.Header().Set("Retry-After", "1")
			writeError(w, r, http.StatusServiceUnavailable, CodeNotReady, "",
				"subscriptions unavailable: "+err.Error())
			return
		}
	}
	st, replay, err := sub.Attach(lastID, hasLast)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusServiceUnavailable, CodeNotReady, "", "server draining")
		return
	}
	defer sub.Detach(st)
	subscribe.ServeSSE(w, r, st, replay, s.cfg.subscribeHeartbeat())
}

// handleShardWatch serves GET /v1/shard/watch: the shard's publication
// firehose, consumed by routers to drive their own standing-query gates.
func (s *Server) handleShardWatch(w http.ResponseWriter, r *http.Request) {
	if _, ok := s.readEngine(w, r); !ok {
		return
	}
	lastID, hasLast := subscribe.ParseLastEventID(r)
	st, replay, err := s.feed.Attach(lastID, hasLast)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusServiceUnavailable, CodeNotReady, "", "server draining")
		return
	}
	defer s.feed.Detach(st)
	subscribe.ServeSSE(w, r, st, replay, s.cfg.subscribeHeartbeat())
}
