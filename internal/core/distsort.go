package core

import "sacsearch/internal/graph"

// sortByDist sorts verts and dists in tandem by ascending distance. It
// replaces the old sort.Sort(byDist{...}) adapter: the sort.Interface boxing
// allocated on every query and every comparison went through two interface
// calls. This is a plain introsort over the two parallel slices — insertion
// sort below a small threshold, median-of-three quicksort above it, and a
// heapsort fallback when recursion grows past 2·log₂(n) so crafted inputs
// cannot go quadratic.
func sortByDist(verts []graph.V, dists []float64) {
	n := len(dists)
	if n < 2 {
		return
	}
	depth := 0
	for m := n; m > 0; m >>= 1 {
		depth += 2
	}
	quickDist(verts, dists, 0, n-1, depth)
}

const distInsertionThreshold = 12

func quickDist(verts []graph.V, dists []float64, lo, hi, depth int) {
	for hi-lo >= distInsertionThreshold {
		if depth == 0 {
			heapDist(verts, dists, lo, hi)
			return
		}
		depth--
		p := partitionDist(verts, dists, lo, hi)
		// Recurse into the smaller side, loop on the larger: O(log n) stack.
		if p-lo < hi-p {
			quickDist(verts, dists, lo, p-1, depth)
			lo = p + 1
		} else {
			quickDist(verts, dists, p+1, hi, depth)
			hi = p - 1
		}
	}
	insertionDist(verts, dists, lo, hi)
}

func insertionDist(verts []graph.V, dists []float64, lo, hi int) {
	for i := lo + 1; i <= hi; i++ {
		d, v := dists[i], verts[i]
		j := i - 1
		for j >= lo && dists[j] > d {
			dists[j+1], verts[j+1] = dists[j], verts[j]
			j--
		}
		dists[j+1], verts[j+1] = d, v
	}
}

// partitionDist picks a median-of-three pivot, moves it to hi, and does a
// standard Lomuto partition.
func partitionDist(verts []graph.V, dists []float64, lo, hi int) int {
	mid := int(uint(lo+hi) >> 1)
	if dists[mid] < dists[lo] {
		swapDist(verts, dists, mid, lo)
	}
	if dists[hi] < dists[lo] {
		swapDist(verts, dists, hi, lo)
	}
	if dists[hi] < dists[mid] {
		swapDist(verts, dists, hi, mid)
	}
	swapDist(verts, dists, mid, hi-1)
	pivot := dists[hi-1]
	i := lo
	for j := lo; j < hi-1; j++ {
		if dists[j] < pivot {
			swapDist(verts, dists, i, j)
			i++
		}
	}
	swapDist(verts, dists, i, hi-1)
	return i
}

func heapDist(verts []graph.V, dists []float64, lo, hi int) {
	n := hi - lo + 1
	for root := n/2 - 1; root >= 0; root-- {
		siftDist(verts, dists, lo, root, n)
	}
	for end := n - 1; end > 0; end-- {
		swapDist(verts, dists, lo, lo+end)
		siftDist(verts, dists, lo, 0, end)
	}
}

func siftDist(verts []graph.V, dists []float64, lo, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && dists[lo+child] < dists[lo+child+1] {
			child++
		}
		if dists[lo+root] >= dists[lo+child] {
			return
		}
		swapDist(verts, dists, lo+root, lo+child)
		root = child
	}
}

func swapDist(verts []graph.V, dists []float64, i, j int) {
	dists[i], dists[j] = dists[j], dists[i]
	verts[i], verts[j] = verts[j], verts[i]
}
