// Package server implements the system prototype the paper's Section 6
// plans ("we will also develop a system prototype"): an HTTP JSON API over
// the SAC search library, the shape a geo-social backend (event
// recommendation, social marketing) would embed.
//
// Endpoints:
//
//	GET  /api/health            service and dataset summary
//	GET  /api/algorithms        available algorithms and their parameters
//	GET  /api/vertex/{id}       one vertex: location, degree, core number
//	POST /api/query             one SAC query
//	POST /api/batch             many SAC queries, answered in parallel
//	POST /api/checkin           update one vertex's location (dynamic graphs)
//	POST /api/edge              insert or delete one friendship edge
//
// Concurrency model: queries run on core.Pool workers without coordination —
// each pooled Searcher keeps its scratch space and warmed candidate cache
// across requests, and batch requests fan out over the same pool. Mutations
// are guarded by a RWMutex: queries hold the read lock; check-ins and edge
// updates the write lock. The graph's location epoch invalidates the
// workers' cached distance orderings, its topology epoch invalidates their
// cached community memberships, and edge updates incrementally repair the
// shared core decomposition (kcore.Maintainer via the base searcher) — so
// workers never serve a stale community after churn. This extends the
// paper's dynamic setting ("a user's location often changes frequently") to
// friendship churn, which real geo-social backends see as well.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"strconv"
	"sync"

	"sacsearch/internal/batch"
	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// Server serves SAC queries over one spatial graph.
type Server struct {
	name string
	g    *graph.Graph
	base *core.Searcher

	mu   sync.RWMutex // guards vertex locations (check-ins)
	pool *core.Pool   // searcher workers for concurrent queries and batches

	mux *http.ServeMux
}

// New creates a server over g. name labels the dataset in /api/health.
func New(name string, g *graph.Graph) *Server {
	base := core.NewSearcher(g)
	s := &Server{
		name: name,
		g:    g,
		base: base,
		pool: core.NewPool(base),
		mux:  http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /api/health", s.handleHealth)
	s.mux.HandleFunc("GET /api/algorithms", s.handleAlgorithms)
	s.mux.HandleFunc("GET /api/vertex/{id}", s.handleVertex)
	s.mux.HandleFunc("POST /api/query", s.handleQuery)
	s.mux.HandleFunc("POST /api/batch", s.handleBatch)
	s.mux.HandleFunc("POST /api/checkin", s.handleCheckin)
	s.mux.HandleFunc("POST /api/edge", s.handleEdge)
	return s
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s.mux }

// ServeHTTP implements http.Handler directly.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// --- wire types -----------------------------------------------------------

// CircleJSON is a JSON-friendly circle.
type CircleJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	R float64 `json:"r"`
}

// StatsJSON carries the per-query work counters.
type StatsJSON struct {
	CandidateSize     int    `json:"candidateSize"`
	FeasibilityChecks int    `json:"feasibilityChecks"`
	BinaryIters       int    `json:"binaryIters"`
	ElapsedMicros     int64  `json:"elapsedMicros"`
	Algorithm         string `json:"algorithm"`
}

// QueryRequest is one SAC query. The epsilon fields are pointers so the wire
// distinguishes "absent → server default" from an explicit zero: AppFast(0)
// is a legitimate request (it degenerates to the AppInc answer) that a plain
// float64 field could never express.
type QueryRequest struct {
	Q    graph.V  `json:"q"`
	K    int      `json:"k"`
	Algo string   `json:"algo"`           // appfast | appinc | appacc | exact+ | exact | theta
	EpsF *float64 `json:"epsF,omitempty"` // AppFast (default 0.5)
	EpsA *float64 `json:"epsA,omitempty"` // AppAcc / Exact+ (defaults 0.5 / 1e-3)
	// Theta is θ-SAC's radius (required when algo = "theta").
	Theta float64 `json:"theta,omitempty"`
}

// QueryResponse is one SAC answer.
type QueryResponse struct {
	Q       graph.V    `json:"q"`
	K       int        `json:"k"`
	Members []graph.V  `json:"members"`
	MCC     CircleJSON `json:"mcc"`
	Delta   float64    `json:"delta"`
	Stats   StatsJSON  `json:"stats"`
}

// BatchRequest is a set of queries answered together. Epsilons are pointers
// for the same absent-versus-zero reason as QueryRequest.
type BatchRequest struct {
	Queries []struct {
		Q graph.V `json:"q"`
		K int     `json:"k"`
	} `json:"queries"`
	Algo    string   `json:"algo,omitempty"`
	EpsF    *float64 `json:"epsF,omitempty"`
	EpsA    *float64 `json:"epsA,omitempty"`
	Workers int      `json:"workers,omitempty"`
}

// BatchResponse carries per-query answers; failed queries have Error set.
type BatchResponse struct {
	Items []BatchItemJSON `json:"items"`
}

// BatchItemJSON is one batch answer.
type BatchItemJSON struct {
	Q       graph.V    `json:"q"`
	K       int        `json:"k"`
	Members []graph.V  `json:"members,omitempty"`
	MCC     CircleJSON `json:"mcc"`
	Error   string     `json:"error,omitempty"`
}

// CheckinRequest moves one vertex.
type CheckinRequest struct {
	V graph.V `json:"v"`
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// EdgeRequest inserts or deletes one undirected friendship edge.
type EdgeRequest struct {
	U  graph.V `json:"u"`
	V  graph.V `json:"v"`
	Op string  `json:"op"` // insert | delete
}

// EdgeResponse reports the outcome of an edge update. Changed is false when
// the request was a no-op (inserting a present edge, deleting an absent
// one); Edges is the undirected edge count afterwards.
type EdgeResponse struct {
	OK      bool `json:"ok"`
	Changed bool `json:"changed"`
	Edges   int  `json:"edges"`
}

// errorJSON is the error envelope.
type errorJSON struct {
	Error string `json:"error"`
}

// --- handlers ---------------------------------------------------------------

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	edges := s.g.NumEdges()
	topo := s.g.TopoEpoch()
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    "ok",
		"dataset":   s.name,
		"vertices":  s.g.NumVertices(),
		"edges":     edges,
		"topoEpoch": topo,
	})
}

func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, []map[string]any{
		{"name": "appfast", "ratio": "2+epsF", "params": []string{"epsF"}},
		{"name": "appinc", "ratio": "2", "params": []string{}},
		{"name": "appacc", "ratio": "1+epsA", "params": []string{"epsA"}},
		{"name": "exact+", "ratio": "1", "params": []string{"epsA"}},
		{"name": "exact", "ratio": "1", "params": []string{}},
		{"name": "theta", "ratio": "-", "params": []string{"theta"}},
	})
}

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil || id < 0 || id >= s.g.NumVertices() {
		writeJSON(w, http.StatusNotFound, errorJSON{fmt.Sprintf("unknown vertex %q", r.PathValue("id"))})
		return
	}
	v := graph.V(id)
	s.mu.RLock()
	loc := s.g.Loc(v)
	degree := s.g.Degree(v)
	coreNum := s.base.CoreNumber(v)
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     v,
		"x":      loc.X,
		"y":      loc.Y,
		"degree": degree,
		"core":   coreNum,
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{"invalid JSON: " + err.Error()})
		return
	}
	res, err := s.runQuery(req)
	if err != nil {
		status := http.StatusUnprocessableEntity
		if errors.Is(err, core.ErrNoCommunity) {
			status = http.StatusNotFound
		}
		writeJSON(w, status, errorJSON{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, toQueryResponse(req.Algo, res))
}

// epsOrDefault dereferences an optional wire epsilon. An explicit value is
// passed through verbatim — zero included — so clients can request
// AppFast(0); only an absent field falls back to the server default.
func epsOrDefault(p *float64, def float64) (float64, error) {
	if p == nil {
		return def, nil
	}
	if math.IsNaN(*p) || math.IsInf(*p, 0) {
		return 0, fmt.Errorf("server: epsilon %v is not finite", *p)
	}
	return *p, nil
}

// runQuery dispatches one request on a pooled searcher under the read lock.
func (s *Server) runQuery(req QueryRequest) (*core.Result, error) {
	searcher := s.pool.Get()
	defer s.pool.Put(searcher)
	s.mu.RLock()
	defer s.mu.RUnlock()
	switch req.Algo {
	case "", "appfast":
		epsF, err := epsOrDefault(req.EpsF, 0.5)
		if err != nil {
			return nil, err
		}
		return searcher.AppFast(req.Q, req.K, epsF)
	case "appinc":
		return searcher.AppInc(req.Q, req.K)
	case "appacc":
		epsA, err := epsOrDefault(req.EpsA, 0.5)
		if err != nil {
			return nil, err
		}
		return searcher.AppAcc(req.Q, req.K, epsA)
	case "exact+":
		epsA, err := epsOrDefault(req.EpsA, 1e-3)
		if err != nil {
			return nil, err
		}
		return searcher.ExactPlus(req.Q, req.K, epsA)
	case "exact":
		return searcher.Exact(req.Q, req.K)
	case "theta":
		if !(req.Theta > 0) || math.IsInf(req.Theta, 0) {
			return nil, fmt.Errorf("server: algo \"theta\" requires finite theta > 0")
		}
		return searcher.ThetaSAC(req.Q, req.K, req.Theta)
	default:
		return nil, fmt.Errorf("server: unknown algorithm %q", req.Algo)
	}
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{"invalid JSON: " + err.Error()})
		return
	}
	if len(req.Queries) == 0 {
		writeJSON(w, http.StatusBadRequest, errorJSON{"empty batch"})
		return
	}
	opt := batch.Options{Workers: req.Workers}
	if req.EpsF != nil {
		epsF, err := epsOrDefault(req.EpsF, 0)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
			return
		}
		// EpsFSet marks the value as deliberate so batch does not coerce an
		// explicit 0 (AppFast(0), the AppInc answer) back to its default.
		opt.EpsF, opt.EpsFSet = epsF, true
	}
	if req.EpsA != nil {
		epsA, err := epsOrDefault(req.EpsA, 0)
		if err == nil && (epsA <= 0 || epsA >= 1) {
			err = fmt.Errorf("server: epsA = %v must be in (0,1)", epsA)
		}
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorJSON{err.Error()})
			return
		}
		opt.EpsA = epsA
	}
	switch req.Algo {
	case "", "appfast":
		opt.Algorithm = batch.AlgoAppFast
	case "appinc":
		opt.Algorithm = batch.AlgoAppInc
	case "appacc":
		opt.Algorithm = batch.AlgoAppAcc
	case "exact+":
		opt.Algorithm = batch.AlgoExactPlus
	case "exact":
		opt.Algorithm = batch.AlgoExact
	default:
		writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("unknown algorithm %q", req.Algo)})
		return
	}
	queries := make([]batch.Query, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = batch.Query{Q: q.Q, K: q.K}
	}
	s.mu.RLock()
	items := batch.RunOn(s.pool, queries, opt)
	s.mu.RUnlock()

	resp := BatchResponse{Items: make([]BatchItemJSON, len(items))}
	for i, it := range items {
		out := BatchItemJSON{Q: it.Q, K: it.K}
		if it.Err != nil {
			out.Error = it.Err.Error()
		} else {
			out.Members = it.Result.Members
			out.MCC = CircleJSON{X: it.Result.MCC.C.X, Y: it.Result.MCC.C.Y, R: it.Result.MCC.R}
		}
		resp.Items[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleCheckin(w http.ResponseWriter, r *http.Request) {
	var req CheckinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{"invalid JSON: " + err.Error()})
		return
	}
	if req.V < 0 || int(req.V) >= s.g.NumVertices() {
		writeJSON(w, http.StatusNotFound, errorJSON{fmt.Sprintf("unknown vertex %d", req.V)})
		return
	}
	// Reject non-finite coordinates before they reach the graph: NaN poisons
	// every distance sort it touches and ±Inf breaks geom.MCC, silently, on
	// queries that may run long after this request returned 200.
	if !finite(req.X) || !finite(req.Y) {
		writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("coordinates (%v, %v) must be finite", req.X, req.Y)})
		return
	}
	s.mu.Lock()
	s.g.SetLoc(req.V, geom.Point{X: req.X, Y: req.Y})
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleEdge mutates the friendship graph. Updates run under the write lock
// and go through the base searcher, which repairs the shared core
// decomposition incrementally; pooled workers pick the change up via the
// graph's topology epoch on their next query.
func (s *Server) handleEdge(w http.ResponseWriter, r *http.Request) {
	var req EdgeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, errorJSON{"invalid JSON: " + err.Error()})
		return
	}
	for _, v := range [2]graph.V{req.U, req.V} {
		if v < 0 || int(v) >= s.g.NumVertices() {
			writeJSON(w, http.StatusNotFound, errorJSON{fmt.Sprintf("unknown vertex %d", v)})
			return
		}
	}
	if req.U == req.V {
		writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("self-loop (%d,%d) rejected", req.U, req.V)})
		return
	}
	var apply func(u, v graph.V) (bool, error)
	switch req.Op {
	case "insert":
		apply = s.base.ApplyEdgeInsert
	case "delete":
		apply = s.base.ApplyEdgeRemove
	default:
		writeJSON(w, http.StatusBadRequest, errorJSON{fmt.Sprintf("unknown op %q (want insert or delete)", req.Op)})
		return
	}
	s.mu.Lock()
	changed, err := apply(req.U, req.V)
	edges := s.g.NumEdges()
	s.mu.Unlock()
	if err != nil {
		writeJSON(w, http.StatusUnprocessableEntity, errorJSON{err.Error()})
		return
	}
	writeJSON(w, http.StatusOK, EdgeResponse{OK: true, Changed: changed, Edges: edges})
}

// finite reports whether f is neither NaN nor ±Inf.
func finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// toQueryResponse converts a core result to the wire shape.
func toQueryResponse(algo string, res *core.Result) QueryResponse {
	if algo == "" {
		algo = "appfast"
	}
	return QueryResponse{
		Q:       res.Query,
		K:       res.K,
		Members: res.Members,
		MCC:     CircleJSON{X: res.MCC.C.X, Y: res.MCC.C.Y, R: res.MCC.R},
		Delta:   res.Delta,
		Stats: StatsJSON{
			CandidateSize:     res.Stats.CandidateSize,
			FeasibilityChecks: res.Stats.FeasibilityChecks,
			BinaryIters:       res.Stats.BinaryIters,
			ElapsedMicros:     res.Stats.Elapsed.Microseconds(),
			Algorithm:         algo,
		},
	}
}

// writeJSON writes v with the given status; encoding errors are reported to
// the client only through a truncated body (the status line is already out).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
