// Command sacserver serves SAC search over HTTP — the system prototype of
// the paper's Section 6 future work.
//
// Usage:
//
//	sacserver -dataset brightkite -scale 0.05 -addr :8080
//
// Then:
//
//	curl localhost:8080/api/health
//	curl -X POST localhost:8080/api/query -d '{"q":17,"k":4,"algo":"exact+"}'
//	curl -X POST localhost:8080/api/batch -d '{"queries":[{"q":17,"k":4},{"q":23,"k":4}]}'
//	curl -X POST localhost:8080/api/checkin -d '{"v":17,"x":0.5,"y":0.5}'
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"

	"sacsearch/internal/dataset"
	"sacsearch/internal/server"
)

func main() {
	var (
		name  = flag.String("dataset", "brightkite", "dataset preset to serve")
		scale = flag.Float64("scale", 0.05, "dataset scale in (0,1]")
		addr  = flag.String("addr", ":8080", "listen address")
	)
	flag.Parse()

	ds, err := dataset.Load(*name, *scale)
	if err != nil {
		log.Fatalf("sacserver: %v", err)
	}
	srv := server.New(ds.Name, ds.Graph)
	fmt.Printf("sacserver: serving %s (%d vertices, %d edges) on %s\n",
		ds.Name, ds.Graph.NumVertices(), ds.Graph.NumEdges(), *addr)
	log.Fatal(http.ListenAndServe(*addr, srv))
}
