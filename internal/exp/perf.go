package exp

import (
	"encoding/json"
	"io"
	"runtime"
	"testing"
	"time"

	"sacsearch/internal/batch"
	"sacsearch/internal/core"
	"sacsearch/internal/dataset"
)

// Perf tracking. `sacbench -benchjson <path>` emits a machine-readable
// snapshot of the query hot path — repeated-query throughput with the
// candidate cache on/off, hot-path allocations, and batch scaling across
// worker counts — so the performance trajectory is recorded PR over PR
// (BENCH_1.json is the first point). Measurements use testing.Benchmark so
// ns/op and allocs/op match what `go test -bench` reports.

// PerfPoint is one measured configuration.
type PerfPoint struct {
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
}

// BatchScalePoint is one worker-count measurement of a fixed batch.
type BatchScalePoint struct {
	Workers    int     `json:"workers"`
	NsPerQuery float64 `json:"nsPerQuery"`
	// Speedup is sequential ns/query divided by this point's ns/query;
	// near-linear scaling approaches Workers (bounded by GOMAXPROCS).
	Speedup float64 `json:"speedup"`
}

// PerfReport is the full snapshot sacbench writes as JSON.
type PerfReport struct {
	Schema     string `json:"schema"` // "sacsearch-bench/1"
	Dataset    string `json:"dataset"`
	Scale      float64 `json:"scale"`
	Queries    int     `json:"queries"`
	K          int     `json:"k"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"numcpu"`

	// Repeated same-community query stream (AppFast 0.5), cache on vs off.
	RepeatedCached   PerfPoint `json:"repeatedCached"`
	RepeatedUncached PerfPoint `json:"repeatedUncached"`
	// CacheSpeedup = uncached ns/op ÷ cached ns/op.
	CacheSpeedup float64 `json:"cacheSpeedup"`

	// Batch execution of the workload across worker counts.
	BatchScaling []BatchScalePoint `json:"batchScaling"`

	ElapsedMillis int64 `json:"elapsedMillis"`
}

// Perf measures the report on cfg's first dataset.
func Perf(cfg Config) (*PerfReport, error) {
	start := time.Now()
	name := "brightkite"
	if len(cfg.Datasets) > 0 {
		name = cfg.Datasets[0]
	}
	ds, err := dataset.Load(name, cfg.Scale)
	if err != nil {
		return nil, err
	}
	queries := dataset.QueryWorkload(ds.Graph, cfg.MinCore, cfg.Queries, cfg.Seed)
	if len(queries) == 0 {
		return nil, errNoQueries(name)
	}
	rep := &PerfReport{
		Schema:     "sacsearch-bench/1",
		Dataset:    name,
		Scale:      cfg.Scale,
		Queries:    len(queries),
		K:          cfg.K,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	// Repeated-query stream, cached vs uncached.
	measure := func(cached bool) PerfPoint {
		s := core.NewSearcher(ds.Graph)
		s.SetCandidateCaching(cached)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.AppFast(queries[i%len(queries)], cfg.K, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
		return PerfPoint{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	rep.RepeatedCached = measure(true)
	rep.RepeatedUncached = measure(false)
	if rep.RepeatedCached.NsPerOp > 0 {
		rep.CacheSpeedup = rep.RepeatedUncached.NsPerOp / rep.RepeatedCached.NsPerOp
	}

	// Batch scaling: a widened workload (batch.RunOn deduplicates identical
	// (q, k) pairs, so the batch needs distinct query vertices to measure
	// real work) run at growing worker counts over a persistent pool.
	wide := dataset.QueryWorkload(ds.Graph, cfg.MinCore, cfg.Queries*10, cfg.Seed+1)
	if len(wide) == 0 {
		wide = queries
	}
	work := make([]batch.Query, 0, len(wide))
	for _, q := range wide {
		work = append(work, batch.Query{Q: q, K: cfg.K})
	}
	base := core.NewSearcher(ds.Graph)
	maxWorkers := runtime.GOMAXPROCS(0)
	var workerCounts []int
	for w := 1; w < maxWorkers; w *= 2 {
		workerCounts = append(workerCounts, w)
	}
	workerCounts = append(workerCounts, maxWorkers)
	var seqNs float64
	for _, w := range workerCounts {
		pool := core.NewPool(base)
		opt := batch.Options{Workers: w, Algorithm: batch.AlgoAppFast, EpsF: 0.5}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				batch.RunOn(pool, work, opt)
			}
		})
		nsPerQuery := float64(r.NsPerOp()) / float64(len(work))
		if w == 1 {
			seqNs = nsPerQuery
		}
		sp := 0.0
		if nsPerQuery > 0 {
			sp = seqNs / nsPerQuery
		}
		rep.BatchScaling = append(rep.BatchScaling, BatchScalePoint{
			Workers:    w,
			NsPerQuery: nsPerQuery,
			Speedup:    sp,
		})
	}

	rep.ElapsedMillis = time.Since(start).Milliseconds()
	return rep, nil
}

// WritePerfJSON runs Perf and writes the indented JSON report to w.
func WritePerfJSON(cfg Config, w io.Writer) error {
	rep, err := Perf(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

type errNoQueries string

func (e errNoQueries) Error() string {
	return "exp: no workload queries with the configured core bound in " + string(e)
}
