// Package router is the scatter-gather front of a sharded sacsearch
// topology. It speaks the same /v1 contract as a single sacserver — same
// routes, same wire shapes, same error envelope — so clients (including the
// typed client package) cannot tell a router from one big server, except
// through /v1/health's topology section.
//
// The graph is split by the deterministic spatial partitioner
// (internal/shard); every shard runs the stock engine stack over its
// subgraph (full global id space, edges with at least one owned endpoint,
// frozen ghost copies of foreign endpoints). The router owns the only copy
// of the shard map and dispatches:
//
//   - Queries go to the shard owning q first (/v1/shard/search). The shard
//     answers alone iff its optimistic-peel certificate proves its answer
//     equals the whole-graph one; otherwise the router gathers the global
//     candidate set across shards (/v1/shard/expand closure, or a
//     /v1/shard/range disk gather for θ-SAC), assembles the induced
//     subgraph, and runs the algorithm itself. Either way the answer's
//     members, circle and radius are exactly the single-engine ones.
//   - Check-ins go to the owner of the vertex; an edge write fans to both
//     endpoints' owners (each materializes every edge touching a vertex it
//     owns). Edge ops are idempotent, so a partial cross-shard failure is
//     healed by the client's retry.
//   - /v1/health and /v1/ready aggregate the shards': ready means every
//     shard answered /v1/shard/info with the router's own map checksum.
//
// A shard leg that fails outright (transport error, or every endpoint of
// the shard shedding 503) surfaces as a 503 shard_unavailable envelope
// naming the shard; deterministic shard verdicts (validation errors,
// no_community) are forwarded verbatim.
//
// Cross-shard reads are NOT snapshot-isolated across shards: each leg pins
// one snapshot on its shard, but concurrent writes may land between legs.
// Quiesced states — and anything a single shard certifies — are exact.
package router

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"sacsearch/client"
	"sacsearch/internal/core"
	"sacsearch/internal/graph"
	"sacsearch/internal/server"
	"sacsearch/internal/shard"
	"sacsearch/internal/telemetry"
	"sacsearch/internal/version"
)

// Config assembles a Router.
type Config struct {
	// Map is the shard-map artifact the topology was cut with.
	Map *shard.Map
	// Shards lists each shard's endpoint URLs, indexed by shard id, leader
	// first (replicas after it serve reads when the leader sheds).
	Shards [][]string
	// QueryTimeout bounds one routed request end to end (all legs plus any
	// local assembly run). Default 15s, matching the server's.
	QueryTimeout time.Duration
	// MaxBodyBytes caps every POST body. Default 1 MiB.
	MaxBodyBytes int64
	// ClientOptions apply to every per-endpoint client (test doubles,
	// retry tuning).
	ClientOptions []client.Option
	// Logger receives router-level structured logs. Default slog.Default().
	Logger *slog.Logger
	// Metrics is the registry router instruments register on. Nil disables
	// metrics entirely (all instruments no-op).
	Metrics *telemetry.Registry
	// ServeMetrics mounts GET /metrics on the router's own mux (Prometheus
	// text format) when Metrics is non-nil.
	ServeMetrics bool
	// SlowQueryThreshold logs any request slower than this at Warn with the
	// full span tree attached. 0 disables.
	SlowQueryThreshold time.Duration
	// TraceHook, when set, receives every finished root span (tests).
	TraceHook func(*telemetry.Span)
	// QueryParallelism is the intra-query parallelism budget for the local
	// assembly run of a cross-shard query (the merged-subgraph Exact /
	// ExactPlus enumeration). As on the server, the budget is divided by the
	// number of assembly runs in flight (floor 1) so a busy router degrades
	// to serial per query instead of oversubscribing cores. 0 disables.
	QueryParallelism int
	// MaxSubscriptions caps concurrently live standing queries held by this
	// router (GET /v1/subscribe). Default 1024.
	MaxSubscriptions int
	// SubscribeHeartbeat is the SSE keep-alive comment interval on standing
	// query streams. Default 15s.
	SubscribeHeartbeat time.Duration
}

func (c Config) queryTimeout() time.Duration {
	if c.QueryTimeout > 0 {
		return c.QueryTimeout
	}
	return 15 * time.Second
}

func (c Config) subscribeHeartbeat() time.Duration {
	if c.SubscribeHeartbeat > 0 {
		return c.SubscribeHeartbeat
	}
	return 15 * time.Second
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 1 << 20
}

func (c Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.Default()
}

// Router is the /v1 front of a sharded topology. It is safe for concurrent
// use and holds no graph state beyond the shard map — all data lives on the
// shards.
type Router struct {
	cfg      Config
	m        *shard.Map
	checksum uint32
	sets     []*client.Set // one endpoint group per shard
	mux      *http.ServeMux
	nextID   atomic.Uint64
	// edges tracks the global undirected edge count as seen through this
	// router: the partition-time count plus every Changed mutation routed
	// here. Writes that bypass the router are not reflected.
	edges atomic.Int64
	// inflight counts local assembly runs in progress; it scales the
	// per-query parallelism budget down under concurrent load.
	inflight atomic.Int64
	start    time.Time

	httpMet telemetry.HTTPMetrics
	// legsTotal counts outbound shard calls by kind (search, expand, range,
	// vertex, checkin, edge, info, health).
	legsTotal *telemetry.CounterVec
	// queryPath counts how each routed query was answered: certified (one
	// shard proved its local answer global), assembled (cross-shard k-core
	// closure), or theta (disk gather).
	queryPath *telemetry.CounterVec
	// expandRounds counts frontier-expansion rounds across assembled queries.
	expandRounds *telemetry.Counter
	// subs drives router-held standing queries off the shards' publication
	// feeds (internal/router/subscribe.go).
	subs *routerSubs
}

// New builds a Router over the shard endpoint groups. It validates shapes
// only — shard reachability and map agreement are checked by /v1/ready (and
// CheckTopology), not at construction, so a router can boot before its
// shards do.
func New(cfg Config) (*Router, error) {
	if cfg.Map == nil {
		return nil, errors.New("router: Config.Map is required")
	}
	if len(cfg.Shards) != cfg.Map.Shards {
		return nil, fmt.Errorf("router: map has %d shards, config lists %d endpoint groups",
			cfg.Map.Shards, len(cfg.Shards))
	}
	rt := &Router{
		cfg:      cfg,
		m:        cfg.Map,
		checksum: cfg.Map.Checksum(),
		sets:     make([]*client.Set, len(cfg.Shards)),
		mux:      http.NewServeMux(),
		start:    time.Now(),
	}
	rt.httpMet = telemetry.NewHTTPMetrics(cfg.Metrics)
	rt.legsTotal = cfg.Metrics.CounterVec("sac_router_legs_total",
		"Outbound shard calls issued by the router, by kind.", "kind")
	rt.queryPath = cfg.Metrics.CounterVec("sac_router_query_path_total",
		"Routed queries by answer path: certified, assembled or theta.", "path")
	rt.expandRounds = cfg.Metrics.Counter("sac_router_expand_rounds_total",
		"Frontier-expansion rounds run across all assembled queries.")
	rt.edges.Store(int64(cfg.Map.Edges))
	for i, urls := range cfg.Shards {
		set, err := client.NewSet(urls, cfg.ClientOptions...)
		if err != nil {
			return nil, fmt.Errorf("router: shard %d: %w", i, err)
		}
		rt.sets[i] = set
	}
	rt.mux.HandleFunc("GET /v1/health", rt.handleHealth)
	rt.mux.HandleFunc("GET /v1/ready", rt.handleReady)
	rt.mux.HandleFunc("GET /v1/algorithms", rt.handleAlgorithms)
	rt.mux.HandleFunc("GET /v1/vertex/{id}", rt.handleVertex)
	rt.mux.HandleFunc("POST /v1/query", rt.handleQuery)
	rt.mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	rt.mux.HandleFunc("POST /v1/checkin", rt.handleCheckin)
	rt.mux.HandleFunc("POST /v1/edge", rt.handleEdge)
	rt.mux.HandleFunc("GET /v1/subscribe", rt.handleSubscribe)
	rt.subs = newRouterSubs(rt)
	if cfg.Metrics != nil && cfg.ServeMetrics {
		rt.mux.Handle("GET /metrics", cfg.Metrics.Handler())
	}
	return rt, nil
}

// Handler returns the router as an http.Handler.
func (rt *Router) Handler() http.Handler { return rt }

// ServeHTTP stamps the request id, roots the request's trace span, records
// the sac_http_* instruments and recovers panics into 500 envelopes — the
// same discipline as the server's, so envelopes (and dashboards) stay
// uniform across the topology.
func (rt *Router) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
	if id == "" {
		id = rt.newRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	route := telemetry.RouteLabel(r.URL.Path)
	ctx := context.WithValue(r.Context(), requestIDKey{}, id)
	ctx, span := telemetry.StartSpan(ctx, r.Method+" "+route)
	span.Remote = sanitizeRequestID(r.Header.Get(telemetry.TraceHeader))
	w.Header().Set(telemetry.TraceHeader, span.ID)
	r = r.WithContext(ctx)
	rw := &trackingWriter{ResponseWriter: w}
	start := time.Now()
	rt.httpMet.Inflight.Add(1)
	defer func() {
		p := recover()
		if p != nil && p != http.ErrAbortHandler {
			rt.cfg.logger().Error("panic serving request",
				"method", r.Method, "path", r.URL.Path, "requestId", id,
				"spanId", span.ID, "panic", p, "stack", string(debug.Stack()))
			if !rw.wrote {
				writeError(rw, r, http.StatusInternalServerError, server.CodeInternal, "",
					"internal server error (request "+id+")")
			}
		}
		span.End()
		elapsed := time.Since(start)
		rt.httpMet.Inflight.Add(-1)
		rt.httpMet.Requests.With(route, r.Method, strconv.Itoa(rw.status())).Inc()
		rt.httpMet.Duration.With(route).Observe(elapsed.Seconds())
		if t := rt.cfg.SlowQueryThreshold; t > 0 && elapsed >= t {
			rt.cfg.logger().Warn("slow request",
				"method", r.Method, "route", route, "requestId", id, "spanId", span.ID,
				"elapsed", elapsed, "status", rw.status(), "trace", "\n"+span.Tree())
		}
		if rt.cfg.TraceHook != nil {
			rt.cfg.TraceHook(span)
		}
	}()
	rt.mux.ServeHTTP(rw, r)
}

type trackingWriter struct {
	http.ResponseWriter
	wrote bool
	code  int
}

func (w *trackingWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
	}
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *trackingWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer so http.ResponseController can
// reach Flusher and per-request write deadlines (SSE streams need both).
func (w *trackingWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// status is the response code sent to the client (200 when the handler
// never called WriteHeader explicitly).
func (w *trackingWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

type requestIDKey struct{}

func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return ""
		}
	}
	return id
}

func (rt *Router) newRequestID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("rtr-%012d", rt.nextID.Add(1))
	}
	return "rtr-" + hex.EncodeToString(b[:])
}

// --- envelope helpers ------------------------------------------------------

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, r *http.Request, status int, code, field, msg string) {
	writeJSON(w, status, server.ErrorJSON{Error: msg, Code: code, Field: field, RequestID: requestID(r)})
}

// writeQueryError mirrors the server's mapping of core errors onto
// envelopes, so a router-local assembly run and a single server produce the
// same response for the same failure.
func writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	var qe *core.QueryError
	switch {
	case errors.As(err, &qe):
		writeError(w, r, http.StatusBadRequest, qe.Code, qe.Field, err.Error())
	case errors.Is(err, core.ErrNoCommunity):
		writeError(w, r, http.StatusNotFound, server.CodeNoCommunity, "", err.Error())
	case errors.Is(err, core.ErrCanceled):
		writeError(w, r, http.StatusServiceUnavailable, server.CodeDeadlineExceeded, "", err.Error())
	default:
		writeError(w, r, http.StatusUnprocessableEntity, server.CodeQueryFailed, "", err.Error())
	}
}

// writeLegError reports a failed shard leg. A deterministic shard verdict —
// any structured non-503/429 response, or a forwarded deadline — passes
// through verbatim (new request id aside); everything else means the shard
// as a whole was unreachable or shedding, which the router owns up to with
// a 503 shard_unavailable naming the shard so operators know where to look.
func (rt *Router) writeLegError(w http.ResponseWriter, r *http.Request, shardID int, err error) {
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		forward := apiErr.Status != http.StatusServiceUnavailable &&
			apiErr.Status != http.StatusTooManyRequests
		if apiErr.Code == server.CodeDeadlineExceeded {
			forward = true
		}
		if forward {
			writeError(w, r, apiErr.Status, apiErr.Code, apiErr.Field, apiErr.Message)
			return
		}
	}
	w.Header().Set("Retry-After", "1")
	writeError(w, r, http.StatusServiceUnavailable, server.CodeShardUnavailable, "",
		fmt.Sprintf("shard %d unavailable: %v", shardID, err))
}

// requestCtx bounds one routed request and arranges for every shard leg
// under it to carry the caller-visible request id, so a single id follows
// the request through router and shard logs alike.
func (rt *Router) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	ctx := r.Context()
	if id := requestID(r); id != "" {
		ctx = client.WithRequestID(ctx, id)
	}
	return context.WithTimeout(ctx, rt.cfg.queryTimeout())
}

// leg opens a child span for one outbound shard call, counts it in
// sac_router_legs_total, and threads the span id onto the wire so the
// shard's trace parents under this one. Callers must End the span.
func (rt *Router) leg(ctx context.Context, kind string, shardID int) (context.Context, *telemetry.Span) {
	rt.legsTotal.With(kind).Inc()
	ctx, span := telemetry.StartSpan(ctx, "shard-"+kind)
	span.SetAttr("shard", shardID)
	return client.WithTraceSpan(ctx, span.ID), span
}

func (rt *Router) decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, rt.cfg.maxBodyBytes())
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, r, http.StatusRequestEntityTooLarge, server.CodeBodyTooLarge, "",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, r, http.StatusBadRequest, server.CodeInvalidJSON, "", "invalid JSON: "+err.Error())
		return false
	}
	return true
}

// --- topology endpoints ----------------------------------------------------

// shardProbe is one shard's /v1/shard/info outcome during a fan-out.
type shardProbe struct {
	info *client.ShardInfo
	err  error
}

// probeShards fans /v1/shard/info to every shard concurrently.
func (rt *Router) probeShards(ctx context.Context) []shardProbe {
	rt.legsTotal.With("info").Add(uint64(len(rt.sets)))
	probes := make([]shardProbe, len(rt.sets))
	var wg sync.WaitGroup
	for i := range rt.sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			probes[i].info, probes[i].err = rt.sets[i].ShardInfo(ctx)
		}(i)
	}
	wg.Wait()
	return probes
}

// probeProblem classifies one probe against the router's own map: "" means
// the shard is serving the right map.
func (rt *Router) probeProblem(id int, p shardProbe) string {
	switch {
	case p.err != nil:
		return fmt.Sprintf("unreachable: %v", p.err)
	case p.info.ShardID != id:
		return fmt.Sprintf("endpoint serves shard %d, expected %d", p.info.ShardID, id)
	case p.info.Shards != rt.m.Shards:
		return fmt.Sprintf("shard map has %d shards, router's has %d", p.info.Shards, rt.m.Shards)
	case p.info.MapChecksum != rt.checksum:
		return fmt.Sprintf("shard map checksum %08x differs from router's %08x",
			p.info.MapChecksum, rt.checksum)
	}
	return ""
}

// CheckTopology verifies every shard is reachable and serving the router's
// shard map — the startup sanity check cmd/sacrouter runs before listening.
func (rt *Router) CheckTopology(ctx context.Context) error {
	for id, p := range rt.probeShards(ctx) {
		if problem := rt.probeProblem(id, p); problem != "" {
			return fmt.Errorf("router: shard %d: %s", id, problem)
		}
	}
	return nil
}

// handleHealth aggregates the shards' health: overall status is "ok" only
// when every shard answered and none is degraded or serving a different
// map. Always 200 — readiness gates traffic, health describes it.
func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := rt.requestCtx(r)
	defer cancel()
	type shardHealth struct {
		Shard  int            `json:"shard"`
		Status string         `json:"status"`
		Error  string         `json:"error,omitempty"`
		Health *client.Health `json:"health,omitempty"`
	}
	out := make([]shardHealth, len(rt.sets))
	rt.legsTotal.With("health").Add(uint64(len(rt.sets)))
	var wg sync.WaitGroup
	for i := range rt.sets {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			h, err := rt.sets[i].Health(ctx)
			sh := shardHealth{Shard: i}
			if err != nil {
				sh.Status = "unreachable"
				sh.Error = err.Error()
			} else {
				sh.Status = h.Status
				sh.Health = h
			}
			out[i] = sh
		}(i)
	}
	wg.Wait()
	status := "ok"
	for _, sh := range out {
		if sh.Status != "ok" && sh.Status != "readonly" {
			status = "degraded"
			break
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":           status,
		"role":             "router",
		"apiVersions":      []string{"v1"},
		"shards":           rt.m.Shards,
		"vertices":         rt.m.N,
		"edges":            rt.edges.Load(),
		"shardMapChecksum": rt.checksum,
		"shardHealth":      out,
		"uptimeSeconds":    int64(time.Since(rt.start).Seconds()),
		"build":            version.Get(),
	})
}

// handleReady is 200 only when every shard answers /v1/shard/info with the
// router's own map checksum — the gate CI and orchestration wait on before
// sending traffic at a fresh topology.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	ctx, cancel := rt.requestCtx(r)
	defer cancel()
	for id, p := range rt.probeShards(ctx) {
		if problem := rt.probeProblem(id, p); problem != "" {
			w.Header().Set("Retry-After", "1")
			writeError(w, r, http.StatusServiceUnavailable, server.CodeNotReady, "",
				fmt.Sprintf("shard %d not ready: %s", id, problem))
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "role": "router"})
}

// handleAlgorithms serves the registry locally: the router runs the same
// core package as the shards, so the schema cannot drift from what routed
// queries accept.
func (rt *Router) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, core.Algorithms())
}

// handleVertex proxies to the owner. The degree is global (an owner
// materializes every edge of its vertices); the core number is the shard-
// local one, a lower bound on the global core number — documented in the
// README's sharding section.
func (rt *Router) handleVertex(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "id",
			fmt.Sprintf("malformed vertex id %q", r.PathValue("id")))
		return
	}
	if id < 0 || id >= rt.m.N {
		writeError(w, r, http.StatusNotFound, server.CodeUnknownVertex, "id",
			fmt.Sprintf("unknown vertex %d", id))
		return
	}
	ctx, cancel := rt.requestCtx(r)
	defer cancel()
	owner := rt.m.OwnerOf(graph.V(id))
	lctx, span := rt.leg(ctx, "vertex", owner)
	v, err := rt.sets[owner].Vertex(lctx, int64(id))
	span.End()
	if err != nil {
		rt.writeLegError(w, r, owner, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"id": v.ID, "x": v.X, "y": v.Y, "degree": v.Degree, "core": v.Core,
	})
}

// --- writes ----------------------------------------------------------------

// handleCheckin routes the move to the one shard owning v. Ghost copies on
// other shards keep their partition-time location, which no certified or
// assembled answer ever reads.
func (rt *Router) handleCheckin(w http.ResponseWriter, r *http.Request) {
	var req server.CheckinRequest
	if !rt.decodeJSON(w, r, &req) {
		return
	}
	if req.V < 0 || int(req.V) >= rt.m.N {
		writeError(w, r, http.StatusNotFound, server.CodeUnknownVertex, "v",
			fmt.Sprintf("unknown vertex %d", req.V))
		return
	}
	ctx, cancel := rt.requestCtx(r)
	defer cancel()
	owner := rt.m.OwnerOf(req.V)
	lctx, span := rt.leg(ctx, "checkin", owner)
	err := rt.sets[owner].CheckIn(lctx, int64(req.V), req.X, req.Y)
	span.End()
	if err != nil {
		rt.writeLegError(w, r, owner, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleEdge fans the mutation to both endpoints' owners (one leg when they
// coincide), preserving the invariant that every edge is materialized on
// every shard owning an endpoint. The legs run concurrently; a partial
// cross-shard failure returns 503 shard_unavailable and leaves the edge
// half-applied until the client's retry converges it — edge ops are
// idempotent, so the retry is always safe.
func (rt *Router) handleEdge(w http.ResponseWriter, r *http.Request) {
	var req server.EdgeRequest
	if !rt.decodeJSON(w, r, &req) {
		return
	}
	for _, v := range [2]graph.V{req.U, req.V} {
		if v < 0 || int(v) >= rt.m.N {
			writeError(w, r, http.StatusNotFound, server.CodeUnknownVertex, "",
				fmt.Sprintf("unknown vertex %d", v))
			return
		}
	}
	if req.U == req.V {
		writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "",
			fmt.Sprintf("self-loop (%d,%d) rejected", req.U, req.V))
		return
	}
	var insert bool
	switch req.Op {
	case "insert":
		insert = true
	case "delete":
		insert = false
	default:
		writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "op",
			fmt.Sprintf("unknown op %q (want insert or delete)", req.Op))
		return
	}
	ctx, cancel := rt.requestCtx(r)
	defer cancel()
	owners := []int{rt.m.OwnerOf(req.U)}
	if o2 := rt.m.OwnerOf(req.V); o2 != owners[0] {
		owners = append(owners, o2)
	}
	results := make([]*client.EdgeResult, len(owners))
	errs := make([]error, len(owners))
	var wg sync.WaitGroup
	for i, o := range owners {
		wg.Add(1)
		go func(i, o int) {
			defer wg.Done()
			lctx, span := rt.leg(ctx, "edge", o)
			defer span.End()
			results[i], errs[i] = rt.sets[o].Edge(lctx, int64(req.U), int64(req.V), insert)
		}(i, o)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			rt.writeLegError(w, r, owners[i], err)
			return
		}
	}
	// u's owner is the authority on whether the graph changed; both owners
	// apply the same idempotent op, so on a quiesced topology they agree.
	changed := results[0].Changed
	if changed {
		if insert {
			rt.edges.Add(1)
		} else {
			rt.edges.Add(-1)
		}
	}
	writeJSON(w, http.StatusOK, server.EdgeResponse{
		OK: true, Changed: changed, Edges: int(rt.edges.Load()),
	})
}
