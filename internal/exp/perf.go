package exp

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sacsearch/internal/batch"
	"sacsearch/internal/core"
	"sacsearch/internal/dataset"
	"sacsearch/internal/gen"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/kcore"
	"sacsearch/internal/snapshot"
	"sacsearch/internal/store"
	"sacsearch/internal/subscribe"
	"sacsearch/internal/telemetry"
	"sacsearch/internal/wal"
)

// Perf tracking. `sacbench -benchjson <path>` emits a machine-readable
// snapshot of the query hot path — repeated-query throughput with the
// candidate cache on/off, hot-path allocations, batch scaling across worker
// counts, edge-churn throughput (incremental core maintenance vs
// re-decomposing), concurrent serving throughput (lock-coupled RWMutex
// baseline vs snapshot-isolated readers under the same write churn, plus
// mid-Exact cancellation latency), durability costs (WAL group-commit
// append throughput per fsync policy; crash-recovery time against WAL
// length with and without checkpoint truncation), sharding costs
// (direct vs routed single-shard vs routed cross-shard query latency
// through a 2-shard scatter-gather topology), intra-query parallelism
// (serial vs parallel Exact/Exact+ circle enumeration across worker
// counts, plus the shared-oracle batch mode on/off), and telemetry
// overhead (the instrumented per-query hot path against the same path on
// a nil registry), and standing-query costs (mutation-to-delta push
// latency and the invalidation gate's hit rate under churn) — so the
// performance
// trajectory is recorded PR over PR (BENCH_1.json, BENCH_2.json with the
// churn metric, BENCH_3.json with the serving metrics, BENCH_4.json with
// the durability metrics, BENCH_7.json with the sharding metrics,
// BENCH_8.json with the parallelism metrics, BENCH_9.json with the
// telemetry overhead, BENCH_10.json with the standing-query metrics).
// Measurements use testing.Benchmark so ns/op and allocs/op match what
// `go test -bench` reports.

// PerfPoint is one measured configuration.
type PerfPoint struct {
	NsPerOp     float64 `json:"nsPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
}

// BatchScalePoint is one worker-count measurement of a fixed batch.
type BatchScalePoint struct {
	Workers    int     `json:"workers"`
	NsPerQuery float64 `json:"nsPerQuery"`
	// Speedup is sequential ns/query divided by this point's ns/query;
	// near-linear scaling approaches Workers (bounded by GOMAXPROCS).
	Speedup float64 `json:"speedup"`
	// GoMaxProcs and NumCPU record the conditions the row was measured
	// under, so a flat curve is attributable (1 core, or an artificially
	// lowered GOMAXPROCS) instead of looking like a scaling regression.
	GoMaxProcs int `json:"gomaxprocs"`
	NumCPU     int `json:"numcpu"`
}

// PerfReport is the full snapshot sacbench writes as JSON.
type PerfReport struct {
	Schema     string  `json:"schema"` // "sacsearch-bench/10"
	Dataset    string  `json:"dataset"`
	Scale      float64 `json:"scale"`
	Queries    int     `json:"queries"`
	K          int     `json:"k"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"numcpu"`

	// Repeated same-community query stream (AppFast 0.5), cache on vs off.
	RepeatedCached   PerfPoint `json:"repeatedCached"`
	RepeatedUncached PerfPoint `json:"repeatedUncached"`
	// CacheSpeedup = uncached ns/op ÷ cached ns/op.
	CacheSpeedup float64 `json:"cacheSpeedup"`

	// Batch execution of the workload across worker counts.
	BatchScaling []BatchScalePoint `json:"batchScaling"`

	// Edge churn: one friendship insert-or-delete applied with incremental
	// core maintenance versus a full re-decomposition per update.
	EdgeChurn EdgeChurnPerf `json:"edgeChurn"`

	// Serving: concurrent read throughput under write churn, lock-coupled
	// versus snapshot-isolated, and cancellation latency (BENCH_3).
	Serving ServingPerf `json:"serving"`

	// Durability: WAL append throughput per fsync policy and recovery time
	// against WAL length, with and without checkpoint truncation (BENCH_4).
	Durability DurabilityPerf `json:"durability"`

	// Sharding: direct vs routed single-shard vs routed cross-shard query
	// latency through a real 2-shard HTTP topology (BENCH_7).
	Sharding ShardingPerf `json:"sharding"`

	// Parallel: intra-query parallelism — serial vs parallel Exact/Exact+
	// circle enumeration across worker counts, and the shared-oracle batch
	// mode on/off (BENCH_8).
	Parallel ParallelPerf `json:"parallel"`

	// Telemetry: the instrumented per-query hot path (span + counters +
	// histograms live) against the same code on a nil registry (BENCH_9).
	Telemetry TelemetryPerf `json:"telemetry"`

	// Subscribe: standing-query delta push latency and the invalidation
	// gate's hit rate under churn (BENCH_10).
	Subscribe SubscribePerf `json:"subscribe"`

	ElapsedMillis int64 `json:"elapsedMillis"`
}

// TelemetryPerf measures what the metrics layer costs per query: the same
// serve-shaped loop (span start/end, in-flight gauge, per-algo duration
// histogram and work counters, request counter) run once against a nil
// registry — whose instruments are documented no-ops — and once against a
// live one. OverheadPct is the acceptance figure; the CI bar is < 5%.
type TelemetryPerf struct {
	BaseNsPerOp         float64 `json:"baseNsPerOp"`
	InstrumentedNsPerOp float64 `json:"instrumentedNsPerOp"`
	OverheadPct         float64 `json:"overheadPct"`
}

// ParallelScalePoint is one worker-count measurement of a single query's
// circle enumeration.
type ParallelScalePoint struct {
	Workers int     `json:"workers"`
	NsPerOp float64 `json:"nsPerOp"`
	// Speedup is the serial ns/op divided by this point's ns/op. On a
	// single-core box every point honestly reads ~1.0 — consult the
	// per-row GoMaxProcs/NumCPU before calling that a regression.
	Speedup    float64 `json:"speedup"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"numcpu"`
}

// ParallelAlgoPerf is one exact algorithm's serial-vs-parallel scaling
// curve on a fixed workload query.
type ParallelAlgoPerf struct {
	Algo string `json:"algo"`
	Q    int64  `json:"q"`
	K    int    `json:"k"`
	// CandidateSize is the measured query's candidate k-ĉore size — the
	// width the enumeration strips partition.
	CandidateSize int     `json:"candidateSize"`
	SerialNsPerOp float64 `json:"serialNsPerOp"`
	// Points measures the same query with SetParallelism(workers) for each
	// ladder entry ≥ 2; the parallel results are byte-identical to the
	// serial ones by construction (the differential tests pin this).
	Points     []ParallelScalePoint `json:"points"`
	MaxSpeedup float64              `json:"maxSpeedup"`
}

// SharedOraclePerf compares one deduplicated batch run with and without the
// shared candidate-plan table.
type SharedOraclePerf struct {
	Workers       int     `json:"workers"`
	Queries       int     `json:"queries"`
	OffNsPerQuery float64 `json:"offNsPerQuery"`
	OnNsPerQuery  float64 `json:"onNsPerQuery"`
	// Speedup = off ÷ on (> 1 means the shared table paid for itself).
	Speedup float64 `json:"speedup"`
}

// ParallelPerf is the BENCH_8 intra-query parallelism measurement set.
type ParallelPerf struct {
	// Exact and ExactPlus are nil when no workload query fits under
	// cfg.ExactCap (nothing to enumerate at a measurable size).
	Exact     *ParallelAlgoPerf `json:"exact,omitempty"`
	ExactPlus *ParallelAlgoPerf `json:"exactPlus,omitempty"`
	// BatchSharedOracle reruns the batch-scaling workload with the shared
	// plan table off and on at the ladder's top worker count.
	BatchSharedOracle SharedOraclePerf `json:"batchSharedOracle"`
}

// WalAppendPoint is one fsync policy's group-commit append throughput,
// measured as batches of walAppendBatch records (the shape the engine's
// writer produces under load: one fsync per batch under "always").
type WalAppendPoint struct {
	Policy string `json:"policy"`
	// NsPerRecord amortizes one Append call over its batch.
	NsPerRecord   float64 `json:"nsPerRecord"`
	RecordsPerSec float64 `json:"recordsPerSec"`
	BytesPerSec   float64 `json:"bytesPerSec"`
}

// RecoveryPoint is one measured store.Open after a simulated crash.
type RecoveryPoint struct {
	// Events is the total state-changing writes the store had accepted.
	Events int `json:"events"`
	// ReplayedRecords is how many WAL records recovery actually replayed
	// (with checkpoints enabled this stays bounded as Events grows).
	ReplayedRecords int     `json:"replayedRecords"`
	RecoveryMillis  float64 `json:"recoveryMillis"`
}

// DurabilityPerf is the BENCH_4 durability measurement set.
type DurabilityPerf struct {
	WalAppend []WalAppendPoint `json:"walAppend"`
	// RecoveryNoCheckpoint grows with the WAL (every record replays);
	// RecoveryWithCheckpoint stays near-flat — the sublinear curve the
	// checkpoint/truncation lifecycle exists to produce.
	RecoveryNoCheckpoint   []RecoveryPoint `json:"recoveryNoCheckpoint"`
	RecoveryWithCheckpoint []RecoveryPoint `json:"recoveryWithCheckpoint"`
}

// EdgeChurnPerf is the dynamic-topology throughput measurement.
type EdgeChurnPerf struct {
	// IncrementalNsPerOp is one ApplyEdgeInsert/ApplyEdgeRemove, delta-CSR
	// write and traversal-style core repair included.
	IncrementalNsPerOp float64 `json:"incrementalNsPerOp"`
	// RedecomposeNsPerOp is the same graph mutation followed by a from-
	// scratch O(m) core decomposition — the cost without the maintainer.
	RedecomposeNsPerOp float64 `json:"redecomposeNsPerOp"`
	// Speedup = redecompose ÷ incremental.
	Speedup float64 `json:"speedup"`
	// UpdatesPerSecond is the sustained incremental churn rate.
	UpdatesPerSecond float64 `json:"updatesPerSecond"`
}

// ServingPerf compares the two serving architectures under identical
// concurrent load: GOMAXPROCS reader goroutines answering AppFast queries
// while one writer goroutine churns check-ins continuously. The locked
// baseline is PR 2's architecture (queries under RLock, writes under Lock
// on one RWMutex); the snapshot path is PR 3's (writes through the
// snapshot.Engine, readers pinning published snapshots, zero locks).
type ServingPerf struct {
	// LockedReadNsPerOp is ns per query with RWMutex coupling under churn.
	LockedReadNsPerOp float64 `json:"lockedReadNsPerOp"`
	// SnapshotReadNsPerOp is ns per query with snapshot isolation under the
	// same churn.
	SnapshotReadNsPerOp float64 `json:"snapshotReadNsPerOp"`
	// ReadSpeedup = locked ÷ snapshot (≥ 1 means snapshot serving reads at
	// least as fast as the locked baseline — the acceptance bar).
	ReadSpeedup float64 `json:"readSpeedup"`
	// SnapshotReadsPerSec is the sustained snapshot-isolated query rate
	// across all readers.
	SnapshotReadsPerSec float64 `json:"snapshotReadsPerSec"`
	// CancelLatencyMicros is the mean time for ExactCtx to return after its
	// context fires mid-run (over CancelSamples queries whose deadline fired
	// before completion).
	CancelLatencyMicros float64 `json:"cancelLatencyMicros"`
	// CancelSamples is how many mid-run cancellations the mean covers.
	CancelSamples int `json:"cancelSamples"`
}

// SubscribePerf is the standing-query measurement set (BENCH_10): how fast
// a graph mutation reaches a subscribed consumer as a community delta, and
// how much re-evaluation work the invalidation gate saves under churn that
// mostly does not touch the subscribed communities.
type SubscribePerf struct {
	// DeltaLatencyMicros is the mean wall time from a check-in of a
	// subscription's anchor vertex returning (snapshot published) to the
	// consumer receiving the resulting delta on its stream, over
	// DeltaSamples moves that each force an MCC change.
	DeltaLatencyMicros float64 `json:"deltaLatencyMicros"`
	DeltaSamples       int     `json:"deltaSamples"`
	// Evaluations and SkippedByGate are the manager's counters after the
	// churn phase; GateHitRatePct = skipped ÷ (skipped + evaluations) —
	// the fraction of (subscription × batch) decisions the gate absorbed
	// without running a search.
	Evaluations    uint64  `json:"evaluations"`
	SkippedByGate  uint64  `json:"skippedByGate"`
	GateHitRatePct float64 `json:"gateHitRatePct"`
}

// Perf measures the report on cfg's first dataset.
func Perf(cfg Config) (*PerfReport, error) {
	start := time.Now()
	name := "brightkite"
	if len(cfg.Datasets) > 0 {
		name = cfg.Datasets[0]
	}
	ds, err := loadDataset(cfg, name)
	if err != nil {
		return nil, err
	}
	queries := dataset.QueryWorkload(ds.Graph, cfg.MinCore, cfg.Queries, cfg.Seed)
	if len(queries) == 0 {
		return nil, errNoQueries(name)
	}
	rep := &PerfReport{
		Schema:     "sacsearch-bench/10",
		Dataset:    name,
		Scale:      cfg.Scale,
		Queries:    len(queries),
		K:          cfg.K,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	// Repeated-query stream, cached vs uncached.
	measure := func(cached bool) PerfPoint {
		s := core.NewSearcher(ds.Graph)
		s.SetCandidateCaching(cached)
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := s.AppFast(queries[i%len(queries)], cfg.K, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
		return PerfPoint{
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
	}
	rep.RepeatedCached = measure(true)
	rep.RepeatedUncached = measure(false)
	if rep.RepeatedCached.NsPerOp > 0 {
		rep.CacheSpeedup = rep.RepeatedUncached.NsPerOp / rep.RepeatedCached.NsPerOp
	}

	// Batch scaling: a widened workload (batch.RunOn deduplicates identical
	// (q, k) pairs, so the batch needs distinct query vertices to measure
	// real work) run at growing worker counts over a persistent pool.
	wide := dataset.QueryWorkload(ds.Graph, cfg.MinCore, cfg.Queries*10, cfg.Seed+1)
	if len(wide) == 0 {
		wide = queries
	}
	work := make([]batch.Query, 0, len(wide))
	for _, q := range wide {
		work = append(work, batch.Query{Q: q, K: cfg.K})
	}
	base := core.NewSearcher(ds.Graph)
	workerCounts := workerLadder()
	var seqNs float64
	for _, w := range workerCounts {
		pool := core.NewPool(base)
		opt := batch.Options{Workers: w, Algorithm: batch.AlgoAppFast, EpsF: 0.5}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				batch.RunOn(context.Background(), pool, work, opt)
			}
		})
		nsPerQuery := float64(r.NsPerOp()) / float64(len(work))
		if w == 1 {
			seqNs = nsPerQuery
		}
		sp := 0.0
		if nsPerQuery > 0 {
			sp = seqNs / nsPerQuery
		}
		rep.BatchScaling = append(rep.BatchScaling, BatchScalePoint{
			Workers:    w,
			NsPerQuery: nsPerQuery,
			Speedup:    sp,
			GoMaxProcs: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
		})
	}

	// Edge churn on a clone (the batch graph above must stay untouched).
	// The same event sequence drives both measurements; inserts and deletes
	// alternate through it, so the edge set stays near its original size.
	churn := gen.EdgeChurn(ds.Graph, gen.EdgeChurnConfig{Days: 1, Events: 512, InsertFrac: 0.5}, cfg.Seed+2)
	if len(churn) > 0 {
		applyOn := func(g *graph.Graph, s *core.Searcher, i int) {
			e := churn[i%len(churn)]
			if g.HasEdge(e.U, e.V) {
				_, _ = s.ApplyEdgeRemove(e.U, e.V)
			} else {
				_, _ = s.ApplyEdgeInsert(e.U, e.V)
			}
		}
		gInc := ds.Graph.Clone()
		sInc := core.NewSearcher(gInc)
		rInc := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				applyOn(gInc, sInc, i)
			}
		})
		gRe := ds.Graph.Clone()
		rRe := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e := churn[i%len(churn)]
				if gRe.HasEdge(e.U, e.V) {
					gRe.RemoveEdge(e.U, e.V)
				} else {
					gRe.AddEdge(e.U, e.V)
				}
				kcore.Decompose(gRe)
			}
		})
		rep.EdgeChurn = EdgeChurnPerf{
			IncrementalNsPerOp: float64(rInc.NsPerOp()),
			RedecomposeNsPerOp: float64(rRe.NsPerOp()),
		}
		if rep.EdgeChurn.IncrementalNsPerOp > 0 {
			rep.EdgeChurn.Speedup = rep.EdgeChurn.RedecomposeNsPerOp / rep.EdgeChurn.IncrementalNsPerOp
			rep.EdgeChurn.UpdatesPerSecond = 1e9 / rep.EdgeChurn.IncrementalNsPerOp
		}
	}

	serving, err := measureServing(ds.Graph, queries, cfg)
	if err != nil {
		return nil, err
	}
	rep.Serving = serving

	durability, err := measureDurability(ds.Graph, cfg)
	if err != nil {
		return nil, err
	}
	rep.Durability = durability

	sharding, err := measureSharding(cfg)
	if err != nil {
		return nil, err
	}
	rep.Sharding = sharding

	rep.Parallel = measureParallel(ds.Graph, queries, work, cfg)

	telemetryPerf, err := measureTelemetry(ds.Graph, queries, cfg)
	if err != nil {
		return nil, err
	}
	rep.Telemetry = telemetryPerf

	subscribePerf, err := measureSubscribe(cfg)
	if err != nil {
		return nil, err
	}
	rep.Subscribe = subscribePerf

	rep.ElapsedMillis = time.Since(start).Milliseconds()
	return rep, nil
}

// measureTelemetry runs the serve-shaped query loop against a nil registry
// and a live one (BENCH_9). The loop mirrors what one /v1/query costs the
// server beyond the search itself: a root span, the in-flight gauge, the
// request counter, and the per-algo duration histogram and work counters.
// Spans are always on in the server (they cannot be disabled), so both
// arms pay for them; the differential isolates the registry's share.
//
// The registry's per-op cost (~0.5µs: one context alloc, two label-key
// joins, a handful of atomics) is an order of magnitude below the
// run-to-run jitter of the query itself, so a single base/instrumented
// pair would report noise. The arms therefore alternate over several
// rounds — so slow drift (thermal, GC pacing) hits both equally — and
// each arm keeps its minimum, the standard noise-robust estimator.
func measureTelemetry(g *graph.Graph, queries []graph.V, cfg Config) (TelemetryPerf, error) {
	var out TelemetryPerf
	arm := func(reg *telemetry.Registry) (float64, error) {
		s := core.NewSearcher(g)
		httpMet := telemetry.NewHTTPMetrics(reg)
		queryDur := reg.HistogramVec("sac_query_duration_seconds",
			"Query wall time by algorithm.", nil, "algo")
		cand := reg.CounterVec("sac_query_candidate_vertices_total",
			"Candidate vertices examined, by algorithm.", "algo")
		// Warm the searcher's caches outside the timed region so first-touch
		// costs don't land in whichever arm runs first.
		for _, q := range queries {
			if _, err := s.AppFast(q, cfg.K, 0.5); err != nil {
				return 0, err
			}
		}
		var benchErr error
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				start := time.Now()
				_, span := telemetry.StartSpan(context.Background(), "POST /v1/query")
				httpMet.Inflight.Add(1)
				res, err := s.AppFast(queries[i%len(queries)], cfg.K, 0.5)
				if err != nil {
					benchErr = err
					b.FailNow()
				}
				elapsed := time.Since(start)
				queryDur.With("appfast").Observe(elapsed.Seconds())
				cand.With("appfast").Add(uint64(res.Stats.CandidateSize))
				span.End()
				httpMet.Inflight.Add(-1)
				httpMet.Requests.With("/v1/query", "POST", "200").Inc()
				httpMet.Duration.With("/v1/query").Observe(elapsed.Seconds())
			}
		})
		return float64(r.NsPerOp()), benchErr
	}
	const rounds = 3
	for i := 0; i < rounds; i++ {
		base, err := arm(nil)
		if err != nil {
			return out, err
		}
		instr, err := arm(telemetry.NewRegistry())
		if err != nil {
			return out, err
		}
		if i == 0 || base < out.BaseNsPerOp {
			out.BaseNsPerOp = base
		}
		if i == 0 || instr < out.InstrumentedNsPerOp {
			out.InstrumentedNsPerOp = instr
		}
	}
	if out.BaseNsPerOp > 0 {
		out.OverheadPct = (out.InstrumentedNsPerOp - out.BaseNsPerOp) / out.BaseNsPerOp * 100
	}
	return out, nil
}

// measureSubscribe drives a live subscription manager hooked to a snapshot
// engine (the serving wiring, minus HTTP) through two phases. The latency
// phase moves one subscription's anchor vertex and times publication →
// gate → pooled re-evaluation → stream delivery for each resulting delta;
// anchor moves always change the community's MCC, so every sample produces
// exactly one event and nothing coalesces. The gate phase churns random
// vertices with small positional jitter and reads the manager's counters
// to report how many (subscription × batch) decisions the invalidation
// gate absorbed. It runs on the sharding bench's constellation graph —
// disjoint communities — because the gate's leverage is exactly the
// fraction of the graph outside each subscription's closure: a dense
// single-component dataset at bench scale degenerates to closure == graph
// and would honestly (but uselessly) report a 0% hit rate.
func measureSubscribe(cfg Config) (SubscribePerf, error) {
	var out SubscribePerf
	g := constellationGraph(cfg.Seed + 13)
	queries := dataset.QueryWorkload(g, cfg.MinCore, 8, cfg.Seed)
	if len(queries) == 0 {
		return out, fmt.Errorf("subscribe bench: constellation has no vertices with core >= %d", cfg.MinCore)
	}
	eng := snapshot.New(g.Clone(), snapshot.Options{})
	defer eng.Close()
	mgr := subscribe.NewManager(subscribe.ManagerOptions{
		Current: eng.Current,
		// A real registry: the gate counters the report reads are no-ops
		// on a nil one.
		Hub: subscribe.Options{Metrics: telemetry.NewRegistry(), StreamBuf: 4096},
	})
	defer mgr.Close()
	eng.SetOnPublish(mgr.Notify)

	nSubs := 8
	if len(queries) < nSubs {
		nSubs = len(queries)
	}
	streams := make([]*subscribe.Stream, nSubs)
	for i := 0; i < nSubs; i++ {
		sub, err := mgr.Register(fmt.Sprintf("bench-%d", i),
			core.Query{Q: queries[i], K: cfg.K, Algo: "appfast"})
		if err != nil {
			return out, err
		}
		st, _, err := sub.Attach(0, false)
		if err != nil {
			return out, err
		}
		streams[i] = st
	}

	// Every subscription must deliver its init before the timed phase, so
	// registration-time evaluations don't pollute the first sample.
	for i, st := range streams {
		select {
		case <-st.C:
		case <-time.After(30 * time.Second):
			return out, fmt.Errorf("subscription %d never delivered its init", i)
		}
	}

	ctx := context.Background()
	anchor := queries[0]
	base := g.Loc(anchor)
	const latencySamples = 30
	var totalLatency time.Duration
	for i := 0; i < latencySamples; i++ {
		// Alternate the anchor around its home location; each move shifts
		// the MCC so the result hash always changes.
		p := geom.Point{
			X: base.X + 0.02 + 0.001*float64(i%7),
			Y: base.Y - 0.015 + 0.001*float64(i%5),
		}
		t0 := time.Now()
		if err := eng.CheckIn(ctx, anchor, p); err != nil {
			return out, err
		}
		select {
		case <-streams[0].C:
			totalLatency += time.Since(t0)
			out.DeltaSamples++
		case <-time.After(10 * time.Second):
			return out, errors.New("anchor move never pushed a delta")
		}
	}
	if out.DeltaSamples > 0 {
		out.DeltaLatencyMicros = float64(totalLatency.Microseconds()) / float64(out.DeltaSamples)
	}

	// Gate phase: random-vertex jitter churn across the whole graph.
	evals0 := mgr.Hub().Evals().Value()
	skipped0 := mgr.Hub().Skipped().Value()
	rnd := rand.New(rand.NewSource(cfg.Seed + 10))
	n := g.NumVertices()
	const churnEvents = 400
	deadline := time.Now().Add(120 * time.Second)
	for i := 0; i < churnEvents; i++ {
		v := graph.V(rnd.Intn(n))
		p := g.Loc(v)
		p.X += (rnd.Float64() - 0.5) * 0.01
		p.Y += (rnd.Float64() - 0.5) * 0.01
		if err := eng.CheckIn(ctx, v, p); err != nil {
			return out, err
		}
		// Paced churn: let the dispatcher process each publication before
		// the next write, so every event is its own gate decision instead
		// of the whole phase coalescing into one batch (which would reduce
		// the measurement to a single evaluate-everything decision).
		for mgr.ProcessedSeq() < eng.Current().Seq() {
			if time.Now().After(deadline) {
				return out, errors.New("subscription manager never caught up with the churn")
			}
			time.Sleep(100 * time.Microsecond)
		}
	}
	out.Evaluations = mgr.Hub().Evals().Value() - evals0
	out.SkippedByGate = mgr.Hub().Skipped().Value() - skipped0
	if total := out.Evaluations + out.SkippedByGate; total > 0 {
		out.GateHitRatePct = float64(out.SkippedByGate) / float64(total) * 100
	}
	return out, nil
}

// workerLadder is the shared worker-count sweep: powers of two up to the
// machine's core count. It is derived from NumCPU, not GOMAXPROCS — a
// process booted with GOMAXPROCS=1 used to collapse the ladder to a single
// workers:1 row (the BENCH_7 bug), which silently erased the scaling curve.
// The floor of 2 keeps at least one multi-worker row on a 1-core box; its
// recorded per-row GoMaxProcs/NumCPU explain the flat speedup there.
func workerLadder() []int {
	max := runtime.NumCPU()
	if max < 2 {
		max = 2
	}
	var counts []int
	for w := 1; w < max; w *= 2 {
		counts = append(counts, w)
	}
	return append(counts, max)
}

// measureParallel benchmarks the intra-query parallel enumeration paths and
// the shared-oracle batch mode (BENCH_8). The Exact/Exact+ arms pick the
// workload query with the largest candidate set still under cfg.ExactCap —
// the widest enumeration the harness is allowed to run — and measure the
// same query serially and at each ladder worker count.
//
// At full scale no such query exists: every preset collapses into one giant
// connected k-core at the workload k, so plain Exact's pairwise enumeration
// is the paper's >10h case and is honestly skipped (the section stays null).
// Exact+ survives — the annulus filter is the whole point of Algorithm 5 —
// so the fallback benches it on the smallest feasible candidate at doubled
// k, escalating until any query is feasible, and records the chosen (q, k).
func measureParallel(g *graph.Graph, queries []graph.V, work []batch.Query, cfg Config) ParallelPerf {
	var out ParallelPerf

	s := core.NewSearcher(g)
	ladder := workerLadder()
	measureAlgo := func(algo string, q graph.V, k, size int, run func() error) *ParallelAlgoPerf {
		ap := &ParallelAlgoPerf{Algo: algo, Q: int64(q), K: k, CandidateSize: size}
		bench := func(workers int) float64 {
			s.SetParallelism(workers)
			defer s.SetParallelism(0)
			r := testing.Benchmark(func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					if err := run(); err != nil {
						b.Fatal(err)
					}
				}
			})
			return float64(r.NsPerOp())
		}
		ap.SerialNsPerOp = bench(0)
		for _, w := range ladder {
			if w < 2 {
				continue // workers:1 is the serial path by definition
			}
			ns := bench(w)
			sp := 0.0
			if ns > 0 {
				sp = ap.SerialNsPerOp / ns
			}
			if sp > ap.MaxSpeedup {
				ap.MaxSpeedup = sp
			}
			ap.Points = append(ap.Points, ParallelScalePoint{
				Workers:    w,
				NsPerOp:    ns,
				Speedup:    sp,
				GoMaxProcs: runtime.GOMAXPROCS(0),
				NumCPU:     runtime.NumCPU(),
			})
		}
		return ap
	}

	bestQ := graph.V(-1)
	bestSize := -1
	for _, q := range queries {
		probe, err := s.AppFast(q, cfg.K, 2)
		if err != nil {
			continue
		}
		if sz := probe.Stats.CandidateSize; sz <= cfg.ExactCap && sz > bestSize {
			bestQ, bestSize = q, sz
		}
	}
	switch {
	case bestSize > 0:
		out.Exact = measureAlgo("exact", bestQ, cfg.K, bestSize, func() error {
			_, err := s.Exact(bestQ, cfg.K)
			return err
		})
		out.ExactPlus = measureAlgo("exact+", bestQ, cfg.K, bestSize, func() error {
			_, err := s.ExactPlusDefault(bestQ, cfg.K)
			return err
		})
	default:
		// Full-scale fallback: smallest feasible candidate at escalating k.
		// A doubled degree bound thins the core below whole-graph size while
		// AppAcc's annulus stays tight (pushing k further makes the filter
		// admit nearly every circle and the scan slower, not faster).
		for k := 2 * cfg.K; k <= 16*cfg.K; k *= 2 {
			fbQ, fbSize := graph.V(-1), -1
			for _, q := range queries {
				probe, err := s.AppFast(q, k, 2)
				if err != nil {
					continue
				}
				if sz := probe.Stats.CandidateSize; fbSize < 0 || sz < fbSize {
					fbQ, fbSize = q, sz
				}
			}
			if fbSize > 0 {
				out.ExactPlus = measureAlgo("exact+", fbQ, k, fbSize, func() error {
					_, err := s.ExactPlusDefault(fbQ, k)
					return err
				})
				break
			}
		}
	}

	// Shared-oracle batch mode, off vs on, at the ladder's top worker count.
	// Same deduplicated workload as the batch-scaling sweep; a fresh pool per
	// arm so neither inherits the other's warmed caches.
	topW := ladder[len(ladder)-1]
	benchBatch := func(shared bool) float64 {
		pool := core.NewPool(core.NewSearcher(g))
		opt := batch.Options{Workers: topW, Algorithm: batch.AlgoAppFast, EpsF: 0.5, SharedOracle: shared}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				batch.RunOn(context.Background(), pool, work, opt)
			}
		})
		return float64(r.NsPerOp()) / float64(len(work))
	}
	out.BatchSharedOracle = SharedOraclePerf{
		Workers:       topW,
		Queries:       len(work),
		OffNsPerQuery: benchBatch(false),
		OnNsPerQuery:  benchBatch(true),
	}
	if out.BatchSharedOracle.OnNsPerQuery > 0 {
		out.BatchSharedOracle.Speedup = out.BatchSharedOracle.OffNsPerQuery / out.BatchSharedOracle.OnNsPerQuery
	}
	return out
}

// walAppendBatch is the group-commit batch size the WAL append measurement
// uses — a mid-size writer burst, so "always" pays one fsync per batch the
// way the engine's writer loop does.
const walAppendBatch = 64

// measureDurability benchmarks the WAL under all three fsync policies and
// the recovery path against growing WAL length, with and without checkpoint
// truncation (BENCH_4).
func measureDurability(g *graph.Graph, cfg Config) (DurabilityPerf, error) {
	var out DurabilityPerf

	// WAL append throughput per policy: batches of walAppendBatch check-in
	// records through one Append (group commit).
	for _, policy := range []wal.Policy{wal.PolicyAlways, wal.PolicyInterval, wal.PolicyNever} {
		dir, err := os.MkdirTemp("", "sacbench-wal-")
		if err != nil {
			return out, err
		}
		l, err := wal.Open(dir, 0, wal.Options{Policy: policy})
		if err != nil {
			os.RemoveAll(dir)
			return out, err
		}
		recs := make([]wal.Record, walAppendBatch)
		rnd := rand.New(rand.NewSource(cfg.Seed))
		n := g.NumVertices()
		for i := range recs {
			recs[i] = wal.Record{
				Kind: wal.KindCheckin,
				V:    graph.V(rnd.Intn(n)),
				Loc:  geom.Point{X: rnd.Float64(), Y: rnd.Float64()},
			}
		}
		r := testing.Benchmark(func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := l.Append(recs); err != nil {
					b.Fatal(err)
				}
			}
		})
		closeErr := l.Close()
		os.RemoveAll(dir)
		if closeErr != nil {
			return out, closeErr
		}
		perRecord := float64(r.NsPerOp()) / walAppendBatch
		point := WalAppendPoint{Policy: string(policy), NsPerRecord: perRecord}
		if perRecord > 0 {
			point.RecordsPerSec = 1e9 / perRecord
			// A check-in frame is 8 header + 29 payload bytes.
			point.BytesPerSec = point.RecordsPerSec * 37
		}
		out.WalAppend = append(out.WalAppend, point)
	}

	// Recovery time vs WAL length. Both curves drive the same event counts;
	// the checkpointed arm bounds its replay to the tail past the newest
	// checkpoint, which is what makes recovery sublinear in total history.
	const ckptEvery = 512
	for _, arm := range []struct {
		points *[]RecoveryPoint
		ckpt   uint64
	}{
		{&out.RecoveryNoCheckpoint, 0},
		{&out.RecoveryWithCheckpoint, ckptEvery},
	} {
		for _, events := range []int{256, 1024, 4096} {
			dir, err := os.MkdirTemp("", "sacbench-store-")
			if err != nil {
				return out, err
			}
			point, err := measureRecovery(g, dir, events, arm.ckpt, cfg.Seed)
			os.RemoveAll(dir)
			if err != nil {
				return out, err
			}
			*arm.points = append(*arm.points, point)
		}
	}
	return out, nil
}

// measureRecovery drives events check-ins through a durable store —
// checkpointing every ckptEvery events when non-zero, the way the
// background checkpointer's event trigger would, but synchronously so the
// measurement is deterministic — crashes it mid-interval, and times
// store.Open on the wreckage.
func measureRecovery(g *graph.Graph, dir string, events int, ckptEvery uint64, seed int64) (RecoveryPoint, error) {
	opt := store.Options{
		Init:               g.Clone(),
		CheckpointInterval: -1, // checkpoints are driven explicitly below
	}
	st, err := store.Open(dir, opt)
	if err != nil {
		return RecoveryPoint{}, err
	}
	ctx := context.Background()
	rnd := rand.New(rand.NewSource(seed))
	n := st.Current().Graph().NumVertices()
	checkin := func() error {
		v := graph.V(rnd.Intn(n))
		p := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
		return st.CheckIn(ctx, v, p)
	}
	for i := 0; i < events; i++ {
		if err := checkin(); err != nil {
			st.Crash()
			return RecoveryPoint{}, err
		}
		if ckptEvery > 0 && uint64(i+1)%ckptEvery == 0 {
			if err := st.Checkpoint(); err != nil {
				st.Crash()
				return RecoveryPoint{}, err
			}
		}
	}
	if ckptEvery > 0 {
		// Cover everything so far (events need not divide evenly), then
		// leave a fixed uncheckpointed tail: a real crash lands between
		// checkpoints, and the tail is exactly what replay costs.
		if err := st.Checkpoint(); err != nil {
			st.Crash()
			return RecoveryPoint{}, err
		}
		const tail = 128
		for i := 0; i < tail; i++ {
			if err := checkin(); err != nil {
				st.Crash()
				return RecoveryPoint{}, err
			}
		}
	}
	st.Crash()

	startOpen := time.Now()
	st2, err := store.Open(dir, store.Options{CheckpointInterval: -1})
	if err != nil {
		return RecoveryPoint{}, err
	}
	elapsed := time.Since(startOpen)
	stats := st2.Stats()
	st2.Crash() // leave no final checkpoint behind; the dir is discarded
	return RecoveryPoint{
		Events:          events,
		ReplayedRecords: stats.ReplayedRecords,
		RecoveryMillis:  float64(elapsed.Microseconds()) / 1e3,
	}, nil
}

// writePeriod paces the churning writer in both serving measurements: a
// fixed-rate external write stream (~5k check-ins/s) is the thing being
// served under, so both architectures face identical write load and the
// numbers compare reader throughput alone.
const writePeriod = 200 * time.Microsecond

// measureServing benchmarks read throughput under concurrent location churn
// for both serving architectures, then measures mid-Exact cancellation
// latency. Each architecture gets its own clone of g, the same query
// workload, GOMAXPROCS reader goroutines and one writer churning at
// writePeriod.
func measureServing(g *graph.Graph, queries []graph.V, cfg Config) (ServingPerf, error) {
	var out ServingPerf

	// readErr collects the first unexpected query error from the reader
	// goroutines. b.Fatal is off-limits inside RunParallel bodies (FailNow
	// must run on the benchmark goroutine, and testing.Benchmark would
	// swallow the failure anyway), so the error is latched and surfaced
	// after the measurement.
	var errMu sync.Mutex
	var readErr error
	recordErr := func(err error) {
		if err != nil && !errors.Is(err, core.ErrNoCommunity) {
			errMu.Lock()
			if readErr == nil {
				readErr = err
			}
			errMu.Unlock()
		}
	}

	// runArm measures one serving architecture: a paced writer goroutine
	// driving write (one churn event per call) races GOMAXPROCS reader
	// goroutines driving read (one query per call, worker checkout
	// included, matching what the HTTP handler does per request). Both
	// arms share this harness so the load shape cannot diverge between
	// them. Each arm takes the best of three runs — the minimum is the
	// least-noise estimator on a shared machine, and the noise (GC pauses,
	// scheduler interference) otherwise swamps the few-percent differences
	// the comparison exists to resolve.
	runOnce := func(write func(rnd *rand.Rand), read func(q graph.V) error) float64 {
		r := testing.Benchmark(func(b *testing.B) {
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				rnd := rand.New(rand.NewSource(cfg.Seed))
				for {
					select {
					case <-stop:
						return
					default:
					}
					write(rnd)
					time.Sleep(writePeriod)
				}
			}()
			var qi atomic.Int64
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					recordErr(read(queries[int(qi.Add(1))%len(queries)]))
				}
			})
			close(stop)
			wg.Wait()
		})
		return float64(r.NsPerOp())
	}
	runArm := func(write func(rnd *rand.Rand), read func(q graph.V) error) float64 {
		best := runOnce(write, read)
		for i := 1; i < 3; i++ {
			if ns := runOnce(write, read); ns < best {
				best = ns
			}
		}
		return best
	}

	// Locked baseline: PR 2's RWMutex coupling.
	{
		gl := g.Clone()
		pool := core.NewPool(core.NewSearcher(gl))
		n := gl.NumVertices()
		var mu sync.RWMutex
		out.LockedReadNsPerOp = runArm(
			func(rnd *rand.Rand) {
				v := graph.V(rnd.Intn(n))
				p := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
				mu.Lock()
				gl.SetLoc(v, p)
				mu.Unlock()
			},
			func(q graph.V) error {
				w := pool.Get()
				mu.RLock()
				_, err := w.AppFast(q, cfg.K, 0.5)
				mu.RUnlock()
				pool.Put(w)
				return err
			})
	}

	// Snapshot isolation: PR 3's writer loop + atomic publication.
	{
		eng := snapshot.New(g.Clone(), snapshot.Options{})
		defer eng.Close()
		ctx := context.Background()
		n := eng.NumVertices()
		out.SnapshotReadNsPerOp = runArm(
			func(rnd *rand.Rand) {
				v := graph.V(rnd.Intn(n))
				p := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
				_ = eng.CheckIn(ctx, v, p)
			},
			func(q graph.V) error {
				snap := eng.Current()
				w := snap.Get()
				_, err := w.AppFast(q, cfg.K, 0.5)
				snap.Put(w)
				return err
			})
	}

	if out.SnapshotReadNsPerOp > 0 {
		out.ReadSpeedup = out.LockedReadNsPerOp / out.SnapshotReadNsPerOp
		out.SnapshotReadsPerSec = 1e9 / out.SnapshotReadNsPerOp
	}

	// Cancellation latency: give ExactCtx a deadline shorter than its run
	// time and measure how far past the deadline it returns. Queries that
	// finish inside the deadline don't sample latency (nothing fired).
	{
		s := core.NewSearcher(g.Clone())
		var total time.Duration
		for _, q := range queries {
			budget := 2 * time.Millisecond
			ctx, cancel := context.WithTimeout(context.Background(), budget)
			qStart := time.Now()
			_, err := s.ExactCtx(ctx, q, cfg.K)
			elapsed := time.Since(qStart)
			cancel()
			if errors.Is(err, core.ErrCanceled) {
				total += elapsed - budget
				out.CancelSamples++
			}
		}
		if out.CancelSamples > 0 {
			mean := total / time.Duration(out.CancelSamples)
			out.CancelLatencyMicros = float64(mean.Microseconds())
		}
	}
	return out, readErr
}

// WritePerfJSON runs Perf and writes the indented JSON report to w.
func WritePerfJSON(cfg Config, w io.Writer) error {
	rep, err := Perf(cfg)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}

type errNoQueries string

func (e errNoQueries) Error() string {
	return "exp: no workload queries with the configured core bound in " + string(e)
}
