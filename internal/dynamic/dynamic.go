// Package dynamic implements the location-change replay of Section 5.2.3:
// check-in records are split into a warm-up prefix R1 and a replay suffix
// R2; R1 only updates user locations, while every R2 check-in by a tracked
// query user additionally triggers an SAC search at that instant. The
// resulting per-user community timelines feed the CJS/CAO-versus-η decay
// curves of Figure 13 and the moving-user portraits of Figure 2.
//
// ReplayWithEdges extends the paper's setting with friendship churn: edge
// events (gen.EdgeChurn, or real unfriend/befriend logs) interleave with the
// check-in stream on one clock, applied through the searcher's incremental
// topology path so every snapshot sees the graph exactly as it stood at
// that instant.
package dynamic

import (
	"context"
	"errors"
	"fmt"

	"sacsearch/internal/core"
	"sacsearch/internal/gen"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/metrics"
)

// Snapshot is one community observed for a tracked user at one check-in.
type Snapshot struct {
	Time    float64 // days
	Members []graph.V
	MCC     geom.Circle
}

// SearchFunc runs one SAC query at the current graph state; it returns the
// community members or an error. core.ErrNoCommunity snapshots are skipped
// (the user simply has no community at that instant); any other error aborts
// the replay, wrapped with the user and time it occurred at.
type SearchFunc func(q graph.V, k int) ([]graph.V, geom.Circle, error)

// Replay applies the check-in stream to g (mutating vertex locations) and
// returns the community timeline of every tracked user. Check-ins before
// splitTime only move users; from splitTime on, each check-in by a tracked
// user also runs search. The graph is left at its final replayed state.
// Long replays honor ctx: cancellation aborts between events with the
// context's error, and the search calls themselves can observe the same
// context when wired through a *Ctx algorithm.
func Replay(ctx context.Context, g *graph.Graph, checkins []gen.Checkin, tracked []graph.V, splitTime float64, k int, search SearchFunc) (map[graph.V][]Snapshot, error) {
	return ReplayWithEdges(ctx, g, checkins, nil, tracked, splitTime, k, search, nil)
}

// EdgeApplyFunc applies one friendship change during a replay. It must
// mutate the graph AND whatever decomposition state the search function
// depends on — core.Searcher.ApplyEdgeInsert/ApplyEdgeRemove do both. The
// boolean result (edge set changed) is ignored by the replay, so streams
// with benign no-op events (see gen.EdgeChurn) replay cleanly; an error
// aborts.
type EdgeApplyFunc func(u, v graph.V, insert bool) error

// ApplyVia adapts a Searcher's incremental topology updates to an
// EdgeApplyFunc, the usual way to wire ReplayWithEdges.
func ApplyVia(s *core.Searcher) EdgeApplyFunc {
	return func(u, v graph.V, insert bool) error {
		var err error
		if insert {
			_, err = s.ApplyEdgeInsert(u, v)
		} else {
			_, err = s.ApplyEdgeRemove(u, v)
		}
		return err
	}
}

// ReplayWithEdges replays friendship churn interleaved with check-ins: both
// streams advance on one clock, with edge events applied before check-ins
// that share an instant (the friendship exists by the time the user reports
// a location). Tracked users' searches observe the graph exactly as it was
// at each check-in — moved locations and churned edges both. edges may be
// nil (pure location replay); apply is required when it is not.
func ReplayWithEdges(ctx context.Context, g *graph.Graph, checkins []gen.Checkin, edges []gen.EdgeEvent, tracked []graph.V, splitTime float64, k int, search SearchFunc, apply EdgeApplyFunc) (map[graph.V][]Snapshot, error) {
	if len(edges) > 0 && apply == nil {
		return nil, fmt.Errorf("dynamic: %d edge events but no apply function", len(edges))
	}
	// Validate ordering up front, before any mutation: a replay that fails
	// validation must leave the graph untouched, not mutated by whatever
	// sorted prefix preceded the violation.
	for i := 1; i < len(checkins); i++ {
		if checkins[i].Time < checkins[i-1].Time {
			return nil, fmt.Errorf("dynamic: check-ins not time sorted at index %d", i)
		}
	}
	for i := 1; i < len(edges); i++ {
		if edges[i].Time < edges[i-1].Time {
			return nil, fmt.Errorf("dynamic: edge events not time sorted at index %d", i)
		}
	}
	isTracked := make(map[graph.V]bool, len(tracked))
	for _, v := range tracked {
		isTracked[v] = true
	}
	out := make(map[graph.V][]Snapshot, len(tracked))
	ei := 0
	for i, c := range checkins {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("dynamic: replay aborted at check-in %d (day %.3f): %w", i, c.Time, err)
		}
		for ei < len(edges) && edges[ei].Time <= c.Time {
			e := edges[ei]
			if err := apply(e.U, e.V, e.Insert); err != nil {
				return nil, fmt.Errorf("dynamic: edge event (%d,%d) at day %.3f: %w", e.U, e.V, e.Time, err)
			}
			ei++
		}
		g.SetLoc(c.User, c.Loc)
		if c.Time < splitTime || !isTracked[c.User] {
			continue
		}
		members, mcc, err := search(c.User, k)
		if err != nil {
			if errors.Is(err, core.ErrNoCommunity) {
				continue // no community at this instant; Figure 13 skips these
			}
			// Anything else is a genuine failure, not an empty snapshot —
			// swallowing it would silently truncate the timelines.
			return nil, fmt.Errorf("dynamic: search for user %d at day %.3f: %w", c.User, c.Time, err)
		}
		snap := Snapshot{Time: c.Time, Members: append([]graph.V(nil), members...), MCC: mcc}
		out[c.User] = append(out[c.User], snap)
	}
	// Trailing edge events (after the last check-in) still apply, leaving
	// the graph at its true final state.
	for ; ei < len(edges); ei++ {
		e := edges[ei]
		if err := apply(e.U, e.V, e.Insert); err != nil {
			return nil, fmt.Errorf("dynamic: edge event (%d,%d) at day %.3f: %w", e.U, e.V, e.Time, err)
		}
	}
	return out, nil
}

// DecayPoint is one (η, average CJS, average CAO) measurement.
type DecayPoint struct {
	EtaDays float64
	CJS     float64
	CAO     float64
	Pairs   int // community pairs averaged
}

// Decay computes the Figure 13 curves: for each η, every user's timeline is
// greedily subsampled so consecutive snapshots are at least η days apart,
// and CJS/CAO are averaged over the consecutive pairs of the subsample.
func Decay(timelines map[graph.V][]Snapshot, etas []float64) []DecayPoint {
	out := make([]DecayPoint, 0, len(etas))
	for _, eta := range etas {
		var cjs, cao []float64
		for _, snaps := range timelines {
			var prev *Snapshot
			for i := range snaps {
				s := &snaps[i]
				if prev == nil {
					prev = s
					continue
				}
				if s.Time-prev.Time < eta {
					continue
				}
				cjs = append(cjs, metrics.CJS(prev.Members, s.Members))
				cao = append(cao, metrics.CAO(prev.MCC, s.MCC))
				prev = s
			}
		}
		out = append(out, DecayPoint{
			EtaDays: eta,
			CJS:     metrics.Mean(cjs),
			CAO:     metrics.Mean(cao),
			Pairs:   len(cjs),
		})
	}
	return out
}
