package subscribe

import (
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// ParseLastEventID reads the SSE resume header. ok is false when absent or
// malformed (a malformed header is treated as a fresh attach, per the SSE
// convention of ignoring unparsable ids).
func ParseLastEventID(r *http.Request) (id uint64, ok bool) {
	raw := r.Header.Get("Last-Event-ID")
	if raw == "" {
		return 0, false
	}
	id, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, false
	}
	return id, true
}

// ServeSSE pumps one attached stream over a text/event-stream response:
// replay first, then live events, with comment heartbeats every heartbeat
// interval so intermediaries keep the connection alive. It returns when the
// client disconnects, the stream is shed (slow consumer) or closed (drain —
// the terminal bye event has then already been written), or a write fails.
// The caller owns Attach/Detach.
func ServeSSE(w http.ResponseWriter, r *http.Request, st *Stream, replay []Event, heartbeat time.Duration) {
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	rc := http.NewResponseController(w)
	// Streams outlive the server's per-response write timeout by design;
	// slow consumers are handled by shedding, dead peers by the client
	// disconnect firing r.Context().
	_ = rc.SetWriteDeadline(time.Time{})
	w.WriteHeader(http.StatusOK)
	_ = rc.Flush()
	for _, ev := range replay {
		if writeEvent(w, ev) != nil {
			return
		}
	}
	_ = rc.Flush()
	if heartbeat <= 0 {
		heartbeat = 15 * time.Second
	}
	hb := time.NewTicker(heartbeat)
	defer hb.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-st.Shed:
			return
		case ev, ok := <-st.C:
			if !ok {
				return
			}
			if writeEvent(w, ev) != nil {
				return
			}
			bye := ev.Kind == KindBye
			// Drain whatever else is buffered before flushing once.
			for more := true; more && !bye; {
				select {
				case ev, ok := <-st.C:
					if !ok {
						more = false
					} else if writeEvent(w, ev) != nil {
						return
					} else {
						bye = ev.Kind == KindBye
					}
				default:
					more = false
				}
			}
			_ = rc.Flush()
			if bye {
				return
			}
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": hb\n\n"); err != nil {
				return
			}
			_ = rc.Flush()
		}
	}
}

func writeEvent(w http.ResponseWriter, ev Event) error {
	_, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", ev.Seq, ev.Kind, ev.Data)
	return err
}
