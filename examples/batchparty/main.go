// Batch party planning (the paper's Section 6 future work, batch
// processing): a cocktail-party service — the motivating story of Sozio &
// Gionis's community-search paper [29] — wants to propose one party per host
// for a whole list of hosts at once. Each party needs guests who all know
// each other well (degree ≥ k inside the group) and live close together.
//
// The example answers the whole host list with one BatchSearch call (shared
// core decomposition, parallel workers, duplicate hosts deduplicated), then
// refines the venue question with the minimum-diameter variants: the MCC
// objective bounds the catchment circle, while the diameter objective bounds
// the longest walk between any two guests.
//
//	go run ./examples/batchparty
package main

import (
	"fmt"
	"log"
	"time"

	"sacsearch"
)

func main() {
	// A metro area: 12k users, 70k friendships, spatially clustered.
	g := sacsearch.GenerateSocialGraph(12000, 70000, 99)
	fmt.Printf("metro graph: %d users, %d friendships\n\n", g.NumVertices(), g.NumEdges())

	// Tonight's hosts: 24 well-connected users (one appears twice —
	// the batch layer answers duplicates once).
	hosts := sacsearch.QueryWorkload(g, 4, 24, 5)
	if len(hosts) == 0 {
		log.Fatal("no eligible hosts")
	}
	hosts = append(hosts, hosts[0])

	s := sacsearch.NewSearcher(g)
	const k = 3 // every guest knows ≥ 3 others at the party

	start := time.Now()
	items := sacsearch.BatchSearch(s, sacsearch.BatchWorkload(hosts, k), sacsearch.BatchOptions{
		// The batch rides the same registry template a /v1/batch request
		// does: one Query selects the algorithm and parameters for all hosts.
		Template: sacsearch.Query{Algo: "appacc", EpsA: sacsearch.Float(0.5)},
		Workers:  4,
	})
	batchTime := time.Since(start)

	fmt.Printf("%-8s %-8s %-10s %s\n", "host", "guests", "radius", "verdict")
	planned := 0
	for _, it := range items {
		if it.Err != nil {
			fmt.Printf("%-8d no viable party (%v)\n", it.Q, it.Err)
			continue
		}
		planned++
		verdict := "house party"
		if it.Result.Radius() > 0.05 {
			verdict = "needs a central venue"
		}
		fmt.Printf("%-8d %-8d %-10.4f %s\n", it.Q, it.Result.Size()-1, it.Result.Radius(), verdict)
	}
	fmt.Printf("\nplanned %d parties in %v (batched, 4 workers)\n\n", planned, batchTime)

	// Sequential timing for comparison.
	start = time.Now()
	for _, h := range hosts {
		_, _ = s.AppAcc(h, k, 0.5)
	}
	fmt.Printf("the same list sequentially: %v\n\n", time.Since(start))

	// For the first host, compare the two spatial objectives: the MCC
	// radius (circle the party fits in) versus the diameter (longest walk
	// between two guests) — the paper's "other spatial cohesiveness
	// measures" future work.
	host := hosts[0]
	mcc, err := s.ExactPlus(host, k, 1e-3)
	if err != nil {
		log.Fatal(err)
	}
	diam, err := s.MinDiamLens(host, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("host %d, two objectives:\n", host)
	fmt.Printf("  min-MCC party:      %2d guests, radius %.4f, longest walk %.4f\n",
		mcc.Size()-1, mcc.Radius(), sacsearch.CommunityDiameter(g, mcc.Members))
	fmt.Printf("  min-diameter party: %2d guests, radius %.4f, longest walk %.4f (√3-approx)\n",
		diam.Size()-1, sacsearch.CommunityRadius(g, diam.Members), diam.Delta)
}
