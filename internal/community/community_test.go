package community

import (
	"math/rand"
	"sort"
	"testing"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// twoCliques builds two k-cliques bridged by a single edge, clique A near
// the origin and clique B in the far corner.
func twoCliques(size int) *graph.Graph {
	b := graph.NewBuilder(2 * size)
	for i := 0; i < size; i++ {
		for j := i + 1; j < size; j++ {
			b.AddEdge(graph.V(i), graph.V(j))
			b.AddEdge(graph.V(i+size), graph.V(j+size))
		}
	}
	b.AddEdge(graph.V(size-1), graph.V(size)) // bridge
	for i := 0; i < size; i++ {
		b.SetLoc(graph.V(i), geom.Point{X: 0.1 + 0.01*float64(i), Y: 0.1})
		b.SetLoc(graph.V(i+size), geom.Point{X: 0.9 - 0.01*float64(i), Y: 0.9})
	}
	return b.Build()
}

func sorted(vs []graph.V) []graph.V {
	out := append([]graph.V(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func TestGlobal(t *testing.T) {
	g := twoCliques(5)
	s := NewSearcher(g)
	// k=4: each clique is a 4-core; the bridge endpoints still have core 4.
	got := s.Global(0, 4)
	if len(got) != 10 {
		// The bridge links the cliques; whether the 4-core is connected
		// across it depends on bridge endpoints' degrees (5 each: 4 in
		// clique + bridge). Both cliques are 4-cores and the bridge
		// endpoints have degree 5, but the bridge endpoints' core number is
		// still 4 and the bridge edge connects them.
		t.Fatalf("Global(0,4) size = %d, want 10 (both cliques via bridge)", len(got))
	}
	// k=5: no 5-core in 5-cliques (max degree inside is 4).
	if got := s.Global(0, 5); got != nil {
		t.Fatalf("Global(0,5) = %v, want nil", got)
	}
}

func TestLocalSmallerThanGlobal(t *testing.T) {
	g := twoCliques(6)
	s := NewSearcher(g)
	local := s.Local(0, 5)
	if local == nil {
		t.Fatal("Local found nothing")
	}
	global := s.Global(0, 5)
	if len(local) > len(global) {
		t.Fatalf("Local (%d) bigger than Global (%d)", len(local), len(global))
	}
	// Local should stop at the first clique: 6 vertices.
	if len(local) != 6 {
		t.Fatalf("Local size = %d, want 6 (one clique)", len(local))
	}
	// Validate min degree.
	in := map[graph.V]bool{}
	for _, v := range local {
		in[v] = true
	}
	for _, v := range local {
		d := 0
		for _, u := range g.Neighbors(v) {
			if in[u] {
				d++
			}
		}
		if d < 5 {
			t.Fatalf("Local vertex %d degree %d < 5", v, d)
		}
	}
}

func TestLocalInfeasible(t *testing.T) {
	g := twoCliques(4)
	s := NewSearcher(g)
	if got := s.Local(0, 4); got != nil {
		t.Fatalf("Local(0,4) on 4-cliques = %v, want nil (max k-core is 3)", got)
	}
	// Query with no chance at all.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	g2 := b.Build()
	s2 := NewSearcher(g2)
	if got := s2.Local(2, 1); got != nil {
		t.Fatalf("Local on isolated vertex = %v", got)
	}
}

func TestLocalContainsQueryAndConnected(t *testing.T) {
	rnd := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		n := 30 + rnd.Intn(40)
		b := graph.NewBuilder(n)
		for i := 0; i < 6*n; i++ {
			b.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
		}
		for v := 0; v < n; v++ {
			b.SetLoc(graph.V(v), geom.Point{X: rnd.Float64(), Y: rnd.Float64()})
		}
		g := b.Build()
		s := NewSearcher(g)
		q := graph.V(rnd.Intn(n))
		k := 2 + rnd.Intn(3)
		got := s.Local(q, k)
		want := s.Global(q, k)
		if (got == nil) != (want == nil) {
			t.Fatalf("trial %d: Local nil=%v but Global nil=%v", trial, got == nil, want == nil)
		}
		if got == nil {
			continue
		}
		if len(got) > len(want) {
			t.Fatalf("trial %d: Local %d > Global %d", trial, len(got), len(want))
		}
		in := map[graph.V]bool{}
		hasQ := false
		for _, v := range got {
			in[v] = true
			hasQ = hasQ || v == q
		}
		if !hasQ {
			t.Fatalf("trial %d: Local misses q", trial)
		}
		for _, v := range got {
			d := 0
			for _, u := range g.Neighbors(v) {
				if in[u] {
					d++
				}
			}
			if d < k {
				t.Fatalf("trial %d: Local degree %d < %d", trial, d, k)
			}
		}
		visited := graph.NewMarker(n)
		reach := graph.BFSFrom(g, q, func(v graph.V) bool { return in[v] }, visited, nil)
		if len(reach) != len(got) {
			t.Fatalf("trial %d: Local not connected", trial)
		}
	}
}

func TestRadiusOnly(t *testing.T) {
	g := twoCliques(4)
	s := NewSearcher(g)
	got := s.RadiusOnly(0, 0.2)
	// Only the near clique (all within 0.2 of vertex 0).
	if len(got) != 4 {
		t.Fatalf("RadiusOnly = %v", got)
	}
	// Zero radius: just q (plus exact co-located vertices).
	got = s.RadiusOnly(0, 0)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("RadiusOnly(0) = %v", got)
	}
}

func TestAvgInternalDegree(t *testing.T) {
	g := twoCliques(4)
	if got := AvgInternalDegree(g, []graph.V{0, 1, 2, 3}); got != 3 {
		t.Fatalf("clique avg degree = %v, want 3", got)
	}
	if got := AvgInternalDegree(g, []graph.V{0, 4 /* not adjacent */}); got != 0 {
		t.Fatalf("disconnected pair avg degree = %v, want 0", got)
	}
	if got := AvgInternalDegree(g, nil); got != 0 {
		t.Fatalf("empty = %v", got)
	}
}

func TestGeoModuTwoCliques(t *testing.T) {
	g := twoCliques(6)
	for _, mu := range []float64{1, 2} {
		p := RunGeoModu(g, mu)
		if p.NumCommunities() < 2 {
			t.Fatalf("µ=%v: %d communities, want ≥ 2", mu, p.NumCommunities())
		}
		// The two cliques must not share a block.
		if p.Block(0) == p.Block(6) {
			t.Fatalf("µ=%v: cliques merged", mu)
		}
		// All of clique A shares vertex 0's block.
		cm := p.CommunityOf(0)
		if len(cm) != 6 {
			t.Fatalf("µ=%v: community of 0 = %v", mu, cm)
		}
		for _, v := range sorted(cm) {
			if v >= 6 {
				t.Fatalf("µ=%v: far-clique vertex %d in near community", mu, v)
			}
		}
	}
}

func TestGeoModuDeterministic(t *testing.T) {
	g := twoCliques(5)
	a := RunGeoModu(g, 1)
	b := RunGeoModu(g, 1)
	for v := 0; v < g.NumVertices(); v++ {
		if a.Block(graph.V(v)) != b.Block(graph.V(v)) {
			t.Fatal("GeoModu not deterministic")
		}
	}
}

func TestGeoModuModularityImproves(t *testing.T) {
	rnd := rand.New(rand.NewSource(5))
	n := 60
	b := graph.NewBuilder(n)
	for i := 0; i < 4*n; i++ {
		b.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
	}
	for v := 0; v < n; v++ {
		b.SetLoc(graph.V(v), geom.Point{X: rnd.Float64(), Y: rnd.Float64()})
	}
	g := b.Build()
	p := RunGeoModu(g, 1)
	// Modularity of the found partition beats the singleton partition.
	single := make([]int32, n)
	for v := range single {
		single[v] = int32(v)
	}
	qFound := Modularity(g, p.comm, 1)
	qSingle := Modularity(g, single, 1)
	if qFound < qSingle {
		t.Fatalf("louvain modularity %v < singleton %v", qFound, qSingle)
	}
	if qFound <= 0 {
		t.Fatalf("modularity %v not positive on clustered input", qFound)
	}
}

func TestGeoModuColocatedVertices(t *testing.T) {
	// Same location ⇒ weight capped via minGeoDist; must not panic or NaN.
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	for v := 0; v < 4; v++ {
		b.SetLoc(graph.V(v), geom.Point{X: 0.5, Y: 0.5})
	}
	g := b.Build()
	p := RunGeoModu(g, 2)
	if p.NumCommunities() < 1 {
		t.Fatal("no communities")
	}
	if q := Modularity(g, p.comm, 2); q != q { // NaN check
		t.Fatal("modularity is NaN")
	}
}

func TestGeoModuEmptyAndEdgeless(t *testing.T) {
	g := graph.NewBuilder(3).Build()
	p := RunGeoModu(g, 1)
	if p.NumCommunities() != 3 {
		t.Fatalf("edgeless graph: %d communities, want 3 singletons", p.NumCommunities())
	}
}

func TestGeoModuSpatialDecaySplitsFarFriends(t *testing.T) {
	// A clique whose members are spatially split into two far groups, with
	// dense internal edges: with µ=2 the far edges get tiny weight, so
	// GeoModu prefers spatially tight blocks. Construct two tight pairs far
	// apart, all six edges present (K4).
	b := graph.NewBuilder(4)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.V(i), graph.V(j))
		}
	}
	b.SetLoc(0, geom.Point{X: 0.01, Y: 0.01})
	b.SetLoc(1, geom.Point{X: 0.02, Y: 0.01})
	b.SetLoc(2, geom.Point{X: 0.99, Y: 0.99})
	b.SetLoc(3, geom.Point{X: 0.98, Y: 0.99})
	g := b.Build()
	p := RunGeoModu(g, 2)
	if p.Block(0) != p.Block(1) || p.Block(2) != p.Block(3) {
		t.Fatalf("tight pairs split: blocks %v %v %v %v", p.Block(0), p.Block(1), p.Block(2), p.Block(3))
	}
	if p.Block(0) == p.Block(2) {
		t.Fatal("far pairs merged despite µ=2 decay")
	}
}

func BenchmarkGeoModu(b *testing.B) {
	rnd := rand.New(rand.NewSource(2))
	n := 2000
	bb := graph.NewBuilder(n)
	for i := 0; i < 8*n; i++ {
		bb.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
	}
	for v := 0; v < n; v++ {
		bb.SetLoc(graph.V(v), geom.Point{X: rnd.Float64(), Y: rnd.Float64()})
	}
	g := bb.Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = RunGeoModu(g, 1)
	}
}

func BenchmarkLocal(b *testing.B) {
	g := twoCliques(30)
	s := NewSearcher(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Local(0, 20)
	}
}
