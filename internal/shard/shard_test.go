package shard

import (
	"bytes"
	"testing"

	"sacsearch/internal/gen"
	"sacsearch/internal/graph"
)

// testGraph builds a spatially clustered social graph — the shape the
// partitioner is designed for.
func testGraph(n, m int, seed int64) *graph.Graph {
	b := gen.SocialGraph(n, m, seed)
	gen.PlaceSpatial(b, 0.02, 0.5, seed+1)
	return b.Build()
}

// TestPartitionDeterminism is the determinism property test: the same graph
// and shard count always produce an identical map — across repeated runs
// and across graph.Clone — and every vertex lands on exactly one shard.
func TestPartitionDeterminism(t *testing.T) {
	g := testGraph(2000, 8000, 42)
	for _, shards := range []int{1, 2, 3, 7, 16} {
		m1, err := Partition(g, shards)
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if len(m1.Owner) != g.NumVertices() {
			t.Fatalf("shards=%d: map covers %d vertices, graph has %d", shards, len(m1.Owner), g.NumVertices())
		}
		counted := 0
		for id := 0; id < shards; id++ {
			counted += m1.OwnedCount(id)
		}
		if counted != g.NumVertices() {
			t.Fatalf("shards=%d: shard sizes sum to %d, want %d (a vertex is owned by != 1 shard)",
				shards, counted, g.NumVertices())
		}
		for v, o := range m1.Owner {
			if int(o) >= shards {
				t.Fatalf("shards=%d: vertex %d assigned to nonexistent shard %d", shards, v, o)
			}
		}
		// Re-run on the same graph, and on an independent deep copy.
		m2, err := Partition(g, shards)
		if err != nil {
			t.Fatal(err)
		}
		m3, err := Partition(g.Clone(), shards)
		if err != nil {
			t.Fatal(err)
		}
		for v := range m1.Owner {
			if m1.Owner[v] != m2.Owner[v] {
				t.Fatalf("shards=%d: rerun moved vertex %d from shard %d to %d", shards, v, m1.Owner[v], m2.Owner[v])
			}
			if m1.Owner[v] != m3.Owner[v] {
				t.Fatalf("shards=%d: clone moved vertex %d from shard %d to %d", shards, v, m1.Owner[v], m3.Owner[v])
			}
		}
		if m1.Checksum() != m2.Checksum() || m1.Checksum() != m3.Checksum() {
			t.Fatalf("shards=%d: checksums differ across identical cuts", shards)
		}
		// Balance: the greedy quota walk assigns whole grid cells, so a
		// shard can overshoot by one cell's population but never by more
		// than the densest cell. Sanity-check against gross imbalance.
		for id := 0; id < shards; id++ {
			if c := m1.OwnedCount(id); c == g.NumVertices() && shards > 1 {
				t.Fatalf("shards=%d: shard %d owns every vertex", shards, id)
			}
		}
	}
}

func TestPartitionRejects(t *testing.T) {
	g := testGraph(50, 100, 1)
	if _, err := Partition(g, 0); err == nil {
		t.Fatal("shards=0 accepted")
	}
	if _, err := Partition(g, 1<<16+1); err == nil {
		t.Fatal("shards > 65536 accepted")
	}
	if _, err := Partition(graph.NewBuilder(0).Build(), 2); err == nil {
		t.Fatal("empty graph accepted")
	}
}

func TestMapRoundTrip(t *testing.T) {
	g := testGraph(500, 2000, 7)
	m, err := Partition(g, 4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.WriteMap(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMap(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards != m.Shards || got.N != m.N || got.Edges != m.Edges || got.CrossEdges != m.CrossEdges {
		t.Fatalf("round trip changed header: %+v vs %+v", got, m)
	}
	for v := range m.Owner {
		if got.Owner[v] != m.Owner[v] {
			t.Fatalf("round trip changed owner of %d: %d vs %d", v, got.Owner[v], m.Owner[v])
		}
	}
	if got.Checksum() != m.Checksum() {
		t.Fatal("round trip changed checksum")
	}
	// Any corrupted byte must be rejected (CRC tail covers everything).
	for _, i := range []int{0, 9, 20, buf.Len() / 2, buf.Len() - 1} {
		bad := append([]byte(nil), buf.Bytes()...)
		bad[i] ^= 0x40
		if _, err := ReadMap(bytes.NewReader(bad)); err == nil {
			t.Fatalf("corruption at byte %d accepted", i)
		}
	}
	// Truncation must be rejected too.
	if _, err := ReadMap(bytes.NewReader(buf.Bytes()[:buf.Len()-3])); err == nil {
		t.Fatal("truncated map accepted")
	}
}

// TestSubgraphInvariants pins the ghost protocol's load-bearing facts: full
// global id space, every owned vertex keeps its complete adjacency and
// authoritative location, every edge is materialized on every owner, and
// cross-shard edges appear on both sides.
func TestSubgraphInvariants(t *testing.T) {
	g := testGraph(800, 3000, 11)
	const shards = 3
	m, err := Partition(g, shards)
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]*graph.Graph, shards)
	for id := 0; id < shards; id++ {
		if subs[id], err = Subgraph(g, m, id); err != nil {
			t.Fatal(err)
		}
		if subs[id].NumVertices() != g.NumVertices() {
			t.Fatalf("shard %d: %d vertices, want global %d", id, subs[id].NumVertices(), g.NumVertices())
		}
	}
	for v := 0; v < g.NumVertices(); v++ {
		id := m.OwnerOf(graph.V(v))
		sub := subs[id]
		if sub.Degree(graph.V(v)) != g.Degree(graph.V(v)) {
			t.Fatalf("vertex %d: owner shard %d materializes degree %d, global is %d",
				v, id, sub.Degree(graph.V(v)), g.Degree(graph.V(v)))
		}
		if sub.Loc(graph.V(v)) != g.Loc(graph.V(v)) {
			t.Fatalf("vertex %d: owner location drifted at cut time", v)
		}
	}
	// Every global edge appears on each endpoint's owner; no shard carries
	// an edge with no owned endpoint.
	for u := 0; u < g.NumVertices(); u++ {
		for _, w := range g.Neighbors(graph.V(u)) {
			if int(w) <= u {
				continue
			}
			for _, id := range []int{m.OwnerOf(graph.V(u)), m.OwnerOf(w)} {
				if !hasEdge(subs[id], graph.V(u), w) {
					t.Fatalf("edge (%d,%d) missing on owner shard %d", u, w, id)
				}
			}
		}
	}
	for id := 0; id < shards; id++ {
		for u := 0; u < subs[id].NumVertices(); u++ {
			for _, w := range subs[id].Neighbors(graph.V(u)) {
				if int(w) <= u {
					continue
				}
				if m.OwnerOf(graph.V(u)) != id && m.OwnerOf(w) != id {
					t.Fatalf("shard %d materializes foreign edge (%d,%d)", id, u, w)
				}
			}
		}
	}
}

func hasEdge(g *graph.Graph, u, w graph.V) bool {
	for _, x := range g.Neighbors(u) {
		if x == w {
			return true
		}
	}
	return false
}

// globalKCoreComponent computes the reference X = the connected component
// of q in the k-core of g, by straightforward peel + BFS.
func globalKCoreComponent(g *graph.Graph, q graph.V, k int) map[graph.V]bool {
	n := g.NumVertices()
	deg := make([]int, n)
	removed := make([]bool, n)
	var queue []graph.V
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(graph.V(v))
		if deg[v] < k {
			removed[v] = true
			queue = append(queue, graph.V(v))
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range g.Neighbors(u) {
			if removed[w] {
				continue
			}
			deg[w]--
			if deg[w] < k {
				removed[w] = true
				queue = append(queue, w)
			}
		}
	}
	if removed[q] {
		return nil
	}
	comp := map[graph.V]bool{q: true}
	stack := []graph.V{q}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(u) {
			if !removed[w] && !comp[w] {
				comp[w] = true
				stack = append(stack, w)
			}
		}
	}
	return comp
}

// TestCertSoundness checks both directions of the optimistic-peel
// certificate against the reference global k-core, for every vertex and a
// range of k.
func TestCertSoundness(t *testing.T) {
	g := testGraph(600, 2600, 23)
	const shards = 3
	m, err := Partition(g, shards)
	if err != nil {
		t.Fatal(err)
	}
	certs := make([]*Cert, shards)
	for id := 0; id < shards; id++ {
		sub, err := Subgraph(g, m, id)
		if err != nil {
			t.Fatal(err)
		}
		sv, err := NewServing(m, id)
		if err != nil {
			t.Fatal(err)
		}
		certs[id] = NewCert(sub, sv)
	}
	for k := 1; k <= 6; k++ {
		for v := 0; v < g.NumVertices(); v++ {
			q := graph.V(v)
			id := m.OwnerOf(q)
			alive, certified := certs[id].Contained(q, k)
			X := globalKCoreComponent(g, q, k)
			if !alive {
				// Death soundness: a peeled q must be outside the global
				// k-core — this verdict is served as a final ErrNoCommunity.
				if X != nil {
					t.Fatalf("k=%d q=%d: cert says dead but global candidate set has %d members", k, v, len(X))
				}
				if !certified {
					t.Fatalf("k=%d q=%d: dead verdict must be certified", k, v)
				}
				continue
			}
			if !certified {
				continue // scatter-gather path; covered by the closure test
			}
			// Containment soundness: the certified local component must be
			// exactly X — collected via Expand from q alone.
			members, frontier := certs[id].Expand([]graph.V{q}, k)
			if len(frontier) != 0 {
				t.Fatalf("k=%d q=%d: certified component has frontier ghosts %v", k, v, frontier)
			}
			if len(members) != len(X) {
				t.Fatalf("k=%d q=%d: certified component has %d members, global X has %d", k, v, len(members), len(X))
			}
			for _, mv := range members {
				if !X[mv] {
					t.Fatalf("k=%d q=%d: certified member %d not in global X", k, v, mv)
				}
			}
		}
	}
}

// TestExpandClosure emulates the router's cross-shard closure for
// uncertified queries and checks the gathered set is a superset of X whose
// induced k-core component of q is X exactly.
func TestExpandClosure(t *testing.T) {
	g := testGraph(600, 2600, 31)
	const shards = 4
	m, err := Partition(g, shards)
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]*graph.Graph, shards)
	certs := make([]*Cert, shards)
	for id := 0; id < shards; id++ {
		if subs[id], err = Subgraph(g, m, id); err != nil {
			t.Fatal(err)
		}
		sv, _ := NewServing(m, id)
		certs[id] = NewCert(subs[id], sv)
	}
	for k := 2; k <= 5; k++ {
		for v := 0; v < g.NumVertices(); v += 7 {
			q := graph.V(v)
			owner := m.OwnerOf(q)
			alive, certified := certs[owner].Contained(q, k)
			if !alive || certified {
				continue
			}
			collected := map[graph.V]bool{}
			seeded := map[graph.V]bool{q: true}
			pending := map[int][]graph.V{owner: {q}}
			for len(pending) > 0 {
				next := map[int][]graph.V{}
				for id, seeds := range pending {
					members, frontier := certs[id].Expand(seeds, k)
					for _, mv := range members {
						collected[mv] = true
					}
					for _, f := range frontier {
						if !seeded[f] && !collected[f] {
							seeded[f] = true
							fo := m.OwnerOf(f)
							next[fo] = append(next[fo], f)
						}
					}
				}
				pending = next
			}
			X := globalKCoreComponent(g, q, k)
			for xv := range X {
				if !collected[xv] {
					t.Fatalf("k=%d q=%d: global candidate %d missing from closure", k, v, xv)
				}
			}
			// The closure over-collects (optimistic survivors); the induced
			// k-core component of q must still be X exactly.
			induced := inducedComponent(g, collected, q, k)
			if len(induced) != len(X) {
				t.Fatalf("k=%d q=%d: induced component has %d members, X has %d", k, v, len(induced), len(X))
			}
			for xv := range X {
				if !induced[xv] {
					t.Fatalf("k=%d q=%d: X member %d missing from induced component", k, v, xv)
				}
			}
		}
	}
}

// inducedComponent peels the subgraph of g induced by keep down to its
// k-core and returns q's component in it.
func inducedComponent(g *graph.Graph, keep map[graph.V]bool, q graph.V, k int) map[graph.V]bool {
	deg := map[graph.V]int{}
	for v := range keep {
		d := 0
		for _, w := range g.Neighbors(v) {
			if keep[w] {
				d++
			}
		}
		deg[v] = d
	}
	removed := map[graph.V]bool{}
	var queue []graph.V
	for v := range keep {
		if deg[v] < k {
			removed[v] = true
			queue = append(queue, v)
		}
	}
	for len(queue) > 0 {
		u := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, w := range g.Neighbors(u) {
			if !keep[w] || removed[w] {
				continue
			}
			deg[w]--
			if deg[w] < k && !removed[w] {
				removed[w] = true
				queue = append(queue, w)
			}
		}
	}
	if removed[q] || !keep[q] {
		return nil
	}
	comp := map[graph.V]bool{q: true}
	stack := []graph.V{q}
	for len(stack) > 0 {
		u := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, w := range g.Neighbors(u) {
			if keep[w] && !removed[w] && !comp[w] {
				comp[w] = true
				stack = append(stack, w)
			}
		}
	}
	return comp
}
