// Package batch implements batched SAC query processing — the paper's
// Section 6 future work ("we will study how to support batch processing for
// SAC search"). Applications like event recommendation fire many SAC queries
// at once (one per online user); answering them together beats answering
// them one by one because
//
//   - the O(m) core decomposition is computed once and shared by every
//     worker (core.Pool clones share the immutable decompositions),
//   - duplicate (q, k) pairs — common when hot users re-query — are
//     answered once and fanned back out,
//   - queries run on a configurable number of workers drawn from a
//     core.Pool, each owning isolated scratch space and a candidate cache,
//     so the batch saturates the machine without data races — and when the
//     caller keeps the pool alive across batches (RunOn/StreamOn), the
//     workers' warmed caches survive between batches too.
//
// Results come back in input order (Run/RunOn) or as they complete
// (Stream/StreamOn).
package batch

import (
	"fmt"
	"runtime"
	"sync"

	"sacsearch/internal/core"
	"sacsearch/internal/graph"
)

// Algo selects the SAC algorithm a batch runs.
type Algo int

const (
	// AlgoAppFast runs AppFast(εF) — the default: fastest with a 2+εF
	// guarantee.
	AlgoAppFast Algo = iota
	// AlgoAppInc runs AppInc (parameter-free 2-approximation).
	AlgoAppInc
	// AlgoAppAcc runs AppAcc(εA) (1+εA approximation).
	AlgoAppAcc
	// AlgoExactPlus runs ExactPlus(εA) (exact).
	AlgoExactPlus
	// AlgoExact runs the naive Exact — correctness baseline, small graphs
	// only.
	AlgoExact
)

func (a Algo) String() string {
	switch a {
	case AlgoAppFast:
		return "AppFast"
	case AlgoAppInc:
		return "AppInc"
	case AlgoAppAcc:
		return "AppAcc"
	case AlgoExactPlus:
		return "ExactPlus"
	case AlgoExact:
		return "Exact"
	default:
		return fmt.Sprintf("Algo(%d)", int(a))
	}
}

// Query is one SAC request.
type Query struct {
	Q graph.V
	K int
}

// Item is one answered query. Exactly one of Result and Err is set.
//
// Deduplicated batches alias: every occurrence of the same (q, k) in a
// Run/RunOn batch carries the SAME *core.Result pointer. Results are
// read-only by contract, so the sharing is safe; callers that mutate a
// result (sorting Members in place, say) must copy it first.
type Item struct {
	Query
	Result *core.Result
	Err    error
}

// Options configures a batch run. The zero value runs AppFast(0.5) on
// GOMAXPROCS workers.
type Options struct {
	// Workers is the number of concurrent searchers; ≤ 0 means GOMAXPROCS.
	Workers int
	// Algorithm selects the SAC algorithm (default AlgoAppFast).
	Algorithm Algo
	// EpsF is AppFast's εF (default 0.5 when zero and Algorithm is
	// AlgoAppFast; 0 is meaningful only if EpsFSet).
	EpsF float64
	// EpsFSet marks EpsF as deliberately zero (AppFast(0) is the AppInc
	// result, which is a valid choice).
	EpsFSet bool
	// EpsA is AppAcc's / ExactPlus's εA (default 0.5 for AppAcc, 1e-3 for
	// ExactPlus).
	EpsA float64
}

func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (o Options) epsF() float64 {
	if o.EpsF == 0 && !o.EpsFSet {
		return 0.5
	}
	return o.EpsF
}

func (o Options) epsA() float64 {
	if o.EpsA != 0 {
		return o.EpsA
	}
	if o.Algorithm == AlgoExactPlus {
		return 1e-3
	}
	return 0.5
}

// run dispatches one query on one searcher.
func run(s *core.Searcher, q Query, o Options) (*core.Result, error) {
	switch o.Algorithm {
	case AlgoAppInc:
		return s.AppInc(q.Q, q.K)
	case AlgoAppAcc:
		return s.AppAcc(q.Q, q.K, o.epsA())
	case AlgoExactPlus:
		return s.ExactPlus(q.Q, q.K, o.epsA())
	case AlgoExact:
		return s.Exact(q.Q, q.K)
	default:
		return s.AppFast(q.Q, q.K, o.epsF())
	}
}

// Run answers every query and returns the items in input order, using a
// transient worker pool over s. Prefer RunOn with a long-lived core.Pool
// when batches repeat against the same graph — pooled workers keep their
// warmed candidate caches between batches.
func Run(s *core.Searcher, queries []Query, opt Options) []Item {
	return RunOn(core.NewPool(s), queries, opt)
}

// RunOn answers every query on workers drawn from p and returns the items
// in input order. Duplicate (q, k) pairs are answered once and fanned back
// out. The pool's base searcher is never used directly, so it may be in use
// elsewhere as long as the graph's locations are not mutated concurrently.
func RunOn(p *core.Pool, queries []Query, opt Options) []Item {
	items := make([]Item, len(queries))

	// Deduplicate: first occurrence owns the computation.
	type slot struct {
		first int   // index into queries that computes the answer
		rest  []int // indices that reuse it
	}
	order := make([]Query, 0, len(queries))
	slots := make(map[Query]*slot, len(queries))
	for i, q := range queries {
		if sl, ok := slots[q]; ok {
			sl.rest = append(sl.rest, i)
			continue
		}
		slots[q] = &slot{first: i}
		order = append(order, q)
	}

	workers := opt.workers()
	if workers > len(order) {
		workers = len(order)
	}
	if workers <= 1 {
		// Run inline on a single pooled worker; no goroutines to coordinate.
		// The deferred Put matches the worker-goroutine path: if run panics
		// (a searcher bug surfaced by a query), the worker still returns to
		// the pool instead of leaking.
		func() {
			w := p.Get()
			defer p.Put(w)
			for _, q := range order {
				res, err := run(w, q, opt)
				items[slots[q].first] = Item{Query: q, Result: res, Err: err}
			}
		}()
	} else {
		feed := make(chan Query)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				ws := p.Get()
				defer p.Put(ws)
				for q := range feed {
					res, err := run(ws, q, opt)
					items[slots[q].first] = Item{Query: q, Result: res, Err: err}
				}
			}()
		}
		for _, q := range order {
			feed <- q
		}
		close(feed)
		wg.Wait()
	}

	// Fan duplicate answers back out.
	for q, sl := range slots {
		for _, i := range sl.rest {
			items[i] = items[sl.first]
			items[i].Query = q
		}
	}
	return items
}

// Stream answers queries from in as they arrive on a transient worker pool
// over s; see StreamOn for the pooled variant.
func Stream(s *core.Searcher, in <-chan Query, opt Options) <-chan Item {
	return StreamOn(core.NewPool(s), in, opt)
}

// StreamOn answers queries from in as they arrive and sends items on the
// returned channel as they complete (not in input order). The channel is
// closed when in is closed and all in-flight queries have finished.
// Duplicate queries are not deduplicated — streams are unbounded, so the
// memory of past answers is the caller's concern.
func StreamOn(p *core.Pool, in <-chan Query, opt Options) <-chan Item {
	out := make(chan Item)
	workers := opt.workers()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ws := p.Get()
			defer p.Put(ws)
			for q := range in {
				res, err := run(ws, q, opt)
				out <- Item{Query: q, Result: res, Err: err}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(out)
	}()
	return out
}

// Workload builds the all-pairs batch for one k over a set of query
// vertices — a convenience for benchmark harnesses and the batch example.
func Workload(qs []graph.V, k int) []Query {
	out := make([]Query, len(qs))
	for i, q := range qs {
		out[i] = Query{Q: q, K: k}
	}
	return out
}
