// Benchmarks regenerating every table and figure of the paper's evaluation
// (Section 5), one testing.B function per artifact, plus the ablation
// benches DESIGN.md §7 calls out. Quality figures (9, 10, 11, 13, 14b)
// report their headline number through b.ReportMetric in the figure's own
// unit next to the usual ns/op; efficiency figures (12, 14a) are plain
// timing benches.
//
// The workload is the quick configuration (brightkite stand-in at 2% scale,
// 20 queries with core number ≥ 4) so `go test -bench=.` finishes in
// minutes; `cmd/sacbench -paper` runs the full-size protocol.
package sacsearch_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"sacsearch"
	"sacsearch/internal/dataset"
	"sacsearch/internal/exp"
	"sacsearch/internal/gen"
	"sacsearch/internal/geom"
	"sacsearch/internal/spatial"
)

const (
	benchDataset = "brightkite"
	benchScale   = 0.02
	benchQueries = 20
	benchK       = 4
	benchSeed    = 42
	// exactScale sizes the separate, smaller workload used by the cubic
	// Exact algorithm and annulus-off Exact+ benches, mirroring the paper's
	// practice of skipping Exact runs that would take hours.
	exactScale = 0.004
	// exactCandidateCap bounds the candidate k-ĉore size on that workload.
	exactCandidateCap = 150
)

// benchFixture is the shared benchmark workload, built once.
type benchFixture struct {
	ds       *sacsearch.Dataset
	queries  []sacsearch.V
	searcher *sacsearch.Searcher
	baseline *sacsearch.BaselineSearcher
	geoModu1 *sacsearch.Partition
	geoModu2 *sacsearch.Partition
	// optRadius maps each workload query to its Exact+ (optimal) MCC radius,
	// the denominator of every approximation ratio.
	optRadius map[sacsearch.V]float64
}

// exactFixture is the smaller workload for the cubic algorithms.
type exactFixture struct {
	searcher *sacsearch.Searcher
	queries  []sacsearch.V
}

var (
	fixOnce sync.Once
	fix     *benchFixture
	fixErr  error

	exactOnce sync.Once
	exactFix  *exactFixture
	exactErr  error
)

func exactWorkload(b *testing.B) *exactFixture {
	b.Helper()
	exactOnce.Do(func() {
		ds, err := sacsearch.LoadDataset(benchDataset, exactScale)
		if err != nil {
			exactErr = err
			return
		}
		f := &exactFixture{searcher: sacsearch.NewSearcher(ds.Graph)}
		for _, q := range sacsearch.QueryWorkload(ds.Graph, benchK, benchQueries, benchSeed) {
			res, err := f.searcher.AppFast(q, benchK, 0.5)
			if err != nil {
				continue
			}
			if res.Stats.CandidateSize <= exactCandidateCap {
				f.queries = append(f.queries, q)
			}
		}
		if len(f.queries) == 0 {
			exactErr = fmt.Errorf("no queries under the Exact candidate cap at scale %v", exactScale)
			return
		}
		exactFix = f
	})
	if exactErr != nil {
		b.Fatal(exactErr)
	}
	return exactFix
}

func fixture(b *testing.B) *benchFixture {
	b.Helper()
	fixOnce.Do(func() {
		ds, err := sacsearch.LoadDataset(benchDataset, benchScale)
		if err != nil {
			fixErr = err
			return
		}
		f := &benchFixture{
			ds:        ds,
			queries:   sacsearch.QueryWorkload(ds.Graph, benchK, benchQueries, benchSeed),
			searcher:  sacsearch.NewSearcher(ds.Graph),
			baseline:  sacsearch.NewBaselineSearcher(ds.Graph),
			geoModu1:  sacsearch.RunGeoModu(ds.Graph, 1),
			geoModu2:  sacsearch.RunGeoModu(ds.Graph, 2),
			optRadius: make(map[sacsearch.V]float64),
		}
		if len(f.queries) == 0 {
			fixErr = fmt.Errorf("no queries with core ≥ %d in %s at scale %v",
				benchK, benchDataset, benchScale)
			return
		}
		for _, q := range f.queries {
			res, err := f.searcher.ExactPlus(q, benchK, 1e-3)
			if err != nil {
				fixErr = fmt.Errorf("ExactPlus(%d): %w", q, err)
				return
			}
			f.optRadius[q] = res.Radius()
		}
		fix = f
	})
	if fixErr != nil {
		b.Fatal(fixErr)
	}
	return fix
}

// query cycles through the workload.
func (f *benchFixture) query(i int) sacsearch.V { return f.queries[i%len(f.queries)] }

// ratioOf returns radius/ropt for one query result, treating a zero optimal
// radius (degenerate single-point MCC) as ratio 1.
func (f *benchFixture) ratioOf(q sacsearch.V, radius float64) float64 {
	opt := f.optRadius[q]
	if opt == 0 {
		return 1
	}
	return radius / opt
}

// --- Table 4: dataset statistics -----------------------------------------

// BenchmarkTable4Datasets builds each Table 4 stand-in at 1% scale and
// reports its vertex and edge counts (the paper's Table 4 columns) as
// metrics.
func BenchmarkTable4Datasets(b *testing.B) {
	for _, p := range sacsearch.DatasetPresets() {
		b.Run(p.Name, func(b *testing.B) {
			var vertices, edges, avgDeg float64
			for i := 0; i < b.N; i++ {
				ds, err := sacsearch.LoadDataset(p.Name, 0.01)
				if err != nil {
					b.Fatal(err)
				}
				vertices = float64(ds.Graph.NumVertices())
				edges = float64(ds.Graph.NumEdges())
				avgDeg = ds.Graph.AvgDegree()
			}
			b.ReportMetric(vertices, "vertices")
			b.ReportMetric(edges, "edges")
			b.ReportMetric(avgDeg, "avgdeg")
		})
	}
}

// --- Figure 9: actual vs theoretical approximation ratio ------------------

// BenchmarkFig9AppFastRatio sweeps εF and reports the measured mean
// approximation ratio (paper: ≈2.0 even when the guarantee is 4.0).
func BenchmarkFig9AppFastRatio(b *testing.B) {
	f := fixture(b)
	for _, epsF := range []float64{0.0, 0.5, 1.0, 1.5, 2.0} {
		b.Run(fmt.Sprintf("epsF=%.1f", epsF), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				q := f.query(i)
				res, err := f.searcher.AppFast(q, benchK, epsF)
				if err != nil {
					b.Fatal(err)
				}
				sum += f.ratioOf(q, res.Radius())
			}
			b.ReportMetric(sum/float64(b.N), "ratio")
			b.ReportMetric(2+epsF, "ratio-bound")
		})
	}
}

// BenchmarkFig9AppAccRatio sweeps εA and reports the measured mean
// approximation ratio (paper: ≤1.1 across the sweep).
func BenchmarkFig9AppAccRatio(b *testing.B) {
	f := fixture(b)
	for _, epsA := range []float64{0.01, 0.05, 0.1, 0.5, 0.9} {
		b.Run(fmt.Sprintf("epsA=%.2f", epsA), func(b *testing.B) {
			var sum float64
			for i := 0; i < b.N; i++ {
				q := f.query(i)
				res, err := f.searcher.AppAcc(q, benchK, epsA)
				if err != nil {
					b.Fatal(err)
				}
				sum += f.ratioOf(q, res.Radius())
			}
			b.ReportMetric(sum/float64(b.N), "ratio")
			b.ReportMetric(1+epsA, "ratio-bound")
		})
	}
}

// --- Figure 10: spatial cohesiveness vs Global/Local/GeoModu --------------

// fig10Methods enumerates the community-retrieval methods Figure 10
// compares; each returns the member set for one query.
func fig10Methods(f *benchFixture) []struct {
	name string
	run  func(q sacsearch.V) []sacsearch.V
} {
	return []struct {
		name string
		run  func(q sacsearch.V) []sacsearch.V
	}{
		{"ExactPlus", func(q sacsearch.V) []sacsearch.V {
			res, err := f.searcher.ExactPlus(q, benchK, 1e-3)
			if err != nil {
				return nil
			}
			return res.Members
		}},
		{"AppInc", func(q sacsearch.V) []sacsearch.V {
			res, err := f.searcher.AppInc(q, benchK)
			if err != nil {
				return nil
			}
			return res.Members
		}},
		{"AppFast05", func(q sacsearch.V) []sacsearch.V {
			res, err := f.searcher.AppFast(q, benchK, 0.5)
			if err != nil {
				return nil
			}
			return res.Members
		}},
		{"AppAcc05", func(q sacsearch.V) []sacsearch.V {
			res, err := f.searcher.AppAcc(q, benchK, 0.5)
			if err != nil {
				return nil
			}
			return res.Members
		}},
		{"Global", func(q sacsearch.V) []sacsearch.V { return f.baseline.Global(q, benchK) }},
		{"Local", func(q sacsearch.V) []sacsearch.V { return f.baseline.Local(q, benchK) }},
		{"GeoModu1", func(q sacsearch.V) []sacsearch.V { return f.geoModu1.CommunityOf(q) }},
		{"GeoModu2", func(q sacsearch.V) []sacsearch.V { return f.geoModu2.CommunityOf(q) }},
	}
}

// BenchmarkFig10Radius reports the mean community MCC radius per method
// (paper: Global/Local radii 50×/20× the SAC methods').
func BenchmarkFig10Radius(b *testing.B) {
	f := fixture(b)
	for _, m := range fig10Methods(f) {
		b.Run(m.name, func(b *testing.B) {
			var sum float64
			var cnt int
			for i := 0; i < b.N; i++ {
				members := m.run(f.query(i))
				if len(members) == 0 {
					continue
				}
				sum += sacsearch.CommunityRadius(f.ds.Graph, members)
				cnt++
			}
			if cnt > 0 {
				b.ReportMetric(sum/float64(cnt), "radius")
			}
		})
	}
}

// BenchmarkFig10DistPr reports the mean pairwise member distance per method
// (Figure 10(b)).
func BenchmarkFig10DistPr(b *testing.B) {
	f := fixture(b)
	for _, m := range fig10Methods(f) {
		b.Run(m.name, func(b *testing.B) {
			var sum float64
			var cnt int
			for i := 0; i < b.N; i++ {
				members := m.run(f.query(i))
				if len(members) == 0 {
					continue
				}
				sum += sacsearch.CommunityDistPr(f.ds.Graph, members, benchSeed)
				cnt++
			}
			if cnt > 0 {
				b.ReportMetric(sum/float64(cnt), "distPr")
			}
		})
	}
}

// --- Figure 11: θ-SAC sensitivity -----------------------------------------

// BenchmarkFig11ThetaSAC sweeps θ and reports the fraction of queries with a
// non-empty result and the mean radius blow-up over Exact+ (paper: small θ →
// few results, large θ → radii 5-10× Exact+'s).
func BenchmarkFig11ThetaSAC(b *testing.B) {
	f := fixture(b)
	for _, theta := range []float64{1e-4, 1e-3, 1e-2, 1e-1} {
		b.Run(fmt.Sprintf("theta=%.0e", theta), func(b *testing.B) {
			var nonEmpty, ratioSum float64
			var ratioCnt int
			for i := 0; i < b.N; i++ {
				q := f.query(i)
				res, err := f.searcher.ThetaSAC(q, benchK, theta)
				if err != nil {
					continue
				}
				nonEmpty++
				ratioSum += f.ratioOf(q, res.Radius())
				ratioCnt++
			}
			b.ReportMetric(100*nonEmpty/float64(b.N), "pct-nonempty")
			if ratioCnt > 0 {
				b.ReportMetric(ratioSum/float64(ratioCnt), "radius-ratio")
			}
		})
	}
}

// --- Figure 12(a-e): approximation algorithms vs k -------------------------

// BenchmarkFig12Approx times each approximation algorithm across the k sweep
// (paper: AppFast fastest, AppInc grows with k, AppAcc stable).
func BenchmarkFig12Approx(b *testing.B) {
	f := fixture(b)
	algos := []struct {
		name string
		run  func(q sacsearch.V, k int) (*sacsearch.Result, error)
	}{
		{"AppInc", func(q sacsearch.V, k int) (*sacsearch.Result, error) { return f.searcher.AppInc(q, k) }},
		{"AppFast0.0", func(q sacsearch.V, k int) (*sacsearch.Result, error) { return f.searcher.AppFast(q, k, 0) }},
		{"AppFast0.5", func(q sacsearch.V, k int) (*sacsearch.Result, error) { return f.searcher.AppFast(q, k, 0.5) }},
		{"AppAcc0.5", func(q sacsearch.V, k int) (*sacsearch.Result, error) { return f.searcher.AppAcc(q, k, 0.5) }},
	}
	for _, a := range algos {
		for _, k := range []int{4, 7, 10, 13, 16} {
			b.Run(fmt.Sprintf("%s/k=%d", a.name, k), func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					q := f.query(i)
					if _, err := a.run(q, k); err != nil && err != sacsearch.ErrNoCommunity {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- Repeated-query throughput: the candidate cache -------------------------

// BenchmarkRepeatedCommunityQueries measures the dominant server/batch
// pattern — a stream of queries that keep landing in the same few
// communities — with the candidate cache on (default) and off. The cached
// path skips the per-query BFS + distance sort once the stream has touched a
// community; the acceptance bar for the cache is ≥2× on this workload.
func BenchmarkRepeatedCommunityQueries(b *testing.B) {
	f := fixture(b)
	for _, mode := range []struct {
		name   string
		cached bool
	}{{"Cached", true}, {"Uncached", false}} {
		b.Run(mode.name, func(b *testing.B) {
			s := sacsearch.NewSearcher(f.ds.Graph)
			s.SetCandidateCaching(mode.cached)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.AppFast(f.query(i), benchK, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 12(f-j): exact algorithms vs k ---------------------------------

// BenchmarkFig12Exact times Exact against Exact+ on queries whose candidate
// k-ĉore is small enough for the cubic enumeration (paper: Exact+ ≥4 orders
// of magnitude faster; here the gap is visible directly in ns/op).
func BenchmarkFig12Exact(b *testing.B) {
	f := exactWorkload(b)
	b.Run("Exact", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.queries[i%len(f.queries)]
			if _, err := f.searcher.Exact(q, benchK); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ExactPlus", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			q := f.queries[i%len(f.queries)]
			if _, err := f.searcher.ExactPlus(q, benchK, 1e-3); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// --- Figure 12(k-o): scalability vs vertex percentage ----------------------

// BenchmarkFig12Scalability times AppFast(0.5) on random vertex subsets of
// growing size (paper: near-linear scaling for the approximation
// algorithms).
func BenchmarkFig12Scalability(b *testing.B) {
	f := fixture(b)
	for _, pct := range []int{20, 40, 60, 80, 100} {
		b.Run(fmt.Sprintf("pct=%d", pct), func(b *testing.B) {
			sub, err := dataset.SubgraphPercent(f.ds, pct, benchSeed)
			if err != nil {
				b.Fatal(err)
			}
			qs := dataset.QueryWorkload(sub.Graph, benchK, benchQueries, benchSeed)
			if len(qs) == 0 {
				b.Skip("subset has no queries with core ≥ 4")
			}
			s := sacsearch.NewSearcher(sub.Graph)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := s.AppFast(qs[i%len(qs)], benchK, 0.5); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// --- Figure 13: dynamic spatial graph ---------------------------------------

// BenchmarkFig13Dynamic replays a synthetic check-in stream end to end
// (warm-up split, per-check-in SAC snapshots for the tracked movers, decay
// aggregation) and reports the mean CJS and CAO at η = 1 day.
func BenchmarkFig13Dynamic(b *testing.B) {
	f := fixture(b)
	ccfg := gen.DefaultCheckinConfig()
	ccfg.Days = 30
	checkins := gen.Checkins(f.ds.Graph, ccfg, benchSeed+100)
	movers := gen.SelectMovers(f.ds.Graph, checkins, 4, 5)
	if len(movers) == 0 {
		b.Skip("no movers in the bench stream")
	}
	var cjs, cao float64
	for i := 0; i < b.N; i++ {
		g := f.ds.Graph.Clone()
		s := sacsearch.NewSearcher(g)
		search := func(q sacsearch.V, k int) ([]sacsearch.V, sacsearch.Circle, error) {
			res, err := s.AppFast(q, k, 0.5)
			if err != nil {
				return nil, sacsearch.Circle{}, err
			}
			return res.Members, res.MCC, nil
		}
		timelines, err := sacsearch.Replay(g, checkins, movers, ccfg.Days*0.25, benchK, search)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range sacsearch.Decay(timelines, []float64{1}) {
			cjs, cao = p.CJS, p.CAO
		}
	}
	b.ReportMetric(cjs, "cjs@1d")
	b.ReportMetric(cao, "cao@1d")
}

// --- Figure 14: effect of εA on Exact+ --------------------------------------

// BenchmarkFig14ExactPlusEps sweeps εA and reports the mean |F1| next to the
// timing (paper: |F1| grows with εA, run time has a local minimum). The
// sweep starts at 1e-3: on this workload anchor refinement already
// dominates there (the U-curve's left wall), and 1e-4 would take minutes
// per op.
func BenchmarkFig14ExactPlusEps(b *testing.B) {
	f := fixture(b)
	for _, epsA := range []float64{1e-3, 5e-3, 1e-2, 5e-2, 1e-1} {
		b.Run(fmt.Sprintf("epsA=%.0e", epsA), func(b *testing.B) {
			var f1Sum float64
			for i := 0; i < b.N; i++ {
				res, err := f.searcher.ExactPlus(f.query(i), benchK, epsA)
				if err != nil {
					b.Fatal(err)
				}
				f1Sum += float64(res.Stats.F1Size)
			}
			b.ReportMetric(f1Sum/float64(b.N), "F1-size")
		})
	}
}

// --- Ablations (DESIGN.md §7) -----------------------------------------------

// BenchmarkAblationBinarySearch compares AppFast's index-aware bracket
// narrowing against plain midpoint bisection (same 2+εF guarantee).
func BenchmarkAblationBinarySearch(b *testing.B) {
	f := fixture(b)
	b.Run("IndexAware", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.searcher.AppFast(f.query(i), benchK, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("PureBisect", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := f.searcher.AppFastBisect(f.query(i), benchK, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationRangeQuery compares the uniform-grid circle range query
// against a linear scan over all vertex locations.
func BenchmarkAblationRangeQuery(b *testing.B) {
	f := fixture(b)
	g := f.ds.Graph
	grid := spatial.NewGridForGraph(g, 8)
	rng := rand.New(rand.NewSource(benchSeed))
	circles := make([]geom.Circle, 64)
	for i := range circles {
		circles[i] = geom.Circle{
			C: geom.Point{X: rng.Float64(), Y: rng.Float64()},
			R: 0.01 + 0.05*rng.Float64(),
		}
	}
	var dst []sacsearch.V
	b.Run("Grid", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			dst = grid.InCircle(circles[i%len(circles)], dst[:0])
		}
	})
	b.Run("LinearScan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			c := circles[i%len(circles)]
			dst = dst[:0]
			for v := 0; v < g.NumVertices(); v++ {
				if c.Contains(g.Loc(sacsearch.V(v))) {
					dst = append(dst, sacsearch.V(v))
				}
			}
		}
	})
}

// BenchmarkAblationAppAccPruning quantifies AppAcc's Pruning2 (inherited
// infeasible radii cutting quadtree subtrees).
func BenchmarkAblationAppAccPruning(b *testing.B) {
	f := fixture(b)
	run := func(b *testing.B, enabled bool) {
		f.searcher.SetPruning2(enabled)
		defer f.searcher.SetPruning2(true)
		var anchors float64
		for i := 0; i < b.N; i++ {
			res, err := f.searcher.AppAcc(f.query(i), benchK, 0.5)
			if err != nil {
				b.Fatal(err)
			}
			anchors += float64(res.Stats.AnchorsProcessed)
		}
		b.ReportMetric(anchors/float64(b.N), "anchors")
	}
	b.Run("Pruning2On", func(b *testing.B) { run(b, true) })
	b.Run("Pruning2Off", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationExactPlusAnnulus quantifies Exact+'s fixed-vertex annulus
// filter; with it off, the pair/triple enumeration runs over every candidate
// in O(q, 2γ).
func BenchmarkAblationExactPlusAnnulus(b *testing.B) {
	f := exactWorkload(b)
	run := func(b *testing.B, enabled bool) {
		f.searcher.SetAnnulusPruning(enabled)
		defer f.searcher.SetAnnulusPruning(true)
		var f1 float64
		for i := 0; i < b.N; i++ {
			q := f.queries[i%len(f.queries)]
			res, err := f.searcher.ExactPlus(q, benchK, 1e-3)
			if err != nil {
				b.Fatal(err)
			}
			f1 += float64(res.Stats.F1Size)
		}
		b.ReportMetric(f1/float64(b.N), "F1-size")
	}
	b.Run("AnnulusOn", func(b *testing.B) { run(b, true) })
	b.Run("AnnulusOff", func(b *testing.B) { run(b, false) })
}

// --- Harness smoke (exp registry) -------------------------------------------

// BenchmarkExpRegistry runs the cheapest registered experiment end to end so
// the harness itself is covered by `go test -bench`.
func BenchmarkExpRegistry(b *testing.B) {
	cfg := exp.DefaultConfig()
	cfg.Datasets = []string{benchDataset}
	cfg.Queries = 5
	for i := 0; i < b.N; i++ {
		if err := exp.Run("table5", cfg, discard{}); err != nil {
			b.Fatal(err)
		}
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
