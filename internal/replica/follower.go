package replica

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"sacsearch/internal/graph"
	"sacsearch/internal/snapshot"
	"sacsearch/internal/telemetry"
	"sacsearch/internal/wal"
)

// FollowerOptions configures a Follower. Leader is required; everything
// else has serving defaults.
type FollowerOptions struct {
	// Leader is the leader's replication address (host:port).
	Leader string
	// Dial overrides the connection factory (tests route through the fault
	// proxy here). Defaults to a 5-second TCP dial.
	Dial func(ctx context.Context, addr string) (net.Conn, error)
	// Engine tunes the snapshot engines built from received snapshots.
	// Persist and InitialSeq are owned by the follower and must be zero.
	Engine snapshot.Options
	// BackoffMin/BackoffMax bound the jittered reconnect backoff
	// (defaults 50 ms / 2 s).
	BackoffMin, BackoffMax time.Duration
	// Logger receives connection-level events (defaults to slog.Default()).
	Logger *slog.Logger
	// Metrics, when non-nil, exports replication lag, connection state and
	// resync/reconnect counters.
	Metrics *telemetry.Registry
}

func (o FollowerOptions) dial() func(context.Context, string) (net.Conn, error) {
	if o.Dial != nil {
		return o.Dial
	}
	d := &net.Dialer{Timeout: 5 * time.Second}
	return func(ctx context.Context, addr string) (net.Conn, error) {
		return d.DialContext(ctx, "tcp", addr)
	}
}

func (o FollowerOptions) backoffMin() time.Duration {
	if o.BackoffMin > 0 {
		return o.BackoffMin
	}
	return 50 * time.Millisecond
}

func (o FollowerOptions) backoffMax() time.Duration {
	if o.BackoffMax > 0 {
		return o.BackoffMax
	}
	return 2 * time.Second
}

func (o FollowerOptions) logger() *slog.Logger {
	if o.Logger != nil {
		return o.Logger
	}
	return slog.Default()
}

// FollowerStatus is one consistent observation of replication state, the
// raw material for /v1/health on a replica.
type FollowerStatus struct {
	// Connected reports a live stream; Synced reports that an initial state
	// transfer completed at some point (reads can be served, maybe stale).
	Connected bool `json:"connected"`
	Synced    bool `json:"synced"`
	// AppliedSeq is the last leader WAL seq applied locally; LeaderSeq the
	// newest one the leader has announced.
	AppliedSeq uint64 `json:"appliedSeq"`
	LeaderSeq  uint64 `json:"leaderSeq"`
	// LeaderEpoch is the epoch of the current (or last) leader session;
	// MaxEpochSeen the highest epoch ever observed.
	LeaderEpoch  uint64 `json:"leaderEpoch"`
	MaxEpochSeen uint64 `json:"maxEpochSeen"`
	// LagSeqs and LagSeconds quantify staleness: records not yet applied,
	// and local-clock time since this node was last provably caught up
	// (clock-skew-free: both endpoints of the measurement are local).
	LagSeqs    uint64  `json:"lagSeqs"`
	LagSeconds float64 `json:"lagSeconds"`
	// Resyncs counts full snapshot transfers, Reconnects completed dials.
	Resyncs    uint64 `json:"resyncs"`
	Reconnects uint64 `json:"reconnects"`
}

// Follower maintains a replication session to a leader: it bootstraps via
// snapshot transfer, tails the WAL stream verifying every CRC and the seq
// chain, applies records onto its own snapshot engine, and reconnects with
// jittered backoff — resuming from the last applied seq when the leader can
// still serve it, or re-syncing from a fresh snapshot when it cannot.
type Follower struct {
	opt FollowerOptions

	eng     atomic.Pointer[snapshot.Engine]
	applied atomic.Uint64 // last applied leader seq

	// appliedEpoch is the epoch the applied seq numbering belongs to (0 =
	// force snapshot on next connect); maxEpoch the fencing high-water mark.
	appliedEpoch atomic.Uint64
	maxEpoch     atomic.Uint64

	leaderSeq    atomic.Uint64
	connected    atomic.Bool
	synced       atomic.Bool
	lastCaughtUp atomic.Int64 // local-clock UnixNano of the last provably-caught-up moment
	resyncs      atomic.Uint64
	reconnects   atomic.Uint64

	mu   sync.Mutex
	conn net.Conn // live connection, closed by Close to unblock reads

	// onPublish is the post-publish hook stamped onto every engine this
	// follower builds — the standing-query layer's feed. See SetOnPublish.
	onPublish atomic.Pointer[func(*snapshot.Snap, []snapshot.AppliedEvent)]

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}
}

// NewFollower starts replicating from opt.Leader. The follower serves no
// state until the first sync completes (Engine returns nil before then);
// Close stops replication but leaves the last engine readable.
func NewFollower(opt FollowerOptions) (*Follower, error) {
	if opt.Leader == "" {
		return nil, errors.New("replica: follower needs a leader address")
	}
	if opt.Engine.Persist != nil || opt.Engine.InitialSeq != 0 {
		return nil, errors.New("replica: Options.Engine.Persist/InitialSeq are owned by the follower")
	}
	f := &Follower{opt: opt, done: make(chan struct{})}
	f.ctx, f.cancel = context.WithCancel(context.Background())
	if reg := opt.Metrics; reg != nil {
		reg.GaugeFunc("sac_replica_lag_seqs", "Leader WAL records not yet applied locally.",
			func() float64 { return float64(f.Status().LagSeqs) })
		reg.GaugeFunc("sac_replica_lag_seconds", "Seconds since this replica was last provably caught up.",
			func() float64 { return f.Status().LagSeconds })
		reg.GaugeFunc("sac_replica_connected", "1 when a replication stream is live.",
			func() float64 { return boolGauge(f.connected.Load()) })
		reg.GaugeFunc("sac_replica_synced", "1 once an initial state transfer completed.",
			func() float64 { return boolGauge(f.synced.Load()) })
		reg.CounterFunc("sac_replica_resyncs_total", "Full snapshot transfers received.",
			f.resyncs.Load)
		reg.CounterFunc("sac_replica_reconnects_total", "Replication sessions established.",
			f.reconnects.Load)
	}
	go f.run()
	return f, nil
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// Engine returns the engine holding the replicated state, nil before the
// first sync. The pointer changes across re-syncs; callers grab it per
// request, not once.
func (f *Follower) Engine() *snapshot.Engine { return f.eng.Load() }

// Current returns the latest replicated snapshot, nil before the first sync.
func (f *Follower) Current() *snapshot.Snap {
	if e := f.eng.Load(); e != nil {
		return e.Current()
	}
	return nil
}

// SetOnPublish installs fn as the post-publish hook on the current engine
// and every engine a future re-sync builds, so standing queries keep
// flowing across engine swaps. After each re-sync swap, fn additionally
// fires once with the new engine's current snapshot and a nil event list —
// the change history across a swap is unknown, so subscribers must treat it
// as a full invalidation (snapshot sequence numbers also restart at 1
// across swaps). Like Engine.SetOnPublish, fn runs on writer critical paths
// and must only hand work off.
func (f *Follower) SetOnPublish(fn func(*snapshot.Snap, []snapshot.AppliedEvent)) {
	if fn == nil {
		f.onPublish.Store(nil)
	} else {
		f.onPublish.Store(&fn)
	}
	if eng := f.eng.Load(); eng != nil {
		eng.SetOnPublish(fn)
		if fn != nil {
			fn(eng.Current(), nil)
		}
	}
}

// Status returns a point-in-time view of replication state.
func (f *Follower) Status() FollowerStatus {
	st := FollowerStatus{
		Connected:    f.connected.Load(),
		Synced:       f.synced.Load(),
		AppliedSeq:   f.applied.Load(),
		LeaderSeq:    f.leaderSeq.Load(),
		LeaderEpoch:  f.appliedEpoch.Load(),
		MaxEpochSeen: f.maxEpoch.Load(),
		Resyncs:      f.resyncs.Load(),
		Reconnects:   f.reconnects.Load(),
	}
	if st.LeaderSeq > st.AppliedSeq {
		st.LagSeqs = st.LeaderSeq - st.AppliedSeq
	}
	if st.Synced && (st.LagSeqs > 0 || !st.Connected) {
		if at := f.lastCaughtUp.Load(); at > 0 {
			st.LagSeconds = time.Since(time.Unix(0, at)).Seconds()
		}
	}
	return st
}

// Close stops replication and waits for the session goroutine. The last
// synced engine stays readable afterwards.
func (f *Follower) Close() {
	f.cancel()
	f.mu.Lock()
	if f.conn != nil {
		f.conn.Close()
	}
	f.mu.Unlock()
	<-f.done
}

// run is the reconnect loop: each session attempt either streams until an
// error or tells us the leader is unusable; backoff is exponential with
// ±50% jitter so a herd of followers does not reconnect in lockstep.
func (f *Follower) run() {
	defer close(f.done)
	logger := f.opt.logger()
	backoff := f.opt.backoffMin()
	for {
		if f.ctx.Err() != nil {
			return
		}
		streamed, err := f.session()
		if f.ctx.Err() != nil {
			return
		}
		if err != nil {
			logger.Warn("replica session ended", "leader", f.opt.Leader, "err", err)
		}
		if streamed {
			backoff = f.opt.backoffMin() // the leader was healthy; start over gently
		}
		sleep := time.Duration(float64(backoff) * (0.5 + rand.Float64()))
		select {
		case <-f.ctx.Done():
			return
		case <-time.After(sleep):
		}
		if backoff *= 2; backoff > f.opt.backoffMax() {
			backoff = f.opt.backoffMax()
		}
	}
}

// session runs one connection lifecycle. streamed reports whether the
// handshake completed and records/heartbeats flowed — the signal that the
// leader is alive and backoff should reset.
func (f *Follower) session() (streamed bool, err error) {
	conn, err := f.opt.dial()(f.ctx, f.opt.Leader)
	if err != nil {
		return false, fmt.Errorf("dial: %w", err)
	}
	f.mu.Lock()
	f.conn = conn
	f.mu.Unlock()
	defer func() {
		f.connected.Store(false)
		f.mu.Lock()
		f.conn = nil
		f.mu.Unlock()
		conn.Close()
	}()

	conn.SetDeadline(time.Now().Add(10 * time.Second))
	if err := writeHandshake(conn, handshake{
		AfterSeq:     f.applied.Load(),
		AppliedEpoch: f.appliedEpoch.Load(),
		MaxEpochSeen: f.maxEpoch.Load(),
	}); err != nil {
		return false, fmt.Errorf("handshake: %w", err)
	}
	resp, err := readResponse(conn)
	if err != nil {
		return false, fmt.Errorf("handshake response: %w", err)
	}
	if resp.Epoch > f.maxEpoch.Load() {
		f.maxEpoch.Store(resp.Epoch)
	}
	switch {
	case resp.Status == statusRejected:
		return false, fmt.Errorf("leader rejected us (leader epoch %d, ours %d)", resp.Epoch, f.maxEpoch.Load())
	case resp.Epoch < f.maxEpoch.Load():
		// A deposed leader still answering: refuse its (possibly forked)
		// history and keep looking for the real one.
		return false, fmt.Errorf("leader epoch %d is behind the highest seen (%d); refusing stream", resp.Epoch, f.maxEpoch.Load())
	}

	hbInterval := time.Duration(resp.HeartbeatMillis) * time.Millisecond
	if hbInterval <= 0 {
		hbInterval = 500 * time.Millisecond
	}

	if resp.Status == statusSnapshot {
		conn.SetReadDeadline(time.Now().Add(time.Minute))
		if err := f.receiveSnapshot(conn, resp); err != nil {
			return false, fmt.Errorf("snapshot transfer: %w", err)
		}
	}
	f.appliedEpoch.Store(resp.Epoch)
	f.reconnects.Add(1)
	f.connected.Store(true)

	// Acks ride the same connection back to the leader: one as soon as the
	// session is established (so a tail-resumed but idle session still
	// reports its position) and one after every applied batch.
	var ackBuf []byte
	sendAck := func() error {
		ackBuf = encodeAck(ackBuf, f.applied.Load())
		conn.SetWriteDeadline(time.Now().Add(5 * time.Second))
		err := writeMessage(conn, msgAck, ackBuf)
		conn.SetWriteDeadline(time.Time{})
		return err
	}
	if err := sendAck(); err != nil {
		return true, fmt.Errorf("initial ack: %w", err)
	}

	// Stream loop: every message refreshes the liveness deadline; missing
	// ~4 heartbeats means the leader (or the path to it) is gone.
	readDeadline := 4 * hbInterval
	if readDeadline < 2*time.Second {
		readDeadline = 2 * time.Second
	}
	var buf []byte
	for {
		conn.SetReadDeadline(time.Now().Add(readDeadline))
		typ, payload, err := readMessage(conn, buf)
		if err != nil {
			return true, fmt.Errorf("stream read at seq %d: %w", f.applied.Load(), err)
		}
		buf = payload[:0]
		switch typ {
		case msgRecords:
			if err := f.applyRecords(payload); err != nil {
				return true, err
			}
			if err := sendAck(); err != nil {
				return true, fmt.Errorf("ack at seq %d: %w", f.applied.Load(), err)
			}
		case msgHeartbeat:
			hb, err := decodeHeartbeat(payload)
			if err != nil {
				return true, err
			}
			if hb.LastSeq > f.leaderSeq.Load() {
				f.leaderSeq.Store(hb.LastSeq)
			}
			if hb.Epoch > f.maxEpoch.Load() {
				f.maxEpoch.Store(hb.Epoch)
			}
			if hb.Epoch >= resp.Epoch {
				// A live leader can bump its own epoch without restarting its
				// WAL numbering, so the tail stays valid — adopt it.
				f.appliedEpoch.Store(hb.Epoch)
			}
		default:
			return true, fmt.Errorf("unknown stream message type %d", typ)
		}
		if f.applied.Load() >= f.leaderSeq.Load() {
			f.lastCaughtUp.Store(time.Now().UnixNano())
		}
	}
}

// receiveSnapshot reads the length-prefixed graph, builds a fresh engine
// around it and swaps it in, retiring the previous engine.
func (f *Follower) receiveSnapshot(conn net.Conn, resp response) error {
	var lenBuf [8]byte
	if _, err := io.ReadFull(conn, lenBuf[:]); err != nil {
		return err
	}
	n := binary.LittleEndian.Uint64(lenBuf[:])
	g, err := graph.ReadBinary(io.LimitReader(conn, int64(n)))
	if err != nil {
		return err
	}
	eng := snapshot.New(g, f.opt.Engine)
	if fn := f.onPublish.Load(); fn != nil {
		eng.SetOnPublish(*fn)
	}
	if old := f.eng.Swap(eng); old != nil {
		old.Close()
	}
	if fn := f.onPublish.Load(); fn != nil {
		// The swap invalidates every derived answer: no event list can
		// describe it, so notify with nil (= re-evaluate everything).
		(*fn)(eng.Current(), nil)
	}
	f.applied.Store(resp.StartSeq)
	if resp.StartSeq > f.leaderSeq.Load() {
		f.leaderSeq.Store(resp.StartSeq)
	}
	// A snapshot is the leader's state as of StartSeq: provably caught up to
	// that point, right now, on our own clock.
	f.lastCaughtUp.Store(time.Now().UnixNano())
	f.resyncs.Add(1)
	f.synced.Store(true)
	return nil
}

// applyRecords decodes one msgRecords payload — concatenated wal frames —
// verifying each frame's CRC and the seq chain, and applies them in order.
// Any violation aborts the session; a divergence that a tail resume cannot
// heal (apply failure, no-op replicated mutation) additionally forces the
// next session into snapshot mode rather than trusting local state.
func (f *Follower) applyRecords(payload []byte) error {
	eng := f.eng.Load()
	if eng == nil {
		return errors.New("records before any snapshot")
	}
	for off := 0; off < len(payload); {
		n, rec, ok := wal.DecodeFrame(payload[off:])
		if !ok {
			return fmt.Errorf("undecodable record frame at byte %d of message", off)
		}
		off += n
		want := f.applied.Load() + 1
		if rec.Seq != want {
			return fmt.Errorf("record seq %d, want %d", rec.Seq, want)
		}
		if err := f.applyOne(eng, rec); err != nil {
			// Local state can no longer be trusted to extend: re-bootstrap.
			f.appliedEpoch.Store(0)
			return fmt.Errorf("applying seq %d: %w (forcing snapshot re-sync)", rec.Seq, err)
		}
		f.applied.Store(rec.Seq)
		if rec.Seq > f.leaderSeq.Load() {
			f.leaderSeq.Store(rec.Seq)
		}
	}
	return nil
}

func (f *Follower) applyOne(eng *snapshot.Engine, r wal.Record) error {
	switch r.Kind {
	case wal.KindCheckin:
		return eng.CheckIn(f.ctx, r.V, r.Loc)
	case wal.KindEdge:
		changed, err := eng.UpdateEdge(f.ctx, r.U, r.W, r.Insert)
		if err != nil {
			return err
		}
		if !changed {
			// The leader only logs state-changing events; a replicated no-op
			// means our state diverged from the prefix it applies to.
			return fmt.Errorf("replicated edge (%d,%d,insert=%v) was a no-op locally", r.U, r.W, r.Insert)
		}
		return nil
	default:
		return fmt.Errorf("unknown record kind %d", r.Kind)
	}
}
