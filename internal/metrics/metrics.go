// Package metrics implements the community-quality measures of Section 5:
//
//	radius  — the MCC radius of the community (Section 5.2.2)
//	distPr  — average pairwise member distance (Section 5.2.2)
//	CJS     — community Jaccard similarity, Equation 9
//	CAO     — community area overlap, Equation 10
//
// plus the summary statistics the experiment tables report.
package metrics

import (
	"math"
	"math/rand"
	"sort"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// Radius returns the MCC radius of the members' locations.
func Radius(g *graph.Graph, members []graph.V) float64 {
	return g.MCCOf(members).R
}

// distPrSampleCap bounds the number of pairs evaluated exactly; beyond it,
// DistPr samples. Global communities can span half the graph, and the exact
// O(c²) sum would dominate experiment time without changing the headline.
const distPrSampleCap = 200000

// DistPr returns the average pairwise Euclidean distance between members.
// Exact when the pair count is at most distPrSampleCap; otherwise it is a
// uniform sample mean over that many pairs (deterministic in seed).
func DistPr(g *graph.Graph, members []graph.V, seed int64) float64 {
	n := len(members)
	if n < 2 {
		return 0
	}
	pairs := n * (n - 1) / 2
	if pairs <= distPrSampleCap {
		sum := 0.0
		for i := 1; i < n; i++ {
			pi := g.Loc(members[i])
			for j := 0; j < i; j++ {
				sum += pi.Dist(g.Loc(members[j]))
			}
		}
		return sum / float64(pairs)
	}
	rnd := rand.New(rand.NewSource(seed))
	sum := 0.0
	for s := 0; s < distPrSampleCap; s++ {
		i := rnd.Intn(n)
		j := rnd.Intn(n - 1)
		if j >= i {
			j++
		}
		sum += g.Loc(members[i]).Dist(g.Loc(members[j]))
	}
	return sum / float64(distPrSampleCap)
}

// CJS is the community Jaccard similarity |A∩B| / |A∪B| (Equation 9).
func CJS(a, b []graph.V) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	if len(a) == 0 || len(b) == 0 {
		return 0
	}
	set := make(map[graph.V]bool, len(a))
	for _, v := range a {
		set[v] = true
	}
	inter := 0
	union := len(set)
	seen := make(map[graph.V]bool, len(b))
	for _, v := range b {
		if seen[v] {
			continue
		}
		seen[v] = true
		if set[v] {
			inter++
		} else {
			union++
		}
	}
	return float64(inter) / float64(union)
}

// CAO is the community area overlap (Equation 10): the Jaccard similarity of
// the areas of the two communities' MCCs.
func CAO(a, b geom.Circle) float64 {
	return geom.OverlapRatio(a, b)
}

// Mean returns the arithmetic mean, 0 for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median, 0 for empty input.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Percentile returns the p-th percentile (nearest-rank), 0 for empty input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p / 100 * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// GeoMean returns the geometric mean of positive values, ignoring
// non-positive entries; 0 when none qualify. Ratio aggregates use it.
func GeoMean(xs []float64) float64 {
	sum, n := 0.0, 0
	for _, x := range xs {
		if x > 0 {
			sum += math.Log(x)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(sum / float64(n))
}
