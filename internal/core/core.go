// Package core implements the paper's primary contribution: spatial-aware
// community (SAC) search over large spatial graphs (Problem 1).
//
// Given a spatial graph G, a query vertex q and a degree threshold k, SAC
// search returns a connected subgraph containing q whose vertices all have
// degree ≥ k inside the subgraph, covered by the minimum covering circle
// (MCC) of smallest radius among all such subgraphs. The package provides
// the five algorithms of Section 4 plus the θ-SAC variant of Section 3:
//
//	Exact     — Algorithm 1, ratio 1,      O(m·n³)
//	AppInc    — Algorithm 2, ratio 2,      O(m·n)
//	AppFast   — Algorithm 3, ratio 2+εF,   O(m·min{n, log 1/εF})
//	AppAcc    — Algorithm 4, ratio 1+εA,   O(m/εA² · min{n, log 1/εA})
//	ExactPlus — Algorithm 5, ratio 1,      AppAcc + O(m·|F1|³)
//	ThetaSAC  — Global [29] restricted to the circle O(q, θ)
//
// Structure cohesiveness is pluggable: the default is the minimum-degree
// k-core metric; the k-truss and k-clique metrics (Section 3 "Remarks") are
// available via StructureKTruss and StructureKClique.
package core

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/kclique"
	"sacsearch/internal/kcore"
	"sacsearch/internal/ktruss"
)

// ErrNoCommunity is returned when the query vertex belongs to no connected
// structure (k-core, k-truss or k-clique community) of the requested order,
// so no feasible solution exists.
var ErrNoCommunity = errors.New("core: query vertex has no feasible community")

// Structure selects the structure-cohesiveness metric (Section 3, Remarks).
type Structure int

const (
	// StructureKCore requires every community vertex to have degree ≥ k
	// within the community (Definition 1; the paper's default).
	StructureKCore Structure = iota
	// StructureKTruss requires every community edge to close ≥ k-2
	// triangles within the community.
	StructureKTruss
	// StructureKClique requires the community to be a k-clique community:
	// a union of k-cliques connected through shared (k-1)-vertex overlaps
	// (clique percolation).
	StructureKClique
)

func (s Structure) String() string {
	switch s {
	case StructureKCore:
		return "k-core"
	case StructureKTruss:
		return "k-truss"
	case StructureKClique:
		return "k-clique"
	default:
		return fmt.Sprintf("Structure(%d)", int(s))
	}
}

// Stats records per-query work counters; they feed the efficiency figures
// and the ablation benchmarks.
type Stats struct {
	CandidateSize     int           // |X|: size of q's k-ĉore
	FeasibilityChecks int           // restricted peeling invocations
	CirclesExamined   int           // pair/triple circles evaluated (Exact, Exact+)
	AnchorsProcessed  int           // AppAcc anchors binary-searched
	AnchorsPruned     int           // AppAcc anchors cut by Pruning1/Pruning2
	BinaryIters       int           // binary-search iterations (AppFast, AppAcc)
	F1Size            int           // |F1| potential fixed vertices (Exact+)
	Elapsed           time.Duration // wall-clock time of the query
}

// Result is the outcome of one SAC query.
type Result struct {
	Query   graph.V
	K       int
	Members []graph.V   // community vertices, ascending
	MCC     geom.Circle // minimum covering circle of Members
	// Delta is the radius δ of the smallest q-centered circle known to
	// contain a feasible solution (AppInc, AppFast, AppAcc); it is the MCC
	// radius itself for the exact algorithms and θ for ThetaSAC.
	Delta float64
	Stats Stats
}

// Radius returns the MCC radius of the community (the quantity the paper's
// approximation ratios are defined over).
func (r *Result) Radius() float64 { return r.MCC.R }

// Size returns the number of community members.
func (r *Result) Size() int { return len(r.Members) }

// Contains reports whether v is a community member.
func (r *Result) Contains(v graph.V) bool {
	i := sort.Search(len(r.Members), func(i int) bool { return r.Members[i] >= v })
	return i < len(r.Members) && r.Members[i] == v
}

// Searcher runs SAC queries against one graph. It precomputes the core
// decomposition (O(m), once) and owns the scratch space reused across
// queries, so it is cheap to query repeatedly but not safe for concurrent
// use; use Clone for parallel query streams.
type Searcher struct {
	g         *graph.Graph
	structure Structure

	cores []int32          // k-core numbers, computed eagerly
	truss map[uint64]int32 // k-truss numbers, computed lazily

	peeler    *kcore.Peeler
	trussChk  *ktruss.Checker
	cliqueChk *kclique.Checker

	// Scratch buffers shared by the algorithms.
	distBuf []float64
	vertBuf []graph.V
	subBuf  []graph.V
	ptsBuf  []geom.Point
	inX     *graph.Marker
	visited *graph.Marker

	// noPruning2 disables AppAcc's inherited-infeasibility pruning; it
	// exists only so the ablation benchmarks can quantify what Pruning2
	// buys (Pruning1 stays on — without it the quadtree frontier is
	// unbounded).
	noPruning2 bool
	// noAnnulus disables ExactPlus's fixed-vertex annulus filter (F1 falls
	// back to every candidate within O(q, 2γ)); ablation use only.
	noAnnulus bool

	stats Stats // counters for the query in flight
}

// SetPruning2 toggles AppAcc's Pruning2 (on by default). Ablation use only.
func (s *Searcher) SetPruning2(enabled bool) { s.noPruning2 = !enabled }

// SetAnnulusPruning toggles ExactPlus's fixed-vertex annulus filter (on by
// default). With it off, ExactPlus enumerates pairs and triples over the
// whole candidate set inside O(q, 2γ), which is Exact restricted by
// Corollary 2 only. Ablation use only.
func (s *Searcher) SetAnnulusPruning(enabled bool) { s.noAnnulus = !enabled }

// NewSearcher creates a Searcher with the default k-core structure metric.
func NewSearcher(g *graph.Graph) *Searcher {
	return &Searcher{
		g:         g,
		structure: StructureKCore,
		cores:     kcore.Decompose(g),
		peeler:    kcore.NewPeeler(g),
		inX:       graph.NewMarker(g.NumVertices()),
		visited:   graph.NewMarker(g.NumVertices()),
	}
}

// NewSearcherWithStructure creates a Searcher using the given structure
// cohesiveness metric.
func NewSearcherWithStructure(g *graph.Graph, st Structure) *Searcher {
	s := NewSearcher(g)
	s.structure = st
	switch st {
	case StructureKTruss:
		s.truss = ktruss.Decompose(g)
		s.trussChk = ktruss.NewChecker(g)
	case StructureKClique:
		s.cliqueChk = kclique.NewChecker(g)
	}
	return s
}

// Clone returns an independent Searcher over the same graph, sharing the
// immutable decompositions but not the scratch space, for use from another
// goroutine.
func (s *Searcher) Clone() *Searcher {
	n := s.g.NumVertices()
	c := &Searcher{
		g:         s.g,
		structure: s.structure,
		cores:     s.cores,
		truss:     s.truss,
		peeler:    kcore.NewPeeler(s.g),
		inX:       graph.NewMarker(n),
		visited:   graph.NewMarker(n),
	}
	switch s.structure {
	case StructureKTruss:
		c.trussChk = ktruss.NewChecker(s.g)
	case StructureKClique:
		c.cliqueChk = kclique.NewChecker(s.g)
	}
	return c
}

// Graph returns the graph the searcher operates on.
func (s *Searcher) Graph() *graph.Graph { return s.g }

// CoreNumber returns the k-core number of v.
func (s *Searcher) CoreNumber(v graph.V) int { return int(s.cores[v]) }

// checkQuery validates q and k.
func (s *Searcher) checkQuery(q graph.V, k int) error {
	if q < 0 || int(q) >= s.g.NumVertices() {
		return fmt.Errorf("core: query vertex %d out of range [0,%d)", q, s.g.NumVertices())
	}
	if k < 0 {
		return fmt.Errorf("core: k = %d must be non-negative", k)
	}
	return nil
}

// trivialK reports whether k is below the threshold where the community is
// just q (k = 0) or q plus its nearest neighbor (Section 4.1), and builds
// that result. handled is true when the query was resolved here.
func (s *Searcher) trivialK(q graph.V, k int) (res *Result, handled bool, err error) {
	limit := 1 // k-core: k=1 pairs with the nearest neighbor
	switch s.structure {
	case StructureKTruss:
		limit = 2 // a 2-truss is just an edge
	case StructureKClique:
		if k == 1 {
			// q alone is a 1-clique: the optimal community has radius 0.
			return s.buildResult(q, k, []graph.V{q}, 0), true, nil
		}
		limit = 2 // a 2-clique is just an edge
	}
	if k == 0 {
		return s.buildResult(q, k, []graph.V{q}, 0), true, nil
	}
	if k <= limit {
		nn := s.g.NearestNeighbor(q)
		if nn < 0 {
			return nil, true, ErrNoCommunity
		}
		return s.buildResult(q, k, []graph.V{q, nn}, s.g.Dist(q, nn)), true, nil
	}
	return nil, false, nil
}

// feasible returns the maximal connected structure (k-core or k-truss)
// containing q within G[S], or nil. The returned slice is scratch-owned.
func (s *Searcher) feasible(S []graph.V, q graph.V, k int) []graph.V {
	s.stats.FeasibilityChecks++
	switch s.structure {
	case StructureKTruss:
		return s.trussChk.KTrussWithin(S, q, k)
	case StructureKClique:
		return s.cliqueChk.KCliqueWithin(S, q, k)
	default:
		return s.peeler.KCoreWithin(S, q, k)
	}
}

// minQueryNeighbors is the minimum number of q's neighbors any feasible
// community must contain: k for k-core, k-1 for k-truss (each incident edge
// closes k-2 triangles) and k-clique (q sits in at least one k-clique).
func (s *Searcher) minQueryNeighbors(k int) int {
	if s.structure == StructureKTruss || s.structure == StructureKClique {
		return k - 1
	}
	return k
}

// candidateSet is the vertex list X of q's connected k-structure, sorted by
// ascending distance from q (Algorithm 1, lines 2-3). Every feasible
// solution is a subset of X, so all algorithms operate inside it.
type candidateSet struct {
	verts []graph.V // ascending by dist from q; verts[0] == q
	dists []float64 // parallel to verts
}

// prefixWithin returns the prefix of verts whose distance from q is ≤ r
// (with geometric tolerance).
func (c *candidateSet) prefixWithin(r float64) []graph.V {
	i := sort.SearchFloat64s(c.dists, r+geom.Eps)
	return c.verts[:i]
}

// nextDistAfter returns the smallest candidate distance strictly greater
// than r, or -1 when none exists.
func (c *candidateSet) nextDistAfter(r float64) float64 {
	i := sort.SearchFloat64s(c.dists, r+geom.Eps)
	if i >= len(c.dists) {
		return -1
	}
	return c.dists[i]
}

// maxDist returns the largest candidate distance.
func (c *candidateSet) maxDist() float64 { return c.dists[len(c.dists)-1] }

// candidates builds the candidate set for (q, k), or ErrNoCommunity.
func (s *Searcher) candidates(q graph.V, k int) (*candidateSet, error) {
	var members []graph.V
	switch s.structure {
	case StructureKTruss:
		members = ktruss.CommunityOf(s.g, s.truss, q, k)
	case StructureKClique:
		members = kclique.CommunityOf(s.g, q, k)
	default:
		members = kcore.CommunityOf(s.g, s.cores, q, k)
	}
	if members == nil {
		return nil, ErrNoCommunity
	}
	cs := &candidateSet{
		verts: members,
		dists: make([]float64, len(members)),
	}
	qp := s.g.Loc(q)
	for i, v := range cs.verts {
		cs.dists[i] = qp.Dist(s.g.Loc(v))
	}
	sort.Sort(byDist{cs})
	s.stats.CandidateSize = len(cs.verts)
	return cs, nil
}

type byDist struct{ c *candidateSet }

func (b byDist) Len() int           { return len(b.c.verts) }
func (b byDist) Less(i, j int) bool { return b.c.dists[i] < b.c.dists[j] }
func (b byDist) Swap(i, j int) {
	b.c.dists[i], b.c.dists[j] = b.c.dists[j], b.c.dists[i]
	b.c.verts[i], b.c.verts[j] = b.c.verts[j], b.c.verts[i]
}

// buildResult copies members, computes their MCC and snapshots the stats.
func (s *Searcher) buildResult(q graph.V, k int, members []graph.V, delta float64) *Result {
	ms := make([]graph.V, len(members))
	copy(ms, members)
	sort.Slice(ms, func(i, j int) bool { return ms[i] < ms[j] })
	s.ptsBuf = s.g.Points(ms, s.ptsBuf[:0])
	res := &Result{
		Query:   q,
		K:       k,
		Members: ms,
		MCC:     geom.MCC(s.ptsBuf),
		Delta:   delta,
		Stats:   s.stats,
	}
	return res
}

// begin resets the per-query stats and returns the start time.
func (s *Searcher) begin() time.Time {
	s.stats = Stats{}
	return time.Now()
}

// finish stamps elapsed time onto the result.
func (s *Searcher) finish(res *Result, start time.Time) *Result {
	if res != nil {
		res.Stats.Elapsed = time.Since(start)
	}
	return res
}

// maxDistFrom returns the largest distance from p to any member's location.
func (s *Searcher) maxDistFrom(p geom.Point, members []graph.V) float64 {
	var best float64
	for _, v := range members {
		if d := p.Dist(s.g.Loc(v)); d > best {
			best = d
		}
	}
	return best
}
