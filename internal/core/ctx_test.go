package core

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"time"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// countdownCtx is a context whose Err starts failing after fuse calls. It
// measures exactly what the cancellation contract promises: every Err call
// is one loop-boundary check, so the number of calls after the fuse blows is
// the work an algorithm did after cancellation fired.
type countdownCtx struct {
	fuse  int64
	calls atomic.Int64
	done  chan struct{}
}

func newCountdown(fuse int64) *countdownCtx {
	return &countdownCtx{fuse: fuse, done: make(chan struct{})}
}

func (c *countdownCtx) Deadline() (time.Time, bool) { return time.Time{}, false }
func (c *countdownCtx) Done() <-chan struct{}       { return c.done }
func (c *countdownCtx) Value(any) any               { return nil }
func (c *countdownCtx) Err() error {
	if c.calls.Add(1) > c.fuse {
		return context.Canceled
	}
	return nil
}

// ctxTestGraph is one dense 48-vertex community (circulant over a small
// disc), big enough that every algorithm runs many loop iterations at k=4.
func ctxTestGraph() *graph.Graph {
	const n = 48
	rnd := rand.New(rand.NewSource(5))
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		ang := 2 * math.Pi * float64(v) / n
		r := 0.05 + 0.04*rnd.Float64()
		b.SetLoc(graph.V(v), geom.Point{X: 0.5 + r*math.Cos(ang), Y: 0.5 + r*math.Sin(ang)})
		for d := 1; d <= 5; d++ {
			b.AddEdge(graph.V(v), graph.V((v+d)%n))
		}
	}
	return b.Build()
}

type ctxAlgo struct {
	name string
	run  func(s *Searcher, ctx context.Context) (*Result, error)
}

func ctxAlgos() []ctxAlgo {
	return []ctxAlgo{
		{"ExactCtx", func(s *Searcher, ctx context.Context) (*Result, error) { return s.ExactCtx(ctx, 0, 4) }},
		{"AppIncCtx", func(s *Searcher, ctx context.Context) (*Result, error) { return s.AppIncCtx(ctx, 0, 4) }},
		{"AppFastCtx", func(s *Searcher, ctx context.Context) (*Result, error) { return s.AppFastCtx(ctx, 0, 4, 0) }},
		{"AppAccCtx", func(s *Searcher, ctx context.Context) (*Result, error) { return s.AppAccCtx(ctx, 0, 4, 0.3) }},
		{"ExactPlusCtx", func(s *Searcher, ctx context.Context) (*Result, error) { return s.ExactPlusCtx(ctx, 0, 4, 0.3) }},
	}
}

// TestCtxCancellationBounded fires the context mid-run and asserts each
// algorithm (a) returns ErrCanceled wrapping the context error, and (b)
// performs at most one further loop-boundary check after the firing one —
// the latch in Searcher.canceled.
func TestCtxCancellationBounded(t *testing.T) {
	g := ctxTestGraph()
	for _, a := range ctxAlgos() {
		s := NewSearcher(g)

		// Dry run on a fuse that never blows: counts the algorithm's total
		// loop-boundary checks, proving the canceled run below fires mid-run
		// rather than after completion.
		dry := newCountdown(math.MaxInt64)
		if _, err := a.run(s, dry); err != nil {
			t.Fatalf("%s dry run: %v", a.name, err)
		}
		total := dry.calls.Load()
		if total < 4 {
			t.Fatalf("%s: only %d loop-boundary checks; graph too small for a mid-run cancel", a.name, total)
		}

		fuse := total / 2
		cd := newCountdown(fuse)
		res, err := a.run(s, cd)
		if res != nil || !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s canceled: res=%v err=%v, want ErrCanceled", a.name, res, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("%s canceled: %v does not wrap context.Canceled", a.name, err)
		}
		if after := cd.calls.Load() - fuse; after > 1 {
			t.Fatalf("%s: %d loop-boundary checks after the context fired, want ≤ 1", a.name, after)
		}

		// The searcher is immediately reusable: the next query must succeed
		// with no residue from the canceled one.
		if _, err := a.run(s, context.Background()); err != nil {
			t.Fatalf("%s after cancel: %v", a.name, err)
		}
	}
}

// TestCtxPreCanceled covers the already-dead-context path for every
// algorithm including θ-SAC (whose single O(m) phases make a mid-run fuse
// meaningless).
func TestCtxPreCanceled(t *testing.T) {
	g := ctxTestGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	algos := append(ctxAlgos(), ctxAlgo{"ThetaSACCtx",
		func(s *Searcher, c context.Context) (*Result, error) { return s.ThetaSACCtx(c, 0, 4, 0.2) }})
	for _, a := range algos {
		s := NewSearcher(g)
		res, err := a.run(s, ctx)
		if res != nil || !errors.Is(err, ErrCanceled) {
			t.Fatalf("%s pre-canceled: res=%v err=%v", a.name, res, err)
		}
	}
}

// TestCtxDeadlineExceededIsWrapped pins the errors.Is contract for
// deadlines, the shape HTTP handlers check.
func TestCtxDeadlineExceededIsWrapped(t *testing.T) {
	g := ctxTestGraph()
	s := NewSearcher(g)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := s.ExactCtx(ctx, 0, 4)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestCtxBackgroundUnchanged pins that the plain entry points still answer
// queries and that a background context costs no Err calls at all (the
// nil-Done fast path).
func TestCtxBackgroundUnchanged(t *testing.T) {
	g := ctxTestGraph()
	s := NewSearcher(g)
	res, err := s.Exact(0, 4)
	if err != nil || len(res.Members) == 0 {
		t.Fatalf("Exact: %v %v", res, err)
	}
	res2, err := s.ExactCtx(context.Background(), 0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != len(res2.Members) || res.MCC != res2.MCC {
		t.Fatalf("ExactCtx(Background) diverged: %v vs %v", res.Members, res2.Members)
	}
}
