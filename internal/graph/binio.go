package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"

	"sacsearch/internal/geom"
)

// Binary graph format. Text edge lists (io.go) parse in O(m) string splits;
// for the multi-million-vertex graphs the paper targets (Foursquare: 2.1M
// vertices, 8.6M edges) reload time is dominated by parsing, so the binary
// format serializes the CSR arrays directly:
//
//	magic    "SACGRPH1"                     (8 bytes)
//	n, m     uint64 little-endian           (vertex and undirected edge counts)
//	offsets  (n+1) × int32 little-endian    (CSR row offsets)
//	adj      2m × int32 little-endian       (CSR adjacency, both directions)
//	locs     2n × float64 little-endian     (x, y per vertex)
//	crc      uint32 little-endian           (IEEE CRC-32 of everything above)
//
// ReadBinary validates the checksum and the structural invariants (monotone
// offsets, sorted in-range adjacency rows, finite coordinates) so a
// truncated or corrupted file fails loudly instead of producing a graph that
// crashes algorithms later.

var binMagic = [8]byte{'S', 'A', 'C', 'G', 'R', 'P', 'H', '1'}

// maxBinVertices bounds n on read so a corrupted header cannot trigger a
// multi-terabyte allocation.
const maxBinVertices = 1 << 31

// WriteBinary serializes g to w in the binary CSR format. Adjacency rows go
// through Neighbors, which merges the delta layer, so a graph mid-churn
// serializes its current edge set without being mutated — WriteBinary is a
// pure reader and may run under the same read lock as queries.
func WriteBinary(w io.Writer, g *Graph) error {
	crc := crc32.NewIEEE()
	bw := bufio.NewWriterSize(io.MultiWriter(w, crc), 1<<20)

	if _, err := bw.Write(binMagic[:]); err != nil {
		return fmt.Errorf("graph: writing magic: %w", err)
	}
	var u64 [8]byte
	writeU64 := func(v uint64) error {
		binary.LittleEndian.PutUint64(u64[:], v)
		_, err := bw.Write(u64[:])
		return err
	}
	n := g.NumVertices()
	if err := writeU64(uint64(n)); err != nil {
		return fmt.Errorf("graph: writing n: %w", err)
	}
	if err := writeU64(uint64(g.m)); err != nil {
		return fmt.Errorf("graph: writing m: %w", err)
	}

	var b4 [4]byte
	writeI32 := func(v int32) error {
		binary.LittleEndian.PutUint32(b4[:], uint32(v))
		_, err := bw.Write(b4[:])
		return err
	}
	// Offsets are recomputed from the merged adjacency rather than dumped
	// from g.offsets, which goes stale for patched vertices.
	off := int32(0)
	if err := writeI32(off); err != nil {
		return fmt.Errorf("graph: writing offsets: %w", err)
	}
	for v := 0; v < n; v++ {
		off += int32(g.Degree(V(v)))
		if err := writeI32(off); err != nil {
			return fmt.Errorf("graph: writing offsets: %w", err)
		}
	}
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(V(v)) {
			if err := writeI32(u); err != nil {
				return fmt.Errorf("graph: writing adjacency: %w", err)
			}
		}
	}
	var b8 [8]byte
	writeF64 := func(v float64) error {
		binary.LittleEndian.PutUint64(b8[:], math.Float64bits(v))
		_, err := bw.Write(b8[:])
		return err
	}
	for _, p := range g.locs {
		if err := writeF64(p.X); err != nil {
			return fmt.Errorf("graph: writing locations: %w", err)
		}
		if err := writeF64(p.Y); err != nil {
			return fmt.Errorf("graph: writing locations: %w", err)
		}
	}
	// The checksum covers everything buffered so far; flush the payload
	// into the hash before reading its sum, then write the trailer to w
	// only (the trailer does not checksum itself).
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("graph: flushing payload: %w", err)
	}
	binary.LittleEndian.PutUint32(b4[:], crc.Sum32())
	if _, err := w.Write(b4[:]); err != nil {
		return fmt.Errorf("graph: writing checksum: %w", err)
	}
	return nil
}

// crcReader tees everything read into a CRC-32.
type crcReader struct {
	r   io.Reader
	crc hash.Hash32
}

func (c *crcReader) Read(p []byte) (int, error) {
	n, err := c.r.Read(p)
	if n > 0 {
		c.crc.Write(p[:n])
	}
	return n, err
}

// ReadBinary deserializes a graph written by WriteBinary, verifying the
// checksum and structural invariants.
func ReadBinary(r io.Reader) (*Graph, error) {
	cr := &crcReader{r: bufio.NewReaderSize(r, 1<<20), crc: crc32.NewIEEE()}

	var magic [8]byte
	if _, err := io.ReadFull(cr, magic[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if magic != binMagic {
		return nil, fmt.Errorf("graph: bad magic %q (not a sacsearch binary graph)", magic)
	}
	var hdr [16]byte
	if _, err := io.ReadFull(cr, hdr[:]); err != nil {
		return nil, fmt.Errorf("graph: reading header: %w", err)
	}
	n := binary.LittleEndian.Uint64(hdr[0:8])
	m := binary.LittleEndian.Uint64(hdr[8:16])
	if n > maxBinVertices {
		return nil, fmt.Errorf("graph: header claims %d vertices (max %d)", n, maxBinVertices)
	}
	if m > uint64(n)*uint64(n) {
		return nil, fmt.Errorf("graph: header claims %d edges for %d vertices", m, n)
	}
	// Offsets are int32, so the adjacency array (2m entries) must index
	// within int32 — a header past that bound cannot have been written by
	// WriteBinary and would otherwise overflow the counts below.
	if m > (1<<31-1)/2 {
		return nil, fmt.Errorf("graph: header claims %d edges (max %d)", m, (1<<31-1)/2)
	}

	// Decoder allocations are guarded by actual input, not the header: a
	// hostile header claiming 2^31 vertices over a 50-byte stream must fail
	// at the stream's real end having allocated at most the bytes that were
	// really there, never the terabytes the header promised.
	readI32s := func(count int, what string) ([]int32, error) {
		initial := count
		if initial > 1<<20 {
			initial = 1 << 20
		}
		out := make([]int32, 0, initial)
		buf := make([]byte, 4*1024)
		for done := 0; done < count; {
			chunk := len(buf) / 4
			if rem := count - done; rem < chunk {
				chunk = rem
			}
			if _, err := io.ReadFull(cr, buf[:4*chunk]); err != nil {
				return nil, fmt.Errorf("graph: reading %s: %w", what, err)
			}
			for i := 0; i < chunk; i++ {
				out = append(out, int32(binary.LittleEndian.Uint32(buf[4*i:])))
			}
			done += chunk
		}
		return out, nil
	}

	offsets, err := readI32s(int(n)+1, "offsets")
	if err != nil {
		return nil, err
	}
	if offsets[0] != 0 {
		return nil, fmt.Errorf("graph: offsets[0] = %d, want 0", offsets[0])
	}
	for i := 1; i < len(offsets); i++ {
		if offsets[i] < offsets[i-1] {
			return nil, fmt.Errorf("graph: offsets not monotone at %d", i)
		}
	}
	if uint64(offsets[n]) != 2*m {
		return nil, fmt.Errorf("graph: offsets[n] = %d, want 2m = %d", offsets[n], 2*m)
	}

	adj, err := readI32s(int(2*m), "adjacency")
	if err != nil {
		return nil, err
	}
	for v := 0; v < int(n); v++ {
		row := adj[offsets[v]:offsets[v+1]]
		for i, u := range row {
			if u < 0 || uint64(u) >= n {
				return nil, fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
			if i > 0 && row[i-1] >= u {
				return nil, fmt.Errorf("graph: adjacency row of %d not strictly sorted", v)
			}
		}
	}

	initialLocs := int(n)
	if initialLocs > 1<<19 {
		initialLocs = 1 << 19 // same header-skepticism as readI32s
	}
	locs := make([]geom.Point, 0, initialLocs)
	{
		buf := make([]byte, 16*1024)
		for done := 0; done < int(n); {
			chunk := len(buf) / 16
			if rem := int(n) - done; rem < chunk {
				chunk = rem
			}
			if _, err := io.ReadFull(cr, buf[:16*chunk]); err != nil {
				return nil, fmt.Errorf("graph: reading locations: %w", err)
			}
			for i := 0; i < chunk; i++ {
				x := math.Float64frombits(binary.LittleEndian.Uint64(buf[16*i:]))
				y := math.Float64frombits(binary.LittleEndian.Uint64(buf[16*i+8:]))
				if math.IsNaN(x) || math.IsInf(x, 0) || math.IsNaN(y) || math.IsInf(y, 0) {
					return nil, fmt.Errorf("graph: vertex %d has non-finite location", done+i)
				}
				locs = append(locs, geom.Point{X: x, Y: y})
			}
			done += chunk
		}
	}

	wantSum := cr.crc.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(cr.r, trailer[:]); err != nil {
		return nil, fmt.Errorf("graph: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(trailer[:]); got != wantSum {
		return nil, fmt.Errorf("graph: checksum mismatch (file %08x, computed %08x)", got, wantSum)
	}

	return &Graph{n: int(n), offsets: offsets, adj: adj, locs: locs, m: int(m)}, nil
}
