package replica

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"testing"
	"time"

	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/store"
)

// discard swallows connection-level log lines: reconnect storms are the
// point of these tests, not noise worth printing.
var discard = slog.New(slog.NewTextHandler(io.Discard, nil))

// testGraph mirrors the store suite's deterministic fixture: 8 spatial
// cliques of 6 vertices with bridges, so every vertex has a community for
// k ≤ 4 and a reference copy can be rebuilt bit-identically.
func testGraph() *graph.Graph {
	rnd := rand.New(rand.NewSource(17))
	const nc, cs = 8, 6
	b := graph.NewBuilder(nc * cs)
	for c := 0; c < nc; c++ {
		cx, cy := rnd.Float64(), rnd.Float64()
		for i := 0; i < cs; i++ {
			v := graph.V(c*cs + i)
			b.SetLoc(v, geom.Point{
				X: cx + (rnd.Float64()-0.5)*0.05,
				Y: cy + (rnd.Float64()-0.5)*0.05,
			})
			for j := 0; j < i; j++ {
				b.AddEdge(v, graph.V(c*cs+j))
			}
		}
	}
	for c := 0; c < nc-1; c++ {
		b.AddEdge(graph.V(c*6), graph.V((c+1)*6))
	}
	return b.Build()
}

type churnEvent struct {
	checkin bool
	v       graph.V
	loc     geom.Point
	u, w    graph.V
	insert  bool
}

// driveChurn applies n deterministic mixed events through the leader store,
// returning the state-changing ones in WAL order.
func driveChurn(t *testing.T, st *store.Store, seed int64, n int) []churnEvent {
	t.Helper()
	ctx := context.Background()
	rnd := rand.New(rand.NewSource(seed))
	nv := st.Current().Graph().NumVertices()
	var changed []churnEvent
	for i := 0; i < n; i++ {
		if rnd.Intn(3) < 2 {
			ev := churnEvent{checkin: true, v: graph.V(rnd.Intn(nv)),
				loc: geom.Point{X: rnd.Float64(), Y: rnd.Float64()}}
			if err := st.CheckIn(ctx, ev.v, ev.loc); err != nil {
				t.Fatalf("check-in %d: %v", i, err)
			}
			changed = append(changed, ev)
		} else {
			ev := churnEvent{u: graph.V(rnd.Intn(nv)), w: graph.V(rnd.Intn(nv)), insert: rnd.Intn(2) == 0}
			if ev.u == ev.w {
				continue
			}
			did, err := st.UpdateEdge(ctx, ev.u, ev.w, ev.insert)
			if err != nil {
				t.Fatalf("edge %d: %v", i, err)
			}
			if did {
				changed = append(changed, ev)
			}
		}
	}
	return changed
}

// refGraph rebuilds the graph the first n state-changing events produce.
func refGraph(t *testing.T, events []churnEvent, n int) *graph.Graph {
	t.Helper()
	g := testGraph()
	for i := 0; i < n; i++ {
		ev := events[i]
		if ev.checkin {
			g.SetLoc(ev.v, ev.loc)
			continue
		}
		var did bool
		if ev.insert {
			did = g.AddEdge(ev.u, ev.w)
		} else {
			did = g.RemoveEdge(ev.u, ev.w)
		}
		if !did {
			t.Fatalf("reference replay: event %d (%+v) was a no-op", i, ev)
		}
	}
	return g
}

func graphsEqual(t *testing.T, label string, a, b *graph.Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("%s: size (%d,%d) vs (%d,%d)", label,
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(graph.V(v)), b.Neighbors(graph.V(v))
		if len(na) != len(nb) {
			t.Fatalf("%s: vertex %d degree %d vs %d", label, v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("%s: vertex %d adjacency differs", label, v)
			}
		}
		if a.Loc(graph.V(v)) != b.Loc(graph.V(v)) {
			t.Fatalf("%s: vertex %d location differs", label, v)
		}
	}
}

// answersEqualRegistry pins got's answers to want's for EVERY registered
// algorithm, driving each through the unified Search entry point with
// default parameters (required ones pinned to a fixed value).
func answersEqualRegistry(t *testing.T, label string, got, want *core.Searcher, qv graph.V, k int) {
	t.Helper()
	ctx := context.Background()
	for _, spec := range core.Algorithms() {
		q := core.Query{Algo: spec.Name, Q: qv, K: k}
		for _, p := range spec.Params {
			if p.Required {
				if err := q.SetParam(p.Name, 0.3); err != nil {
					t.Fatalf("%s: %s: %v", label, spec.Name, err)
				}
			}
		}
		rg, eg := got.Search(ctx, q)
		rw, ew := want.Search(ctx, q)
		if (eg == nil) != (ew == nil) {
			t.Fatalf("%s: %s(%d,%d): follower err=%v, reference err=%v", label, spec.Name, qv, k, eg, ew)
		}
		if eg != nil {
			if errors.Is(eg, core.ErrNoCommunity) && errors.Is(ew, core.ErrNoCommunity) {
				continue
			}
			t.Fatalf("%s: %s(%d,%d): errors %v vs %v", label, spec.Name, qv, k, eg, ew)
		}
		if len(rg.Members) != len(rw.Members) {
			t.Fatalf("%s: %s(%d,%d): %d members vs %d", label, spec.Name, qv, k, len(rg.Members), len(rw.Members))
		}
		for i := range rg.Members {
			if rg.Members[i] != rw.Members[i] {
				t.Fatalf("%s: %s(%d,%d): members differ: %v vs %v", label, spec.Name, qv, k, rg.Members, rw.Members)
			}
		}
		if rg.MCC != rw.MCC {
			t.Fatalf("%s: %s(%d,%d): MCC %+v vs %+v", label, spec.Name, qv, k, rg.MCC, rw.MCC)
		}
	}
}

// diffCheckFollower pins the follower's replicated state to a fresh
// single-threaded searcher over the reference graph.
func diffCheckFollower(t *testing.T, label string, f *Follower, ref *graph.Graph) {
	t.Helper()
	snap := f.Current()
	if snap == nil {
		t.Fatalf("%s: follower has no snapshot", label)
	}
	graphsEqual(t, label, snap.Graph(), ref)
	w := snap.Get()
	defer snap.Put(w)
	cold := core.NewSearcher(ref)
	cold.SetCandidateCaching(false)
	for _, q := range []graph.V{0, 7, 20, 41} {
		answersEqualRegistry(t, label, w, cold, q, 3)
	}
}

func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// startLeader opens a store on a fresh dir and serves replication for it on
// a loopback listener.
func startLeader(t *testing.T, opt store.Options) (*store.Store, *Shipper) {
	t.Helper()
	if opt.Init == nil {
		opt.Init = testGraph()
	}
	if opt.CheckpointInterval == 0 {
		opt.CheckpointInterval = -1
	}
	st, err := store.Open(t.TempDir(), opt)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	sh := NewShipper(st, ln, ShipperOptions{
		Heartbeat: 20 * time.Millisecond, Poll: time.Millisecond, Logger: discard})
	t.Cleanup(func() { sh.Close(); st.Close() })
	return st, sh
}

func startFollower(t *testing.T, addr string) *Follower {
	t.Helper()
	f, err := NewFollower(FollowerOptions{
		Leader:     addr,
		BackoffMin: 5 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond,
		Logger:     discard,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f
}

func caughtUp(st *store.Store, f *Follower) func() bool {
	return func() bool {
		s := f.Status()
		return s.Synced && s.AppliedSeq == st.WalLastSeq()
	}
}

func TestFollowerBootstrapAndLiveTail(t *testing.T) {
	st, sh := startLeader(t, store.Options{})
	f := startFollower(t, sh.Addr().String())

	waitFor(t, 5*time.Second, "initial sync", func() bool { return f.Status().Synced })
	diffCheckFollower(t, "bootstrap", f, testGraph())

	events := driveChurn(t, st, 42, 120)
	waitFor(t, 5*time.Second, "live tail catch-up", caughtUp(st, f))
	diffCheckFollower(t, "live tail", f, refGraph(t, events, len(events)))

	s := f.Status()
	if s.Resyncs != 1 {
		t.Fatalf("resyncs = %d, want exactly 1 (bootstrap only)", s.Resyncs)
	}
	if s.LagSeqs != 0 {
		t.Fatalf("caught-up follower reports lagSeqs %d", s.LagSeqs)
	}
	if s.LeaderEpoch != st.Epoch() {
		t.Fatalf("follower epoch %d, leader %d", s.LeaderEpoch, st.Epoch())
	}
}

func TestFollowerResumesAfterDisconnect(t *testing.T) {
	st, sh := startLeader(t, store.Options{})

	// Every session dies after 6 KB — enough for the ~2 KB bootstrap
	// snapshot, then repeatedly mid-stream; replication must still converge
	// by resuming from the last applied seq (tail, not snapshot, once
	// synced).
	proxy, err := NewProxy(sh.Addr().String(), func(i int) Fault {
		return Fault{CutAt: 6 << 10}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer proxy.Close()

	f := startFollower(t, proxy.Addr())
	waitFor(t, 5*time.Second, "initial sync", func() bool { return f.Status().Synced })

	var events []churnEvent
	for round := 0; round < 4; round++ {
		events = append(events, driveChurn(t, st, int64(100+round), 60)...)
		waitFor(t, 10*time.Second, "catch-up after disconnects", caughtUp(st, f))
	}
	diffCheckFollower(t, "resume", f, refGraph(t, events, len(events)))

	s := f.Status()
	if s.Reconnects < 2 {
		t.Fatalf("reconnects = %d, want ≥ 2 (cuts forced reconnection)", s.Reconnects)
	}
	if s.Resyncs != 1 {
		t.Fatalf("resyncs = %d, want 1: reconnects within one epoch must tail-resume, not re-snapshot", s.Resyncs)
	}
}

func TestFollowerResyncsAcrossTruncatedHistory(t *testing.T) {
	// Tiny segments + aggressive checkpointing: while the follower is
	// disconnected the leader truncates the WAL past the follower's
	// position, so resume must fall back to a snapshot — never skip.
	st, sh := startLeader(t, store.Options{SegmentBytes: 1 << 10, CheckpointInterval: -1})
	f := startFollower(t, sh.Addr().String())
	waitFor(t, 5*time.Second, "initial sync", func() bool { return f.Status().Synced })
	events := driveChurn(t, st, 7, 40)
	waitFor(t, 5*time.Second, "pre-partition catch-up", caughtUp(st, f))

	// Partition: close the shipper, keep churning, checkpoint + truncate.
	sh.Close()
	events = append(events, driveChurn(t, st, 8, 200)...)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	events = append(events, driveChurn(t, st, 9, 200)...)
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Heal the partition on the same address.
	ln, err := net.Listen("tcp", sh.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	sh2 := NewShipper(st, ln, ShipperOptions{Heartbeat: 20 * time.Millisecond, Poll: time.Millisecond, Logger: discard})
	defer sh2.Close()

	waitFor(t, 10*time.Second, "post-truncation catch-up", caughtUp(st, f))
	diffCheckFollower(t, "truncated history", f, refGraph(t, events, len(events)))
	if s := f.Status(); s.Resyncs < 2 {
		t.Fatalf("resyncs = %d, want ≥ 2 (truncation must force a snapshot re-sync)", s.Resyncs)
	}
}

func TestFencingRejectsDeposedLeaderWrites(t *testing.T) {
	st, sh := startLeader(t, store.Options{})
	f := startFollower(t, sh.Addr().String())
	waitFor(t, 5*time.Second, "initial sync", func() bool { return f.Status().Synced })

	// A promoted node announces its higher epoch over the replication plane.
	newEpoch := st.Epoch() + 1
	if _, err := FenceLeader(sh.Addr().String(), newEpoch, 5*time.Second); err != nil {
		t.Fatalf("FenceLeader: %v", err)
	}
	if !st.Fenced() || st.FencedBy() != newEpoch {
		t.Fatalf("leader fenced=%v by=%d, want true/%d", st.Fenced(), st.FencedBy(), newEpoch)
	}
	// The fenced ex-leader's writes are rejected, not forked.
	if err := st.CheckIn(context.Background(), 0, geom.Point{X: 0.9, Y: 0.9}); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("fenced leader check-in: err = %v, want ErrFenced", err)
	}
	if _, err := st.UpdateEdge(context.Background(), 0, 13, true); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("fenced leader edge update: err = %v, want ErrFenced", err)
	}
	// Its shipper stops feeding followers: the stream ends and reconnects
	// are rejected, leaving the follower disconnected but still serving the
	// state it has.
	waitFor(t, 5*time.Second, "follower drops the fenced leader", func() bool {
		return !f.Status().Connected
	})
	if f.Current() == nil {
		t.Fatal("follower lost its readable state after the leader was fenced")
	}
}

func TestFollowerRefusesStaleLeader(t *testing.T) {
	st, sh := startLeader(t, store.Options{})
	f := startFollower(t, sh.Addr().String())
	waitFor(t, 5*time.Second, "initial sync", func() bool { return f.Status().Synced })

	// The follower hears of a newer epoch (e.g. a promotion elsewhere). Its
	// very next handshake carries that maxEpochSeen, which both fences the
	// old leader and makes the follower refuse its stream.
	f.maxEpoch.Store(st.Epoch() + 3)
	f.mu.Lock()
	if f.conn != nil {
		f.conn.Close() // force a reconnect carrying the new epoch
	}
	f.mu.Unlock()

	waitFor(t, 5*time.Second, "old leader fenced via handshake", st.Fenced)
	waitFor(t, 5*time.Second, "follower stays off the stale leader", func() bool {
		return !f.Status().Connected
	})
	if err := st.CheckIn(context.Background(), 1, geom.Point{X: 0.4, Y: 0.4}); !errors.Is(err, store.ErrFenced) {
		t.Fatalf("stale leader accepted a write: %v", err)
	}
}

// TestShipperAcks pins the ack channel: the leader's Status must see each
// live follower and track the slowest follower's applied position — the
// replication-lag signal /v1/health surfaces.
func TestShipperAcks(t *testing.T) {
	st, sh := startLeader(t, store.Options{})
	if s := sh.Status(); s.Followers != 0 || s.MinAckedSeq != 0 {
		t.Fatalf("idle shipper status = %+v, want zero", s)
	}

	f1 := startFollower(t, sh.Addr().String())
	waitFor(t, 5*time.Second, "one follower streaming", func() bool {
		return sh.Status().Followers == 1
	})

	driveChurn(t, st, 99, 80)
	waitFor(t, 5*time.Second, "follower acks the full log", func() bool {
		return sh.Status().MinAckedSeq == st.WalLastSeq()
	})
	waitFor(t, 5*time.Second, "follower caught up", caughtUp(st, f1))

	// A second follower joins behind: MinAckedSeq must never overreport —
	// it can only be <= the slowest follower's applied seq.
	f2 := startFollower(t, sh.Addr().String())
	waitFor(t, 5*time.Second, "two followers streaming", func() bool {
		return sh.Status().Followers == 2
	})
	driveChurn(t, st, 100, 40)
	waitFor(t, 5*time.Second, "both followers ack the full log", func() bool {
		s := sh.Status()
		return s.Followers == 2 && s.MinAckedSeq == st.WalLastSeq()
	})
	a1, a2 := f1.Status().AppliedSeq, f2.Status().AppliedSeq
	if min := sh.Status().MinAckedSeq; min > a1 || min > a2 {
		t.Fatalf("MinAckedSeq %d overreports follower positions (%d, %d)", min, a1, a2)
	}

	f2.Close()
	waitFor(t, 5*time.Second, "closed follower leaves the status", func() bool {
		return sh.Status().Followers == 1
	})
}
