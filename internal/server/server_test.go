package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// testGraph plants a handful of spatial cliques; every vertex has a tight
// community for k up to 4.
func testGraph() *graph.Graph {
	rnd := rand.New(rand.NewSource(7))
	const nc, cs = 6, 6
	b := graph.NewBuilder(nc * cs)
	for c := 0; c < nc; c++ {
		cx, cy := rnd.Float64(), rnd.Float64()
		for i := 0; i < cs; i++ {
			v := graph.V(c*cs + i)
			b.SetLoc(v, geom.Point{
				X: cx + (rnd.Float64()-0.5)*0.05,
				Y: cy + (rnd.Float64()-0.5)*0.05,
			})
			for j := 0; j < i; j++ {
				b.AddEdge(v, graph.V(c*cs+j))
			}
		}
	}
	b.AddEdge(0, 6)
	b.AddEdge(0, 12)
	return b.Build()
}

func newTestServer(t *testing.T) (*httptest.Server, *graph.Graph) {
	t.Helper()
	g := testGraph()
	ts := httptest.NewServer(New("test", g))
	t.Cleanup(ts.Close)
	return ts, g
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHealth(t *testing.T) {
	ts, g := newTestServer(t)
	var out struct {
		Status   string `json:"status"`
		Dataset  string `json:"dataset"`
		Vertices int    `json:"vertices"`
		Edges    int    `json:"edges"`
	}
	resp := getJSON(t, ts.URL+"/api/health", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Status != "ok" || out.Dataset != "test" || out.Vertices != g.NumVertices() || out.Edges != g.NumEdges() {
		t.Fatalf("health = %+v", out)
	}
}

func TestAlgorithms(t *testing.T) {
	ts, _ := newTestServer(t)
	var out []map[string]any
	resp := getJSON(t, ts.URL+"/api/algorithms", &out)
	if resp.StatusCode != http.StatusOK || len(out) != 6 {
		t.Fatalf("algorithms: status=%d n=%d", resp.StatusCode, len(out))
	}
}

func TestVertex(t *testing.T) {
	ts, g := newTestServer(t)
	var out struct {
		ID     graph.V `json:"id"`
		X      float64 `json:"x"`
		Y      float64 `json:"y"`
		Degree int     `json:"degree"`
		Core   int     `json:"core"`
	}
	resp := getJSON(t, ts.URL+"/api/vertex/3", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.ID != 3 || out.Degree != g.Degree(3) || out.Core < 4 {
		t.Fatalf("vertex = %+v", out)
	}
	if resp := getJSON(t, ts.URL+"/api/vertex/9999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown vertex status = %d", resp.StatusCode)
	}
	if resp := getJSON(t, ts.URL+"/api/vertex/abc", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("garbage vertex status = %d", resp.StatusCode)
	}
}

func TestQueryAlgorithms(t *testing.T) {
	ts, g := newTestServer(t)
	s := core.NewSearcher(g)
	for _, algo := range []string{"", "appfast", "appinc", "appacc", "exact+", "exact"} {
		resp, body := postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 1, K: 4, Algo: algo})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("algo %q: status %d body %s", algo, resp.StatusCode, body)
		}
		var out QueryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("algo %q: %v", algo, err)
		}
		if len(out.Members) == 0 || out.MCC.R < 0 {
			t.Fatalf("algo %q: response %+v", algo, out)
		}
		// Every returned community must contain q and be feasible.
		found := false
		for _, v := range out.Members {
			if v == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("algo %q: community misses q: %v", algo, out.Members)
		}
	}
	// θ-SAC with an explicit radius.
	want, err := s.ThetaSAC(1, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 1, K: 4, Algo: "theta", Theta: 0.2})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("theta: status %d body %s", resp.StatusCode, body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Members) != len(want.Members) {
		t.Fatalf("theta members = %v, want %v", out.Members, want.Members)
	}
}

func TestQueryErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	// Unknown algorithm.
	resp, _ := postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 1, K: 4, Algo: "bogus"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bogus algo status = %d", resp.StatusCode)
	}
	// θ without a radius.
	resp, _ = postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 1, K: 4, Algo: "theta"})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("theta without radius status = %d", resp.StatusCode)
	}
	// No community for absurd k.
	resp, _ = postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 1, K: 40})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("k=40 status = %d", resp.StatusCode)
	}
	// Malformed JSON.
	r, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status = %d", r.StatusCode)
	}
	// Wrong method.
	if resp := getJSON(t, ts.URL+"/api/query", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /api/query status = %d", resp.StatusCode)
	}
}

func TestBatch(t *testing.T) {
	ts, _ := newTestServer(t)
	req := BatchRequest{Workers: 2}
	for _, q := range []graph.V{1, 7, 13, 1} { // includes a duplicate
		req.Queries = append(req.Queries, struct {
			Q graph.V `json:"q"`
			K int     `json:"k"`
		}{q, 4})
	}
	resp, body := postJSON(t, ts.URL+"/api/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d body %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 4 {
		t.Fatalf("items = %d, want 4", len(out.Items))
	}
	for i, it := range out.Items {
		if it.Error != "" {
			t.Fatalf("item %d: %s", i, it.Error)
		}
		if len(it.Members) == 0 {
			t.Fatalf("item %d: empty members", i)
		}
	}
	// Batch with a failing query keeps the others.
	req.Queries[1].Q = 9999
	resp, body = postJSON(t, ts.URL+"/api/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch status = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Items[1].Error == "" {
		t.Fatal("invalid query did not error")
	}
	if out.Items[0].Error != "" || out.Items[2].Error != "" {
		t.Fatal("valid queries infected by the failing one")
	}
	// Empty batch.
	resp, _ = postJSON(t, ts.URL+"/api/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d", resp.StatusCode)
	}
	// Unknown algorithm.
	req2 := BatchRequest{Algo: "bogus"}
	req2.Queries = req.Queries[:1]
	resp, _ = postJSON(t, ts.URL+"/api/batch", req2)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus batch algo status = %d", resp.StatusCode)
	}
}

func TestCheckinMovesCommunities(t *testing.T) {
	ts, g := newTestServer(t)
	// Query before the move.
	_, body := postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 0, K: 4, Algo: "exact+"})
	var before QueryResponse
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}
	// Teleport q across the square.
	resp, _ := postJSON(t, ts.URL+"/api/checkin", CheckinRequest{V: 0, X: 0.99, Y: 0.99})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkin status = %d", resp.StatusCode)
	}
	if loc := g.Loc(0); loc.X != 0.99 || loc.Y != 0.99 {
		t.Fatalf("location not applied: %v", loc)
	}
	// The community's MCC must now be different (q moved away from its
	// clique, so the circle covering clique+q grows).
	_, body = postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 0, K: 4, Algo: "exact+"})
	var after QueryResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.MCC.R <= before.MCC.R {
		t.Fatalf("MCC radius did not grow after teleport: %v -> %v", before.MCC.R, after.MCC.R)
	}
	// Unknown vertex.
	resp, _ = postJSON(t, ts.URL+"/api/checkin", CheckinRequest{V: 9999, X: 0.5, Y: 0.5})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown checkin status = %d", resp.StatusCode)
	}
}

// Concurrent queries and check-ins must not race (run with -race) and every
// response must be a valid community.
func TestConcurrentQueriesAndCheckins(t *testing.T) {
	ts, _ := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if w%2 == 0 {
					q := graph.V((w*10 + i) % 36)
					buf, _ := json.Marshal(QueryRequest{Q: q, K: 4})
					resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(buf))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
						errs <- fmt.Errorf("query status %d", resp.StatusCode)
						return
					}
				} else {
					buf, _ := json.Marshal(CheckinRequest{V: graph.V(i % 36), X: 0.5, Y: 0.5})
					resp, err := http.Post(ts.URL+"/api/checkin", "application/json", bytes.NewReader(buf))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
