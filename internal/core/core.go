// Package core implements the paper's primary contribution: spatial-aware
// community (SAC) search over large spatial graphs (Problem 1).
//
// Given a spatial graph G, a query vertex q and a degree threshold k, SAC
// search returns a connected subgraph containing q whose vertices all have
// degree ≥ k inside the subgraph, covered by the minimum covering circle
// (MCC) of smallest radius among all such subgraphs. The package provides
// the five algorithms of Section 4 plus the θ-SAC variant of Section 3:
//
//	Exact     — Algorithm 1, ratio 1,      O(m·n³)
//	AppInc    — Algorithm 2, ratio 2,      O(m·n)
//	AppFast   — Algorithm 3, ratio 2+εF,   O(m·min{n, log 1/εF})
//	AppAcc    — Algorithm 4, ratio 1+εA,   O(m/εA² · min{n, log 1/εA})
//	ExactPlus — Algorithm 5, ratio 1,      AppAcc + O(m·|F1|³)
//	ThetaSAC  — Global [29] restricted to the circle O(q, θ)
//
// Structure cohesiveness is pluggable: the default is the minimum-degree
// k-core metric; the k-truss and k-clique metrics (Section 3 "Remarks") are
// available via StructureKTruss and StructureKClique.
package core

import (
	"context"
	"errors"
	"fmt"
	"slices"
	"sort"
	"time"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/kclique"
	"sacsearch/internal/kcore"
	"sacsearch/internal/ktruss"
	"sacsearch/internal/spatial"
)

// ErrNoCommunity is returned when the query vertex belongs to no connected
// structure (k-core, k-truss or k-clique community) of the requested order,
// so no feasible solution exists.
var ErrNoCommunity = errors.New("core: query vertex has no feasible community")

// Structure selects the structure-cohesiveness metric (Section 3, Remarks).
type Structure int

const (
	// StructureKCore requires every community vertex to have degree ≥ k
	// within the community (Definition 1; the paper's default).
	StructureKCore Structure = iota
	// StructureKTruss requires every community edge to close ≥ k-2
	// triangles within the community.
	StructureKTruss
	// StructureKClique requires the community to be a k-clique community:
	// a union of k-cliques connected through shared (k-1)-vertex overlaps
	// (clique percolation).
	StructureKClique
)

func (s Structure) String() string {
	switch s {
	case StructureKCore:
		return "k-core"
	case StructureKTruss:
		return "k-truss"
	case StructureKClique:
		return "k-clique"
	default:
		return fmt.Sprintf("Structure(%d)", int(s))
	}
}

// Stats records per-query work counters; they feed the efficiency figures
// and the ablation benchmarks.
type Stats struct {
	CandidateSize     int           // |X|: size of q's k-ĉore
	FeasibilityChecks int           // restricted peeling invocations
	CirclesExamined   int           // pair/triple circles evaluated (Exact, Exact+)
	AnchorsProcessed  int           // AppAcc anchors binary-searched
	AnchorsPruned     int           // AppAcc anchors cut by Pruning1/Pruning2
	BinaryIters       int           // binary-search iterations (AppFast, AppAcc)
	F1Size            int           // |F1| potential fixed vertices (Exact+)
	CacheHits         int           // candidate sets served from the membership cache
	Elapsed           time.Duration // wall-clock time of the query
}

// Result is the outcome of one SAC query.
type Result struct {
	Query   graph.V
	K       int
	Members []graph.V   // community vertices, ascending
	MCC     geom.Circle // minimum covering circle of Members
	// Delta is the radius δ of the smallest q-centered circle known to
	// contain a feasible solution (AppInc, AppFast, AppAcc); it is the MCC
	// radius itself for the exact algorithms and θ for ThetaSAC.
	Delta float64
	Stats Stats
}

// Radius returns the MCC radius of the community (the quantity the paper's
// approximation ratios are defined over).
func (r *Result) Radius() float64 { return r.MCC.R }

// Size returns the number of community members.
func (r *Result) Size() int { return len(r.Members) }

// Contains reports whether v is a community member.
func (r *Result) Contains(v graph.V) bool {
	i := sort.Search(len(r.Members), func(i int) bool { return r.Members[i] >= v })
	return i < len(r.Members) && r.Members[i] == v
}

// Searcher runs SAC queries against one graph. It precomputes the core
// decomposition (O(m), once) and owns the scratch space reused across
// queries, so it is cheap to query repeatedly but not safe for concurrent
// use; use Clone for parallel query streams.
type Searcher struct {
	g         *graph.Graph
	structure Structure

	cores []int32          // k-core numbers, computed eagerly
	truss map[uint64]int32 // k-truss numbers, computed lazily

	// maint keeps cores current across topology updates routed through
	// ApplyEdgeInsert/ApplyEdgeRemove (lazily created; see maintain.go in
	// internal/kcore). cores is shared across clones, so one searcher's
	// maintainer refreshes every worker drawn from the same pool.
	maint *kcore.Maintainer

	peeler    *kcore.Peeler
	trussChk  *ktruss.Checker
	cliqueChk *kclique.Checker

	// Candidate-set cache (see cache.go). noCache disables it; the repeated-
	// query benchmarks use the toggle to measure what the cache buys.
	// cacheTopo is the graph topology epoch the cache contents were built
	// at: community membership, induced CSRs and prefix oracles are all
	// topology-derived, so an epoch mismatch drops the whole cache before
	// the next lookup (all-or-nothing, matching the eviction policy).
	cache     candCache
	noCache   bool
	cacheTopo uint64

	// curEntry/curView identify the cache entry and sorted view of the query
	// in flight (nil when caching is off or the query bypassed the cache);
	// the k-core feasibility fast paths peel the entry's induced adjacency
	// and answer prefix probes through the view's oracle.
	curEntry *cacheEntry
	curView  *sortedView
	// Global→local id translation for localEntry's members (see localpeel.go).
	localEntry *cacheEntry
	localOf    []int32
	localValid *graph.Marker
	lp         localPeeler

	// Scratch buffers shared by the algorithms.
	distBuf   []float64
	vertBuf   []graph.V
	subBuf    []graph.V
	fastBuf   []graph.V // appFastSearch's incumbent community Λ
	bestBuf   []graph.V // Exact's incumbent community
	anchorBuf []graph.V // anchorSearch's incumbent community
	f1Buf     []graph.V // ExactPlus's potential fixed vertices F1
	ptsBuf    []geom.Point
	inX       *graph.Marker
	visited   *graph.Marker

	// cand is the query's candidate set view. With caching on it aliases the
	// cache entry's sorted slices; with caching off it owns ownVerts/ownDists.
	cand     candidateSet
	ownVerts []graph.V
	ownDists []float64

	// sGrid indexes the working candidate set of the query in flight: X for
	// Exact, S (the k-ĉore inside O(q, 2γ)) for AppAcc/ExactPlus. Circle
	// enumeration and anchor gathers run range queries against it instead of
	// scanning the whole set per circle.
	sGrid spatial.SubGrid

	// acc is AppAcc's per-query state, reused across queries.
	acc appAccState

	// noPruning2 disables AppAcc's inherited-infeasibility pruning; it
	// exists only so the ablation benchmarks can quantify what Pruning2
	// buys (Pruning1 stays on — without it the quadtree frontier is
	// unbounded).
	noPruning2 bool
	// noAnnulus disables ExactPlus's fixed-vertex annulus filter (F1 falls
	// back to every candidate within O(q, 2γ)); ablation use only.
	noAnnulus bool

	// parallel is the worker budget for intra-query parallel circle
	// enumeration (see parallel.go); 0 and 1 both mean serial. parWorkers
	// caches the lazily cloned enumeration workers, and parGrid points a
	// worker at the dispatching searcher's per-query candidate grid
	// (read-only after Build) for the duration of one scan.
	parallel   int
	parWorkers []*Searcher
	parGrid    *spatial.SubGrid

	// sharedPlans, when set, resolves candidate sets from an immutable
	// prebuilt plan table shared read-only across searchers (see shared.go);
	// epoch-guarded, with transparent fallback to the normal path.
	sharedPlans *SharedPlans

	stats Stats // counters for the query in flight

	// qctx is the context of the query in flight (nil when the query is not
	// cancellable); ctxErr latches the first context error observed at a loop
	// boundary so later boundaries short-circuit, and ctxTick amortizes the
	// innermost-loop checks (see ctx.go).
	qctx      context.Context
	ctxErr    error
	ctxTick   uint
	qdeadline time.Time
}

// SetPruning2 toggles AppAcc's Pruning2 (on by default). Ablation use only.
func (s *Searcher) SetPruning2(enabled bool) { s.noPruning2 = !enabled }

// SetAnnulusPruning toggles ExactPlus's fixed-vertex annulus filter (on by
// default). With it off, ExactPlus enumerates pairs and triples over the
// whole candidate set inside O(q, 2γ), which is Exact restricted by
// Corollary 2 only. Ablation use only.
func (s *Searcher) SetAnnulusPruning(enabled bool) { s.noAnnulus = !enabled }

// SetCandidateCaching toggles the candidate-set membership cache (on by
// default). Turning it off also drops whatever is cached; the repeated-query
// benchmarks use the toggle to compare against the from-scratch path.
func (s *Searcher) SetCandidateCaching(enabled bool) {
	s.noCache = !enabled
	if !enabled {
		s.cache.clear()
	}
}

// CachedCommunities returns the number of distinct communities currently
// memoized by the candidate cache.
func (s *Searcher) CachedCommunities() int { return s.cache.entries() }

// SetParallelism sets the worker budget for intra-query parallel circle
// enumeration (Exact and ExactPlus pair/triple scans). 0 and 1 both mean
// serial — the default, which runs the exact byte-for-byte serial code
// path. n ≥ 2 fans the outer enumeration loop out over up to n workers;
// results are pinned identical to serial by the differential suite. The
// budget carries across Clone and SnapshotOnto, so setting it on a pool or
// snapshot base propagates to every worker drawn from it.
func (s *Searcher) SetParallelism(n int) {
	if n < 0 {
		n = 0
	}
	s.parallel = n
}

// Parallelism returns the current intra-query parallelism budget.
func (s *Searcher) Parallelism() int { return s.parallel }

// NewSearcher creates a Searcher with the default k-core structure metric.
func NewSearcher(g *graph.Graph) *Searcher {
	return &Searcher{
		g:         g,
		structure: StructureKCore,
		cores:     kcore.Decompose(g),
		peeler:    kcore.NewPeeler(g),
		inX:       graph.NewMarker(g.NumVertices()),
		visited:   graph.NewMarker(g.NumVertices()),
	}
}

// NewSearcherWithStructure creates a Searcher using the given structure
// cohesiveness metric.
func NewSearcherWithStructure(g *graph.Graph, st Structure) *Searcher {
	s := NewSearcher(g)
	s.structure = st
	switch st {
	case StructureKTruss:
		s.truss = ktruss.Decompose(g)
		s.trussChk = ktruss.NewChecker(g)
	case StructureKClique:
		s.cliqueChk = kclique.NewChecker(g)
	}
	return s
}

// Clone returns an independent Searcher over the same graph, sharing the
// immutable decompositions but not the scratch space or the candidate
// cache, for use from another goroutine. Ablation and caching toggles carry
// over; the clone's cache starts empty and warms up independently.
func (s *Searcher) Clone() *Searcher {
	n := s.g.NumVertices()
	c := &Searcher{
		g:          s.g,
		structure:  s.structure,
		cores:      s.cores,
		truss:      s.truss,
		peeler:     kcore.NewPeeler(s.g),
		inX:        graph.NewMarker(n),
		visited:    graph.NewMarker(n),
		noCache:    s.noCache,
		noPruning2: s.noPruning2,
		noAnnulus:  s.noAnnulus,
		parallel:   s.parallel,
	}
	switch s.structure {
	case StructureKTruss:
		c.trussChk = ktruss.NewChecker(s.g)
	case StructureKClique:
		c.cliqueChk = kclique.NewChecker(s.g)
	}
	return c
}

// Graph returns the graph the searcher operates on.
func (s *Searcher) Graph() *graph.Graph { return s.g }

// CoreNumber returns the k-core number of v.
func (s *Searcher) CoreNumber(v graph.V) int { return int(s.cores[v]) }

// checkQuery validates q and k.
func (s *Searcher) checkQuery(q graph.V, k int) error {
	if q < 0 || int(q) >= s.g.NumVertices() {
		return fmt.Errorf("core: query vertex %d out of range [0,%d)", q, s.g.NumVertices())
	}
	if k < 0 {
		return fmt.Errorf("core: k = %d must be non-negative", k)
	}
	return nil
}

// trivialK reports whether k is below the threshold where the community is
// just q (k = 0) or q plus its nearest neighbor (Section 4.1), and builds
// that result. handled is true when the query was resolved here.
func (s *Searcher) trivialK(q graph.V, k int) (res *Result, handled bool, err error) {
	limit := 1 // k-core: k=1 pairs with the nearest neighbor
	switch s.structure {
	case StructureKTruss:
		limit = 2 // a 2-truss is just an edge
	case StructureKClique:
		if k == 1 {
			// q alone is a 1-clique: the optimal community has radius 0.
			return s.buildResult(q, k, []graph.V{q}, 0), true, nil
		}
		limit = 2 // a 2-clique is just an edge
	}
	if k == 0 {
		return s.buildResult(q, k, []graph.V{q}, 0), true, nil
	}
	if k <= limit {
		nn := s.g.NearestNeighbor(q)
		if nn < 0 {
			return nil, true, ErrNoCommunity
		}
		return s.buildResult(q, k, []graph.V{q, nn}, s.g.Dist(q, nn)), true, nil
	}
	return nil, false, nil
}

// feasible returns the maximal connected structure (k-core or k-truss)
// containing q within G[S], or nil. The returned slice is scratch-owned.
func (s *Searcher) feasible(S []graph.V, q graph.V, k int) []graph.V {
	s.stats.FeasibilityChecks++
	switch s.structure {
	case StructureKTruss:
		return s.trussChk.KTrussWithin(S, q, k)
	case StructureKClique:
		return s.cliqueChk.KCliqueWithin(S, q, k)
	default:
		// Queries that went through the candidate cache get two fast paths:
		// distance-prefix probes (the binary searches) are answered by the
		// view's prefix oracle in O(answer), and arbitrary member subsets
		// (circle gathers) peel the cached community's induced adjacency —
		// dense local ids, no cross-community edges. ThetaSAC and uncached
		// queries take the global peeler (their S is not guaranteed to be a
		// member subset).
		if s.curEntry != nil {
			if vw := s.curView; vw != nil && len(S) > 0 && len(S) <= len(vw.verts) && &S[0] == &vw.verts[0] {
				return s.prefixFeasible(s.curEntry, vw, len(S), q, k)
			}
			return s.kcoreWithinCached(s.curEntry, S, q, k)
		}
		return s.peeler.KCoreWithin(S, q, k)
	}
}

// minQueryNeighbors is the minimum number of q's neighbors any feasible
// community must contain: k for k-core, k-1 for k-truss (each incident edge
// closes k-2 triangles) and k-clique (q sits in at least one k-clique).
func (s *Searcher) minQueryNeighbors(k int) int {
	if s.structure == StructureKTruss || s.structure == StructureKClique {
		return k - 1
	}
	return k
}

// candidateSet is the vertex list X of q's connected k-structure, sorted by
// ascending distance from q (Algorithm 1, lines 2-3). Every feasible
// solution is a subset of X, so all algorithms operate inside it.
type candidateSet struct {
	verts []graph.V // ascending by dist from q; verts[0] == q
	dists []float64 // parallel to verts
}

// prefixWithin returns the prefix of verts whose distance from q is ≤ r
// (with geometric tolerance).
func (c *candidateSet) prefixWithin(r float64) []graph.V {
	i := sort.SearchFloat64s(c.dists, r+geom.Eps)
	return c.verts[:i]
}

// nextDistAfter returns the smallest candidate distance strictly greater
// than r, or -1 when none exists.
func (c *candidateSet) nextDistAfter(r float64) float64 {
	i := sort.SearchFloat64s(c.dists, r+geom.Eps)
	if i >= len(c.dists) {
		return -1
	}
	return c.dists[i]
}

// maxDist returns the largest candidate distance.
func (c *candidateSet) maxDist() float64 { return c.dists[len(c.dists)-1] }

// communityOf walks the topology for the connected k-structure containing q
// (nil when none exists). The returned slice is freshly allocated.
func (s *Searcher) communityOf(q graph.V, k int) []graph.V {
	switch s.structure {
	case StructureKTruss:
		return ktruss.CommunityOf(s.g, s.truss, q, k)
	case StructureKClique:
		return kclique.CommunityOf(s.g, q, k)
	default:
		return kcore.CommunityOf(s.g, s.cores, q, k)
	}
}

// candidates builds the candidate set for (q, k), or ErrNoCommunity.
//
// With caching on (the default), membership comes from the per-community
// cache whenever any member of q's community was queried before at this k —
// topology is immutable, so membership never goes stale. Distances are
// location-derived and therefore revalidated against the graph's location
// epoch: a repeated (q, k) with no intervening SetLoc reuses the sorted view
// outright; otherwise distances are recomputed and re-sorted in place.
func (s *Searcher) candidates(q graph.V, k int) (*candidateSet, error) {
	// Candidate construction — community BFS, induced CSR, distance sort —
	// is the dominant pre-loop cost of the cheap algorithms on a cold
	// cache, so a dead context bails here too, not only inside the search
	// loops.
	if s.canceled() {
		return nil, s.canceledError()
	}
	// Topology-epoch check: any edge churn since the cache was filled makes
	// every memoized membership, induced CSR and prefix oracle suspect, so
	// the whole cache is dropped. Core numbers themselves are maintained
	// incrementally (ApplyEdgeInsert/ApplyEdgeRemove), not here.
	if te := s.g.TopoEpoch(); te != s.cacheTopo {
		s.cache.clear()
		s.localEntry = nil
		s.cacheTopo = te
	}
	// A shared plan table (batch execution pinned to one snapshot) answers
	// first: the plan's entry and view are fully prebuilt — induced CSR and
	// prefix oracle included — so every lazy-build mutation path is a no-op
	// and the plan is safe to share read-only across workers. The lookup is
	// epoch-guarded; a stale table silently falls through to the normal path.
	if p := s.sharedPlans; p != nil {
		if pl := p.lookup(s.g, q, k); pl != nil {
			if pl.entry.members == nil {
				return nil, ErrNoCommunity
			}
			s.curEntry = pl.entry
			s.curView = &pl.view
			s.bindLocal(pl.entry)
			s.cand = candidateSet{verts: pl.view.verts, dists: pl.view.dists}
			s.stats.CandidateSize = len(pl.view.verts)
			s.stats.CacheHits++
			return &s.cand, nil
		}
	}
	if s.noCache {
		members := s.communityOf(q, k)
		if members == nil {
			return nil, ErrNoCommunity
		}
		s.ownVerts = append(s.ownVerts[:0], members...)
		s.ownDists = s.ownDists[:0]
		qp := s.g.Loc(q)
		for _, v := range s.ownVerts {
			s.ownDists = append(s.ownDists, qp.Dist(s.g.Loc(v)))
		}
		sortByDist(s.ownVerts, s.ownDists)
		s.cand = candidateSet{verts: s.ownVerts, dists: s.ownDists}
		s.stats.CandidateSize = len(s.ownVerts)
		return &s.cand, nil
	}

	e, ok := s.cache.lookup(q, k)
	if !ok {
		// k-clique communities overlap (clique percolation), so their
		// entries are keyed by the query vertex alone; k-core and k-truss
		// communities partition vertices per k and fan out to every member.
		fanout := s.structure != StructureKClique
		e = s.cache.store(q, k, s.communityOf(q, k), fanout)
	} else {
		s.stats.CacheHits++
	}
	if e.members == nil {
		return nil, ErrNoCommunity
	}
	epoch := s.g.LocEpoch()
	vw, current := e.viewFor(q, epoch)
	if !current {
		vw.verts = append(vw.verts[:0], e.members...)
		vw.dists = vw.dists[:0]
		qp := s.g.Loc(q)
		for _, v := range vw.verts {
			vw.dists = append(vw.dists, qp.Dist(s.g.Loc(v)))
		}
		sortByDist(vw.verts, vw.dists)
		vw.epoch = epoch
		vw.oracle.built = false
	}
	s.curEntry = e
	s.curView = vw
	s.bindLocal(e)
	s.cand = candidateSet{verts: vw.verts, dists: vw.dists}
	s.stats.CandidateSize = len(vw.verts)
	return &s.cand, nil
}

// buildResult copies members, computes their MCC and snapshots the stats.
func (s *Searcher) buildResult(q graph.V, k int, members []graph.V, delta float64) *Result {
	ms := make([]graph.V, len(members))
	copy(ms, members)
	slices.Sort(ms)
	s.ptsBuf = s.g.Points(ms, s.ptsBuf[:0])
	res := &Result{
		Query:   q,
		K:       k,
		Members: ms,
		MCC:     geom.MCC(s.ptsBuf),
		Delta:   delta,
		Stats:   s.stats,
	}
	return res
}

// begin resets the per-query state and returns the start time.
func (s *Searcher) begin() time.Time {
	s.stats = Stats{}
	s.curEntry = nil
	s.curView = nil
	s.qctx = nil
	s.ctxErr = nil
	s.qdeadline = time.Time{}
	return time.Now()
}

// finish stamps elapsed time onto the result.
func (s *Searcher) finish(res *Result, start time.Time) *Result {
	if res != nil {
		res.Stats.Elapsed = time.Since(start)
	}
	return res
}

// maxDistFrom returns the largest distance from p to any member's location.
func (s *Searcher) maxDistFrom(p geom.Point, members []graph.V) float64 {
	var best float64
	for _, v := range members {
		if d := p.Dist(s.g.Loc(v)); d > best {
			best = d
		}
	}
	return best
}
