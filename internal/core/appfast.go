package core

import (
	"context"
	"fmt"
	"slices"

	"sacsearch/internal/graph"
)

// AppFast is the (2+εF)-approximation of Section 4.3 (Algorithm 3). It
// binary-searches the radius δ of the smallest q-centered circle containing
// a feasible solution, between the lower bound l (distance to q's k-th
// nearest community neighbor) and upper bound u (farthest candidate), with
// the early-stopping gap α = r·εF/(2+εF) of Lemma 5. εF = 0 converges to
// exactly the AppInc result Φ.
func (s *Searcher) AppFast(q graph.V, k int, epsF float64) (*Result, error) {
	return s.AppFastCtx(context.Background(), q, k, epsF)
}

// AppFastCtx is AppFast with cancellation: the context is checked once per
// binary-search iteration, returning ErrCanceled when it fires.
func (s *Searcher) AppFastCtx(ctx context.Context, q graph.V, k int, epsF float64) (*Result, error) {
	start := s.begin()
	s.beginCtx(ctx)
	if err := s.checkQuery(q, k); err != nil {
		return nil, err
	}
	if epsF < 0 {
		return nil, fmt.Errorf("core: εF = %v must be non-negative", epsF)
	}
	if res, handled, err := s.trivialK(q, k); handled {
		return s.finish(res, start), err
	}
	cand, err := s.candidates(q, k)
	if err != nil {
		return nil, err
	}
	members, delta := s.appFastSearch(cand, q, k, epsF)
	if s.ctxErr != nil {
		return s.ctxResult(nil, nil)
	}
	return s.finish(s.buildResult(q, k, members, delta), start), nil
}

// AppFastBisect is AppFast with the candidate-index refinements disabled:
// the bracket is narrowed by plain midpoint bisection (l ← r on an
// infeasible probe) instead of snapping l to the next candidate distance and
// u to max|q,v| over the found community. It exists only so the ablation
// benchmarks can quantify what the index-aware narrowing buys; the guarantee
// is the same (2+εF).
func (s *Searcher) AppFastBisect(q graph.V, k int, epsF float64) (*Result, error) {
	start := s.begin()
	if err := s.checkQuery(q, k); err != nil {
		return nil, err
	}
	if epsF < 0 {
		return nil, fmt.Errorf("core: εF = %v must be non-negative", epsF)
	}
	if res, handled, err := s.trivialK(q, k); handled {
		return s.finish(res, start), err
	}
	cand, err := s.candidates(q, k)
	if err != nil {
		return nil, err
	}
	members, delta := s.appFastBisectSearch(cand, q, k, epsF)
	return s.finish(s.buildResult(q, k, members, delta), start), nil
}

// queryNeighborLowerBound returns the distance to q's needQ-th nearest
// neighbor inside the candidate set — the lower bound l of Eq (1). It
// iterates q's adjacency once, O(deg(q) + candidate marking), instead of the
// old O(|X|·log deg(q)) HasEdge probe per candidate.
func (s *Searcher) queryNeighborLowerBound(cand *candidateSet, q graph.V, needQ int) float64 {
	if needQ <= 0 {
		return 0
	}
	s.inX.Reset()
	s.inX.MarkAll(cand.verts)
	nbr := s.distBuf[:0]
	qp := s.g.Loc(q)
	for _, u := range s.g.Neighbors(q) {
		if s.inX.Has(u) {
			nbr = append(nbr, qp.Dist(s.g.Loc(u)))
		}
	}
	slices.Sort(nbr)
	s.distBuf = nbr
	if len(nbr) < needQ {
		return 0
	}
	return nbr[needQ-1]
}

// appFastBisectSearch is appFastSearch without the candidate-distance
// snapping: pure midpoint bisection with the Lemma 5 stopping gap.
func (s *Searcher) appFastBisectSearch(cand *candidateSet, q graph.V, k int, epsF float64) ([]graph.V, float64) {
	l := s.queryNeighborLowerBound(cand, q, s.minQueryNeighbors(k))
	u := cand.maxDist()

	best := append(s.fastBuf[:0], cand.verts...)
	s.fastBuf = best
	bestDelta := u

	for u-l > 1e-8 {
		if s.canceled() {
			break
		}
		s.stats.BinaryIters++
		r := (l + u) / 2
		alpha := r * epsF / (2 + epsF)
		S := cand.prefixWithin(r)
		if c := s.feasible(S, q, k); c != nil {
			best = append(best[:0], c...)
			bestDelta = s.maxDistFrom(s.g.Loc(q), c)
			if r-l <= alpha {
				return best, bestDelta
			}
			u = r
		} else {
			if u-r <= alpha {
				return best, bestDelta
			}
			l = r
		}
	}
	return best, bestDelta
}

// appFastSearch runs the radius binary search over the candidate set and
// returns the best community found together with the radius δ of the
// smallest q-centered circle known to contain it. The returned slice is
// scratch-owned (valid until the next appFastSearch / appFastBisectSearch
// call on this Searcher); callers that retain it must copy.
func (s *Searcher) appFastSearch(cand *candidateSet, q graph.V, k int, epsF float64) ([]graph.V, float64) {
	// Lower/upper bounds of Eq (1): any feasible solution keeps at least
	// minQueryNeighbors(k) of q's neighbors inside the circle, so δ is at
	// least the distance to the needQ-th nearest of them.
	l := s.queryNeighborLowerBound(cand, q, s.minQueryNeighbors(k))
	u := cand.maxDist()

	// Λ starts as the whole k-ĉore X (always feasible).
	best := append(s.fastBuf[:0], cand.verts...)
	s.fastBuf = best
	bestDelta := u

	// Iterate until the bracket collapses. The guard is an order of
	// magnitude above the geom.Eps containment tolerance, preventing a
	// floating-point livelock once u-l shrinks under the tolerance used by
	// prefixWithin; on unit-square data 1e-8 is far below any vertex
	// spacing that matters.
	for u-l > 1e-8 {
		if s.canceled() {
			break
		}
		s.stats.BinaryIters++
		r := (l + u) / 2
		alpha := r * epsF / (2 + epsF)
		S := cand.prefixWithin(r)
		if c := s.feasible(S, q, k); c != nil {
			best = append(best[:0], c...)
			bestDelta = s.maxDistFrom(s.g.Loc(q), c)
			if r-l <= alpha {
				return best, bestDelta
			}
			u = bestDelta // max_{v∈Λ} |q,v| (Algorithm 3, line 11)
		} else {
			if u-r <= alpha {
				return best, bestDelta
			}
			// Smallest candidate distance beyond r: the next radius at
			// which the prefix actually grows (Algorithm 3, line 14).
			nxt := cand.nextDistAfter(r)
			if nxt < 0 || nxt > u {
				return best, bestDelta
			}
			l = nxt
		}
	}
	return best, bestDelta
}
