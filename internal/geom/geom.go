// Package geom implements the planar geometry substrate used by SAC search:
// points, circles, minimum covering circles (MCC, Definition 2 of the paper)
// and circle-overlap areas (used by the CAO quality metric, Equation 10).
//
// All computations use float64 and a small relative tolerance Eps to absorb
// round-off; every predicate that tests containment accepts points that are
// within Eps of the boundary.
package geom

import "math"

// Eps is the absolute tolerance used by boundary predicates. Coordinates in
// this repository are normalized to the unit square, so an absolute epsilon
// is appropriate.
const Eps = 1e-9

// Point is a location in the plane.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and o.
func (p Point) Dist(o Point) float64 {
	// Plain sqrt(dx²+dy²), not math.Hypot: coordinates live in the unit
	// square (or modest multiples of it), so Hypot's overflow/underflow
	// guards buy nothing and cost ~2× on the query hot path, which computes
	// millions of distances.
	dx := p.X - o.X
	dy := p.Y - o.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Dist2 returns the squared Euclidean distance between p and o. It is cheaper
// than Dist and preserves ordering, so hot paths compare squared distances.
func (p Point) Dist2(o Point) float64 {
	dx := p.X - o.X
	dy := p.Y - o.Y
	return dx*dx + dy*dy
}

// Add returns p translated by o.
func (p Point) Add(o Point) Point { return Point{p.X + o.X, p.Y + o.Y} }

// Sub returns p minus o.
func (p Point) Sub(o Point) Point { return Point{p.X - o.X, p.Y - o.Y} }

// Scale returns p with both coordinates multiplied by f.
func (p Point) Scale(f float64) Point { return Point{p.X * f, p.Y * f} }

// Mid returns the midpoint of p and o.
func (p Point) Mid(o Point) Point { return Point{(p.X + o.X) / 2, (p.Y + o.Y) / 2} }

// Finite reports whether f is neither NaN nor ±Inf. Input validation shares
// it: a NaN coordinate silently poisons every distance sort it touches and
// ±Inf breaks MCC, so writers reject non-finite coordinates up front.
func Finite(f float64) bool { return !math.IsNaN(f) && !math.IsInf(f, 0) }

// Circle is a closed disk with center C and radius R. The paper writes it
// O(o, r).
type Circle struct {
	C Point
	R float64
}

// Contains reports whether p lies inside the closed disk, with tolerance Eps.
func (c Circle) Contains(p Point) bool {
	r := c.R + Eps
	return c.C.Dist2(p) <= r*r
}

// ContainsStrict reports whether p lies inside the disk with no tolerance.
func (c Circle) ContainsStrict(p Point) bool {
	return c.C.Dist2(p) <= c.R*c.R
}

// ContainsCircle reports whether the closed disk o lies entirely inside c,
// with tolerance Eps.
func (c Circle) ContainsCircle(o Circle) bool {
	return c.C.Dist(o.C)+o.R <= c.R+Eps
}

// Area returns the area of the disk.
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// CircleFrom2 returns the smallest circle through a and b: the circle whose
// diameter is the segment ab (Lemma 1, two-point case).
func CircleFrom2(a, b Point) Circle {
	return Circle{C: a.Mid(b), R: a.Dist(b) / 2}
}

// Circumcircle returns the circle through the three points a, b, c and true,
// or the zero Circle and false when the points are (nearly) collinear.
func Circumcircle(a, b, c Point) (Circle, bool) {
	// Translate so that a is the origin for numerical stability.
	bx := b.X - a.X
	by := b.Y - a.Y
	cx := c.X - a.X
	cy := c.Y - a.Y
	d := 2 * (bx*cy - by*cx)
	if math.Abs(d) < 1e-18 {
		return Circle{}, false
	}
	b2 := bx*bx + by*by
	c2 := cx*cx + cy*cy
	ux := (cy*b2 - by*c2) / d
	uy := (bx*c2 - cx*b2) / d
	center := Point{a.X + ux, a.Y + uy}
	return Circle{C: center, R: center.Dist(a)}, true
}

// CircleFrom3 returns the minimum covering circle of the three points a, b
// and c. When the triangle is obtuse (or degenerate) this is the two-point
// circle on its longest side; otherwise it is the circumcircle (Lemma 1).
func CircleFrom3(a, b, c Point) Circle {
	// Try each two-point circle first: the smallest valid one wins.
	best := Circle{R: math.Inf(1)}
	try2 := func(p, q, other Point) {
		cc := CircleFrom2(p, q)
		if cc.R < best.R && cc.Contains(other) {
			best = cc
		}
	}
	try2(a, b, c)
	try2(a, c, b)
	try2(b, c, a)
	if !math.IsInf(best.R, 1) {
		return best
	}
	if cc, ok := Circumcircle(a, b, c); ok {
		return cc
	}
	// Collinear points: the farthest pair's diameter circle covers all three.
	// (One of the two-point circles above must have covered this; this path
	// is a numerical safety net.)
	best = CircleFrom2(a, b)
	if cc := CircleFrom2(a, c); cc.R > best.R {
		best = cc
	}
	if cc := CircleFrom2(b, c); cc.R > best.R {
		best = cc
	}
	return best
}

// IntersectionArea returns the area of the intersection of the two disks.
func IntersectionArea(a, b Circle) float64 {
	if a.R <= 0 || b.R <= 0 {
		return 0
	}
	d := a.C.Dist(b.C)
	if d >= a.R+b.R {
		return 0
	}
	small := math.Min(a.R, b.R)
	if d <= math.Abs(a.R-b.R) {
		return math.Pi * small * small
	}
	// Standard circular-lens formula.
	r1, r2 := a.R, b.R
	cos1 := clamp((d*d+r1*r1-r2*r2)/(2*d*r1), -1, 1)
	cos2 := clamp((d*d+r2*r2-r1*r1)/(2*d*r2), -1, 1)
	part1 := r1 * r1 * math.Acos(cos1)
	part2 := r2 * r2 * math.Acos(cos2)
	s := (-d + r1 + r2) * (d + r1 - r2) * (d - r1 + r2) * (d + r1 + r2)
	if s < 0 {
		s = 0
	}
	return part1 + part2 - 0.5*math.Sqrt(s)
}

// UnionArea returns the area of the union of the two disks.
func UnionArea(a, b Circle) float64 {
	return a.Area() + b.Area() - IntersectionArea(a, b)
}

// OverlapRatio returns intersection/union of the two disks, the Jaccard
// similarity of their areas (CAO, Equation 10). It returns 0 when both disks
// are degenerate.
func OverlapRatio(a, b Circle) float64 {
	u := UnionArea(a, b)
	if u <= 0 {
		// Two degenerate (radius-0) circles: equal centers overlap fully.
		if a.C.Dist(b.C) <= Eps {
			return 1
		}
		return 0
	}
	return IntersectionArea(a, b) / u
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
