// Fencing epoch: the store persists a leadership epoch so a deposed leader
// cannot keep accepting writes and fork history. Every store starts at epoch
// 1; promoting a follower bumps its epoch past the highest one it has seen,
// and any store that learns of a higher epoch (a follower handshake, an
// operator command) fences itself — all further writes fail with ErrFenced
// until an explicit BumpEpoch re-arms it as the new leader. The epoch file
// survives restarts: a fenced leader stays fenced across a reboot.
package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"sacsearch/internal/wal"
)

// ErrFenced rejects writes on a store that has seen a higher leadership
// epoch: another node was promoted, and accepting this write would fork
// history. Reads stay valid (the data is consistent, just stale).
var ErrFenced = errors.New("store: fenced by a newer leader epoch")

// Epoch file layout (epoch.fence, 28 bytes): magic "SACEPOC1", the store's
// own epoch, the highest foreign epoch that fenced it (0 = not fenced), and
// a CRC-32 of the first 24 bytes. Written via tmp+rename+dir-fsync so a
// crash can never leave a half-written fence.

var epochMagic = [8]byte{'S', 'A', 'C', 'E', 'P', 'O', 'C', '1'}

const epochFile = "epoch.fence"

func writeEpochFile(dir string, epoch, fencedBy uint64) error {
	var buf [28]byte
	copy(buf[:8], epochMagic[:])
	binary.LittleEndian.PutUint64(buf[8:], epoch)
	binary.LittleEndian.PutUint64(buf[16:], fencedBy)
	binary.LittleEndian.PutUint32(buf[24:], crc32.ChecksumIEEE(buf[:24]))
	path := filepath.Join(dir, epochFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf[:], 0o644); err != nil {
		return fmt.Errorf("store: writing epoch file: %w", err)
	}
	if f, err := os.Open(tmp); err == nil {
		err = f.Sync()
		f.Close()
		if err != nil {
			os.Remove(tmp)
			return fmt.Errorf("store: syncing epoch file: %w", err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing epoch file: %w", err)
	}
	return wal.SyncDir(dir)
}

func loadEpochFile(dir string) (epoch, fencedBy uint64, found bool, err error) {
	buf, err := os.ReadFile(filepath.Join(dir, epochFile))
	if os.IsNotExist(err) {
		return 0, 0, false, nil
	}
	if err != nil {
		return 0, 0, false, fmt.Errorf("store: reading epoch file: %w", err)
	}
	if len(buf) != 28 || [8]byte(buf[:8]) != epochMagic {
		return 0, 0, false, fmt.Errorf("store: %s is not an epoch file", epochFile)
	}
	if binary.LittleEndian.Uint32(buf[24:]) != crc32.ChecksumIEEE(buf[:24]) {
		return 0, 0, false, fmt.Errorf("store: %s has a corrupt header", epochFile)
	}
	return binary.LittleEndian.Uint64(buf[8:]), binary.LittleEndian.Uint64(buf[16:]), true, nil
}

// Epoch returns the store's current leadership epoch.
func (s *Store) Epoch() uint64 {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.epoch
}

// FencedBy returns the foreign epoch that fenced this store, or 0 when it is
// free to accept writes.
func (s *Store) FencedBy() uint64 {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	return s.fencedBy
}

// Fenced reports whether writes are currently rejected with ErrFenced.
func (s *Store) Fenced() bool { return s.fenced.Load() }

// Fence records that epoch `by` exists elsewhere. When by exceeds the
// store's own epoch the store fences itself — durably, before any
// rejection is promised — and all later writes fail with ErrFenced. A by at
// or below the current epoch is stale news and a no-op.
func (s *Store) Fence(by uint64) error {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	if by <= s.epoch || by <= s.fencedBy {
		return nil
	}
	if err := writeEpochFile(s.dir, s.epoch, by); err != nil {
		return err
	}
	s.fencedBy = by
	s.fenced.Store(true)
	return nil
}

// BumpEpoch promotes the store to leadership: its new epoch exceeds both its
// old one and any epoch that fenced it, the fence is cleared, and the result
// is persisted before writes are accepted again. Returns the new epoch.
func (s *Store) BumpEpoch() (uint64, error) {
	s.epochMu.Lock()
	defer s.epochMu.Unlock()
	next := s.epoch + 1
	if s.fencedBy >= next {
		next = s.fencedBy + 1
	}
	if err := writeEpochFile(s.dir, next, 0); err != nil {
		return s.epoch, err
	}
	s.epoch = next
	s.fencedBy = 0
	s.fenced.Store(false)
	return next, nil
}
