// Package subscribe implements standing SAC queries: a client registers a
// (q, k, algo) subscription once and is pushed community deltas as check-ins
// and edge events land, instead of polling /v1/query.
//
// The package splits into two halves:
//
//   - The delivery core (this file): a Hub of subscriptions, each holding the
//     last delivered result, a bounded ring of recent events for
//     Last-Event-ID resume, and any number of attached SSE streams with
//     slow-consumer shedding.
//   - An evaluation driver that decides *when* a subscription's answer may
//     have changed and recomputes it. Manager (manager.go) is the
//     single-engine driver hooked on snapshot.Engine's post-publish point;
//     the router package builds its own driver over the per-shard
//     publication feeds (feed.go).
//
// The driver owns each subscription's gate state exclusively (Sub.Gate);
// the delivery core never touches it, so drivers need no locks there.
package subscribe

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sync"
	"time"

	"sacsearch/internal/core"
	"sacsearch/internal/graph"
	"sacsearch/internal/telemetry"
)

// Errors returned by Hub.Register. The HTTP layer maps ErrLimit onto a 429
// subscription_limit envelope.
var (
	ErrLimit  = errors.New("subscribe: subscription limit reached")
	ErrExists = errors.New("subscribe: subscription id already registered")
	ErrClosed = errors.New("subscribe: subscriptions draining")
)

// Event kinds on the /v1/subscribe wire.
const (
	KindInit  = "init"  // full current result (first event, and after a resume gap)
	KindDelta = "delta" // joined/left members, MCC change, no-community transitions
	KindBye   = "bye"   // terminal: the server is draining; reconnect elsewhere
)

// Event is one SSE frame: a per-subscription sequence number (the SSE id
// clients echo back as Last-Event-ID), the event kind, and the
// pre-marshaled JSON payload, encoded once however many streams are
// attached.
type Event struct {
	Seq  uint64
	Kind string
	Data []byte
}

// Circle is the wire shape of a covering circle.
type Circle struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	R float64 `json:"r"`
}

// EventJSON is the payload of init and delta events. An init carries the
// full membership in Members; a delta carries only Joined/Left relative to
// the previous event. MCC is present whenever a community exists, and Hash
// fingerprints the full (members, mcc, noCommunity) state after the event,
// so a client can verify its replayed view without refetching.
type EventJSON struct {
	Sub         string  `json:"sub"`
	Seq         uint64  `json:"seq"`
	Q           int64   `json:"q"`
	K           int     `json:"k"`
	Algo        string  `json:"algo"`
	NoCommunity bool    `json:"noCommunity"`
	Members     []int64 `json:"members,omitempty"`
	Joined      []int64 `json:"joined,omitempty"`
	Left        []int64 `json:"left,omitempty"`
	MCC         *Circle `json:"mcc,omitempty"`
	Delta       float64 `json:"delta,omitempty"`
	Hash        string  `json:"hash"`
}

// ByeJSON is the payload of the terminal bye event.
type ByeJSON struct {
	Sub    string `json:"sub"`
	Reason string `json:"reason"`
}

// EvalResult is one evaluation's outcome, handed to Sub.Apply by a driver.
// Members must be ascending (core.Result order) and are retained.
type EvalResult struct {
	Members     []graph.V
	MCC         Circle
	Delta       float64
	NoCommunity bool
}

// state is the last delivered result of one subscription.
type state struct {
	valid       bool // false until the first Apply
	noCommunity bool
	members     []graph.V // ascending
	mcc         Circle
	delta       float64
	hash        uint64
}

// resultHash fingerprints a result with FNV-1a so "did anything change?" is
// one word compare and clients can verify replayed state.
func resultHash(r *EvalResult) uint64 {
	h := fnv.New64a()
	var b [8]byte
	put := func(u uint64) {
		for i := 0; i < 8; i++ {
			b[i] = byte(u >> (8 * i))
		}
		h.Write(b[:])
	}
	if r.NoCommunity {
		put(1)
		return h.Sum64()
	}
	put(2)
	for _, v := range r.Members {
		put(uint64(v))
	}
	put(math.Float64bits(r.MCC.X))
	put(math.Float64bits(r.MCC.Y))
	put(math.Float64bits(r.MCC.R))
	put(math.Float64bits(r.Delta))
	return h.Sum64()
}

// Options sizes a Hub. Zero values take the defaults.
type Options struct {
	// Metrics is the registry the sac_subscription_* instruments register
	// on; nil disables them.
	Metrics *telemetry.Registry
	// MaxSubscriptions caps registered subscriptions (default 1024).
	MaxSubscriptions int
	// RingLen is how many past events each subscription retains for
	// Last-Event-ID resume (default 64). A resume beyond the ring gets a
	// fresh init instead.
	RingLen int
	// StreamBuf is each attached stream's channel buffer (default 32). A
	// consumer that falls this far behind is shed and must resume.
	StreamBuf int
	// ResumeTTL is how long a subscription with no attached stream is kept
	// for resume before Sweep reaps it (default 2m).
	ResumeTTL time.Duration
}

func (o Options) maxSubs() int {
	if o.MaxSubscriptions > 0 {
		return o.MaxSubscriptions
	}
	return 1024
}

func (o Options) ringLen() int {
	if o.RingLen > 0 {
		return o.RingLen
	}
	return 64
}

func (o Options) streamBuf() int {
	if o.StreamBuf > 0 {
		return o.StreamBuf
	}
	return 32
}

func (o Options) resumeTTL() time.Duration {
	if o.ResumeTTL > 0 {
		return o.ResumeTTL
	}
	return 2 * time.Minute
}

// Hub is the delivery core shared by every subscription driver: the
// registered subscriptions, their limits, and the sac_subscription_*
// instruments. Safe for concurrent use.
type Hub struct {
	opt Options

	mu     sync.Mutex
	subs   map[string]*Sub
	closed bool

	active  *telemetry.Gauge
	evals   *telemetry.Counter
	skipped *telemetry.Counter
	deltas  *telemetry.Counter
	sheds   *telemetry.Counter
	latency *telemetry.Histogram
}

// NewHub builds the delivery core and registers its instruments.
func NewHub(opt Options) *Hub {
	reg := opt.Metrics
	return &Hub{
		opt:  opt,
		subs: make(map[string]*Sub),
		active: reg.Gauge("sac_subscriptions_active",
			"Standing queries currently registered (attached or within the resume TTL)."),
		evals: reg.Counter("sac_subscription_evaluations_total",
			"Standing-query re-evaluations actually run."),
		skipped: reg.Counter("sac_subscription_skipped_by_gate_total",
			"Publications a subscription skipped because the invalidation gate proved its answer unchanged."),
		deltas: reg.Counter("sac_subscription_deltas_total",
			"Delta events appended to subscription streams (init events excluded)."),
		sheds: reg.Counter("sac_subscription_sheds_total",
			"Subscriber streams dropped for falling more than one buffer behind."),
		latency: reg.Histogram("sac_subscription_delta_latency_seconds",
			"Publication arrival to delta appended, per delta event.", nil),
	}
}

// Evals exposes the evaluations counter to drivers.
func (h *Hub) Evals() *telemetry.Counter { return h.evals }

// Skipped exposes the skipped-by-gate counter to drivers.
func (h *Hub) Skipped() *telemetry.Counter { return h.skipped }

// Register creates a subscription under id. The query must already be
// validated; its Algo should be the canonical registry name so event
// payloads render it consistently. Fails with ErrExists when the id is
// taken, ErrLimit at capacity, ErrClosed after CloseAll.
func (h *Hub) Register(id string, q core.Query) (*Sub, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return nil, ErrClosed
	}
	if _, ok := h.subs[id]; ok {
		return nil, ErrExists
	}
	if len(h.subs) >= h.opt.maxSubs() {
		return nil, ErrLimit
	}
	sub := &Sub{
		ID:      id,
		Query:   q,
		hub:     h,
		streams: make(map[*Stream]struct{}),
		// Starts detached: a subscription whose client never attaches (or
		// never comes back) is reaped by Sweep after the resume TTL.
		detachedAt: time.Now(),
	}
	h.subs[id] = sub
	h.active.Set(float64(len(h.subs)))
	return sub, nil
}

// Get looks a subscription up by id.
func (h *Hub) Get(id string) (*Sub, bool) {
	h.mu.Lock()
	defer h.mu.Unlock()
	sub, ok := h.subs[id]
	return sub, ok
}

// Remove unregisters a subscription and closes its streams.
func (h *Hub) Remove(id string) {
	h.mu.Lock()
	sub, ok := h.subs[id]
	if ok {
		delete(h.subs, id)
		h.active.Set(float64(len(h.subs)))
	}
	h.mu.Unlock()
	if ok {
		sub.terminate("subscription removed")
	}
}

// Snapshot returns the registered subscriptions (order unspecified) — the
// working set of one driver dispatch round.
func (h *Hub) Snapshot() []*Sub {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]*Sub, 0, len(h.subs))
	for _, sub := range h.subs {
		out = append(out, sub)
	}
	return out
}

// Active returns the number of registered subscriptions.
func (h *Hub) Active() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Sweep reaps subscriptions that have had no attached stream for the resume
// TTL, returning how many it removed. Drivers call it periodically.
func (h *Hub) Sweep() int {
	cutoff := time.Now().Add(-h.opt.resumeTTL())
	var dead []*Sub
	h.mu.Lock()
	for id, sub := range h.subs {
		sub.mu.Lock()
		idle := len(sub.streams) == 0 && !sub.detachedAt.IsZero() && sub.detachedAt.Before(cutoff)
		sub.mu.Unlock()
		if idle {
			delete(h.subs, id)
			dead = append(dead, sub)
		}
	}
	h.active.Set(float64(len(h.subs)))
	h.mu.Unlock()
	for _, sub := range dead {
		sub.terminate("resume window expired")
	}
	return len(dead)
}

// CloseAll is the drain path: every attached stream gets a terminal bye
// event (after whatever deltas it already buffered) and is closed, and
// further Registers fail with ErrClosed. The driver must have stopped
// dispatching first, so no Apply races the close.
func (h *Hub) CloseAll() {
	h.mu.Lock()
	h.closed = true
	subs := make([]*Sub, 0, len(h.subs))
	for _, sub := range h.subs {
		subs = append(subs, sub)
	}
	h.subs = make(map[string]*Sub)
	h.active.Set(0)
	h.mu.Unlock()
	for _, sub := range subs {
		sub.terminate("server draining")
	}
}

// Sub is one standing query: its immutable spec, the last delivered result,
// the resume ring, and the attached streams.
type Sub struct {
	// ID is the subscription id clients resume by.
	ID string
	// Query is the validated standing query (canonical Algo name).
	Query core.Query
	// Gate is driver-private invalidation state. Only the owning driver's
	// dispatch loop reads or writes it; the delivery core never does.
	Gate any

	hub *Hub

	mu         sync.Mutex
	st         state
	ring       []Event // contiguous seqs, at most opt.RingLen
	nextSeq    uint64  // seq the next event will take (first event = 1)
	streams    map[*Stream]struct{}
	detachedAt time.Time // zero while any stream is attached
	closed     bool
}

// Stream is one attached consumer. Read events from C; when Shed is closed
// the consumer fell a full buffer behind and the server dropped it — close
// the transport and let the client resume with Last-Event-ID.
type Stream struct {
	C    chan Event
	Shed chan struct{}
	shed bool // guarded by the owning Sub's (or Feed's) mu
}

func newStream(buf int) *Stream {
	return &Stream{C: make(chan Event, buf), Shed: make(chan struct{})}
}

// fanout delivers ev to every live stream without ever blocking: a stream
// whose buffer is full is shed instead. Caller holds the owning mutex.
func fanout(streams map[*Stream]struct{}, ev Event, sheds *telemetry.Counter) {
	for st := range streams {
		if st.shed {
			continue
		}
		select {
		case st.C <- ev:
		default:
			st.shed = true
			close(st.Shed)
			sheds.Inc()
		}
	}
}

// Apply records one evaluation's outcome: it diffs against the last
// delivered state and, when anything changed, appends an init (first
// result) or delta event to the ring and every attached stream. publishedAt
// — the arrival time of the publication that triggered the evaluation —
// feeds the delta-latency histogram (zero skips it, e.g. for the initial
// evaluation, which no publication triggered).
func (sub *Sub) Apply(r *EvalResult, publishedAt time.Time) {
	hash := resultHash(r)
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return
	}
	if sub.st.valid && sub.st.hash == hash {
		return
	}
	var payload EventJSON
	kind := KindDelta
	if !sub.st.valid {
		kind = KindInit
		payload.Members = toInt64s(r.Members)
	} else {
		payload.Joined, payload.Left = diffMembers(sub.st.members, r.Members)
	}
	payload.Sub = sub.ID
	payload.Q = int64(sub.Query.Q)
	payload.K = sub.Query.K
	payload.Algo = sub.Query.Algo
	payload.NoCommunity = r.NoCommunity
	payload.Hash = fmt.Sprintf("%016x", hash)
	if !r.NoCommunity {
		mcc := r.MCC
		payload.MCC = &mcc
		payload.Delta = r.Delta
	}
	sub.st = state{
		valid:       true,
		noCommunity: r.NoCommunity,
		members:     r.Members,
		mcc:         r.MCC,
		delta:       r.Delta,
		hash:        hash,
	}
	sub.append(kind, payload)
	if kind == KindDelta {
		sub.hub.deltas.Inc()
		if !publishedAt.IsZero() {
			sub.hub.latency.Observe(time.Since(publishedAt).Seconds())
		}
	}
}

// append seals one event into the ring and fans it out. Caller holds sub.mu.
func (sub *Sub) append(kind string, payload EventJSON) {
	if sub.nextSeq == 0 {
		sub.nextSeq = 1
	}
	payload.Seq = sub.nextSeq
	data, err := json.Marshal(payload)
	if err != nil { // payload is plain numbers and strings; cannot happen
		return
	}
	ev := Event{Seq: sub.nextSeq, Kind: kind, Data: data}
	sub.nextSeq++
	sub.ring = append(sub.ring, ev)
	if max := sub.hub.opt.ringLen(); len(sub.ring) > max {
		copy(sub.ring, sub.ring[len(sub.ring)-max:])
		sub.ring = sub.ring[:max]
	}
	fanout(sub.streams, ev, sub.hub.sheds)
}

// Attach adds a consumer stream. replay holds what the consumer must see
// before reading live events from the stream: with a resumable
// Last-Event-ID, exactly the ring events after it; otherwise — fresh
// attach, or a resume that outran the ring — one synthesized init carrying
// the full current state. A consumer attaching before the first evaluation
// gets no replay; its init arrives live.
func (sub *Sub) Attach(lastEventID uint64, hasLast bool) (*Stream, []Event, error) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return nil, nil, ErrClosed
	}
	st := newStream(sub.hub.opt.streamBuf())
	sub.streams[st] = struct{}{}
	sub.detachedAt = time.Time{}
	if !sub.st.valid {
		return st, nil, nil
	}
	latest := sub.nextSeq - 1
	if hasLast {
		if lastEventID == latest {
			return st, nil, nil
		}
		if lastEventID < latest && len(sub.ring) > 0 && sub.ring[0].Seq <= lastEventID+1 {
			tail := sub.ring[lastEventID+1-sub.ring[0].Seq:]
			replay := make([]Event, len(tail))
			copy(replay, tail)
			return st, replay, nil
		}
	}
	return st, []Event{sub.initEvent(latest)}, nil
}

// initEvent synthesizes a full-state init frame at the given seq (the state
// after every event ≤ seq). Caller holds sub.mu.
func (sub *Sub) initEvent(seq uint64) Event {
	payload := EventJSON{
		Sub:         sub.ID,
		Seq:         seq,
		Q:           int64(sub.Query.Q),
		K:           sub.Query.K,
		Algo:        sub.Query.Algo,
		NoCommunity: sub.st.noCommunity,
		Members:     toInt64s(sub.st.members),
		Hash:        fmt.Sprintf("%016x", sub.st.hash),
	}
	if !sub.st.noCommunity {
		mcc := sub.st.mcc
		payload.MCC = &mcc
		payload.Delta = sub.st.delta
	}
	data, _ := json.Marshal(payload)
	return Event{Seq: seq, Kind: KindInit, Data: data}
}

// Detach removes a consumer stream; the last detach starts the resume TTL.
func (sub *Sub) Detach(st *Stream) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	delete(sub.streams, st)
	if len(sub.streams) == 0 && !sub.closed {
		sub.detachedAt = time.Now()
	}
}

// terminate sends the terminal bye (after any buffered deltas) and closes
// every stream. Safe to call once per sub; Hub removal paths guarantee that.
func (sub *Sub) terminate(reason string) {
	sub.mu.Lock()
	defer sub.mu.Unlock()
	if sub.closed {
		return
	}
	sub.closed = true
	if sub.nextSeq == 0 {
		sub.nextSeq = 1
	}
	data, _ := json.Marshal(ByeJSON{Sub: sub.ID, Reason: reason})
	ev := Event{Seq: sub.nextSeq, Kind: KindBye, Data: data}
	sub.nextSeq++
	for st := range sub.streams {
		if !st.shed {
			select {
			case st.C <- ev:
			default: // a full buffer outranks the goodbye
			}
		}
		close(st.C)
	}
	sub.streams = make(map[*Stream]struct{})
}

// SameQuery reports whether two validated queries denote the same standing
// query — the check that stops a second client binding an existing
// subscription id to a different question. Both sides must carry canonical
// Algo names.
func SameQuery(a, b core.Query) bool {
	return a.Algo == b.Algo && a.Q == b.Q && a.K == b.K &&
		a.Structure == b.Structure &&
		sameParam(a.EpsF, b.EpsF) && sameParam(a.EpsA, b.EpsA) && sameParam(a.Theta, b.Theta)
}

func sameParam(a, b *float64) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	return a == nil || *a == *b
}

func toInt64s(vs []graph.V) []int64 {
	if vs == nil {
		return nil
	}
	out := make([]int64, len(vs))
	for i, v := range vs {
		out[i] = int64(v)
	}
	return out
}

// diffMembers computes joined/left between two ascending member lists by a
// single merge pass.
func diffMembers(old, cur []graph.V) (joined, left []int64) {
	i, j := 0, 0
	for i < len(old) && j < len(cur) {
		switch {
		case old[i] == cur[j]:
			i++
			j++
		case old[i] < cur[j]:
			left = append(left, int64(old[i]))
			i++
		default:
			joined = append(joined, int64(cur[j]))
			j++
		}
	}
	for ; i < len(old); i++ {
		left = append(left, int64(old[i]))
	}
	for ; j < len(cur); j++ {
		joined = append(joined, int64(cur[j]))
	}
	return joined, left
}
