// Package store is the durable spatial-graph store: it wraps the snapshot
// engine (internal/snapshot) with a write-ahead log (internal/wal) and
// periodic checkpoints, so the serving state survives restarts and crashes.
//
// Write path — group commit through the engine's writer loop:
//
//	CheckIn / UpdateEdge ──► writer applies the batch to the mutable graph
//	                     ──► persist hook appends the batch to the WAL
//	                         (one fsync per published batch under "always")
//	                     ──► snapshot published; waiters released
//
// so a write that became visible to readers is already in the log, and under
// FsyncAlways already on disk: write-visible implies durable.
//
// Background, a checkpointer periodically serializes the current published
// snapshot with graph.WriteBinary into checkpoint-<seq>.ckpt (seq = the
// snapshot's WAL sequence), keeps the newest two checkpoints, and truncates
// WAL segments fully covered by the older retained one — recovery can always
// fall back one checkpoint without hitting a history gap.
//
// Open(dataDir) recovers: newest valid checkpoint (falling back to the
// previous one if the newest is damaged), then the WAL tail replayed onto it
// — tolerating a torn final record, refusing loudly on mid-log corruption or
// missing history — and resumes the engine with the recovered sequence, so
// epochs and WAL seqs stay monotonic across restarts.
package store

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/snapshot"
	"sacsearch/internal/telemetry"
	"sacsearch/internal/wal"
)

// FsyncPolicy re-exports the WAL fsync policy at the store boundary.
type FsyncPolicy = wal.Policy

// Fsync policy choices.
const (
	FsyncAlways   = wal.PolicyAlways
	FsyncInterval = wal.PolicyInterval
	FsyncNever    = wal.PolicyNever
)

// ParseFsyncPolicy validates a policy string from a flag.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) { return wal.ParsePolicy(s) }

// Options configures a Store. The zero value (plus Init for a first boot)
// serves: fsync always, 16 MiB segments, a checkpoint every minute.
type Options struct {
	// Init is the graph a first boot starts from, used only when dataDir
	// holds no recoverable state; the store takes ownership of it. Opening
	// an empty directory with a nil Init fails.
	Init *graph.Graph
	// Fsync selects when WAL appends reach stable storage (default
	// FsyncAlways). See the wal package for the trade-offs.
	Fsync FsyncPolicy
	// FsyncInterval paces the background fsync under FsyncInterval policy
	// (default 100 ms).
	FsyncInterval time.Duration
	// SegmentBytes rotates WAL segments past this size (default 16 MiB).
	SegmentBytes int64
	// CheckpointInterval is the background checkpoint period (default 1m;
	// negative disables the timer).
	CheckpointInterval time.Duration
	// CheckpointEvents additionally triggers a checkpoint once this many WAL
	// records accumulate past the last one (0 disables the event trigger).
	CheckpointEvents uint64
	// Engine passes through the snapshot engine's queue and batch tuning.
	// Persist and InitialSeq are owned by the store and must be left zero.
	Engine snapshot.Options
	// Metrics, when non-nil, instruments the store and is forwarded to the
	// WAL and engine it owns: fsync and publish latency histograms,
	// checkpoint duration, segment gauges.
	Metrics *telemetry.Registry
}

func (o Options) checkpointInterval() time.Duration {
	if o.CheckpointInterval == 0 {
		return time.Minute
	}
	return o.CheckpointInterval
}

// Stats is the durability status /api/health reports.
type Stats struct {
	// WalSegments and WalBytes size the live log.
	WalSegments int   `json:"walSegments"`
	WalBytes    int64 `json:"walBytes"`
	// WalLastSeq is the newest logged record's sequence.
	WalLastSeq uint64 `json:"walLastSeq"`
	// LastCheckpointSeq is the WAL sequence the newest checkpoint covers;
	// recovery replays only records after it.
	LastCheckpointSeq uint64 `json:"lastCheckpointSeq"`
	// FsyncPolicy is the effective policy name.
	FsyncPolicy string `json:"fsyncPolicy"`
	// Recovered reports whether Open rebuilt state from disk (vs Init), and
	// ReplayedRecords how many WAL records that replay applied.
	Recovered       bool `json:"recovered"`
	ReplayedRecords int  `json:"replayedRecords"`
	// CheckpointError surfaces the last background checkpoint failure (""
	// when healthy): the store keeps serving, but the WAL stops shrinking.
	CheckpointError string `json:"checkpointError,omitempty"`
	// Epoch is the store's leadership epoch; FencedBy is the foreign epoch
	// that fenced it (0 = accepting writes).
	Epoch    uint64 `json:"epoch"`
	FencedBy uint64 `json:"fencedBy,omitempty"`
}

// Store is a durable snapshot engine. All methods are safe for concurrent
// use.
type Store struct {
	dir string
	opt Options
	log *wal.Log
	eng *snapshot.Engine

	recovered bool
	replayed  int

	// ckptMu serializes checkpoint writes; lastCkptErr (under it) latches
	// the most recent background checkpoint failure for Stats.
	ckptMu      sync.Mutex
	lastCkptErr error
	lastCkpt    atomic.Uint64
	sinceCkpt   atomic.Uint64

	// epochMu guards the persisted fencing state; fenced mirrors
	// "fencedBy > 0" for the lock-free write-path check.
	epochMu  sync.Mutex
	epoch    uint64
	fencedBy uint64
	fenced   atomic.Bool

	kick        chan struct{}
	stop        chan struct{}
	done        chan struct{}
	ckptStarted bool
	closeOnce   sync.Once
	closeErr    error

	recScratch []wal.Record // persist-hook scratch; writer goroutine only

	ckptDur *telemetry.Histogram // nil-safe checkpoint-latency instrument
}

// HasState reports whether dataDir holds a checkpoint to recover from —
// the cheap probe callers use to skip building a bootstrap graph that
// Open would discard anyway. It does not validate the checkpoint; Open
// still fails loudly when none of the files load.
func HasState(dataDir string) bool {
	seqs, err := listCheckpoints(dataDir)
	return err == nil && len(seqs) > 0
}

// Open recovers (or bootstraps) the durable store rooted at dataDir and
// starts its engine and checkpointer. Close releases both.
func Open(dataDir string, opt Options) (*Store, error) {
	if opt.Engine.Persist != nil || opt.Engine.InitialSeq != 0 {
		return nil, errors.New("store: Options.Engine.Persist/InitialSeq are owned by the store")
	}
	if _, err := wal.ParsePolicy(string(opt.Fsync)); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dataDir, 0o755); err != nil {
		return nil, fmt.Errorf("store: creating data dir: %w", err)
	}
	removeStaleTemp(dataDir)

	epoch, fencedBy, epochFound, err := loadEpochFile(dataDir)
	if err != nil {
		return nil, err
	}
	if !epochFound {
		// First boot (or a data dir from before fencing existed): epoch 1,
		// unfenced, persisted before any write is accepted.
		epoch = 1
		if err := writeEpochFile(dataDir, epoch, 0); err != nil {
			return nil, err
		}
	}

	g, ckptSeq, found, err := recoverCheckpoint(dataDir)
	if err != nil {
		return nil, err
	}
	if !found {
		if opt.Init == nil {
			return nil, fmt.Errorf("store: %s holds no checkpoint and no initial graph was provided", dataDir)
		}
		g, ckptSeq = opt.Init, 0
	}

	log, err := wal.Open(dataDir, ckptSeq, wal.Options{
		Policy:        opt.Fsync,
		SegmentBytes:  opt.SegmentBytes,
		FlushInterval: opt.FsyncInterval,
		Metrics:       opt.Metrics,
	})
	if err != nil {
		return nil, err
	}
	if !found && log.LastSeq() > 0 {
		// A WAL without any checkpoint means the base state the log applies
		// to is gone; replaying it onto an unrelated Init graph would serve
		// silently wrong answers.
		log.Close()
		return nil, fmt.Errorf("store: %s has %d WAL records but no checkpoint to apply them to", dataDir, log.LastSeq())
	}
	replayed, err := wal.Replay(dataDir, ckptSeq, func(r wal.Record) error {
		return applyRecord(g, r)
	})
	if err != nil {
		log.Close()
		return nil, fmt.Errorf("store: replaying WAL tail: %w", err)
	}

	st := &Store{
		dir:       dataDir,
		opt:       opt,
		log:       log,
		recovered: found,
		replayed:  replayed,
		kick:      make(chan struct{}, 1),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
	st.lastCkpt.Store(ckptSeq)
	st.sinceCkpt.Store(log.LastSeq() - ckptSeq)
	st.epoch = epoch
	st.fencedBy = fencedBy
	st.fenced.Store(fencedBy > 0)

	if !found {
		// First boot: persist the base state before serving, so every later
		// recovery has a checkpoint to anchor the WAL chain to. This runs
		// before the engine takes ownership of g — afterwards only the
		// writer goroutine may touch it.
		if err := writeCheckpoint(dataDir, g, log.LastSeq()); err != nil {
			log.Close()
			return nil, err
		}
		st.lastCkpt.Store(log.LastSeq())
		st.sinceCkpt.Store(0)
	}

	engOpt := opt.Engine
	engOpt.Persist = st.persistBatch
	engOpt.InitialSeq = log.LastSeq()
	if engOpt.Metrics == nil {
		engOpt.Metrics = opt.Metrics
	}
	st.eng = snapshot.New(g, engOpt)
	st.ckptDur = opt.Metrics.Histogram("sac_store_checkpoint_duration_seconds",
		"Checkpoint write latency (snapshot serialization plus WAL truncation).",
		[]float64{0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1, 5, 15, 60})
	opt.Metrics.GaugeFunc("sac_store_last_checkpoint_seq",
		"WAL sequence covered by the newest checkpoint.",
		func() float64 { return float64(st.lastCkpt.Load()) })

	if opt.checkpointInterval() > 0 || opt.CheckpointEvents > 0 {
		st.ckptStarted = true
		go st.checkpointer()
	}
	return st, nil
}

// persistBatch is the engine's durability hook: it runs in the writer
// goroutine, appending one publication's worth of state-changing events as a
// single group commit.
func (s *Store) persistBatch(batch []snapshot.AppliedEvent) (uint64, error) {
	recs := s.recScratch[:0]
	for _, ev := range batch {
		if ev.Checkin {
			recs = append(recs, wal.Record{Kind: wal.KindCheckin, V: ev.V, Loc: ev.Loc})
		} else {
			recs = append(recs, wal.Record{Kind: wal.KindEdge, U: ev.U, W: ev.W, Insert: ev.Insert})
		}
	}
	s.recScratch = recs
	seq, err := s.log.Append(recs)
	if err != nil {
		return 0, err
	}
	if n := s.sinceCkpt.Add(uint64(len(recs))); s.opt.CheckpointEvents > 0 && n >= s.opt.CheckpointEvents {
		select {
		case s.kick <- struct{}{}:
		default:
		}
	}
	return seq, nil
}

// applyRecord replays one WAL record directly onto the pre-engine graph.
// Records were validated before logging, so a failure here means the log
// belongs to a different graph — fail loudly.
func applyRecord(g *graph.Graph, r wal.Record) error {
	n := graph.V(g.NumVertices())
	switch r.Kind {
	case wal.KindCheckin:
		if r.V < 0 || r.V >= n {
			return fmt.Errorf("store: WAL seq %d moves vertex %d, graph has %d", r.Seq, r.V, n)
		}
		if !geom.Finite(r.Loc.X) || !geom.Finite(r.Loc.Y) {
			return fmt.Errorf("store: WAL seq %d has non-finite location", r.Seq)
		}
		g.SetLoc(r.V, r.Loc)
	case wal.KindEdge:
		if r.U < 0 || r.U >= n || r.W < 0 || r.W >= n || r.U == r.W {
			return fmt.Errorf("store: WAL seq %d touches edge (%d,%d), graph has %d vertices", r.Seq, r.U, r.W, n)
		}
		if r.Insert {
			g.AddEdge(r.U, r.W)
		} else {
			g.RemoveEdge(r.U, r.W)
		}
	default:
		return fmt.Errorf("store: WAL seq %d has unknown kind %d", r.Seq, r.Kind)
	}
	return nil
}

// Engine exposes the underlying snapshot engine; queries and writes through
// it are durable (the persist hook rides inside its writer loop).
func (s *Store) Engine() *snapshot.Engine { return s.eng }

// Current returns the latest published snapshot.
func (s *Store) Current() *snapshot.Snap { return s.eng.Current() }

// CheckIn forwards to the engine; when it returns, the write is published
// and logged (and, under FsyncAlways, on disk). A fenced store rejects the
// write before it reaches the engine.
func (s *Store) CheckIn(ctx context.Context, v graph.V, p geom.Point) error {
	if s.fenced.Load() {
		return ErrFenced
	}
	return s.eng.CheckIn(ctx, v, p)
}

// UpdateEdge forwards to the engine with the same durability and fencing
// guarantees as CheckIn.
func (s *Store) UpdateEdge(ctx context.Context, u, v graph.V, insert bool) (bool, error) {
	if s.fenced.Load() {
		return false, ErrFenced
	}
	return s.eng.UpdateEdge(ctx, u, v, insert)
}

// Dir returns the data directory the store owns; the replication shipper
// opens its WAL cursors there.
func (s *Store) Dir() string { return s.dir }

// WalLastSeq returns the newest logged record's sequence — the leader's
// replication high-water mark.
func (s *Store) WalLastSeq() uint64 { return s.log.LastSeq() }

// Stats reports the durability status.
func (s *Store) Stats() Stats {
	segs, bytes := s.log.Stats()
	st := Stats{
		WalSegments:       segs,
		WalBytes:          bytes,
		WalLastSeq:        s.log.LastSeq(),
		LastCheckpointSeq: s.lastCkpt.Load(),
		FsyncPolicy:       string(s.log.Policy()),
		Recovered:         s.recovered,
		ReplayedRecords:   s.replayed,
	}
	s.ckptMu.Lock()
	if s.lastCkptErr != nil {
		st.CheckpointError = s.lastCkptErr.Error()
	}
	s.ckptMu.Unlock()
	s.epochMu.Lock()
	st.Epoch = s.epoch
	st.FencedBy = s.fencedBy
	s.epochMu.Unlock()
	return st
}

// checkpointer runs background checkpoints on a timer and on the
// record-count kick from the persist hook.
func (s *Store) checkpointer() {
	defer close(s.done)
	var tick <-chan time.Time
	if iv := s.opt.checkpointInterval(); iv > 0 {
		t := time.NewTicker(iv)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case <-s.stop:
			return
		case <-tick:
		case <-s.kick:
		}
		// Failures are latched for Stats, not fatal: the WAL keeps every
		// write safe, it just stops shrinking until a checkpoint succeeds.
		_ = s.Checkpoint()
	}
}

// Checkpoint persists the current published snapshot and truncates the WAL
// segments it makes redundant. Safe to call at any time; concurrent calls
// serialize. No-op when nothing new was published since the last checkpoint.
func (s *Store) Checkpoint() error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	snap := s.eng.Current()
	seq := snap.WalSeq()
	if seq <= s.lastCkpt.Load() {
		return nil
	}
	start := time.Now()
	defer func() { s.ckptDur.Observe(time.Since(start).Seconds()) }()
	// The published graph is frozen and immutable; WriteBinary is a pure
	// reader, so checkpointing never blocks writers or queries.
	if err := writeCheckpoint(s.dir, snap.Graph(), seq); err != nil {
		s.lastCkptErr = err
		return err
	}
	s.lastCkpt.Store(seq)
	s.sinceCkpt.Store(s.log.LastSeq() - seq)
	// Keep this checkpoint and its predecessor, and truncate the WAL only
	// through the older retained one: if the newest checkpoint file turns
	// out damaged at the next recovery, the fallback still has every record
	// it needs to replay forward.
	horizon, err := pruneCheckpoints(s.dir, 2)
	if err != nil {
		s.lastCkptErr = err
		return err
	}
	if err := s.log.TruncateThrough(horizon); err != nil {
		s.lastCkptErr = err
		return err
	}
	s.lastCkptErr = nil
	return nil
}

// Close checkpoints the final state (best effort — the WAL already holds
// everything), stops the checkpointer and engine, and closes the log.
func (s *Store) Close() error {
	s.closeOnce.Do(func() {
		s.stopBackground()
		s.eng.Close()
		ckptErr := s.Checkpoint()
		logErr := s.log.Close()
		s.closeErr = errors.Join(ckptErr, logErr)
	})
	return s.closeErr
}

// Crash tears the store down the way SIGKILL would: no final checkpoint, no
// orderly anything — the data dir is left exactly as the last append/
// checkpoint left it. Crash-recovery tests reopen the directory afterwards;
// production code should call Close.
func (s *Store) Crash() {
	s.closeOnce.Do(func() {
		s.stopBackground()
		s.eng.Close()
		_ = s.log.Close()
	})
}

func (s *Store) stopBackground() {
	close(s.stop)
	if s.ckptStarted {
		<-s.done
	}
}

// --- checkpoint files -------------------------------------------------------

// Checkpoint file layout: a 20-byte header — magic "SACCKPT1", the covered
// WAL sequence, and a CRC-32 of those 16 bytes — followed by the
// graph.WriteBinary stream (which carries its own checksum). Files are
// written to a temp name, fsynced, renamed into place, and the directory
// fsynced, so a crash mid-checkpoint leaves only an ignorable .tmp.

var ckptMagic = [8]byte{'S', 'A', 'C', 'C', 'K', 'P', 'T', '1'}

const (
	ckptPrefix = "checkpoint-"
	ckptSuffix = ".ckpt"
)

func ckptName(seq uint64) string { return wal.NumberedName(ckptPrefix, seq, ckptSuffix) }

func parseCkptName(name string) (uint64, bool) {
	return wal.ParseNumberedName(name, ckptPrefix, ckptSuffix)
}

func writeCheckpoint(dir string, g *graph.Graph, seq uint64) error {
	path := filepath.Join(dir, ckptName(seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return fmt.Errorf("store: creating checkpoint: %w", err)
	}
	var hdr [20]byte
	copy(hdr[:8], ckptMagic[:])
	binary.LittleEndian.PutUint64(hdr[8:], seq)
	binary.LittleEndian.PutUint32(hdr[16:], crc32.ChecksumIEEE(hdr[:16]))
	if _, err := f.Write(hdr[:]); err == nil {
		err = graph.WriteBinary(f, g)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: writing checkpoint %d: %w", seq, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("store: installing checkpoint %d: %w", seq, err)
	}
	return wal.SyncDir(dir)
}

func loadCheckpoint(path string) (*graph.Graph, uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, err
	}
	defer f.Close()
	var hdr [20]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, 0, fmt.Errorf("store: checkpoint header: %w", err)
	}
	if [8]byte(hdr[:8]) != ckptMagic {
		return nil, 0, fmt.Errorf("store: %s is not a checkpoint (bad magic)", path)
	}
	if got := binary.LittleEndian.Uint32(hdr[16:]); got != crc32.ChecksumIEEE(hdr[:16]) {
		return nil, 0, fmt.Errorf("store: %s has a corrupt header", path)
	}
	seq := binary.LittleEndian.Uint64(hdr[8:])
	g, err := graph.ReadBinary(f)
	if err != nil {
		return nil, 0, fmt.Errorf("store: checkpoint graph: %w", err)
	}
	return g, seq, nil
}

// listCheckpoints returns checkpoint seqs ascending.
func listCheckpoints(dir string) ([]uint64, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("store: reading %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range entries {
		if seq, ok := parseCkptName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// recoverCheckpoint loads the newest checkpoint that validates, falling back
// to older ones. found=false only when the directory holds no checkpoint
// files at all; existing-but-unloadable checkpoints are a loud error, never
// a silent fresh start.
func recoverCheckpoint(dir string) (g *graph.Graph, seq uint64, found bool, err error) {
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return nil, 0, false, err
	}
	if len(seqs) == 0 {
		return nil, 0, false, nil
	}
	var fails []error
	for i := len(seqs) - 1; i >= 0; i-- {
		path := filepath.Join(dir, ckptName(seqs[i]))
		g, gotSeq, err := loadCheckpoint(path)
		if err != nil {
			fails = append(fails, err)
			continue
		}
		if gotSeq != seqs[i] {
			fails = append(fails, fmt.Errorf("store: %s claims seq %d", path, gotSeq))
			continue
		}
		return g, gotSeq, true, nil
	}
	return nil, 0, false, fmt.Errorf("store: no checkpoint in %s is readable: %w", dir, errors.Join(fails...))
}

// pruneCheckpoints keeps the newest `keep` checkpoint files and removes the
// rest, returning the oldest retained sequence (the safe WAL truncation
// horizon).
func pruneCheckpoints(dir string, keep int) (uint64, error) {
	seqs, err := listCheckpoints(dir)
	if err != nil {
		return 0, err
	}
	if len(seqs) == 0 {
		return 0, nil
	}
	removed := false
	for len(seqs) > keep {
		if err := os.Remove(filepath.Join(dir, ckptName(seqs[0]))); err != nil {
			return 0, fmt.Errorf("store: pruning checkpoint: %w", err)
		}
		removed = true
		seqs = seqs[1:]
	}
	if removed {
		if err := wal.SyncDir(dir); err != nil {
			return 0, err
		}
	}
	return seqs[0], nil
}

// removeStaleTemp drops .tmp leftovers from a crash mid-checkpoint.
func removeStaleTemp(dir string) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	for _, e := range entries {
		name := e.Name()
		if strings.HasPrefix(name, ckptPrefix) && strings.HasSuffix(name, ".tmp") {
			os.Remove(filepath.Join(dir, name))
		}
	}
}
