package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/store"
)

// testGraph plants a handful of spatial cliques; every vertex has a tight
// community for k up to 4.
func testGraph() *graph.Graph {
	rnd := rand.New(rand.NewSource(7))
	const nc, cs = 6, 6
	b := graph.NewBuilder(nc * cs)
	for c := 0; c < nc; c++ {
		cx, cy := rnd.Float64(), rnd.Float64()
		for i := 0; i < cs; i++ {
			v := graph.V(c*cs + i)
			b.SetLoc(v, geom.Point{
				X: cx + (rnd.Float64()-0.5)*0.05,
				Y: cy + (rnd.Float64()-0.5)*0.05,
			})
			for j := 0; j < i; j++ {
				b.AddEdge(v, graph.V(c*cs+j))
			}
		}
	}
	b.AddEdge(0, 6)
	b.AddEdge(0, 12)
	return b.Build()
}

func newTestServer(t *testing.T) (*httptest.Server, *graph.Graph) {
	t.Helper()
	g := testGraph()
	srv := New("test", g)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return ts, g
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	if _, err := out.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp, out.Bytes()
}

func getJSON(t *testing.T, url string, into any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if into != nil {
		if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp
}

func TestHealth(t *testing.T) {
	ts, g := newTestServer(t)
	var out struct {
		Status   string `json:"status"`
		Dataset  string `json:"dataset"`
		Vertices int    `json:"vertices"`
		Edges    int    `json:"edges"`
	}
	resp := getJSON(t, ts.URL+"/api/health", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.Status != "ok" || out.Dataset != "test" || out.Vertices != g.NumVertices() || out.Edges != g.NumEdges() {
		t.Fatalf("health = %+v", out)
	}
}

func TestAlgorithms(t *testing.T) {
	ts, _ := newTestServer(t)
	var out []map[string]any
	resp := getJSON(t, ts.URL+"/api/algorithms", &out)
	if resp.StatusCode != http.StatusOK || len(out) != 6 {
		t.Fatalf("algorithms: status=%d n=%d", resp.StatusCode, len(out))
	}
}

func TestVertex(t *testing.T) {
	ts, g := newTestServer(t)
	var out struct {
		ID     graph.V `json:"id"`
		X      float64 `json:"x"`
		Y      float64 `json:"y"`
		Degree int     `json:"degree"`
		Core   int     `json:"core"`
	}
	resp := getJSON(t, ts.URL+"/api/vertex/3", &out)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if out.ID != 3 || out.Degree != g.Degree(3) || out.Core < 4 {
		t.Fatalf("vertex = %+v", out)
	}
	if resp := getJSON(t, ts.URL+"/api/vertex/9999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown vertex status = %d", resp.StatusCode)
	}
	// A malformed id is a syntax error (400), not a miss (404).
	if resp := getJSON(t, ts.URL+"/api/vertex/abc", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage vertex status = %d", resp.StatusCode)
	}
}

func TestQueryAlgorithms(t *testing.T) {
	ts, g := newTestServer(t)
	s := core.NewSearcher(g)
	for _, algo := range []string{"", "appfast", "appinc", "appacc", "exact+", "exact"} {
		resp, body := postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 1, K: 4, Algo: algo})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("algo %q: status %d body %s", algo, resp.StatusCode, body)
		}
		var out QueryResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatalf("algo %q: %v", algo, err)
		}
		if len(out.Members) == 0 || out.MCC.R < 0 {
			t.Fatalf("algo %q: response %+v", algo, out)
		}
		// Every returned community must contain q and be feasible.
		found := false
		for _, v := range out.Members {
			if v == 1 {
				found = true
			}
		}
		if !found {
			t.Fatalf("algo %q: community misses q: %v", algo, out.Members)
		}
	}
	// θ-SAC with an explicit radius.
	want, err := s.ThetaSAC(1, 4, 0.2)
	if err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 1, K: 4, Algo: "theta", Theta: core.Float(0.2)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("theta: status %d body %s", resp.StatusCode, body)
	}
	var out QueryResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Members) != len(want.Members) {
		t.Fatalf("theta members = %v, want %v", out.Members, want.Members)
	}
}

func TestQueryErrors(t *testing.T) {
	ts, _ := newTestServer(t)
	// Unknown algorithm: a validation error, 400 with the registry's code.
	resp, body := postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 1, K: 4, Algo: "bogus"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus algo status = %d", resp.StatusCode)
	}
	var envelope ErrorJSON
	if err := json.Unmarshal(body, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Code != core.ErrCodeUnknownAlgorithm || envelope.Error == "" {
		t.Fatalf("bogus algo envelope = %+v", envelope)
	}
	// θ without a radius.
	resp, _ = postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 1, K: 4, Algo: "theta"})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("theta without radius status = %d", resp.StatusCode)
	}
	// No community for absurd k.
	resp, _ = postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 1, K: 40})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("k=40 status = %d", resp.StatusCode)
	}
	// Malformed JSON.
	r, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader([]byte("{nope")))
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed JSON status = %d", r.StatusCode)
	}
	// Wrong method.
	if resp := getJSON(t, ts.URL+"/api/query", nil); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /api/query status = %d", resp.StatusCode)
	}
}

func TestBatch(t *testing.T) {
	ts, _ := newTestServer(t)
	req := BatchRequest{Workers: 2}
	for _, q := range []graph.V{1, 7, 13, 1} { // includes a duplicate
		req.Queries = append(req.Queries, struct {
			Q graph.V `json:"q"`
			K int     `json:"k"`
		}{q, 4})
	}
	resp, body := postJSON(t, ts.URL+"/api/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d body %s", resp.StatusCode, body)
	}
	var out BatchResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 4 {
		t.Fatalf("items = %d, want 4", len(out.Items))
	}
	for i, it := range out.Items {
		if it.Error != "" {
			t.Fatalf("item %d: %s", i, it.Error)
		}
		if len(it.Members) == 0 {
			t.Fatalf("item %d: empty members", i)
		}
	}
	// Batch with a failing query keeps the others.
	req.Queries[1].Q = 9999
	resp, body = postJSON(t, ts.URL+"/api/batch", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("mixed batch status = %d", resp.StatusCode)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Items[1].Error == "" {
		t.Fatal("invalid query did not error")
	}
	if out.Items[0].Error != "" || out.Items[2].Error != "" {
		t.Fatal("valid queries infected by the failing one")
	}
	// Empty batch.
	resp, _ = postJSON(t, ts.URL+"/api/batch", BatchRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d", resp.StatusCode)
	}
	// Unknown algorithm.
	req2 := BatchRequest{Algo: "bogus"}
	req2.Queries = req.Queries[:1]
	resp, _ = postJSON(t, ts.URL+"/api/batch", req2)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus batch algo status = %d", resp.StatusCode)
	}
}

func TestCheckinMovesCommunities(t *testing.T) {
	ts, g := newTestServer(t)
	// Query before the move.
	_, body := postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 0, K: 4, Algo: "exact+"})
	var before QueryResponse
	if err := json.Unmarshal(body, &before); err != nil {
		t.Fatal(err)
	}
	// Teleport q across the square.
	resp, _ := postJSON(t, ts.URL+"/api/checkin", CheckinRequest{V: 0, X: 0.99, Y: 0.99})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("checkin status = %d", resp.StatusCode)
	}
	if loc := g.Loc(0); loc.X != 0.99 || loc.Y != 0.99 {
		t.Fatalf("location not applied: %v", loc)
	}
	// The community's MCC must now be different (q moved away from its
	// clique, so the circle covering clique+q grows).
	_, body = postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 0, K: 4, Algo: "exact+"})
	var after QueryResponse
	if err := json.Unmarshal(body, &after); err != nil {
		t.Fatal(err)
	}
	if after.MCC.R <= before.MCC.R {
		t.Fatalf("MCC radius did not grow after teleport: %v -> %v", before.MCC.R, after.MCC.R)
	}
	// Unknown vertex.
	resp, _ = postJSON(t, ts.URL+"/api/checkin", CheckinRequest{V: 9999, X: 0.5, Y: 0.5})
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown checkin status = %d", resp.StatusCode)
	}
}

// Concurrent queries and check-ins must not race (run with -race) and every
// response must be a valid community.
func TestConcurrentQueriesAndCheckins(t *testing.T) {
	ts, _ := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				if w%2 == 0 {
					q := graph.V((w*10 + i) % 36)
					buf, _ := json.Marshal(QueryRequest{Q: q, K: 4})
					resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(buf))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
						errs <- fmt.Errorf("query status %d", resp.StatusCode)
						return
					}
				} else {
					buf, _ := json.Marshal(CheckinRequest{V: graph.V(i % 36), X: 0.5, Y: 0.5})
					resp, err := http.Post(ts.URL+"/api/checkin", "application/json", bytes.NewReader(buf))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// telescopeGraph nests triangles through q = 0 at radii 0.10, 0.11, ...,
// 0.15: pair i sits at distance d_i from q with an edge between its two
// vertices, so every prefix {q, pairs 0..i} is feasible for k = 2 with a
// distinct community. AppFast's alpha cut stops at the 7-member community
// for εF = 0.5 but refines to the innermost triangle for εF = 0 — the
// observable that pins explicit-zero epsilons not being coerced to defaults.
func telescopeGraph() *graph.Graph {
	const pairs = 6
	b := graph.NewBuilder(1 + 2*pairs)
	b.SetLoc(0, geom.Point{X: 0.5, Y: 0.5})
	for i := 0; i < pairs; i++ {
		d := 0.10 + 0.01*float64(i)
		a, c := graph.V(1+2*i), graph.V(2+2*i)
		thA := float64(i) * 0.5
		thC := thA + 0.17
		b.SetLoc(a, geom.Point{X: 0.5 + d*math.Cos(thA), Y: 0.5 + d*math.Sin(thA)})
		b.SetLoc(c, geom.Point{X: 0.5 + d*math.Cos(thC), Y: 0.5 + d*math.Sin(thC)})
		b.AddEdge(0, a)
		b.AddEdge(0, c)
		b.AddEdge(a, c)
	}
	return b.Build()
}

// TestQueryExplicitZeroEpsF pins the wire semantics satellite: an absent
// epsF means the 0.5 default, while an explicit 0 must reach AppFast(0)
// instead of being coerced back to the default.
func TestQueryExplicitZeroEpsF(t *testing.T) {
	srv := New("telescope", telescopeGraph())
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	_, body := postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 0, K: 2})
	var def QueryResponse
	if err := json.Unmarshal(body, &def); err != nil {
		t.Fatal(err)
	}
	zero := 0.0
	_, body = postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 0, K: 2, EpsF: &zero})
	var exact QueryResponse
	if err := json.Unmarshal(body, &exact); err != nil {
		t.Fatal(err)
	}
	if len(def.Members) != 7 {
		t.Fatalf("default epsF members = %v, want the 7-member alpha-cut community", def.Members)
	}
	if len(exact.Members) != 3 {
		t.Fatalf("epsF=0 members = %v, want the innermost triangle", exact.Members)
	}
	if exact.MCC.R >= def.MCC.R {
		t.Fatalf("epsF=0 radius %v not tighter than default %v", exact.MCC.R, def.MCC.R)
	}

	// The batch path plumbs the same distinction through EpsFSet.
	mkBatch := func(epsF *float64) BatchRequest {
		req := BatchRequest{EpsF: epsF}
		req.Queries = append(req.Queries, struct {
			Q graph.V `json:"q"`
			K int     `json:"k"`
		}{0, 2})
		return req
	}
	var out BatchResponse
	_, body = postJSON(t, ts.URL+"/api/batch", mkBatch(nil))
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 1 || len(out.Items[0].Members) != 7 {
		t.Fatalf("batch default epsF = %+v, want 7 members", out.Items)
	}
	_, body = postJSON(t, ts.URL+"/api/batch", mkBatch(&zero))
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Items) != 1 || len(out.Items[0].Members) != 3 {
		t.Fatalf("batch epsF=0 = %+v, want 3 members", out.Items)
	}
}

// TestNonFiniteInputsRejected covers the NaN/Inf validation satellite:
// check-ins and epsilons that would silently poison distance sorts and MCC
// computation come back as 400s.
func TestNonFiniteInputsRejected(t *testing.T) {
	ts, g := newTestServer(t)
	before := g.Loc(3)
	for _, bad := range []CheckinRequest{
		{V: 3, X: math.NaN(), Y: 0.5},
		{V: 3, X: 0.5, Y: math.NaN()},
		{V: 3, X: math.Inf(1), Y: 0.5},
		{V: 3, X: 0.5, Y: math.Inf(-1)},
	} {
		// CheckinRequest marshals NaN/Inf illegally via encoding/json, so
		// build the body by hand the way a hostile client would.
		body := fmt.Sprintf(`{"v":%d,"x":%s,"y":%s}`, bad.V, jsonFloat(bad.X), jsonFloat(bad.Y))
		resp, err := http.Post(ts.URL+"/api/checkin", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("checkin %s: status = %d, want 400", body, resp.StatusCode)
		}
	}
	if g.Loc(3) != before {
		t.Fatalf("rejected checkin still moved the vertex: %v", g.Loc(3))
	}
	// Non-finite epsilons are rejected on both endpoints.
	resp, err := http.Post(ts.URL+"/api/query", "application/json",
		bytes.NewReader([]byte(`{"q":1,"k":4,"epsF":1e999}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("query with epsF=Inf accepted")
	}
	resp, err = http.Post(ts.URL+"/api/batch", "application/json",
		bytes.NewReader([]byte(`{"queries":[{"q":1,"k":4}],"epsA":1e999,"algo":"appacc"}`)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("batch with epsA=Inf status = %d, want 400", resp.StatusCode)
	}
}

// jsonFloat renders a float the way lenient JSON producers do, including the
// out-of-spec NaN/Infinity spellings Go's decoder rejects — so non-finite
// values are smuggled in as huge exponents instead.
func jsonFloat(f float64) string {
	switch {
	case math.IsNaN(f):
		return `1e999` // decodes to +Inf; NaN itself cannot pass the decoder
	case math.IsInf(f, 1):
		return `1e999`
	case math.IsInf(f, -1):
		return `-1e999`
	default:
		return fmt.Sprintf("%g", f)
	}
}

// TestEdgeEndpoint drives friendship churn through the API: deleting a
// clique edge destroys the k=5 community, re-inserting restores it, and the
// pooled workers' caches follow along (no stale communities).
func TestEdgeEndpoint(t *testing.T) {
	ts, g := newTestServer(t)
	query := func() (*http.Response, QueryResponse) {
		resp, body := postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 0, K: 5, Algo: "appinc"})
		var out QueryResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatal(err)
			}
		}
		return resp, out
	}
	// Clique 0 (vertices 0..5) is a 6-clique: the k=5 community exists and
	// is exactly the clique.
	resp, before := query()
	if resp.StatusCode != http.StatusOK || len(before.Members) != 6 {
		t.Fatalf("pre-churn query: status=%d members=%v", resp.StatusCode, before.Members)
	}

	edge := func(u, v graph.V, op string) (int, EdgeResponse) {
		resp, body := postJSON(t, ts.URL+"/api/edge", EdgeRequest{U: u, V: v, Op: op})
		var out EdgeResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(body, &out); err != nil {
				t.Fatal(err)
			}
		}
		return resp.StatusCode, out
	}

	m0 := g.NumEdges()
	status, out := edge(0, 1, "delete")
	if status != http.StatusOK || !out.Changed || out.Edges != m0-1 {
		t.Fatalf("delete: status=%d out=%+v (m0=%d)", status, out, m0)
	}
	// Vertices 0 and 1 now have degree 4 inside the clique: no 5-core.
	if resp, _ := query(); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("query after delete: status=%d, want 404", resp.StatusCode)
	}
	// Deleting again is a no-op.
	if status, out = edge(0, 1, "delete"); status != http.StatusOK || out.Changed {
		t.Fatalf("double delete: status=%d out=%+v", status, out)
	}
	// Re-insert restores the original community.
	if status, out = edge(0, 1, "insert"); status != http.StatusOK || !out.Changed || out.Edges != m0 {
		t.Fatalf("insert: status=%d out=%+v", status, out)
	}
	resp, after := query()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("query after re-insert: status=%d", resp.StatusCode)
	}
	if len(after.Members) != len(before.Members) || after.MCC != before.MCC {
		t.Fatalf("community not restored: %v vs %v", after.Members, before.Members)
	}

	// Error paths: unknown vertex, self-loop, unknown op.
	if status, _ = edge(0, 9999, "insert"); status != http.StatusNotFound {
		t.Fatalf("unknown vertex: status=%d", status)
	}
	if status, _ = edge(2, 2, "insert"); status != http.StatusBadRequest {
		t.Fatalf("self-loop: status=%d", status)
	}
	if status, _ = edge(0, 1, "frobnicate"); status != http.StatusBadRequest {
		t.Fatalf("unknown op: status=%d", status)
	}
}

// TestHealthSnapshotFields pins the operator-facing health satellite: the
// endpoint reports the published snapshot's epochs and sequence, the writer
// queue depth and the worker-pool size, and the epochs advance with writes.
func TestHealthSnapshotFields(t *testing.T) {
	ts, _ := newTestServer(t)
	type health struct {
		SnapshotSeq   uint64 `json:"snapshotSeq"`
		LocEpoch      uint64 `json:"locEpoch"`
		TopoEpoch     uint64 `json:"topoEpoch"`
		WriterQueue   *int   `json:"writerQueue"`
		PoolClones    *int64 `json:"poolClones"`
		EventsApplied uint64 `json:"eventsApplied"`
	}
	var before health
	getJSON(t, ts.URL+"/api/health", &before)
	if before.SnapshotSeq < 1 || before.WriterQueue == nil || before.PoolClones == nil {
		t.Fatalf("health missing snapshot fields: %+v", before)
	}
	// A check-in and an edge update must advance their epochs and the
	// sequence number.
	postJSON(t, ts.URL+"/api/checkin", CheckinRequest{V: 2, X: 0.4, Y: 0.4})
	postJSON(t, ts.URL+"/api/edge", EdgeRequest{U: 0, V: 30, Op: "insert"})
	var after health
	getJSON(t, ts.URL+"/api/health", &after)
	if after.SnapshotSeq <= before.SnapshotSeq {
		t.Fatalf("snapshotSeq did not advance: %d -> %d", before.SnapshotSeq, after.SnapshotSeq)
	}
	if after.LocEpoch <= before.LocEpoch || after.TopoEpoch <= before.TopoEpoch {
		t.Fatalf("epochs did not advance: %+v -> %+v", before, after)
	}
	if after.EventsApplied < 2 {
		t.Fatalf("eventsApplied = %d, want ≥ 2", after.EventsApplied)
	}
}

// TestOversizedBodyRejected pins the MaxBytesReader satellite: a POST body
// over the configured cap comes back as 413 without being decoded, on every
// mutating and querying endpoint.
func TestOversizedBodyRejected(t *testing.T) {
	srv := NewWithConfig("test", testGraph(), Config{MaxBodyBytes: 512})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	big := BatchRequest{}
	for i := 0; i < 2000; i++ {
		big.Queries = append(big.Queries, struct {
			Q graph.V `json:"q"`
			K int     `json:"k"`
		}{graph.V(i % 36), 4})
	}
	for _, ep := range []string{"/api/batch", "/api/query", "/api/checkin", "/api/edge"} {
		resp, _ := postJSON(t, ts.URL+ep, big)
		if resp.StatusCode != http.StatusRequestEntityTooLarge {
			t.Fatalf("%s oversized body: status = %d, want 413", ep, resp.StatusCode)
		}
	}
	// Within the cap still works.
	resp, body := postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 1, K: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body after cap: status = %d body %s", resp.StatusCode, body)
	}
}

// TestQueryDeadline pins the per-request deadline: with an immediately
// expiring budget, queries come back 503 as ErrCanceled instead of running
// to completion.
func TestQueryDeadline(t *testing.T) {
	srv := NewWithConfig("test", testGraph(), Config{QueryTimeout: time.Nanosecond})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	resp, body := postJSON(t, ts.URL+"/api/query", QueryRequest{Q: 1, K: 4, Algo: "exact"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired deadline: status = %d body %s, want 503", resp.StatusCode, body)
	}
	var e struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(body, &e); err != nil || e.Error == "" {
		t.Fatalf("expired deadline: body %s", body)
	}
	// Batches report the same way: 503, not 200 with per-item errors.
	req := BatchRequest{}
	req.Queries = append(req.Queries, struct {
		Q graph.V `json:"q"`
		K int     `json:"k"`
	}{1, 4})
	resp, body = postJSON(t, ts.URL+"/api/batch", req)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("expired batch deadline: status = %d body %s, want 503", resp.StatusCode, body)
	}
}

// TestConcurrentQueriesCheckinsAndEdges extends the concurrency test with
// topology churn: queries, check-ins and edge updates in flight together
// must not race (run with -race), and queries must only ever see coherent
// snapshots (200 or 404).
func TestConcurrentQueriesCheckinsAndEdges(t *testing.T) {
	ts, _ := newTestServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 96)
	for w := 0; w < 9; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				switch w % 3 {
				case 0: // queries
					q := graph.V((w*12 + i) % 36)
					buf, _ := json.Marshal(QueryRequest{Q: q, K: 4})
					resp, err := http.Post(ts.URL+"/api/query", "application/json", bytes.NewReader(buf))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusNotFound {
						errs <- fmt.Errorf("query status %d", resp.StatusCode)
						return
					}
				case 1: // check-ins
					buf, _ := json.Marshal(CheckinRequest{V: graph.V(i % 36), X: 0.5, Y: 0.5})
					resp, err := http.Post(ts.URL+"/api/checkin", "application/json", bytes.NewReader(buf))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
				case 2: // edge churn: toggle long-range edges between cliques
					op := "insert"
					if i%2 == 1 {
						op = "delete"
					}
					u := graph.V((w + i) % 6)
					v := graph.V(18 + (w+i)%6)
					buf, _ := json.Marshal(EdgeRequest{U: u, V: v, Op: op})
					resp, err := http.Post(ts.URL+"/api/edge", "application/json", bytes.NewReader(buf))
					if err != nil {
						errs <- err
						return
					}
					resp.Body.Close()
					if resp.StatusCode != http.StatusOK {
						errs <- fmt.Errorf("edge status %d", resp.StatusCode)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDurableServer serves over a store: health gains the durability stats,
// and a write acknowledged over HTTP survives a server restart from the same
// data dir.
func TestDurableServer(t *testing.T) {
	dir := t.TempDir()
	open := func() (*httptest.Server, *Server) {
		st, err := store.Open(dir, store.Options{Init: testGraph()})
		if err != nil {
			t.Fatal(err)
		}
		srv := NewWithStore("durable-test", st, Config{})
		ts := httptest.NewServer(srv)
		return ts, srv
	}
	ts, srv := open()

	var health map[string]any
	getJSON(t, ts.URL+"/api/health", &health)
	if health["durable"] != true {
		t.Fatalf("health durable = %v", health["durable"])
	}
	for _, key := range []string{"walSegments", "walBytes", "walLastSeq", "lastCheckpointSeq", "fsyncPolicy"} {
		if _, ok := health[key]; !ok {
			t.Fatalf("health misses %q: %v", key, health)
		}
	}
	if health["fsyncPolicy"] != "always" {
		t.Fatalf("fsyncPolicy = %v", health["fsyncPolicy"])
	}

	// Acknowledged writes: a check-in and an edge insert.
	if resp, body := postJSON(t, ts.URL+"/api/checkin", CheckinRequest{V: 3, X: 0.25, Y: 0.75}); resp.StatusCode != http.StatusOK {
		t.Fatalf("checkin: %d %s", resp.StatusCode, body)
	}
	if resp, body := postJSON(t, ts.URL+"/api/edge", EdgeRequest{U: 0, V: 18, Op: "insert"}); resp.StatusCode != http.StatusOK {
		t.Fatalf("edge: %d %s", resp.StatusCode, body)
	}
	getJSON(t, ts.URL+"/api/health", &health)
	if got := health["walLastSeq"].(float64); got != 2 {
		t.Fatalf("walLastSeq after two writes = %v", got)
	}

	// Restart: close everything, reopen from the same dir.
	ts.Close()
	srv.Close()
	ts2, srv2 := open()
	defer ts2.Close()
	defer srv2.Close()

	snap := srv2.Engine().Current()
	if loc := snap.Graph().Loc(3); loc.X != 0.25 || loc.Y != 0.75 {
		t.Fatalf("check-in lost across restart: %v", loc)
	}
	if !snap.Graph().HasEdge(0, 18) {
		t.Fatal("edge lost across restart")
	}
	// In-memory servers advertise durable=false and no WAL fields.
	tsMem, _ := newTestServer(t)
	health = nil // decoding into a non-nil map merges; start clean
	getJSON(t, tsMem.URL+"/api/health", &health)
	if health["durable"] != false {
		t.Fatalf("in-memory health durable = %v", health["durable"])
	}
	if _, ok := health["walSegments"]; ok {
		t.Fatal("in-memory health reports WAL stats")
	}
}
