// Dynamic community tracking (the paper's Figure 2 scenario): as a user
// travels, her spatial-aware community changes even though her friendships
// do not. The example replays a synthetic check-in stream, snapshots the
// most-traveled user's SAC at every check-in, and shows the community
// turning over as she moves — plus the CJS/CAO decay curve over all movers
// (the Figure 13 measurement).
//
// Going beyond the paper, the replay also churns friendships: a synthetic
// edge-event stream (triadic-closure ties forming, old ties dissolving)
// interleaves with the check-ins, applied through the searcher's
// incremental core maintenance, so each snapshot reflects both where the
// users are and who they currently know.
//
//	go run ./examples/dynamictrack
package main

import (
	"context"
	"fmt"
	"log"

	"sacsearch"
)

func main() {
	g := sacsearch.GenerateSocialGraph(3000, 18000, 99)
	checkins := sacsearch.GenerateCheckins(g, 100)
	churn := sacsearch.GenerateEdgeChurn(g, 800, 101)
	movers := sacsearch.SelectMovers(g, checkins, 8, 10)
	if len(movers) == 0 {
		log.Fatal("no movers")
	}
	fmt.Printf("replaying %d check-ins and %d friendship events over %d users; tracking %d movers\n\n",
		len(checkins), len(churn), g.NumVertices(), len(movers))

	s := sacsearch.NewSearcher(g)
	search := func(q sacsearch.V, k int) ([]sacsearch.V, sacsearch.Circle, error) {
		res, err := s.Search(context.Background(), sacsearch.Query{Algo: "exact+", Q: q, K: k})
		if err != nil {
			return nil, sacsearch.Circle{}, err
		}
		return res.Members, res.MCC, nil
	}
	const k = 3
	timelines, err := sacsearch.ReplayWithEdges(g, checkins, churn, movers,
		200 /* warm-up days */, k, search, sacsearch.ApplyEdgesVia(s))
	if err != nil {
		log.Fatal(err)
	}

	// Portrait of the single most-traveled user, like Figure 2's maps.
	star := movers[0]
	snaps := timelines[star]
	fmt.Printf("user %d's SAC over time (%d snapshots):\n", star, len(snaps))
	var prev *sacsearch.Snapshot
	for i := range snaps {
		sn := snaps[i]
		turnover := ""
		if prev != nil {
			turnover = fmt.Sprintf("  CJS vs prev %.2f", sacsearch.CJS(prev.Members, sn.Members))
		}
		fmt.Printf("  day %6.1f: %2d members at (%.3f, %.3f) r=%.4f%s\n",
			sn.Time, len(sn.Members), sn.MCC.C.X, sn.MCC.C.Y, sn.MCC.R, turnover)
		prev = &snaps[i]
		if i == 11 {
			fmt.Printf("  ... (%d more)\n", len(snaps)-12)
			break
		}
	}

	// Aggregate decay across all movers.
	points := sacsearch.Decay(timelines, []float64{0.25, 0.5, 1, 3, 5, 7, 10, 15})
	fmt.Printf("\ncommunity stability vs time gap (all movers):\n")
	fmt.Printf("%10s %10s %10s %8s\n", "η (days)", "avg CJS", "avg CAO", "pairs")
	for _, p := range points {
		fmt.Printf("%10.2f %10.3f %10.3f %8d\n", p.EtaDays, p.CJS, p.CAO, p.Pairs)
	}
	fmt.Println("\ncommunities drift apart as the gap grows — the paper's Figure 13 shape.")
}
