package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestDist(t *testing.T) {
	a := Point{0, 0}
	b := Point{3, 4}
	if got := a.Dist(b); got != 5 {
		t.Fatalf("Dist = %v, want 5", got)
	}
	if got := a.Dist2(b); got != 25 {
		t.Fatalf("Dist2 = %v, want 25", got)
	}
	if got := a.Dist(a); got != 0 {
		t.Fatalf("Dist(a,a) = %v, want 0", got)
	}
}

func TestPointArithmetic(t *testing.T) {
	a := Point{1, 2}
	b := Point{3, -4}
	if got := a.Add(b); got != (Point{4, -2}) {
		t.Fatalf("Add = %v", got)
	}
	if got := a.Sub(b); got != (Point{-2, 6}) {
		t.Fatalf("Sub = %v", got)
	}
	if got := a.Scale(2); got != (Point{2, 4}) {
		t.Fatalf("Scale = %v", got)
	}
	if got := a.Mid(b); got != (Point{2, -1}) {
		t.Fatalf("Mid = %v", got)
	}
}

func TestCircleContains(t *testing.T) {
	c := Circle{C: Point{0, 0}, R: 1}
	cases := []struct {
		p    Point
		want bool
	}{
		{Point{0, 0}, true},
		{Point{1, 0}, true},
		{Point{0, -1}, true},
		{Point{1 + Eps/2, 0}, true}, // boundary tolerance
		{Point{1.001, 0}, false},
		{Point{0.7, 0.7}, true},
		{Point{0.8, 0.8}, false},
	}
	for _, tc := range cases {
		if got := c.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestContainsCircle(t *testing.T) {
	big := Circle{C: Point{0, 0}, R: 2}
	small := Circle{C: Point{0.5, 0}, R: 1}
	if !big.ContainsCircle(small) {
		t.Fatal("big should contain small")
	}
	if small.ContainsCircle(big) {
		t.Fatal("small should not contain big")
	}
	if !big.ContainsCircle(big) {
		t.Fatal("a circle contains itself")
	}
}

func TestCircleFrom2(t *testing.T) {
	c := CircleFrom2(Point{0, 0}, Point{2, 0})
	if c.C != (Point{1, 0}) || !almostEq(c.R, 1, 1e-12) {
		t.Fatalf("CircleFrom2 = %+v", c)
	}
	c = CircleFrom2(Point{1, 1}, Point{1, 1})
	if c.R != 0 {
		t.Fatalf("degenerate CircleFrom2 radius = %v, want 0", c.R)
	}
}

func TestCircumcircle(t *testing.T) {
	// Right triangle on the unit circle.
	c, ok := Circumcircle(Point{1, 0}, Point{-1, 0}, Point{0, 1})
	if !ok {
		t.Fatal("circumcircle should exist")
	}
	if !almostEq(c.R, 1, 1e-9) || !almostEq(c.C.X, 0, 1e-9) || !almostEq(c.C.Y, 0, 1e-9) {
		t.Fatalf("circumcircle = %+v, want unit circle at origin", c)
	}
	if _, ok := Circumcircle(Point{0, 0}, Point{1, 1}, Point{2, 2}); ok {
		t.Fatal("collinear points must not produce a circumcircle")
	}
}

func TestCircleFrom3Acute(t *testing.T) {
	// Equilateral-ish triangle: MCC is the circumcircle.
	a, b, c := Point{0, 0}, Point{1, 0}, Point{0.5, math.Sqrt(3) / 2}
	mcc := CircleFrom3(a, b, c)
	want := 1 / math.Sqrt(3) // circumradius of unit equilateral triangle
	if !almostEq(mcc.R, want, 1e-9) {
		t.Fatalf("R = %v, want %v", mcc.R, want)
	}
	for _, p := range []Point{a, b, c} {
		if !mcc.Contains(p) {
			t.Fatalf("MCC misses %v", p)
		}
	}
}

func TestCircleFrom3Obtuse(t *testing.T) {
	// Very obtuse triangle: MCC is the diameter circle on the longest side.
	a, b, c := Point{0, 0}, Point{4, 0}, Point{2, 0.1}
	mcc := CircleFrom3(a, b, c)
	if !almostEq(mcc.R, 2, 1e-9) {
		t.Fatalf("R = %v, want 2", mcc.R)
	}
	if !almostEq(mcc.C.X, 2, 1e-9) || !almostEq(mcc.C.Y, 0, 1e-9) {
		t.Fatalf("center = %v, want (2,0)", mcc.C)
	}
}

func TestCircleFrom3Collinear(t *testing.T) {
	mcc := CircleFrom3(Point{0, 0}, Point{1, 0}, Point{3, 0})
	if !almostEq(mcc.R, 1.5, 1e-9) {
		t.Fatalf("R = %v, want 1.5", mcc.R)
	}
	for _, p := range []Point{{0, 0}, {1, 0}, {3, 0}} {
		if !mcc.Contains(p) {
			t.Fatalf("collinear MCC misses %v", p)
		}
	}
}

func TestMCCSmallCases(t *testing.T) {
	if c := MCC(nil); c.R != 0 {
		t.Fatalf("MCC(nil).R = %v", c.R)
	}
	if c := MCC([]Point{{2, 3}}); c.R != 0 || c.C != (Point{2, 3}) {
		t.Fatalf("MCC(single) = %+v", c)
	}
	c := MCC([]Point{{0, 0}, {2, 0}})
	if !almostEq(c.R, 1, 1e-12) {
		t.Fatalf("MCC(pair).R = %v", c.R)
	}
}

func TestMCCPaperExample(t *testing.T) {
	// Example 1 / Figure 3: C1 = {Q, C, D} has ropt = 1.5 with
	// Q=(3,2), C=(3,5), D=(4,4) — the MCC of these three points.
	// (Coordinates chosen to match the published radius; see graph fixture
	// in the core package for the full worked example.)
	q := Point{3, 2}
	c := Point{3, 5}
	d := Point{4, 4}
	mcc := MCC([]Point{q, c, d})
	if mcc.R > 1.6 || mcc.R < 1.4 {
		t.Fatalf("paper-style MCC radius = %v, want ≈1.5", mcc.R)
	}
	for _, p := range []Point{q, c, d} {
		if !mcc.Contains(p) {
			t.Fatalf("MCC misses %v", p)
		}
	}
}

// bruteMCC is an O(n^4) reference: try every pair/triple-determined circle
// and return the smallest that covers all points.
func bruteMCC(pts []Point) Circle {
	switch len(pts) {
	case 0:
		return Circle{}
	case 1:
		return Circle{C: pts[0]}
	}
	best := Circle{R: math.Inf(1)}
	covers := func(c Circle) bool {
		for _, p := range pts {
			if !c.Contains(p) {
				return false
			}
		}
		return true
	}
	for i := 0; i < len(pts); i++ {
		for j := i + 1; j < len(pts); j++ {
			if c := CircleFrom2(pts[i], pts[j]); c.R < best.R && covers(c) {
				best = c
			}
			for k := j + 1; k < len(pts); k++ {
				if c := CircleFrom3(pts[i], pts[j], pts[k]); c.R < best.R && covers(c) {
					best = c
				}
			}
		}
	}
	return best
}

func TestMCCMatchesBruteForce(t *testing.T) {
	rnd := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rnd.Intn(12)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rnd.Float64(), rnd.Float64()}
		}
		got := MCC(pts)
		want := bruteMCC(pts)
		if !almostEq(got.R, want.R, 1e-7) {
			t.Fatalf("trial %d: MCC.R = %.12f, brute = %.12f, pts=%v", trial, got.R, want.R, pts)
		}
	}
}

func TestMCCPropertyCoversAll(t *testing.T) {
	f := func(raw []struct{ X, Y float64 }) bool {
		pts := make([]Point, 0, len(raw))
		for _, r := range raw {
			// Keep magnitudes sane; coordinates in this repo live in [0,1]^2,
			// but the algorithm should stay robust a few orders beyond it.
			x := math.Mod(math.Abs(r.X), 1000)
			y := math.Mod(math.Abs(r.Y), 1000)
			if math.IsNaN(x) || math.IsNaN(y) {
				continue
			}
			pts = append(pts, Point{x, y})
		}
		c := MCC(pts)
		// Containment slack relative to the circle size: folded inputs sit
		// at coordinate scale up to 10³, where the absolute Eps alone is too
		// strict for the circumcircle's conditioning.
		slack := 1e-9 * (1 + c.R)
		for _, p := range pts {
			if c.C.Dist(p)-c.R > slack {
				return false
			}
		}
		return true
	}
	// Fixed Rand: quick's default source is time-seeded, which made any
	// failure unreproducible (this test is what exposed the mccWithTwo
	// boundary-invariant bug; see TestMCCBoundaryInvariantRegression).
	cfg := &quick.Config{MaxCount: 300, Rand: rand.New(rand.NewSource(20170828))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMCCDeterministic(t *testing.T) {
	rnd := rand.New(rand.NewSource(11))
	pts := make([]Point, 100)
	for i := range pts {
		pts[i] = Point{rnd.Float64(), rnd.Float64()}
	}
	a := MCC(pts)
	b := MCC(pts)
	if a != b {
		t.Fatalf("MCC not deterministic: %+v vs %+v", a, b)
	}
}

func TestMCCDuplicatePoints(t *testing.T) {
	pts := []Point{{1, 1}, {1, 1}, {1, 1}, {2, 1}, {1, 1}}
	c := MCC(pts)
	if !almostEq(c.R, 0.5, 1e-9) {
		t.Fatalf("R = %v, want 0.5", c.R)
	}
}

func TestMaxPairwiseDist(t *testing.T) {
	if d := MaxPairwiseDist(nil); d != 0 {
		t.Fatalf("empty = %v", d)
	}
	if d := MaxPairwiseDist([]Point{{0, 0}}); d != 0 {
		t.Fatalf("single = %v", d)
	}
	pts := []Point{{0, 0}, {1, 0}, {0.5, 0.5}, {5, 0}}
	if d := MaxPairwiseDist(pts); !almostEq(d, 5, 1e-12) {
		t.Fatalf("got %v, want 5", d)
	}
}

// Lemma 2 of the paper: for any point set, √3·r ≤ maxPairwise ≤ 2·r where r
// is the MCC radius — the upper bound always holds; the lower bound holds
// for sets where the MCC is determined by 3 points; for 2-point MCCs the max
// distance equals 2r. We check the universally true bounds.
func TestLemma2UpperBound(t *testing.T) {
	rnd := rand.New(rand.NewSource(23))
	for trial := 0; trial < 100; trial++ {
		n := 3 + rnd.Intn(20)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rnd.Float64(), rnd.Float64()}
		}
		r := MCC(pts).R
		d := MaxPairwiseDist(pts)
		if d > 2*r+1e-9 {
			t.Fatalf("maxPairwise %v > 2r %v", d, 2*r)
		}
		if d < r-1e-9 { // trivially, diameter >= radius
			t.Fatalf("maxPairwise %v < r %v", d, r)
		}
	}
}

func TestIntersectionArea(t *testing.T) {
	a := Circle{C: Point{0, 0}, R: 1}
	// Disjoint.
	if got := IntersectionArea(a, Circle{C: Point{3, 0}, R: 1}); got != 0 {
		t.Fatalf("disjoint = %v", got)
	}
	// Contained.
	if got := IntersectionArea(a, Circle{C: Point{0.1, 0}, R: 0.2}); !almostEq(got, math.Pi*0.04, 1e-9) {
		t.Fatalf("contained = %v", got)
	}
	// Identical.
	if got := IntersectionArea(a, a); !almostEq(got, math.Pi, 1e-9) {
		t.Fatalf("identical = %v", got)
	}
	// Half-offset circles: known lens area 2r²(θ−sinθcosθ) with cosθ=d/2r.
	b := Circle{C: Point{1, 0}, R: 1}
	theta := math.Acos(0.5)
	want := 2 * (theta - math.Sin(theta)*math.Cos(theta))
	if got := IntersectionArea(a, b); !almostEq(got, want, 1e-9) {
		t.Fatalf("lens = %v, want %v", got, want)
	}
	// Zero-radius.
	if got := IntersectionArea(a, Circle{C: Point{0, 0}, R: 0}); got != 0 {
		t.Fatalf("degenerate = %v", got)
	}
}

func TestIntersectionAreaProperties(t *testing.T) {
	f := func(x1, y1, r1, x2, y2, r2 float64) bool {
		a := Circle{C: Point{math.Mod(math.Abs(x1), 10), math.Mod(math.Abs(y1), 10)}, R: math.Mod(math.Abs(r1), 5)}
		b := Circle{C: Point{math.Mod(math.Abs(x2), 10), math.Mod(math.Abs(y2), 10)}, R: math.Mod(math.Abs(r2), 5)}
		ab := IntersectionArea(a, b)
		ba := IntersectionArea(b, a)
		if !almostEq(ab, ba, 1e-9) {
			return false // symmetry
		}
		if ab < 0 {
			return false // non-negative
		}
		lim := math.Min(a.Area(), b.Area())
		return ab <= lim+1e-9 // bounded by the smaller disk
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestOverlapRatio(t *testing.T) {
	a := Circle{C: Point{0, 0}, R: 1}
	if got := OverlapRatio(a, a); !almostEq(got, 1, 1e-9) {
		t.Fatalf("self overlap = %v", got)
	}
	if got := OverlapRatio(a, Circle{C: Point{5, 0}, R: 1}); got != 0 {
		t.Fatalf("disjoint overlap = %v", got)
	}
	// Degenerate circles at the same location are fully overlapping.
	z := Circle{C: Point{1, 1}, R: 0}
	if got := OverlapRatio(z, z); got != 1 {
		t.Fatalf("degenerate same = %v", got)
	}
	if got := OverlapRatio(z, Circle{C: Point{2, 2}, R: 0}); got != 0 {
		t.Fatalf("degenerate apart = %v", got)
	}
	// Ratio is within [0,1] and symmetric for a sample.
	b := Circle{C: Point{0.5, 0}, R: 1}
	r1, r2 := OverlapRatio(a, b), OverlapRatio(b, a)
	if !almostEq(r1, r2, 1e-12) || r1 <= 0 || r1 >= 1 {
		t.Fatalf("overlap = %v / %v", r1, r2)
	}
}

func BenchmarkMCC(b *testing.B) {
	rnd := rand.New(rand.NewSource(3))
	pts := make([]Point, 1000)
	for i := range pts {
		pts[i] = Point{rnd.Float64(), rnd.Float64()}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = MCC(pts)
	}
}
