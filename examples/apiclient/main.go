// API client demo: consume SAC search over the versioned /v1 HTTP API
// through the typed Go client (sacsearch/client) — no hand-rolled HTTP.
//
// By default the example is self-contained: it generates a small geo-social
// graph, serves it in-process on a loopback listener, and then talks to it
// exactly as a remote consumer would. Point it at a running sacserver
// instead with -server (this is also how the CI smoke drives a real server
// binary):
//
//	go run ./examples/apiclient
//	go run ./examples/apiclient -server http://localhost:8080
//
// The example walks the whole client surface: Health, Algorithms (the
// registry, with parameter schemas), Vertex, Query (several algorithms,
// including an intentionally invalid request to show the typed error
// envelope), Batch, CheckIn and Edge — and, in self-hosted mode, verifies
// the answers against a direct in-process Searcher on the same graph.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"time"

	"sacsearch"
	"sacsearch/client"
	"sacsearch/internal/server"
)

func main() {
	serverURL := flag.String("server", "", "base URL of a running sacserver (empty = self-host a demo graph in-process)")
	flag.Parse()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
	defer cancel()

	// A direct searcher over the same graph, for verifying the remote
	// answers in self-hosted mode.
	var direct *sacsearch.Searcher

	baseURL := *serverURL
	if baseURL == "" {
		g := sacsearch.GenerateSocialGraph(4000, 24000, 42)
		direct = sacsearch.NewSearcher(g.Clone())
		srv := server.New("demo", g)
		defer srv.Close()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			log.Fatal(err)
		}
		httpSrv := &http.Server{Handler: srv}
		go func() { _ = httpSrv.Serve(ln) }()
		defer httpSrv.Close()
		baseURL = "http://" + ln.Addr().String()
		fmt.Printf("self-hosted sacserver on %s\n\n", baseURL)
	}

	cl, err := client.New(baseURL)
	if err != nil {
		log.Fatal(err)
	}

	// Wait for the server to come up (an external sacserver may still be
	// building its dataset); the client's own 503 retry covers transient
	// unavailability, this loop covers the listener not existing yet.
	var health *client.Health
	for i := 0; ; i++ {
		health, err = cl.Health(ctx)
		if err == nil {
			break
		}
		if i >= 30 || ctx.Err() != nil {
			log.Fatalf("server at %s not reachable: %v", baseURL, err)
		}
		time.Sleep(time.Second)
	}
	fmt.Printf("serving %q: %d vertices, %d edges (durable: %v)\n",
		health.Dataset, health.Vertices, health.Edges, health.Durable)

	// The algorithm registry, served from the same table that validates
	// every query.
	algos, err := cl.Algorithms(ctx)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nalgorithms:")
	for _, a := range algos {
		fmt.Printf("  %-8s ratio %-7s params:", a.Name, a.Ratio)
		if len(a.Params) == 0 {
			fmt.Print(" (none)")
		}
		for _, p := range a.Params {
			if p.Required {
				fmt.Printf(" %s (required)", p.Name)
			} else {
				fmt.Printf(" %s (default %v)", p.Name, *p.Default)
			}
		}
		fmt.Println()
	}

	// Pick a well-connected query vertex via the vertex endpoint.
	q := int64(0)
	for v := int64(0); v < int64(health.Vertices) && v < 500; v++ {
		vx, err := cl.Vertex(ctx, v)
		if err != nil {
			log.Fatal(err)
		}
		if vx.Core >= 4 {
			q = v
			break
		}
	}

	const k = 3
	fmt.Printf("\nqueries for q=%d k=%d:\n", q, k)
	for _, algo := range []string{"appfast", "appinc", "exact+"} {
		res, err := cl.Query(ctx, client.Query{Q: q, K: k, Algo: algo})
		if errors.Is(err, client.ErrNoCommunity) {
			fmt.Printf("  %-8s no community\n", algo)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-8s %3d members, radius %.4f, %dµs server-side\n",
			algo, len(res.Members), res.MCC.R, res.Stats.ElapsedMicros)
		if direct != nil {
			want, err := direct.Search(ctx, sacsearch.Query{Algo: algo, Q: sacsearch.V(q), K: k})
			if err != nil || len(want.Members) != len(res.Members) || want.MCC.R != res.MCC.R {
				log.Fatalf("remote %s answer diverges from direct searcher: remote %d members r=%v, direct %v",
					algo, len(res.Members), res.MCC.R, err)
			}
		}
	}

	// A deliberately bad request: the typed error carries the machine code,
	// offending field and request id from the structured envelope.
	_, err = cl.Query(ctx, client.Query{Q: q, K: k, Algo: "theta"}) // theta requires -theta
	var apiErr *client.APIError
	if errors.As(err, &apiErr) {
		fmt.Printf("\ninvalid request rejected: code=%s field=%s request=%s\n",
			apiErr.Code, apiErr.Field, apiErr.RequestID)
	}

	// Batch: many users answered together on the server's worker pool.
	batch := []client.BatchQuery{{Q: q, K: k}, {Q: q + 1, K: k}, {Q: q + 2, K: k}, {Q: q, K: k}}
	items, err := cl.Batch(ctx, batch, &client.BatchOptions{Algo: "appfast", Workers: 2})
	if err != nil {
		log.Fatal(err)
	}
	ok := 0
	for _, it := range items {
		if it.Error == "" {
			ok++
		}
	}
	fmt.Printf("\nbatch of %d (one duplicate): %d answered\n", len(batch), ok)

	// Writes: move the query user, then re-query — the answer follows the
	// published snapshot (read-your-writes).
	vx, err := cl.Vertex(ctx, q)
	if err != nil {
		log.Fatal(err)
	}
	if err := cl.CheckIn(ctx, q, vx.X+0.01, vx.Y); err != nil {
		log.Fatal(err)
	}
	res, err := cl.Query(ctx, client.Query{Q: q, K: k})
	if err != nil && !errors.Is(err, client.ErrNoCommunity) {
		log.Fatal(err)
	}
	if err == nil {
		fmt.Printf("after check-in: %d members, radius %.4f\n", len(res.Members), res.MCC.R)
	} else {
		fmt.Println("after check-in: no community at the new location")
	}

	if health.Vertices > 2 {
		er, err := cl.Edge(ctx, q, (q+7)%int64(health.Vertices), true)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("edge insert: changed=%v, %d edges now\n", er.Changed, er.Edges)
	}
	fmt.Println("\ndone: every call went through the typed /v1 client.")
}
