package quadtree

import (
	"math"
	"testing"

	"sacsearch/internal/geom"
)

func TestRootAndWidth(t *testing.T) {
	r := Root(geom.Point{X: 1, Y: 2}, 0.5)
	if r.Width() != 1 {
		t.Fatalf("Width = %v", r.Width())
	}
	if got := r.CoverRadius(); math.Abs(got-math.Sqrt2*0.5) > 1e-12 {
		t.Fatalf("CoverRadius = %v", got)
	}
}

func TestChildrenGeometry(t *testing.T) {
	r := Root(geom.Point{X: 0, Y: 0}, 1)
	ch := r.Children()
	if len(ch) != 4 {
		t.Fatalf("children = %d", len(ch))
	}
	// Children tile the parent: each has half-width 0.5, centers at (±0.5, ±0.5).
	seen := map[geom.Point]bool{}
	for _, c := range ch {
		if c.Half != 0.5 {
			t.Fatalf("child half = %v", c.Half)
		}
		seen[c.C] = true
		// Child must be inside parent.
		if !r.Contains(c.C) {
			t.Fatalf("child center %v outside parent", c.C)
		}
	}
	for _, want := range []geom.Point{{X: -0.5, Y: -0.5}, {X: 0.5, Y: -0.5}, {X: -0.5, Y: 0.5}, {X: 0.5, Y: 0.5}} {
		if !seen[want] {
			t.Fatalf("missing child center %v (have %v)", want, seen)
		}
	}
}

func TestContains(t *testing.T) {
	c := Cell{C: geom.Point{X: 0, Y: 0}, Half: 1}
	cases := []struct {
		p    geom.Point
		want bool
	}{
		{geom.Point{X: 0, Y: 0}, true},
		{geom.Point{X: 1, Y: 1}, true},  // corner
		{geom.Point{X: -1, Y: 0}, true}, // edge
		{geom.Point{X: 1.01, Y: 0}, false},
		{geom.Point{X: 0, Y: -1.5}, false},
	}
	for _, tc := range cases {
		if got := c.Contains(tc.p); got != tc.want {
			t.Errorf("Contains(%v) = %v, want %v", tc.p, got, tc.want)
		}
	}
}

func TestInfeasibleInheritance(t *testing.T) {
	c := Cell{C: geom.Point{X: 0, Y: 0}, Half: 1, InfeasibleR: 2}
	ch := c.Children()
	// Inherited radius = 2 − √2·0.5.
	want := 2 - math.Sqrt2*0.5
	for _, child := range ch {
		if math.Abs(child.InfeasibleR-want) > 1e-12 {
			t.Fatalf("inherited = %v, want %v", child.InfeasibleR, want)
		}
	}
	// Small parent knowledge does not go negative.
	c.InfeasibleR = 0.1
	for _, child := range c.Children() {
		if child.InfeasibleR != 0 {
			t.Fatalf("negative inheritance clamped? got %v", child.InfeasibleR)
		}
	}
}

func TestFrontierExpand(t *testing.T) {
	f := NewFrontier(Root(geom.Point{X: 0, Y: 0}, 1))
	if f.Len() != 4 {
		t.Fatalf("initial len = %d", f.Len())
	}
	if f.Half() != 0.5 {
		t.Fatalf("initial half = %v", f.Half())
	}
	// Keep only cells in the right half-plane: 2 parents → 8 children.
	kept := f.Expand(func(c Cell) bool { return c.C.X > 0 })
	if kept != 2 {
		t.Fatalf("kept = %d", kept)
	}
	if f.Len() != 8 {
		t.Fatalf("len after expand = %d", f.Len())
	}
	if f.Half() != 0.25 {
		t.Fatalf("half after expand = %v", f.Half())
	}
	// Expand with nothing kept → empty frontier.
	f.Expand(func(Cell) bool { return false })
	if f.Len() != 0 || f.Half() != 0 {
		t.Fatalf("empty frontier: len=%d half=%v", f.Len(), f.Half())
	}
}

func TestSetInfeasible(t *testing.T) {
	f := NewFrontier(Root(geom.Point{X: 0, Y: 0}, 1))
	f.SetInfeasible(0, 0.7)
	if f.Cells()[0].InfeasibleR != 0.7 {
		t.Fatalf("SetInfeasible did not record")
	}
	f.SetInfeasible(0, 0.5) // lower values do not overwrite
	if f.Cells()[0].InfeasibleR != 0.7 {
		t.Fatalf("lower value overwrote: %v", f.Cells()[0].InfeasibleR)
	}
}

// The quadtree refinement underlying AppAcc: after L full expansions, cells
// have half-width root.Half/2^L and every point of the root square lies in
// exactly one cell whose center is within CoverRadius.
func TestRefinementCoversSquare(t *testing.T) {
	root := Root(geom.Point{X: 0.5, Y: 0.5}, 0.5)
	f := NewFrontier(root)
	for level := 0; level < 3; level++ {
		f.Expand(func(Cell) bool { return true })
	}
	if f.Len() != 4*64 {
		t.Fatalf("len = %d, want 256", f.Len())
	}
	probe := []geom.Point{{X: 0.1, Y: 0.9}, {X: 0.5, Y: 0.5}, {X: 0.999, Y: 0.001}}
	for _, p := range probe {
		covered := false
		for _, c := range f.Cells() {
			if c.Contains(p) && c.C.Dist(p) <= c.CoverRadius()+geom.Eps {
				covered = true
				break
			}
		}
		if !covered {
			t.Fatalf("point %v not covered at final level", p)
		}
	}
}
