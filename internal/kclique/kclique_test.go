package kclique

import (
	"math/rand"
	"sort"
	"testing"

	"sacsearch/internal/graph"
)

func clique(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(graph.V(i), graph.V(j))
		}
	}
	return b.Build()
}

func sorted(vs []graph.V) []graph.V {
	out := append([]graph.V(nil), vs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func equalSets(a, b []graph.V) bool {
	as, bs := sorted(a), sorted(b)
	if len(as) != len(bs) {
		return false
	}
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// randomGraph builds a random multigraph-free graph with roughly density*n
// edges.
func randomGraph(rnd *rand.Rand, n, edges int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < edges; i++ {
		b.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
	}
	return b.Build()
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}

func TestCountCliquesCompleteGraph(t *testing.T) {
	// K_n has C(n-1, k-1) k-cliques through any fixed vertex.
	for n := 3; n <= 7; n++ {
		g := clique(n)
		for k := 2; k <= n; k++ {
			got := CountCliques(g, 0, k)
			want := binomial(n-1, k-1)
			if got != want {
				t.Fatalf("K_%d: CountCliques(0, %d) = %d, want %d", n, k, got, want)
			}
		}
		if got := CountCliques(g, 0, n+1); got != 0 {
			t.Fatalf("K_%d: %d-cliques through 0 = %d, want 0", n, n+1, got)
		}
	}
}

func TestCommunityOfCompleteGraph(t *testing.T) {
	g := clique(5)
	for k := 3; k <= 5; k++ {
		got := CommunityOf(g, 0, k)
		if len(got) != 5 {
			t.Fatalf("K5 k=%d community = %v, want all 5", k, got)
		}
	}
	if got := CommunityOf(g, 0, 6); got != nil {
		t.Fatalf("K5 k=6 community = %v, want nil", got)
	}
}

func TestCommunityOfSharedEdge(t *testing.T) {
	// Two triangles sharing edge 1-2: one 3-clique community (they overlap
	// in k-1 = 2 vertices).
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	g := b.Build()
	got := CommunityOf(g, 0, 3)
	if !equalSets(got, []graph.V{0, 1, 2, 3}) {
		t.Fatalf("shared-edge community = %v, want all 4", got)
	}
}

func TestCommunityOfSharedVertex(t *testing.T) {
	// Two triangles sharing only vertex 2: for k=3 they are distinct
	// communities. From the shared vertex both are seeds (q belongs to
	// both); from a private vertex only its own triangle is reachable.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(2, 4)
	b.AddEdge(3, 4)
	g := b.Build()

	if got := CommunityOf(g, 2, 3); !equalSets(got, []graph.V{0, 1, 2, 3, 4}) {
		t.Fatalf("community of shared vertex = %v, want all 5", got)
	}
	if got := CommunityOf(g, 0, 3); !equalSets(got, []graph.V{0, 1, 2}) {
		t.Fatalf("community of private vertex = %v, want its triangle", got)
	}
}

func TestCommunityOfTriangleChain(t *testing.T) {
	// Triangles (0,1,2), (1,2,3), (2,3,4) chained through shared edges form
	// one 3-clique community; vertex 5 hangs off a chord-free square and is
	// in no triangle.
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(0, 2)
	b.AddEdge(1, 2)
	b.AddEdge(1, 3)
	b.AddEdge(2, 3)
	b.AddEdge(2, 4)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	g := b.Build()

	got := CommunityOf(g, 0, 3)
	if !equalSets(got, []graph.V{0, 1, 2, 3, 4}) {
		t.Fatalf("chain community = %v, want 0..4", got)
	}
	if got := CommunityOf(g, 5, 3); got != nil {
		t.Fatalf("triangle-free vertex community = %v, want nil", got)
	}
}

func TestCommunityOfBridgedCliques(t *testing.T) {
	// Two K4s joined by a single bridge edge: the bridge is in no triangle,
	// so each K4 is its own 4-clique (and 3-clique) community.
	b := graph.NewBuilder(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.V(i), graph.V(j))
			b.AddEdge(graph.V(i+4), graph.V(j+4))
		}
	}
	b.AddEdge(3, 4)
	g := b.Build()

	for _, k := range []int{3, 4} {
		got := CommunityOf(g, 0, k)
		if !equalSets(got, []graph.V{0, 1, 2, 3}) {
			t.Fatalf("k=%d community of 0 = %v, want first K4", k, got)
		}
	}
	// k=2 degenerates to connectivity: the bridge joins everything.
	if got := CommunityOf(g, 0, 2); len(got) != 8 {
		t.Fatalf("k=2 community size = %d, want 8", len(got))
	}
}

func TestCommunityOfDegenerate(t *testing.T) {
	g := clique(4)
	if got := CommunityOf(g, 1, 1); !equalSets(got, []graph.V{1}) {
		t.Fatalf("k=1 community = %v, want {1}", got)
	}
	if got := CommunityOf(g, 1, 0); !equalSets(got, []graph.V{1}) {
		t.Fatalf("k=0 community = %v, want {1}", got)
	}

	// Isolated vertex: no 2-clique.
	bg := graph.NewBuilder(3)
	bg.AddEdge(0, 1)
	g2 := bg.Build()
	if got := CommunityOf(g2, 2, 2); got != nil {
		t.Fatalf("isolated k=2 community = %v, want nil", got)
	}
	if got := CommunityOf(g2, 2, 3); got != nil {
		t.Fatalf("isolated k=3 community = %v, want nil", got)
	}
}

func TestKCliqueWithinRestriction(t *testing.T) {
	g := clique(5)
	c := NewChecker(g)
	S := []graph.V{0, 1, 2}
	if got := c.KCliqueWithin(S, 0, 3); !equalSets(got, S) {
		t.Fatalf("restricted 3-clique community = %v, want %v", got, S)
	}
	if got := c.KCliqueWithin(S, 0, 4); got != nil {
		t.Fatalf("restricted 4-clique community = %v, want nil", got)
	}
	// q outside S.
	if got := c.KCliqueWithin(S, 4, 3); got != nil {
		t.Fatalf("q outside S = %v, want nil", got)
	}
}

func TestCheckerMatchesCommunityOf(t *testing.T) {
	rnd := rand.New(rand.NewSource(77))
	for trial := 0; trial < 20; trial++ {
		n := 10 + rnd.Intn(20)
		g := randomGraph(rnd, n, 5*n)
		c := NewChecker(g)
		all := make([]graph.V, n)
		for i := range all {
			all[i] = graph.V(i)
		}
		for k := 3; k <= 5; k++ {
			q := graph.V(rnd.Intn(n))
			want := CommunityOf(g, q, k)
			got := c.KCliqueWithin(all, q, k)
			if (got == nil) != (want == nil) {
				t.Fatalf("trial %d k=%d q=%d: feasibility mismatch (%v vs %v)",
					trial, k, q, got, want)
			}
			if got != nil && !equalSets(got, want) {
				t.Fatalf("trial %d k=%d q=%d: %v vs %v", trial, k, q, sorted(got), sorted(want))
			}
		}
	}
}

// Monotonicity: the community within S is contained in the community within
// any superset S' — the property AppFast's radius binary search relies on.
func TestKCliqueWithinMonotone(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 20; trial++ {
		n := 12 + rnd.Intn(15)
		g := randomGraph(rnd, n, 6*n)
		c := NewChecker(g)
		// S ⊂ S': random subset and its extension.
		var S, S2 []graph.V
		for v := 0; v < n; v++ {
			r := rnd.Float64()
			if r < 0.5 {
				S = append(S, graph.V(v))
				S2 = append(S2, graph.V(v))
			} else if r < 0.8 {
				S2 = append(S2, graph.V(v))
			}
		}
		if len(S) == 0 {
			continue
		}
		q := S[rnd.Intn(len(S))]
		small := append([]graph.V(nil), c.KCliqueWithin(S, q, 3)...)
		big := c.KCliqueWithin(S2, q, 3)
		if small == nil {
			continue
		}
		if big == nil {
			t.Fatalf("trial %d: community exists in S but not in S' ⊇ S", trial)
		}
		inBig := map[graph.V]bool{}
		for _, v := range big {
			inBig[v] = true
		}
		for _, v := range small {
			if !inBig[v] {
				t.Fatalf("trial %d: member %d of community(S) missing from community(S')", trial, v)
			}
		}
	}
}

// Every member of a k-clique community must itself sit in a k-clique of the
// community: checked by re-querying the checker restricted to the community.
func TestCommunityMembersInKClique(t *testing.T) {
	rnd := rand.New(rand.NewSource(123))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rnd.Intn(20)
		g := randomGraph(rnd, n, 6*n)
		q := graph.V(rnd.Intn(n))
		k := 3 + rnd.Intn(2)
		comm := CommunityOf(g, q, k)
		if comm == nil {
			continue
		}
		c := NewChecker(g)
		snapshot := append([]graph.V(nil), comm...)
		for _, v := range snapshot {
			if c.KCliqueWithin(snapshot, v, k) == nil {
				t.Fatalf("trial %d: member %d of k=%d community is in no k-clique", trial, v, k)
			}
		}
	}
}

// The community is connected in G.
func TestCommunityConnected(t *testing.T) {
	rnd := rand.New(rand.NewSource(222))
	for trial := 0; trial < 15; trial++ {
		n := 10 + rnd.Intn(25)
		g := randomGraph(rnd, n, 5*n)
		q := graph.V(rnd.Intn(n))
		comm := CommunityOf(g, q, 3)
		if comm == nil {
			continue
		}
		in := map[graph.V]bool{}
		for _, v := range comm {
			in[v] = true
		}
		if !in[q] {
			t.Fatalf("trial %d: community misses q", trial)
		}
		// BFS within the community from q must reach every member.
		seen := map[graph.V]bool{q: true}
		queue := []graph.V{q}
		for head := 0; head < len(queue); head++ {
			for _, u := range g.Neighbors(queue[head]) {
				if in[u] && !seen[u] {
					seen[u] = true
					queue = append(queue, u)
				}
			}
		}
		if len(seen) != len(comm) {
			t.Fatalf("trial %d: community disconnected (%d of %d reachable)",
				trial, len(seen), len(comm))
		}
	}
}

func TestCheckerReuse(t *testing.T) {
	g := clique(6)
	c := NewChecker(g)
	all := []graph.V{0, 1, 2, 3, 4, 5}
	a := append([]graph.V(nil), c.KCliqueWithin(all, 0, 4)...)
	_ = c.KCliqueWithin([]graph.V{0, 1, 2}, 0, 3)
	b := c.KCliqueWithin(all, 0, 4)
	if !equalSets(a, b) {
		t.Fatalf("reuse corrupted: %v vs %v", a, b)
	}
}

func TestCliqueKeyDistinct(t *testing.T) {
	a := cliqueKey([]graph.V{1, 2, 3})
	b := cliqueKey([]graph.V{1, 2, 4})
	c := cliqueKey([]graph.V{1, 2, 3})
	if a == b {
		t.Fatal("distinct cliques share a key")
	}
	if a != c {
		t.Fatal("equal cliques get different keys")
	}
}

func BenchmarkKCliqueWithin(b *testing.B) {
	rnd := rand.New(rand.NewSource(4))
	n := 300
	bb := graph.NewBuilder(n)
	for i := 0; i < 3000; i++ {
		bb.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
	}
	g := bb.Build()
	c := NewChecker(g)
	S := make([]graph.V, n)
	for i := range S {
		S[i] = graph.V(i)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = c.KCliqueWithin(S, 0, 4)
	}
}

func BenchmarkCommunityOf(b *testing.B) {
	rnd := rand.New(rand.NewSource(9))
	n := 500
	bb := graph.NewBuilder(n)
	for i := 0; i < 5000; i++ {
		bb.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
	}
	g := bb.Build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = CommunityOf(g, 0, 4)
	}
}
