package client

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/url"
	"strconv"
	"time"
)

// Standing queries: Subscribe registers a (q, k, algo) standing query on
// the server and returns a channel of community events — an init with the
// full membership, then deltas as the graph churns. The subscription
// reconnects automatically with Last-Event-ID resume until the context is
// canceled, Close is called, or the server says goodbye.

// ErrSubscriptionClosed is returned by Subscription.Err after the server
// ended the stream with a terminal bye event (drain/shutdown).
var ErrSubscriptionClosed = errors.New("sac client: subscription closed by server")

// SubEvent is one standing-query event.
type SubEvent struct {
	// Kind is "init" (Members carries the full community), "delta"
	// (Joined/Left carry the change) or "bye" (terminal; the stream ends).
	Kind string
	// Sub is the subscription id; Seq the per-subscription event sequence.
	Sub string
	Seq uint64
	// The standing query, echoed on every event.
	Q    int64
	K    int
	Algo string
	// NoCommunity reports that the query vertex currently has no feasible
	// community; MCC is nil then.
	NoCommunity bool
	Members     []int64
	Joined      []int64
	Left        []int64
	MCC         *Circle
	Delta       float64
	// Hash fingerprints the full state after this event (FNV-1a, hex);
	// replaying deltas over the init must reproduce it.
	Hash string
}

// SubscribeOptions tunes Subscribe.
type SubscribeOptions struct {
	// ID pins the subscription id (resumable across client restarts);
	// empty lets the server assign one.
	ID string
	// Buffer is the event channel's capacity (default 16). The server
	// sheds consumers that fall a server-side buffer behind; a shed stream
	// resumes transparently.
	Buffer int
}

// Subscription is a live standing query.
type Subscription struct {
	// Events delivers the stream in order. It closes when the subscription
	// ends; check Err for why.
	Events <-chan SubEvent

	id     string
	events chan SubEvent
	cancel context.CancelFunc
	done   chan struct{}
	err    error // written once before done closes
}

// ID returns the subscription id (server-assigned when not pinned).
func (s *Subscription) ID() string { return s.id }

// Err reports why Events closed: nil while live or after Close/context
// cancellation, ErrSubscriptionClosed after a server bye, or the terminal
// failure. Valid after Events closes.
func (s *Subscription) Err() error {
	select {
	case <-s.done:
		return s.err
	default:
		return nil
	}
}

// Close ends the subscription and waits for its goroutine. The server-side
// registration stays resumable (by pinned ID) until its resume TTL lapses.
func (s *Subscription) Close() {
	s.cancel()
	<-s.done
}

// Subscribe opens a standing query. The first connection is made
// synchronously so registration errors (validation, limits) surface here;
// afterwards the subscription re-dials on its own with jittered backoff,
// resuming via Last-Event-ID. A resume the server no longer recognizes
// (404 unknown_subscription) restarts fresh — the stream then carries a new
// init frame. A nil opt takes the defaults.
func (c *Client) Subscribe(ctx context.Context, q Query, opt *SubscribeOptions) (*Subscription, error) {
	return subscribeWith(ctx, q, opt, func(ctx context.Context, q Query, id string, lastID uint64, hasLast bool) (*http.Response, error) {
		return c.dialSubscribe(ctx, q, id, lastID, hasLast)
	})
}

// dialer opens one subscription connection attempt.
type dialer func(ctx context.Context, q Query, id string, lastID uint64, hasLast bool) (*http.Response, error)

func subscribeWith(ctx context.Context, q Query, opt *SubscribeOptions, dial dialer) (*Subscription, error) {
	var o SubscribeOptions
	if opt != nil {
		o = *opt
	}
	if o.Buffer <= 0 {
		o.Buffer = 16
	}
	sctx, cancel := context.WithCancel(ctx)
	resp, err := dial(sctx, q, o.ID, 0, false)
	if err != nil {
		cancel()
		return nil, err
	}
	events := make(chan SubEvent, o.Buffer)
	sub := &Subscription{
		Events: events,
		id:     o.ID,
		events: events,
		cancel: cancel,
		done:   make(chan struct{}),
	}
	go sub.run(sctx, q, dial, resp)
	return sub, nil
}

// run pumps one connection after another until a terminal condition.
func (s *Subscription) run(ctx context.Context, q Query, dial dialer, resp *http.Response) {
	defer close(s.done)
	defer close(s.events)
	defer s.cancel()
	var lastID uint64
	var hasLast bool
	backoff := 100 * time.Millisecond
	for {
		bye, got := s.pump(ctx, resp, &lastID, &hasLast)
		if bye {
			s.err = ErrSubscriptionClosed
			return
		}
		if got {
			backoff = 100 * time.Millisecond // progress: reset the backoff
		}
		// Reconnect until the context ends or the server rejects us for good.
		for {
			select {
			case <-ctx.Done():
				return
			case <-time.After(jitter(backoff)):
			}
			if backoff < 5*time.Second {
				backoff *= 2
			}
			var err error
			resp, err = dial(ctx, q, s.id, lastID, hasLast)
			if err == nil {
				break
			}
			var apiErr *APIError
			if errors.As(err, &apiErr) {
				if apiErr.Code == "unknown_subscription" {
					// Resume state expired server-side: start fresh and let
					// the new init frame resynchronize the consumer.
					hasLast, lastID = false, 0
					continue
				}
				if apiErr.Status >= 400 && apiErr.Status < 500 && apiErr.Status != http.StatusTooManyRequests {
					s.err = err
					return
				}
			}
			if ctx.Err() != nil {
				return
			}
		}
	}
}

// pump reads one SSE connection until it ends. Reports whether a terminal
// bye arrived and whether any event was delivered (for backoff reset).
func (s *Subscription) pump(ctx context.Context, resp *http.Response, lastID *uint64, hasLast *bool) (bye, got bool) {
	defer resp.Body.Close()
	// Tie the read loop to the context: closing the body unblocks Read.
	stop := context.AfterFunc(ctx, func() { resp.Body.Close() })
	defer stop()
	br := bufio.NewReader(resp.Body)
	for {
		frame, err := readSSEFrame(br)
		if err != nil {
			return false, got
		}
		if frame.event == "" && frame.data == nil {
			continue // comment heartbeat
		}
		var payload struct {
			Sub         string  `json:"sub"`
			Seq         uint64  `json:"seq"`
			Q           int64   `json:"q"`
			K           int     `json:"k"`
			Algo        string  `json:"algo"`
			NoCommunity bool    `json:"noCommunity"`
			Members     []int64 `json:"members"`
			Joined      []int64 `json:"joined"`
			Left        []int64 `json:"left"`
			MCC         *Circle `json:"mcc"`
			Delta       float64 `json:"delta"`
			Hash        string  `json:"hash"`
		}
		if json.Unmarshal(frame.data, &payload) != nil {
			continue
		}
		if payload.Sub != "" {
			s.id = payload.Sub
		}
		ev := SubEvent{
			Kind: frame.event, Sub: s.id, Seq: payload.Seq,
			Q: payload.Q, K: payload.K, Algo: payload.Algo,
			NoCommunity: payload.NoCommunity, Members: payload.Members,
			Joined: payload.Joined, Left: payload.Left,
			MCC: payload.MCC, Delta: payload.Delta, Hash: payload.Hash,
		}
		select {
		case s.events <- ev:
		case <-ctx.Done():
			return false, got
		}
		got = true
		if frame.id != "" {
			if id, err := strconv.ParseUint(frame.id, 10, 64); err == nil {
				*lastID, *hasLast = id, true
			}
		}
		if frame.event == "bye" {
			return true, got
		}
	}
}

// dialSubscribe opens one GET /v1/subscribe connection; a non-200 response
// is consumed into an *APIError.
func (c *Client) dialSubscribe(ctx context.Context, q Query, id string, lastID uint64, hasLast bool) (*http.Response, error) {
	vals := url.Values{}
	vals.Set("q", strconv.FormatInt(q.Q, 10))
	vals.Set("k", strconv.Itoa(q.K))
	if q.Algo != "" {
		vals.Set("algo", q.Algo)
	}
	if q.EpsF != nil {
		vals.Set("epsF", strconv.FormatFloat(*q.EpsF, 'g', -1, 64))
	}
	if q.EpsA != nil {
		vals.Set("epsA", strconv.FormatFloat(*q.EpsA, 'g', -1, 64))
	}
	if q.Theta != nil {
		vals.Set("theta", strconv.FormatFloat(*q.Theta, 'g', -1, 64))
	}
	if q.Structure != "" {
		vals.Set("structure", q.Structure)
	}
	if id != "" {
		vals.Set("id", id)
	}
	return c.dialSSE(ctx, "/v1/subscribe?"+vals.Encode(), lastID, hasLast)
}

// dialSSE opens one streaming GET, decoding non-200 responses into
// *APIError like every other call.
func (c *Client) dialSSE(ctx context.Context, pathAndQuery string, lastID uint64, hasLast bool) (*http.Response, error) {
	parsed, err := url.Parse(pathAndQuery)
	if err != nil {
		return nil, fmt.Errorf("sac client: building request: %w", err)
	}
	u := c.base.JoinPath(parsed.Path)
	u.RawQuery = parsed.RawQuery
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		return nil, fmt.Errorf("sac client: building request: %w", err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if hasLast {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	if id, _ := ctx.Value(requestIDCtxKey{}).(string); id != "" {
		req.Header.Set("X-Request-Id", id)
	}
	// Streams are long-lived: bypass the default client's global timeout
	// but keep its transport (connection reuse, proxies, test doubles).
	hc := &http.Client{Transport: c.hc.Transport}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("sac client: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		apiErr, cerr := consume(resp, nil)
		if cerr != nil {
			return nil, cerr
		}
		return nil, apiErr
	}
	return resp, nil
}

// sseFrame is one parsed SSE frame; a zero frame is a comment/heartbeat.
type sseFrame struct {
	id    string
	event string
	data  []byte
}

// readSSEFrame reads lines up to one blank-line frame boundary.
func readSSEFrame(br *bufio.Reader) (sseFrame, error) {
	var f sseFrame
	started := false
	for {
		line, err := br.ReadBytes('\n')
		if err != nil {
			return f, err
		}
		line = bytes.TrimRight(line, "\r\n")
		if len(line) == 0 {
			if started {
				return f, nil
			}
			continue
		}
		if line[0] == ':' {
			started = true // heartbeat comment: flush as an empty frame
			continue
		}
		name, val, _ := bytes.Cut(line, []byte(":"))
		val = bytes.TrimPrefix(val, []byte(" "))
		started = true
		switch string(name) {
		case "id":
			f.id = string(val)
		case "event":
			f.event = string(val)
		case "data":
			f.data = append(f.data, val...)
		}
	}
}

// --- shard watch (router-facing) -------------------------------------------

// WatchEvent is one frame of a shard's publication firehose
// (GET /v1/shard/watch): the vertices checked in and edges changed by one
// published snapshot. Resync means the change history is unknown and every
// derived answer must be recomputed. Bye means the shard is draining.
type WatchEvent struct {
	Seq      uint64
	SnapSeq  uint64
	Resync   bool
	Bye      bool
	Checkins []int64
	Edges    [][2]int64
}

// WatchStream is one live shard-watch connection. It does not reconnect —
// the consumer (the router) owns endpoint rotation and resume.
type WatchStream struct {
	// Events closes when the connection ends (EOF, cancellation, or a
	// terminal bye, delivered as the last event).
	Events <-chan WatchEvent
	cancel context.CancelFunc
	done   chan struct{}
}

// Close tears the connection down and waits for the reader.
func (w *WatchStream) Close() {
	w.cancel()
	<-w.done
}

// ShardWatch opens the shard's publication firehose, resuming after
// lastID when hasLast is set (the server replays the gap, or a resync
// frame when it cannot).
func (c *Client) ShardWatch(ctx context.Context, lastID uint64, hasLast bool) (*WatchStream, error) {
	wctx, cancel := context.WithCancel(ctx)
	resp, err := c.dialSSE(wctx, "/v1/shard/watch", lastID, hasLast)
	if err != nil {
		cancel()
		return nil, err
	}
	events := make(chan WatchEvent, 64)
	ws := &WatchStream{Events: events, cancel: cancel, done: make(chan struct{})}
	go func() {
		defer close(ws.done)
		defer close(events)
		defer cancel()
		defer resp.Body.Close()
		stop := context.AfterFunc(wctx, func() { resp.Body.Close() })
		defer stop()
		br := bufio.NewReader(resp.Body)
		for {
			frame, err := readSSEFrame(br)
			if err != nil {
				return
			}
			if frame.event == "" && frame.data == nil {
				continue
			}
			ev := WatchEvent{}
			if frame.event == "bye" {
				ev.Bye = true
			} else {
				var payload struct {
					Seq      uint64     `json:"seq"`
					SnapSeq  uint64     `json:"snapSeq"`
					Resync   bool       `json:"resync"`
					Checkins []int64    `json:"checkins"`
					Edges    [][2]int64 `json:"edges"`
				}
				if json.Unmarshal(frame.data, &payload) != nil {
					continue
				}
				ev.Seq, ev.SnapSeq, ev.Resync = payload.Seq, payload.SnapSeq, payload.Resync
				ev.Checkins, ev.Edges = payload.Checkins, payload.Edges
			}
			if frame.id != "" {
				if id, err := strconv.ParseUint(frame.id, 10, 64); err == nil {
					ev.Seq = id
				}
			}
			select {
			case events <- ev:
			case <-wctx.Done():
				return
			}
			if ev.Bye {
				return
			}
		}
	}()
	return ws, nil
}
