package store

import (
	"context"
	"errors"
	"testing"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := Open(dir, Options{Init: testGraph(), CheckpointInterval: -1})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return st
}

func TestEpochStartsAtOneAndWritesFlow(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	defer st.Close()
	if st.Epoch() != 1 || st.Fenced() || st.FencedBy() != 0 {
		t.Fatalf("fresh store: epoch=%d fenced=%v by=%d", st.Epoch(), st.Fenced(), st.FencedBy())
	}
	if err := st.CheckIn(context.Background(), 0, geom.Point{X: 0.5, Y: 0.5}); err != nil {
		t.Fatalf("unfenced check-in: %v", err)
	}
	s := st.Stats()
	if s.Epoch != 1 || s.FencedBy != 0 {
		t.Fatalf("stats epoch=%d fencedBy=%d", s.Epoch, s.FencedBy)
	}
}

func TestFenceRejectsWritesAndSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	ctx := context.Background()

	// Stale news (at or below the current epoch) is a no-op.
	if err := st.Fence(1); err != nil {
		t.Fatal(err)
	}
	if st.Fenced() {
		t.Fatal("fenced by its own epoch")
	}

	if err := st.Fence(5); err != nil {
		t.Fatal(err)
	}
	if !st.Fenced() || st.FencedBy() != 5 {
		t.Fatalf("fenced=%v by=%d, want true/5", st.Fenced(), st.FencedBy())
	}
	if err := st.CheckIn(ctx, 0, geom.Point{X: 0.1, Y: 0.1}); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced check-in: err = %v, want ErrFenced", err)
	}
	if _, err := st.UpdateEdge(ctx, 0, graph.V(7), true); !errors.Is(err, ErrFenced) {
		t.Fatalf("fenced edge update: err = %v, want ErrFenced", err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// The fence is durable: a restarted deposed leader stays deposed.
	st2 := openTestStore(t, dir)
	defer st2.Close()
	if !st2.Fenced() || st2.FencedBy() != 5 || st2.Epoch() != 1 {
		t.Fatalf("reopened: fenced=%v by=%d epoch=%d", st2.Fenced(), st2.FencedBy(), st2.Epoch())
	}
	if err := st2.CheckIn(ctx, 0, geom.Point{X: 0.2, Y: 0.2}); !errors.Is(err, ErrFenced) {
		t.Fatalf("reopened fenced check-in: err = %v, want ErrFenced", err)
	}
}

func TestBumpEpochClearsFenceAndOutranksFencer(t *testing.T) {
	dir := t.TempDir()
	st := openTestStore(t, dir)
	ctx := context.Background()
	if err := st.Fence(5); err != nil {
		t.Fatal(err)
	}
	next, err := st.BumpEpoch()
	if err != nil {
		t.Fatal(err)
	}
	// Promotion must outrank the epoch that fenced us, not just our own.
	if next != 6 || st.Fenced() || st.FencedBy() != 0 {
		t.Fatalf("after bump: epoch=%d fenced=%v by=%d, want 6/false/0", next, st.Fenced(), st.FencedBy())
	}
	if err := st.CheckIn(ctx, 0, geom.Point{X: 0.3, Y: 0.3}); err != nil {
		t.Fatalf("post-promotion check-in: %v", err)
	}
	// An echo of the old fencer is now stale and ignored.
	if err := st.Fence(5); err != nil {
		t.Fatal(err)
	}
	if st.Fenced() {
		t.Fatal("re-fenced by a stale epoch")
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, dir)
	defer st2.Close()
	if st2.Epoch() != 6 || st2.Fenced() {
		t.Fatalf("reopened: epoch=%d fenced=%v, want 6/false", st2.Epoch(), st2.Fenced())
	}
}
