// Command sacbench regenerates the paper's tables and figures and tracks
// the query hot path's performance trajectory.
//
// Usage:
//
//	sacbench -exp fig10                 # one experiment, quick config
//	sacbench -exp all -scale 0.1 -queries 200 -datasets brightkite,gowalla
//	sacbench -list                      # show available experiment ids
//	sacbench -exp fig12exact -paper     # start from the paper-sized config
//	sacbench -benchjson BENCH_4.json    # machine-readable perf snapshot
//	sacbench -exp fig10 -load g.sacg    # bench a saved graph file
//
// Output goes to stdout; redirect to keep a record alongside EXPERIMENTS.md.
// The -benchjson report records repeated-query ns/op and allocs/op with the
// candidate cache on/off, the cache speedup, batch scaling per worker
// count, edge-churn throughput (incremental core maintenance vs
// re-decomposition), serving throughput (lock-coupled vs snapshot-isolated
// reads under concurrent churn, plus mid-Exact cancellation latency), and
// durability costs (WAL append throughput per fsync policy, crash-recovery
// time vs WAL length with and without checkpoint truncation), so
// regressions are visible PR over PR.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"sacsearch/internal/exp"
)

func main() {
	var (
		expID     = flag.String("exp", "", "experiment id to run, or 'all'")
		list      = flag.Bool("list", false, "list experiment ids and exit")
		paper     = flag.Bool("paper", false, "start from the paper-sized config (hours) instead of the quick one")
		datasets  = flag.String("datasets", "", "comma-separated dataset names (default from config)")
		scale     = flag.Float64("scale", 0, "dataset scale in (0,1] (0 = config default)")
		queries   = flag.Int("queries", 0, "queries per dataset (0 = config default)")
		k         = flag.Int("k", 0, "default minimum degree (0 = config default)")
		seed      = flag.Int64("seed", 0, "workload seed (0 = config default)")
		load      = flag.String("load", "", "bench a saved binary graph file instead of the dataset presets")
		benchJSON = flag.String("benchjson", "", "write the hot-path perf report as JSON to this file ('-' for stdout)")
	)
	flag.Parse()

	if *load != "" && *datasets != "" {
		fmt.Fprintln(os.Stderr, "sacbench: -load and -datasets are mutually exclusive")
		os.Exit(2)
	}

	if *list {
		for _, id := range exp.IDs() {
			e := exp.Registry[id]
			fmt.Printf("%-12s %s\n", id, e.Title)
		}
		return
	}
	if *expID == "" && *benchJSON == "" {
		fmt.Fprintln(os.Stderr, "sacbench: -exp or -benchjson is required (try -list)")
		os.Exit(2)
	}

	cfg := exp.DefaultConfig()
	if *paper {
		cfg = exp.PaperConfig()
	}
	if *datasets != "" {
		cfg.Datasets = strings.Split(*datasets, ",")
	}
	if *scale > 0 {
		cfg.Scale = *scale
	}
	if *queries > 0 {
		cfg.Queries = *queries
	}
	if *k > 0 {
		cfg.K = *k
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	if *load != "" {
		cfg.LoadPath = *load
		// One file, one "dataset": experiments iterate cfg.Datasets, so
		// collapse it to a single label the loader will override.
		base := strings.TrimSuffix(filepath.Base(*load), filepath.Ext(*load))
		cfg.Datasets = []string{base}
	}

	if *benchJSON != "" {
		out := os.Stdout
		if *benchJSON != "-" {
			f, err := os.Create(*benchJSON)
			if err != nil {
				fmt.Fprintf(os.Stderr, "sacbench: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			out = f
		}
		if err := exp.WritePerfJSON(cfg, out); err != nil {
			fmt.Fprintf(os.Stderr, "sacbench: %v\n", err)
			os.Exit(1)
		}
		if *expID == "" {
			return
		}
	}

	var err error
	if *expID == "all" {
		err = exp.RunAll(cfg, os.Stdout)
	} else {
		err = exp.Run(*expID, cfg, os.Stdout)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "sacbench: %v\n", err)
		os.Exit(1)
	}
}
