package core

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
	"time"

	"sacsearch/internal/graph"
)

// TestQueryValidation table-drives the unified Query validation: every bad
// request must fail with a *QueryError carrying the right machine code and
// field, before any algorithm work happens.
func TestQueryValidation(t *testing.T) {
	s := NewSearcher(figure3())
	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		name  string
		q     Query
		code  string
		field string
	}{
		{"unknown algo", Query{Algo: "bogus", Q: 1, K: 2}, ErrCodeUnknownAlgorithm, "algo"},
		{"negative q", Query{Q: -1, K: 2}, ErrCodeInvalidQuery, "q"},
		{"q out of range", Query{Q: 10_000, K: 2}, ErrCodeInvalidQuery, "q"},
		{"k zero", Query{Q: 1, K: 0}, ErrCodeInvalidQuery, "k"},
		{"k negative", Query{Q: 1, K: -3}, ErrCodeInvalidQuery, "k"},
		{"NaN epsF", Query{Algo: "appfast", Q: 1, K: 2, EpsF: &nan}, ErrCodeInvalidParam, "epsF"},
		{"Inf epsF", Query{Algo: "appfast", Q: 1, K: 2, EpsF: &inf}, ErrCodeInvalidParam, "epsF"},
		{"negative epsF", Query{Algo: "appfast", Q: 1, K: 2, EpsF: Float(-0.1)}, ErrCodeInvalidParam, "epsF"},
		{"NaN epsA", Query{Algo: "appacc", Q: 1, K: 2, EpsA: &nan}, ErrCodeInvalidParam, "epsA"},
		{"epsA zero", Query{Algo: "appacc", Q: 1, K: 2, EpsA: Float(0)}, ErrCodeInvalidParam, "epsA"},
		{"epsA one", Query{Algo: "exact+", Q: 1, K: 2, EpsA: Float(1)}, ErrCodeInvalidParam, "epsA"},
		{"missing theta", Query{Algo: "theta", Q: 1, K: 2}, ErrCodeMissingParam, "theta"},
		{"theta zero", Query{Algo: "theta", Q: 1, K: 2, Theta: Float(0)}, ErrCodeInvalidParam, "theta"},
		{"Inf theta", Query{Algo: "theta", Q: 1, K: 2, Theta: &inf}, ErrCodeInvalidParam, "theta"},
		{"epsF on appinc", Query{Algo: "appinc", Q: 1, K: 2, EpsF: Float(0.5)}, ErrCodeInvalidParam, "epsF"},
		{"theta on appfast", Query{Algo: "appfast", Q: 1, K: 2, Theta: Float(0.1)}, ErrCodeInvalidParam, "theta"},
		{"bad structure", Query{Q: 1, K: 2, Structure: "kplex"}, ErrCodeStructureMismatch, "structure"},
		{"structure mismatch", Query{Q: 1, K: 2, Structure: "ktruss"}, ErrCodeStructureMismatch, "structure"},
		{"negative timeout", Query{Q: 1, K: 2, Timeout: -time.Second}, ErrCodeInvalidQuery, "timeout"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := s.Search(context.Background(), tc.q)
			var qe *QueryError
			if !errors.As(err, &qe) {
				t.Fatalf("err = %v, want *QueryError", err)
			}
			if qe.Code != tc.code || qe.Field != tc.field {
				t.Fatalf("QueryError{Code: %q, Field: %q}, want {%q, %q} (reason: %s)",
					qe.Code, qe.Field, tc.code, tc.field, qe.Reason)
			}
			if err := s.ValidateQuery(tc.q); !errors.As(err, &qe) {
				t.Fatalf("ValidateQuery = %v, want *QueryError", err)
			}
		})
	}
}

// TestQueryDefaults pins the defaulting contract: empty algo runs AppFast,
// nil parameters take the registry defaults, and aliases resolve.
func TestQueryDefaults(t *testing.T) {
	s := NewSearcher(figure3())
	ctx := context.Background()

	def, err := s.Search(ctx, Query{Q: 1, K: 2})
	if err != nil {
		t.Fatal(err)
	}
	want, err := s.AppFast(1, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !membersEqual(def.Members, want.Members...) || def.Delta != want.Delta {
		t.Fatalf("default Search = %v (δ %v), want AppFast(0.5) %v (δ %v)",
			def.Members, def.Delta, want.Members, want.Delta)
	}

	// Explicit zero is distinct from absent: AppFast(0) is the AppInc answer.
	zero, err := s.Search(ctx, Query{Algo: "appfast", Q: 1, K: 2, EpsF: Float(0)})
	if err != nil {
		t.Fatal(err)
	}
	inc, err := s.AppInc(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if zero.Delta != inc.Delta {
		t.Fatalf("AppFast(0) δ = %v, want AppInc δ = %v", zero.Delta, inc.Delta)
	}

	// Aliases and case-insensitivity resolve to the same spec.
	for _, name := range []string{"exact+", "exactplus", "EXACT+", "ExactPlus"} {
		spec, ok := LookupAlgo(name)
		if !ok || spec.Name != "exact+" {
			t.Fatalf("LookupAlgo(%q) = %v, %v", name, spec, ok)
		}
	}
	if _, ok := LookupAlgo(""); !ok {
		t.Fatal("empty algo must resolve to the default")
	}

	// The accepted structure name matching the searcher's metric passes.
	if err := s.ValidateQuery(Query{Q: 1, K: 2, Structure: "kcore"}); err != nil {
		t.Fatalf("matching structure rejected: %v", err)
	}
}

// TestQueryTimeout verifies a per-query timeout surfaces as ErrCanceled
// wrapping context.DeadlineExceeded.
func TestQueryTimeout(t *testing.T) {
	g := clusteredGraph(5, 6, 8, 30)
	s := NewSearcher(g)
	var canceledSeen bool
	for q := 0; q < g.NumVertices() && !canceledSeen; q++ {
		_, err := s.Search(context.Background(),
			Query{Algo: "exact", Q: graph.V(q), K: 3, Timeout: time.Nanosecond})
		switch {
		case err == nil, errors.Is(err, ErrNoCommunity):
			// Too fast to cancel — try the next vertex.
		case errors.Is(err, ErrCanceled):
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("ErrCanceled should wrap DeadlineExceeded, got %v", err)
			}
			canceledSeen = true
		default:
			t.Fatalf("unexpected error %v", err)
		}
	}
	if !canceledSeen {
		t.Skip("every exact query completed within 1ns; nothing to assert")
	}
}

// TestRegistryShape pins the registry as the single source of truth: six
// algorithms, canonical names, and schema fields the API layers rely on.
func TestRegistryShape(t *testing.T) {
	specs := Algorithms()
	if len(specs) != 6 {
		t.Fatalf("registry has %d algorithms, want 6", len(specs))
	}
	wantNames := []string{"appfast", "appinc", "appacc", "exact+", "exact", "theta"}
	for i, w := range wantNames {
		if specs[i].Name != w {
			t.Fatalf("registry[%d] = %q, want %q", i, specs[i].Name, w)
		}
		if specs[i].Doc == "" || specs[i].Ratio == "" {
			t.Fatalf("%s: empty doc or ratio", specs[i].Name)
		}
	}
	// Parameter schemas carry the defaults the server historically applied.
	if p, ok := mustLookup(t, "appfast").Param("epsF"); !ok || p.Default != 0.5 || p.Required {
		t.Fatalf("appfast epsF spec = %+v", p)
	}
	if p, ok := mustLookup(t, "appacc").Param("epsA"); !ok || p.Default != 0.5 {
		t.Fatalf("appacc epsA spec = %+v", p)
	}
	if p, ok := mustLookup(t, "exact+").Param("epsA"); !ok || p.Default != 1e-3 {
		t.Fatalf("exact+ epsA spec = %+v", p)
	}
	if p, ok := mustLookup(t, "theta").Param("theta"); !ok || !p.Required {
		t.Fatalf("theta param spec = %+v", p)
	}
	// Every registered parameter must be settable by name: a registry
	// addition that is not wired into Query.SetParam (and so would be
	// silently dropped by by-name binders like the sacquery flags) fails
	// here.
	for _, spec := range specs {
		for _, p := range spec.Params {
			var q Query
			if err := q.SetParam(p.Name, 0.5); err != nil {
				t.Fatalf("SetParam(%q) for %s: %v", p.Name, spec.Name, err)
			}
		}
	}
	if err := new(Query).SetParam("gamma", 1); err == nil {
		t.Fatal("SetParam accepted an unknown parameter name")
	}

	// Unknown-param errors mention the algorithm so API messages are useful.
	s := NewSearcher(figure3())
	err := s.ValidateQuery(Query{Algo: "exact", Q: 1, K: 2, EpsA: Float(0.5)})
	if err == nil || !strings.Contains(err.Error(), "exact") {
		t.Fatalf("unknown-param error = %v", err)
	}
}

func mustLookup(t *testing.T, name string) *AlgoSpec {
	t.Helper()
	spec, ok := LookupAlgo(name)
	if !ok {
		t.Fatalf("LookupAlgo(%q) missing", name)
	}
	return spec
}
