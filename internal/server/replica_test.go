package server

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"sacsearch/internal/replica"
	"sacsearch/internal/store"
)

var discardLogger = slog.New(slog.NewTextHandler(io.Discard, nil))

// lockedBuffer is an io.Writer safe for the concurrent writes a slog
// handler may issue while the test goroutine reads the captured output.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// unmarshalErr decodes an error envelope, failing the test on bad JSON.
func unmarshalErr(t *testing.T, body []byte, into *ErrorJSON) {
	t.Helper()
	if err := json.Unmarshal(body, into); err != nil {
		t.Fatalf("decoding error envelope %q: %v", body, err)
	}
}

// replicaHealth is the health shape the replica-mode assertions care about.
type replicaHealth struct {
	Status      string                  `json:"status"`
	Role        string                  `json:"role"`
	Epoch       uint64                  `json:"epoch"`
	FencedBy    uint64                  `json:"fencedBy"`
	Replication *replica.FollowerStatus `json:"replication"`
	Followers   *int                    `json:"followers"`
	MinAckedSeq *uint64                 `json:"minAckedSeq"`
}

// waitHTTP polls cond until it holds or the deadline passes.
func waitHTTP(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// startReplicatedPair boots a durable leader server, a WAL shipper, and a
// replica server following it over a real TCP connection — the two-process
// topology, in-process.
func startReplicatedPair(t *testing.T, cfg Config) (leader, rep *httptest.Server, st *store.Store, sh *replica.Shipper) {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{Init: testGraph(), CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sh = replica.NewShipper(st, ln, replica.ShipperOptions{
		Heartbeat: 20 * time.Millisecond, Poll: time.Millisecond, Logger: discardLogger,
	})
	t.Cleanup(sh.Close)

	srvL := NewWithStore("test", st, Config{Logger: discardLogger, ShipperStatus: sh.Status})
	t.Cleanup(srvL.Close)
	leader = httptest.NewServer(srvL)
	t.Cleanup(leader.Close)

	f, err := replica.NewFollower(replica.FollowerOptions{
		Leader: sh.Addr().String(), BackoffMin: 5 * time.Millisecond,
		BackoffMax: 100 * time.Millisecond, Logger: discardLogger,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Logger == nil {
		cfg.Logger = discardLogger
	}
	srvR := NewReplica("test", f, cfg)
	t.Cleanup(srvR.Close)
	rep = httptest.NewServer(srvR)
	t.Cleanup(rep.Close)
	return leader, rep, st, sh
}

// TestReplicaServesReplicatedReads drives the full read path of a replica:
// ready flips to 200 after the initial sync, a write on the leader becomes
// visible through the replica's /v1 surface, writes on the replica are
// refused with 503 read_only, and health reports role/epoch/lag.
func TestReplicaServesReplicatedReads(t *testing.T) {
	leader, rep, st, _ := startReplicatedPair(t, Config{StalenessBound: time.Minute})

	waitHTTP(t, 10*time.Second, "replica readiness", func() bool {
		return getJSON(t, rep.URL+"/v1/ready", nil).StatusCode == http.StatusOK
	})

	// A write on the leader must become readable on the replica.
	resp, body := postJSON(t, leader.URL+"/v1/checkin", CheckinRequest{V: 3, X: 0.25, Y: 0.75})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("leader checkin: %d %s", resp.StatusCode, body)
	}
	waitHTTP(t, 10*time.Second, "write to replicate", func() bool {
		var v struct{ X, Y float64 }
		if getJSON(t, rep.URL+"/v1/vertex/3", &v).StatusCode != http.StatusOK {
			return false
		}
		return v.X == 0.25 && v.Y == 0.75
	})

	// Queries answer from the replicated state.
	resp, body = postJSON(t, rep.URL+"/v1/query", QueryRequest{Q: 1, K: 4, Algo: "exact+"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("replica query: %d %s", resp.StatusCode, body)
	}

	// Writes on the replica are refused before decoding.
	for _, route := range []string{"/v1/checkin", "/v1/edge"} {
		resp, body = postJSON(t, rep.URL+route, map[string]any{})
		var e ErrorJSON
		unmarshalErr(t, body, &e)
		if resp.StatusCode != http.StatusServiceUnavailable || e.Code != CodeReadOnly {
			t.Fatalf("replica write on %s: status %d code %q", route, resp.StatusCode, e.Code)
		}
	}

	// Health: replica role, leader's epoch, readonly verdict, lag visible.
	var h replicaHealth
	getJSON(t, rep.URL+"/v1/health", &h)
	if h.Role != "replica" || h.Status != "readonly" || h.Replication == nil {
		t.Fatalf("replica health = %+v", h)
	}
	if h.Epoch != st.Epoch() || !h.Replication.Synced {
		t.Fatalf("replica health epoch %d (leader %d), replication %+v", h.Epoch, st.Epoch(), h.Replication)
	}

	var lh replicaHealth
	getJSON(t, leader.URL+"/v1/health", &lh)
	if lh.Role != "leader" || lh.Status != "ok" || lh.Epoch != st.Epoch() {
		t.Fatalf("leader health = %+v", lh)
	}
	// The leader surfaces outbound replication: the follower session and,
	// once it acks, how far behind the slowest follower is.
	if lh.Followers == nil || *lh.Followers != 1 {
		t.Fatalf("leader health followers = %v, want 1", lh.Followers)
	}
	waitHTTP(t, 10*time.Second, "leader sees the follower fully acked", func() bool {
		var h replicaHealth
		getJSON(t, leader.URL+"/v1/health", &h)
		return h.MinAckedSeq != nil && *h.MinAckedSeq == st.WalLastSeq()
	})
	if getJSON(t, leader.URL+"/v1/ready", nil).StatusCode != http.StatusOK {
		t.Fatal("leader not ready")
	}
}

// TestReplicaShedsStaleReads kills the leader and asserts the replica turns
// degraded and sheds reads with 503 + Retry-After once its staleness bound
// is exceeded — late state is served briefly, stale state never silently.
func TestReplicaShedsStaleReads(t *testing.T) {
	_, rep, _, sh := startReplicatedPair(t, Config{StalenessBound: 150 * time.Millisecond})

	waitHTTP(t, 10*time.Second, "replica readiness", func() bool {
		return getJSON(t, rep.URL+"/v1/ready", nil).StatusCode == http.StatusOK
	})

	sh.Close() // the leader is gone

	waitHTTP(t, 10*time.Second, "degraded health after leader loss", func() bool {
		var h replicaHealth
		getJSON(t, rep.URL+"/v1/health", &h)
		return h.Status == "degraded"
	})
	waitHTTP(t, 10*time.Second, "read shedding past the staleness bound", func() bool {
		resp, body := postJSON(t, rep.URL+"/v1/query", QueryRequest{Q: 1, K: 4})
		if resp.StatusCode != http.StatusServiceUnavailable {
			return false
		}
		var e ErrorJSON
		unmarshalErr(t, body, &e)
		if e.Code != CodeStaleRead {
			t.Fatalf("shed read code = %q, want %q", e.Code, CodeStaleRead)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("shed read missing Retry-After")
		}
		return true
	})

	// Ready stays 200: the node synced once and could serve if the bound
	// were wider — readiness is about initial sync, shedding about lag.
	if getJSON(t, rep.URL+"/v1/ready", nil).StatusCode != http.StatusOK {
		t.Fatal("synced replica reported unready")
	}
}

// TestReplicaNotReadyBeforeSync points a replica at a dead address: ready
// and every read must come back 503 not_ready, while health still answers
// 200 and reports the degradation.
func TestReplicaNotReadyBeforeSync(t *testing.T) {
	// Grab a port that refuses connections: listen, note the address, close.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	f, err := replica.NewFollower(replica.FollowerOptions{
		Leader: addr, BackoffMin: 5 * time.Millisecond,
		BackoffMax: 50 * time.Millisecond, Logger: discardLogger,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewReplica("test", f, Config{Logger: discardLogger})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	readyResp := getJSON(t, ts.URL+"/v1/ready", nil)
	if readyResp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("unsynced replica ready status = %d", readyResp.StatusCode)
	}
	if readyResp.Header.Get("Retry-After") == "" {
		t.Fatal("unready response missing Retry-After")
	}
	resp, body := postJSON(t, ts.URL+"/v1/query", QueryRequest{Q: 1, K: 4})
	var e ErrorJSON
	unmarshalErr(t, body, &e)
	if resp.StatusCode != http.StatusServiceUnavailable || e.Code != CodeNotReady {
		t.Fatalf("unsynced replica query: status %d code %q", resp.StatusCode, e.Code)
	}
	var h replicaHealth
	if getJSON(t, ts.URL+"/v1/health", &h).StatusCode != http.StatusOK {
		t.Fatal("health must answer even before the first sync")
	}
	if h.Status != "degraded" || h.Role != "replica" {
		t.Fatalf("pre-sync health = %+v", h)
	}
}

// TestFencedLeaderTurnsReadonly fences a durable leader's store and asserts
// the server-level consequences: writes bounce with 503 read_only, reads
// keep working, and health flips to readonly with the fencing epoch.
func TestFencedLeaderTurnsReadonly(t *testing.T) {
	st, err := store.Open(t.TempDir(), store.Options{Init: testGraph(), CheckpointInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewWithStore("test", st, Config{Logger: discardLogger})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	resp, _ := postJSON(t, ts.URL+"/v1/checkin", CheckinRequest{V: 1, X: 0.5, Y: 0.5})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pre-fence checkin status = %d", resp.StatusCode)
	}
	if err := st.Fence(st.Epoch() + 3); err != nil {
		t.Fatal(err)
	}
	resp, body := postJSON(t, ts.URL+"/v1/checkin", CheckinRequest{V: 1, X: 0.6, Y: 0.6})
	var e ErrorJSON
	unmarshalErr(t, body, &e)
	if resp.StatusCode != http.StatusServiceUnavailable || e.Code != CodeReadOnly {
		t.Fatalf("fenced checkin: status %d code %q", resp.StatusCode, e.Code)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/edge", EdgeRequest{U: 0, V: 30, Op: "insert"})
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("fenced edge status = %d", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/v1/query", QueryRequest{Q: 1, K: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fenced leader refused a read: %d", resp.StatusCode)
	}
	var h replicaHealth
	getJSON(t, ts.URL+"/v1/health", &h)
	if h.Status != "readonly" || h.FencedBy != st.Epoch()+3 {
		t.Fatalf("fenced health = %+v", h)
	}
}

// TestPanicRecoveryMiddleware registers a panicking route and asserts the
// client sees a 500 envelope carrying the request id while the stack lands
// in the server log — a handler bug must cost one request, not the process.
func TestPanicRecoveryMiddleware(t *testing.T) {
	var logged lockedBuffer
	g := testGraph()
	srv := NewWithConfig("test", g, Config{
		Logger: slog.New(slog.NewTextHandler(&logged, nil)),
	})
	t.Cleanup(srv.Close)
	srv.mux.HandleFunc("GET /v1/boom", func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	})
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	req, err := http.NewRequest("GET", ts.URL+"/v1/boom", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("X-Request-Id", "trace-me-123")
	raw, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Body.Close()
	if raw.StatusCode != http.StatusInternalServerError {
		t.Fatalf("panicking route status = %d", raw.StatusCode)
	}
	var e ErrorJSON
	if err := json.NewDecoder(raw.Body).Decode(&e); err != nil {
		t.Fatal(err)
	}
	if e.Code != CodeInternal || e.RequestID != "trace-me-123" {
		t.Fatalf("panic envelope = %+v", e)
	}
	out := logged.String()
	if !strings.Contains(out, "kaboom") || !strings.Contains(out, "trace-me-123") ||
		!strings.Contains(out, "goroutine") {
		t.Fatalf("panic log missing panic value, request id or stack:\n%s", out)
	}

	// The server still serves after the panic.
	if resp := getJSON(t, ts.URL+"/v1/health", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("health after panic = %d", resp.StatusCode)
	}
}
