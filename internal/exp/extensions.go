package exp

import (
	"context"
	"io"
	"runtime"
	"time"

	"sacsearch/internal/batch"
	"sacsearch/internal/core"
	"sacsearch/internal/graph"
	"sacsearch/internal/metrics"
)

// The extensions experiment validates the Section 6 roadmap features the
// library implements beyond the paper's evaluation: alternative structure
// metrics, the minimum-diameter objective, and batch processing. It is not
// a paper figure; it exists so `sacbench -exp extensions` documents how the
// extensions behave on the same workloads the figures use.

// ExtStructureRow compares the structure metrics on one dataset.
type ExtStructureRow struct {
	Dataset   string
	Structure string
	Found     int
	Radius    float64 // mean MCC radius of ExactPlus results
	Size      float64 // mean community size
}

// ExtStructures runs ExactPlus under each structure metric.
func ExtStructures(cfg Config) ([]ExtStructureRow, error) {
	var rows []ExtStructureRow
	for _, name := range cfg.Datasets {
		ds, qs, err := loadWorkload(cfg, name)
		if err != nil {
			return nil, err
		}
		for _, st := range []core.Structure{core.StructureKCore, core.StructureKTruss, core.StructureKClique} {
			s := core.NewSearcherWithStructure(ds.Graph, st)
			var radii, sizes []float64
			for _, q := range qs {
				res, err := s.ExactPlusDefault(q, cfg.K)
				if err != nil {
					continue
				}
				radii = append(radii, res.Radius())
				sizes = append(sizes, float64(res.Size()))
			}
			rows = append(rows, ExtStructureRow{
				Dataset: name, Structure: st.String(),
				Found: len(radii), Radius: metrics.Mean(radii), Size: metrics.Mean(sizes),
			})
		}
	}
	return rows, nil
}

// ExtDiamRow compares the MCC and diameter objectives on one dataset.
type ExtDiamRow struct {
	Dataset      string
	Method       string
	MeanDiam     float64 // mean max pairwise distance
	MeanRadius   float64 // mean MCC radius
	MeanTimePerQ time.Duration
}

// ExtMinDiam runs the minimum-diameter variants next to ExactPlus.
func ExtMinDiam(cfg Config) ([]ExtDiamRow, error) {
	var rows []ExtDiamRow
	for _, name := range cfg.Datasets {
		ds, qs, err := loadWorkload(cfg, name)
		if err != nil {
			return nil, err
		}
		g := ds.Graph
		s := core.NewSearcher(g)
		methods := []struct {
			name string
			run  func(q graph.V) (*core.Result, error)
		}{
			{"ExactPlus(MCC)", func(q graph.V) (*core.Result, error) { return s.ExactPlusDefault(q, cfg.K) }},
			{"MinDiam2Approx", func(q graph.V) (*core.Result, error) { return s.MinDiam2Approx(q, cfg.K) }},
			{"MinDiamLens", func(q graph.V) (*core.Result, error) { return s.MinDiamLens(q, cfg.K) }},
		}
		for _, m := range methods {
			var diams, radii []float64
			mean, results := runTimed(qs, m.run)
			for _, r := range results {
				diams = append(diams, core.DiameterOf(g, r.Members))
				radii = append(radii, r.Radius())
			}
			rows = append(rows, ExtDiamRow{
				Dataset: name, Method: m.name,
				MeanDiam: metrics.Mean(diams), MeanRadius: metrics.Mean(radii),
				MeanTimePerQ: mean,
			})
		}
	}
	return rows, nil
}

// ExtBatchRow is one (dataset, workers) batch timing.
type ExtBatchRow struct {
	Dataset string
	Workers int
	Total   time.Duration
	Queries int
}

// ExtBatch times the whole query workload as one batch at several worker
// counts.
func ExtBatch(cfg Config) ([]ExtBatchRow, error) {
	var rows []ExtBatchRow
	maxWorkers := runtime.GOMAXPROCS(0)
	for _, name := range cfg.Datasets {
		ds, qs, err := loadWorkload(cfg, name)
		if err != nil {
			return nil, err
		}
		s := core.NewSearcher(ds.Graph)
		queries := batch.Workload(qs, cfg.K)
		workerSweep := []int{1, 2}
		if maxWorkers > 2 {
			workerSweep = append(workerSweep, maxWorkers)
		}
		for _, workers := range workerSweep {
			start := time.Now()
			items := batch.Run(context.Background(), s, queries, batch.Options{Workers: workers})
			answered := 0
			for _, it := range items {
				if it.Err == nil {
					answered++
				}
			}
			rows = append(rows, ExtBatchRow{
				Dataset: name, Workers: workers,
				Total: time.Since(start), Queries: answered,
			})
		}
	}
	return rows, nil
}

func printExtensions(w io.Writer, st []ExtStructureRow, dm []ExtDiamRow, bt []ExtBatchRow) {
	fprintf(w, "-- structure metrics (ExactPlus under each)\n")
	fprintf(w, "%-12s %-10s %6s %10s %8s\n", "dataset", "metric", "found", "radius", "size")
	for _, r := range st {
		fprintf(w, "%-12s %-10s %6d %10.5f %8.1f\n", r.Dataset, r.Structure, r.Found, r.Radius, r.Size)
	}
	fprintf(w, "-- spatial objectives (MCC radius vs max pairwise distance)\n")
	fprintf(w, "%-12s %-16s %10s %10s %14s\n", "dataset", "method", "diam", "radius", "time/query")
	for _, r := range dm {
		fprintf(w, "%-12s %-16s %10.5f %10.5f %14v\n", r.Dataset, r.Method, r.MeanDiam, r.MeanRadius, r.MeanTimePerQ)
	}
	fprintf(w, "-- batch processing (whole workload as one call)\n")
	fprintf(w, "%-12s %8s %14s %8s\n", "dataset", "workers", "total", "queries")
	for _, r := range bt {
		fprintf(w, "%-12s %8d %14v %8d\n", r.Dataset, r.Workers, r.Total, r.Queries)
	}
}
