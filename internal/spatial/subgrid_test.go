package spatial

import (
	"math/rand"
	"slices"
	"testing"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// randomSubsetGraph builds a graph of n isolated vertices at random unit-
// square locations and returns it with a random subset of its vertex ids.
func randomSubsetGraph(t *testing.T, rng *rand.Rand, n int) (*graph.Graph, []graph.V) {
	t.Helper()
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLoc(graph.V(v), geom.Point{X: rng.Float64(), Y: rng.Float64()})
	}
	g := b.Build()
	var subset []graph.V
	for v := 0; v < n; v++ {
		if rng.Intn(3) != 0 {
			subset = append(subset, graph.V(v))
		}
	}
	return g, subset
}

func TestSubGridInCircleMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var sg SubGrid
	for trial := 0; trial < 20; trial++ {
		g, subset := randomSubsetGraph(t, rng, 200)
		sg.Build(g, subset, 4)
		if sg.Len() != len(subset) {
			t.Fatalf("Len = %d, want %d", sg.Len(), len(subset))
		}
		for probe := 0; probe < 10; probe++ {
			c := geom.Circle{
				C: geom.Point{X: rng.Float64(), Y: rng.Float64()},
				R: rng.Float64() * 0.3,
			}
			got := sg.InCircle(c, nil)
			var want []graph.V
			for _, v := range subset {
				if c.Contains(g.Loc(v)) {
					want = append(want, v)
				}
			}
			slices.Sort(got)
			slices.Sort(want)
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d probe %d: InCircle = %v, want %v", trial, probe, got, want)
			}
		}
	}
}

func TestSubGridInAnnulusMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var sg SubGrid
	for trial := 0; trial < 20; trial++ {
		g, subset := randomSubsetGraph(t, rng, 150)
		sg.Build(g, subset, 4)
		for probe := 0; probe < 10; probe++ {
			center := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			rOuter := 0.05 + rng.Float64()*0.3
			rInner := rOuter * rng.Float64()
			got := sg.InAnnulus(center, rInner, rOuter, nil)
			var want []graph.V
			for _, v := range subset {
				d := center.Dist(g.Loc(v))
				if d >= rInner-geom.Eps && d <= rOuter+geom.Eps {
					want = append(want, v)
				}
			}
			slices.Sort(got)
			slices.Sort(want)
			if !slices.Equal(got, want) {
				t.Fatalf("trial %d probe %d: InAnnulus = %v, want %v", trial, probe, got, want)
			}
		}
	}
}

func TestSubGridRebuildReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, subset := randomSubsetGraph(t, rng, 400)
	var sg SubGrid
	sg.Build(g, subset, 4)
	// Rebuilding over a smaller subset must fully replace the contents.
	small := subset[:10]
	sg.Build(g, small, 4)
	if sg.Len() != len(small) {
		t.Fatalf("Len after rebuild = %d, want %d", sg.Len(), len(small))
	}
	all := sg.InCircle(geom.Circle{C: geom.Point{X: 0.5, Y: 0.5}, R: 2}, nil)
	slices.Sort(all)
	want := append([]graph.V(nil), small...)
	slices.Sort(want)
	if !slices.Equal(all, want) {
		t.Fatalf("rebuilt grid contents = %v, want %v", all, want)
	}
	// Steady-state rebuilds should not allocate.
	allocs := testing.AllocsPerRun(20, func() {
		sg.Build(g, subset, 4)
	})
	if allocs > 0 {
		t.Fatalf("steady-state Build allocates %v times per run", allocs)
	}
	// Empty and degenerate inputs.
	sg.Build(g, nil, 4)
	if sg.Len() != 0 {
		t.Fatal("empty build not empty")
	}
	if out := sg.InCircle(geom.Circle{C: geom.Point{}, R: 1}, nil); len(out) != 0 {
		t.Fatalf("empty grid returned %v", out)
	}
	sg.Build(g, subset[:1], 4)
	if out := sg.InCircle(geom.Circle{C: g.Loc(subset[0]), R: 0}, nil); len(out) != 1 {
		t.Fatalf("single-point grid query = %v", out)
	}
}

// TestSubGridAnisotropicBounded pins the cell-count bound on degenerate
// input: collinear points collapse one extent, and area-based cell sizing
// alone would create hundreds of thousands of cells for a handful of
// vertices. The CSR offsets slice is the cell count plus one.
func TestSubGridAnisotropicBounded(t *testing.T) {
	n := 100
	b := graph.NewBuilder(n)
	for v := 0; v < n; v++ {
		b.SetLoc(graph.V(v), geom.Point{X: float64(v) / float64(n), Y: 0.5})
	}
	g := b.Build()
	vs := make([]graph.V, n)
	for v := range vs {
		vs[v] = graph.V(v)
	}
	var sg SubGrid
	sg.Build(g, vs, 4)
	if cells := len(sg.start) - 1; cells > 4*n {
		t.Fatalf("anisotropic build created %d cells for %d vertices", cells, n)
	}
	got := sg.InCircle(geom.Circle{C: geom.Point{X: 0.5, Y: 0.5}, R: 0.1}, nil)
	var want int
	for _, v := range vs {
		if g.Loc(v).Dist(geom.Point{X: 0.5, Y: 0.5}) <= 0.1+geom.Eps {
			want++
		}
	}
	if len(got) != want {
		t.Fatalf("collinear InCircle returned %d, want %d", len(got), want)
	}
}

// TestSubGridAnnulusTinyInner pins the near-zero inner-bound guard: an
// rInner within tolerance of zero must exclude nothing, in particular not
// a vertex sitting exactly at the center.
func TestSubGridAnnulusTinyInner(t *testing.T) {
	b := graph.NewBuilder(2)
	b.SetLoc(0, geom.Point{X: 0.5, Y: 0.5})
	b.SetLoc(1, geom.Point{X: 0.6, Y: 0.5})
	g := b.Build()
	var sg SubGrid
	sg.Build(g, []graph.V{0, 1}, 4)
	got := sg.InAnnulus(geom.Point{X: 0.5, Y: 0.5}, 5e-10, 0.2, nil)
	if len(got) != 2 {
		t.Fatalf("tiny rInner dropped the center vertex: got %v", got)
	}
}
