// Package client is the typed Go client for the sacserver /v1 HTTP API —
// the supported way for downstream programs to consume SAC search over the
// network instead of hand-rolling HTTP requests.
//
//	cl, err := client.New("http://localhost:8080")
//	res, err := cl.Query(ctx, client.Query{Q: 17, K: 4, Algo: "exact+"})
//
// The client reuses connections (one shared http.Transport), honors the
// caller's context on every call, and retries requests that fail with 503
// Service Unavailable or 429 — the statuses the server uses for transient
// conditions (query deadline pressure, a draining writer, a replica shedding
// stale reads) — with jittered exponential backoff, honoring the server's
// Retry-After hint when present. Every API operation is idempotent (queries
// are reads; check-in sets a location, edge insert/delete converge), so
// retrying is always safe.
//
// For a replicated deployment — one leader plus read replicas — use a Set
// (NewSet): it round-robins reads across every endpoint and routes writes
// to whichever endpoint accepts them, failing over on 503 and transport
// errors, so a leader promotion needs no client reconfiguration beyond
// having listed the candidates.
//
// Errors from non-2xx responses are *APIError values carrying the HTTP
// status, the machine-readable code from the server's structured error
// envelope, the offending field when known, and the request id for
// correlation with server logs. A query that finds no community satisfies
// errors.Is(err, client.ErrNoCommunity).
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// ErrNoCommunity is the sentinel matched (via errors.Is) by query errors
// whose server code reports that the query vertex has no feasible
// community for the requested k.
var ErrNoCommunity = errors.New("sac client: no community")

// APIError is a non-2xx response decoded from the server's structured
// error envelope.
type APIError struct {
	// Status is the HTTP status code.
	Status int
	// Code is the machine-readable error code ("unknown_algorithm",
	// "invalid_param", "no_community", "deadline_exceeded", ...).
	Code string
	// Field names the offending request field, when the server knows it.
	Field string
	// Message is the human-readable error message.
	Message string
	// RequestID correlates the failure with server logs.
	RequestID string
	// SpanID is the serving daemon's root trace span id (the X-Trace-Span
	// response header), correlating the failure with its trace tree.
	SpanID string
	// RetryAfter is the server's Retry-After hint on 503/429 responses
	// (0 = no header). The retry loop sleeps this long instead of its own
	// backoff when present.
	RetryAfter time.Duration
}

func (e *APIError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sac client: server returned %d", e.Status)
	if e.Code != "" {
		fmt.Fprintf(&b, " (%s)", e.Code)
	}
	if e.Message != "" {
		b.WriteString(": " + e.Message)
	}
	if e.RequestID != "" {
		fmt.Fprintf(&b, " [request %s]", e.RequestID)
	}
	return b.String()
}

// Is lets errors.Is match the well-known codes without the caller
// inspecting Code by hand.
func (e *APIError) Is(target error) bool {
	return target == ErrNoCommunity && e.Code == "no_community"
}

// Context keys carrying outbound correlation headers; set via
// WithRequestID / WithTraceSpan.
type (
	requestIDCtxKey struct{}
	traceSpanCtxKey struct{}
)

// WithRequestID returns a context that makes every client call under it
// send the given X-Request-Id header, so a multi-hop topology (client →
// router → shards) logs one id end to end.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDCtxKey{}, id)
}

// WithTraceSpan returns a context that makes every client call under it
// send the given X-Trace-Span header — the caller's span id — so the
// receiving daemon parents its trace under the caller's span.
func WithTraceSpan(ctx context.Context, spanID string) context.Context {
	return context.WithValue(ctx, traceSpanCtxKey{}, spanID)
}

// Option customizes a Client.
type Option func(*Client)

// WithHTTPClient substitutes the underlying *http.Client (custom
// transports, proxies, test doubles).
func WithHTTPClient(hc *http.Client) Option { return func(c *Client) { c.hc = hc } }

// WithRetries sets how many times a 503 (or transport failure) is retried
// beyond the first attempt. Default 3; 0 disables retrying.
func WithRetries(n int) Option { return func(c *Client) { c.retries = n } }

// WithRetryBackoff sets the initial retry backoff (doubled per attempt,
// with ±50% jitter so a fleet of clients does not retry in lockstep).
// Default 100ms. A server Retry-After hint overrides the backoff for that
// sleep.
func WithRetryBackoff(d time.Duration) Option { return func(c *Client) { c.backoff = d } }

// Client talks to one sacserver. It is safe for concurrent use.
type Client struct {
	base    *url.URL
	hc      *http.Client
	retries int
	backoff time.Duration
}

// New creates a client for the server at baseURL (scheme and host, e.g.
// "http://localhost:8080"; any path prefix is kept, so a reverse-proxied
// "https://geo.example.com/sac" works too).
func New(baseURL string, opts ...Option) (*Client, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("sac client: invalid base URL %q: %w", baseURL, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return nil, fmt.Errorf("sac client: base URL %q must be http or https", baseURL)
	}
	c := &Client{
		base:    u,
		hc:      &http.Client{Timeout: 60 * time.Second},
		retries: 3,
		backoff: 100 * time.Millisecond,
	}
	for _, o := range opts {
		o(c)
	}
	return c, nil
}

// --- wire types -----------------------------------------------------------

// Query is one SAC request: the query vertex, the degree threshold, the
// algorithm (a /v1/algorithms name or alias; empty = server default,
// AppFast) and its parameters. Parameter pointers distinguish "absent →
// server default" from an explicit zero; build them with Float.
type Query struct {
	Q         int64    `json:"q"`
	K         int      `json:"k"`
	Algo      string   `json:"algo,omitempty"`
	EpsF      *float64 `json:"epsF,omitempty"`
	EpsA      *float64 `json:"epsA,omitempty"`
	Theta     *float64 `json:"theta,omitempty"`
	Structure string   `json:"structure,omitempty"`
	// TimeoutMillis, when positive, asks the server to bound this query
	// with its own deadline (the server's per-request deadline still caps
	// it). The caller's context cancels client-side regardless.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
}

// Float returns a pointer to v, for setting optional parameters inline.
func Float(v float64) *float64 { return &v }

// Circle is a covering circle.
type Circle struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	R float64 `json:"r"`
}

// Stats are the per-query work counters the server reports.
type Stats struct {
	CandidateSize     int    `json:"candidateSize"`
	FeasibilityChecks int    `json:"feasibilityChecks"`
	BinaryIters       int    `json:"binaryIters"`
	ElapsedMicros     int64  `json:"elapsedMicros"`
	Algorithm         string `json:"algorithm"`
}

// Result is one SAC answer.
type Result struct {
	Q       int64   `json:"q"`
	K       int     `json:"k"`
	Members []int64 `json:"members"`
	MCC     Circle  `json:"mcc"`
	Delta   float64 `json:"delta"`
	Stats   Stats   `json:"stats"`
}

// BatchQuery is one (q, k) item of a batch.
type BatchQuery struct {
	Q int64 `json:"q"`
	K int   `json:"k"`
}

// BatchOptions selects the algorithm and parameters shared by a whole
// batch, plus the server-side worker count (0 = server default).
type BatchOptions struct {
	Algo      string
	EpsF      *float64
	EpsA      *float64
	Theta     *float64
	Structure string
	Workers   int
}

// BatchItem is one answered batch query; Error is the per-item failure
// message ("" on success).
type BatchItem struct {
	Q       int64   `json:"q"`
	K       int     `json:"k"`
	Members []int64 `json:"members"`
	MCC     Circle  `json:"mcc"`
	Error   string  `json:"error"`
}

// AlgoParam is one entry of an algorithm's parameter schema.
type AlgoParam struct {
	Name     string   `json:"name"`
	Type     string   `json:"type"`
	Doc      string   `json:"doc"`
	Required bool     `json:"required"`
	Default  *float64 `json:"default"`
	Min      float64  `json:"min"`
	Max      *float64 `json:"max"` // nil = unbounded
	MinExcl  bool     `json:"minExclusive"`
	MaxExcl  bool     `json:"maxExclusive"`
}

// AlgoInfo is one registered algorithm as served by /v1/algorithms.
type AlgoInfo struct {
	Name    string      `json:"name"`
	Aliases []string    `json:"aliases"`
	Ratio   string      `json:"ratio"`
	Doc     string      `json:"doc"`
	Params  []AlgoParam `json:"params"`
}

// Health is the server status report. Unversioned extras (durability
// stats, replication lag) land in Extra.
type Health struct {
	// Status summarizes serving fitness: "ok", "readonly" (the node answers
	// reads but rejects writes) or "degraded" (something needs an operator).
	Status   string `json:"status"`
	Dataset  string `json:"dataset"`
	Vertices int    `json:"vertices"`
	Edges    int    `json:"edges"`
	Durable  bool   `json:"durable"`
	// Role is "standalone", "leader" or "replica".
	Role string `json:"role"`
	// Epoch is the fencing epoch (0 on non-durable standalone servers).
	Epoch uint64 `json:"epoch"`

	Extra map[string]json.RawMessage `json:"-"`
}

// UnmarshalJSON keeps the typed fields and the raw remainder.
func (h *Health) UnmarshalJSON(data []byte) error {
	type plain Health
	if err := json.Unmarshal(data, (*plain)(h)); err != nil {
		return err
	}
	return json.Unmarshal(data, &h.Extra)
}

// Vertex is one vertex's public view.
type Vertex struct {
	ID     int64   `json:"id"`
	X      float64 `json:"x"`
	Y      float64 `json:"y"`
	Degree int     `json:"degree"`
	Core   int     `json:"core"`
}

// EdgeResult reports an edge mutation: whether the graph changed (false
// for idempotent repeats) and the edge count afterwards.
type EdgeResult struct {
	OK      bool `json:"ok"`
	Changed bool `json:"changed"`
	Edges   int  `json:"edges"`
}

// --- operations -----------------------------------------------------------

// Health fetches /v1/health.
func (c *Client) Health(ctx context.Context) (*Health, error) {
	var out Health
	if err := c.do(ctx, http.MethodGet, "/v1/health", nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Algorithms fetches the algorithm registry from /v1/algorithms.
func (c *Client) Algorithms(ctx context.Context) ([]AlgoInfo, error) {
	var out []AlgoInfo
	if err := c.do(ctx, http.MethodGet, "/v1/algorithms", nil, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Vertex fetches one vertex's location, degree and core number.
func (c *Client) Vertex(ctx context.Context, id int64) (*Vertex, error) {
	var out Vertex
	if err := c.do(ctx, http.MethodGet, fmt.Sprintf("/v1/vertex/%d", id), nil, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Query runs one SAC query.
func (c *Client) Query(ctx context.Context, q Query) (*Result, error) {
	var out Result
	if err := c.do(ctx, http.MethodPost, "/v1/query", q, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Batch answers many queries in one request; items come back in input
// order, failed items with their Error set. A nil opt runs the server
// defaults (AppFast on GOMAXPROCS workers).
func (c *Client) Batch(ctx context.Context, queries []BatchQuery, opt *BatchOptions) ([]BatchItem, error) {
	req := struct {
		Queries   []BatchQuery `json:"queries"`
		Algo      string       `json:"algo,omitempty"`
		EpsF      *float64     `json:"epsF,omitempty"`
		EpsA      *float64     `json:"epsA,omitempty"`
		Theta     *float64     `json:"theta,omitempty"`
		Structure string       `json:"structure,omitempty"`
		Workers   int          `json:"workers,omitempty"`
	}{Queries: queries}
	if opt != nil {
		req.Algo, req.EpsF, req.EpsA, req.Theta = opt.Algo, opt.EpsF, opt.EpsA, opt.Theta
		req.Structure, req.Workers = opt.Structure, opt.Workers
	}
	var out struct {
		Items []BatchItem `json:"items"`
	}
	if err := c.do(ctx, http.MethodPost, "/v1/batch", req, &out); err != nil {
		return nil, err
	}
	return out.Items, nil
}

// CheckIn moves vertex v to (x, y). The call returns once a snapshot
// containing the move is published (read-your-writes).
func (c *Client) CheckIn(ctx context.Context, v int64, x, y float64) error {
	req := struct {
		V int64   `json:"v"`
		X float64 `json:"x"`
		Y float64 `json:"y"`
	}{v, x, y}
	return c.do(ctx, http.MethodPost, "/v1/checkin", req, nil)
}

// Edge inserts (insert = true) or deletes one undirected friendship edge.
func (c *Client) Edge(ctx context.Context, u, v int64, insert bool) (*EdgeResult, error) {
	op := "delete"
	if insert {
		op = "insert"
	}
	req := struct {
		U  int64  `json:"u"`
		V  int64  `json:"v"`
		Op string `json:"op"`
	}{u, v, op}
	var out EdgeResult
	if err := c.do(ctx, http.MethodPost, "/v1/edge", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// --- transport ------------------------------------------------------------

// jitter spreads a backoff uniformly over [d/2, 3d/2) so a herd of clients
// whose requests failed together does not retry together.
func jitter(d time.Duration) time.Duration {
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// do sends one API call with retry-on-503/429: the request body is
// marshaled once and replayed on each attempt, backoff doubles per retry
// with ±50% jitter (a server Retry-After hint overrides it for that sleep),
// and the context bounds the whole loop (sleeps included). Transport-level
// failures retry the same way; other API errors — and a 503 coded
// read_only, which means this node will not accept the write no matter how
// long we wait — return immediately.
func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body []byte
	if in != nil {
		var err error
		if body, err = json.Marshal(in); err != nil {
			return fmt.Errorf("sac client: encoding request: %w", err)
		}
	}
	u := c.base.JoinPath(path)
	backoff := c.backoff
	var lastErr error
	var retryAfter time.Duration
	for attempt := 0; attempt <= c.retries; attempt++ {
		if attempt > 0 {
			sleep := jitter(backoff)
			if retryAfter > 0 {
				sleep = retryAfter
			}
			select {
			case <-ctx.Done():
				return fmt.Errorf("sac client: %w (last error: %w)", ctx.Err(), lastErr)
			case <-time.After(sleep):
			}
			backoff *= 2
			retryAfter = 0
		}
		var rd io.Reader
		if in != nil {
			rd = bytes.NewReader(body)
		}
		req, err := http.NewRequestWithContext(ctx, method, u.String(), rd)
		if err != nil {
			return fmt.Errorf("sac client: building request: %w", err)
		}
		if in != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		if id, _ := ctx.Value(requestIDCtxKey{}).(string); id != "" {
			req.Header.Set("X-Request-Id", id)
		}
		if sp, _ := ctx.Value(traceSpanCtxKey{}).(string); sp != "" {
			req.Header.Set("X-Trace-Span", sp)
		}
		resp, err := c.hc.Do(req)
		if err != nil {
			if ctx.Err() != nil {
				return fmt.Errorf("sac client: %w", err)
			}
			lastErr = err // transient transport failure: retry
			continue
		}
		apiErr, err := consume(resp, out)
		if err != nil {
			return err
		}
		if apiErr == nil {
			return nil
		}
		retryable := apiErr.Status == http.StatusServiceUnavailable ||
			apiErr.Status == http.StatusTooManyRequests
		if !retryable || apiErr.Code == "read_only" {
			return apiErr
		}
		retryAfter = apiErr.RetryAfter
		lastErr = apiErr // 503/429: retry
	}
	return fmt.Errorf("sac client: giving up after %d attempts: %w", c.retries+1, lastErr)
}

// consume decodes one response: 2xx into out, non-2xx into an *APIError
// built from the structured envelope (or a synthesized one when the body
// is not an envelope — a proxy's bare 502, say).
func consume(resp *http.Response, out any) (*APIError, error) {
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return nil, fmt.Errorf("sac client: reading response: %w", err)
	}
	if resp.StatusCode >= 200 && resp.StatusCode < 300 {
		if out == nil {
			return nil, nil
		}
		if err := json.Unmarshal(raw, out); err != nil {
			return nil, fmt.Errorf("sac client: decoding response: %w", err)
		}
		return nil, nil
	}
	var env struct {
		Error     string `json:"error"`
		Code      string `json:"code"`
		Field     string `json:"field"`
		RequestID string `json:"requestId"`
	}
	apiErr := &APIError{
		Status:    resp.StatusCode,
		RequestID: resp.Header.Get("X-Request-Id"),
		SpanID:    resp.Header.Get("X-Trace-Span"),
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		// Delta-seconds form only (what sacserver sends); capped so a
		// misconfigured header cannot park the retry loop for minutes.
		if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
			if secs > 30 {
				secs = 30
			}
			apiErr.RetryAfter = time.Duration(secs) * time.Second
		}
	}
	if json.Unmarshal(raw, &env) == nil && env.Error != "" {
		apiErr.Message, apiErr.Code, apiErr.Field = env.Error, env.Code, env.Field
		if env.RequestID != "" {
			apiErr.RequestID = env.RequestID
		}
	} else {
		apiErr.Message = strings.TrimSpace(string(raw))
	}
	return apiErr, nil
}
