package graph

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"sacsearch/internal/geom"
)

// randomSpatial builds a random graph with locations in the unit square.
func randomSpatial(seed int64, n, edges int) *Graph {
	rnd := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	for i := 0; i < edges; i++ {
		b.AddEdge(V(rnd.Intn(n)), V(rnd.Intn(n)))
	}
	for v := 0; v < n; v++ {
		b.SetLoc(V(v), geom.Point{X: rnd.Float64(), Y: rnd.Float64()})
	}
	return b.Build()
}

func graphsEqual(t *testing.T, a, b *Graph) {
	t.Helper()
	if a.NumVertices() != b.NumVertices() || a.NumEdges() != b.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)",
			a.NumVertices(), a.NumEdges(), b.NumVertices(), b.NumEdges())
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(V(v)), b.Neighbors(V(v))
		if len(na) != len(nb) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d: neighbor %d differs", v, i)
			}
		}
		if a.Loc(V(v)) != b.Loc(V(v)) {
			t.Fatalf("vertex %d: location differs", v)
		}
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for _, tc := range []struct{ n, edges int }{
		{1, 0},
		{2, 1},
		{50, 200},
		{500, 3000},
	} {
		g := randomSpatial(int64(tc.n), tc.n, tc.edges)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, g); err != nil {
			t.Fatalf("n=%d: write: %v", tc.n, err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatalf("n=%d: read: %v", tc.n, err)
		}
		graphsEqual(t, g, got)
	}
}

func TestBinaryRoundTripEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumVertices() != 0 || got.NumEdges() != 0 {
		t.Fatalf("empty graph round-trip: %d vertices %d edges", got.NumVertices(), got.NumEdges())
	}
}

func TestBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(strings.NewReader("NOTAGRAPHFILE....")); err == nil {
		t.Fatal("bad magic accepted")
	}
}

func TestBinaryTruncated(t *testing.T) {
	g := randomSpatial(3, 40, 150)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Every strict prefix must fail (never silently produce a graph).
	for _, cut := range []int{0, 4, 8, 20, len(full) / 2, len(full) - 1} {
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestBinaryCorruptedPayload(t *testing.T) {
	g := randomSpatial(5, 60, 240)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Flip one byte at several positions; structural validation or the
	// checksum must reject every one.
	for _, pos := range []int{24, len(full) / 3, len(full) / 2, len(full) - 2} {
		corrupt := append([]byte(nil), full...)
		corrupt[pos] ^= 0xff
		if _, err := ReadBinary(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("corruption at byte %d accepted", pos)
		}
	}
}

func TestBinaryChecksumTrailer(t *testing.T) {
	g := randomSpatial(7, 30, 90)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-1] ^= 0x01
	_, err := ReadBinary(bytes.NewReader(corrupt))
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("trailer corruption: err = %v, want checksum mismatch", err)
	}
}

func TestBinaryHeaderSanity(t *testing.T) {
	// A header claiming an absurd vertex count must be rejected before any
	// allocation is attempted.
	var buf bytes.Buffer
	buf.Write(binMagic[:])
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f}) // n
	buf.Write([]byte{0, 0, 0, 0, 0, 0, 0, 0})                         // m
	if _, err := ReadBinary(&buf); err == nil {
		t.Fatal("absurd header accepted")
	}
}

func TestBinaryMatchesTextFormats(t *testing.T) {
	g := randomSpatial(11, 80, 400)

	var bin bytes.Buffer
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}

	var edges, locs bytes.Buffer
	if err := WriteEdges(&edges, g); err != nil {
		t.Fatal(err)
	}
	if err := WriteLocations(&locs, g); err != nil {
		t.Fatal(err)
	}
	fromText, err := Read(&edges, &locs, g.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	// Topology must match exactly; locations only within the text format's
	// %.9f precision (binary is bit-exact).
	if fromBin.NumVertices() != fromText.NumVertices() || fromBin.NumEdges() != fromText.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)",
			fromBin.NumVertices(), fromBin.NumEdges(), fromText.NumVertices(), fromText.NumEdges())
	}
	for v := 0; v < fromBin.NumVertices(); v++ {
		na, nb := fromBin.Neighbors(V(v)), fromText.Neighbors(V(v))
		if len(na) != len(nb) {
			t.Fatalf("vertex %d: degree %d vs %d", v, len(na), len(nb))
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d: neighbor %d differs", v, i)
			}
		}
		pa, pb := fromBin.Loc(V(v)), fromText.Loc(V(v))
		if d := pa.Dist(pb); d > 1e-8 {
			t.Fatalf("vertex %d: locations differ by %v", v, d)
		}
	}
}

func BenchmarkBinaryRead(b *testing.B) {
	g := randomSpatial(13, 20000, 120000)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		b.Fatal(err)
	}
	raw := buf.Bytes()
	b.SetBytes(int64(len(raw)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(raw)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTextRead(b *testing.B) {
	g := randomSpatial(13, 20000, 120000)
	var edges, locs bytes.Buffer
	if err := WriteEdges(&edges, g); err != nil {
		b.Fatal(err)
	}
	if err := WriteLocations(&locs, g); err != nil {
		b.Fatal(err)
	}
	e, l := edges.Bytes(), locs.Bytes()
	b.SetBytes(int64(len(e) + len(l)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Read(bytes.NewReader(e), bytes.NewReader(l), g.NumVertices()); err != nil {
			b.Fatal(err)
		}
	}
}
