package client_test

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"sacsearch/client"
	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/server"
)

// testGraph plants spatial cliques (the server test fixture's shape):
// every vertex has a tight community for k up to 4.
func testGraph() *graph.Graph {
	rnd := rand.New(rand.NewSource(7))
	const nc, cs = 6, 6
	b := graph.NewBuilder(nc * cs)
	for c := 0; c < nc; c++ {
		cx, cy := rnd.Float64(), rnd.Float64()
		for i := 0; i < cs; i++ {
			v := graph.V(c*cs + i)
			b.SetLoc(v, geom.Point{
				X: cx + (rnd.Float64()-0.5)*0.05,
				Y: cy + (rnd.Float64()-0.5)*0.05,
			})
			for j := 0; j < i; j++ {
				b.AddEdge(v, graph.V(c*cs+j))
			}
		}
	}
	b.AddEdge(0, 6)
	b.AddEdge(0, 12)
	return b.Build()
}

func newClientServer(t *testing.T) (*client.Client, *graph.Graph) {
	t.Helper()
	g := testGraph()
	srv := server.New("test", g)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cl, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return cl, g
}

// TestRoundTripAllRoutes drives every /v1 route through the typed client
// against a real server over httptest.
func TestRoundTripAllRoutes(t *testing.T) {
	cl, g := newClientServer(t)
	ctx := context.Background()

	h, err := cl.Health(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Dataset != "test" || h.Vertices != g.NumVertices() {
		t.Fatalf("health = %+v", h)
	}
	if _, ok := h.Extra["snapshotSeq"]; !ok {
		t.Fatalf("health extras missing snapshotSeq: %v", h.Extra)
	}

	algos, err := cl.Algorithms(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(algos) != len(core.Algorithms()) {
		t.Fatalf("%d algorithms, want %d", len(algos), len(core.Algorithms()))
	}
	for i, spec := range core.Algorithms() {
		if algos[i].Name != spec.Name || len(algos[i].Params) != len(spec.Params) {
			t.Fatalf("algorithms[%d] = %+v, want %s", i, algos[i], spec.Name)
		}
	}

	vx, err := cl.Vertex(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if vx.ID != 3 || vx.Degree != g.Degree(3) {
		t.Fatalf("vertex = %+v", vx)
	}

	res, err := cl.Query(ctx, client.Query{Q: 1, K: 4, Algo: "exact+"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) == 0 || res.Stats.Algorithm != "exact+" {
		t.Fatalf("query = %+v", res)
	}

	items, err := cl.Batch(ctx, []client.BatchQuery{{Q: 1, K: 4}, {Q: 7, K: 4}},
		&client.BatchOptions{Algo: "appinc", Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(items) != 2 || items[0].Error != "" || len(items[0].Members) == 0 {
		t.Fatalf("batch = %+v", items)
	}

	if err := cl.CheckIn(ctx, 3, 0.25, 0.75); err != nil {
		t.Fatal(err)
	}
	moved, err := cl.Vertex(ctx, 3)
	if err != nil {
		t.Fatal(err)
	}
	if moved.X != 0.25 || moved.Y != 0.75 {
		t.Fatalf("checkin did not move vertex: %+v", moved)
	}

	er, err := cl.Edge(ctx, 0, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	if !er.OK || !er.Changed {
		t.Fatalf("edge insert = %+v", er)
	}
	er, err = cl.Edge(ctx, 0, 7, true) // idempotent repeat
	if err != nil {
		t.Fatal(err)
	}
	if er.Changed {
		t.Fatalf("repeated insert reported a change: %+v", er)
	}
}

// TestAPIErrors maps server failures onto typed errors: codes, fields,
// request ids and the ErrNoCommunity sentinel.
func TestAPIErrors(t *testing.T) {
	cl, _ := newClientServer(t)
	ctx := context.Background()

	_, err := cl.Query(ctx, client.Query{Q: 1, K: 40})
	if !errors.Is(err, client.ErrNoCommunity) {
		t.Fatalf("k=40 err = %v, want ErrNoCommunity", err)
	}

	_, err = cl.Query(ctx, client.Query{Q: 1, K: 4, Algo: "bogus"})
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) {
		t.Fatalf("err = %v, want *APIError", err)
	}
	if apiErr.Status != http.StatusBadRequest || apiErr.Code != "unknown_algorithm" ||
		apiErr.Field != "algo" || apiErr.RequestID == "" {
		t.Fatalf("APIError = %+v", apiErr)
	}
	if errors.Is(err, client.ErrNoCommunity) {
		t.Fatal("unknown algorithm matched ErrNoCommunity")
	}

	_, err = cl.Query(ctx, client.Query{Q: 1, K: 4, Algo: "appfast", Theta: client.Float(0.5)})
	if !errors.As(err, &apiErr) || apiErr.Code != "invalid_param" || apiErr.Field != "theta" {
		t.Fatalf("extraneous theta err = %v", err)
	}

	_, err = cl.Vertex(ctx, 99999)
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusNotFound || apiErr.Code != "unknown_vertex" {
		t.Fatalf("unknown vertex err = %v", err)
	}
}

// TestRetryOn503 verifies the retry loop: two 503s then success, and
// permanent 503 exhausting the budget.
func TestRetryOn503(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"draining","code":"unavailable"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","dataset":"flaky","vertices":1,"edges":0}`))
	}))
	t.Cleanup(ts.Close)
	cl, err := client.New(ts.URL, client.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Dataset != "flaky" || calls.Load() != 3 {
		t.Fatalf("health = %+v after %d calls", h, calls.Load())
	}

	// Permanent 503: the budget is spent and the last APIError surfaces.
	calls.Store(-1000)
	cl, err = client.New(ts.URL, client.WithRetries(1), client.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	_, err = cl.Health(context.Background())
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Status != http.StatusServiceUnavailable {
		t.Fatalf("permanent 503 err = %v", err)
	}
	if got := calls.Load(); got != -998 {
		t.Fatalf("attempts = %d, want 2", got+1000)
	}

	// Non-503 errors do not retry.
	notFound := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "nope", http.StatusNotFound)
	}))
	t.Cleanup(notFound.Close)
	calls.Store(0)
	cl, err = client.New(notFound.URL, client.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if _, err = cl.Health(context.Background()); err == nil {
		t.Fatal("expected error")
	}
	if calls.Load() != 1 {
		t.Fatalf("404 retried %d times", calls.Load()-1)
	}
}

// TestIntegrationSmoke is the in-process server↔client smoke the CI
// workflow mirrors with real binaries: serve a generated graph, drive it
// through the typed client, and pin every answer to a direct Searcher on
// the same graph.
func TestIntegrationSmoke(t *testing.T) {
	g := testGraph()
	direct := core.NewSearcher(g.Clone())
	srv := server.New("smoke", g)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	cl, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for _, algo := range []string{"exact", "exact+", "appinc", "appfast", "appacc"} {
		for _, q := range []int64{0, 7, 19, 31} {
			got, err := cl.Query(ctx, client.Query{Q: q, K: 4, Algo: algo})
			want, wantErr := direct.Search(ctx, core.Query{Q: graph.V(q), K: 4, Algo: algo})
			if wantErr != nil {
				if err == nil {
					t.Fatalf("%s q=%d: client succeeded, direct failed: %v", algo, q, wantErr)
				}
				continue
			}
			if err != nil {
				t.Fatalf("%s q=%d: %v", algo, q, err)
			}
			if len(got.Members) != len(want.Members) {
				t.Fatalf("%s q=%d: client %v, direct %v", algo, q, got.Members, want.Members)
			}
			for i, m := range want.Members {
				if got.Members[i] != int64(m) {
					t.Fatalf("%s q=%d: member %d = %d, want %d", algo, q, i, got.Members[i], m)
				}
			}
			if got.MCC.R != want.MCC.R || got.Delta != want.Delta {
				t.Fatalf("%s q=%d: client (r=%v δ=%v), direct (r=%v δ=%v)",
					algo, q, got.MCC.R, got.Delta, want.MCC.R, want.Delta)
			}
		}
	}
}

// TestRetryHonorsRetryAfter pins the Retry-After contract: a 503 carrying
// the header must be retried after the server's hint, not the client's own
// (much larger) backoff.
func TestRetryHonorsRetryAfter(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write([]byte(`{"error":"shedding","code":"stale_read"}`))
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write([]byte(`{"status":"ok","dataset":"hint","vertices":1,"edges":0}`))
	}))
	t.Cleanup(ts.Close)
	// Backoff of 10s would blow the elapsed bound if Retry-After were ignored.
	cl, err := client.New(ts.URL, client.WithRetries(2), client.WithRetryBackoff(10*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	h, err := cl.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	if h.Dataset != "hint" || calls.Load() != 2 {
		t.Fatalf("health = %+v after %d calls", h, calls.Load())
	}
	if elapsed < 900*time.Millisecond || elapsed > 5*time.Second {
		t.Fatalf("retry slept %v; Retry-After of 1s was not honored", elapsed)
	}
}

// TestReadOnlyNotRetriedInPlace: a 503 coded read_only means this node will
// never accept the write — retrying it in place only delays the failover a
// Set would perform.
func TestReadOnlyNotRetriedInPlace(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write([]byte(`{"error":"replica is read-only","code":"read_only"}`))
	}))
	t.Cleanup(ts.Close)
	cl, err := client.New(ts.URL, client.WithRetries(3), client.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	err = cl.CheckIn(context.Background(), 1, 0.5, 0.5)
	var apiErr *client.APIError
	if !errors.As(err, &apiErr) || apiErr.Code != "read_only" {
		t.Fatalf("err = %v, want read_only APIError", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("read_only retried in place: %d attempts", calls.Load())
	}
}

// readOnlyStub mimics a replica's write surface: every POST write bounces
// with 503 read_only; reads are not served (503 unavailable) so read
// failover can be observed too.
func readOnlyStub(t *testing.T, writeCalls, readCalls *atomic.Int32) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		switch r.URL.Path {
		case "/v1/checkin", "/v1/edge":
			writeCalls.Add(1)
			w.Write([]byte(`{"error":"replica is read-only","code":"read_only"}`))
		default:
			readCalls.Add(1)
			w.Write([]byte(`{"error":"shedding","code":"stale_read"}`))
		}
	}))
	t.Cleanup(ts.Close)
	return ts
}

// TestSetWriteFailover routes writes through a Set whose first endpoint is
// read-only: the first write walks to the healthy endpoint, and subsequent
// writes remember it instead of re-probing the dead one.
func TestSetWriteFailover(t *testing.T) {
	var stubWrites, stubReads atomic.Int32
	stub := readOnlyStub(t, &stubWrites, &stubReads)

	g := testGraph()
	srv := server.New("leader", g)
	t.Cleanup(srv.Close)
	leader := httptest.NewServer(srv)
	t.Cleanup(leader.Close)

	set, err := client.NewSet([]string{stub.URL, leader.URL},
		client.WithRetries(0), client.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	if err := set.CheckIn(ctx, 3, 0.25, 0.75); err != nil {
		t.Fatalf("first write through the set: %v", err)
	}
	if got := stubWrites.Load(); got != 1 {
		t.Fatalf("read-only endpoint saw %d write attempts, want 1", got)
	}
	if _, err := set.Edge(ctx, 0, 7, true); err != nil {
		t.Fatalf("second write: %v", err)
	}
	if got := stubWrites.Load(); got != 1 {
		t.Fatalf("writer stickiness failed: read-only endpoint re-probed (%d attempts)", got)
	}

	// The write landed: read it back through the set (reads that hit the
	// shedding stub fail over to the leader).
	for i := 0; i < 4; i++ {
		vx, err := set.Vertex(ctx, 3)
		if err != nil {
			t.Fatalf("set read %d: %v", i, err)
		}
		if vx.X != 0.25 || vx.Y != 0.75 {
			t.Fatalf("set read %d = %+v", i, vx)
		}
	}
	if stubReads.Load() == 0 {
		t.Fatal("round-robin never touched the first endpoint")
	}
}

// TestSetReadFailoverOnTransportError lists a dead endpoint first: reads
// and writes must both walk past the connection failure.
func TestSetReadFailoverOnTransportError(t *testing.T) {
	g := testGraph()
	srv := server.New("alive", g)
	t.Cleanup(srv.Close)
	alive := httptest.NewServer(srv)
	t.Cleanup(alive.Close)

	dead := httptest.NewServer(http.HandlerFunc(func(http.ResponseWriter, *http.Request) {}))
	deadURL := dead.URL
	dead.Close() // nothing listens here any more

	set, err := client.NewSet([]string{deadURL, alive.URL},
		client.WithRetries(0), client.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		if _, err := set.Query(ctx, client.Query{Q: 1, K: 4}); err != nil {
			t.Fatalf("query %d through set with dead endpoint: %v", i, err)
		}
	}
	if err := set.CheckIn(ctx, 1, 0.5, 0.5); err != nil {
		t.Fatalf("write through set with dead endpoint: %v", err)
	}

	// Non-failover errors surface immediately instead of walking the set.
	if _, err := set.Query(ctx, client.Query{Q: 1, K: 4, Algo: "bogus"}); err == nil {
		t.Fatal("bad algorithm succeeded")
	} else {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Status != http.StatusBadRequest {
			t.Fatalf("bad algorithm err = %v", err)
		}
	}
}

// TestSetSkipsKnownReadOnlyEndpoints pins the read_only memory: once an
// endpoint has answered a write with read_only, later writes must not burn
// a first-pass request on it — but it must still be probed as a last
// resort, which is how a promotion is discovered.
func TestSetSkipsKnownReadOnlyEndpoints(t *testing.T) {
	g := testGraph()
	var aWrites, bWrites atomic.Int32
	var bPromoted atomic.Bool

	readOnlyJSON := []byte(`{"error":"replica is read-only","code":"read_only"}`)
	a := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		aWrites.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusServiceUnavailable)
		w.Write(readOnlyJSON)
	}))
	t.Cleanup(a.Close)

	leader := server.New("leader", g)
	t.Cleanup(leader.Close)
	b := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !bPromoted.Load() {
			bWrites.Add(1)
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusServiceUnavailable)
			w.Write(readOnlyJSON)
			return
		}
		bWrites.Add(1)
		leader.ServeHTTP(w, r)
	}))
	t.Cleanup(b.Close)

	set, err := client.NewSet([]string{a.URL, b.URL},
		client.WithRetries(0), client.WithRetryBackoff(time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// No writable endpoint anywhere: the write fails after probing each
	// endpoint exactly once, and both get flagged.
	if err := set.CheckIn(ctx, 1, 0.5, 0.5); err == nil {
		t.Fatal("write with no leader succeeded")
	} else {
		var apiErr *client.APIError
		if !errors.As(err, &apiErr) || apiErr.Code != "read_only" {
			t.Fatalf("want the read_only verdict, got %v", err)
		}
	}
	if aWrites.Load() != 1 || bWrites.Load() != 1 {
		t.Fatalf("first write probed a=%d b=%d times, want 1 each", aWrites.Load(), bWrites.Load())
	}

	// B is promoted. The next write discovers it on the fallback pass —
	// each flagged endpoint is still probed at most once.
	bPromoted.Store(true)
	if err := set.CheckIn(ctx, 1, 0.25, 0.75); err != nil {
		t.Fatalf("write after promotion: %v", err)
	}
	if aWrites.Load() > 2 {
		t.Fatalf("flagged endpoint a probed %d times across two writes, want <= 2", aWrites.Load())
	}

	// B's success cleared its flag and made it the sticky writer: this
	// write must go straight there, with no request to a at all.
	aBefore := aWrites.Load()
	if err := set.CheckIn(ctx, 1, 0.1, 0.9); err != nil {
		t.Fatalf("write to promoted leader: %v", err)
	}
	if aWrites.Load() != aBefore {
		t.Fatalf("known-read-only endpoint was re-probed after a healthy write (a=%d, was %d)", aWrites.Load(), aBefore)
	}
}
