// Package debugserve exposes the Go runtime profiling endpoints
// (net/http/pprof) and the process's /metrics scrape on a dedicated
// listener, opt-in only.
//
// The handlers are registered on a private mux rather than by importing
// net/http/pprof for its side effect: the blank import registers on
// http.DefaultServeMux, which would silently attach profiling to any
// component in the process that serves DefaultServeMux. Keeping the
// endpoints on their own address also keeps them off the public API
// listener, so operators can firewall the debug port independently.
package debugserve

import (
	"log/slog"
	"net/http"
	"net/http/pprof"
	"time"

	"sacsearch/internal/telemetry"
)

// Handler returns a mux serving the standard pprof surface under
// /debug/pprof/ plus /metrics when reg is non-nil.
func Handler(reg *telemetry.Registry) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	if reg != nil {
		mux.Handle("/metrics", reg.Handler())
	}
	return mux
}

// Serve starts the debug listener on addr in a background goroutine and
// reports outcomes through logger (nil = slog.Default()). An empty addr is
// a no-op, so callers can pass their -pprof-addr flag value straight
// through. Profile and trace requests stream for a caller-chosen duration,
// so the server deliberately sets no write timeout.
func Serve(addr string, reg *telemetry.Registry, logger *slog.Logger) {
	if addr == "" {
		return
	}
	if logger == nil {
		logger = slog.Default()
	}
	srv := &http.Server{
		Addr:              addr,
		Handler:           Handler(reg),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		logger.Info("debug listener up", "addr", addr, "pprof", "/debug/pprof/", "metrics", reg != nil)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Error("debug listener failed", "addr", addr, "err", err)
		}
	}()
}
