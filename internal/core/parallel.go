package core

import (
	"context"
	"math"
	"sync"
	"sync/atomic"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// Intra-query parallel circle enumeration. Exact and ExactPlus spend nearly
// all their time in the pair/triple scans — embarrassingly parallel loops
// over a read-only candidate set. When a searcher's parallelism budget is
// ≥ 2, the outer loop is partitioned into contiguous strips claimed
// dynamically by a bounded group of worker searchers (lazily cloned from the
// dispatching searcher, so they share the immutable decomposition but own
// their scratch, peeler and markers).
//
// Workers share the incumbent radius through a CAS-min over the IEEE bit
// pattern (non-negative float64s order identically to their bits), so every
// prune — cc.R ≥ rcur, d[i] > 2·rcur, the Lemma 2 distance filters — stays
// as tight across workers as the serial rcur is within one. Each worker
// additionally tracks its own best (radius, enumeration index) pair; the
// reduction picks the lexicographic minimum, which reproduces the serial
// first-wins acceptance order independent of goroutine scheduling.
//
// Cancellation propagates through the workers' own tick-amortized context
// checks: every worker arms the query context, checks it at strip grabs and
// per middle-loop iteration, and latches at most 16 inner iterations of work
// after the context fires, exactly like the serial loops.

// parMinWidth is the minimum outer-loop width worth fanning out; below it
// goroutine startup dominates the strips.
const parMinWidth = 24

// parStrip is the number of consecutive outer indices one grab claims.
// Small strips keep the load balanced — the inner loops grow quadratically
// with the outer index — while amortizing the atomic fetch-add.
const parStrip = 4

// sharedRadius is the workers' shared incumbent radius. Radii are
// non-negative and +Inf is the top element, so a CAS-min over
// math.Float64bits is a lock-free strict minimum.
type sharedRadius struct{ bits atomic.Uint64 }

func (r *sharedRadius) init(v float64) { r.bits.Store(math.Float64bits(v)) }
func (r *sharedRadius) load() float64  { return math.Float64frombits(r.bits.Load()) }

// lower CAS-lowers the incumbent to v, reporting whether v strictly improved
// it. Ties do not lower, matching the serial acceptance test mcc.R < rcur.
func (r *sharedRadius) lower(v float64) bool {
	nb := math.Float64bits(v)
	for {
		ob := r.bits.Load()
		if nb >= ob {
			return false
		}
		if r.bits.CompareAndSwap(ob, nb) {
			return true
		}
	}
}

// enumOrd is the serial enumeration index of one circle: outer, middle and
// inner loop indices, with h = -1 for the absent third vertex of a pair
// circle (a pair precedes its own triples in serial order, and -1 sorts
// first). The seed incumbent uses ordSeed, which precedes every enumerated
// circle so equal-radius circles lose to it — the serial strict-< behavior.
type enumOrd struct{ i, j, h int32 }

var ordSeed = enumOrd{-1, -1, -1}

func (a enumOrd) before(b enumOrd) bool {
	if a.i != b.i {
		return a.i < b.i
	}
	if a.j != b.j {
		return a.j < b.j
	}
	return a.h < b.h
}

// parBest is one worker's running winner: the smallest (radius, enumeration
// index) pair among the circles it accepted, with a private copy of the
// community.
type parBest struct {
	r       float64
	ord     enumOrd
	members []graph.V
}

// parWorkersFor returns the enumeration worker group for an outer loop of
// the given width, or nil when the scan should run serially (budget < 2, or
// the loop is too narrow to pay for the fan-out). Workers are cloned lazily
// and cached; a cached worker whose graph pointer went stale (snapshot
// republication rebinding the parent via AdoptFrom) is rebound the same way,
// or re-cloned when the vertex count changed.
func (s *Searcher) parWorkersFor(width int) []*Searcher {
	n := s.parallel
	if n < 2 || width < parMinWidth {
		return nil
	}
	if maxStrips := (width + parStrip - 1) / parStrip; n > maxStrips {
		n = maxStrips
	}
	for len(s.parWorkers) < n {
		s.parWorkers = append(s.parWorkers, s.Clone())
	}
	ws := s.parWorkers[:n]
	for i, w := range ws {
		if w.g != s.g {
			if w.g.NumVertices() != s.g.NumVertices() {
				w = s.Clone()
				ws[i] = w
			} else {
				w.AdoptFrom(s)
			}
		} else {
			w.cores = s.cores
			w.truss = s.truss
		}
	}
	return ws
}

// prepPar arms one worker for a scan: fresh per-query state, the parent's
// query context, the parent's candidate grid, and — when the parent's query
// went through the candidate cache — the parent's cache entry, with the
// induced CSR forced ahead of time so the workers' concurrent feasibility
// checks never race on the lazy build. Workers never see the parent's
// sorted view: their gathers are circle subsets, which take the
// kcoreWithinCached path against the shared (now read-only) entry.
func (s *Searcher) prepPar(ctx context.Context, w *Searcher) {
	w.begin()
	w.beginCtx(ctx)
	w.parGrid = &s.sGrid
	if e := s.curEntry; e != nil {
		if e.adjOff == nil {
			e.buildInduced(s.g, s.localOf, s.localValid)
		}
		w.curEntry = e
		w.bindLocal(e)
	}
}

// joinPar absorbs the workers' counters and cancellation latches into the
// parent and drops every borrowed pointer so cache entries and grids are not
// pinned between queries.
func (s *Searcher) joinPar(ws []*Searcher) {
	for _, w := range ws {
		s.stats.CirclesExamined += w.stats.CirclesExamined
		s.stats.FeasibilityChecks += w.stats.FeasibilityChecks
		if s.ctxErr == nil && w.ctxErr != nil {
			s.ctxErr = w.ctxErr
		}
		w.curEntry = nil
		w.localEntry = nil
		w.parGrid = nil
		w.qctx = nil
	}
}

// reducePar picks the winner: the lexicographically smallest (radius,
// enumeration index) over every worker's best. ok is false when nothing
// strictly improved on the seed radius, in which case the caller keeps the
// seed incumbent — again the serial strict-< behavior.
func reducePar(bests []parBest, seed float64) (float64, []graph.V, bool) {
	win := -1
	for i := range bests {
		b := &bests[i]
		if b.members == nil {
			continue
		}
		if win < 0 || b.r < bests[win].r || (b.r == bests[win].r && b.ord.before(bests[win].ord)) {
			win = i
		}
	}
	if win < 0 || bests[win].r >= seed {
		return 0, nil, false
	}
	return bests[win].r, bests[win].members, true
}

// tryCirclePar is Exact's tryCircle against the shared incumbent: gather and
// peel with the worker's private scratch, publish improvements through the
// CAS-min, and track the worker's own (radius, order) best for the
// deterministic reduction. Acceptance into the local best is lexicographic —
// a radius tie with a smaller enumeration index still updates — so the
// reduction sees the order-minimal achiever of the final radius no matter
// which worker's CAS landed first.
func (w *Searcher) tryCirclePar(cc geom.Circle, ord enumOrd, qLoc geom.Point, q graph.V, k int, rsh *sharedRadius, b *parBest) {
	w.stats.CirclesExamined++
	if cc.R >= rsh.load() || !cc.Contains(qLoc) {
		return
	}
	// Last boundary before the expensive member gather + peel, as in serial.
	if w.canceled() {
		return
	}
	w.vertBuf = w.parGrid.InCircle(cc, w.vertBuf[:0])
	c := w.feasible(w.vertBuf, q, k)
	if c == nil {
		return
	}
	mcc := w.g.MCCOf(c)
	rsh.lower(mcc.R)
	if mcc.R < b.r || (mcc.R == b.r && ord.before(b.ord)) {
		b.r = mcc.R
		b.ord = ord
		b.members = append(b.members[:0], c...)
	}
}

// exactScanPar runs Exact's pair/triple scan (exact.go) across ws, with
// strips of the outer index claimed dynamically. seed is the incumbent
// radius going in; the return mirrors reducePar. The parent's stats and
// cancellation latch absorb the workers' on return; the winning member slice
// is owned by the winning worker and must be copied before the next query.
func (s *Searcher) exactScanPar(ctx context.Context, ws []*Searcher, X []graph.V, d []float64, qLoc geom.Point, q graph.V, k int, seed float64) (float64, []graph.V, bool) {
	var rsh sharedRadius
	rsh.init(seed)
	var next atomic.Int64
	next.Store(2) // the serial loop starts at i = 2
	bests := make([]parBest, len(ws))
	var wg sync.WaitGroup
	for wi, w := range ws {
		s.prepPar(ctx, w)
		bests[wi].r = math.Inf(1)
		wg.Add(1)
		go func(w *Searcher, b *parBest) {
			defer wg.Done()
			for {
				if w.canceled() {
					return
				}
				lo := int(next.Add(parStrip)) - parStrip
				if lo >= len(X) {
					return
				}
				hi := lo + parStrip
				if hi > len(X) {
					hi = len(X)
				}
				for i := lo; i < hi; i++ {
					if d[i] > 2*rsh.load() {
						// d ascends with i and the shared incumbent only
						// shrinks, so no later strip can pass either
						// (Algorithm 1, line 13).
						return
					}
					pi := s.g.Loc(X[i])
					for j := 0; j < i; j++ {
						if w.canceled() {
							return
						}
						pj := s.g.Loc(X[j])
						rc := rsh.load()
						if pj.Dist(pi) <= 2*rc {
							w.tryCirclePar(geom.CircleFrom2(pj, pi), enumOrd{int32(i), int32(j), -1}, qLoc, q, k, &rsh, b)
						}
						for h := j + 1; h < i; h++ {
							if w.canceledTick() {
								return
							}
							ph := s.g.Loc(X[h])
							rc = rsh.load()
							// Lemma 2 filters against the shared incumbent.
							if pj.Dist(ph) > 2*rc || ph.Dist(pi) > 2*rc || pj.Dist(pi) > 2*rc {
								continue
							}
							w.tryCirclePar(geom.CircleFrom3(pj, ph, pi), enumOrd{int32(i), int32(j), int32(h)}, qLoc, q, k, &rsh, b)
						}
					}
				}
			}
		}(w, &bests[wi])
	}
	wg.Wait()
	s.joinPar(ws)
	return reducePar(bests, seed)
}

// exactPlusScanPar runs ExactPlus's F1 pair/triple scan (exactplus.go)
// across ws, strips of the first fixed-vertex index claimed dynamically.
// Same contract as exactScanPar; rMinus is the fixed annulus inner radius of
// the d12 filter (the 2·rcur upper bound reads the shared incumbent).
func (s *Searcher) exactPlusScanPar(ctx context.Context, ws []*Searcher, f1 []graph.V, rMinus float64, qLoc geom.Point, q graph.V, k int, seed float64) (float64, []graph.V, bool) {
	var rsh sharedRadius
	rsh.init(seed)
	var next atomic.Int64
	bests := make([]parBest, len(ws))
	var wg sync.WaitGroup
	for wi, w := range ws {
		s.prepPar(ctx, w)
		bests[wi].r = math.Inf(1)
		wg.Add(1)
		go func(w *Searcher, b *parBest) {
			defer wg.Done()
			for {
				if w.canceled() {
					return
				}
				lo := int(next.Add(parStrip)) - parStrip
				if lo >= len(f1) {
					return
				}
				hi := lo + parStrip
				if hi > len(f1) {
					hi = len(f1)
				}
				for i1 := lo; i1 < hi; i1++ {
					p1 := s.g.Loc(f1[i1])
					for i2 := i1 + 1; i2 < len(f1); i2++ {
						if w.canceled() {
							return
						}
						p2 := s.g.Loc(f1[i2])
						d12 := p1.Dist(p2)
						// Algorithm 5 distance window, upper bound shared.
						if d12 < sqrt3*rMinus-geom.Eps || d12 > 2*rsh.load()+geom.Eps {
							continue
						}
						w.tryCirclePar(geom.CircleFrom2(p1, p2), enumOrd{int32(i1), int32(i2), -1}, qLoc, q, k, &rsh, b)
						for i3 := 0; i3 < len(f1); i3++ {
							if i3 == i1 || i3 == i2 {
								continue
							}
							if w.canceledTick() {
								return
							}
							p3 := s.g.Loc(f1[i3])
							if p1.Dist(p3) > d12+geom.Eps || p2.Dist(p3) > d12+geom.Eps {
								continue
							}
							w.tryCirclePar(geom.CircleFrom3(p1, p2, p3), enumOrd{int32(i1), int32(i2), int32(i3)}, qLoc, q, k, &rsh, b)
						}
					}
				}
			}
		}(w, &bests[wi])
	}
	wg.Wait()
	s.joinPar(ws)
	return reducePar(bests, seed)
}
