package graph

import (
	"fmt"
	"sort"
)

// Dynamic topology. A built Graph stores its adjacency in CSR form, which is
// compact and cache-friendly but cannot absorb edge churn in place. AddEdge
// and RemoveEdge therefore write through a delta layer: the first mutation
// touching a vertex copies its CSR row into an owned, sorted slice in the
// patched map (copy-on-write), and every later read of that vertex serves the
// patched row instead of the CSR row. Merging happens at write time — O(deg)
// per endpoint — so Neighbors stays allocation-free and safe for concurrent
// readers between mutations, which is what the server's RWMutex discipline
// (queries under RLock, mutations under Lock) relies on.
//
// When the patched fraction grows past compactFraction the delta layer is
// folded back into a fresh CSR (Compact), bounding both the map overhead and
// the scatter of patched rows. Compaction changes the representation, never
// the topology: the topology epoch is NOT bumped, so caches keyed on it stay
// valid across a compaction.
//
// Mutating topology invalidates every topology-derived structure built from
// the graph — core decompositions, candidate caches, spatial candidate
// indexes. Consumers detect staleness by comparing TopoEpoch; core numbers
// are kept current incrementally by kcore.Maintainer (or a Searcher's
// ApplyEdgeInsert/ApplyEdgeRemove, which wraps one).

// compactMinPatched and compactFraction gate automatic compaction: the delta
// layer is folded into the CSR when more than 1/compactFraction of the
// vertices carry patched rows (and at least compactMinPatched do, so tiny
// graphs don't thrash).
const (
	compactMinPatched = 64
	compactFraction   = 4
)

// TopoEpoch returns the topology version: it changes whenever AddEdge or
// RemoveEdge mutates the edge set. Consumers that cache topology-derived
// data (community memberships, induced subgraphs) compare epochs to decide
// whether the cache is still valid. Compaction does not change it.
func (g *Graph) TopoEpoch() uint64 { return g.topoEpoch }

// PatchedVertices returns the number of vertices whose adjacency currently
// lives in the delta layer rather than the CSR. Zero after Compact.
func (g *Graph) PatchedVertices() int { return len(g.patched) }

// AddEdge inserts the undirected edge {u, v}. It reports whether the edge
// set changed: self-loops and already-present edges return false. Vertices
// out of range panic, matching Builder.AddEdge. Not safe for concurrent use
// with readers.
func (g *Graph) AddEdge(u, v V) bool {
	g.mustBeMutable()
	if u == v {
		return false
	}
	n := g.NumVertices()
	if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, n))
	}
	if g.HasEdge(u, v) {
		return false
	}
	g.insertArc(u, v)
	g.insertArc(v, u)
	g.m++
	g.topoEpoch++
	g.maybeCompact()
	return true
}

// RemoveEdge deletes the undirected edge {u, v}. It reports whether the edge
// existed. Vertices out of range panic. Not safe for concurrent use with
// readers.
func (g *Graph) RemoveEdge(u, v V) bool {
	g.mustBeMutable()
	if u == v {
		return false
	}
	n := g.NumVertices()
	if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
		panic(fmt.Sprintf("graph: edge (%d,%d) out of range [0,%d)", u, v, n))
	}
	if !g.HasEdge(u, v) {
		return false
	}
	g.removeArc(u, v)
	g.removeArc(v, u)
	g.m--
	g.topoEpoch++
	g.maybeCompact()
	return true
}

// patchRow returns v's adjacency as an owned, mutable slice, copying the CSR
// row into the delta layer on first touch.
func (g *Graph) patchRow(v V) []V {
	if g.patched == nil {
		g.patched = make(map[V][]V)
	}
	nb, ok := g.patched[v]
	if !ok {
		base := g.adj[g.offsets[v]:g.offsets[v+1]]
		nb = make([]V, len(base), len(base)+4)
		copy(nb, base)
		g.patched[v] = nb
	}
	return nb
}

// insertArc adds v to u's adjacency row, keeping it sorted.
func (g *Graph) insertArc(u, v V) {
	nb := g.patchRow(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	nb = append(nb, 0)
	copy(nb[i+1:], nb[i:])
	nb[i] = v
	g.patched[u] = nb
}

// removeArc deletes v from u's adjacency row. The caller has already checked
// the edge exists.
func (g *Graph) removeArc(u, v V) {
	nb := g.patchRow(u)
	i := sort.Search(len(nb), func(i int) bool { return nb[i] >= v })
	g.patched[u] = append(nb[:i], nb[i+1:]...)
}

// maybeCompact folds the delta layer into the CSR when it has grown past the
// compaction thresholds.
func (g *Graph) maybeCompact() {
	if len(g.patched) > compactMinPatched && len(g.patched)*compactFraction > g.NumVertices() {
		g.Compact()
	}
}

// Compact rebuilds the CSR from the current (CSR + delta) adjacency and
// clears the delta layer. Topology is unchanged, so the topology epoch is
// not bumped and Neighbors results are identical before and after; only the
// backing representation moves. Not safe for concurrent use with readers.
func (g *Graph) Compact() {
	g.mustBeMutable()
	if len(g.patched) == 0 {
		g.patched = nil
		return
	}
	n := g.NumVertices()
	offsets := make([]int32, n+1)
	for v := 0; v < n; v++ {
		offsets[v+1] = offsets[v] + int32(len(g.Neighbors(V(v))))
	}
	adj := make([]V, offsets[n])
	for v := 0; v < n; v++ {
		copy(adj[offsets[v]:offsets[v+1]], g.Neighbors(V(v)))
	}
	g.offsets = offsets
	g.adj = adj
	g.patched = nil
}
