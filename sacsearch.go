// Package sacsearch is a Go implementation of spatial-aware community (SAC)
// search over large spatial graphs, reproducing Fang, Cheng, Li, Luo and Hu,
// "Effective Community Search over Large Spatial Graphs", PVLDB 10(6), 2017.
//
// Given an undirected graph whose vertices carry 2-D locations, a query
// vertex q and a degree threshold k, SAC search returns a connected subgraph
// containing q in which every vertex has degree ≥ k, covered by the smallest
// possible minimum covering circle. The package provides the paper's two
// exact algorithms (Exact, ExactPlus) and three approximations (AppInc,
// AppFast, AppAcc), the θ-SAC variant, the Global/Local/GeoModu baselines it
// compares against, dataset generators, quality metrics, and the harness
// that regenerates every table and figure of the paper's evaluation.
//
// The paper's Section 6 roadmap is implemented as well: alternative
// structure metrics (k-truss, k-clique percolation), minimum-diameter
// communities (Searcher.MinDiam2Approx, Searcher.MinDiamLens), batch query
// processing (BatchSearch, BatchStream), and an HTTP prototype
// (cmd/sacserver). Beyond the paper, topology is dynamic: Graph.AddEdge and
// Graph.RemoveEdge churn friendships through a delta-CSR overlay,
// Searcher.ApplyEdgeInsert/ApplyEdgeRemove keep the core decomposition
// current incrementally, and ReplayWithEdges interleaves edge events with
// check-in streams. Serving is snapshot-isolated: a ServingEngine owns the
// mutable graph in one writer goroutine and publishes immutable
// ServingSnapshot views through an atomic pointer, so queries run with zero
// locks; every algorithm has a *Ctx variant that honors cancellation and
// deadlines mid-query (ErrCanceled). Serving state is durable on request:
// OpenStore wraps the engine with a write-ahead log, checkpoints and crash
// recovery (write-visible implies logged; with FsyncAlways, on disk), and
// SaveGraph/LoadGraph persist built graphs in the checksummed binary
// format. Serving survives node loss too: NewReplicaShipper streams a
// store's WAL to ReplicaFollower nodes that serve read-only replicas of the
// state, with fencing epochs (FenceLeader, ErrFenced) guaranteeing a
// deposed leader cannot fork history. Serving scales out as well:
// PartitionGraph cuts a graph into spatially coherent shards (ShardMap,
// ShardSubgraph), each shard runs the full engine stack on its subgraph
// (`sacserver -shard-id/-shard-map`), and NewShardRouter fronts them with
// the same /v1 API, answering single-shard queries from one shard and
// scatter-gathering cross-shard ones exactly.
//
// # Quick start
//
//	b := sacsearch.NewBuilder(4)
//	b.AddEdge(0, 1)
//	b.AddEdge(1, 2)
//	b.AddEdge(2, 0)
//	b.AddEdge(2, 3)
//	b.SetLoc(0, sacsearch.Point{X: 0.10, Y: 0.10})
//	b.SetLoc(1, sacsearch.Point{X: 0.11, Y: 0.10})
//	b.SetLoc(2, sacsearch.Point{X: 0.10, Y: 0.11})
//	b.SetLoc(3, sacsearch.Point{X: 0.90, Y: 0.90})
//	g := b.Build()
//
//	s := sacsearch.NewSearcher(g)
//	res, err := s.Search(context.Background(), sacsearch.Query{
//		Algo: "exact+", // any registry name: exact, exact+, appinc, appfast, appacc, theta
//		Q:    0,
//		K:    2,
//		EpsA: sacsearch.Float(0.1),
//	})
//	if err != nil { ... }
//	fmt.Println(res.Members, res.MCC)
//
// Search is the unified entry point: one Query value selects the algorithm
// by registry name and carries its parameters, validated and defaulted
// against the algorithm registry (Algorithms). The legacy per-algorithm
// methods (s.Exact, s.ExactPlus, s.AppInc, ...) remain as thin equivalents.
// Remote callers get the same shape over HTTP — the versioned /v1 API of
// cmd/sacserver — through the typed client package sacsearch/client.
//
// Searchers precompute an O(m) core decomposition once and reuse scratch
// space across queries; they are not safe for concurrent use (Clone one per
// goroutine).
package sacsearch

import (
	"context"
	"io"
	"net"
	"time"

	"sacsearch/internal/batch"
	"sacsearch/internal/community"
	"sacsearch/internal/core"
	"sacsearch/internal/dataset"
	"sacsearch/internal/dynamic"
	"sacsearch/internal/gen"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/metrics"
	"sacsearch/internal/replica"
	"sacsearch/internal/router"
	"sacsearch/internal/shard"
	"sacsearch/internal/snapshot"
	"sacsearch/internal/store"
)

// Geometry.
type (
	// Point is a 2-D location in the unit square.
	Point = geom.Point
	// Circle is a closed disk; SAC results carry their minimum covering
	// circle as one.
	Circle = geom.Circle
)

// MCC returns the minimum covering circle of the given points (expected
// linear time, deterministic).
func MCC(pts []Point) Circle { return geom.MCC(pts) }

// Graph model.
type (
	// V is the dense vertex id type.
	V = graph.V
	// Graph is a spatial graph in CSR form with a delta overlay: locations
	// mutate via SetLoc (check-ins) and topology via AddEdge/RemoveEdge
	// (friendship churn), each versioned by its own epoch.
	Graph = graph.Graph
	// Builder accumulates edges and locations for a Graph.
	Builder = graph.Builder
)

// NewBuilder creates a graph builder for n vertices.
func NewBuilder(n int) *Builder { return graph.NewBuilder(n) }

// SaveGraph writes g to w in the checksummed binary CSR format — the fast
// reload path for multi-million-vertex graphs, and the format SaveGraph's
// counterpart LoadGraph, `sacserver -load` and `sacbench -load` read.
func SaveGraph(w io.Writer, g *Graph) error { return graph.WriteBinary(w, g) }

// LoadGraph reads a graph written by SaveGraph, verifying its checksum and
// structural invariants; a truncated or corrupted stream returns an error
// rather than a graph that fails later.
func LoadGraph(r io.Reader) (*Graph, error) { return graph.ReadBinary(r) }

// SAC search (the paper's contribution).
type (
	// Searcher runs SAC queries: Exact, ExactPlus, AppInc, AppFast, AppAcc
	// and ThetaSAC. See each method's documentation for the guarantee and
	// complexity.
	Searcher = core.Searcher
	// Result is one query's outcome: members, MCC, δ and work counters.
	Result = core.Result
	// Stats holds the per-query work counters.
	Stats = core.Stats
	// Structure selects the structure-cohesiveness metric.
	Structure = core.Structure
)

// Structure metrics: minimum degree (default), k-truss, or k-clique
// percolation.
const (
	StructureKCore   = core.StructureKCore
	StructureKTruss  = core.StructureKTruss
	StructureKClique = core.StructureKClique
)

// Unified query API. A Query names the algorithm and carries its
// parameters; Searcher.Search validates it through the algorithm registry
// and dispatches. The registry (Algorithms, LookupAlgo) is the single
// source of truth for algorithm names, parameter schemas, defaults and
// ranges — the HTTP server's /v1/algorithms, the sacquery CLI flags and
// the batch layer all derive from it.
type (
	// Query is one unified SAC request: Algo, Q, K, optional parameters
	// (EpsF/EpsA/Theta as presence-aware pointers; see Float), an optional
	// Structure assertion and an optional per-query Timeout.
	Query = core.Query
	// AlgoSpec describes one registered algorithm: name, aliases, ratio,
	// doc and parameter schema.
	AlgoSpec = core.AlgoSpec
	// ParamSpec describes one algorithm parameter: name, doc, required,
	// default and range.
	ParamSpec = core.ParamSpec
	// QueryError is a Query validation failure with a machine-readable
	// Code and the offending Field.
	QueryError = core.QueryError
)

// DefaultAlgo is the algorithm an empty Query.Algo runs (AppFast).
const DefaultAlgo = core.DefaultAlgo

// Algorithms returns the algorithm registry in presentation order.
func Algorithms() []*AlgoSpec { return core.Algorithms() }

// LookupAlgo resolves an algorithm name or alias, case-insensitively; the
// empty name resolves to DefaultAlgo.
func LookupAlgo(name string) (*AlgoSpec, bool) { return core.LookupAlgo(name) }

// Float returns a pointer to v — for setting a Query's optional parameter
// fields inline: Query{Algo: "appfast", EpsF: sacsearch.Float(0)}.
func Float(v float64) *float64 { return core.Float(v) }

// ParseStructure resolves a structure-metric name ("kcore", "ktruss",
// "kclique", or the hyphenated display forms).
func ParseStructure(name string) (Structure, error) { return core.ParseStructure(name) }

// ErrNoCommunity reports that the query vertex belongs to no feasible
// community for the requested k.
var ErrNoCommunity = core.ErrNoCommunity

// ErrCanceled reports that a query's context was canceled or its deadline
// expired mid-algorithm. Every Searcher method has a *Ctx variant
// (ExactCtx, AppFastCtx, ...) that checks its context at loop boundaries;
// the underlying context error is wrapped, so errors.Is against
// context.Canceled or context.DeadlineExceeded reports the cause.
var ErrCanceled = core.ErrCanceled

// NewSearcher prepares SAC search over g with the minimum-degree metric.
func NewSearcher(g *Graph) *Searcher { return core.NewSearcher(g) }

// NewSearcherWithStructure prepares SAC search with the given structure
// cohesiveness metric (k-core, k-truss or k-clique).
func NewSearcherWithStructure(g *Graph, st Structure) *Searcher {
	return core.NewSearcherWithStructure(g, st)
}

// Pool is a concurrency-safe pool of Searcher clones — the parallel
// execution layer batch and server traffic run on. Pooled workers keep
// their scratch space and warmed candidate caches across queries.
type Pool = core.Pool

// NewPool creates a worker pool of clones of s.
func NewPool(s *Searcher) *Pool { return core.NewPool(s) }

// Snapshot-isolated serving (the production concurrency model; the HTTP
// server in cmd/sacserver runs on it). A ServingEngine owns the mutable
// graph in a single writer goroutine and publishes immutable
// ServingSnapshot values through an atomic pointer: queries pin a snapshot
// (one atomic load) and run lock-free on pooled workers, writers batch and
// never block readers.
type (
	// ServingEngine is the writer loop plus snapshot publication.
	ServingEngine = snapshot.Engine
	// ServingSnapshot is one immutable published graph view; it is a
	// BatchSource, so whole batches run pinned to one state.
	ServingSnapshot = snapshot.Snap
	// ServingOptions tunes the writer queue length and publication batch.
	ServingOptions = snapshot.Options
)

// NewServingEngine takes ownership of g and starts serving snapshots of it.
// Release the writer goroutine with Close.
func NewServingEngine(g *Graph, opt ServingOptions) *ServingEngine {
	return snapshot.New(g, opt)
}

// Durable serving (the production persistence model; `sacserver -data-dir`
// runs on it). A Store wraps a ServingEngine with a write-ahead log and
// background checkpoints: a write that became visible to readers is already
// logged (and, under FsyncAlways, on disk), and OpenStore recovers the last
// served state after a crash or restart.
type (
	// Store is a durable ServingEngine rooted in a data directory.
	Store = store.Store
	// StoreOptions configures durability: initial graph, fsync policy, WAL
	// segment size and checkpoint cadence.
	StoreOptions = store.Options
	// StoreStats is the durability status a Store reports (and /api/health
	// exposes): WAL size, sequences, checkpoint progress, fsync policy.
	StoreStats = store.Stats
	// FsyncPolicy selects when WAL appends reach stable storage.
	FsyncPolicy = store.FsyncPolicy
)

// Fsync policy choices: FsyncAlways makes every acknowledged write durable
// before it is acknowledged (one fsync per published batch); FsyncInterval
// bounds loss to the flush interval; FsyncNever leaves flushing to the OS.
const (
	FsyncAlways   = store.FsyncAlways
	FsyncInterval = store.FsyncInterval
	FsyncNever    = store.FsyncNever
)

// OpenStore recovers (or, with opt.Init on first boot, creates) the durable
// store rooted at dataDir: the newest valid checkpoint is loaded, the WAL
// tail replayed — tolerating a torn final record, failing loudly on real
// corruption — and the serving engine resumed with monotonic sequences.
// Release it with Close (which writes a final checkpoint).
func OpenStore(dataDir string, opt StoreOptions) (*Store, error) {
	return store.Open(dataDir, opt)
}

// Replication & failover (`sacserver -listen-replication` /
// `-replicate-from` run on these). A ReplicaShipper streams a durable
// Store's WAL — snapshot bootstrap plus CRC-verified live tail — to
// followers; a ReplicaFollower applies that stream onto its own serving
// engine and reconnects with jittered backoff, resuming from its last
// applied sequence or re-syncing via snapshot when the leader's history
// moved on. Fencing epochs (Store.Epoch, Store.Fence, Store.BumpEpoch,
// FenceLeader) guarantee a deposed leader's writes are rejected (ErrFenced)
// instead of forking history.
type (
	// ReplicaShipper is the leader side: it serves the replication protocol
	// on a listener, one WAL cursor per follower.
	ReplicaShipper = replica.Shipper
	// ReplicaShipperOptions tunes heartbeat cadence, tail polling and batch
	// size; the zero value serves defaults.
	ReplicaShipperOptions = replica.ShipperOptions
	// ReplicaFollower is the follower side: replicated read-only state plus
	// the replication session management.
	ReplicaFollower = replica.Follower
	// ReplicaFollowerOptions configures a follower; Leader is required.
	ReplicaFollowerOptions = replica.FollowerOptions
	// ReplicaStatus is a follower's point-in-time replication state: sync
	// and connection flags, applied/leader sequences, epochs, lag.
	ReplicaStatus = replica.FollowerStatus
)

// NewReplicaShipper starts shipping st's WAL to followers connecting on ln
// (owned by the shipper from then on). Release with Close.
func NewReplicaShipper(st *Store, ln net.Listener, opt ReplicaShipperOptions) *ReplicaShipper {
	return replica.NewShipper(st, ln, opt)
}

// NewReplicaFollower starts replicating from opt.Leader. The follower
// serves no state until its first sync completes (Engine returns nil before
// then); Close stops replication but leaves the last synced state readable.
func NewReplicaFollower(opt ReplicaFollowerOptions) (*ReplicaFollower, error) {
	return replica.NewFollower(opt)
}

// FenceLeader tells the leader at addr (its replication address) that epoch
// exists, fencing it if that outranks its own epoch — the operator-facing
// half of follower promotion. Returns the leader's reported epoch.
func FenceLeader(addr string, epoch uint64, timeout time.Duration) (uint64, error) {
	return replica.FenceLeader(addr, epoch, timeout)
}

// ErrFenced reports a write rejected because a newer leader epoch fenced
// this store.
var ErrFenced = store.ErrFenced

// Spatial sharding & scatter-gather routing (cmd/sacshard cuts the
// artifacts, `sacserver -shard-id -shard-map` serves one shard, and
// cmd/sacrouter — or an embedded ShardRouter — fronts the topology with
// the unchanged /v1 API). A ShardMap is the deterministic spatial
// partition of a graph's vertices; each shard serves the ShardSubgraph
// induced by its owned vertices plus ghost copies of their cross-shard
// neighbors, on the same engine/WAL/replication stack a single node runs.
type (
	// ShardMap assigns every vertex to exactly one owning shard; the same
	// graph and shard count always produce the identical map, and its
	// Checksum is how router and shards verify they agree.
	ShardMap = shard.Map
	// ShardServing is one node's identity inside a sharded topology: the
	// map plus this node's shard id.
	ShardServing = shard.Serving
	// ShardRouter is the scatter-gather /v1 front: owner-first routing for
	// single-shard answers, exact cross-shard assembly otherwise.
	ShardRouter = router.Router
	// ShardRouterConfig configures a ShardRouter: the map plus one
	// endpoint group (leader first, then read replicas) per shard.
	ShardRouterConfig = router.Config
)

// PartitionGraph cuts g into the given number of spatially coherent shards
// (1 to 65536) by walking a location grid, balancing owned-vertex counts.
// The cut is deterministic: identical input yields an identical map.
func PartitionGraph(g *Graph, shards int) (*ShardMap, error) {
	return shard.Partition(g, shards)
}

// ShardSubgraph extracts the subgraph shard id serves: the full vertex-id
// space with every edge incident to an owned vertex, so owned vertices see
// their true global degree and cross-shard neighbors appear as ghosts.
func ShardSubgraph(g *Graph, m *ShardMap, id int) (*Graph, error) {
	return shard.Subgraph(g, m, id)
}

// NewShardServing validates and packages one node's shard identity.
func NewShardServing(m *ShardMap, id int) (*ShardServing, error) {
	return shard.NewServing(m, id)
}

// WriteShardMap writes m in the versioned, checksummed artifact format
// sacshard produces and `sacserver -shard-map`/sacrouter read.
func WriteShardMap(w io.Writer, m *ShardMap) error { return m.WriteMap(w) }

// ReadShardMap reads a shard-map artifact, verifying its checksum.
func ReadShardMap(r io.Reader) (*ShardMap, error) { return shard.ReadMap(r) }

// NewShardRouter creates the scatter-gather router over an already-running
// sharded topology. It is an http.Handler serving the same /v1 contract as
// a single sacserver; Router.CheckTopology verifies every shard is
// reachable and serving the same map.
func NewShardRouter(cfg ShardRouterConfig) (*ShardRouter, error) {
	return router.New(cfg)
}

// Batch processing (Section 6 future work: answering many SAC queries at
// once with a shared decomposition and parallel workers).
type (
	// BatchQuery is one (q, k) request in a batch.
	BatchQuery = batch.Query
	// BatchItem is one answered batch query.
	BatchItem = batch.Item
	// BatchOptions configures workers, algorithm and parameters of a batch.
	BatchOptions = batch.Options
	// BatchAlgo selects the algorithm a batch runs.
	BatchAlgo = batch.Algo
)

// Batch algorithm choices.
const (
	BatchAppFast   = batch.AlgoAppFast
	BatchAppInc    = batch.AlgoAppInc
	BatchAppAcc    = batch.AlgoAppAcc
	BatchExactPlus = batch.AlgoExactPlus
	BatchExact     = batch.AlgoExact
)

// BatchSource supplies searcher workers to a batch: a *Pool, or a published
// ServingSnapshot (which pins the whole batch to one graph state).
type BatchSource = batch.Source

// BatchSearch answers every query using cloned searchers on parallel
// workers, deduplicating identical queries; items come back in input order.
func BatchSearch(s *Searcher, queries []BatchQuery, opt BatchOptions) []BatchItem {
	return batch.Run(context.Background(), s, queries, opt)
}

// BatchSearchCtx is BatchSearch with a deadline: when ctx fires, in-flight
// queries return ErrCanceled at their next loop boundary and undispatched
// queries fail without running.
func BatchSearchCtx(ctx context.Context, s *Searcher, queries []BatchQuery, opt BatchOptions) []BatchItem {
	return batch.Run(ctx, s, queries, opt)
}

// BatchStream answers queries from a channel as they arrive, emitting items
// as they complete; the output channel closes when in closes and all
// in-flight work is done.
func BatchStream(s *Searcher, in <-chan BatchQuery, opt BatchOptions) <-chan BatchItem {
	return batch.Stream(context.Background(), s, in, opt)
}

// BatchSearchOn is BatchSearch over an existing worker source; reusing one
// pool across batches keeps the workers' candidate caches warm.
func BatchSearchOn(p BatchSource, queries []BatchQuery, opt BatchOptions) []BatchItem {
	return batch.RunOn(context.Background(), p, queries, opt)
}

// BatchSearchOnCtx is BatchSearchOn with a deadline (see BatchSearchCtx).
func BatchSearchOnCtx(ctx context.Context, p BatchSource, queries []BatchQuery, opt BatchOptions) []BatchItem {
	return batch.RunOn(ctx, p, queries, opt)
}

// BatchStreamCtx is BatchStream with cancellation: when ctx fires, queries
// still arriving come back immediately as ErrCanceled items (the caller
// remains responsible for closing in).
func BatchStreamCtx(ctx context.Context, s *Searcher, in <-chan BatchQuery, opt BatchOptions) <-chan BatchItem {
	return batch.Stream(ctx, s, in, opt)
}

// BatchStreamOn is BatchStream over an existing worker source.
func BatchStreamOn(p BatchSource, in <-chan BatchQuery, opt BatchOptions) <-chan BatchItem {
	return batch.StreamOn(context.Background(), p, in, opt)
}

// BatchStreamOnCtx is BatchStreamOn with cancellation (see BatchStreamCtx).
func BatchStreamOnCtx(ctx context.Context, p BatchSource, in <-chan BatchQuery, opt BatchOptions) <-chan BatchItem {
	return batch.StreamOn(ctx, p, in, opt)
}

// BatchWorkload pairs each query vertex with k.
func BatchWorkload(qs []V, k int) []BatchQuery { return batch.Workload(qs, k) }

// Baselines (Section 5.2.2 comparisons).
type (
	// BaselineSearcher runs the Global [29] and Local [7] community-search
	// baselines.
	BaselineSearcher = community.Searcher
	// Partition is a GeoModu [4] community-detection result.
	Partition = community.Partition
)

// NewBaselineSearcher prepares the Global/Local baselines for g.
func NewBaselineSearcher(g *Graph) *BaselineSearcher { return community.NewSearcher(g) }

// RunGeoModu detects communities by geo-weighted (w = 1/d^µ) modularity
// maximization; µ is typically 1 or 2.
func RunGeoModu(g *Graph, mu float64) *Partition { return community.RunGeoModu(g, mu) }

// Datasets and workloads.
type (
	// Dataset is a named spatial graph (a Table 4 stand-in or a file load).
	Dataset = dataset.Dataset
	// Preset describes one Table 4 dataset.
	Preset = dataset.Preset
)

// DatasetPresets lists the Table 4 datasets this package can regenerate.
func DatasetPresets() []Preset { return dataset.Presets }

// LoadDataset builds the named dataset ("brightkite", "gowalla", "flickr",
// "foursquare", "syn1", "syn2") at the given scale ∈ (0,1].
func LoadDataset(name string, scale float64) (*Dataset, error) { return dataset.Load(name, scale) }

// QueryWorkload returns count random query vertices with core number ≥
// minCore (the paper's workload construction).
func QueryWorkload(g *Graph, minCore, count int, seed int64) []V {
	return dataset.QueryWorkload(g, minCore, count, seed)
}

// Generators.

// GenerateSocialGraph builds a synthetic geo-social graph: power-law degree
// backbone, planted dense groups, and spatially correlated locations
// (Section 5.1 recipe). The result is ready for SAC search.
func GenerateSocialGraph(n, m int, seed int64) *Graph {
	b := gen.SocialGraph(n, m, seed)
	gen.PlaceSpatial(b, gen.DefaultDistMean, gen.DefaultDistSigma, seed+1)
	return b.Build()
}

// Checkin is a timestamped location report (dynamic experiments).
type Checkin = gen.Checkin

// GenerateCheckins produces a time-sorted synthetic check-in stream for
// every vertex of g.
func GenerateCheckins(g *Graph, seed int64) []Checkin {
	return gen.Checkins(g, gen.DefaultCheckinConfig(), seed)
}

// SelectMovers picks up to count users with at least minFriends neighbors,
// ranked by total travel distance — the dynamic experiment's query users.
func SelectMovers(g *Graph, checkins []Checkin, minFriends, count int) []V {
	return gen.SelectMovers(g, checkins, minFriends, count)
}

// Dynamic replay (Section 5.2.3, extended with friendship churn).
type (
	// Snapshot is one tracked community observation during a replay.
	Snapshot = dynamic.Snapshot
	// DecayPoint is one (η, CJS, CAO) measurement of Figure 13.
	DecayPoint = dynamic.DecayPoint
	// SearchFunc runs one SAC query during a replay.
	SearchFunc = dynamic.SearchFunc
	// EdgeEvent is one timestamped friendship insertion or deletion.
	EdgeEvent = gen.EdgeEvent
	// EdgeApplyFunc applies one friendship change during a replay.
	EdgeApplyFunc = dynamic.EdgeApplyFunc
)

// Replay applies a check-in stream to g and snapshots the tracked users'
// communities from splitTime on.
func Replay(g *Graph, checkins []Checkin, tracked []V, splitTime float64, k int, search SearchFunc) (map[V][]Snapshot, error) {
	return dynamic.Replay(context.Background(), g, checkins, tracked, splitTime, k, search)
}

// ReplayCtx is Replay with cancellation: when ctx fires the replay aborts
// between events with the context's error.
func ReplayCtx(ctx context.Context, g *Graph, checkins []Checkin, tracked []V, splitTime float64, k int, search SearchFunc) (map[V][]Snapshot, error) {
	return dynamic.Replay(ctx, g, checkins, tracked, splitTime, k, search)
}

// ReplayWithEdges replays friendship churn interleaved with check-ins on one
// clock; each tracked search sees the graph exactly as it stood at that
// instant. Wire apply with ApplyEdgesVia(searcher) so the searcher's core
// decomposition stays current incrementally.
func ReplayWithEdges(g *Graph, checkins []Checkin, edges []EdgeEvent, tracked []V, splitTime float64, k int, search SearchFunc, apply EdgeApplyFunc) (map[V][]Snapshot, error) {
	return dynamic.ReplayWithEdges(context.Background(), g, checkins, edges, tracked, splitTime, k, search, apply)
}

// ReplayWithEdgesCtx is ReplayWithEdges with cancellation (see ReplayCtx).
func ReplayWithEdgesCtx(ctx context.Context, g *Graph, checkins []Checkin, edges []EdgeEvent, tracked []V, splitTime float64, k int, search SearchFunc, apply EdgeApplyFunc) (map[V][]Snapshot, error) {
	return dynamic.ReplayWithEdges(ctx, g, checkins, edges, tracked, splitTime, k, search, apply)
}

// ApplyEdgesVia adapts a Searcher's incremental topology updates
// (ApplyEdgeInsert/ApplyEdgeRemove) to an EdgeApplyFunc.
func ApplyEdgesVia(s *Searcher) EdgeApplyFunc { return dynamic.ApplyVia(s) }

// GenerateEdgeChurn produces a time-sorted synthetic friendship-event stream
// for g: triadic-closure insertions and random unfriendings, on the same
// fractional-day clock as GenerateCheckins.
func GenerateEdgeChurn(g *Graph, events int, seed int64) []EdgeEvent {
	cfg := gen.DefaultEdgeChurnConfig()
	cfg.Events = events
	return gen.EdgeChurn(g, cfg, seed)
}

// Decay computes CJS/CAO decay curves over the time gaps etas (days).
func Decay(timelines map[V][]Snapshot, etas []float64) []DecayPoint {
	return dynamic.Decay(timelines, etas)
}

// Quality metrics (Section 5 measures).

// CommunityRadius returns the MCC radius of the members' locations.
func CommunityRadius(g *Graph, members []V) float64 { return metrics.Radius(g, members) }

// CommunityDistPr returns the average pairwise distance between members.
func CommunityDistPr(g *Graph, members []V, seed int64) float64 {
	return metrics.DistPr(g, members, seed)
}

// CJS is the community Jaccard similarity (Equation 9).
func CJS(a, b []V) float64 { return metrics.CJS(a, b) }

// CAO is the community area overlap of two MCCs (Equation 10).
func CAO(a, b Circle) float64 { return metrics.CAO(a, b) }

// AvgInternalDegree returns the mean degree of members within the subgraph
// they induce.
func AvgInternalDegree(g *Graph, members []V) float64 {
	return community.AvgInternalDegree(g, members)
}

// CommunityDiameter returns the maximum pairwise distance between members —
// the objective of the minimum-diameter SAC variants (Searcher.MinDiam2Approx
// and Searcher.MinDiamLens).
func CommunityDiameter(g *Graph, members []V) float64 {
	return core.DiameterOf(g, members)
}
