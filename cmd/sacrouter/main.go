// Command sacrouter fronts a sharded sacsearch topology with the same /v1
// API a single sacserver speaks — clients need no changes and no knowledge
// of the partition.
//
//	sacrouter -shard-map cut/shardmap.bin \
//	  -shards "http://localhost:8081|http://localhost:8083,http://localhost:8082" \
//	  -addr :8080
//
// -shards lists one endpoint group per shard id, comma-separated; within a
// group, '|' separates the shard's leader (first) from its read replicas.
// At boot the router verifies every shard is reachable and serving the same
// shard-map artifact (by checksum) before listening; /v1/ready re-checks on
// demand.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"sacsearch/internal/debugserve"
	"sacsearch/internal/router"
	"sacsearch/internal/shard"
	"sacsearch/internal/telemetry"
	"sacsearch/internal/version"
)

func main() {
	var (
		mapPath   = flag.String("shard-map", "", "shard-map artifact written by sacshard (required)")
		shardsArg = flag.String("shards", "", `per-shard endpoint groups: "leader0|replica0a,leader1" (required)`)
		addr      = flag.String("addr", ":8080", "listen address")
		qTimeout  = flag.Duration("query-timeout", 15*time.Second, "per-request deadline across all shard legs")
		maxBody   = flag.Int64("max-body", 1<<20, "maximum POST body size in bytes")
		bootWait  = flag.Duration("boot-wait", 30*time.Second, "how long to wait for all shards to come up at boot (0 = don't wait)")
		grace     = flag.Duration("grace", 20*time.Second, "shutdown drain period for in-flight requests")
		queryPar  = flag.Int("query-parallelism", 0, "intra-query parallelism budget for local assembly runs, scaled down by in-flight load (0 = serial)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (off when empty; keep it firewalled)")
		metrics   = flag.Bool("metrics", true, "register internal instruments and serve Prometheus text format on /metrics")
		slowQuery = flag.Duration("slow-query", time.Second, "log requests slower than this with their span tree (0 disables)")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)
	var reg *telemetry.Registry
	if *metrics {
		reg = telemetry.NewRegistry()
	}
	debugserve.Serve(*pprofAddr, reg, logger)
	bi := version.Get()
	logger.Info("sacrouter starting", "version", bi.Version, "commit", bi.Commit, "go", bi.Go)

	if *mapPath == "" || *shardsArg == "" {
		log.Fatal("sacrouter: -shard-map and -shards are required")
	}
	f, err := os.Open(*mapPath)
	if err != nil {
		log.Fatalf("sacrouter: %v", err)
	}
	m, err := shard.ReadMap(f)
	f.Close()
	if err != nil {
		log.Fatalf("sacrouter: reading %s: %v", *mapPath, err)
	}

	groups := parseShards(*shardsArg)
	rt, err := router.New(router.Config{
		Map:                m,
		Shards:             groups,
		QueryTimeout:       *qTimeout,
		MaxBodyBytes:       *maxBody,
		QueryParallelism:   *queryPar,
		Logger:             logger,
		Metrics:            reg,
		ServeMetrics:       *metrics,
		SlowQueryThreshold: *slowQuery,
	})
	if err != nil {
		log.Fatalf("sacrouter: %v", err)
	}

	if *bootWait > 0 {
		if err := waitTopology(rt, *bootWait); err != nil {
			log.Fatalf("sacrouter: %v", err)
		}
		logger.Info("all shards up", "shards", m.Shards, "mapChecksum", fmt.Sprintf("%08x", m.Checksum()))
	}

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           rt,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *qTimeout + 15*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("sacrouter: routing %d shards (%d vertices, %d edges at cut) on %s\n",
		m.Shards, m.N, m.Edges, *addr)

	select {
	case err := <-errc:
		log.Fatalf("sacrouter: %v", err)
	case <-ctx.Done():
		stop()
		logger.Info("signal received, draining", "grace", *grace)
		// Close standing-query streams (flushed deltas + terminal bye) so
		// the open SSE responses finish and Shutdown's drain can complete.
		rt.DrainSubscriptions()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("shutdown failed", "err", err)
		}
	}
}

// parseShards splits the -shards syntax: commas separate shard groups
// (indexed by shard id), '|' separates endpoints within a group.
func parseShards(arg string) [][]string {
	var groups [][]string
	for _, group := range strings.Split(arg, ",") {
		var urls []string
		for _, u := range strings.Split(group, "|") {
			if u = strings.TrimSpace(u); u != "" {
				urls = append(urls, u)
			}
		}
		groups = append(groups, urls)
	}
	return groups
}

// waitTopology polls CheckTopology until every shard is reachable with the
// router's map, so a topology booted in parallel (CI, systemd) converges
// without start-order choreography.
func waitTopology(rt *router.Router, wait time.Duration) error {
	deadline := time.Now().Add(wait)
	var lastErr error
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		lastErr = rt.CheckTopology(ctx)
		cancel()
		if lastErr == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("shards not ready after %v: %w", wait, lastErr)
		}
		time.Sleep(250 * time.Millisecond)
	}
}
