package gen

import (
	"math"
	"sort"
	"testing"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

func TestPowerLawGraphSize(t *testing.T) {
	b := PowerLawGraph(5000, 25000, 1)
	g := b.Build()
	if g.NumVertices() != 5000 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	m := g.NumEdges()
	if m < 20000 || m > 30000 {
		t.Fatalf("m = %d, want ≈25000", m)
	}
}

func TestPowerLawGraphConnected(t *testing.T) {
	g := PowerLawGraph(2000, 8000, 2).Build()
	_, count := graph.ConnectedComponents(g)
	if count != 1 {
		t.Fatalf("components = %d, want 1 (preferential attachment is connected)", count)
	}
}

func TestPowerLawDegreeSkew(t *testing.T) {
	g := PowerLawGraph(10000, 50000, 3).Build()
	degs := make([]int, g.NumVertices())
	for v := range degs {
		degs[v] = g.Degree(graph.V(v))
	}
	sort.Sort(sort.Reverse(sort.IntSlice(degs)))
	// Heavy tail: the top vertex should dwarf the median.
	median := degs[len(degs)/2]
	if degs[0] < 5*median {
		t.Fatalf("max degree %d vs median %d: no heavy tail", degs[0], median)
	}
	// Skew: top 1%% of vertices should hold a disproportionate share.
	top := 0
	for _, d := range degs[:len(degs)/100] {
		top += d
	}
	total := 0
	for _, d := range degs {
		total += d
	}
	if float64(top) < 0.05*float64(total) {
		t.Fatalf("top 1%% holds only %d of %d endpoints", top, total)
	}
}

func TestPowerLawGraphDeterministic(t *testing.T) {
	a := PowerLawGraph(500, 2000, 7).Build()
	b := PowerLawGraph(500, 2000, 7).Build()
	if a.NumEdges() != b.NumEdges() {
		t.Fatal("not deterministic")
	}
	for v := 0; v < a.NumVertices(); v++ {
		na, nb := a.Neighbors(graph.V(v)), b.Neighbors(graph.V(v))
		if len(na) != len(nb) {
			t.Fatalf("vertex %d degree differs", v)
		}
	}
}

func TestPowerLawTinyInputs(t *testing.T) {
	if g := PowerLawGraph(0, 0, 1).Build(); g.NumVertices() != 0 {
		t.Fatal("n=0 broken")
	}
	if g := PowerLawGraph(1, 5, 1).Build(); g.NumEdges() != 0 {
		t.Fatal("n=1 should have no edges")
	}
	if g := PowerLawGraph(2, 5, 1).Build(); g.NumEdges() != 1 {
		t.Fatalf("n=2 edges = %d", g.NumEdges())
	}
}

func TestRMATGraph(t *testing.T) {
	b := RMATGraph(10, 8000, 0.45, 0.15, 0.15, 5)
	g := b.Build()
	if g.NumVertices() != 1024 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	if g.NumEdges() < 4000 {
		t.Fatalf("m = %d, too many dropped samples", g.NumEdges())
	}
	// Hub structure: R-MAT with a=0.45 concentrates edges on low ids.
	lowDeg, highDeg := 0, 0
	for v := 0; v < 512; v++ {
		lowDeg += g.Degree(graph.V(v))
		highDeg += g.Degree(graph.V(v + 512))
	}
	if lowDeg <= highDeg {
		t.Fatalf("R-MAT skew missing: low-half %d vs high-half %d", lowDeg, highDeg)
	}
}

func TestPlaceSpatial(t *testing.T) {
	b := PowerLawGraph(3000, 12000, 11)
	PlaceSpatial(b, DefaultDistMean, DefaultDistSigma, 12)
	g := b.Build()
	// Everyone inside the unit square.
	for v := 0; v < g.NumVertices(); v++ {
		p := g.Loc(graph.V(v))
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("vertex %d at %v outside unit square", v, p)
		}
	}
	// Spatial homophily: mean distance between adjacent vertices must be
	// far below the ~0.52 expectation of independent uniform points.
	sum, cnt := 0.0, 0
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(graph.V(v)) {
			if graph.V(v) < u {
				sum += g.Dist(graph.V(v), u)
				cnt++
			}
		}
	}
	mean := sum / float64(cnt)
	if mean > 0.35 {
		t.Fatalf("mean neighbor distance %v: no spatial correlation", mean)
	}
	if mean < 0.01 {
		t.Fatalf("mean neighbor distance %v suspiciously tight", mean)
	}
}

func TestPlaceSpatialCoversComponents(t *testing.T) {
	// Two disconnected cliques: both must receive locations.
	b := graph.NewBuilder(8)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.V(i), graph.V(j))
			b.AddEdge(graph.V(i+4), graph.V(j+4))
		}
	}
	PlaceSpatial(b, 0.09, 0.16, 3)
	for v := 0; v < 8; v++ {
		if !b.HasLoc(graph.V(v)) {
			t.Fatalf("vertex %d unplaced", v)
		}
	}
}

func TestCheckins(t *testing.T) {
	b := PowerLawGraph(200, 800, 21)
	PlaceSpatial(b, DefaultDistMean, DefaultDistSigma, 22)
	g := b.Build()
	cfg := DefaultCheckinConfig()
	cs := Checkins(g, cfg, 23)
	if len(cs) < 200 {
		t.Fatalf("only %d check-ins", len(cs))
	}
	// Sorted by time; all inside the square and the time window.
	for i, c := range cs {
		if i > 0 && cs[i-1].Time > c.Time {
			t.Fatal("check-ins not time sorted")
		}
		if c.Time < 0 || c.Time > cfg.Days {
			t.Fatalf("time %v out of range", c.Time)
		}
		if c.Loc.X < 0 || c.Loc.X > 1 || c.Loc.Y < 0 || c.Loc.Y > 1 {
			t.Fatalf("check-in outside square: %v", c.Loc)
		}
	}
	// Every user checked in at least once.
	seen := make([]bool, g.NumVertices())
	for _, c := range cs {
		seen[c.User] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("user %d has no check-ins", v)
		}
	}
}

func TestTravelDistance(t *testing.T) {
	cs := []Checkin{
		{User: 0, Time: 1, Loc: pt(0, 0)},
		{User: 0, Time: 2, Loc: pt(0.3, 0.4)}, // +0.5
		{User: 0, Time: 3, Loc: pt(0.3, 0.4)}, // +0
		{User: 1, Time: 1, Loc: pt(1, 1)},     // single check-in: 0
	}
	d := TravelDistance(cs, 2)
	if math.Abs(d[0]-0.5) > 1e-12 {
		t.Fatalf("d[0] = %v", d[0])
	}
	if d[1] != 0 {
		t.Fatalf("d[1] = %v", d[1])
	}
}

func TestSelectMovers(t *testing.T) {
	// Star graph: center has degree 5, leaves degree 1.
	b := graph.NewBuilder(6)
	for i := 1; i < 6; i++ {
		b.AddEdge(0, graph.V(i))
	}
	g := b.Build()
	cs := []Checkin{
		{User: 1, Time: 0, Loc: pt(0, 0)},
		{User: 1, Time: 1, Loc: pt(1, 1)}, // longest travel but degree 1
		{User: 0, Time: 0, Loc: pt(0, 0)},
		{User: 0, Time: 1, Loc: pt(0.1, 0)},
	}
	movers := SelectMovers(g, cs, 3, 10)
	if len(movers) != 1 || movers[0] != 0 {
		t.Fatalf("movers = %v, want just the center", movers)
	}
	// Lower friend bar admits the leaf, ranked first by distance.
	movers = SelectMovers(g, cs, 1, 10)
	if len(movers) != 6 || movers[0] != 1 {
		t.Fatalf("movers = %v, want leaf 1 first of 6", movers)
	}
	// Count cap.
	movers = SelectMovers(g, cs, 1, 2)
	if len(movers) != 2 {
		t.Fatalf("cap broken: %v", movers)
	}
}

func pt(x, y float64) geom.Point { return geom.Point{X: x, Y: y} }

func TestEdgeChurn(t *testing.T) {
	b := SocialGraph(400, 2400, 5)
	PlaceSpatial(b, DefaultDistMean, DefaultDistSigma, 6)
	g := b.Build()
	cfg := DefaultEdgeChurnConfig()
	cfg.Events = 300
	events := EdgeChurn(g, cfg, 9)
	if len(events) != cfg.Events {
		t.Fatalf("events = %d, want %d", len(events), cfg.Events)
	}
	inserts := 0
	for i, e := range events {
		if i > 0 && e.Time < events[i-1].Time {
			t.Fatalf("events not time sorted at %d", i)
		}
		if e.Time < 0 || e.Time > cfg.Days {
			t.Fatalf("event %d outside the stream window: %v", i, e.Time)
		}
		if e.U == e.V {
			t.Fatalf("event %d is a self-loop", i)
		}
		if e.Insert {
			inserts++
			if g.HasEdge(e.U, e.V) {
				t.Fatalf("insert event %d proposes an existing edge (%d,%d)", i, e.U, e.V)
			}
		} else if !g.HasEdge(e.U, e.V) {
			t.Fatalf("delete event %d references a missing edge (%d,%d)", i, e.U, e.V)
		}
	}
	frac := float64(inserts) / float64(len(events))
	if frac < cfg.InsertFrac-0.15 || frac > cfg.InsertFrac+0.15 {
		t.Fatalf("insert fraction %.2f far from configured %.2f", frac, cfg.InsertFrac)
	}
	// Replayable: every event applies cleanly or no-ops against a live graph.
	for _, e := range events {
		if e.Insert {
			g.AddEdge(e.U, e.V)
		} else {
			g.RemoveEdge(e.U, e.V)
		}
	}
}
