// Package kcore implements the k-core substrate (Definition 1 of the paper):
// the linear-time core decomposition of Batagelj and Zaversnik [3], extraction
// of the connected k-ĉore containing a query vertex, and — the workhorse of
// every SAC search algorithm — a reusable Peeler that answers "does G[S]
// contain a k-ĉore with q?" for arbitrary candidate sets S without
// allocating.
package kcore

import (
	"sacsearch/internal/graph"
)

// Decompose returns the core number of every vertex using the O(m)
// bucket-queue algorithm of Batagelj–Zaversnik.
func Decompose(g *graph.Graph) []int32 {
	n := g.NumVertices()
	core := make([]int32, n)
	if n == 0 {
		return core
	}
	deg := make([]int32, n)
	maxDeg := int32(0)
	for v := 0; v < n; v++ {
		d := int32(g.Degree(graph.V(v)))
		deg[v] = d
		if d > maxDeg {
			maxDeg = d
		}
	}
	// Bucket sort vertices by degree.
	bin := make([]int32, maxDeg+2)
	for v := 0; v < n; v++ {
		bin[deg[v]]++
	}
	start := int32(0)
	for d := int32(0); d <= maxDeg; d++ {
		cnt := bin[d]
		bin[d] = start
		start += cnt
	}
	pos := make([]int32, n)  // position of vertex in vert
	vert := make([]int32, n) // vertices sorted by current degree
	for v := 0; v < n; v++ {
		pos[v] = bin[deg[v]]
		vert[pos[v]] = int32(v)
		bin[deg[v]]++
	}
	for d := maxDeg; d > 0; d-- {
		bin[d] = bin[d-1]
	}
	bin[0] = 0

	for i := 0; i < n; i++ {
		v := vert[i]
		core[v] = deg[v]
		for _, u := range g.Neighbors(v) {
			if deg[u] <= deg[v] {
				continue
			}
			// Move u one bucket down: swap it with the first vertex of its
			// current bucket, then shrink the bucket boundary.
			du := deg[u]
			pu := pos[u]
			pw := bin[du]
			w := vert[pw]
			if u != w {
				pos[u] = pw
				vert[pu] = w
				pos[w] = pu
				vert[pw] = u
			}
			bin[du]++
			deg[u]--
		}
	}
	return core
}

// MaxCore returns the largest core number in the decomposition.
func MaxCore(core []int32) int32 {
	var best int32
	for _, c := range core {
		if c > best {
			best = c
		}
	}
	return best
}

// CommunityOf returns the vertices of the connected k-ĉore containing q —
// the community the Global baseline [29] returns — or nil when q's core
// number is below k. core must be the output of Decompose for g.
func CommunityOf(g *graph.Graph, core []int32, q graph.V, k int) []graph.V {
	if int(core[q]) < k {
		return nil
	}
	visited := graph.NewMarker(g.NumVertices())
	return graph.BFSFrom(g, q, func(v graph.V) bool { return int(core[v]) >= k }, visited, nil)
}

// Peeler answers restricted feasibility queries: given a candidate vertex
// set S and a query vertex q, find the connected subgraph of G[S] that
// contains q and has minimum degree ≥ k (if any). A Peeler holds scratch
// buffers sized to the graph so repeated calls do not allocate; it is not
// safe for concurrent use.
type Peeler struct {
	g       *graph.Graph
	inS     *graph.Marker // members of the candidate set still alive
	deg     []int32       // degree within the surviving candidate set
	queue   []graph.V     // peeling queue
	visited *graph.Marker // BFS visited set
	comp    []graph.V     // BFS output buffer
}

// NewPeeler creates a Peeler for g.
func NewPeeler(g *graph.Graph) *Peeler {
	n := g.NumVertices()
	return &Peeler{
		g:       g,
		inS:     graph.NewMarker(n),
		deg:     make([]int32, n),
		queue:   make([]graph.V, 0, 1024),
		visited: graph.NewMarker(n),
		comp:    make([]graph.V, 0, 1024),
	}
}

// SetGraph rebinds the Peeler to another graph with the same vertex count —
// the snapshot-serving path hands pooled workers a freshly published clone,
// and vertex counts never change, so the scratch buffers carry over. A
// different vertex count panics: that is a different graph, not a snapshot.
func (p *Peeler) SetGraph(g *graph.Graph) {
	if g.NumVertices() != p.inS.Len() {
		panic("kcore: SetGraph with a different vertex count")
	}
	p.g = g
}

// KCoreWithin returns the vertices of the connected k-core of G[S]
// containing q, or nil when none exists. The returned slice is owned by the
// Peeler and valid until the next call; callers that retain it must copy.
//
// Cost is O(Σ_{v∈S} deg_G(v)): linear in the candidate set's total degree.
func (p *Peeler) KCoreWithin(S []graph.V, q graph.V, k int) []graph.V {
	g := p.g
	p.inS.Reset()
	qSeen := false
	for _, v := range S {
		p.inS.Mark(v)
		if v == q {
			qSeen = true
		}
	}
	if !qSeen {
		return nil
	}
	// Degrees within S.
	p.queue = p.queue[:0]
	for _, v := range S {
		d := int32(0)
		for _, u := range g.Neighbors(v) {
			if p.inS.Has(u) {
				d++
			}
		}
		p.deg[v] = d
		if d < int32(k) {
			p.queue = append(p.queue, v)
		}
	}
	// Peel: delete vertices whose in-S degree dropped below k.
	for head := 0; head < len(p.queue); head++ {
		v := p.queue[head]
		if !p.inS.Has(v) {
			continue
		}
		p.inS.Unmark(v)
		if v == q {
			return nil // the query vertex got peeled: no feasible community
		}
		for _, u := range g.Neighbors(v) {
			if !p.inS.Has(u) {
				continue
			}
			p.deg[u]--
			if p.deg[u] == int32(k)-1 {
				p.queue = append(p.queue, u)
			}
		}
	}
	if !p.inS.Has(q) {
		return nil
	}
	// Connected component of q within the survivors. Because every survivor
	// has ≥ k surviving neighbors and those neighbors are in the same
	// component, the component itself has minimum degree ≥ k.
	p.comp = graph.BFSFrom(g, q, p.inS.Has, p.visited, p.comp[:0])
	return p.comp
}

// Feasible reports whether G[S] contains a k-ĉore with q, without
// materializing it beyond the Peeler's scratch space.
func (p *Peeler) Feasible(S []graph.V, q graph.V, k int) bool {
	return p.KCoreWithin(S, q, k) != nil
}
