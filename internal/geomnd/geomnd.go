// Package geomnd implements the d-dimensional minimum enclosing ball (MEB),
// the geometric kernel behind the paper's Section 3 remark that "our methods
// can be easily applied to multi-dimensional space": every MCC computation
// in the SAC algorithms generalizes to the MEB, and Lemma 1's fixed-vertex
// structure generalizes from ≤ 3 boundary points to ≤ d+1.
//
// The implementation is Welzl's move-to-front algorithm (the same family as
// internal/geom's planar MCC and Megiddo [24] cited by the paper), with the
// boundary-ball primitive solved by Gaussian elimination over the support
// set's affine hull. Expected linear time in the number of points for fixed
// dimension.
package geomnd

import (
	"fmt"
	"math"
)

// Eps is the geometric containment tolerance, matching internal/geom.
const Eps = 1e-9

// Point is a location in R^d.
type Point []float64

// Dist returns the Euclidean distance to q. Panics if dimensions differ.
func (p Point) Dist(q Point) float64 {
	return math.Sqrt(p.Dist2(q))
}

// Dist2 returns the squared Euclidean distance to q.
func (p Point) Dist2(q Point) float64 {
	if len(p) != len(q) {
		panic(fmt.Sprintf("geomnd: dimension mismatch %d vs %d", len(p), len(q)))
	}
	var s float64
	for i := range p {
		d := p[i] - q[i]
		s += d * d
	}
	return s
}

// Ball is a closed d-dimensional ball.
type Ball struct {
	C Point
	R float64
}

// Contains reports whether p lies in the ball (with tolerance).
func (b Ball) Contains(p Point) bool {
	if b.C == nil {
		return false
	}
	return b.C.Dist(p) <= b.R+Eps
}

// ballFromSupport returns the smallest ball with every support point on its
// boundary: the circumscribed ball of the support set within its affine
// hull. ok is false when the support points are affinely dependent (the
// system is singular), which Welzl's algorithm never feeds it for points in
// general position.
func ballFromSupport(support []Point) (Ball, bool) {
	switch len(support) {
	case 0:
		return Ball{R: -1}, true // empty ball: contains nothing
	case 1:
		c := make(Point, len(support[0]))
		copy(c, support[0])
		return Ball{C: c, R: 0}, true
	}
	p0 := support[0]
	k := len(support) - 1
	d := len(p0)

	// Solve for c = p0 + Σ λ_j u_j with u_j = support[j+1] - p0:
	// boundary conditions |c-p0|² = |c-p_i|² reduce to
	// Σ_j (2 u_i · u_j) λ_j = |u_i|².
	a := make([][]float64, k) // augmented matrix k × (k+1)
	u := make([][]float64, k)
	for i := 0; i < k; i++ {
		u[i] = make([]float64, d)
		for t := 0; t < d; t++ {
			u[i][t] = support[i+1][t] - p0[t]
		}
	}
	for i := 0; i < k; i++ {
		a[i] = make([]float64, k+1)
		for j := 0; j < k; j++ {
			var dot float64
			for t := 0; t < d; t++ {
				dot += u[i][t] * u[j][t]
			}
			a[i][j] = 2 * dot
		}
		var norm2 float64
		for t := 0; t < d; t++ {
			norm2 += u[i][t] * u[i][t]
		}
		a[i][k] = norm2
	}

	lambda, ok := solve(a)
	if !ok {
		return Ball{}, false
	}
	c := make(Point, d)
	copy(c, p0)
	for j := 0; j < k; j++ {
		for t := 0; t < d; t++ {
			c[t] += lambda[j] * u[j][t]
		}
	}
	return Ball{C: c, R: c.Dist(p0)}, true
}

// solve performs Gaussian elimination with partial pivoting on the k×(k+1)
// augmented matrix. ok is false when the system is (numerically) singular.
func solve(a [][]float64) ([]float64, bool) {
	k := len(a)
	for col := 0; col < k; col++ {
		// Pivot.
		pivot := col
		for r := col + 1; r < k; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[pivot][col]) {
				pivot = r
			}
		}
		if math.Abs(a[pivot][col]) < 1e-12 {
			return nil, false
		}
		a[col], a[pivot] = a[pivot], a[col]
		// Eliminate below.
		for r := col + 1; r < k; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c <= k; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	x := make([]float64, k)
	for r := k - 1; r >= 0; r-- {
		s := a[r][k]
		for c := r + 1; c < k; c++ {
			s -= a[r][c] * x[c]
		}
		x[r] = s / a[r][r]
	}
	return x, true
}

// MEB returns the minimum enclosing ball of the points (all of one
// dimension d). It runs Welzl's move-to-front algorithm; the input order is
// perturbed deterministically, so the result is deterministic. An empty
// input yields the empty ball {R: -1}.
func MEB(pts []Point) Ball {
	if len(pts) == 0 {
		return Ball{R: -1}
	}
	d := len(pts[0])
	for _, p := range pts {
		if len(p) != d {
			panic(fmt.Sprintf("geomnd: mixed dimensions %d and %d", d, len(p)))
		}
	}
	// Deterministic shuffle (xorshift) for the expected-linear-time bound
	// without pulling in math/rand.
	work := make([]Point, len(pts))
	copy(work, pts)
	state := uint64(0x9E3779B97F4A7C15)
	for i := len(work) - 1; i > 0; i-- {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		j := int(state % uint64(i+1))
		work[i], work[j] = work[j], work[i]
	}
	support := make([]Point, 0, d+1)
	return welzl(work, support, d)
}

// welzl is the recursive move-to-front step: the MEB of pts with support on
// the boundary.
func welzl(pts []Point, support []Point, d int) Ball {
	if len(pts) == 0 || len(support) == d+1 {
		b, ok := ballFromSupport(support)
		if ok {
			return b
		}
		// Affinely dependent support (possible with duplicate or degenerate
		// inputs): drop the earliest support point and retry — the ball of
		// the reduced support still covers the dependent point.
		return welzl(pts, support[1:], d)
	}
	p := pts[0]
	b := welzl(pts[1:], support, d)
	if b.R >= 0 && b.Contains(p) {
		return b
	}
	return welzl(pts[1:], append(support, p), d)
}
