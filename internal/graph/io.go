package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"sacsearch/internal/geom"
)

// The text formats mirror the SNAP-style files the paper's datasets ship in:
//
//	edges file:     one "u v" pair per line (undirected, whitespace separated)
//	locations file: one "v x y" triple per line
//
// Lines starting with '#' are comments. Vertex ids must be integers in
// [0, n).

// WriteEdges writes the edge list of g in "u v" form, each undirected edge
// once with u < v.
func WriteEdges(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# sacsearch edge list: n=%d m=%d\n", g.NumVertices(), g.NumEdges())
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(V(u)) {
			if V(u) < v {
				fmt.Fprintf(bw, "%d %d\n", u, v)
			}
		}
	}
	return bw.Flush()
}

// WriteLocations writes the locations of g in "v x y" form.
func WriteLocations(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# sacsearch locations: n=%d\n", g.NumVertices())
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		p := g.Loc(V(v))
		fmt.Fprintf(bw, "%d %.9f %.9f\n", v, p.X, p.Y)
	}
	return bw.Flush()
}

// ReadEdges parses an edge list with n vertices into a Builder. The returned
// builder has no locations set; combine with ReadLocationsInto.
func ReadEdges(r io.Reader, n int) (*Builder, error) {
	b := NewBuilder(n)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 2 {
			return nil, fmt.Errorf("graph: edges line %d: want 2 fields, got %q", line, text)
		}
		u, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: edges line %d: %v", line, err)
		}
		v, err := strconv.ParseInt(fields[1], 10, 32)
		if err != nil {
			return nil, fmt.Errorf("graph: edges line %d: %v", line, err)
		}
		if u < 0 || u >= int64(n) || v < 0 || v >= int64(n) {
			return nil, fmt.Errorf("graph: edges line %d: vertex out of range [0,%d)", line, n)
		}
		b.AddEdge(V(u), V(v))
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("graph: reading edges: %v", err)
	}
	return b, nil
}

// ReadLocationsInto parses a locations file into the builder.
func ReadLocationsInto(r io.Reader, b *Builder) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	line := 0
	n := b.NumVertices()
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		if len(fields) < 3 {
			return fmt.Errorf("graph: locations line %d: want 3 fields, got %q", line, text)
		}
		v, err := strconv.ParseInt(fields[0], 10, 32)
		if err != nil {
			return fmt.Errorf("graph: locations line %d: %v", line, err)
		}
		if v < 0 || v >= int64(n) {
			return fmt.Errorf("graph: locations line %d: vertex out of range [0,%d)", line, n)
		}
		x, err := strconv.ParseFloat(fields[1], 64)
		if err != nil {
			return fmt.Errorf("graph: locations line %d: %v", line, err)
		}
		y, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			return fmt.Errorf("graph: locations line %d: %v", line, err)
		}
		b.SetLoc(V(v), geom.Point{X: x, Y: y})
	}
	if err := sc.Err(); err != nil {
		return fmt.Errorf("graph: reading locations: %v", err)
	}
	return nil
}

// Read loads a graph from an edges reader and a locations reader.
func Read(edges, locations io.Reader, n int) (*Graph, error) {
	b, err := ReadEdges(edges, n)
	if err != nil {
		return nil, err
	}
	if err := ReadLocationsInto(locations, b); err != nil {
		return nil, err
	}
	return b.Build(), nil
}
