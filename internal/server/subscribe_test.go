package server

import (
	"bufio"
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"sacsearch/client"
	"sacsearch/internal/telemetry"
)

// sseFrame is one parsed frame off a raw /v1/subscribe stream.
type sseFrame struct {
	id    uint64
	event string
	data  string
}

// readFrames consumes SSE frames off r until n non-comment frames arrived
// or the deadline passes. r must be the stream's single bufio.Reader —
// constructing a fresh buffered reader per call would lose read-ahead bytes.
func readFrames(t *testing.T, r *bufio.Reader, n int, deadline time.Duration) []sseFrame {
	t.Helper()
	var out []sseFrame
	done := make(chan struct{})
	go func() {
		defer close(done)
		var cur sseFrame
		hasField := false
		for {
			line, err := r.ReadString('\n')
			if err != nil {
				return
			}
			line = strings.TrimRight(line, "\n")
			switch {
			case line == "":
				if hasField {
					out = append(out, cur)
					if len(out) == n {
						return
					}
				}
				cur, hasField = sseFrame{}, false
			case strings.HasPrefix(line, ":"):
				// heartbeat comment
			case strings.HasPrefix(line, "id: "):
				cur.id, _ = strconv.ParseUint(line[4:], 10, 64)
				hasField = true
			case strings.HasPrefix(line, "event: "):
				cur.event = line[7:]
				hasField = true
			case strings.HasPrefix(line, "data: "):
				cur.data = line[6:]
				hasField = true
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(deadline):
		t.Fatalf("timed out waiting for %d SSE frames (got %d)", n, len(out))
	}
	return out
}

// openStream issues a raw GET /v1/subscribe and returns the live response
// plus the stream's single buffered reader.
func openStream(t *testing.T, ctx context.Context, url string, lastEventID string) (*http.Response, *bufio.Reader) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, "GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	if lastEventID != "" {
		req.Header.Set("Last-Event-ID", lastEventID)
	}
	resp, err := http.DefaultTransport.RoundTrip(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp, bufio.NewReader(resp.Body)
}

func TestSubscribeStreamAndResume(t *testing.T) {
	ts, _ := newTestServer(t)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	url := ts.URL + "/v1/subscribe?q=0&k=3&algo=appfast&id=res1"
	resp, br := openStream(t, ctx, url, "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("subscribe: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	frames := readFrames(t, br, 1, 5*time.Second)
	if frames[0].event != "init" || frames[0].id != 1 {
		t.Fatalf("first frame = %+v, want init id 1", frames[0])
	}
	if !strings.Contains(frames[0].data, `"members"`) {
		t.Fatalf("init payload missing members: %s", frames[0].data)
	}

	// Moving the query vertex itself forcibly changes the covering circle
	// (q is in every answer), so a delta must arrive on the open stream.
	if r, _ := postJSON(t, ts.URL+"/v1/checkin", map[string]any{"v": 0, "x": 0.9, "y": 0.9}); r.StatusCode != 200 {
		t.Fatalf("checkin: %d", r.StatusCode)
	}
	frames = readFrames(t, br, 1, 5*time.Second)
	if frames[0].event != "delta" || frames[0].id != 2 {
		t.Fatalf("second frame = %+v, want delta id 2", frames[0])
	}
	resp.Body.Close()

	// Resume after the init: the delta replays from the ring, no init resent.
	resp2, br2 := openStream(t, context.Background(), url, "1")
	defer resp2.Body.Close()
	frames = readFrames(t, br2, 1, 5*time.Second)
	if frames[0].event != "delta" || frames[0].id != 2 {
		t.Fatalf("resumed frame = %+v, want the seq-2 delta", frames[0])
	}

	// Resume from the latest id: silence (no replay), the stream just waits.
	resp3, _ := openStream(t, context.Background(), url, "2")
	defer resp3.Body.Close()
}

func TestSubscribeTypedClient(t *testing.T) {
	ts, _ := newTestServer(t)
	c, err := client.New(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sub, err := c.Subscribe(ctx, client.Query{Q: 7, K: 3, Algo: "appinc"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer sub.Close()
	select {
	case ev := <-sub.Events:
		if ev.Kind != "init" || ev.Q != 7 || ev.K != 3 || ev.Algo != "appinc" {
			t.Fatalf("unexpected init: %+v", ev)
		}
		if len(ev.Members) == 0 {
			t.Fatal("init carried no members for a clique vertex")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no init event")
	}
}

func TestSubscribeErrorEnvelopes(t *testing.T) {
	ts, _ := newTestServer(t)

	// Unknown id + Last-Event-ID: the resume state is gone.
	req, _ := http.NewRequest("GET", ts.URL+"/v1/subscribe?q=0&k=3&id=ghost", nil)
	req.Header.Set("Last-Event-ID", "5")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(body), CodeUnknownSubscription) {
		t.Fatalf("resume of unknown id: %d %s", resp.StatusCode, body)
	}

	// Missing k: the same invalid_query envelope a POST query would get.
	resp, err = http.Get(ts.URL + "/v1/subscribe?q=0")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "invalid_query") {
		t.Fatalf("missing k: %d %s", resp.StatusCode, body)
	}

	// Same id, different query: the id is bound.
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	live, lbr := openStream(t, ctx, ts.URL+"/v1/subscribe?q=0&k=3&algo=appfast&id=bound", "")
	defer live.Body.Close()
	readFrames(t, lbr, 1, 5*time.Second)
	resp, err = http.Get(ts.URL + "/v1/subscribe?q=0&k=4&algo=appfast&id=bound")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || !strings.Contains(string(body), "different query") {
		t.Fatalf("rebinding id: %d %s", resp.StatusCode, body)
	}
}

func TestSubscribeLimit(t *testing.T) {
	g := testGraph()
	srv := NewWithConfig("test", g, Config{MaxSubscriptions: 1})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	live, lbr := openStream(t, ctx, ts.URL+"/v1/subscribe?q=0&k=3&id=first", "")
	defer live.Body.Close()
	readFrames(t, lbr, 1, 5*time.Second)

	resp, err := http.Get(ts.URL + "/v1/subscribe?q=1&k=3&id=second")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests || !strings.Contains(string(body), CodeSubscriptionLimit) {
		t.Fatalf("over limit: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
}

func TestSubscribeDrainSendsBye(t *testing.T) {
	g := testGraph()
	srv := New("test", g)
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	resp, br := openStream(t, ctx, ts.URL+"/v1/subscribe?q=0&k=3&id=drainme", "")
	defer resp.Body.Close()
	readFrames(t, br, 1, 5*time.Second)

	done := make(chan []sseFrame, 1)
	go func() { done <- readFrames(t, br, 1, 5*time.Second) }()
	srv.DrainSubscriptions()
	select {
	case frames := <-done:
		if frames[0].event != "bye" || !strings.Contains(frames[0].data, "drain") {
			t.Fatalf("drain frame = %+v, want bye", frames[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no bye after drain")
	}
	// The stream must terminate, not hang.
	buf := make([]byte, 256)
	resp.Body.Read(buf)
	if _, err := resp.Body.Read(buf); err == nil {
		t.Log("stream still open after bye; second read should eventually EOF")
	}
}

// TestSubscribeGateOnMetrics pins the gate-effectiveness counter on the
// public /metrics endpoint: far-away movers (a disconnected cluster) must
// show up as sac_subscription_skipped_by_gate_total without a single extra
// evaluation.
func TestSubscribeGateOnMetrics(t *testing.T) {
	g := testGraph()
	reg := telemetry.NewRegistry()
	srv := NewWithConfig("test", g, Config{Metrics: reg, ServeMetrics: true})
	t.Cleanup(srv.Close)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	// Vertex 0's k-core component spans cliques 0..2 (bridged by 0-6 and
	// 0-12); cliques 3..5 are disconnected from it.
	resp, br := openStream(t, ctx, ts.URL+"/v1/subscribe?q=0&k=3&algo=appfast&id=gate", "")
	defer resp.Body.Close()
	readFrames(t, br, 1, 5*time.Second)

	evalsBefore := srv.Subscriptions().Hub().Evals().Value()
	for i := 0; i < 10; i++ {
		v := 30 + i%6 // clique 5: never in the watched closure
		if r, _ := postJSON(t, ts.URL+"/v1/checkin", map[string]any{
			"v": v, "x": 0.1 * float64(i), "y": 0.2,
		}); r.StatusCode != 200 {
			t.Fatalf("checkin: %d", r.StatusCode)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		text := string(body)
		if !strings.Contains(text, "sac_subscription_skipped_by_gate_total") {
			t.Fatalf("/metrics does not expose sac_subscription_skipped_by_gate_total:\n%s", text)
		}
		skipped := metricValue(t, text, "sac_subscription_skipped_by_gate_total")
		if skipped >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("skipped_by_gate never grew; /metrics:\n%s", text)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if got := srv.Subscriptions().Hub().Evals().Value(); got != evalsBefore {
		t.Errorf("far-away moves re-evaluated the standing query (%d -> %d evals)", evalsBefore, got)
	}
}

// metricValue extracts the value of an unlabeled counter/gauge sample from
// Prometheus text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(name)+1:]), 64)
			if err != nil {
				t.Fatalf("parse %s sample %q: %v", name, line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found", name)
	return 0
}
