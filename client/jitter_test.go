package client

import (
	"testing"
	"time"
)

// TestJitterStaysInBounds pins the jitter window: [d/2, 3d/2), never zero,
// never negative — a zero sleep would hot-loop the retry path.
func TestJitterStaysInBounds(t *testing.T) {
	const d = 100 * time.Millisecond
	for i := 0; i < 2000; i++ {
		got := jitter(d)
		if got < d/2 || got >= 3*d/2 {
			t.Fatalf("jitter(%v) = %v, outside [%v, %v)", d, got, d/2, 3*d/2)
		}
	}
}
