package replica

import (
	"net"
	"sync"
	"time"
)

// Fault scripts what one proxied connection does to the leader→follower
// byte stream. The zero value forwards faithfully.
type Fault struct {
	// CutAt severs the connection after forwarding exactly this many
	// leader→follower bytes (0 = never) — landing mid-frame at most offsets,
	// the truncation case.
	CutAt int64
	// FlipBitAt XORs bit 0 of the byte at this offset, counted from the
	// session start (0 = never): silent corruption the CRCs must catch.
	FlipBitAt int64
	// Delay adds latency before each forwarded chunk.
	Delay time.Duration
	// DropConnAfter severs the connection after this wall time (0 = never),
	// independent of byte counts — the flaky-network case.
	DropConnAfter time.Duration
}

// Proxy sits between a follower and a leader, applying a scripted Fault to
// each connection: drops, delays, mid-frame truncations and bit flips. The
// differential suite drives replication through it to prove that no
// injected fault can make a follower serve wrong state — only late state.
type Proxy struct {
	ln       net.Listener
	upstream string
	plan     func(session int) Fault

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	n      int
	closed bool
	done   chan struct{}
}

// NewProxy listens on a fresh localhost port and forwards each accepted
// connection to upstream, shaped by plan(sessionIndex). plan is called once
// per connection, in accept order.
func NewProxy(upstream string, plan func(session int) Fault) (*Proxy, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	if plan == nil {
		plan = func(int) Fault { return Fault{} }
	}
	p := &Proxy{ln: ln, upstream: upstream, plan: plan,
		conns: make(map[net.Conn]struct{}), done: make(chan struct{})}
	go p.acceptLoop()
	return p, nil
}

// Addr returns the address followers should dial instead of the leader.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Sessions returns how many connections the proxy has accepted so far.
func (p *Proxy) Sessions() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.n
}

// Close severs every proxied connection and stops accepting.
func (p *Proxy) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
	p.mu.Unlock()
	p.ln.Close()
	<-p.done
}

func (p *Proxy) acceptLoop() {
	defer close(p.done)
	var wg sync.WaitGroup
	defer wg.Wait()
	for {
		client, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			client.Close()
			return
		}
		fault := p.plan(p.n)
		p.n++
		p.conns[client] = struct{}{}
		p.mu.Unlock()
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.serve(client, fault)
			p.mu.Lock()
			delete(p.conns, client)
			p.mu.Unlock()
		}()
	}
}

func (p *Proxy) serve(client net.Conn, f Fault) {
	defer client.Close()
	up, err := net.DialTimeout("tcp", p.upstream, 5*time.Second)
	if err != nil {
		return
	}
	defer up.Close()
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.conns[up] = struct{}{}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.conns, up)
		p.mu.Unlock()
	}()

	kill := func() { client.Close(); up.Close() }
	if f.DropConnAfter > 0 {
		timer := time.AfterFunc(f.DropConnAfter, kill)
		defer timer.Stop()
	}
	done := make(chan struct{}, 2)
	// Follower→leader direction (handshakes) is forwarded faithfully; the
	// faults target the data-heavy leader→follower stream.
	go func() {
		copyPlain(up, client)
		kill()
		done <- struct{}{}
	}()
	go func() {
		copyFaulty(client, up, f, kill)
		kill()
		done <- struct{}{}
	}()
	<-done
	<-done
}

func copyPlain(dst, src net.Conn) {
	buf := make([]byte, 4096)
	for {
		n, err := src.Read(buf)
		if n > 0 {
			if _, werr := dst.Write(buf[:n]); werr != nil {
				return
			}
		}
		if err != nil {
			return
		}
	}
}

// copyFaulty forwards src→dst applying the scripted fault; kill severs both
// directions when a cut triggers.
func copyFaulty(dst, src net.Conn, f Fault, kill func()) {
	buf := make([]byte, 4096)
	var sent int64
	for {
		n, err := src.Read(buf)
		if n > 0 {
			chunk := buf[:n]
			if f.FlipBitAt > 0 && f.FlipBitAt >= sent && f.FlipBitAt < sent+int64(n) {
				chunk[f.FlipBitAt-sent] ^= 0x01
			}
			if f.CutAt > 0 && sent+int64(n) >= f.CutAt {
				// Forward the bytes up to the cut — likely mid-frame — then
				// sever abruptly.
				dst.Write(chunk[:f.CutAt-sent])
				kill()
				return
			}
			if f.Delay > 0 {
				time.Sleep(f.Delay)
			}
			if _, werr := dst.Write(chunk); werr != nil {
				return
			}
			sent += int64(n)
		}
		if err != nil {
			return
		}
	}
}
