package exp

import (
	"context"
	"io"
	"time"

	"sacsearch/internal/core"
	"sacsearch/internal/dataset"
	"sacsearch/internal/graph"
	"sacsearch/internal/metrics"
)

// Figure 12 — efficiency. Three panels per dataset: approximation
// algorithms versus k (a-e), exact algorithms versus k (f-j), and
// scalability versus the vertex percentage (k-o).

// kSweep is the x-axis of Figure 12(a-j) (Table 5).
var kSweep = []int{4, 7, 10, 13, 16}

// pctSweep is the x-axis of Figure 12(k-o) (Table 5).
var pctSweep = []int{20, 40, 60, 80, 100}

// Fig12Row is one (dataset, k, algorithm) timing.
type Fig12Row struct {
	Dataset  string
	K        int
	Algo     string
	MeanTime time.Duration
	Queries  int
}

// approxAlgos are the contenders of Figure 12(a-e), in the paper's order,
// dispatched through the unified Search entry point so the harness times
// the same registry path production traffic takes.
func approxAlgos(s *core.Searcher) []struct {
	name string
	run  func(q graph.V, k int) (*core.Result, error)
} {
	mk := func(template core.Query) func(q graph.V, k int) (*core.Result, error) {
		return func(q graph.V, k int) (*core.Result, error) {
			template.Q, template.K = q, k
			return s.Search(context.Background(), template)
		}
	}
	return []struct {
		name string
		run  func(q graph.V, k int) (*core.Result, error)
	}{
		{"AppInc", mk(core.Query{Algo: "appinc"})},
		{"AppFast(0.0)", mk(core.Query{Algo: "appfast", EpsF: core.Float(0)})},
		{"AppFast(0.5)", mk(core.Query{Algo: "appfast", EpsF: core.Float(0.5)})},
		{"AppAcc(0.5)", mk(core.Query{Algo: "appacc", EpsA: core.Float(0.5)})},
	}
}

// Fig12Approx times the approximation algorithms across the k sweep.
func Fig12Approx(cfg Config) ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, name := range cfg.Datasets {
		ds, qs, err := loadWorkload(cfg, name)
		if err != nil {
			return nil, err
		}
		s := core.NewSearcher(ds.Graph)
		for _, k := range kSweep {
			for _, algo := range approxAlgos(s) {
				mean, results := runTimed(qs, func(q graph.V) (*core.Result, error) {
					return algo.run(q, k)
				})
				rows = append(rows, Fig12Row{
					Dataset: name, K: k, Algo: algo.name,
					MeanTime: mean, Queries: len(results),
				})
			}
		}
	}
	return rows, nil
}

// Fig12Exact times Exact versus Exact+ across the k sweep. Queries whose
// candidate k-ĉore exceeds cfg.ExactCap skip Exact (the paper's >10h cutoff)
// but still run Exact+.
func Fig12Exact(cfg Config) ([]Fig12Row, error) {
	var rows []Fig12Row
	for _, name := range cfg.Datasets {
		ds, qs, err := loadWorkload(cfg, name)
		if err != nil {
			return nil, err
		}
		s := core.NewSearcher(ds.Graph)
		for _, k := range kSweep {
			// Exact on the capped subset.
			var exactTotal time.Duration
			exactRuns := 0
			for _, q := range qs {
				probe, err := s.AppFast(q, k, 2)
				if err != nil {
					continue
				}
				if probe.Stats.CandidateSize > cfg.ExactCap {
					continue
				}
				res, err := s.Exact(q, k)
				if err != nil {
					continue
				}
				exactTotal += res.Stats.Elapsed
				exactRuns++
			}
			meanExact := time.Duration(0)
			if exactRuns > 0 {
				meanExact = exactTotal / time.Duration(exactRuns)
			}
			rows = append(rows, Fig12Row{Dataset: name, K: k, Algo: "Exact", MeanTime: meanExact, Queries: exactRuns})

			meanPlus, results := runTimed(qs, func(q graph.V) (*core.Result, error) {
				return s.Search(context.Background(), core.Query{Algo: "exact+", Q: q, K: k, EpsA: core.Float(1e-3)})
			})
			rows = append(rows, Fig12Row{Dataset: name, K: k, Algo: "Exact+", MeanTime: meanPlus, Queries: len(results)})
		}
	}
	return rows, nil
}

func printFig12(w io.Writer, rows []Fig12Row) {
	fprintf(w, "%-14s %4s %-14s %14s %8s\n", "dataset", "k", "algo", "mean time", "queries")
	for _, r := range rows {
		fprintf(w, "%-14s %4d %-14s %14v %8d\n", r.Dataset, r.K, r.Algo, r.MeanTime, r.Queries)
	}
}

// Fig12ScaleRow is one (dataset, pct, algorithm) timing of Figure 12(k-o).
type Fig12ScaleRow struct {
	Dataset  string
	Pct      int
	Algo     string
	MeanTime time.Duration
	Queries  int
}

// Fig12Scale times the approximation algorithms on induced subgraphs of
// 20%..100% of each dataset's vertices.
func Fig12Scale(cfg Config) ([]Fig12ScaleRow, error) {
	var rows []Fig12ScaleRow
	for _, name := range cfg.Datasets {
		full, err := loadDataset(cfg, name)
		if err != nil {
			return nil, err
		}
		for _, pct := range pctSweep {
			sub, err := dataset.SubgraphPercent(full, pct, cfg.Seed)
			if err != nil {
				return nil, err
			}
			qs := dataset.QueryWorkload(sub.Graph, cfg.MinCore, cfg.Queries, cfg.Seed)
			if len(qs) == 0 {
				continue
			}
			s := core.NewSearcher(sub.Graph)
			for _, algo := range approxAlgos(s) {
				mean, results := runTimed(qs, func(q graph.V) (*core.Result, error) {
					return algo.run(q, cfg.K)
				})
				rows = append(rows, Fig12ScaleRow{
					Dataset: name, Pct: pct, Algo: algo.name,
					MeanTime: mean, Queries: len(results),
				})
			}
		}
	}
	return rows, nil
}

func printFig12Scale(w io.Writer, rows []Fig12ScaleRow) {
	fprintf(w, "%-14s %5s %-14s %14s %8s\n", "dataset", "pct", "algo", "mean time", "queries")
	for _, r := range rows {
		fprintf(w, "%-14s %4d%% %-14s %14v %8d\n", r.Dataset, r.Pct, r.Algo, r.MeanTime, r.Queries)
	}
}

// Figure 14 — the effect of εA on Exact+: wall time (a) and |F1| (b). The
// paper sees |F1| grow with εA and a cost local-minimum between the anchor
// phase (dominant at small εA) and the enumeration phase (at large εA).

// Fig14Row is one (dataset, εA) aggregate.
type Fig14Row struct {
	Dataset  string
	EpsA     float64
	MeanTime time.Duration
	MeanF1   float64
	Queries  int
}

// epsASweepExactPlus is the Figure 14 x-axis, shifted up from the paper's
// 10⁻⁶..10⁻³ because the scaled datasets are smaller: on the quick
// workloads the anchor-refinement cost already dominates at 10⁻³ (the
// paper's left wall) and the |F1|³ enumeration dominates at 10⁻¹ (its right
// wall), so this range shows the same U-shape at tractable cost.
var epsASweepExactPlus = []float64{1e-3, 5e-3, 1e-2, 5e-2, 1e-1}

// fig14MaxQueries subsamples the workload for the εA sweep: the large-εA
// arm is deliberately expensive (wide annulus → large |F1| → cubic
// enumeration; that growth is the figure's point), so the quick harness
// measures it on fewer queries.
const fig14MaxQueries = 6

// Fig14 sweeps εA for Exact+.
func Fig14(cfg Config) ([]Fig14Row, error) {
	var rows []Fig14Row
	for _, name := range cfg.Datasets {
		ds, qs, err := loadWorkload(cfg, name)
		if err != nil {
			return nil, err
		}
		if len(qs) > fig14MaxQueries {
			qs = qs[:fig14MaxQueries]
		}
		s := core.NewSearcher(ds.Graph)
		for _, eps := range epsASweepExactPlus {
			var f1s []float64
			mean, results := runTimed(qs, func(q graph.V) (*core.Result, error) {
				return s.Search(context.Background(), core.Query{Algo: "exact+", Q: q, K: cfg.K, EpsA: core.Float(eps)})
			})
			for _, r := range results {
				f1s = append(f1s, float64(r.Stats.F1Size))
			}
			rows = append(rows, Fig14Row{
				Dataset: name, EpsA: eps,
				MeanTime: mean, MeanF1: metrics.Mean(f1s), Queries: len(results),
			})
		}
	}
	return rows, nil
}

func printFig14(w io.Writer, rows []Fig14Row) {
	fprintf(w, "%-14s %10s %14s %10s %8s\n", "dataset", "epsA", "mean time", "|F1|", "queries")
	for _, r := range rows {
		fprintf(w, "%-14s %10.0e %14v %10.1f %8d\n", r.Dataset, r.EpsA, r.MeanTime, r.MeanF1, r.Queries)
	}
}
