package dataset

import (
	"math"
	"os"
	"testing"

	"sacsearch/internal/graph"
	"sacsearch/internal/kcore"
)

func TestPresetByName(t *testing.T) {
	p, err := PresetByName("Brightkite")
	if err != nil {
		t.Fatal(err)
	}
	if p.Vertices != 51406 || p.Edges != 197167 {
		t.Fatalf("brightkite preset = %+v", p)
	}
	if _, err := PresetByName("nope"); err == nil {
		t.Fatal("unknown preset accepted")
	}
	if Names() == "" {
		t.Fatal("Names empty")
	}
}

func TestLoadScaled(t *testing.T) {
	scale := 0.05
	d, err := Load("brightkite", scale)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph
	wantN := int(float64(51406) * scale)
	if g.NumVertices() != wantN {
		t.Fatalf("n = %d, want %d", g.NumVertices(), wantN)
	}
	// Average degree within 25% of the published 7.67.
	if ad := g.AvgDegree(); math.Abs(ad-7.67) > 0.25*7.67 {
		t.Fatalf("avg degree = %v, want ≈7.67", ad)
	}
	// Locations in the unit square.
	for v := 0; v < g.NumVertices(); v += 97 {
		p := g.Loc(graph.V(v))
		if p.X < 0 || p.X > 1 || p.Y < 0 || p.Y > 1 {
			t.Fatalf("location %v outside unit square", p)
		}
	}
	if d.Scale != 0.05 {
		t.Fatalf("scale = %v", d.Scale)
	}
}

func TestLoadDeterministic(t *testing.T) {
	a, err := Load("syn1", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load("syn1", 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatal("not deterministic")
	}
	for v := 0; v < a.Graph.NumVertices(); v += 131 {
		if a.Graph.Loc(graph.V(v)) != b.Graph.Loc(graph.V(v)) {
			t.Fatal("locations not deterministic")
		}
	}
}

func TestLoadErrors(t *testing.T) {
	if _, err := Load("nope", 1); err == nil {
		t.Fatal("unknown name accepted")
	}
	if _, err := Load("syn1", 0); err == nil {
		t.Fatal("zero scale accepted")
	}
	if _, err := Load("syn1", 1.5); err == nil {
		t.Fatal("scale > 1 accepted")
	}
}

func TestSubgraphPercent(t *testing.T) {
	d, err := Load("syn1", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	sub, err := SubgraphPercent(d, 40, 1)
	if err != nil {
		t.Fatal(err)
	}
	wantN := d.Graph.NumVertices() * 40 / 100
	if sub.Graph.NumVertices() != wantN {
		t.Fatalf("n = %d, want %d", sub.Graph.NumVertices(), wantN)
	}
	if sub.Graph.NumEdges() >= d.Graph.NumEdges() {
		t.Fatal("induced subgraph kept too many edges")
	}
	// 100% is a clone.
	full, err := SubgraphPercent(d, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.Graph.NumVertices() != d.Graph.NumVertices() || full.Graph.NumEdges() != d.Graph.NumEdges() {
		t.Fatal("100% subgraph differs")
	}
	if _, err := SubgraphPercent(d, 0, 1); err == nil {
		t.Fatal("0% accepted")
	}
	if _, err := SubgraphPercent(d, 150, 1); err == nil {
		t.Fatal("150% accepted")
	}
}

func TestQueryWorkload(t *testing.T) {
	d, err := Load("brightkite", 0.05)
	if err != nil {
		t.Fatal(err)
	}
	qs := QueryWorkload(d.Graph, 4, 50, 7)
	if len(qs) != 50 {
		t.Fatalf("got %d queries", len(qs))
	}
	cores := kcore.Decompose(d.Graph)
	for _, q := range qs {
		if cores[q] < 4 {
			t.Fatalf("query %d has core %d < 4", q, cores[q])
		}
	}
	// Deterministic.
	qs2 := QueryWorkload(d.Graph, 4, 50, 7)
	for i := range qs {
		if qs[i] != qs2[i] {
			t.Fatal("workload not deterministic")
		}
	}
	// Different seed differs (overwhelmingly likely).
	qs3 := QueryWorkload(d.Graph, 4, 50, 8)
	same := true
	for i := range qs {
		if qs[i] != qs3[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds gave identical workloads")
	}
}

func TestSaveOpenRoundTrip(t *testing.T) {
	dir, err := os.MkdirTemp("", "sacds")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	d, err := Load("syn1", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir, "syn1", d.Graph.NumVertices())
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumEdges() != d.Graph.NumEdges() {
		t.Fatalf("edges %d vs %d", got.Graph.NumEdges(), d.Graph.NumEdges())
	}
	if got.Graph.Loc(0).Dist(d.Graph.Loc(0)) > 1e-6 {
		t.Fatal("location drift after round trip")
	}
}

func TestSaveOpenBinaryRoundTrip(t *testing.T) {
	dir, err := os.MkdirTemp("", "sacdsbin")
	if err != nil {
		t.Fatal(err)
	}
	defer os.RemoveAll(dir)
	d, err := Load("syn1", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.SaveBinary(dir); err != nil {
		t.Fatal(err)
	}
	got, err := OpenBinary(dir, "syn1")
	if err != nil {
		t.Fatal(err)
	}
	if got.Graph.NumVertices() != d.Graph.NumVertices() || got.Graph.NumEdges() != d.Graph.NumEdges() {
		t.Fatalf("size mismatch: (%d,%d) vs (%d,%d)",
			got.Graph.NumVertices(), got.Graph.NumEdges(), d.Graph.NumVertices(), d.Graph.NumEdges())
	}
	// Binary is bit-exact.
	for v := 0; v < d.Graph.NumVertices(); v++ {
		if got.Graph.Loc(int32(v)) != d.Graph.Loc(int32(v)) {
			t.Fatalf("vertex %d: location drift", v)
		}
	}
	// A missing file fails cleanly.
	if _, err := OpenBinary(dir, "nope"); err == nil {
		t.Fatal("missing binary dataset opened")
	}
}

func TestTable4Shape(t *testing.T) {
	// Every preset generated at small scale lands near its published
	// average degree — the Table 4 reproduction at reduced n.
	for _, p := range Presets {
		scale := 2000.0 / float64(p.Vertices)
		if scale > 1 {
			scale = 1
		}
		d, err := Load(p.Name, scale)
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		ad := d.Graph.AvgDegree()
		if math.Abs(ad-p.AvgDeg) > 0.3*p.AvgDeg {
			t.Fatalf("%s: avg degree %v, published %v", p.Name, ad, p.AvgDeg)
		}
	}
}
