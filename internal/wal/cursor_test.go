package wal

import (
	"errors"
	"os"
	"testing"
)

// nextBatch polls a cursor once, failing the test on error.
func nextBatch(t *testing.T, c *Cursor, max int) []Record {
	t.Helper()
	got, err := c.Next(max)
	if err != nil {
		t.Fatalf("cursor next: %v", err)
	}
	return got
}

func TestCursorTailsLiveLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 5)

	c, err := OpenCursor(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := nextBatch(t, c, 100)
	if len(got) != 5 || got[0].Seq != 1 || got[4].Seq != 5 {
		t.Fatalf("first poll = %+v", got)
	}
	for i, r := range got {
		w := rec(i)
		w.Seq = r.Seq
		if r != w {
			t.Fatalf("record %d: %+v != %+v", i, r, w)
		}
	}
	// Caught up: nothing new, no error.
	if again := nextBatch(t, c, 100); len(again) != 0 {
		t.Fatalf("caught-up poll returned %d records", len(again))
	}
	// Live appends show up on the next poll.
	appendN(t, l, 5, 7)
	more := nextBatch(t, c, 100)
	if len(more) != 7 || more[0].Seq != 6 || more[6].Seq != 12 {
		t.Fatalf("live tail poll = %+v", more)
	}
	if c.Pos() != 12 {
		t.Fatalf("pos = %d, want 12", c.Pos())
	}
	// max bounds one poll; the remainder arrives on the next.
	appendN(t, l, 12, 10)
	if part := nextBatch(t, c, 3); len(part) != 3 || part[2].Seq != 15 {
		t.Fatalf("bounded poll = %+v", part)
	}
	if rest := nextBatch(t, c, 100); len(rest) != 7 || rest[6].Seq != 22 {
		t.Fatalf("remainder poll = %+v", rest)
	}
}

func TestCursorResumesMidLog(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 20)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCursor(dir, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := nextBatch(t, c, 100)
	if len(got) != 13 || got[0].Seq != 8 || got[12].Seq != 20 {
		t.Fatalf("resume poll = %d records, first %+v", len(got), got[0])
	}
}

func TestCursorFollowsRotation(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendN(t, l, 0, 64)
	if segs, _ := l.Stats(); segs < 3 {
		t.Fatalf("want ≥3 segments, got %d", segs)
	}
	c, err := OpenCursor(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := nextBatch(t, c, 1000)
	if len(got) != 64 || got[63].Seq != 64 {
		t.Fatalf("rotation poll = %d records", len(got))
	}
	// Keep rotating while the cursor is live.
	appendN(t, l, 64, 64)
	var tail []Record
	for len(tail) < 64 {
		batch := nextBatch(t, c, 10)
		if len(batch) == 0 {
			t.Fatalf("cursor stalled at %d/64 tail records", len(tail))
		}
		tail = append(tail, batch...)
	}
	if tail[0].Seq != 65 || tail[63].Seq != 128 {
		t.Fatalf("tail spans %d..%d, want 65..128", tail[0].Seq, tail[63].Seq)
	}
}

func TestCursorTornTailWaits(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A partial frame at the tail is an append in flight, not corruption:
	// the cursor reports caught-up and retries later.
	segs, _ := listSegments(dir)
	f, err := os.OpenFile(segs[0].path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x1d, 0x00}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	c, err := OpenCursor(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := nextBatch(t, c, 100); len(got) != 3 {
		t.Fatalf("poll over torn tail = %d records, want 3", len(got))
	}
	if again := nextBatch(t, c, 100); len(again) != 0 {
		t.Fatalf("torn-tail repoll returned %d records", len(again))
	}
}

func TestCursorGapOnTruncatedHistory(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 64)
	if err := l.TruncateThrough(30); err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A cursor wanting history behind the truncation horizon must fail with
	// ErrGap so the caller falls back to a snapshot, never skips.
	if _, err := OpenCursor(dir, 10); !errors.Is(err, ErrGap) {
		t.Fatalf("cursor across truncated history: err = %v, want ErrGap", err)
	}
	// At or past the horizon it works.
	c, err := OpenCursor(dir, 30)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := nextBatch(t, c, 1000)
	if len(got) != 34 || got[0].Seq != 31 {
		t.Fatalf("post-horizon poll = %d records, first seq %d", len(got), got[0].Seq)
	}
}

func TestCursorGapOnSegmentRemovedUnderneath(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 64)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	c, err := OpenCursor(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := nextBatch(t, c, 4); len(got) != 4 {
		t.Fatalf("first poll = %d records", len(got))
	}
	// Remove the cursor's current segment: whatever the open handle still
	// yields, the cursor must end in ErrGap, never jump the hole.
	segs, _ := listSegments(dir)
	if err := os.Remove(segs[0].path); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		got, err := c.Next(1000)
		if err != nil {
			if !errors.Is(err, ErrGap) {
				t.Fatalf("removed-segment poll: err = %v, want ErrGap", err)
			}
			return
		}
		if len(got) == 0 {
			t.Fatal("cursor idles over a removed segment instead of reporting ErrGap")
		}
	}
	t.Fatal("cursor never reported ErrGap after its segment was removed")
}

// The deletion-under-Replay satellites: Replay must fail loudly when a sealed
// segment vanishes, whether before the scan starts or while it is running.

func TestReplayMissingMiddleSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 64)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	if err := os.Remove(segs[1].path); err != nil {
		t.Fatal(err)
	}
	var seen []uint64
	_, err = Replay(dir, 0, func(r Record) error {
		seen = append(seen, r.Seq)
		return nil
	})
	if err == nil {
		t.Fatalf("replay over a missing middle segment succeeded, delivered %d records", len(seen))
	}
	// Nothing past the hole may have been delivered as contiguous history.
	for i, s := range seen {
		if s != uint64(i+1) {
			t.Fatalf("replay skipped the hole: delivered seq %d at position %d", s, i)
		}
	}
}

func TestReplayMissingFirstSegmentFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 64)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if err := os.Remove(segs[0].path); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
		t.Fatal("replay with the first segment missing succeeded silently")
	}
}

func TestReplaySegmentDeletedMidReplayFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 64)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	// Delete an upcoming sealed segment from inside the replay callback —
	// simulating a concurrent truncation racing an in-progress read.
	removed := false
	count := 0
	_, err = Replay(dir, 0, func(r Record) error {
		count++
		if !removed && r.Seq == 2 {
			removed = true
			if err := os.Remove(segs[1].path); err != nil {
				t.Fatal(err)
			}
		}
		return nil
	})
	if err == nil {
		t.Fatalf("replay over a segment deleted mid-read succeeded, delivered %d records", count)
	}
}
