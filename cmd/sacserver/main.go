// Command sacserver serves SAC search over HTTP — the system prototype of
// the paper's Section 6 future work.
//
// Usage:
//
//	sacserver -dataset brightkite -scale 0.05 -addr :8080
//	sacserver -load graph.bin -data-dir /var/lib/sacsearch -fsync always
//
// Then (the versioned /v1 API; the unversioned /api/* aliases still answer
// but are deprecated):
//
//	curl localhost:8080/v1/health
//	curl localhost:8080/v1/algorithms
//	curl -X POST localhost:8080/v1/query -d '{"q":17,"k":4,"algo":"exact+"}'
//	curl -X POST localhost:8080/v1/batch -d '{"queries":[{"q":17,"k":4},{"q":23,"k":4}]}'
//	curl -X POST localhost:8080/v1/checkin -d '{"v":17,"x":0.5,"y":0.5}'
//
// Downstream Go programs should prefer the typed client (sacsearch/client)
// over hand-rolled HTTP.
//
// With -data-dir the server is durable: writes go through a write-ahead log
// before becoming visible (fsync policy from -fsync), a background
// checkpointer bounds recovery time, and a restart recovers the last served
// state from the directory — the -dataset/-load graph then only seeds the
// very first boot. Without -data-dir the graph lives and dies with the
// process, as before.
//
// Replication (see the README's "Replication & failover" section):
//
//	sacserver -data-dir /var/lib/sac -listen-replication :9090   # leader
//	sacserver -replicate-from leader:9090 -addr :8081            # read replica
//	sacserver -fence leader:9090                                 # fence a deposed leader, then exit
//
// A leader with -listen-replication ships its WAL (snapshot bootstrap +
// live tail) to followers. A replica serves the read-only /v1 surface from
// the replicated state, sheds reads with 503 + Retry-After when staler than
// -staleness-bound, and reports role/epoch/lag on /v1/health. -bump-epoch
// makes a recovering durable leader outrank whoever fenced it (the
// promotion step); -fence makes a deposed leader reject writes.
//
// Sharding (see the README's "Sharded topology" section): -shard-id and
// -shard-map make this node one shard of a spatially partitioned topology.
// Serve the matching shard subgraph cut by sacshard (-load shard-N.bin),
// put sacrouter in front, and combine freely with -data-dir,
// -listen-replication or -replicate-from — a shard runs the full durable
// replication stack unchanged:
//
//	sacshard -dataset brightkite -shards 2 -out /var/lib/sac/cut
//	sacserver -load /var/lib/sac/cut/shard-0.bin -shard-id 0 -shard-map /var/lib/sac/cut/shardmap.bin
//
// The process runs a configured http.Server (read/write/idle timeouts, not
// the bare ListenAndServe defaults) and shuts down gracefully on SIGINT or
// SIGTERM: the listener closes, in-flight queries drain up to the grace
// period, then the snapshot writer stops (and a durable server writes its
// final checkpoint).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"sacsearch/internal/dataset"
	"sacsearch/internal/debugserve"
	"sacsearch/internal/graph"
	"sacsearch/internal/replica"
	"sacsearch/internal/server"
	"sacsearch/internal/shard"
	"sacsearch/internal/store"
	"sacsearch/internal/telemetry"
	"sacsearch/internal/version"
)

func main() {
	var (
		name     = flag.String("dataset", "brightkite", "dataset preset to serve")
		scale    = flag.Float64("scale", 0.05, "dataset scale in (0,1]")
		load     = flag.String("load", "", "serve a saved binary graph file instead of a dataset preset")
		dataDir  = flag.String("data-dir", "", "durable state directory (WAL + checkpoints); empty = in-memory only")
		fsync    = flag.String("fsync", "always", "WAL fsync policy: always, interval or never (with -data-dir)")
		addr     = flag.String("addr", ":8080", "listen address")
		qTimeout = flag.Duration("query-timeout", 15*time.Second, "per-request query deadline")
		maxBody  = flag.Int64("max-body", 1<<20, "maximum POST body size in bytes")
		grace    = flag.Duration("grace", 20*time.Second, "shutdown drain period for in-flight requests")

		listenRepl = flag.String("listen-replication", "", "ship the WAL to followers on this address (requires -data-dir)")
		replFrom   = flag.String("replicate-from", "", "run as a read-only replica of the leader at this replication address")
		staleBound = flag.Duration("staleness-bound", 10*time.Second, "replica: shed reads with 503 when further behind the leader than this")
		bumpEpoch  = flag.Bool("bump-epoch", false, "bump the fencing epoch at boot, outranking whoever fenced this store (promotion; requires -data-dir)")
		fence      = flag.String("fence", "", "fence the leader at this replication address so it rejects writes, then exit")
		fenceEpoch = flag.Uint64("fence-epoch", 0, "epoch to fence with (0 = probe the leader and use its epoch + 1)")

		shardID  = flag.Int("shard-id", -1, "serve as this shard of a partitioned topology (requires -shard-map)")
		shardMap = flag.String("shard-map", "", "shard-map artifact written by sacshard (requires -shard-id)")

		queryPar  = flag.Int("query-parallelism", 0, "intra-query parallelism budget per query, scaled down by in-flight load (0 = serial)")
		pprofAddr = flag.String("pprof-addr", "", "serve net/http/pprof on this address (off when empty; keep it firewalled)")
		metrics   = flag.Bool("metrics", true, "register internal instruments and serve Prometheus text format on /metrics")
		slowQuery = flag.Duration("slow-query", time.Second, "log requests slower than this with their span tree (0 disables)")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	slog.SetDefault(logger)
	var reg *telemetry.Registry
	if *metrics {
		reg = telemetry.NewRegistry()
	}
	debugserve.Serve(*pprofAddr, reg, logger)
	bi := version.Get()
	logger.Info("sacserver starting", "version", bi.Version, "commit", bi.Commit, "go", bi.Go)

	if *fence != "" {
		runFence(*fence, *fenceEpoch)
		return
	}

	// -load and -dataset both name the graph to serve; explicitly setting
	// the two together is ambiguous, so refuse rather than pick one.
	datasetSet := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == "dataset" {
			datasetSet = true
		}
	})
	if *load != "" && datasetSet {
		log.Fatal("sacserver: -load and -dataset are mutually exclusive")
	}

	cfg := server.Config{
		QueryTimeout: *qTimeout, MaxBodyBytes: *maxBody, StalenessBound: *staleBound,
		QueryParallelism: *queryPar, Logger: logger, Metrics: reg, ServeMetrics: *metrics,
		SlowQueryThreshold: *slowQuery,
	}
	srvName := graphName(*load, *name)

	// Shard identity applies in every mode — a leader, a durable node, or a
	// replica of a shard leader all guard writes and serve /v1/shard/*.
	if (*shardID >= 0) != (*shardMap != "") {
		log.Fatal("sacserver: -shard-id and -shard-map must be set together")
	}
	if *shardMap != "" {
		sv, err := loadServing(*shardMap, *shardID)
		if err != nil {
			log.Fatalf("sacserver: %v", err)
		}
		cfg.Shard = sv
		srvName = fmt.Sprintf("%s[shard %d/%d]", srvName, sv.ID, sv.Map.Shards)
		logger.Info("serving shard", "shard", sv.ID, "shards", sv.Map.Shards,
			"owned", sv.Map.OwnedCount(sv.ID), "mapChecksum", fmt.Sprintf("%08x", sv.Map.Checksum()))
	}

	var api *server.Server
	switch {
	case *replFrom != "":
		// Replica mode: the graph comes from the leader, nothing else makes
		// sense alongside it.
		if *dataDir != "" || *listenRepl != "" || *bumpEpoch {
			log.Fatal("sacserver: -replicate-from excludes -data-dir, -listen-replication and -bump-epoch")
		}
		if *load != "" || datasetSet {
			log.Fatal("sacserver: -replicate-from excludes -load/-dataset (state comes from the leader)")
		}
		f, err := replica.NewFollower(replica.FollowerOptions{Leader: *replFrom, Logger: logger, Metrics: reg})
		if err != nil {
			log.Fatalf("sacserver: %v", err)
		}
		srvName = "replica(" + *replFrom + ")"
		api = server.NewReplica(srvName, f, cfg)
		logger.Info("replicating from leader", "leader", *replFrom, "stalenessBound", *staleBound)
	case *dataDir != "":
		policy, err := store.ParseFsyncPolicy(*fsync)
		if err != nil {
			log.Fatalf("sacserver: %v", err)
		}
		// Recovery discards the bootstrap graph, so only build it (seconds
		// for the big presets) when the data dir holds nothing to recover.
		var g *graph.Graph
		if !store.HasState(*dataDir) {
			if g, err = buildGraph(*load, *name, *scale); err != nil {
				log.Fatalf("sacserver: %v", err)
			}
		}
		st, err := store.Open(*dataDir, store.Options{Init: g, Fsync: policy, Metrics: reg})
		if err != nil {
			log.Fatalf("sacserver: %v", err)
		}
		s := st.Stats()
		if s.Recovered {
			logger.Info("recovered durable state; the -dataset/-load graph was not built",
				"name", srvName, "dir", *dataDir, "checkpointSeq", s.LastCheckpointSeq,
				"replayedRecords", s.ReplayedRecords)
		} else {
			logger.Info("bootstrapped durable state", "name", srvName, "dir", *dataDir, "fsync", s.FsyncPolicy)
		}
		if *bumpEpoch {
			e, err := st.BumpEpoch()
			if err != nil {
				log.Fatalf("sacserver: bumping epoch: %v", err)
			}
			logger.Info("fencing epoch bumped", "epoch", e)
		}
		if *listenRepl != "" {
			ln, err := net.Listen("tcp", *listenRepl)
			if err != nil {
				log.Fatalf("sacserver: replication listener: %v", err)
			}
			sh := replica.NewShipper(st, ln, replica.ShipperOptions{Logger: logger, Metrics: reg})
			defer sh.Close()
			cfg.ShipperStatus = sh.Status
			logger.Info("shipping WAL", "addr", ln.Addr().String(), "epoch", st.Epoch())
		}
		api = server.NewWithStore(srvName, st, cfg)
	default:
		if *listenRepl != "" || *bumpEpoch {
			log.Fatal("sacserver: -listen-replication and -bump-epoch require -data-dir")
		}
		g, err := buildGraph(*load, *name, *scale)
		if err != nil {
			log.Fatalf("sacserver: %v", err)
		}
		api = server.NewWithConfig(srvName, g, cfg)
	}
	defer api.Close()

	// Counts come from the published snapshot: the engine owns the mutable
	// graph as soon as the server exists — except on a replica, which has no
	// state until its first sync completes.
	vertices, edges := 0, 0
	if eng := api.Engine(); eng != nil {
		snap := eng.Current()
		vertices, edges = snap.Graph().NumVertices(), snap.Edges()
	}

	// ReadHeaderTimeout bounds slow-loris headers; WriteTimeout leaves room
	// for the query deadline plus response encoding so the server never cuts
	// off a legitimate slow Exact before the API-level deadline does.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           api,
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       30 * time.Second,
		WriteTimeout:      *qTimeout + 15*time.Second,
		IdleTimeout:       2 * time.Minute,
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("sacserver: serving %s (%d vertices, %d edges) on %s (API /v1, deprecated alias /api)\n",
		srvName, vertices, edges, *addr)

	select {
	case err := <-errc:
		log.Fatalf("sacserver: %v", err)
	case <-ctx.Done():
		stop() // a second signal kills immediately
		logger.Info("signal received, draining", "grace", *grace)
		// Standing-query streams first: flush pending deltas and send each
		// subscriber the terminal bye, so the open SSE responses finish and
		// Shutdown's drain below can complete.
		api.DrainSubscriptions()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
			logger.Error("shutdown failed", "err", err)
		}
		logger.Info("drained, stopping snapshot writer")
	}
}

// runFence executes the one-shot -fence action: make the leader at addr
// reject all future writes. With epoch 0 it probes the leader for its
// current epoch first and fences with the successor — the common promotion
// case where the operator does not track epochs by hand.
func runFence(addr string, epoch uint64) {
	const timeout = 10 * time.Second
	if epoch == 0 {
		// Epoch 1 can never outrank a live leader (epochs start at 1), so
		// this probe either learns the leader's current epoch from the
		// refusal, or comes back rejected because the leader is already
		// fenced — done either way.
		current, err := replica.FenceLeader(addr, 1, timeout)
		if err == nil {
			fmt.Printf("sacserver: leader %s is already fenced (epoch %d)\n", addr, current)
			return
		}
		if current == 0 {
			log.Fatalf("sacserver: probing %s: %v", addr, err)
		}
		epoch = current + 1
	}
	leaderEpoch, err := replica.FenceLeader(addr, epoch, timeout)
	if err != nil {
		log.Fatalf("sacserver: fencing %s at epoch %d: %v (leader reports epoch %d)",
			addr, epoch, err, leaderEpoch)
	}
	fmt.Printf("sacserver: leader %s fenced at epoch %d; it now rejects writes\n", addr, epoch)
}

// loadServing reads the shard-map artifact and binds this node to one of
// its shards.
func loadServing(path string, id int) (*shard.Serving, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := shard.ReadMap(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", path, err)
	}
	return shard.NewServing(m, id)
}

// graphName labels the served graph without building it: the -load file's
// basename, or the preset name.
func graphName(load, name string) string {
	if load == "" {
		return name
	}
	return strings.TrimSuffix(filepath.Base(load), filepath.Ext(load))
}

// buildGraph materializes the serving graph: a saved binary file with
// -load, a dataset preset otherwise.
func buildGraph(load, name string, scale float64) (*graph.Graph, error) {
	if load == "" {
		ds, err := dataset.Load(name, scale)
		if err != nil {
			return nil, err
		}
		return ds.Graph, nil
	}
	f, err := os.Open(load)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := graph.ReadBinary(f)
	if err != nil {
		return nil, fmt.Errorf("reading %s: %w", load, err)
	}
	return g, nil
}
