package core

import (
	"errors"
	"math"
	"math/rand"
	"sort"
	"testing"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// Vertex names for the Figure 3 fixture.
const (
	vQ graph.V = iota
	vA
	vB
	vC
	vD
	vE
	vF
	vG
	vH
	vI
)

// figure3 builds the worked example of Section 3 (Example 1, Figure 3) with
// coordinates chosen to reproduce the published quantities exactly:
//
//	|Q,A| = |Q,B| = |Q,D| = √5 ≈ 2.236 (the paper's 2.24)
//	MCC{Q,A,B} has radius √13/2 ≈ 1.803 (A and B straddle Q vertically)
//	MCC{Q,C,D} has radius 1.5 — the optimal SAC for q=Q, k=2
//	|Q,E| = √26 ≈ 5.10 (the paper's AppFast upper bound)
//
// Edges: triangles {Q,A,B} and {Q,C,D}, E tied to C and D, pendant I on E,
// and a separate triangle {F,G,H}. The 2-core has components
// {Q,A,B,C,D,E} and {F,G,H}, exactly as in Figure 3(b).
func figure3() *graph.Graph {
	b := graph.NewBuilder(10)
	xm := 3 - math.Sqrt(1.75) // A/B share this x: |QM| = √1.75
	half := math.Sqrt(13) / 2 // half of |A,B|
	b.SetLoc(vQ, geom.Point{X: 3, Y: 2})
	b.SetLoc(vA, geom.Point{X: xm, Y: 2 + half})
	b.SetLoc(vB, geom.Point{X: xm, Y: 2 - half})
	b.SetLoc(vC, geom.Point{X: 3, Y: 5})
	b.SetLoc(vD, geom.Point{X: 4, Y: 4})
	b.SetLoc(vE, geom.Point{X: 8, Y: 3})
	b.SetLoc(vF, geom.Point{X: 6, Y: 1})
	b.SetLoc(vG, geom.Point{X: 7, Y: 1})
	b.SetLoc(vH, geom.Point{X: 6.5, Y: 1.8})
	b.SetLoc(vI, geom.Point{X: 8, Y: 4})
	edges := [][2]graph.V{
		{vQ, vA}, {vQ, vB}, {vA, vB},
		{vQ, vC}, {vQ, vD}, {vC, vD},
		{vC, vE}, {vD, vE},
		{vF, vG}, {vF, vH}, {vG, vH},
		{vE, vI},
	}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	return b.Build()
}

func membersEqual(got []graph.V, want ...graph.V) bool {
	if len(got) != len(want) {
		return false
	}
	g := append([]graph.V(nil), got...)
	w := append([]graph.V(nil), want...)
	sort.Slice(g, func(i, j int) bool { return g[i] < g[j] })
	sort.Slice(w, func(i, j int) bool { return w[i] < w[j] })
	for i := range g {
		if g[i] != w[i] {
			return false
		}
	}
	return true
}

// validateCommunity checks the three SAC properties (Problem 1): q inside,
// connectivity, and min internal degree >= k; plus that the MCC covers all
// members.
func validateCommunity(t *testing.T, g *graph.Graph, res *Result, q graph.V, k int) {
	t.Helper()
	if !res.Contains(q) {
		t.Fatalf("community misses q=%d: %v", q, res.Members)
	}
	in := map[graph.V]bool{}
	for _, v := range res.Members {
		in[v] = true
	}
	if len(res.Members) > 1 {
		for _, v := range res.Members {
			d := 0
			for _, u := range g.Neighbors(v) {
				if in[u] {
					d++
				}
			}
			if d < k {
				t.Fatalf("vertex %d has internal degree %d < k=%d (members %v)", v, d, k, res.Members)
			}
		}
	}
	visited := graph.NewMarker(g.NumVertices())
	reach := graph.BFSFrom(g, q, func(v graph.V) bool { return in[v] }, visited, nil)
	if len(reach) != len(res.Members) {
		t.Fatalf("community not connected: reached %d of %d", len(reach), len(res.Members))
	}
	grow := geom.Circle{C: res.MCC.C, R: res.MCC.R * (1 + 1e-9)}
	for _, v := range res.Members {
		if !grow.Contains(g.Loc(v)) {
			t.Fatalf("MCC %+v misses member %d at %v", res.MCC, v, g.Loc(v))
		}
	}
}

func TestExactPaperExample(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	res, err := s.Exact(vQ, 2)
	if err != nil {
		t.Fatal(err)
	}
	validateCommunity(t, g, res, vQ, 2)
	if !membersEqual(res.Members, vQ, vC, vD) {
		t.Fatalf("Exact members = %v, want {Q,C,D}", res.Members)
	}
	if math.Abs(res.Radius()-1.5) > 1e-6 {
		t.Fatalf("ropt = %v, want 1.5", res.Radius())
	}
	if res.Stats.CirclesExamined == 0 || res.Stats.FeasibilityChecks == 0 {
		t.Fatalf("stats not populated: %+v", res.Stats)
	}
}

func TestAppIncPaperExample(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	res, err := s.AppInc(vQ, 2)
	if err != nil {
		t.Fatal(err)
	}
	validateCommunity(t, g, res, vQ, 2)
	if !membersEqual(res.Members, vQ, vA, vB) {
		t.Fatalf("AppInc members = %v, want {Q,A,B}", res.Members)
	}
	// Example 2: γ = 1.803, δ = 2.236, actual ratio 1.202.
	if math.Abs(res.Radius()-math.Sqrt(13)/2) > 1e-6 {
		t.Fatalf("γ = %v, want %v", res.Radius(), math.Sqrt(13)/2)
	}
	if math.Abs(res.Delta-math.Sqrt(5)) > 1e-6 {
		t.Fatalf("δ = %v, want √5", res.Delta)
	}
	if ratio := res.Radius() / 1.5; math.Abs(ratio-1.202) > 1e-3 {
		t.Fatalf("actual ratio = %v, want ≈1.202", ratio)
	}
}

func TestAppFastPaperExample(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	// εF = 0 returns Φ, identical to AppInc (Remark after Lemma 5).
	res0, err := s.AppFast(vQ, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !membersEqual(res0.Members, vQ, vA, vB) {
		t.Fatalf("AppFast(0) members = %v, want {Q,A,B}", res0.Members)
	}
	if math.Abs(res0.Delta-math.Sqrt(5)) > 1e-6 {
		t.Fatalf("AppFast(0) δ = %v, want √5", res0.Delta)
	}
	// Example 3 (εF = 0.1) also lands on {Q,A,B}.
	res, err := s.AppFast(vQ, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	validateCommunity(t, g, res, vQ, 2)
	if !membersEqual(res.Members, vQ, vA, vB) {
		t.Fatalf("AppFast(0.1) members = %v, want {Q,A,B}", res.Members)
	}
	if res.Stats.BinaryIters == 0 {
		t.Fatal("binary iteration counter not populated")
	}
}

func TestAppAccPaperExample(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	// With εA = 0.1 the guarantee (1.1·ropt = 1.65) excludes the radius-1.803
	// community, so AppAcc must find the optimal {Q,C,D}.
	res, err := s.AppAcc(vQ, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	validateCommunity(t, g, res, vQ, 2)
	if !membersEqual(res.Members, vQ, vC, vD) {
		t.Fatalf("AppAcc members = %v, want {Q,C,D}", res.Members)
	}
	if res.Radius() > 1.5*1.1+1e-9 {
		t.Fatalf("AppAcc radius %v exceeds (1+εA)·ropt", res.Radius())
	}
	if res.Stats.AnchorsProcessed == 0 {
		t.Fatal("anchor counter not populated")
	}
}

func TestExactPlusPaperExample(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	res, err := s.ExactPlus(vQ, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	validateCommunity(t, g, res, vQ, 2)
	if !membersEqual(res.Members, vQ, vC, vD) {
		t.Fatalf("ExactPlus members = %v, want {Q,C,D}", res.Members)
	}
	if math.Abs(res.Radius()-1.5) > 1e-6 {
		t.Fatalf("ExactPlus radius = %v, want 1.5", res.Radius())
	}
	if res.Stats.F1Size == 0 {
		t.Fatal("|F1| not populated")
	}
}

func TestThetaSACPaperExample(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	// θ < 2.2: no community (nearest candidates sit at √5 ≈ 2.236).
	if _, err := s.ThetaSAC(vQ, 2, 2.0); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("θ=2.0: err = %v, want ErrNoCommunity", err)
	}
	// θ = 3.1: C1 ∪ C2 = {Q,A,B,C,D}.
	res, err := s.ThetaSAC(vQ, 2, 3.1)
	if err != nil {
		t.Fatal(err)
	}
	validateCommunity(t, g, res, vQ, 2)
	if !membersEqual(res.Members, vQ, vA, vB, vC, vD) {
		t.Fatalf("θ=3.1 members = %v, want {Q,A,B,C,D}", res.Members)
	}
	// θ > 5.1: C3 = {Q,A,B,C,D,E}.
	res, err = s.ThetaSAC(vQ, 2, 6.0)
	if err != nil {
		t.Fatal(err)
	}
	if !membersEqual(res.Members, vQ, vA, vB, vC, vD, vE) {
		t.Fatalf("θ=6 members = %v, want {Q,A,B,C,D,E}", res.Members)
	}
}

func TestSeparateComponent(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	for _, algo := range []struct {
		name string
		run  func() (*Result, error)
	}{
		{"Exact", func() (*Result, error) { return s.Exact(vF, 2) }},
		{"ExactPlus", func() (*Result, error) { return s.ExactPlus(vF, 2, 0.2) }},
		{"AppInc", func() (*Result, error) { return s.AppInc(vF, 2) }},
		{"AppFast", func() (*Result, error) { return s.AppFast(vF, 2, 0.5) }},
		{"AppAcc", func() (*Result, error) { return s.AppAcc(vF, 2, 0.5) }},
	} {
		res, err := algo.run()
		if err != nil {
			t.Fatalf("%s: %v", algo.name, err)
		}
		if !membersEqual(res.Members, vF, vG, vH) {
			t.Fatalf("%s members = %v, want {F,G,H}", algo.name, res.Members)
		}
	}
}

func TestTrivialK(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	// k = 0: just q.
	res, err := s.Exact(vQ, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !membersEqual(res.Members, vQ) || res.Radius() != 0 {
		t.Fatalf("k=0 result = %v r=%v", res.Members, res.Radius())
	}
	// k = 1: q plus its nearest neighbor (A, B and D tie at √5; the
	// smallest-distance neighbor scanned first wins — A).
	res, err = s.AppInc(vQ, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Members) != 2 || !res.Contains(vQ) {
		t.Fatalf("k=1 result = %v", res.Members)
	}
	if math.Abs(res.Delta-math.Sqrt(5)) > 1e-9 {
		t.Fatalf("k=1 δ = %v, want √5", res.Delta)
	}
	// Isolated query vertex with k = 1 has no community. Build one.
	b := graph.NewBuilder(2)
	b.AddEdge(0, 1)
	lone := b.Build()
	// Vertex ids 0,1 connected; make a third graph with isolated vertex.
	b2 := graph.NewBuilder(1)
	g2 := b2.Build()
	s2 := NewSearcher(g2)
	if _, err := s2.Exact(0, 1); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("isolated k=1: err = %v", err)
	}
	_ = lone
}

func TestNoCommunityAndErrors(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	// I has core number 1: no 2-core community.
	for _, run := range []func() (*Result, error){
		func() (*Result, error) { return s.Exact(vI, 2) },
		func() (*Result, error) { return s.ExactPlus(vI, 2, 0.5) },
		func() (*Result, error) { return s.AppInc(vI, 2) },
		func() (*Result, error) { return s.AppFast(vI, 2, 0.5) },
		func() (*Result, error) { return s.AppAcc(vI, 2, 0.5) },
	} {
		if _, err := run(); !errors.Is(err, ErrNoCommunity) {
			t.Fatalf("expected ErrNoCommunity, got %v", err)
		}
	}
	// Parameter validation.
	if _, err := s.Exact(-1, 2); err == nil {
		t.Fatal("negative vertex accepted")
	}
	if _, err := s.Exact(99, 2); err == nil {
		t.Fatal("out-of-range vertex accepted")
	}
	if _, err := s.Exact(vQ, -1); err == nil {
		t.Fatal("negative k accepted")
	}
	if _, err := s.AppFast(vQ, 2, -0.5); err == nil {
		t.Fatal("negative εF accepted")
	}
	if _, err := s.AppAcc(vQ, 2, 0); err == nil {
		t.Fatal("εA = 0 accepted")
	}
	if _, err := s.AppAcc(vQ, 2, 1.5); err == nil {
		t.Fatal("εA > 1 accepted")
	}
	if _, err := s.ExactPlus(vQ, 2, 0); err == nil {
		t.Fatal("ExactPlus εA = 0 accepted")
	}
	if _, err := s.ThetaSAC(vQ, 2, -1); err == nil {
		t.Fatal("negative θ accepted")
	}
}

// clusteredGraph plants nc cliques of size cs at random locations with some
// extra random edges, giving every query vertex a spatially tight optimal
// community plus noise. Locations live in the unit square.
func clusteredGraph(seed int64, nc, cs, extra int) *graph.Graph {
	rnd := rand.New(rand.NewSource(seed))
	n := nc * cs
	b := graph.NewBuilder(n)
	for c := 0; c < nc; c++ {
		cx, cy := rnd.Float64(), rnd.Float64()
		for i := 0; i < cs; i++ {
			v := graph.V(c*cs + i)
			b.SetLoc(v, geom.Point{
				X: cx + (rnd.Float64()-0.5)*0.05,
				Y: cy + (rnd.Float64()-0.5)*0.05,
			})
			for j := 0; j < i; j++ {
				b.AddEdge(v, graph.V(c*cs+j))
			}
		}
	}
	for i := 0; i < extra; i++ {
		b.AddEdge(graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n)))
	}
	return b.Build()
}

// bruteOptimal enumerates every subset of the candidate k-ĉore (must be
// small) and returns the minimum MCC radius over feasible subsets.
func bruteOptimal(t *testing.T, g *graph.Graph, s *Searcher, q graph.V, k int) float64 {
	t.Helper()
	cand, err := s.candidates(q, k)
	if err != nil {
		t.Fatalf("bruteOptimal: %v", err)
	}
	X := cand.verts
	if len(X) > 18 {
		t.Fatalf("bruteOptimal: candidate set too large (%d)", len(X))
	}
	qi := -1
	for i, v := range X {
		if v == q {
			qi = i
		}
	}
	best := math.Inf(1)
	visited := graph.NewMarker(g.NumVertices())
	for mask := 1; mask < 1<<len(X); mask++ {
		if mask&(1<<qi) == 0 {
			continue
		}
		var members []graph.V
		for i := range X {
			if mask&(1<<i) != 0 {
				members = append(members, X[i])
			}
		}
		// Min degree within subset.
		in := map[graph.V]bool{}
		for _, v := range members {
			in[v] = true
		}
		ok := true
		for _, v := range members {
			d := 0
			for _, u := range g.Neighbors(v) {
				if in[u] {
					d++
				}
			}
			if d < k {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		reach := graph.BFSFrom(g, q, func(v graph.V) bool { return in[v] }, visited, nil)
		if len(reach) != len(members) {
			continue
		}
		if r := g.MCCOf(members).R; r < best {
			best = r
		}
	}
	return best
}

func TestExactMatchesBruteForceOracle(t *testing.T) {
	// Tiny graphs whose candidate sets stay under 18 vertices.
	for seed := int64(0); seed < 8; seed++ {
		g := clusteredGraph(seed, 3, 5, 4)
		s := NewSearcher(g)
		q := graph.V(0)
		k := 3
		if s.CoreNumber(q) < k {
			continue
		}
		cand, _ := s.candidates(q, k)
		if len(cand.verts) > 16 {
			continue
		}
		want := bruteOptimal(t, g, s, q, k)
		res, err := s.Exact(q, k)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if math.Abs(res.Radius()-want) > 1e-7 {
			t.Fatalf("seed %d: Exact radius %v, brute %v", seed, res.Radius(), want)
		}
	}
}

func TestAlgorithmsAgreeOnRandomGraphs(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		g := clusteredGraph(seed, 6, 8, 30)
		s := NewSearcher(g)
		rnd := rand.New(rand.NewSource(seed * 31))
		for trial := 0; trial < 4; trial++ {
			q := graph.V(rnd.Intn(g.NumVertices()))
			k := 2 + rnd.Intn(3)
			if s.CoreNumber(q) < k {
				continue
			}
			exact, err := s.Exact(q, k)
			if err != nil {
				t.Fatalf("Exact: %v", err)
			}
			validateCommunity(t, g, exact, q, k)
			ropt := exact.Radius()

			plus, err := s.ExactPlus(q, k, 0.2)
			if err != nil {
				t.Fatalf("ExactPlus: %v", err)
			}
			validateCommunity(t, g, plus, q, k)
			if math.Abs(plus.Radius()-ropt) > 1e-7 {
				t.Fatalf("seed %d q=%d k=%d: ExactPlus %v vs Exact %v", seed, q, k, plus.Radius(), ropt)
			}

			inc, err := s.AppInc(q, k)
			if err != nil {
				t.Fatalf("AppInc: %v", err)
			}
			validateCommunity(t, g, inc, q, k)
			if ropt > 1e-12 && inc.Radius() > 2*ropt+1e-9 {
				t.Fatalf("AppInc ratio %v > 2", inc.Radius()/ropt)
			}
			// Lemma 3: δ/2 ≤ ropt ≤ γ.
			if inc.Delta/2 > ropt+1e-9 || ropt > inc.Radius()+1e-9 {
				t.Fatalf("Lemma 3 violated: δ=%v γ=%v ropt=%v", inc.Delta, inc.Radius(), ropt)
			}

			fast0, err := s.AppFast(q, k, 0)
			if err != nil {
				t.Fatalf("AppFast: %v", err)
			}
			validateCommunity(t, g, fast0, q, k)
			if math.Abs(fast0.Delta-inc.Delta) > 1e-6 {
				t.Fatalf("AppFast(0) δ=%v differs from AppInc δ=%v", fast0.Delta, inc.Delta)
			}

			for _, epsF := range []float64{0.5, 2.0} {
				fast, err := s.AppFast(q, k, epsF)
				if err != nil {
					t.Fatalf("AppFast(%v): %v", epsF, err)
				}
				validateCommunity(t, g, fast, q, k)
				if ropt > 1e-12 && fast.Radius() > (2+epsF)*ropt+1e-9 {
					t.Fatalf("AppFast(%v) ratio %v > %v", epsF, fast.Radius()/ropt, 2+epsF)
				}
			}

			for _, epsA := range []float64{0.1, 0.5, 0.9} {
				acc, err := s.AppAcc(q, k, epsA)
				if err != nil {
					t.Fatalf("AppAcc(%v): %v", epsA, err)
				}
				validateCommunity(t, g, acc, q, k)
				if ropt > 1e-12 && acc.Radius() > (1+epsA)*ropt+1e-7 {
					t.Fatalf("AppAcc(%v) ratio %v > %v (seed %d q=%d k=%d)",
						epsA, acc.Radius()/ropt, 1+epsA, seed, q, k)
				}
			}
		}
	}
}

func TestExactRadiusMonotoneInK(t *testing.T) {
	g := clusteredGraph(9, 4, 9, 20)
	s := NewSearcher(g)
	q := graph.V(0)
	prev := -1.0
	for k := 2; k <= s.CoreNumber(q); k++ {
		res, err := s.Exact(q, k)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		if res.Radius() < prev-1e-9 {
			t.Fatalf("radius decreased from %v to %v at k=%d", prev, res.Radius(), k)
		}
		prev = res.Radius()
	}
}

func TestThetaSACMonotone(t *testing.T) {
	g := clusteredGraph(11, 5, 7, 25)
	s := NewSearcher(g)
	q := graph.V(0)
	k := 3
	if s.CoreNumber(q) < k {
		t.Skip("fixture lacks a 3-core at q")
	}
	feasibleAt := func(theta float64) bool {
		_, err := s.ThetaSAC(q, k, theta)
		return err == nil
	}
	// Once feasible, staying feasible as θ grows.
	was := false
	for _, theta := range []float64{0.001, 0.01, 0.05, 0.2, 0.5, 1.5} {
		now := feasibleAt(theta)
		if was && !now {
			t.Fatalf("θ-SAC feasibility not monotone at θ=%v", theta)
		}
		was = was || now
	}
	if !was {
		t.Fatal("θ-SAC never feasible even at θ=1.5 on unit-square data")
	}
}

func TestResultHelpers(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	res, err := s.Exact(vQ, 2)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 3 {
		t.Fatalf("Size = %d", res.Size())
	}
	if !res.Contains(vC) || res.Contains(vE) {
		t.Fatal("Contains broken")
	}
	if res.Stats.Elapsed <= 0 {
		t.Fatal("Elapsed not stamped")
	}
	if res.K != 2 || res.Query != vQ {
		t.Fatalf("metadata wrong: %+v", res)
	}
}

func TestSearcherClone(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	c := s.Clone()
	r1, err := s.Exact(vQ, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Exact(vQ, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !membersEqual(r1.Members, r2.Members...) {
		t.Fatal("clone returns different result")
	}
}

func TestStructureString(t *testing.T) {
	if StructureKCore.String() != "k-core" || StructureKTruss.String() != "k-truss" {
		t.Fatal("Structure.String broken")
	}
	if Structure(9).String() == "" {
		t.Fatal("unknown structure string empty")
	}
}

func TestKTrussStructure(t *testing.T) {
	// Two 4-cliques, one tight around q, one farther; plus noise edges.
	b := graph.NewBuilder(9)
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 4; j++ {
			b.AddEdge(graph.V(i), graph.V(j))
			b.AddEdge(graph.V(i+4), graph.V(j+4))
		}
	}
	b.AddEdge(0, 4) // bridge
	b.AddEdge(3, 8) // pendant
	// Clique 0-3 near origin, clique 4-7 far away, vertex 8 nearby.
	for i := 0; i < 4; i++ {
		b.SetLoc(graph.V(i), geom.Point{X: 0.1 + 0.01*float64(i), Y: 0.1})
		b.SetLoc(graph.V(i+4), geom.Point{X: 0.9, Y: 0.9 - 0.01*float64(i)})
	}
	b.SetLoc(8, geom.Point{X: 0.12, Y: 0.11})
	g := b.Build()

	s := NewSearcherWithStructure(g, StructureKTruss)
	res, err := s.Exact(0, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !membersEqual(res.Members, 0, 1, 2, 3) {
		t.Fatalf("4-truss SAC = %v, want the near clique", res.Members)
	}
	// Approximations agree on this clean instance.
	for _, run := range []func() (*Result, error){
		func() (*Result, error) { return s.AppInc(0, 4) },
		func() (*Result, error) { return s.AppFast(0, 4, 0) },
		func() (*Result, error) { return s.AppAcc(0, 4, 0.5) },
		func() (*Result, error) { return s.ExactPlus(0, 4, 0.3) },
	} {
		r, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if !membersEqual(r.Members, 0, 1, 2, 3) {
			t.Fatalf("truss approx = %v, want the near clique", r.Members)
		}
	}
	// No 5-truss exists.
	if _, err := s.Exact(0, 5); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("5-truss err = %v", err)
	}
	// k=2 with truss metric: nearest-neighbor pair.
	r, err := s.Exact(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Members) != 2 {
		t.Fatalf("truss k=2 = %v", r.Members)
	}
}

func TestAppAccDegenerateColocated(t *testing.T) {
	// A triangle whose vertices share one location: γ = 0, optimal trivially.
	b := graph.NewBuilder(3)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	for v := 0; v < 3; v++ {
		b.SetLoc(graph.V(v), geom.Point{X: 0.5, Y: 0.5})
	}
	g := b.Build()
	s := NewSearcher(g)
	for _, run := range []func() (*Result, error){
		func() (*Result, error) { return s.AppAcc(0, 2, 0.5) },
		func() (*Result, error) { return s.ExactPlus(0, 2, 0.5) },
		func() (*Result, error) { return s.Exact(0, 2) },
	} {
		res, err := run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Radius() > 1e-9 {
			t.Fatalf("degenerate radius = %v", res.Radius())
		}
		if len(res.Members) != 3 {
			t.Fatalf("degenerate members = %v", res.Members)
		}
	}
}

func BenchmarkAppFastClustered(b *testing.B) {
	g := clusteredGraph(3, 20, 12, 200)
	s := NewSearcher(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.AppFast(0, 4, 0.5); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactPlusClustered(b *testing.B) {
	g := clusteredGraph(3, 20, 12, 200)
	s := NewSearcher(g)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ExactPlus(0, 4, 0.1); err != nil {
			b.Fatal(err)
		}
	}
}
