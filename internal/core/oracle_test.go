package core

import (
	"math/rand"
	"sort"
	"testing"

	"sacsearch/internal/graph"
	"sacsearch/internal/kcore"
)

// TestPrefixOracleMatchesPeeler compares the prefix-feasibility oracle
// against kcore.Peeler.KCoreWithin on every prefix of real candidate views,
// across random clustered graphs and several k. The oracle must agree as a
// set for every single prefix length — it is a memoization, not an
// approximation.
func TestPrefixOracleMatchesPeeler(t *testing.T) {
	for seed := int64(1); seed <= 10; seed++ {
		g := clusteredGraph(seed, 5, 8, 40)
		s := NewSearcher(g)
		peeler := kcore.NewPeeler(g)
		rnd := rand.New(rand.NewSource(seed * 7))
		for trial := 0; trial < 3; trial++ {
			q := graph.V(rnd.Intn(g.NumVertices()))
			k := 2 + rnd.Intn(3)
			if s.CoreNumber(q) < k {
				continue
			}
			cand, err := s.candidates(q, k)
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			vw := s.curView
			if vw == nil {
				t.Fatal("cached candidates did not set the current view")
			}
			for i := 0; i <= len(cand.verts); i++ {
				var oracle []graph.V
				if i > 0 {
					oracle = s.prefixFeasible(s.curEntry, vw, i, q, k)
				}
				want := peeler.KCoreWithin(cand.verts[:i], q, k)
				if (oracle == nil) != (want == nil) {
					t.Fatalf("seed %d q=%d k=%d prefix %d: oracle feasible=%v, peeler=%v",
						seed, q, k, i, oracle != nil, want != nil)
				}
				if want == nil {
					continue
				}
				a := append([]graph.V(nil), oracle...)
				b := append([]graph.V(nil), want...)
				sort.Slice(a, func(x, y int) bool { return a[x] < a[y] })
				sort.Slice(b, func(x, y int) bool { return b[x] < b[y] })
				if len(a) != len(b) {
					t.Fatalf("seed %d q=%d k=%d prefix %d: oracle %d members, peeler %d",
						seed, q, k, i, len(a), len(b))
				}
				for x := range a {
					if a[x] != b[x] {
						t.Fatalf("seed %d q=%d k=%d prefix %d: oracle %v != peeler %v",
							seed, q, k, i, a, b)
					}
				}
			}
		}
	}
}

// TestCachedMatchesUncachedAlgorithms runs every algorithm with caching on
// and off on the same graphs and requires identical members and radii —
// the cache fast paths must be behavior-preserving.
func TestCachedMatchesUncachedAlgorithms(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		g := clusteredGraph(seed+50, 6, 8, 35)
		cached := NewSearcher(g)
		uncached := NewSearcher(g)
		uncached.SetCandidateCaching(false)
		rnd := rand.New(rand.NewSource(seed * 13))
		for trial := 0; trial < 3; trial++ {
			q := graph.V(rnd.Intn(g.NumVertices()))
			k := 2 + rnd.Intn(3)
			for _, algo := range []struct {
				name string
				run  func(s *Searcher) (*Result, error)
			}{
				{"AppInc", func(s *Searcher) (*Result, error) { return s.AppInc(q, k) }},
				{"AppFast0", func(s *Searcher) (*Result, error) { return s.AppFast(q, k, 0) }},
				{"AppFast05", func(s *Searcher) (*Result, error) { return s.AppFast(q, k, 0.5) }},
				{"AppFastBisect", func(s *Searcher) (*Result, error) { return s.AppFastBisect(q, k, 0.5) }},
				{"AppAcc", func(s *Searcher) (*Result, error) { return s.AppAcc(q, k, 0.4) }},
				{"Exact", func(s *Searcher) (*Result, error) { return s.Exact(q, k) }},
				{"ExactPlus", func(s *Searcher) (*Result, error) { return s.ExactPlus(q, k, 0.2) }},
			} {
				rc, errC := algo.run(cached)
				ru, errU := algo.run(uncached)
				if (errC == nil) != (errU == nil) {
					t.Fatalf("seed %d %s q=%d k=%d: cached err %v, uncached err %v",
						seed, algo.name, q, k, errC, errU)
				}
				if errC != nil {
					continue
				}
				if !membersEqual(rc.Members, ru.Members...) {
					t.Fatalf("seed %d %s q=%d k=%d: cached members %v != uncached %v",
						seed, algo.name, q, k, rc.Members, ru.Members)
				}
				if rc.MCC != ru.MCC || rc.Delta != ru.Delta {
					t.Fatalf("seed %d %s q=%d k=%d: cached MCC/δ %v/%v != uncached %v/%v",
						seed, algo.name, q, k, rc.MCC, rc.Delta, ru.MCC, ru.Delta)
				}
			}
		}
	}
}
