package core

import (
	"sacsearch/internal/graph"
)

// Candidate-set cache. The candidate set X of a query (q, k) is the
// connected k-structure (k-ĉore, k-truss community or k-clique community)
// containing q — a function of the immutable topology only. Server and batch
// traffic is dominated by repeated queries into the same few communities
// (hot users re-query, nearby users share a community), so the Searcher
// memoizes membership per community and per k: every member vertex maps to
// the same entry, and any later query from any member skips the BFS /
// decomposition walk entirely.
//
// Locations are mutable (check-ins), so distances are NOT part of the
// membership cache. Each entry additionally keeps the sorted (verts, dists)
// view of its most recent query vertex, validated against the graph's
// location epoch: a repeated (q, k) query with no intervening SetLoc reuses
// the fully sorted candidate set at zero cost, while a moved location or a
// different query vertex recomputes distances in place (still without
// re-running the BFS).
//
// The cache belongs to one Searcher and inherits its no-concurrent-use
// contract; Clone starts with an empty cache.

// cacheKey identifies a (vertex, k) membership lookup.
type cacheKey struct {
	v graph.V
	k int32
}

// sortedView is a community's candidate set ordered by distance from one
// query vertex, validated by the location epoch it was computed at. The
// embedded oracle memoizes prefix-feasibility answers for this ordering
// (see oracle.go); it is rebuilt with the view.
type sortedView struct {
	q      graph.V
	epoch  uint64
	verts  []graph.V // ascending by distance from q
	dists  []float64 // parallel to verts
	oracle prefixOracle
}

// maxViewsPerEntry bounds the distance-sorted views kept per community —
// one per recent query vertex. Server traffic concentrates on a modest set
// of hot users per community; the views list is move-to-front, so the
// hottest stay resident and the lookup scan stays short in practice (hot
// vertices are found in the first few slots).
const maxViewsPerEntry = 32

// cacheEntry is one community's cached state. members is nil for a negative
// entry (q has no feasible community at this k); negative entries are keyed
// only by the query vertex itself.
type cacheEntry struct {
	members []graph.V // immutable after store; discovery (BFS) order

	// Distance-sorted views of recent query vertices, most recent first.
	views []sortedView

	// Induced-subgraph CSR over members, in local ids (positions in
	// members), built lazily on the first feasibility check into the
	// community. Every candidate set an algorithm peels is a subset of
	// members, so restricted k-core checks can walk this dense, cross-
	// community-edge-free adjacency instead of the global CSR — the
	// feasibility probes of the binary searches are the hot path's hottest
	// loop. adjOff is nil until built.
	adjOff   []int32
	adjLocal []int32
}

// buildInduced materializes the induced adjacency. localOf must already map
// every member to its local id, with valid marking membership.
func (e *cacheEntry) buildInduced(g *graph.Graph, localOf []int32, valid *graph.Marker) {
	n := len(e.members)
	e.adjOff = make([]int32, n+1)
	for i, v := range e.members {
		d := int32(0)
		for _, u := range g.Neighbors(v) {
			if valid.Has(u) {
				d++
			}
		}
		e.adjOff[i+1] = e.adjOff[i] + d
	}
	e.adjLocal = make([]int32, e.adjOff[n])
	cursor := int32(0)
	for _, v := range e.members {
		for _, u := range g.Neighbors(v) {
			if valid.Has(u) {
				e.adjLocal[cursor] = localOf[u]
				cursor++
			}
		}
	}
}

// maxCachedVertices bounds the total member slots held by one Searcher's
// cache. When a store would exceed it, the whole cache is dropped — eviction
// is all-or-nothing because entries are shared by every member vertex and
// per-entry removal would need reverse indexes the common case never uses.
const maxCachedVertices = 1 << 20

// candCache memoizes community membership per (member vertex, k).
type candCache struct {
	index    map[cacheKey]*cacheEntry
	vertices int // Σ len(members) over distinct entries
}

// lookup returns the entry covering (v, k), if any.
func (c *candCache) lookup(v graph.V, k int) (*cacheEntry, bool) {
	if c.index == nil {
		return nil, false
	}
	e, ok := c.index[cacheKey{v, int32(k)}]
	return e, ok
}

// store records members as the community of (q, k). members == nil records a
// negative entry for q alone. The slice is retained; callers must not
// mutate it afterwards.
//
// fanout keys the entry by every member, so any later query from the same
// community hits it. That is sound only when communities partition vertices
// per k — true for k-core and k-truss (both are connected components of a
// fixed subgraph) but NOT for k-clique percolation, where communities
// overlap at shared vertices; overlapping structures must pass fanout=false
// so the entry is keyed by q alone.
func (c *candCache) store(q graph.V, k int, members []graph.V, fanout bool) *cacheEntry {
	if c.index == nil {
		c.index = make(map[cacheKey]*cacheEntry)
	}
	if c.vertices+len(members) > maxCachedVertices {
		c.index = make(map[cacheKey]*cacheEntry)
		c.vertices = 0
	}
	e := &cacheEntry{members: members}
	if members == nil || !fanout {
		c.index[cacheKey{q, int32(k)}] = e
	} else {
		for _, v := range members {
			c.index[cacheKey{v, int32(k)}] = e
		}
	}
	c.vertices += len(members)
	return e
}

// viewFor returns the sorted-view slot for query vertex q, moved to the
// front of the entry's view list. ok reports whether the slot already holds
// a view for q that is current at epoch; when false the caller must fill
// verts/dists (backing storage in the slot is reusable) and stamp epoch.
func (e *cacheEntry) viewFor(q graph.V, epoch uint64) (vw *sortedView, ok bool) {
	for i := range e.views {
		if e.views[i].q == q {
			v := e.views[i]
			copy(e.views[1:i+1], e.views[:i])
			e.views[0] = v
			return &e.views[0], v.epoch == epoch
		}
	}
	// Not present: recycle the tail slot (evicting its owner when full) and
	// move it to the front.
	if len(e.views) < maxViewsPerEntry {
		e.views = append(e.views, sortedView{})
	}
	v := e.views[len(e.views)-1]
	copy(e.views[1:], e.views[:len(e.views)-1])
	v.q = q
	v.oracle.built = false
	e.views[0] = v
	return &e.views[0], false
}

// clear drops every entry.
func (c *candCache) clear() {
	c.index = nil
	c.vertices = 0
}

// entries returns the number of distinct cached communities (negative
// entries included once per vertex they are keyed by).
func (c *candCache) entries() int {
	seen := make(map[*cacheEntry]struct{}, len(c.index))
	for _, e := range c.index {
		seen[e] = struct{}{}
	}
	return len(seen)
}
