package subscribe

import (
	"encoding/json"
	"sync"

	"sacsearch/internal/snapshot"
	"sacsearch/internal/telemetry"
)

// Feed event kinds on the /v1/shard/watch wire.
const (
	KindPub    = "pub"    // one publication's change summary
	KindResync = "resync" // the watcher's view is stale: re-evaluate everything
)

// WatchJSON is the payload of one feed event: the vertices and edges one
// published snapshot changed. A Resync frame means the change history is
// unknown (fresh attach, a resume gap, or an engine swap after a replica
// resync) and every derived answer must be recomputed.
type WatchJSON struct {
	Seq      uint64     `json:"seq"`
	SnapSeq  uint64     `json:"snapSeq,omitempty"`
	Resync   bool       `json:"resync,omitempty"`
	Checkins []int64    `json:"checkins,omitempty"`
	Edges    [][2]int64 `json:"edges,omitempty"`
}

// Feed is a shard's publication firehose: every published snapshot becomes
// one compact change-summary event fanned to attached watchers (routers)
// over SSE, with the same ring/resume/shed machinery as subscription
// streams. It is the raw signal a router's own invalidation gates run on.
type Feed struct {
	ringLen   int
	streamBuf int
	sheds     *telemetry.Counter

	mu      sync.Mutex
	ring    []Event
	nextSeq uint64
	streams map[*Stream]struct{}
	closed  bool
}

// NewFeed builds a publication feed; opt supplies ring and buffer sizes
// (metrics feed only the shed counter — evaluation metrics belong to the
// router consuming the feed).
func NewFeed(opt Options) *Feed {
	return &Feed{
		ringLen:   opt.ringLen(),
		streamBuf: opt.streamBuf(),
		sheds: opt.Metrics.Counter("sac_shard_watch_sheds_total",
			"Shard-watch streams dropped for falling more than one buffer behind."),
		streams: make(map[*Stream]struct{}),
	}
}

// Notify is the engine's post-publish hook: it summarizes one publication
// (check-ins deduplicated, edges verbatim) into a feed event. A nil events
// slice — an engine swap after a replica resync — becomes a resync frame.
func (f *Feed) Notify(snap *snapshot.Snap, events []snapshot.AppliedEvent) {
	var payload WatchJSON
	if snap != nil {
		payload.SnapSeq = snap.Seq()
	}
	if events == nil {
		payload.Resync = true
	} else {
		seen := make(map[int64]struct{}, len(events))
		for i := range events {
			ev := &events[i]
			if ev.Checkin {
				v := int64(ev.V)
				if _, dup := seen[v]; !dup {
					seen[v] = struct{}{}
					payload.Checkins = append(payload.Checkins, v)
				}
			} else {
				payload.Edges = append(payload.Edges, [2]int64{int64(ev.U), int64(ev.W)})
			}
		}
	}
	kind := KindPub
	if payload.Resync {
		kind = KindResync
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	if f.nextSeq == 0 {
		f.nextSeq = 1
	}
	payload.Seq = f.nextSeq
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	ev := Event{Seq: f.nextSeq, Kind: kind, Data: data}
	f.nextSeq++
	f.ring = append(f.ring, ev)
	if len(f.ring) > f.ringLen {
		copy(f.ring, f.ring[len(f.ring)-f.ringLen:])
		f.ring = f.ring[:f.ringLen]
	}
	fanout(f.streams, ev, f.sheds)
}

// Attach adds a watcher. The replay is either the ring tail after a
// resumable Last-Event-ID, or a single synthesized resync frame telling the
// watcher its view (if any) is stale.
func (f *Feed) Attach(lastEventID uint64, hasLast bool) (*Stream, []Event, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return nil, nil, ErrClosed
	}
	st := newStream(f.streamBuf)
	f.streams[st] = struct{}{}
	var latest uint64
	if f.nextSeq > 0 {
		latest = f.nextSeq - 1
	}
	if hasLast && lastEventID == latest {
		return st, nil, nil
	}
	if hasLast && lastEventID < latest && len(f.ring) > 0 && f.ring[0].Seq <= lastEventID+1 {
		tail := f.ring[lastEventID+1-f.ring[0].Seq:]
		replay := make([]Event, len(tail))
		copy(replay, tail)
		return st, replay, nil
	}
	data, _ := json.Marshal(WatchJSON{Seq: latest, Resync: true})
	return st, []Event{{Seq: latest, Kind: KindResync, Data: data}}, nil
}

// Detach removes a watcher stream.
func (f *Feed) Detach(st *Stream) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.streams, st)
}

// Close drains the feed: every watcher gets a terminal bye and its stream
// is closed; later Notify calls are dropped.
func (f *Feed) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.closed {
		return
	}
	f.closed = true
	if f.nextSeq == 0 {
		f.nextSeq = 1
	}
	data, _ := json.Marshal(ByeJSON{Reason: "server draining"})
	ev := Event{Seq: f.nextSeq, Kind: KindBye, Data: data}
	f.nextSeq++
	for st := range f.streams {
		if !st.shed {
			select {
			case st.C <- ev:
			default:
			}
		}
		close(st.C)
	}
	f.streams = make(map[*Stream]struct{})
}
