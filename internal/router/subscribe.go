package router

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"sync"
	"time"

	"sacsearch/client"
	"sacsearch/internal/core"
	"sacsearch/internal/server"
	"sacsearch/internal/subscribe"
)

// Router-held standing queries. The router serves the same GET /v1/subscribe
// contract as a single server, but its invalidation signal is the shards'
// publication firehoses (GET /v1/shard/watch): one watcher per shard tails
// the feed (failing over across the shard's endpoints), and a dispatcher
// gates the registered subscriptions against the merged change summaries.
//
// The router cannot scan global core numbers the way a single engine can,
// so its gate is coarser but still sound: any edge event anywhere
// re-evaluates everything (topology changes are what reshape candidate
// sets), while check-ins re-evaluate only subscriptions whose gathered
// candidate superset — the certified shard's expansion, or the assembled
// path's collected vertex set — contains the moved vertex. θ-SAC always
// re-evaluates; a resync frame (watcher reconnected with a gap, or a shard
// re-synced) re-evaluates everything. Evaluations reuse the certified /
// assembled routing paths, so a standing query's answers are exactly what
// /v1/query would have returned at the same moment.

// routeGathered answers one query like route, additionally returning the
// gathered watch set: vertex ids known to cover the candidate set X
// (nil = unknown; callers must then treat every check-in as relevant).
func (rt *Router) routeGathered(ctx context.Context, cq core.Query) (*server.QueryResponse, []int64, error) {
	spec, _ := core.LookupAlgo(cq.Algo)
	if spec.Name == "theta" {
		rt.queryPath.With("theta").Inc()
		resp, err := rt.routeTheta(ctx, cq)
		return resp, nil, err
	}
	owner := rt.m.OwnerOf(cq.Q)
	lctx, span := rt.leg(ctx, "search", owner)
	verdict, err := rt.sets[owner].ShardSearch(lctx, toClientQuery(cq))
	span.End()
	if err != nil {
		return nil, nil, &legFailure{owner, err}
	}
	if verdict.Contained {
		rt.queryPath.With("certified").Inc()
		if verdict.NoCommunity {
			return nil, nil, core.ErrNoCommunity
		}
		if verdict.Result == nil {
			return nil, nil, &legFailure{owner, errors.New("contained verdict carried no result")}
		}
		resp := fromClientResult(verdict.Result)
		// Contained means the whole candidate set lives on the owner; one
		// expansion round fetches it for the watch set. A failed expansion
		// degrades to watch-everything, never to a missed invalidation.
		ectx, espan := rt.leg(ctx, "expand", owner)
		exp, eerr := rt.sets[owner].ShardExpand(ectx, cq.K, []int64{int64(cq.Q)})
		espan.End()
		var watch []int64
		if eerr == nil {
			watch = make([]int64, 0, len(exp.Members))
			for _, m := range exp.Members {
				watch = append(watch, m.V)
			}
		}
		return &resp, watch, nil
	}
	rt.queryPath.With("assembled").Inc()
	return rt.routeAssembledGathered(ctx, cq, owner)
}

// maxPendCheckins bounds the coalesced check-in set between dispatch
// rounds; past it the round degrades to evaluate-everything.
const maxPendCheckins = 4096

// rpend is the change summary coalesced between router dispatch rounds.
type rpend struct {
	has      bool // any feed event arrived
	reg      bool // a registration arrived
	full     bool // resync (or overflow): evaluate everything
	topo     bool // at least one edge event
	checkins map[int64]struct{}
	at       time.Time
}

// rgate is the router's per-subscription gate state (Sub.Gate), owned by
// the dispatch loop.
type rgate struct {
	needsInit   bool
	forceEval   bool
	alwaysEval  bool // θ-SAC
	noCommunity bool
	watch       map[int64]struct{} // candidate superset; nil = unknown
}

// routerSubs drives the router's standing queries.
type routerSubs struct {
	rt  *Router
	hub *subscribe.Hub

	mu   sync.Mutex
	pend rpend

	kick chan struct{}
	stop chan struct{}
	done chan struct{}

	// Watchers start with the first registration and run until Drain.
	watchOnce sync.Once
	watchWG   sync.WaitGroup
	ctx       context.Context
	cancel    context.CancelFunc

	closeOnce sync.Once
}

func newRouterSubs(rt *Router) *routerSubs {
	rs := &routerSubs{
		rt: rt,
		hub: subscribe.NewHub(subscribe.Options{
			Metrics:          rt.cfg.Metrics,
			MaxSubscriptions: rt.cfg.MaxSubscriptions,
		}),
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	rs.ctx, rs.cancel = context.WithCancel(context.Background())
	go rs.dispatchLoop()
	return rs
}

func (rs *routerSubs) logger() *slog.Logger { return rs.rt.cfg.logger() }

func (rs *routerSubs) kickNow() {
	select {
	case rs.kick <- struct{}{}:
	default:
	}
}

// register creates the subscription and lazily starts the shard watchers.
func (rs *routerSubs) register(id string, cq core.Query, alwaysEval bool) (*subscribe.Sub, error) {
	sub, err := rs.hub.Register(id, cq)
	if err != nil {
		return nil, err
	}
	sub.Gate = &rgate{needsInit: true, alwaysEval: alwaysEval}
	rs.watchOnce.Do(func() {
		for s := 0; s < rs.rt.m.Shards; s++ {
			rs.watchWG.Add(1)
			go rs.watchShard(s)
		}
	})
	rs.mu.Lock()
	rs.pend.reg = true
	rs.mu.Unlock()
	rs.kickNow()
	return sub, nil
}

// note merges one feed event into the pending summary.
func (rs *routerSubs) note(ev client.WatchEvent) {
	rs.mu.Lock()
	rs.pend.has = true
	if rs.pend.at.IsZero() {
		rs.pend.at = time.Now()
	}
	if ev.Resync {
		rs.pend.full = true
		rs.pend.checkins = nil
	}
	if len(ev.Edges) > 0 {
		rs.pend.topo = true
	}
	if !rs.pend.full && len(ev.Checkins) > 0 {
		if rs.pend.checkins == nil {
			rs.pend.checkins = make(map[int64]struct{}, len(ev.Checkins))
		}
		for _, v := range ev.Checkins {
			rs.pend.checkins[v] = struct{}{}
		}
		if len(rs.pend.checkins) > maxPendCheckins {
			rs.pend.full = true
			rs.pend.checkins = nil
		}
	}
	rs.mu.Unlock()
	rs.kickNow()
}

// watchShard tails one shard's publication feed, rotating across the
// shard's endpoints on failure. Feed sequence numbers are per-endpoint, so
// a rotation drops the resume state — the new endpoint's synthesized
// resync frame then forces a full re-evaluation rather than risking a
// missed invalidation.
func (rs *routerSubs) watchShard(s int) {
	defer rs.watchWG.Done()
	clients := rs.rt.sets[s].Clients()
	var lastID uint64
	hasLast := false
	lastEndpoint := -1
	next := 0
	backoff := 100 * time.Millisecond
	for rs.ctx.Err() == nil {
		i := next % len(clients)
		next++
		if i != lastEndpoint {
			hasLast = false
		}
		ws, err := clients[i].ShardWatch(rs.ctx, lastID, hasLast)
		if err != nil {
			select {
			case <-rs.ctx.Done():
				return
			case <-time.After(backoff):
			}
			if backoff < 2*time.Second {
				backoff *= 2
			}
			continue
		}
		lastEndpoint = i
		backoff = 100 * time.Millisecond
		for ev := range ws.Events {
			if ev.Bye {
				break
			}
			rs.note(ev)
			lastID, hasLast = ev.Seq, true
		}
		ws.Close()
		next-- // prefer the same endpoint on reconnect (keeps resume state)
	}
}

func (rs *routerSubs) dispatchLoop() {
	defer close(rs.done)
	sweep := time.NewTicker(30 * time.Second)
	defer sweep.Stop()
	for {
		select {
		case <-rs.stop:
			return
		case <-sweep.C:
			rs.hub.Sweep()
			continue
		case <-rs.kick:
		}
		for {
			rs.mu.Lock()
			p := rs.pend
			rs.pend = rpend{}
			rs.mu.Unlock()
			if !p.has && !p.reg {
				break
			}
			rs.dispatch(p)
		}
	}
}

func (rs *routerSubs) dispatch(p rpend) {
	var evals []*subscribe.Sub
	for _, sub := range rs.hub.Snapshot() {
		g := sub.Gate.(*rgate)
		switch {
		case g.needsInit || g.forceEval:
			evals = append(evals, sub)
		case !p.has:
		case gateNeeds(g, p):
			evals = append(evals, sub)
		default:
			rs.hub.Skipped().Inc()
		}
	}
	if len(evals) == 0 {
		return
	}
	workers := runtime.GOMAXPROCS(0)
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for _, sub := range evals {
		wg.Add(1)
		sem <- struct{}{}
		go func(sub *subscribe.Sub) {
			defer wg.Done()
			defer func() { <-sem }()
			rs.evaluate(sub, p.at)
		}(sub)
	}
	wg.Wait()
}

// gateNeeds is the router's invalidation gate; see the file comment above
// for the soundness argument.
func gateNeeds(g *rgate, p rpend) bool {
	if g.alwaysEval || p.full || p.topo {
		return true
	}
	// Only check-ins remain. A move reshapes the answer only if it touches
	// the candidate set, and a no-community verdict (q outside the global
	// k-core) is purely topological — moves cannot flip it.
	if g.noCommunity || len(p.checkins) == 0 {
		return false
	}
	if g.watch == nil {
		return true // candidate superset unknown: stay conservative
	}
	for v := range p.checkins {
		if _, ok := g.watch[v]; ok {
			return true
		}
	}
	return false
}

func (rs *routerSubs) evaluate(sub *subscribe.Sub, at time.Time) {
	g := sub.Gate.(*rgate)
	ctx, cancel := context.WithTimeout(rs.ctx, rs.rt.cfg.queryTimeout())
	defer cancel()
	rs.hub.Evals().Inc()
	resp, watch, err := rs.rt.routeGathered(ctx, sub.Query)
	var er subscribe.EvalResult
	switch {
	case err == nil:
		er.Members = resp.Members
		er.MCC = subscribe.Circle{X: resp.MCC.X, Y: resp.MCC.Y, R: resp.MCC.R}
		er.Delta = resp.Delta
	case errors.Is(err, core.ErrNoCommunity):
		er.NoCommunity = true
		watch = nil
	default:
		g.forceEval = true
		rs.logger().Warn("routed standing query evaluation failed; will retry on next publication",
			"sub", sub.ID, "q", int64(sub.Query.Q), "k", sub.Query.K, "err", err)
		return
	}
	g.needsInit, g.forceEval = false, false
	g.noCommunity = er.NoCommunity
	if watch != nil {
		g.watch = make(map[int64]struct{}, len(watch))
		for _, v := range watch {
			g.watch[v] = struct{}{}
		}
	} else {
		g.watch = nil
	}
	sub.Apply(&er, at)
}

// drain stops the watchers and dispatcher, flushes pending rounds, and
// closes every subscription stream with a terminal bye.
func (rs *routerSubs) drain() {
	rs.closeOnce.Do(func() {
		rs.cancel()
		rs.watchWG.Wait()
		close(rs.stop)
		<-rs.done
		rs.mu.Lock()
		p := rs.pend
		rs.pend = rpend{}
		rs.mu.Unlock()
		if p.has || p.reg {
			rs.dispatch(p)
		}
		rs.hub.CloseAll()
	})
}

// handleSubscribe serves GET /v1/subscribe on the router — the same wire
// contract as a single server's, evaluated through the routed paths.
func (rt *Router) handleSubscribe(w http.ResponseWriter, r *http.Request) {
	cq, err := server.ParseSubscribeQuery(r)
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	if err := rt.validateQuery(cq); err != nil {
		writeQueryError(w, r, err)
		return
	}
	spec, _ := core.LookupAlgo(cq.Algo)
	cq.Algo = spec.Name
	id := sanitizeRequestID(r.URL.Query().Get("id"))
	if raw := r.URL.Query().Get("id"); raw != "" && id == "" {
		writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "id",
			fmt.Sprintf("malformed subscription id %q", raw))
		return
	}
	lastID, hasLast := subscribe.ParseLastEventID(r)
	var sub *subscribe.Sub
	if id != "" {
		if existing, found := rt.subs.hub.Get(id); found {
			if !subscribe.SameQuery(existing.Query, cq) {
				writeError(w, r, http.StatusBadRequest, server.CodeInvalidArgument, "id",
					fmt.Sprintf("subscription %q is bound to a different query", id))
				return
			}
			sub = existing
		}
	} else {
		id = "sub-" + rt.newRequestID()
	}
	if sub == nil {
		if hasLast {
			writeError(w, r, http.StatusNotFound, server.CodeUnknownSubscription, "id",
				fmt.Sprintf("unknown subscription %q: resume window expired, subscribe fresh", id))
			return
		}
		sub, err = rt.subs.register(id, cq, spec.Name == "theta")
		switch {
		case err == nil:
		case err == subscribe.ErrLimit:
			w.Header().Set("Retry-After", "1")
			writeError(w, r, http.StatusTooManyRequests, server.CodeSubscriptionLimit, "",
				fmt.Sprintf("subscription limit reached (%d active)", rt.subs.hub.Active()))
			return
		default:
			w.Header().Set("Retry-After", "1")
			writeError(w, r, http.StatusServiceUnavailable, server.CodeNotReady, "",
				"subscriptions unavailable: "+err.Error())
			return
		}
	}
	st, replay, err := sub.Attach(lastID, hasLast)
	if err != nil {
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusServiceUnavailable, server.CodeNotReady, "", "router draining")
		return
	}
	defer sub.Detach(st)
	subscribe.ServeSSE(w, r, st, replay, rt.cfg.subscribeHeartbeat())
}

// DrainSubscriptions flushes pending deltas, writes the terminal bye to
// every subscription stream, and stops the shard watchers. cmd/sacrouter
// calls it on SIGTERM before http.Server.Shutdown.
func (rt *Router) DrainSubscriptions() { rt.subs.drain() }
