package graph

import (
	"bytes"
	"math/rand"
	"testing"

	"sacsearch/internal/geom"
)

// randomGraphEdges builds a random graph plus the edge set it contains.
func randomGraphEdges(n, m int, seed int64) (*Graph, map[[2]V]bool) {
	rnd := rand.New(rand.NewSource(seed))
	b := NewBuilder(n)
	edges := map[[2]V]bool{}
	for v := 0; v < n; v++ {
		b.SetLoc(V(v), geom.Point{X: rnd.Float64(), Y: rnd.Float64()})
	}
	for len(edges) < m {
		u, v := V(rnd.Intn(n)), V(rnd.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if edges[[2]V{u, v}] {
			continue
		}
		edges[[2]V{u, v}] = true
		b.AddEdge(u, v)
	}
	return b.Build(), edges
}

// rebuild constructs a fresh CSR graph from an edge set — the differential
// reference for the overlay.
func rebuild(n int, edges map[[2]V]bool, locs []geom.Point) *Graph {
	b := NewBuilder(n)
	for e := range edges {
		b.AddEdge(e[0], e[1])
	}
	for v, p := range locs {
		b.SetLoc(V(v), p)
	}
	return b.Build()
}

// requireSameTopology fails unless g and want have identical adjacency.
func requireSameTopology(t *testing.T, g, want *Graph) {
	t.Helper()
	if g.NumVertices() != want.NumVertices() || g.NumEdges() != want.NumEdges() {
		t.Fatalf("n/m mismatch: got %d/%d want %d/%d",
			g.NumVertices(), g.NumEdges(), want.NumVertices(), want.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		got, ref := g.Neighbors(V(v)), want.Neighbors(V(v))
		if len(got) != len(ref) {
			t.Fatalf("vertex %d: %v != %v", v, got, ref)
		}
		for i := range got {
			if got[i] != ref[i] {
				t.Fatalf("vertex %d: %v != %v", v, got, ref)
			}
		}
		if g.Degree(V(v)) != len(ref) {
			t.Fatalf("vertex %d: Degree %d != %d", v, g.Degree(V(v)), len(ref))
		}
	}
}

func TestAddRemoveEdgeBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	g := b.Build()

	if g.TopoEpoch() != 0 {
		t.Fatalf("fresh graph TopoEpoch = %d", g.TopoEpoch())
	}
	if !g.AddEdge(2, 3) || !g.HasEdge(2, 3) || !g.HasEdge(3, 2) {
		t.Fatal("AddEdge(2,3) did not take")
	}
	if g.NumEdges() != 3 || g.TopoEpoch() != 1 {
		t.Fatalf("after add: m=%d epoch=%d", g.NumEdges(), g.TopoEpoch())
	}
	// Duplicates and self-loops are no-ops that leave the epoch alone.
	if g.AddEdge(2, 3) || g.AddEdge(3, 2) || g.AddEdge(1, 1) {
		t.Fatal("duplicate/self-loop AddEdge returned true")
	}
	if g.TopoEpoch() != 1 {
		t.Fatalf("no-op add bumped epoch to %d", g.TopoEpoch())
	}
	if !g.RemoveEdge(0, 1) || g.HasEdge(0, 1) || g.HasEdge(1, 0) {
		t.Fatal("RemoveEdge(0,1) did not take")
	}
	if g.RemoveEdge(0, 1) || g.RemoveEdge(0, 3) {
		t.Fatal("removing a missing edge returned true")
	}
	if g.NumEdges() != 2 || g.TopoEpoch() != 2 {
		t.Fatalf("after remove: m=%d epoch=%d", g.NumEdges(), g.TopoEpoch())
	}
	// Adjacency rows stay sorted through churn.
	for v := 0; v < 4; v++ {
		nb := g.Neighbors(V(v))
		for i := 1; i < len(nb); i++ {
			if nb[i-1] >= nb[i] {
				t.Fatalf("vertex %d adjacency unsorted: %v", v, nb)
			}
		}
	}
}

func TestAddEdgeOutOfRangePanics(t *testing.T) {
	g := NewBuilder(3).Build()
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range AddEdge did not panic")
		}
	}()
	g.AddEdge(0, 5)
}

// TestEdgeChurnDifferential drives a randomized insert/remove sequence and
// checks, at several points along the way, that the overlaid graph matches a
// graph rebuilt from scratch over the same edge set.
func TestEdgeChurnDifferential(t *testing.T) {
	const n, m0, ops = 60, 150, 600
	rnd := rand.New(rand.NewSource(42))
	g, edges := randomGraphEdges(n, m0, 7)

	for step := 1; step <= ops; step++ {
		u, v := V(rnd.Intn(n)), V(rnd.Intn(n))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		key := [2]V{u, v}
		if edges[key] && rnd.Float64() < 0.5 {
			if !g.RemoveEdge(u, v) {
				t.Fatalf("step %d: RemoveEdge(%d,%d) = false for present edge", step, u, v)
			}
			delete(edges, key)
		} else if !edges[key] {
			if !g.AddEdge(u, v) {
				t.Fatalf("step %d: AddEdge(%d,%d) = false for absent edge", step, u, v)
			}
			edges[key] = true
		}
		if step%97 == 0 || step == ops {
			requireSameTopology(t, g, rebuild(n, edges, g.Locs()))
		}
	}
}

// TestCompactPreservesTopology pins that compaction is representation-only:
// same adjacency, same epoch, empty delta layer.
func TestCompactPreservesTopology(t *testing.T) {
	g, edges := randomGraphEdges(40, 80, 3)
	rnd := rand.New(rand.NewSource(9))
	for i := 0; i < 50; i++ {
		u, v := V(rnd.Intn(40)), V(rnd.Intn(40))
		if u == v {
			continue
		}
		if u > v {
			u, v = v, u
		}
		if g.AddEdge(u, v) {
			edges[[2]V{u, v}] = true
		}
	}
	if g.PatchedVertices() == 0 {
		t.Fatal("churn left no patched vertices")
	}
	epoch := g.TopoEpoch()
	g.Compact()
	if g.PatchedVertices() != 0 {
		t.Fatalf("Compact left %d patched vertices", g.PatchedVertices())
	}
	if g.TopoEpoch() != epoch {
		t.Fatalf("Compact bumped epoch %d -> %d", epoch, g.TopoEpoch())
	}
	requireSameTopology(t, g, rebuild(40, edges, g.Locs()))
	// Further churn after compaction still works.
	if !g.RemoveEdge(g.Neighbors(0)[0], 0) {
		t.Fatal("RemoveEdge after Compact failed")
	}
}

// TestAutoCompaction checks that heavy churn folds the delta layer back into
// the CSR on its own.
func TestAutoCompaction(t *testing.T) {
	const n = 100 // > compactMinPatched vertices will be patched
	b := NewBuilder(n)
	g := b.Build()
	for v := 1; v < n; v++ {
		g.AddEdge(0, V(v))
	}
	if g.PatchedVertices() > compactMinPatched {
		t.Fatalf("auto-compaction never fired: %d patched", g.PatchedVertices())
	}
	if g.NumEdges() != n-1 {
		t.Fatalf("m = %d, want %d", g.NumEdges(), n-1)
	}
}

// TestCloneIsolatesTopology verifies clones diverge under edge churn in
// either direction.
func TestCloneIsolatesTopology(t *testing.T) {
	g, _ := randomGraphEdges(20, 30, 5)
	g.AddEdge(0, 19) // ensure a patched row exists before cloning
	c := g.Clone()
	if !c.HasEdge(0, 19) {
		t.Fatal("clone lost patched edge")
	}
	epoch := c.TopoEpoch()
	g.RemoveEdge(0, 19)
	if !c.HasEdge(0, 19) {
		t.Fatal("mutating the original leaked into the clone")
	}
	if c.TopoEpoch() != epoch || g.TopoEpoch() == epoch {
		t.Fatalf("epochs not independent: g=%d c=%d base=%d", g.TopoEpoch(), c.TopoEpoch(), epoch)
	}
	c.AddEdge(1, 19)
	if g.HasEdge(1, 19) {
		t.Fatal("mutating the clone leaked into the original")
	}
}

// TestWriteBinaryWithDeltas round-trips a graph whose topology lives partly
// in the delta layer — without mutating it (WriteBinary is a pure reader).
func TestWriteBinaryWithDeltas(t *testing.T) {
	g, edges := randomGraphEdges(25, 40, 11)
	g.AddEdge(0, 24)
	edges[[2]V{0, 24}] = true
	patched := g.PatchedVertices()
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	if g.PatchedVertices() != patched {
		t.Fatalf("WriteBinary mutated the graph: %d patched vertices, had %d", g.PatchedVertices(), patched)
	}
	back, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	requireSameTopology(t, back, rebuild(25, edges, g.Locs()))
}

// TestNumVerticesSafeDuringCompaction pins the concurrency contract the
// server relies on: NumVertices (range checks, clone scratch sizing) may be
// read without the caller's lock even while churn triggers Compact, which
// replaces the offsets slice. Run with -race.
func TestNumVerticesSafeDuringCompaction(t *testing.T) {
	const n = 400 // big enough that auto-compaction fires repeatedly
	g := NewBuilder(n).Build()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 4000; i++ {
			if g.NumVertices() != n {
				panic("NumVertices changed")
			}
		}
	}()
	for v := 1; v < n; v++ {
		g.AddEdge(0, V(v))
		g.AddEdge(V(v), V((v+7)%n))
	}
	<-done
}
