package gen

import (
	"math/rand"
	"sort"

	"sacsearch/internal/graph"
)

// EdgeEvent is one friendship change at a point in time: an insertion
// (Insert = true) or a deletion. Times use the same fractional-day clock as
// Checkin, so the two streams interleave into one dynamic replay.
type EdgeEvent struct {
	U, V   graph.V
	Time   float64 // days since stream start
	Insert bool
}

// EdgeChurnConfig controls the synthetic friendship-churn stream.
type EdgeChurnConfig struct {
	Days       float64 // stream duration (matches the check-in stream's)
	Events     int     // total edge events to generate
	InsertFrac float64 // fraction of events that are insertions
}

// DefaultEdgeChurnConfig mirrors the observation that friendships churn far
// more slowly than locations: a few events per hundred check-ins, two thirds
// of them new ties (networks densify over time).
func DefaultEdgeChurnConfig() EdgeChurnConfig {
	return EdgeChurnConfig{Days: 900, Events: 500, InsertFrac: 0.66}
}

// EdgeChurn generates a time-sorted friendship event stream for g.
// Insertions prefer triadic closure — a new tie between two vertices sharing
// a friend, the dominant mechanism of social-network growth — with a uniform
// random fallback; deletions sample existing edges. Events are generated
// against g's current topology without applying them, so a replayed stream
// may contain occasional no-ops (re-inserting an edge a later event already
// restored); appliers treat those as benign, the way the server's /api/edge
// reports changed = false.
func EdgeChurn(g *graph.Graph, cfg EdgeChurnConfig, seed int64) []EdgeEvent {
	rnd := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	if n < 2 || cfg.Events <= 0 {
		return nil
	}
	out := make([]EdgeEvent, 0, cfg.Events)
	for len(out) < cfg.Events {
		ev := EdgeEvent{Time: rnd.Float64() * cfg.Days}
		if rnd.Float64() < cfg.InsertFrac {
			ev.Insert = true
			ev.U, ev.V = closablePair(g, rnd)
		} else {
			u := graph.V(rnd.Intn(n))
			nb := g.Neighbors(u)
			if len(nb) == 0 {
				continue
			}
			ev.U, ev.V = u, nb[rnd.Intn(len(nb))]
		}
		if ev.U == ev.V {
			continue
		}
		out = append(out, ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Time < out[j].Time })
	return out
}

// closablePair proposes a new edge, preferring a friend-of-friend pair.
func closablePair(g *graph.Graph, rnd *rand.Rand) (graph.V, graph.V) {
	n := g.NumVertices()
	for attempt := 0; attempt < 8; attempt++ {
		w := graph.V(rnd.Intn(n))
		nb := g.Neighbors(w)
		if len(nb) < 2 {
			continue
		}
		u := nb[rnd.Intn(len(nb))]
		v := nb[rnd.Intn(len(nb))]
		if u != v && !g.HasEdge(u, v) {
			return u, v
		}
	}
	// Fallback: uniform random non-edge.
	for attempt := 0; attempt < 8; attempt++ {
		u, v := graph.V(rnd.Intn(n)), graph.V(rnd.Intn(n))
		if u != v && !g.HasEdge(u, v) {
			return u, v
		}
	}
	return 0, 0 // dense or tiny graph; caller drops the self-pair
}
