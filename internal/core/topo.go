package core

import (
	"fmt"

	"sacsearch/internal/graph"
	"sacsearch/internal/kcore"
)

// Dynamic topology. A Searcher precomputes its structure decomposition, so
// mutating the graph's edge set out from under it (graph.AddEdge /
// graph.RemoveEdge directly) would leave stale core numbers behind. Edge
// updates therefore go through the Searcher: ApplyEdgeInsert and
// ApplyEdgeRemove mutate the graph AND incrementally repair the shared core
// decomposition (kcore.Maintainer), keeping maintenance cost proportional to
// the affected community instead of O(m).
//
// The decomposition slice is shared by every clone, so applying an update
// through any one searcher refreshes all workers drawn from the same pool;
// candidate caches self-invalidate on the next query via the graph's
// topology epoch. Updates follow the same locking discipline as SetLoc:
// callers must serialize them with ALL queries on ALL searchers over the
// graph (the server uses its write lock).

// ApplyEdgeInsert inserts the undirected edge {u, v} and incrementally
// updates the shared k-core decomposition. It reports whether the edge set
// changed (false for self-loops and already-present edges).
//
// Supported for the k-core and k-clique structure metrics. The k-truss
// metric precomputes truss numbers that have no incremental maintenance
// here, so k-truss searchers reject updates rather than serve stale results.
func (s *Searcher) ApplyEdgeInsert(u, v graph.V) (bool, error) {
	if err := s.checkEdgeUpdate(u, v); err != nil {
		return false, err
	}
	return s.maintainer().InsertEdge(u, v), nil
}

// ApplyEdgeRemove deletes the undirected edge {u, v} and incrementally
// updates the shared k-core decomposition. It reports whether the edge
// existed. Same structure-metric restrictions as ApplyEdgeInsert.
func (s *Searcher) ApplyEdgeRemove(u, v graph.V) (bool, error) {
	if err := s.checkEdgeUpdate(u, v); err != nil {
		return false, err
	}
	return s.maintainer().RemoveEdge(u, v), nil
}

// checkEdgeUpdate validates endpoints and the structure metric.
func (s *Searcher) checkEdgeUpdate(u, v graph.V) error {
	n := s.g.NumVertices()
	if u < 0 || int(u) >= n || v < 0 || int(v) >= n {
		return fmt.Errorf("core: edge (%d,%d) out of range [0,%d)", u, v, n)
	}
	if s.structure == StructureKTruss {
		return fmt.Errorf("core: dynamic topology is not supported with the %s metric", s.structure)
	}
	return nil
}

// maintainer lazily wraps the searcher's graph and shared core slice.
func (s *Searcher) maintainer() *kcore.Maintainer {
	if s.maint == nil {
		s.maint = kcore.NewMaintainer(s.g, s.cores)
	}
	return s.maint
}
