// Event recommendation (the paper's first motivating application): a
// Meetup-style service wants, for a set of active users, the friends who are
// both socially tight (k connections inside the group) and physically close
// right now — the user's SAC. Events proposed by SAC members get surfaced.
//
// The example generates a city-scale geo-social graph, picks the busiest
// users, finds each one's SAC with AppAcc, and prints the recommendation
// groups with their catchment radii.
//
//	go run ./examples/eventrec
package main

import (
	"context"
	"errors"
	"fmt"
	"log"

	"sacsearch"
)

func main() {
	// ~8k users, ~48k friendships, spatially clustered like check-in data.
	g := sacsearch.GenerateSocialGraph(8000, 48000, 2024)
	fmt.Printf("city graph: %d users, %d friendships, avg degree %.1f\n\n",
		g.NumVertices(), g.NumEdges(), g.AvgDegree())

	// Active users: well-connected people (core number ≥ 4), as the paper's
	// workloads do.
	active := sacsearch.QueryWorkload(g, 4, 8, 7)
	if len(active) == 0 {
		log.Fatal("no active users found")
	}

	s := sacsearch.NewSearcher(g)
	ctx := context.Background()
	const k = 4
	fmt.Printf("%-8s %-8s %-10s %-10s %s\n", "user", "group", "radius", "distPr", "suggestion")
	for _, u := range active {
		res, err := s.Search(ctx, sacsearch.Query{Algo: "appacc", Q: u, K: k, EpsA: sacsearch.Float(0.5)})
		if errors.Is(err, sacsearch.ErrNoCommunity) {
			fmt.Printf("%-8d no tight group right now\n", u)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		distPr := sacsearch.CommunityDistPr(g, res.Members, 1)
		suggestion := "walkable meetup"
		switch {
		case res.Radius() > 0.1:
			suggestion = "online event (group too spread)"
		case res.Radius() > 0.03:
			suggestion = "same-district venue"
		}
		fmt.Printf("%-8d %-8d %-10.4f %-10.4f %s\n",
			u, res.Size(), res.Radius(), distPr, suggestion)
	}

	// A θ-SAC comparison: with a fixed catchment the service must guess θ,
	// and guesses fail in both directions (Section 3's argument for SAC).
	u := active[0]
	fmt.Printf("\nfixed-catchment (θ-SAC) for user %d:\n", u)
	for _, theta := range []float64{0.001, 0.01, 0.1} {
		res, err := s.Search(ctx, sacsearch.Query{Algo: "theta", Q: u, K: k, Theta: sacsearch.Float(theta)})
		if errors.Is(err, sacsearch.ErrNoCommunity) {
			fmt.Printf("  θ=%-6g no group (θ too small)\n", theta)
			continue
		}
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  θ=%-6g group of %d in radius %.4f\n", theta, res.Size(), res.Radius())
	}
	fmt.Println("SAC search needs no θ: it returns the tightest group directly.")
}
