package exp

import (
	"context"
	"io"

	"sacsearch/internal/core"
	"sacsearch/internal/dynamic"
	"sacsearch/internal/gen"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// Figure 13 — adaptability to location changes: CJS and CAO decay as the
// time gap η between community snapshots grows (the paper reports CJS
// dropping to ≈75% after six hours and further with days).

// etaSweepDays is the Figure 13 x-axis.
var etaSweepDays = []float64{0.25, 0.5, 1, 3, 5, 7, 10, 15}

// Fig13Config extends Config with the dynamic-replay knobs.
type Fig13Config struct {
	Config
	Movers     int     // tracked query users (paper: 100)
	MinFriends int     // friend threshold for movers (paper: 20)
	Days       float64 // stream length in days
	SplitFrac  float64 // fraction of the stream used as warm-up (R1)
	// FastSearch replaces the paper's per-check-in Exact+ with AppFast(0.5)
	// — communities differ slightly but the decay shape is identical, and
	// quick runs finish in seconds instead of minutes.
	FastSearch bool
}

// DefaultFig13Config scales the paper's protocol to the quick workload.
func DefaultFig13Config() Fig13Config {
	return Fig13Config{
		Config:     DefaultConfig(),
		Movers:     20,
		MinFriends: 8,
		Days:       120,
		SplitFrac:  0.25,
	}
}

// Fig13 generates a check-in stream over the first configured dataset
// (Brightkite in the paper), replays it with Exact+ snapshots for the
// selected movers, and returns the CJS/CAO decay points.
func Fig13(cfg Fig13Config) ([]dynamic.DecayPoint, error) {
	name := cfg.Datasets[0]
	ds, _, err := loadWorkload(cfg.Config, name)
	if err != nil {
		return nil, err
	}
	g := ds.Graph
	ccfg := gen.DefaultCheckinConfig()
	ccfg.Days = cfg.Days
	checkins := gen.Checkins(g, ccfg, cfg.Seed+100)
	movers := gen.SelectMovers(g, checkins, cfg.MinFriends, cfg.Movers)

	s := core.NewSearcher(g)
	search := func(q graph.V, k int) ([]graph.V, geom.Circle, error) {
		var res *core.Result
		var err error
		if cfg.FastSearch {
			res, err = s.AppFast(q, k, 0.5)
		} else {
			res, err = s.ExactPlusDefault(q, k)
		}
		if err != nil {
			return nil, geom.Circle{}, err
		}
		return res.Members, res.MCC, nil
	}
	timelines, err := dynamic.Replay(context.Background(), g, checkins, movers, cfg.Days*cfg.SplitFrac, cfg.K, search)
	if err != nil {
		return nil, err
	}
	return dynamic.Decay(timelines, etaSweepDays), nil
}

func printFig13(w io.Writer, points []dynamic.DecayPoint) {
	fprintf(w, "%10s %10s %10s %8s\n", "eta(days)", "avg CJS", "avg CAO", "pairs")
	for _, p := range points {
		fprintf(w, "%10.2f %10.3f %10.3f %8d\n", p.EtaDays, p.CJS, p.CAO, p.Pairs)
	}
}

// Table 5 — parameter ranges and defaults, reproduced verbatim.

// Table5Row is one parameter line.
type Table5Row struct {
	Parameter string
	Range     string
	Default   string
}

// Table5 returns the parameter table (static: it documents the harness).
func Table5() []Table5Row {
	return []Table5Row{
		{"εF (AppFast)", "0.0, 0.5, 1.0, 1.5, 2.0", "0.5"},
		{"εA (AppAcc)", "0.01, 0.05, 0.1, 0.5, 0.9", "0.5"},
		{"k", "4, 7, 10, 13, 16", "4"},
		{"θ", "1e-6 … 1e-1", "1e-4"},
		{"n", "20%, 40%, 60%, 80%, 100%", "100%"},
	}
}

func printTable5(w io.Writer, rows []Table5Row) {
	fprintf(w, "%-14s %-28s %-8s\n", "parameter", "range", "default")
	for _, r := range rows {
		fprintf(w, "%-14s %-28s %-8s\n", r.Parameter, r.Range, r.Default)
	}
}

// Table 3 — algorithm overview (ratios and complexities), static.

// Table3Row is one algorithm line.
type Table3Row struct {
	Algo       string
	Ratio      string
	Complexity string
}

// Table3 returns the algorithm overview table.
func Table3() []Table3Row {
	return []Table3Row{
		{"Exact", "1", "O(m·n³)"},
		{"AppInc", "2", "O(m·n)"},
		{"AppFast", "2+εF", "O(m·min{n, log 1/εF}) (εF>0); O(m·n) (εF=0)"},
		{"AppAcc", "1+εA", "O(m/εA² · min{n, log 1/εA})"},
		{"Exact+", "1", "O(m/εA² · min{n, log 1/εA} + m·|F1|³)"},
	}
}

func printTable3(w io.Writer, rows []Table3Row) {
	fprintf(w, "%-10s %-8s %s\n", "algorithm", "ratio", "time complexity")
	for _, r := range rows {
		fprintf(w, "%-10s %-8s %s\n", r.Algo, r.Ratio, r.Complexity)
	}
}
