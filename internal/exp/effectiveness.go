package exp

import (
	"io"

	"sacsearch/internal/community"
	"sacsearch/internal/core"
	"sacsearch/internal/dataset"
	"sacsearch/internal/graph"
	"sacsearch/internal/metrics"
)

// Figure 9 — approximation ratios: theoretical versus measured. The paper
// finds actual ratios far below the theoretical guarantee (≈2.0 measured at
// a 4.0 guarantee for AppFast; ≤1.1 for AppAcc).

// Fig9Row is one (dataset, ε) point.
type Fig9Row struct {
	Dataset     string
	Eps         float64
	Theoretical float64
	Actual      float64 // mean measured radius / optimal radius
	Queries     int
}

// epsFSweep and epsASweep are the x-axes of Figure 9 (Table 5 ranges).
var (
	epsFSweep = []float64{0, 0.5, 1.0, 1.5, 2.0}
	epsASweep = []float64{0.01, 0.05, 0.1, 0.5, 0.9}
)

// Fig9AppFast measures AppFast's actual approximation ratio per εF.
func Fig9AppFast(cfg Config) ([]Fig9Row, error) {
	return fig9(cfg, epsFSweep, 2, func(s *core.Searcher, q graph.V, eps float64) (*core.Result, error) {
		return s.AppFast(q, cfg.K, eps)
	})
}

// Fig9AppAcc measures AppAcc's actual approximation ratio per εA.
func Fig9AppAcc(cfg Config) ([]Fig9Row, error) {
	return fig9(cfg, epsASweep, 1, func(s *core.Searcher, q graph.V, eps float64) (*core.Result, error) {
		return s.AppAcc(q, cfg.K, eps)
	})
}

func fig9(cfg Config, sweep []float64, base float64, run func(*core.Searcher, graph.V, float64) (*core.Result, error)) ([]Fig9Row, error) {
	var rows []Fig9Row
	for _, name := range cfg.Datasets {
		ds, qs, err := loadWorkload(cfg, name)
		if err != nil {
			return nil, err
		}
		s := core.NewSearcher(ds.Graph)
		// Ground truth per query via the exact algorithm.
		optimal := map[graph.V]float64{}
		for _, q := range qs {
			res, err := s.ExactPlusDefault(q, cfg.K)
			if err != nil {
				continue
			}
			optimal[q] = res.Radius()
		}
		for _, eps := range sweep {
			var ratios []float64
			for _, q := range qs {
				opt, ok := optimal[q]
				if !ok || opt <= 1e-12 {
					continue
				}
				res, err := run(s, q, eps)
				if err != nil {
					continue
				}
				ratios = append(ratios, res.Radius()/opt)
			}
			rows = append(rows, Fig9Row{
				Dataset:     name,
				Eps:         eps,
				Theoretical: base + eps,
				Actual:      metrics.Mean(ratios),
				Queries:     len(ratios),
			})
		}
	}
	return rows, nil
}

func printFig9(w io.Writer, rows []Fig9Row) {
	fprintf(w, "%-12s %8s %12s %10s %8s\n", "dataset", "eps", "theoretical", "actual", "queries")
	for _, r := range rows {
		fprintf(w, "%-12s %8.2f %12.2f %10.3f %8d\n", r.Dataset, r.Eps, r.Theoretical, r.Actual, r.Queries)
	}
}

// Figure 10 — spatial cohesiveness of SAC search versus Global [29],
// Local [7] and GeoModu [4]. The paper reports Global/Local radii 50×/20×
// larger than SAC search, GeoModu in between but with weak structure
// cohesiveness (average internal degree ≈ 2.2 / 1.1 for µ=1 / µ=2).

// Fig10Row is one (dataset, method) aggregate.
type Fig10Row struct {
	Dataset string
	Method  string
	Radius  float64 // mean MCC radius
	DistPr  float64 // mean average pairwise distance
	AvgDeg  float64 // mean internal degree (structure cohesiveness)
	Size    float64 // mean community size
	Found   int     // queries answered
}

// Fig10 runs the comparison. Methods returning nil communities for a query
// skip that query.
func Fig10(cfg Config) ([]Fig10Row, error) {
	var rows []Fig10Row
	for _, name := range cfg.Datasets {
		ds, qs, err := loadWorkload(cfg, name)
		if err != nil {
			return nil, err
		}
		g := ds.Graph
		sac := core.NewSearcher(g)
		base := community.NewSearcher(g)
		geo1 := community.RunGeoModu(g, 1)
		geo2 := community.RunGeoModu(g, 2)

		methods := []struct {
			name string
			run  func(q graph.V) []graph.V
		}{
			{"Global", func(q graph.V) []graph.V { return base.Global(q, cfg.K) }},
			{"Local", func(q graph.V) []graph.V { return base.Local(q, cfg.K) }},
			{"GeoModu(1)", func(q graph.V) []graph.V { return geo1.CommunityOf(q) }},
			{"GeoModu(2)", func(q graph.V) []graph.V { return geo2.CommunityOf(q) }},
			{"AppInc", sacMembers(func(q graph.V) (*core.Result, error) { return sac.AppInc(q, cfg.K) })},
			{"AppFast(0.5)", sacMembers(func(q graph.V) (*core.Result, error) { return sac.AppFast(q, cfg.K, 0.5) })},
			{"AppAcc(0.5)", sacMembers(func(q graph.V) (*core.Result, error) { return sac.AppAcc(q, cfg.K, 0.5) })},
			{"Exact+", sacMembers(func(q graph.V) (*core.Result, error) { return sac.ExactPlusDefault(q, cfg.K) })},
		}
		for _, m := range methods {
			var radii, dists, degs, sizes []float64
			for _, q := range qs {
				members := m.run(q)
				if len(members) == 0 {
					continue
				}
				radii = append(radii, metrics.Radius(g, members))
				dists = append(dists, metrics.DistPr(g, members, cfg.Seed))
				degs = append(degs, community.AvgInternalDegree(g, members))
				sizes = append(sizes, float64(len(members)))
			}
			rows = append(rows, Fig10Row{
				Dataset: name,
				Method:  m.name,
				Radius:  metrics.Mean(radii),
				DistPr:  metrics.Mean(dists),
				AvgDeg:  metrics.Mean(degs),
				Size:    metrics.Mean(sizes),
				Found:   len(radii),
			})
		}
	}
	return rows, nil
}

func sacMembers(run func(graph.V) (*core.Result, error)) func(graph.V) []graph.V {
	return func(q graph.V) []graph.V {
		res, err := run(q)
		if err != nil {
			return nil
		}
		return res.Members
	}
}

func printFig10(w io.Writer, rows []Fig10Row) {
	fprintf(w, "%-12s %-14s %10s %10s %8s %8s %6s\n",
		"dataset", "method", "radius", "distPr", "avgDeg", "size", "found")
	for _, r := range rows {
		fprintf(w, "%-12s %-14s %10.5f %10.5f %8.2f %8.1f %6d\n",
			r.Dataset, r.Method, r.Radius, r.DistPr, r.AvgDeg, r.Size, r.Found)
	}
}

// Figure 11 — θ-SAC sensitivity: percentage of queries with non-empty
// results per θ, and how much larger their circles are than Exact+'s.

// Fig11Row is one (dataset, θ) point.
type Fig11Row struct {
	Dataset     string
	Theta       float64
	NonEmptyPct float64
	AvgRadius   float64 // mean radius of non-empty θ-SAC results
	ExactRadius float64 // mean Exact+ radius over the same queries
}

// thetaSweep extends the paper's 10⁻⁶..10⁻² range by one decade because the
// scaled stand-ins are sparser than the originals.
var thetaSweep = []float64{1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 1e-1}

// Fig11 runs the θ-SAC sweep.
func Fig11(cfg Config) ([]Fig11Row, error) {
	var rows []Fig11Row
	for _, name := range cfg.Datasets {
		ds, qs, err := loadWorkload(cfg, name)
		if err != nil {
			return nil, err
		}
		s := core.NewSearcher(ds.Graph)
		// Exact+ ground truth once per query, shared across the θ sweep.
		optimal := map[graph.V]float64{}
		for _, q := range qs {
			if opt, err := s.ExactPlusDefault(q, cfg.K); err == nil {
				optimal[q] = opt.Radius()
			}
		}
		for _, theta := range thetaSweep {
			var radii, exact []float64
			nonEmpty := 0
			for _, q := range qs {
				res, err := s.ThetaSAC(q, cfg.K, theta)
				if err != nil {
					continue
				}
				nonEmpty++
				radii = append(radii, res.Radius())
				if opt, ok := optimal[q]; ok {
					exact = append(exact, opt)
				}
			}
			rows = append(rows, Fig11Row{
				Dataset:     name,
				Theta:       theta,
				NonEmptyPct: 100 * float64(nonEmpty) / float64(len(qs)),
				AvgRadius:   metrics.Mean(radii),
				ExactRadius: metrics.Mean(exact),
			})
		}
	}
	return rows, nil
}

func printFig11(w io.Writer, rows []Fig11Row) {
	fprintf(w, "%-12s %10s %10s %12s %12s\n", "dataset", "theta", "nonempty%", "avgRadius", "exactRadius")
	for _, r := range rows {
		fprintf(w, "%-12s %10.0e %10.1f %12.6f %12.6f\n", r.Dataset, r.Theta, r.NonEmptyPct, r.AvgRadius, r.ExactRadius)
	}
}

// Table 4 — dataset statistics, published versus generated at cfg.Scale.

// Table4Row is one dataset's statistics.
type Table4Row struct {
	Name      string
	PubN      int
	PubM      int
	PubAvgDeg float64
	GenN      int
	GenM      int
	GenAvgDeg float64
}

// Table4 generates every configured dataset and reports its statistics.
func Table4(cfg Config) ([]Table4Row, error) {
	var rows []Table4Row
	for _, name := range cfg.Datasets {
		p, err := dataset.PresetByName(name)
		if err != nil {
			return nil, err
		}
		ds, err := dataset.Load(name, cfg.Scale)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table4Row{
			Name: p.Name, PubN: p.Vertices, PubM: p.Edges, PubAvgDeg: p.AvgDeg,
			GenN: ds.Graph.NumVertices(), GenM: ds.Graph.NumEdges(), GenAvgDeg: ds.Graph.AvgDegree(),
		})
	}
	return rows, nil
}

func printTable4(w io.Writer, rows []Table4Row, scale float64) {
	fprintf(w, "Table 4 stand-ins at scale %v (published → generated)\n", scale)
	fprintf(w, "%-12s %10s %10s %8s %10s %10s %8s\n",
		"dataset", "pub n", "pub m", "pub d̂", "gen n", "gen m", "gen d̂")
	for _, r := range rows {
		fprintf(w, "%-12s %10d %10d %8.2f %10d %10d %8.2f\n",
			r.Name, r.PubN, r.PubM, r.PubAvgDeg, r.GenN, r.GenM, r.GenAvgDeg)
	}
}
