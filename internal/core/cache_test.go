package core

import (
	"errors"
	"math"
	"testing"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// TestCandidateCacheHits verifies that repeated queries into the same
// community are served from the membership cache, including queries from a
// different member of the same community.
func TestCandidateCacheHits(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)

	r1, err := s.AppFast(vQ, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Stats.CacheHits != 0 {
		t.Fatalf("first query reported %d cache hits", r1.Stats.CacheHits)
	}
	if s.CachedCommunities() != 1 {
		t.Fatalf("CachedCommunities = %d, want 1", s.CachedCommunities())
	}

	r2, err := s.AppFast(vQ, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Stats.CacheHits == 0 {
		t.Fatal("repeated query missed the cache")
	}
	if !membersEqual(r1.Members, r2.Members...) || r1.MCC != r2.MCC {
		t.Fatalf("cached result differs: %v/%v vs %v/%v", r1.Members, r1.MCC, r2.Members, r2.MCC)
	}

	// A different member of the same community hits the shared entry.
	r3, err := s.AppFast(vC, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if r3.Stats.CacheHits == 0 {
		t.Fatal("same-community query from another member missed the cache")
	}
	if s.CachedCommunities() != 1 {
		t.Fatalf("CachedCommunities = %d after same-community query, want 1", s.CachedCommunities())
	}

	// A different k is a different community.
	if _, err := s.AppFast(vQ, 1, 0.5); err != nil {
		t.Fatal(err)
	}
}

// TestCandidateCacheNegative verifies that infeasible (q, k) pairs are
// cached too and still return ErrNoCommunity.
func TestCandidateCacheNegative(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	for i := 0; i < 3; i++ {
		if _, err := s.AppFast(vI, 2, 0.5); !errors.Is(err, ErrNoCommunity) {
			t.Fatalf("round %d: err = %v, want ErrNoCommunity", i, err)
		}
	}
}

// TestCandidateCacheAfterSetLoc replays location check-ins against a warmed
// searcher and verifies every algorithm still matches a cold searcher built
// after the moves: membership stays cached (topology is immutable) while the
// distance ordering is rebuilt via the graph's location epoch.
func TestCandidateCacheAfterSetLoc(t *testing.T) {
	g := clusteredGraph(7, 5, 8, 30)
	warm := NewSearcher(g)
	q := graph.V(0)
	k := 3
	if warm.CoreNumber(q) < k {
		t.Skip("fixture lacks a 3-core at q")
	}
	// Warm the cache and the sorted view.
	if _, err := warm.AppFast(q, k, 0.5); err != nil {
		t.Fatal(err)
	}
	if _, err := warm.Exact(q, k); err != nil {
		t.Fatal(err)
	}

	// Replay: move a handful of community members.
	cand, err := warm.candidates(q, k)
	if err != nil {
		t.Fatal(err)
	}
	epoch := g.LocEpoch()
	moved := 0
	for _, v := range cand.verts {
		if v == q || moved >= 4 {
			continue
		}
		p := g.Loc(v)
		g.SetLoc(v, geom.Point{X: p.X + 0.11, Y: p.Y - 0.07})
		moved++
	}
	if g.LocEpoch() == epoch {
		t.Fatal("SetLoc did not bump the location epoch")
	}

	cold := NewSearcher(g)
	for _, algo := range []struct {
		name string
		run  func(s *Searcher) (*Result, error)
	}{
		{"AppFast", func(s *Searcher) (*Result, error) { return s.AppFast(q, k, 0.5) }},
		{"AppInc", func(s *Searcher) (*Result, error) { return s.AppInc(q, k) }},
		{"AppAcc", func(s *Searcher) (*Result, error) { return s.AppAcc(q, k, 0.3) }},
		{"Exact", func(s *Searcher) (*Result, error) { return s.Exact(q, k) }},
		{"ExactPlus", func(s *Searcher) (*Result, error) { return s.ExactPlus(q, k, 0.2) }},
	} {
		rw, err := algo.run(warm)
		if err != nil {
			t.Fatalf("%s warm: %v", algo.name, err)
		}
		rc, err := algo.run(cold)
		if err != nil {
			t.Fatalf("%s cold: %v", algo.name, err)
		}
		if !membersEqual(rw.Members, rc.Members...) {
			t.Fatalf("%s: warm members %v != cold %v after SetLoc replay", algo.name, rw.Members, rc.Members)
		}
		if math.Abs(rw.Radius()-rc.Radius()) > 1e-12 {
			t.Fatalf("%s: warm radius %v != cold %v after SetLoc replay", algo.name, rw.Radius(), rc.Radius())
		}
	}
}

// TestCandidateCachingDisabled verifies the toggle bypasses and drops the
// cache while leaving results unchanged.
func TestCandidateCachingDisabled(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)
	if _, err := s.AppFast(vQ, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	s.SetCandidateCaching(false)
	if s.CachedCommunities() != 0 {
		t.Fatal("disabling caching did not drop the cache")
	}
	res, err := s.AppFast(vQ, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits != 0 || s.CachedCommunities() != 0 {
		t.Fatal("disabled cache still used")
	}
	if !membersEqual(res.Members, vQ, vA, vB) {
		t.Fatalf("uncached members = %v, want {Q,A,B}", res.Members)
	}
	s.SetCandidateCaching(true)
	if _, err := s.AppFast(vQ, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	if s.CachedCommunities() != 1 {
		t.Fatal("re-enabled cache not repopulated")
	}
}

// TestSortByDist cross-checks the dual-slice sort against a straightforward
// reference on adversarial-ish inputs.
func TestSortByDist(t *testing.T) {
	cases := [][]float64{
		{},
		{1},
		{2, 1},
		{1, 1, 1, 1, 1},
		{5, 4, 3, 2, 1, 0},
		{0, 1, 2, 3, 4, 5},
	}
	// Larger patterned inputs: sawtooth, organ pipe, many duplicates.
	saw := make([]float64, 300)
	for i := range saw {
		saw[i] = float64(i % 17)
	}
	cases = append(cases, saw)
	pipe := make([]float64, 257)
	for i := range pipe {
		pipe[i] = math.Min(float64(i), float64(len(pipe)-i))
	}
	cases = append(cases, pipe)

	for ci, dists := range cases {
		d := append([]float64(nil), dists...)
		v := make([]graph.V, len(d))
		for i := range v {
			v[i] = graph.V(i)
		}
		sortByDist(v, d)
		for i := 1; i < len(d); i++ {
			if d[i-1] > d[i] {
				t.Fatalf("case %d: dists not sorted at %d: %v", ci, i, d)
			}
		}
		// The permutation must be consistent: v[i]'s original distance is d[i].
		for i := range v {
			if dists[v[i]] != d[i] {
				t.Fatalf("case %d: verts and dists desynchronized at %d", ci, i)
			}
		}
	}
}

// TestCandidateCacheKCliqueOverlap pins the k-clique keying rule: clique-
// percolation communities are not equivalence classes — triangles {0,1,2}
// and {2,3,4} share only vertex 2, whose own community differs from 0's —
// so entries must be keyed by the query vertex alone. With member-fanout
// keying, the query from 2 would be served 0's cached community.
func TestCandidateCacheKCliqueOverlap(t *testing.T) {
	b := graph.NewBuilder(5)
	for _, e := range [][2]graph.V{{0, 1}, {1, 2}, {2, 0}, {2, 3}, {3, 4}, {4, 2}} {
		b.AddEdge(e[0], e[1])
	}
	for v := 0; v < 5; v++ {
		b.SetLoc(graph.V(v), geom.Point{X: 0.1 * float64(v+1), Y: 0.5})
	}
	g := b.Build()
	cached := NewSearcherWithStructure(g, StructureKClique)
	uncached := NewSearcherWithStructure(g, StructureKClique)
	uncached.SetCandidateCaching(false)
	// Warm the cache from vertex 0, then query every vertex and require
	// the cached searcher to match the uncached one exactly.
	if _, err := cached.AppInc(0, 3); err != nil {
		t.Fatal(err)
	}
	for q := graph.V(0); q < 5; q++ {
		rc, errC := cached.AppInc(q, 3)
		ru, errU := uncached.AppInc(q, 3)
		if (errC == nil) != (errU == nil) {
			t.Fatalf("q=%d: cached err %v, uncached err %v", q, errC, errU)
		}
		if errC != nil {
			continue
		}
		if !membersEqual(rc.Members, ru.Members...) {
			t.Fatalf("q=%d: cached members %v != uncached %v", q, rc.Members, ru.Members)
		}
	}
}
