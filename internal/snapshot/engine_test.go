package snapshot

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"sync"
	"testing"

	"sacsearch/internal/batch"
	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// testGraph plants spatial cliques wired with a few long-range edges; every
// vertex has a tight community for k up to 4.
func testGraph() *graph.Graph {
	rnd := rand.New(rand.NewSource(11))
	const nc, cs = 6, 6
	b := graph.NewBuilder(nc * cs)
	for c := 0; c < nc; c++ {
		cx, cy := rnd.Float64(), rnd.Float64()
		for i := 0; i < cs; i++ {
			v := graph.V(c*cs + i)
			b.SetLoc(v, geom.Point{
				X: cx + (rnd.Float64()-0.5)*0.05,
				Y: cy + (rnd.Float64()-0.5)*0.05,
			})
			for j := 0; j < i; j++ {
				b.AddEdge(v, graph.V(c*cs+j))
			}
		}
	}
	b.AddEdge(0, 6)
	b.AddEdge(0, 12)
	return b.Build()
}

func newEngine(t *testing.T) *Engine {
	t.Helper()
	e := New(testGraph(), Options{})
	t.Cleanup(e.Close)
	return e
}

func TestInitialSnapshot(t *testing.T) {
	e := newEngine(t)
	snap := e.Current()
	if snap == nil || snap.Seq() != 1 {
		t.Fatalf("initial snapshot = %+v", snap)
	}
	if !snap.Graph().Frozen() {
		t.Fatal("published graph not frozen")
	}
	if snap.Edges() != snap.Graph().NumEdges() {
		t.Fatalf("edges = %d, graph says %d", snap.Edges(), snap.Graph().NumEdges())
	}
}

// TestReadYourWrites pins the publication contract: once a write returns,
// Current() serves a snapshot that contains it.
func TestReadYourWrites(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	before := e.Current()
	if err := e.CheckIn(ctx, 3, geom.Point{X: 0.9, Y: 0.9}); err != nil {
		t.Fatal(err)
	}
	after := e.Current()
	if after.Seq() <= before.Seq() {
		t.Fatalf("no publication: seq %d -> %d", before.Seq(), after.Seq())
	}
	if loc := after.Graph().Loc(3); loc.X != 0.9 || loc.Y != 0.9 {
		t.Fatalf("check-in not visible: %v", loc)
	}
	// The old snapshot still serves the old state: snapshot isolation.
	if loc := before.Graph().Loc(3); loc.X == 0.9 && loc.Y == 0.9 {
		t.Fatal("old snapshot mutated")
	}

	// No-op writes publish nothing: the previous snapshot already contains
	// the (absent) change, so the sequence must not advance.
	seqBefore := e.Current().Seq()
	if changed, err := e.UpdateEdge(ctx, 0, 6, true); err != nil || changed {
		t.Fatalf("re-insert of present edge: changed=%v err=%v, want no-op", changed, err)
	}
	if got := e.Current().Seq(); got != seqBefore {
		t.Fatalf("no-op edge published a snapshot: seq %d -> %d", seqBefore, got)
	}

	changed, err := e.UpdateEdge(ctx, 0, 18, true)
	if err != nil || !changed {
		t.Fatalf("edge insert: changed=%v err=%v", changed, err)
	}
	if !e.Current().Graph().HasEdge(0, 18) {
		t.Fatal("edge not visible after UpdateEdge returned")
	}
	if before.Graph().HasEdge(0, 18) {
		t.Fatal("old snapshot grew an edge")
	}
	if got := e.Current().TopoEpoch(); got == before.TopoEpoch() {
		t.Fatal("topology epoch did not advance")
	}
}

// TestValidation covers the write-side input checks.
func TestValidation(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	if err := e.CheckIn(ctx, 9999, geom.Point{}); err == nil {
		t.Fatal("out-of-range check-in accepted")
	}
	if err := e.CheckIn(ctx, 1, geom.Point{X: math.Inf(1), Y: 0}); err == nil {
		t.Fatal("non-finite check-in accepted")
	}
	if _, err := e.UpdateEdge(ctx, 0, 9999, true); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if changed, err := e.UpdateEdge(ctx, 2, 2, true); err != nil || changed {
		t.Fatalf("self-loop: changed=%v err=%v (want no-op)", changed, err)
	}
}

func TestCloseFailsPendingWrites(t *testing.T) {
	e := New(testGraph(), Options{})
	e.Close()
	if err := e.CheckIn(context.Background(), 1, geom.Point{X: 0.1, Y: 0.1}); !errors.Is(err, ErrClosed) {
		t.Fatalf("write after close: %v, want ErrClosed", err)
	}
	// The last snapshot remains readable.
	snap := e.Current()
	w := snap.Get()
	defer snap.Put(w)
	if _, err := w.AppInc(0, 4); err != nil {
		t.Fatalf("query after close: %v", err)
	}
	e.Close() // idempotent
}

// runAll answers one query with all five algorithms plus θ-SAC on s.
func runAll(t *testing.T, s *core.Searcher, q graph.V, k int) map[string]*core.Result {
	t.Helper()
	out := make(map[string]*core.Result, 6)
	type algo struct {
		name string
		run  func() (*core.Result, error)
	}
	for _, a := range []algo{
		{"exact", func() (*core.Result, error) { return s.Exact(q, k) }},
		{"exact+", func() (*core.Result, error) { return s.ExactPlus(q, k, 1e-3) }},
		{"appinc", func() (*core.Result, error) { return s.AppInc(q, k) }},
		{"appfast", func() (*core.Result, error) { return s.AppFast(q, k, 0.5) }},
		{"appacc", func() (*core.Result, error) { return s.AppAcc(q, k, 0.5) }},
		{"theta", func() (*core.Result, error) { return s.ThetaSAC(q, k, 0.2) }},
	} {
		res, err := a.run()
		if err != nil {
			if errors.Is(err, core.ErrNoCommunity) {
				out[a.name] = nil
				continue
			}
			t.Errorf("%s(%d,%d): %v", a.name, q, k, err)
			continue
		}
		out[a.name] = res
	}
	return out
}

func sameResult(a, b *core.Result) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if len(a.Members) != len(b.Members) {
		return false
	}
	for i := range a.Members {
		if a.Members[i] != b.Members[i] {
			return false
		}
	}
	return a.MCC == b.MCC
}

// TestDifferentialUnderChurn is the snapshot-isolation differential: while
// writers churn check-ins and edges through the engine, readers pin
// snapshots and answer queries on pooled (cached, rebound) workers; every
// answer must equal what a fresh single-threaded searcher computes over the
// same frozen graph. Run with -race, this also proves readers never touch
// the writer's mutable state.
func TestDifferentialUnderChurn(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	const n = 36

	var writerWG, readerWG sync.WaitGroup
	stop := make(chan struct{})

	// Writer traffic: check-ins wander vertices, edges toggle between
	// cliques.
	writerWG.Add(1)
	go func() {
		defer writerWG.Done()
		rnd := rand.New(rand.NewSource(23))
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if i%3 == 0 {
				u := graph.V(rnd.Intn(6))
				v := graph.V(18 + rnd.Intn(6))
				if _, err := e.UpdateEdge(ctx, u, v, rnd.Intn(2) == 0); err != nil {
					t.Errorf("edge churn: %v", err)
					return
				}
			} else {
				v := graph.V(rnd.Intn(n))
				p := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
				if err := e.CheckIn(ctx, v, p); err != nil {
					t.Errorf("check-in churn: %v", err)
					return
				}
			}
		}
	}()

	// Reader traffic: pin a snapshot, query it through the pooled worker,
	// and differentially re-answer on a cold searcher over the same frozen
	// graph.
	for r := 0; r < 4; r++ {
		readerWG.Add(1)
		go func(r int) {
			defer readerWG.Done()
			rnd := rand.New(rand.NewSource(int64(100 + r)))
			for i := 0; i < 8; i++ {
				snap := e.Current()
				q := graph.V(rnd.Intn(n))
				k := 2 + rnd.Intn(3)

				w := snap.Get()
				got := runAll(t, w, q, k)
				snap.Put(w)

				cold := core.NewSearcher(snap.Graph())
				cold.SetCandidateCaching(false)
				want := runAll(t, cold, q, k)

				for name, res := range want {
					if !sameResult(got[name], res) {
						t.Errorf("reader %d: %s(%d,%d) snapshot-served %v != locked %v (seq %d)",
							r, name, q, k, members(got[name]), members(res), snap.Seq())
					}
				}
			}
		}(r)
	}

	// Readers run bounded work; the writer churns until they finish.
	readerWG.Wait()
	close(stop)
	writerWG.Wait()
}

func members(r *core.Result) []graph.V {
	if r == nil {
		return nil
	}
	return r.Members
}

// TestBatchPinnedToSnapshot runs a whole batch against one pinned snapshot
// while the writer churns; every item must reflect that snapshot alone.
func TestBatchPinnedToSnapshot(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	snap := e.Current()

	// Churn AFTER pinning: the batch must not see any of it.
	for i := 0; i < 10; i++ {
		if err := e.CheckIn(ctx, graph.V(i), geom.Point{X: 0.5, Y: 0.5}); err != nil {
			t.Fatal(err)
		}
	}

	queries := batch.Workload([]graph.V{1, 7, 13, 1}, 4)
	items := batch.RunOn(ctx, snap, queries, batch.Options{Workers: 2})
	cold := core.NewSearcher(snap.Graph())
	for _, it := range items {
		if it.Err != nil {
			t.Fatalf("batch item %v: %v", it.Query, it.Err)
		}
		want, err := cold.AppFast(it.Q, it.K, 0.5)
		if err != nil {
			t.Fatal(err)
		}
		if !sameResult(it.Result, want) {
			t.Fatalf("batch item %v: %v != pinned-state answer %v", it.Query, it.Result.Members, want.Members)
		}
	}
}

// TestPublicationBatching checks that a burst of writes publishes far fewer
// snapshots than events (the amortization the writer loop exists for).
func TestPublicationBatching(t *testing.T) {
	e := newEngine(t)
	ctx := context.Background()
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if err := e.CheckIn(ctx, graph.V((w*each+i)%36), geom.Point{X: 0.1, Y: 0.2}); err != nil {
					t.Errorf("check-in: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	applied, published := e.Applied(), e.Published()
	if applied != writers*each {
		t.Fatalf("applied = %d, want %d", applied, writers*each)
	}
	// At most one publication per event plus the initial snapshot; whether
	// concurrent events actually coalesce depends on scheduling, so only the
	// upper bound is deterministic.
	if published > applied+1 {
		t.Fatalf("published %d snapshots for %d events", published, applied)
	}
	t.Logf("coalescing: %d events over %d publications", applied, published)
}

// TestPersistHookOrdering pins the durability contract: the hook sees every
// state-changing event (and only those) before the snapshot containing it is
// published, and published snapshots carry the hook's sequence.
func TestPersistHookOrdering(t *testing.T) {
	var mu sync.Mutex
	var logged []AppliedEvent
	var seq uint64
	e := New(testGraph(), Options{
		InitialSeq: 100,
		Persist: func(batch []AppliedEvent) (uint64, error) {
			mu.Lock()
			defer mu.Unlock()
			logged = append(logged, batch...)
			seq += uint64(len(batch))
			return 100 + seq, nil
		},
	})
	defer e.Close()
	ctx := context.Background()

	if got := e.Current().WalSeq(); got != 100 {
		t.Fatalf("initial WalSeq = %d, want InitialSeq 100", got)
	}
	if err := e.CheckIn(ctx, 2, geom.Point{X: 0.3, Y: 0.4}); err != nil {
		t.Fatal(err)
	}
	// Read-your-writes now implies durable-on-ack: the snapshot visible
	// after CheckIn returned must carry a WalSeq covering the event.
	if got := e.Current().WalSeq(); got != 101 {
		t.Fatalf("WalSeq after check-in = %d, want 101", got)
	}
	// A no-op edge toggle must not be logged.
	if changed, err := e.UpdateEdge(ctx, 0, 6, true); err != nil || changed {
		t.Fatalf("no-op insert: changed=%v err=%v", changed, err)
	}
	// A rejected edge must not be logged either.
	if _, err := e.UpdateEdge(ctx, 0, 9999, true); err == nil {
		t.Fatal("out-of-range edge accepted")
	}
	if changed, err := e.UpdateEdge(ctx, 0, 18, true); err != nil || !changed {
		t.Fatalf("real insert: changed=%v err=%v", changed, err)
	}
	if got := e.Current().WalSeq(); got != 102 {
		t.Fatalf("WalSeq after edge = %d, want 102", got)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 2 {
		t.Fatalf("logged %d events, want 2: %+v", len(logged), logged)
	}
	if !logged[0].Checkin || logged[0].V != 2 || logged[0].Loc.X != 0.3 {
		t.Fatalf("logged[0] = %+v", logged[0])
	}
	if logged[1].Checkin || logged[1].U != 0 || logged[1].W != 18 || !logged[1].Insert {
		t.Fatalf("logged[1] = %+v", logged[1])
	}
}

// TestPersistFailureTurnsEngineReadOnly: a failed group commit must fail the
// writes in that batch, keep the failed state unpublished, and refuse all
// later writes — a non-durable write must never look committed.
func TestPersistFailureTurnsEngineReadOnly(t *testing.T) {
	fail := errors.New("disk on fire")
	calls := 0
	e := New(testGraph(), Options{
		Persist: func(batch []AppliedEvent) (uint64, error) {
			calls++
			if calls > 1 {
				return 0, fail
			}
			return uint64(len(batch)), nil
		},
	})
	defer e.Close()
	ctx := context.Background()

	if err := e.CheckIn(ctx, 1, geom.Point{X: 0.5, Y: 0.5}); err != nil {
		t.Fatalf("first (durable) write: %v", err)
	}
	before := e.Current()
	err := e.CheckIn(ctx, 3, geom.Point{X: 0.7, Y: 0.7})
	if err == nil || !errors.Is(err, fail) {
		t.Fatalf("write after persist failure: %v, want wrapped %v", err, fail)
	}
	// The failed write must not have been published.
	after := e.Current()
	if after.Seq() != before.Seq() {
		t.Fatalf("failed batch published: seq %d -> %d", before.Seq(), after.Seq())
	}
	if loc := after.Graph().Loc(3); loc.X == 0.7 {
		t.Fatal("failed write visible to readers")
	}
	// Every later write fails fast without reaching the graph.
	if err := e.CheckIn(ctx, 4, geom.Point{X: 0.2, Y: 0.2}); err == nil || !errors.Is(err, fail) {
		t.Fatalf("write on read-only engine: %v", err)
	}
	if _, err := e.UpdateEdge(ctx, 0, 18, true); err == nil || !errors.Is(err, fail) {
		t.Fatalf("edge on read-only engine: %v", err)
	}
	// Reads keep serving the last durable snapshot.
	w := after.Get()
	defer after.Put(w)
	if _, err := w.AppInc(0, 4); err != nil {
		t.Fatalf("read on read-only engine: %v", err)
	}
}
