package wal

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

func rec(i int) Record {
	if i%3 == 0 {
		return Record{Kind: KindEdge, U: graph.V(i), W: graph.V(i + 1), Insert: i%2 == 0}
	}
	return Record{Kind: KindCheckin, V: graph.V(i), Loc: geom.Point{X: float64(i) * 0.25, Y: float64(i) * 0.5}}
}

func appendN(t *testing.T, l *Log, from, n int) uint64 {
	t.Helper()
	var last uint64
	for i := from; i < from+n; i++ {
		seq, err := l.Append([]Record{rec(i)})
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		last = seq
	}
	return last
}

func collect(t *testing.T, dir string, afterSeq uint64) []Record {
	t.Helper()
	var out []Record
	if _, err := Replay(dir, afterSeq, func(r Record) error {
		out = append(out, r)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One multi-record batch plus single appends: both framing paths.
	batch := []Record{rec(100), rec(101), rec(102)}
	if seq, err := l.Append(batch); err != nil || seq != 3 {
		t.Fatalf("batch append: seq=%d err=%v", seq, err)
	}
	last := appendN(t, l, 103, 5)
	if last != 8 {
		t.Fatalf("lastSeq = %d, want 8", last)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	got := collect(t, dir, 0)
	if len(got) != 8 {
		t.Fatalf("replayed %d records, want 8", len(got))
	}
	want := append(append([]Record{}, batch...), rec(103), rec(104), rec(105), rec(106), rec(107))
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d: seq %d", i, r.Seq)
		}
		w := want[i]
		w.Seq = r.Seq
		if r != w {
			t.Fatalf("record %d: %+v != %+v", i, r, w)
		}
	}
	// Partial replay skips the prefix.
	if tail := collect(t, dir, 6); len(tail) != 2 || tail[0].Seq != 7 {
		t.Fatalf("tail replay = %+v", tail)
	}
}

func TestSegmentRotationAndReopen(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 64)
	segs, bytes := l.Stats()
	if segs < 3 {
		t.Fatalf("only %d segments after 64 records at 256-byte rotation", segs)
	}
	if bytes <= 0 {
		t.Fatal("no bytes reported")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen continues the chain where it left off.
	l2, err := Open(dir, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	if l2.LastSeq() != 64 {
		t.Fatalf("recovered lastSeq = %d, want 64", l2.LastSeq())
	}
	appendN(t, l2, 64, 4)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, dir, 0); len(got) != 68 {
		t.Fatalf("replayed %d records, want 68", len(got))
	}
}

func TestTornTailTolerated(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 10)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, err := listSegments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v %v", segs, err)
	}
	path := segs[0].path
	full, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	// Cut mid-way through the final frame: replay yields 9 records, reopen
	// truncates the tail and appends continue at seq 10.
	if err := os.WriteFile(path, full[:len(full)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, dir, 0); len(got) != 9 {
		t.Fatalf("replayed %d records over torn tail, want 9", len(got))
	}
	l2, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatalf("reopen over torn tail: %v", err)
	}
	if l2.LastSeq() != 9 {
		t.Fatalf("lastSeq = %d, want 9", l2.LastSeq())
	}
	appendN(t, l2, 50, 1)
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir, 0)
	if len(got) != 10 || got[9].Seq != 10 {
		t.Fatalf("after repair+append: %d records, last %+v", len(got), got[len(got)-1])
	}
}

func TestMidSegmentCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 40)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	path := segs[0].path
	full, _ := os.ReadFile(path)
	// Flip a byte early in the file: many valid frames follow, so this is
	// bit rot over acknowledged history, not a torn append.
	corrupt := append([]byte(nil), full...)
	corrupt[len(segMagic)+10] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
		t.Fatal("mid-segment corruption replayed silently")
	}
	if _, err := Open(dir, 0, Options{}); err == nil {
		t.Fatal("mid-segment corruption opened silently")
	}
}

func TestSealedSegmentCorruptionFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 64)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	if len(segs) < 3 {
		t.Fatalf("want ≥3 segments, got %d", len(segs))
	}
	// Damage the tail of a sealed (non-final) segment: never tolerated.
	path := segs[0].path
	full, _ := os.ReadFile(path)
	corrupt := append([]byte(nil), full...)
	corrupt[len(corrupt)-3] ^= 0xff
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Replay(dir, 0, func(Record) error { return nil }); err == nil {
		t.Fatal("sealed-segment corruption replayed silently")
	}
}

func TestTruncateThrough(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 64)
	before, _ := l.Stats()
	if before < 3 {
		t.Fatalf("want ≥3 segments, got %d", before)
	}
	// Truncating through seq 1 covers no whole segment.
	if err := l.TruncateThrough(1); err != nil {
		t.Fatal(err)
	}
	if after, _ := l.Stats(); after != before {
		t.Fatalf("truncate(1) removed segments: %d -> %d", before, after)
	}
	// Truncating through seq 30 removes the fully covered prefix but keeps
	// every record after 30 replayable.
	if err := l.TruncateThrough(30); err != nil {
		t.Fatal(err)
	}
	after, _ := l.Stats()
	if after >= before {
		t.Fatalf("truncate(30) removed nothing: %d segments", after)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir, 30)
	if len(got) != 34 || got[0].Seq != 31 {
		t.Fatalf("post-truncation tail: %d records, first %+v", len(got), got[0])
	}
	// Replaying from before the truncation horizon must fail loudly: that
	// history is gone.
	if _, err := Replay(dir, 10, func(Record) error { return nil }); err == nil {
		t.Fatal("replay across truncated history succeeded silently")
	}
}

func TestStartSeqSeedsChain(t *testing.T) {
	dir := t.TempDir()
	// A fresh log over an already-checkpointed store starts after the
	// checkpoint's sequence.
	l, err := Open(dir, 500, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seq, err := l.Append([]Record{rec(1)})
	if err != nil || seq != 501 {
		t.Fatalf("first seq = %d err=%v, want 501", seq, err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	got := collect(t, dir, 500)
	if len(got) != 1 || got[0].Seq != 501 {
		t.Fatalf("replay = %+v", got)
	}
}

func TestFsyncPolicies(t *testing.T) {
	for _, p := range []Policy{PolicyAlways, PolicyInterval, PolicyNever} {
		t.Run(string(p), func(t *testing.T) {
			dir := t.TempDir()
			l, err := Open(dir, 0, Options{Policy: p, FlushInterval: 5 * time.Millisecond})
			if err != nil {
				t.Fatal(err)
			}
			appendN(t, l, 0, 20)
			if p == PolicyInterval {
				time.Sleep(20 * time.Millisecond) // let the flusher tick
			}
			if err := l.Close(); err != nil {
				t.Fatal(err)
			}
			if got := collect(t, dir, 0); len(got) != 20 {
				t.Fatalf("policy %s: replayed %d records, want 20", p, len(got))
			}
		})
	}
	if _, err := ParsePolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
}

func TestForeignFilesIgnored(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "checkpoint-00000000000000000007.ckpt"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("y"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, dir, 0); len(got) != 3 {
		t.Fatalf("replayed %d, want 3", len(got))
	}
}

func TestBadSegmentMagic(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, segName(1)), []byte("NOTAWALSEGMENT"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Open(dir, 0, Options{})
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Fatalf("bad magic: err = %v", err)
	}
}

// TestLostTailNeverRegressesBelowStartSeq guards against sequence reuse: a
// log whose active segment lost every record (power loss zeroing the file
// under a lax fsync policy) must resume numbering at the checkpoint's
// sequence, never below it — regressing would hand out already-covered
// seqs and make the next recovery silently skip acknowledged writes.
func TestLostTailNeverRegressesBelowStartSeq(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(dir, 0, Options{})
	if err != nil {
		t.Fatal(err)
	}
	appendN(t, l, 0, 5)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir)
	// Zero the segment back to its magic: all five records are gone, but a
	// checkpoint at seq 5 already contains their effects.
	if err := os.Truncate(segs[0].path, int64(len(segMagic))); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(dir, 5, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.LastSeq(); got != 5 {
		t.Fatalf("lastSeq = %d, want 5 (the checkpoint seq)", got)
	}
	seq, err := l2.Append([]Record{rec(9)})
	if err != nil || seq != 6 {
		t.Fatalf("resumed append: seq=%d err=%v, want 6", seq, err)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	if got := collect(t, dir, 5); len(got) != 1 || got[0].Seq != 6 {
		t.Fatalf("replay after resume = %+v", got)
	}
}
