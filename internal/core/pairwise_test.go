package core

import (
	"errors"
	"math"
	"testing"

	"sacsearch/internal/graph"
)

func TestDiameterOf(t *testing.T) {
	g := figure3()
	if d := DiameterOf(g, []graph.V{vQ}); d != 0 {
		t.Fatalf("single-vertex diameter = %v, want 0", d)
	}
	if d := DiameterOf(g, nil); d != 0 {
		t.Fatalf("empty diameter = %v, want 0", d)
	}
	// |Q,C| = 3 (Q=(3,2), C=(3,5)).
	if d := DiameterOf(g, []graph.V{vQ, vC}); math.Abs(d-3) > 1e-12 {
		t.Fatalf("pair diameter = %v, want 3", d)
	}
	// {Q,C,D}: pairwise √5, 3, √5 → diameter 3.
	if d := DiameterOf(g, []graph.V{vQ, vC, vD}); math.Abs(d-3) > 1e-12 {
		t.Fatalf("triple diameter = %v, want 3", d)
	}
}

func TestMinDiamPaperExample(t *testing.T) {
	// Figure 3, q=Q, k=2. Feasible communities: {Q,A,B} (diameter |A,B| =
	// √13 ≈ 3.606), {Q,C,D} (diameter |Q,C| = 3), and supersets. The
	// minimum-diameter community is {Q,C,D}.
	g := figure3()
	s := NewSearcher(g)

	brute, err := s.MinDiamBrute(vQ, 2)
	if err != nil {
		t.Fatalf("brute: %v", err)
	}
	if !membersEqual(brute.Members, vQ, vC, vD) {
		t.Fatalf("brute members = %v, want {Q,C,D}", brute.Members)
	}
	if math.Abs(brute.Delta-3) > 1e-9 {
		t.Fatalf("brute diameter = %v, want 3", brute.Delta)
	}

	two, err := s.MinDiam2Approx(vQ, 2)
	if err != nil {
		t.Fatalf("2-approx: %v", err)
	}
	validateCommunity(t, g, two, vQ, 2)
	if two.Delta > 2*brute.Delta+1e-9 {
		t.Fatalf("2-approx diameter %v exceeds 2×%v", two.Delta, brute.Delta)
	}

	lens, err := s.MinDiamLens(vQ, 2)
	if err != nil {
		t.Fatalf("lens: %v", err)
	}
	validateCommunity(t, g, lens, vQ, 2)
	if lens.Delta > math.Sqrt(3)*brute.Delta+1e-9 {
		t.Fatalf("lens diameter %v exceeds √3×%v", lens.Delta, brute.Delta)
	}
	// On this fixture the lens refinement should find the optimum exactly.
	if math.Abs(lens.Delta-3) > 1e-9 {
		t.Fatalf("lens diameter = %v, want 3", lens.Delta)
	}
}

func TestMinDiamGuaranteesOnRandomGraphs(t *testing.T) {
	sqrt3 := math.Sqrt(3)
	for seed := int64(1); seed <= 8; seed++ {
		// Small clustered graphs with candidate sets under the brute cap.
		g := clusteredGraph(seed, 3, 5, 4)
		s := NewSearcher(g)
		for _, q := range []graph.V{0, 5, 10} {
			for _, k := range []int{2, 3} {
				brute, err := s.MinDiamBrute(q, k)
				if errors.Is(err, ErrNoCommunity) {
					continue
				}
				if err != nil {
					// Candidate set too large for brute force on this seed.
					continue
				}
				opt := brute.Delta

				two, err := s.MinDiam2Approx(q, k)
				if err != nil {
					t.Fatalf("seed %d q=%d k=%d: 2-approx: %v", seed, q, k, err)
				}
				validateCommunity(t, g, two, q, k)
				if opt > 0 && two.Delta/opt > 2+1e-9 {
					t.Fatalf("seed %d q=%d k=%d: 2-approx ratio %v", seed, q, k, two.Delta/opt)
				}
				if opt == 0 && two.Delta > 1e-9 {
					t.Fatalf("seed %d q=%d k=%d: 2-approx diameter %v, optimum 0", seed, q, k, two.Delta)
				}

				lens, err := s.MinDiamLens(q, k)
				if err != nil {
					t.Fatalf("seed %d q=%d k=%d: lens: %v", seed, q, k, err)
				}
				validateCommunity(t, g, lens, q, k)
				if opt > 0 && lens.Delta/opt > sqrt3+1e-9 {
					t.Fatalf("seed %d q=%d k=%d: lens ratio %v > √3", seed, q, k, lens.Delta/opt)
				}
				if lens.Delta > two.Delta+1e-9 {
					t.Fatalf("seed %d q=%d k=%d: lens (%v) worse than its own upper bound (%v)",
						seed, q, k, lens.Delta, two.Delta)
				}
			}
		}
	}
}

func TestMinDiamTrivialAndErrors(t *testing.T) {
	g := figure3()
	s := NewSearcher(g)

	res, err := s.MinDiam2Approx(vQ, 0)
	if err != nil || len(res.Members) != 1 || res.Delta != 0 {
		t.Fatalf("k=0: res=%v err=%v", res, err)
	}
	res, err = s.MinDiamLens(vQ, 1)
	if err != nil || len(res.Members) != 2 {
		t.Fatalf("k=1: res=%v err=%v", res, err)
	}

	if _, err := s.MinDiam2Approx(vF, 3); !errors.Is(err, ErrNoCommunity) {
		t.Fatalf("no 3-core: err = %v", err)
	}
	if _, err := s.MinDiamLens(graph.V(999), 2); err == nil {
		t.Fatal("out-of-range q accepted")
	}
	if _, err := s.MinDiamBrute(graph.V(-1), 2); err == nil {
		t.Fatal("negative q accepted")
	}
}

func TestMinDiamBruteRejectsLargeCandidates(t *testing.T) {
	g := clusteredGraph(5, 4, 8, 40) // one big connected 4-core
	s := NewSearcher(g)
	if _, err := s.MinDiamBrute(0, 2); err == nil || errors.Is(err, ErrNoCommunity) {
		t.Fatalf("brute accepted a large candidate set: %v", err)
	}
}

func TestMinDiamVsMCCObjectives(t *testing.T) {
	// The two objectives can disagree; the diameter of the min-diameter
	// result must never exceed the diameter of the min-MCC result's bound,
	// and both must be feasible communities.
	for seed := int64(11); seed <= 14; seed++ {
		g := clusteredGraph(seed, 5, 6, 8)
		s := NewSearcher(g)
		mcc, err := s.ExactPlus(0, 3, 0.05)
		if errors.Is(err, ErrNoCommunity) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		lens, err := s.MinDiamLens(0, 3)
		if err != nil {
			t.Fatal(err)
		}
		// The min-MCC community has diameter ≤ 2·r; the lens result is a
		// √3-approx of the true diameter optimum Dopt ≤ diam(mcc result).
		mccDiam := DiameterOf(g, mcc.Members)
		if lens.Delta > math.Sqrt(3)*mccDiam+1e-9 {
			t.Fatalf("seed %d: lens diameter %v > √3 × mcc diameter %v", seed, lens.Delta, mccDiam)
		}
	}
}

func BenchmarkMinDiamLens(b *testing.B) {
	g := clusteredGraph(3, 10, 8, 30)
	s := NewSearcher(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.MinDiamLens(0, 4); err != nil && !errors.Is(err, ErrNoCommunity) {
			b.Fatal(err)
		}
	}
}
