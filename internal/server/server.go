// Package server implements the system prototype the paper's Section 6
// plans ("we will also develop a system prototype"): an HTTP JSON API over
// the SAC search library, the shape a geo-social backend (event
// recommendation, social marketing) would embed.
//
// The API is versioned. Current routes live under /v1/:
//
//	GET  /v1/health            role, status verdict, dataset, snapshot/writer and replication state
//	GET  /v1/ready             200 once this node can serve reads (replicas: after initial sync)
//	GET  /v1/algorithms        the algorithm registry: names, ratios, parameter schemas
//	GET  /v1/vertex/{id}       one vertex: location, degree, core number
//	POST /v1/query             one SAC query (unified request shape)
//	POST /v1/batch             many SAC queries, answered in parallel
//	POST /v1/checkin           update one vertex's location (dynamic graphs)
//	POST /v1/edge              insert or delete one friendship edge
//
// The original unversioned /api/* routes remain as deprecated aliases of
// the same handlers; responses on them carry a Deprecation header and a
// Link to the /v1 successor. Request decoding and validation are driven by
// the core algorithm registry (core.Algorithms) — the server holds no
// per-algorithm parameter code of its own. Every response carries an
// X-Request-Id header, and every non-2xx response is a structured error
// envelope (ErrorJSON) with a machine-readable code, the offending field
// when known, and the request id.
//
// Concurrency model: snapshot isolation, no locks on the query path. A
// single writer goroutine (internal/snapshot.Engine) owns the mutable
// graph, applies check-ins and edge events in batches, and publishes
// immutable snapshots through an atomic pointer. Every query pins the
// current snapshot with one atomic load and runs on a pooled worker rebound
// to that snapshot — readers never block writers, writers never block
// readers, and a query observes exactly one published state from start to
// finish. Mutating requests return once the snapshot containing their write
// is published (read-your-writes). Each request carries a context with a
// per-request deadline: an abandoned client or an expired deadline cancels
// the query at its next loop boundary instead of burning CPU to completion.
// POST bodies are capped by http.MaxBytesReader; oversized payloads come
// back as 413 before any JSON is decoded.
//
// A server runs in one of three roles. Standalone (New) and leader
// (NewWithStore) accept reads and writes; the leader routes writes through
// the store so a fenced ex-leader rejects them with 503 read_only. A
// replica (NewReplica) serves reads from WAL-shipped state, refuses writes,
// and sheds reads with 503 + Retry-After when staler than the configured
// bound. /v1/health reports the role, fencing epoch and replication lag;
// /v1/ready gates traffic until the node can actually serve.
package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"runtime/debug"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sacsearch/internal/batch"
	"sacsearch/internal/core"
	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
	"sacsearch/internal/replica"
	"sacsearch/internal/shard"
	"sacsearch/internal/snapshot"
	"sacsearch/internal/store"
	"sacsearch/internal/subscribe"
	"sacsearch/internal/telemetry"
	"sacsearch/internal/version"
)

// Machine-readable error codes of the /v1 error envelope. Codes originating
// in query validation (core.QueryError) pass through verbatim:
// unknown_algorithm, invalid_param, missing_param, invalid_query,
// structure_mismatch.
const (
	CodeInvalidJSON      = "invalid_json"
	CodeBodyTooLarge     = "body_too_large"
	CodeInvalidArgument  = "invalid_argument"
	CodeUnknownVertex    = "unknown_vertex"
	CodeNoCommunity      = "no_community"
	CodeDeadlineExceeded = "deadline_exceeded"
	CodeUnavailable      = "unavailable"
	CodeQueryFailed      = "query_failed"
	CodeReadOnly         = "read_only"
	CodeStaleRead        = "stale_read"
	CodeNotReady         = "not_ready"
	CodeInternal         = "internal"
	CodeWrongShard       = "wrong_shard"
	CodeShardUnavailable = "shard_unavailable"
	// CodeUnknownSubscription: a Last-Event-ID resume names a subscription
	// id this node no longer holds (expired, or a different node); the
	// client should drop its resume state and subscribe fresh.
	CodeUnknownSubscription = "unknown_subscription"
	// CodeSubscriptionLimit: the standing-query table is full.
	CodeSubscriptionLimit = "subscription_limit"
)

// Config tunes a Server. The zero value serves defaults.
type Config struct {
	// QueryTimeout is the per-request deadline applied on top of the
	// client's own cancellation for query and batch requests, and the wait
	// bound for checkin and edge publication. Default 15s.
	QueryTimeout time.Duration
	// MaxBodyBytes caps every POST body; larger payloads are rejected with
	// 413 before decoding. Default 1 MiB.
	MaxBodyBytes int64
	// WriterQueue and WriterBatch configure the snapshot engine's event
	// queue capacity and maximum events applied per publication (defaults
	// from internal/snapshot).
	WriterQueue int
	WriterBatch int
	// StalenessBound is how far behind the leader a replica may be while
	// still serving reads; beyond it, reads are shed with 503 + Retry-After
	// (stale answers are worse than brief unavailability once the client has
	// a leader to fail over to). Measured against the follower's lag clock,
	// which is local-clock-only and so immune to clock skew. Default 10s;
	// negative disables shedding. Ignored on a leader.
	StalenessBound time.Duration
	// Logger receives server-level structured events — recovered panics,
	// slow queries — keyed by request and span id. Default slog.Default().
	Logger *slog.Logger
	// Metrics, when non-nil, receives the server's instrumentation
	// (sac_http_*, sac_query_*, engine gauges). The same registry should be
	// shared with the store/follower/shipper so one scrape covers the node.
	Metrics *telemetry.Registry
	// ServeMetrics mounts GET /metrics on the public mux (requires
	// Metrics). Deployments that want the scrape firewalled separately
	// leave this false and scrape the debugserve listener instead.
	ServeMetrics bool
	// SlowQueryThreshold, when positive, logs any request slower than this
	// at Warn level with its full span tree.
	SlowQueryThreshold time.Duration
	// TraceHook, when set, receives every request's finished root span
	// (tests use it to pin span-tree shapes).
	TraceHook func(*telemetry.Span)
	// Shard, when set, makes this node one shard of a partitioned topology:
	// the /v1/shard/* protocol is served, writes for vertices owned elsewhere
	// are rejected with 400 wrong_shard, and /v1/health reports the shard
	// identity. The node's graph must be the matching shard subgraph
	// (shard.Subgraph with the same map and id).
	Shard *shard.Serving
	// ShipperStatus, when set on a leader, surfaces outbound replication
	// state (connected follower count, min acked sequence) in /v1/health.
	ShipperStatus func() replica.ShipperStatus
	// MaxSubscriptions caps the standing queries registered at once via
	// GET /v1/subscribe; past it registrations fail with 429
	// subscription_limit. Default 1024.
	MaxSubscriptions int
	// SubscribeHeartbeat is the SSE heartbeat interval on subscription
	// streams (default 15s; tests shorten it).
	SubscribeHeartbeat time.Duration
	// QueryParallelism is the intra-query parallelism budget for /v1/query:
	// a lone Exact or ExactPlus request fans its circle enumeration over up
	// to this many goroutines. The budget is divided by the number of query
	// and batch requests in flight (floor 1), so a saturated server degrades
	// to one goroutine per query instead of oversubscribing cores and
	// collapsing p99 — per-query parallelism helps latency when cores are
	// idle, never throughput when they are not. Batch requests themselves
	// always run their queries serially (the batch's own workers are the
	// parallelism). 0, the default, disables the feature.
	QueryParallelism int
}

func (c Config) queryTimeout() time.Duration {
	if c.QueryTimeout > 0 {
		return c.QueryTimeout
	}
	return 15 * time.Second
}

func (c Config) maxBodyBytes() int64 {
	if c.MaxBodyBytes > 0 {
		return c.MaxBodyBytes
	}
	return 1 << 20
}

func (c Config) stalenessBound() time.Duration {
	if c.StalenessBound != 0 {
		return c.StalenessBound
	}
	return 10 * time.Second
}

func (c Config) logger() *slog.Logger {
	if c.Logger != nil {
		return c.Logger
	}
	return slog.Default()
}

// Server serves SAC queries over one spatial graph — as a standalone
// in-memory server, a durable leader, or a read-only replica.
type Server struct {
	name   string
	eng    *snapshot.Engine  // nil in replica mode (the follower owns engines)
	st     *store.Store      // non-nil when serving a durable store
	rep    *replica.Follower // non-nil in replica mode
	cfg    Config
	mux    *http.ServeMux
	nextID atomic.Uint64 // request-id fallback counter
	start  time.Time     // boot time, for health's uptimeSeconds

	// Instruments; all nil-safe no-ops when cfg.Metrics is nil.
	httpMet      telemetry.HTTPMetrics
	queryDur     *telemetry.HistogramVec // per-algorithm search latency
	statCand     *telemetry.CounterVec   // per-algorithm core.Stats counters
	statFeas     *telemetry.CounterVec
	statBinIters *telemetry.CounterVec
	statCircles  *telemetry.CounterVec
	statCacheHit *telemetry.CounterVec
	parBudget    *telemetry.Counter // requested parallelism-budget goroutines
	parEffective *telemetry.Counter // goroutines actually granted under load

	// inflight counts query and batch requests being served right now; it
	// scales the per-query parallelism budget down under concurrent load.
	inflight atomic.Int64

	// cert caches the shard exactness certificate for the current topology
	// (sharded nodes only; see certFor).
	cert atomic.Pointer[certCache]

	// subs drives the standing queries registered on this node; feed is the
	// publication firehose served to routers at /v1/shard/watch (sharded
	// nodes only, nil otherwise).
	subs *subscribe.Manager
	feed *subscribe.Feed
}

// New creates a server over g with default configuration. The server takes
// ownership of g (its writer goroutine mutates it); release the writer with
// Close when done. name labels the dataset in the health response.
func New(name string, g *graph.Graph) *Server {
	return NewWithConfig(name, g, Config{})
}

// NewWithConfig creates a server over g with explicit configuration.
func NewWithConfig(name string, g *graph.Graph, cfg Config) *Server {
	return newServer(name, snapshot.New(g, snapshot.Options{
		QueueLen: cfg.WriterQueue,
		BatchMax: cfg.WriterBatch,
		Metrics:  cfg.Metrics,
	}), nil, nil, cfg)
}

// NewWithStore creates a server over an open durable store: writes ride the
// store's write-ahead log (write-visible implies logged), the health
// response gains the durability stats, and Close shuts the store down
// (final checkpoint included). The store's engine options win over
// cfg.WriterQueue/WriterBatch — they were fixed at store.Open.
func NewWithStore(name string, st *store.Store, cfg Config) *Server {
	return newServer(name, st.Engine(), st, nil, cfg)
}

// NewReplica creates a read-only server over a replication follower: reads
// serve from the follower's replicated snapshots (re-fetched per request,
// since the follower swaps engines on re-sync), writes are refused with 503
// read_only, and reads are shed with 503 + Retry-After while the replica is
// unsynced or staler than cfg.StalenessBound. The server takes ownership of
// f; Close stops replication (the last synced state stays readable by other
// holders of f, not through this server).
func NewReplica(name string, f *replica.Follower, cfg Config) *Server {
	return newServer(name, nil, nil, f, cfg)
}

func newServer(name string, eng *snapshot.Engine, st *store.Store, rep *replica.Follower, cfg Config) *Server {
	s := &Server{
		name:  name,
		eng:   eng,
		st:    st,
		rep:   rep,
		cfg:   cfg,
		mux:   http.NewServeMux(),
		start: time.Now(),
	}
	reg := cfg.Metrics // nil-safe: every constructor below no-ops on nil
	s.httpMet = telemetry.NewHTTPMetrics(reg)
	s.queryDur = reg.HistogramVec("sac_query_duration_seconds",
		"SAC search latency by algorithm (single queries and shard legs).", nil, "algo")
	s.statCand = reg.CounterVec("sac_query_candidate_vertices_total",
		"Candidate-set vertices examined, by algorithm (paper Section 5 counter).", "algo")
	s.statFeas = reg.CounterVec("sac_query_feasibility_checks_total",
		"Feasibility checks run, by algorithm.", "algo")
	s.statBinIters = reg.CounterVec("sac_query_binary_iters_total",
		"Binary-search iterations over the radius, by algorithm.", "algo")
	s.statCircles = reg.CounterVec("sac_query_circles_examined_total",
		"Covering circles enumerated, by algorithm.", "algo")
	s.statCacheHit = reg.CounterVec("sac_query_cache_hits_total",
		"Candidate-cache hits, by algorithm.", "algo")
	s.parBudget = reg.Counter("sac_query_parallelism_budget_total",
		"Goroutines the configured per-query parallelism budget would grant.")
	s.parEffective = reg.Counter("sac_query_parallelism_effective_total",
		"Goroutines actually granted after scaling the budget by in-flight load.")
	// /v1 is the current surface; the unversioned /api prefix predates
	// versioning and stays wired to the same handlers as a deprecated
	// alias (ServeHTTP stamps those responses with a Deprecation header).
	for _, p := range []string{"/v1", "/api"} {
		s.mux.HandleFunc("GET "+p+"/health", s.handleHealth)
		s.mux.HandleFunc("GET "+p+"/ready", s.handleReady)
		s.mux.HandleFunc("GET "+p+"/algorithms", s.handleAlgorithms)
		s.mux.HandleFunc("GET "+p+"/vertex/{id}", s.handleVertex)
		s.mux.HandleFunc("POST "+p+"/query", s.handleQuery)
		s.mux.HandleFunc("POST "+p+"/batch", s.handleBatch)
		s.mux.HandleFunc("POST "+p+"/checkin", s.handleCheckin)
		s.mux.HandleFunc("POST "+p+"/edge", s.handleEdge)
	}
	// Standing queries and the shard protocol post-date /api, so they exist
	// only under /v1.
	s.mux.HandleFunc("GET /v1/subscribe", s.handleSubscribe)
	if cfg.Shard != nil {
		s.mux.HandleFunc("GET /v1/shard/info", s.handleShardInfo)
		s.mux.HandleFunc("POST /v1/shard/search", s.handleShardSearch)
		s.mux.HandleFunc("POST /v1/shard/expand", s.handleShardExpand)
		s.mux.HandleFunc("POST /v1/shard/range", s.handleShardRange)
		s.mux.HandleFunc("GET /v1/shard/watch", s.handleShardWatch)
	}
	s.subs = subscribe.NewManager(subscribe.ManagerOptions{
		Current: func() *snapshot.Snap {
			if e := s.engine(); e != nil {
				return e.Current()
			}
			return nil
		},
		Hub:    subscribe.Options{Metrics: reg, MaxSubscriptions: cfg.MaxSubscriptions},
		Logger: cfg.logger(),
	})
	if cfg.Shard != nil {
		s.feed = subscribe.NewFeed(subscribe.Options{Metrics: reg})
	}
	hook := func(sn *snapshot.Snap, evs []snapshot.AppliedEvent) {
		s.subs.Notify(sn, evs)
		if s.feed != nil {
			s.feed.Notify(sn, evs)
		}
	}
	if rep != nil {
		rep.SetOnPublish(hook)
	} else {
		eng.SetOnPublish(hook)
	}
	if cfg.Metrics != nil && cfg.ServeMetrics {
		s.mux.Handle("GET /metrics", cfg.Metrics.Handler())
	}
	return s
}

// Close stops the writer goroutine (and, for a durable server, checkpoints
// and closes the store; for a replica, stops replication). In-flight
// queries finish against their pinned snapshots; pending writes fail with
// an error.
func (s *Server) Close() {
	s.DrainSubscriptions()
	switch {
	case s.rep != nil:
		s.rep.Close()
	case s.st != nil:
		_ = s.st.Close()
	default:
		s.eng.Close()
	}
}

// DrainSubscriptions flushes pending deltas to every standing-query stream,
// writes the terminal bye event, and closes the streams. Daemons call it on
// SIGTERM before http.Server.Shutdown, so Shutdown's wait-for-handlers sees
// the SSE handlers exit instead of hanging until the write timeout. Safe to
// call more than once; Close calls it too.
func (s *Server) DrainSubscriptions() {
	s.subs.Close()
	if s.feed != nil {
		s.feed.Close()
	}
}

// Subscriptions exposes the standing-query manager (tests).
func (s *Server) Subscriptions() *subscribe.Manager { return s.subs }

// Engine exposes the snapshot engine (benchmarks and embedding callers). In
// replica mode the engine changes across re-syncs and is nil before the
// first sync completes.
func (s *Server) Engine() *snapshot.Engine { return s.engine() }

// engine returns the engine currently serving this node's state: the fixed
// one on a standalone/durable server, the follower's latest on a replica.
func (s *Server) engine() *snapshot.Engine {
	if s.rep != nil {
		return s.rep.Engine()
	}
	return s.eng
}

// role names what this node is in the replication topology.
func (s *Server) role() string {
	switch {
	case s.rep != nil:
		return "replica"
	case s.st != nil:
		return "leader"
	default:
		return "standalone"
	}
}

// readEngine gates the read path. On a leader or standalone server it always
// admits. On a replica it sheds with 503 + Retry-After when the node has
// never synced or its replication lag exceeds the staleness bound — the
// typed client treats that as a signal to fail the read over to another
// endpoint. Reports whether the request may proceed; on false the response
// has been written.
func (s *Server) readEngine(w http.ResponseWriter, r *http.Request) (*snapshot.Engine, bool) {
	if s.rep == nil {
		return s.eng, true
	}
	rs := s.rep.Status()
	if !rs.Synced {
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusServiceUnavailable, CodeNotReady, "",
			"replica has not completed its initial sync")
		return nil, false
	}
	if bound := s.cfg.stalenessBound(); bound > 0 && rs.LagSeconds > bound.Seconds() {
		w.Header().Set("Retry-After", "1")
		writeError(w, r, http.StatusServiceUnavailable, CodeStaleRead, "",
			fmt.Sprintf("replica is %.1fs behind the leader (bound %s)", rs.LagSeconds, bound))
		return nil, false
	}
	return s.rep.Engine(), true
}

// Handler returns the HTTP handler tree.
func (s *Server) Handler() http.Handler { return s }

// ServeHTTP implements http.Handler: it assigns the request id, starts the
// request's root trace span (linking it to the caller's span when the
// X-Trace-Span header names one), stamps deprecation metadata on legacy
// /api/* calls, then routes. On the way out it observes the sac_http_*
// metrics, logs slow requests with their full span tree, and hands the
// finished span to cfg.TraceHook. A handler panic is recovered here: the
// stack is logged with the request and span ids, and — if the handler had
// not started its response — the client gets a 500 envelope instead of a
// severed connection.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	id := sanitizeRequestID(r.Header.Get("X-Request-Id"))
	if id == "" {
		id = s.newRequestID()
	}
	w.Header().Set("X-Request-Id", id)
	if rest, ok := strings.CutPrefix(r.URL.Path, "/api/"); ok {
		w.Header().Set("Deprecation", "true")
		w.Header().Set("Link", `</v1/`+rest+`>; rel="successor-version"`)
	}
	route := telemetry.RouteLabel(r.URL.Path)
	ctx := context.WithValue(r.Context(), requestIDKey{}, id)
	ctx, span := telemetry.StartSpan(ctx, r.Method+" "+route)
	span.Remote = sanitizeRequestID(r.Header.Get(telemetry.TraceHeader))
	w.Header().Set(telemetry.TraceHeader, span.ID)
	r = r.WithContext(ctx)
	rw := &trackingWriter{ResponseWriter: w}
	start := time.Now()
	s.httpMet.Inflight.Add(1)
	defer func() {
		p := recover()
		if p != nil && p != http.ErrAbortHandler {
			s.cfg.logger().Error("panic serving request",
				"method", r.Method, "path", r.URL.Path, "requestId", id,
				"spanId", span.ID, "panic", p, "stack", string(debug.Stack()))
			if !rw.wrote {
				writeError(rw, r, http.StatusInternalServerError, CodeInternal, "",
					"internal server error (request "+id+")")
			}
		}
		span.End()
		elapsed := time.Since(start)
		s.httpMet.Inflight.Add(-1)
		s.httpMet.Requests.With(route, r.Method, strconv.Itoa(rw.status())).Inc()
		s.httpMet.Duration.With(route).Observe(elapsed.Seconds())
		if t := s.cfg.SlowQueryThreshold; t > 0 && elapsed >= t {
			s.cfg.logger().Warn("slow request",
				"method", r.Method, "route", route, "requestId", id, "spanId", span.ID,
				"elapsed", elapsed, "status", rw.status(), "trace", "\n"+span.Tree())
		}
		if s.cfg.TraceHook != nil {
			s.cfg.TraceHook(span)
		}
	}()
	s.mux.ServeHTTP(rw, r)
}

// trackingWriter records whether the response has started (so the panic
// recovery knows if a 500 envelope can still be sent) and the status code
// (for the request metrics).
type trackingWriter struct {
	http.ResponseWriter
	wrote bool
	code  int
}

func (w *trackingWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
	}
	w.wrote = true
	w.ResponseWriter.WriteHeader(code)
}

func (w *trackingWriter) Write(b []byte) (int, error) {
	w.wrote = true
	return w.ResponseWriter.Write(b)
}

// Unwrap lets http.ResponseController reach the underlying writer's Flush
// and SetWriteDeadline — the SSE handlers need both.
func (w *trackingWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// status is the response code sent to the client (200 when the handler
// never called WriteHeader explicitly).
func (w *trackingWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

type requestIDKey struct{}

// requestID returns the id ServeHTTP assigned to this request.
func requestID(r *http.Request) string {
	id, _ := r.Context().Value(requestIDKey{}).(string)
	return id
}

// sanitizeRequestID accepts a caller-supplied request id only if it is
// short and plain (letters, digits, dot, dash, underscore) — anything else
// is discarded and replaced server-side.
func sanitizeRequestID(id string) string {
	if len(id) == 0 || len(id) > 64 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '-', c == '_':
		default:
			return ""
		}
	}
	return id
}

// newRequestID generates a fresh request id.
func (s *Server) newRequestID() string {
	var b [6]byte
	if _, err := rand.Read(b[:]); err != nil {
		return fmt.Sprintf("req-%012d", s.nextID.Add(1))
	}
	return "req-" + hex.EncodeToString(b[:])
}

// --- wire types -----------------------------------------------------------

// CircleJSON is a JSON-friendly circle.
type CircleJSON struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
	R float64 `json:"r"`
}

// StatsJSON carries the per-query work counters.
type StatsJSON struct {
	CandidateSize     int    `json:"candidateSize"`
	FeasibilityChecks int    `json:"feasibilityChecks"`
	BinaryIters       int    `json:"binaryIters"`
	ElapsedMicros     int64  `json:"elapsedMicros"`
	Algorithm         string `json:"algorithm"`
}

// QueryRequest is one SAC query — the wire image of core.Query. Parameter
// fields are pointers so the wire distinguishes "absent → registry default"
// from an explicit zero: AppFast(0) is a legitimate request (it degenerates
// to the AppInc answer) that a plain float64 field could never express.
type QueryRequest struct {
	Q     graph.V  `json:"q"`
	K     int      `json:"k"`
	Algo  string   `json:"algo,omitempty"`  // registry name or alias; "" = default
	EpsF  *float64 `json:"epsF,omitempty"`  // AppFast (default 0.5)
	EpsA  *float64 `json:"epsA,omitempty"`  // AppAcc / Exact+ (defaults 0.5 / 1e-3)
	Theta *float64 `json:"theta,omitempty"` // θ-SAC's radius (required when algo = "theta")
	// Structure optionally asserts the structure metric the query expects
	// ("kcore", "ktruss", "kclique"); a server built with a different
	// metric rejects the query instead of silently answering.
	Structure string `json:"structure,omitempty"`
	// TimeoutMillis, when positive, bounds this query with its own
	// deadline; the server's per-request deadline still applies on top, so
	// the effective bound is the smaller of the two.
	TimeoutMillis int64 `json:"timeoutMillis,omitempty"`
}

// toQuery converts the wire shape to the core request.
func (r QueryRequest) toQuery() core.Query {
	return core.Query{
		Algo:      r.Algo,
		Q:         r.Q,
		K:         r.K,
		EpsF:      r.EpsF,
		EpsA:      r.EpsA,
		Theta:     r.Theta,
		Structure: r.Structure,
		Timeout:   time.Duration(r.TimeoutMillis) * time.Millisecond,
	}
}

// QueryResponse is one SAC answer.
type QueryResponse struct {
	Q       graph.V    `json:"q"`
	K       int        `json:"k"`
	Members []graph.V  `json:"members"`
	MCC     CircleJSON `json:"mcc"`
	Delta   float64    `json:"delta"`
	Stats   StatsJSON  `json:"stats"`
}

// BatchQueryJSON is one (q, k) item of a batch.
type BatchQueryJSON struct {
	Q graph.V `json:"q"`
	K int     `json:"k"`
}

// BatchRequest is a set of queries answered together with shared algorithm
// parameters (same presence semantics as QueryRequest).
type BatchRequest struct {
	Queries   []BatchQueryJSON `json:"queries"`
	Algo      string           `json:"algo,omitempty"`
	EpsF      *float64         `json:"epsF,omitempty"`
	EpsA      *float64         `json:"epsA,omitempty"`
	Theta     *float64         `json:"theta,omitempty"`
	Structure string           `json:"structure,omitempty"`
	Workers   int              `json:"workers,omitempty"`
}

// BatchResponse carries per-query answers; failed queries have Error set.
type BatchResponse struct {
	Items []BatchItemJSON `json:"items"`
}

// BatchItemJSON is one batch answer.
type BatchItemJSON struct {
	Q       graph.V    `json:"q"`
	K       int        `json:"k"`
	Members []graph.V  `json:"members,omitempty"`
	MCC     CircleJSON `json:"mcc"`
	Error   string     `json:"error,omitempty"`
}

// CheckinRequest moves one vertex.
type CheckinRequest struct {
	V graph.V `json:"v"`
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// EdgeRequest inserts or deletes one undirected friendship edge.
type EdgeRequest struct {
	U  graph.V `json:"u"`
	V  graph.V `json:"v"`
	Op string  `json:"op"` // insert | delete
}

// EdgeResponse reports the outcome of an edge update. Changed is false when
// the request was a no-op (inserting a present edge, deleting an absent
// one); Edges is the undirected edge count afterwards.
type EdgeResponse struct {
	OK      bool `json:"ok"`
	Changed bool `json:"changed"`
	Edges   int  `json:"edges"`
}

// ErrorJSON is the structured error envelope every non-2xx response
// carries: a human-readable message (the legacy "error" field, kept for
// pre-/v1 clients), a machine-readable code, the offending field when
// known, and the request id for correlation.
type ErrorJSON struct {
	Error     string `json:"error"`
	Code      string `json:"code"`
	Field     string `json:"field,omitempty"`
	RequestID string `json:"requestId,omitempty"`
}

// --- handlers ---------------------------------------------------------------

// writeError emits the structured envelope on every non-2xx path.
func writeError(w http.ResponseWriter, r *http.Request, status int, code, field, msg string) {
	writeJSON(w, status, ErrorJSON{Error: msg, Code: code, Field: field, RequestID: requestID(r)})
}

// handleHealth reports the node's role in the replication topology, a
// top-level status verdict, and the published snapshot's epochs, writer
// queue depth and worker-pool size, so operators can see publication lag at
// a glance: a growing writerQueue with a stalled snapshotSeq means the
// writer is behind.
//
// status is "ok", "readonly" or "degraded" (degraded wins over readonly):
// readonly means reads work but writes are refused — a healthy replica, a
// fenced ex-leader, or a leader whose WAL latched ErrPersist; degraded means
// something needs attention — a checkpoint error, a replica that is
// unsynced, disconnected, or beyond the staleness bound.
func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	readonly, degraded := false, false
	health := map[string]any{
		"dataset":       s.name,
		"apiVersions":   []string{"v1"},
		"role":          s.role(),
		"durable":       s.st != nil,
		"uptimeSeconds": int64(time.Since(s.start).Seconds()),
		"build":         version.Get(),
	}
	if eng := s.engine(); eng != nil {
		snap := eng.Current()
		health["vertices"] = snap.Graph().NumVertices()
		health["edges"] = snap.Edges()
		health["topoEpoch"] = snap.TopoEpoch()
		health["locEpoch"] = snap.LocEpoch()
		health["snapshotSeq"] = snap.Seq()
		health["writerQueue"] = eng.QueueDepth()
		health["eventsApplied"] = eng.Applied()
		health["poolClones"] = eng.PoolClones()
	}
	if s.st != nil {
		// Durability at a glance: a growing walSegments with a stalled
		// lastCheckpointSeq (or a non-empty checkpointError) means the
		// checkpointer fell behind and recovery time is growing.
		ds := s.st.Stats()
		health["walSegments"] = ds.WalSegments
		health["walBytes"] = ds.WalBytes
		health["walLastSeq"] = ds.WalLastSeq
		health["lastCheckpointSeq"] = ds.LastCheckpointSeq
		health["fsyncPolicy"] = ds.FsyncPolicy
		health["epoch"] = ds.Epoch
		if ds.FencedBy != 0 {
			health["fencedBy"] = ds.FencedBy
		}
		if ds.CheckpointError != "" {
			health["checkpointError"] = ds.CheckpointError
			degraded = true
		}
		// A fenced or persist-latched leader still answers reads from its
		// published snapshots; only its write path is gone.
		readonly = s.st.Fenced() || s.eng.PersistFailed()
	}
	if s.cfg.ShipperStatus != nil {
		// Outbound replication as seen from the leader: how many followers
		// hold a live session and the slowest one's acknowledged sequence —
		// lag measured here, not on the follower, so a disconnected or
		// stalled follower is visible from the node operators actually watch.
		ss := s.cfg.ShipperStatus()
		health["followers"] = ss.Followers
		health["minAckedSeq"] = ss.MinAckedSeq
	}
	if s.cfg.Shard != nil {
		health["shardId"] = s.cfg.Shard.ID
		health["shards"] = s.cfg.Shard.Map.Shards
		health["shardMapChecksum"] = s.cfg.Shard.Map.Checksum()
	}
	if s.rep != nil {
		rs := s.rep.Status()
		health["replication"] = rs
		health["epoch"] = rs.LeaderEpoch
		readonly = true // a replica never accepts writes
		bound := s.cfg.stalenessBound()
		degraded = !rs.Synced || !rs.Connected ||
			(bound > 0 && rs.LagSeconds > bound.Seconds())
	}
	switch {
	case degraded:
		health["status"] = "degraded"
	case readonly:
		health["status"] = "readonly"
	default:
		health["status"] = "ok"
	}
	writeJSON(w, http.StatusOK, health)
}

// handleReady is the orchestration probe: 200 once this node can serve
// reads, 503 before that. A leader is ready as soon as it is constructed
// (store recovery completed in Open, before any listener existed); a
// replica is ready once its initial state transfer lands. Health stays 200
// throughout — readiness gates traffic, health describes it.
func (s *Server) handleReady(w http.ResponseWriter, r *http.Request) {
	if s.rep != nil {
		if rs := s.rep.Status(); !rs.Synced {
			w.Header().Set("Retry-After", "1")
			writeError(w, r, http.StatusServiceUnavailable, CodeNotReady, "",
				"replica has not completed its initial sync")
			return
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true, "role": s.role()})
}

// handleAlgorithms serves the algorithm registry verbatim: names, aliases,
// ratios and full parameter schemas (type, required, default, range). The
// response is generated from core.Algorithms, so it can never drift from
// what /v1/query actually accepts.
func (s *Server) handleAlgorithms(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, core.Algorithms())
}

func (s *Server) handleVertex(w http.ResponseWriter, r *http.Request) {
	eng, ok := s.readEngine(w, r)
	if !ok {
		return
	}
	snap := eng.Current()
	g := snap.Graph()
	// A malformed id is the caller's syntax error (400); a well-formed id
	// naming no vertex is a lookup miss (404). Conflating them (as the
	// pre-/v1 server did) hides client bugs behind retry loops.
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, r, http.StatusBadRequest, CodeInvalidArgument, "id",
			fmt.Sprintf("malformed vertex id %q", r.PathValue("id")))
		return
	}
	if id < 0 || id >= g.NumVertices() {
		writeError(w, r, http.StatusNotFound, CodeUnknownVertex, "id",
			fmt.Sprintf("unknown vertex %d", id))
		return
	}
	v := graph.V(id)
	loc := g.Loc(v)
	writeJSON(w, http.StatusOK, map[string]any{
		"id":     v,
		"x":      loc.X,
		"y":      loc.Y,
		"degree": g.Degree(v),
		"core":   snap.CoreNumber(v),
	})
}

// decodeJSON decodes a POST body under the configured size cap, translating
// an exceeded cap into 413 and malformed JSON into 400. It reports whether
// decoding succeeded; on failure the response has been written.
func (s *Server) decodeJSON(w http.ResponseWriter, r *http.Request, into any) bool {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.maxBodyBytes())
	if err := json.NewDecoder(r.Body).Decode(into); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, r, http.StatusRequestEntityTooLarge, CodeBodyTooLarge, "",
				fmt.Sprintf("request body exceeds %d bytes", tooBig.Limit))
			return false
		}
		writeError(w, r, http.StatusBadRequest, CodeInvalidJSON, "", "invalid JSON: "+err.Error())
		return false
	}
	return true
}

// requestCtx derives the per-request context: the client's own cancellation
// plus the server's query deadline.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), s.cfg.queryTimeout())
}

// writeQueryError maps a query error onto a status code and envelope.
func writeQueryError(w http.ResponseWriter, r *http.Request, err error) {
	var qe *core.QueryError
	switch {
	case errors.As(err, &qe):
		writeError(w, r, http.StatusBadRequest, qe.Code, qe.Field, err.Error())
	case errors.Is(err, core.ErrNoCommunity):
		writeError(w, r, http.StatusNotFound, CodeNoCommunity, "", err.Error())
	case errors.Is(err, core.ErrCanceled):
		// The deadline fired (a vanished client never reads the response, so
		// in practice this status reports server-side timeouts).
		writeError(w, r, http.StatusServiceUnavailable, CodeDeadlineExceeded, "", err.Error())
	default:
		writeError(w, r, http.StatusUnprocessableEntity, CodeQueryFailed, "", err.Error())
	}
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	var req QueryRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	eng, ok := s.readEngine(w, r)
	if !ok {
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	// Pin the current snapshot and dispatch through the unified Search
	// entry point on a pooled worker rebound to it — registry-validated,
	// no locks anywhere on this path.
	snap := eng.Current()
	searcher := snap.Get()
	defer snap.Put(searcher)
	// Scale the per-query parallelism budget by the in-flight count: an idle
	// server gives this query the whole budget, a saturated one hands out
	// serial searchers. The previous value is restored before the worker
	// returns to the pool (defers run LIFO, so this precedes snap.Put).
	if n := s.cfg.QueryParallelism; n > 1 {
		inf := s.inflight.Add(1)
		defer s.inflight.Add(-1)
		eff := n / int(inf)
		if eff < 1 {
			eff = 1
		}
		s.parBudget.Add(uint64(n))
		s.parEffective.Add(uint64(eff))
		prev := searcher.Parallelism()
		searcher.SetParallelism(eff)
		defer searcher.SetParallelism(prev)
	}
	ctx, qspan := telemetry.StartSpan(ctx, "search")
	res, err := searcher.Search(ctx, req.toQuery())
	qspan.End()
	if err != nil {
		writeQueryError(w, r, err)
		return
	}
	spec, _ := core.LookupAlgo(req.Algo) // Search succeeded, so the name resolves
	qspan.SetAttr("algo", spec.Name)
	qspan.SetAttr("q", req.Q)
	qspan.SetAttr("k", req.K)
	s.observeQuery(spec.Name, res.Stats)
	writeJSON(w, http.StatusOK, toQueryResponse(spec.Name, res))
}

// observeQuery records one successful search's latency and the paper's
// per-query work counters under the algorithm label.
func (s *Server) observeQuery(algo string, st core.Stats) {
	s.queryDur.With(algo).Observe(st.Elapsed.Seconds())
	s.statCand.With(algo).Add(uint64(st.CandidateSize))
	s.statFeas.With(algo).Add(uint64(st.FeasibilityChecks))
	s.statBinIters.With(algo).Add(uint64(st.BinaryIters))
	s.statCircles.With(algo).Add(uint64(st.CirclesExamined))
	s.statCacheHit.With(algo).Add(uint64(st.CacheHits))
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	var req BatchRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, r, http.StatusBadRequest, core.ErrCodeInvalidQuery, "queries", "empty batch")
		return
	}
	// The template carries everything but q and k; validating it up front
	// through the registry fails the whole batch with one 400 (bad
	// algorithm name, out-of-range epsilon) before any worker runs.
	// Per-item problems — unknown vertex, k < 1 — surface as item errors.
	template := core.Query{
		Algo:      req.Algo,
		EpsF:      req.EpsF,
		EpsA:      req.EpsA,
		Theta:     req.Theta,
		Structure: req.Structure,
	}
	if _, err := core.ValidateParams(template); err != nil {
		writeQueryError(w, r, err)
		return
	}
	// The whole batch runs pinned to one snapshot: the Snap is the worker
	// source, so every worker is rebound to the same published state and the
	// batch deadline cancels stragglers mid-algorithm.
	eng, ok := s.readEngine(w, r)
	if !ok {
		return
	}
	snap := eng.Current()
	// The structure assertion is also batch-level, not per-item: an unknown
	// name or a metric the server does not serve fails the whole request
	// with the same 400 a single query gets, instead of a 200 whose every
	// item errored.
	if template.Structure != "" {
		worker := snap.Get()
		err := worker.ValidateQuery(core.Query{Q: 0, K: 1, Structure: template.Structure})
		snap.Put(worker)
		if err != nil {
			writeQueryError(w, r, err)
			return
		}
	}
	queries := make([]batch.Query, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = batch.Query{Q: q.Q, K: q.K}
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	// Batches count toward the in-flight load that scales down single-query
	// parallelism, but their own workers stay serial: the batch already owns
	// its cores via worker fan-out.
	s.inflight.Add(1)
	defer s.inflight.Add(-1)
	items := batch.RunOn(ctx, snap, queries, batch.Options{
		Workers:  req.Workers,
		Template: template,
	})
	// A batch whose deadline actually cut queries short is a server-side
	// timeout, same as a single query's: report 503 rather than
	// 200-with-error-items, so status-keyed clients and monitors see it.
	// The signal is the items themselves, not ctx.Err() — a deadline that
	// fires in the instant after the last query completed should not throw
	// a fully successful batch away. (Partial results are discarded; the
	// client's retry re-runs the batch.)
	for _, it := range items {
		if it.Err != nil && errors.Is(it.Err, core.ErrCanceled) {
			writeError(w, r, http.StatusServiceUnavailable, CodeDeadlineExceeded, "",
				"batch deadline exceeded: "+it.Err.Error())
			return
		}
	}

	resp := BatchResponse{Items: make([]BatchItemJSON, len(items))}
	for i, it := range items {
		out := BatchItemJSON{Q: it.Q, K: it.K}
		if it.Err != nil {
			out.Error = it.Err.Error()
		} else {
			out.Members = it.Result.Members
			out.MCC = CircleJSON{X: it.Result.MCC.C.X, Y: it.Result.MCC.C.Y, R: it.Result.MCC.R}
		}
		resp.Items[i] = out
	}
	writeJSON(w, http.StatusOK, resp)
}

// writeWriteError maps a mutation error (checkin/edge) onto a status code.
func (s *Server) writeWriteError(w http.ResponseWriter, r *http.Request, err error) {
	status, code := http.StatusUnprocessableEntity, CodeQueryFailed
	switch {
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status, code = http.StatusServiceUnavailable, CodeDeadlineExceeded
	case errors.Is(err, snapshot.ErrClosed):
		status, code = http.StatusServiceUnavailable, CodeUnavailable
	case errors.Is(err, snapshot.ErrPersist):
		// The WAL refused the write; the engine is read-only until the
		// operator intervenes. 503, not 422 — the request was fine.
		status, code = http.StatusServiceUnavailable, CodeUnavailable
	case errors.Is(err, store.ErrFenced):
		// A newer leader epoch exists; this node must never accept another
		// write. 503 read_only so a failover-aware client retries the write
		// against the rest of its endpoint set and finds the new leader.
		status, code = http.StatusServiceUnavailable, CodeReadOnly
	}
	writeError(w, r, status, code, "", err.Error())
}

// admitWrite rejects mutations on a replica before any decoding happens.
// Reports whether the write may proceed; on false the 503 is written.
func (s *Server) admitWrite(w http.ResponseWriter, r *http.Request) bool {
	if s.rep == nil {
		return true
	}
	writeError(w, r, http.StatusServiceUnavailable, CodeReadOnly, "",
		"replica is read-only; send writes to the leader")
	return false
}

// checkIn routes a check-in through the store when one exists — the fencing
// gate lives there — and straight to the engine otherwise.
func (s *Server) checkIn(ctx context.Context, v graph.V, p geom.Point) error {
	if s.st != nil {
		return s.st.CheckIn(ctx, v, p)
	}
	return s.eng.CheckIn(ctx, v, p)
}

// updateEdge is checkIn's counterpart for topology mutations.
func (s *Server) updateEdge(ctx context.Context, u, v graph.V, insert bool) (bool, error) {
	if s.st != nil {
		return s.st.UpdateEdge(ctx, u, v, insert)
	}
	return s.eng.UpdateEdge(ctx, u, v, insert)
}

func (s *Server) handleCheckin(w http.ResponseWriter, r *http.Request) {
	if !s.admitWrite(w, r) {
		return
	}
	var req CheckinRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	if req.V < 0 || int(req.V) >= s.eng.NumVertices() {
		writeError(w, r, http.StatusNotFound, CodeUnknownVertex, "v",
			fmt.Sprintf("unknown vertex %d", req.V))
		return
	}
	// A sharded node only accepts check-ins for vertices it owns: a ghost's
	// location here is a frozen partition-time copy that no certified or
	// assembled answer ever reads, and letting writes land on it would fork
	// it from the owner's authoritative state.
	if s.cfg.Shard != nil && !s.cfg.Shard.Owns(req.V) {
		writeError(w, r, http.StatusBadRequest, CodeWrongShard, "v",
			fmt.Sprintf("vertex %d is owned by shard %d, not shard %d",
				req.V, s.cfg.Shard.Map.OwnerOf(req.V), s.cfg.Shard.ID))
		return
	}
	// Reject non-finite coordinates before they reach the graph: NaN poisons
	// every distance sort it touches and ±Inf breaks geom.MCC, silently, on
	// queries that may run long after this request returned 200.
	if !geom.Finite(req.X) || !geom.Finite(req.Y) {
		writeError(w, r, http.StatusBadRequest, CodeInvalidArgument, "x",
			fmt.Sprintf("coordinates (%v, %v) must be finite", req.X, req.Y))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if err := s.checkIn(ctx, req.V, geom.Point{X: req.X, Y: req.Y}); err != nil {
		s.writeWriteError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ok": true})
}

// handleEdge mutates the friendship graph through the writer goroutine,
// which repairs the core decomposition incrementally and publishes a
// snapshot containing the change before this handler responds; queries
// pinned to older snapshots keep serving the pre-change state.
func (s *Server) handleEdge(w http.ResponseWriter, r *http.Request) {
	if !s.admitWrite(w, r) {
		return
	}
	var req EdgeRequest
	if !s.decodeJSON(w, r, &req) {
		return
	}
	for _, v := range [2]graph.V{req.U, req.V} {
		if v < 0 || int(v) >= s.eng.NumVertices() {
			writeError(w, r, http.StatusNotFound, CodeUnknownVertex, "",
				fmt.Sprintf("unknown vertex %d", v))
			return
		}
	}
	if req.U == req.V {
		writeError(w, r, http.StatusBadRequest, CodeInvalidArgument, "",
			fmt.Sprintf("self-loop (%d,%d) rejected", req.U, req.V))
		return
	}
	// A sharded node materializes exactly the edges with at least one owned
	// endpoint; an edge owned entirely elsewhere belongs to other shards
	// (the router fans a cross-shard edge to both owners).
	if s.cfg.Shard != nil && !s.cfg.Shard.Owns(req.U) && !s.cfg.Shard.Owns(req.V) {
		writeError(w, r, http.StatusBadRequest, CodeWrongShard, "",
			fmt.Sprintf("edge (%d,%d) has no endpoint owned by shard %d", req.U, req.V, s.cfg.Shard.ID))
		return
	}
	var insert bool
	switch req.Op {
	case "insert":
		insert = true
	case "delete":
		insert = false
	default:
		writeError(w, r, http.StatusBadRequest, CodeInvalidArgument, "op",
			fmt.Sprintf("unknown op %q (want insert or delete)", req.Op))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	changed, err := s.updateEdge(ctx, req.U, req.V, insert)
	if err != nil {
		s.writeWriteError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, EdgeResponse{OK: true, Changed: changed, Edges: s.eng.Current().Edges()})
}

// toQueryResponse converts a core result to the wire shape.
func toQueryResponse(algo string, res *core.Result) QueryResponse {
	return QueryResponse{
		Q:       res.Query,
		K:       res.K,
		Members: res.Members,
		MCC:     CircleJSON{X: res.MCC.C.X, Y: res.MCC.C.Y, R: res.MCC.R},
		Delta:   res.Delta,
		Stats: StatsJSON{
			CandidateSize:     res.Stats.CandidateSize,
			FeasibilityChecks: res.Stats.FeasibilityChecks,
			BinaryIters:       res.Stats.BinaryIters,
			ElapsedMicros:     res.Stats.Elapsed.Microseconds(),
			Algorithm:         algo,
		},
	}
}

// writeJSON writes v with the given status; encoding errors are reported to
// the client only through a truncated body (the status line is already out).
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
