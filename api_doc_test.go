package sacsearch

import (
	"os"
	"strings"
	"testing"
)

// TestReadmeMatchesRegistry keeps the README's "API v1" reference honest
// against the algorithm registry: every registered algorithm name, every
// parameter name, every /v1 route and every error code the server can emit
// must appear in the documentation, and the deprecation of the unversioned
// routes must be called out. The reference is written by hand but checked
// against the registry, so the two cannot drift apart silently.
func TestReadmeMatchesRegistry(t *testing.T) {
	raw, err := os.ReadFile("README.md")
	if err != nil {
		t.Fatal(err)
	}
	readme := string(raw)
	idx := strings.Index(readme, "## API v1")
	if idx < 0 {
		t.Fatal("README has no \"API v1\" section")
	}
	section := readme[idx:]
	if end := strings.Index(section[1:], "\n## "); end >= 0 {
		section = section[:end+1]
	}

	for _, spec := range Algorithms() {
		if !strings.Contains(section, "`"+spec.Name+"`") {
			t.Errorf("API v1 section does not document algorithm %q", spec.Name)
		}
		for _, p := range spec.Params {
			if !strings.Contains(section, "`"+p.Name+"`") {
				t.Errorf("API v1 section does not document parameter %q of %s", p.Name, spec.Name)
			}
		}
	}

	for _, route := range []string{
		"/v1/health", "/v1/ready", "/v1/algorithms", "/v1/vertex/{id}",
		"/v1/query", "/v1/batch", "/v1/checkin", "/v1/edge",
		"/v1/shard/info", "/v1/shard/search", "/v1/shard/expand", "/v1/shard/range",
		"/v1/subscribe", "/v1/shard/watch",
		"/metrics",
	} {
		if !strings.Contains(section, route) {
			t.Errorf("API v1 section does not document route %s", route)
		}
	}

	// Every machine-readable error code, registry-side and server-side.
	codes := []string{
		"unknown_algorithm", "invalid_param", "missing_param",
		"invalid_query", "structure_mismatch", // core.QueryError codes
		"invalid_json", "body_too_large", "invalid_argument",
		"unknown_vertex", "no_community", "deadline_exceeded",
		"unavailable", "query_failed", // server codes
		"read_only", "stale_read", "not_ready", "internal", // replication + recovery codes
		"wrong_shard", "shard_unavailable", // sharded-topology codes
		"unknown_subscription", "subscription_limit", // standing-query codes
	}
	for _, code := range codes {
		if !strings.Contains(section, code) {
			t.Errorf("API v1 section does not document error code %q", code)
		}
	}

	for _, needle := range []string{
		"deprecated", "Deprecation", "X-Request-Id", "sacsearch/client",
		"X-Trace-Span", "uptimeSeconds", "build",
	} {
		if !strings.Contains(section, needle) {
			t.Errorf("API v1 section missing %q", needle)
		}
	}
}

// TestFacadeRegistryExports sanity-checks the facade view of the registry.
func TestFacadeRegistryExports(t *testing.T) {
	if len(Algorithms()) != 6 {
		t.Fatalf("Algorithms() = %d entries, want 6", len(Algorithms()))
	}
	spec, ok := LookupAlgo("ExactPlus")
	if !ok || spec.Name != "exact+" {
		t.Fatalf("LookupAlgo alias = %v, %v", spec, ok)
	}
	if _, ok := LookupAlgo(DefaultAlgo); !ok {
		t.Fatal("DefaultAlgo not registered")
	}
	if v := Float(0.25); v == nil || *v != 0.25 {
		t.Fatalf("Float = %v", v)
	}
	if st, err := ParseStructure("ktruss"); err != nil || st != StructureKTruss {
		t.Fatalf("ParseStructure = %v, %v", st, err)
	}
}
