package sacsearch_test

import (
	"bytes"
	"context"
	"testing"

	"sacsearch"
)

// TestSaveLoadGraphRoundTrip pins the facade's persistence pair: a built
// graph survives SaveGraph/LoadGraph bit-exactly, without touching internal
// packages.
func TestSaveLoadGraphRoundTrip(t *testing.T) {
	g := buildToy(t)
	var buf bytes.Buffer
	if err := sacsearch.SaveGraph(&buf, g); err != nil {
		t.Fatalf("SaveGraph: %v", err)
	}
	got, err := sacsearch.LoadGraph(&buf)
	if err != nil {
		t.Fatalf("LoadGraph: %v", err)
	}
	if got.NumVertices() != g.NumVertices() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip: (%d,%d) vs (%d,%d)",
			got.NumVertices(), got.NumEdges(), g.NumVertices(), g.NumEdges())
	}
	for v := 0; v < g.NumVertices(); v++ {
		if got.Loc(sacsearch.V(v)) != g.Loc(sacsearch.V(v)) {
			t.Fatalf("vertex %d location differs", v)
		}
		na, nb := g.Neighbors(sacsearch.V(v)), got.Neighbors(sacsearch.V(v))
		if len(na) != len(nb) {
			t.Fatalf("vertex %d degree differs", v)
		}
		for i := range na {
			if na[i] != nb[i] {
				t.Fatalf("vertex %d adjacency differs", v)
			}
		}
	}
	// Same answers on both sides: the load is usable, not just structurally
	// equal.
	want, err := sacsearch.NewSearcher(g).AppInc(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	have, err := sacsearch.NewSearcher(got).AppInc(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Members) != len(have.Members) {
		t.Fatalf("answers differ: %v vs %v", want.Members, have.Members)
	}
	// A corrupted stream must fail loudly.
	var buf2 bytes.Buffer
	if err := sacsearch.SaveGraph(&buf2, g); err != nil {
		t.Fatal(err)
	}
	raw := buf2.Bytes()
	raw[len(raw)/2] ^= 0xff
	if _, err := sacsearch.LoadGraph(bytes.NewReader(raw)); err == nil {
		t.Fatal("corrupted graph loaded silently")
	}
}

// TestOpenStoreFacade exercises the durable store through the facade alone:
// bootstrap, write, close, recover.
func TestOpenStoreFacade(t *testing.T) {
	dir := t.TempDir()
	st, err := sacsearch.OpenStore(dir, sacsearch.StoreOptions{
		Init:  buildToy(t),
		Fsync: sacsearch.FsyncAlways,
	})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	if err := st.CheckIn(context.Background(), 1, sacsearch.Point{X: 0.42, Y: 0.24}); err != nil {
		t.Fatal(err)
	}
	var stats sacsearch.StoreStats = st.Stats()
	if stats.WalLastSeq != 1 || stats.FsyncPolicy != string(sacsearch.FsyncAlways) {
		t.Fatalf("stats = %+v", stats)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	st2, err := sacsearch.OpenStore(dir, sacsearch.StoreOptions{})
	if err != nil {
		t.Fatalf("recovery: %v", err)
	}
	defer st2.Close()
	if !st2.Stats().Recovered {
		t.Fatal("second open did not recover")
	}
	if loc := st2.Current().Graph().Loc(1); loc.X != 0.42 || loc.Y != 0.24 {
		t.Fatalf("write lost across OpenStore: %v", loc)
	}
}
