package sacsearch_test

import (
	"errors"
	"math"
	"testing"

	"sacsearch"
)

// buildToy returns a 6-vertex graph with a tight triangle around vertex 0
// and a looser one farther away, both feasible for k=2.
func buildToy(t *testing.T) *sacsearch.Graph {
	t.Helper()
	b := sacsearch.NewBuilder(6)
	edges := [][2]sacsearch.V{{0, 1}, {1, 2}, {2, 0}, {0, 3}, {0, 4}, {3, 4}, {4, 5}}
	for _, e := range edges {
		b.AddEdge(e[0], e[1])
	}
	b.SetLoc(0, sacsearch.Point{X: 0.50, Y: 0.50})
	b.SetLoc(1, sacsearch.Point{X: 0.51, Y: 0.50})
	b.SetLoc(2, sacsearch.Point{X: 0.50, Y: 0.51})
	b.SetLoc(3, sacsearch.Point{X: 0.70, Y: 0.70})
	b.SetLoc(4, sacsearch.Point{X: 0.72, Y: 0.70})
	b.SetLoc(5, sacsearch.Point{X: 0.90, Y: 0.90})
	return b.Build()
}

func TestFacadeSearch(t *testing.T) {
	g := buildToy(t)
	s := sacsearch.NewSearcher(g)
	res, err := s.ExactPlus(0, 2, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	// The tight triangle {0,1,2} wins.
	if res.Size() != 3 || !res.Contains(1) || !res.Contains(2) {
		t.Fatalf("members = %v", res.Members)
	}
	if res.Radius() > 0.02 {
		t.Fatalf("radius = %v, too large", res.Radius())
	}
	// Approximations stay within their guarantees.
	inc, err := s.AppInc(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if inc.Radius() > 2*res.Radius()+1e-9 {
		t.Fatalf("AppInc ratio violated: %v vs %v", inc.Radius(), res.Radius())
	}
	// No community for an impossible k.
	if _, err := s.Exact(5, 2); !errors.Is(err, sacsearch.ErrNoCommunity) {
		t.Fatalf("err = %v", err)
	}
}

func TestFacadeBaselines(t *testing.T) {
	g := buildToy(t)
	b := sacsearch.NewBaselineSearcher(g)
	global := b.Global(0, 2)
	if len(global) == 0 {
		t.Fatal("Global empty")
	}
	p := sacsearch.RunGeoModu(g, 1)
	if p.NumCommunities() == 0 {
		t.Fatal("GeoModu found nothing")
	}
	if got := sacsearch.AvgInternalDegree(g, global); got < 2 {
		t.Fatalf("global avg degree = %v", got)
	}
}

func TestFacadeMetrics(t *testing.T) {
	g := buildToy(t)
	members := []sacsearch.V{0, 1, 2}
	if r := sacsearch.CommunityRadius(g, members); r <= 0 || r > 0.02 {
		t.Fatalf("radius = %v", r)
	}
	if d := sacsearch.CommunityDistPr(g, members, 1); d <= 0 {
		t.Fatalf("distPr = %v", d)
	}
	if got := sacsearch.CJS([]sacsearch.V{1, 2}, []sacsearch.V{2, 3}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("CJS = %v", got)
	}
	c := sacsearch.MCC([]sacsearch.Point{{X: 0, Y: 0}, {X: 1, Y: 0}})
	if math.Abs(c.R-0.5) > 1e-12 {
		t.Fatalf("MCC = %+v", c)
	}
	if got := sacsearch.CAO(c, c); math.Abs(got-1) > 1e-12 {
		t.Fatalf("CAO = %v", got)
	}
}

func TestFacadeDatasetAndWorkload(t *testing.T) {
	if len(sacsearch.DatasetPresets()) != 6 {
		t.Fatal("expected six Table 4 presets")
	}
	ds, err := sacsearch.LoadDataset("syn1", 0.02)
	if err != nil {
		t.Fatal(err)
	}
	qs := sacsearch.QueryWorkload(ds.Graph, 4, 10, 3)
	if len(qs) == 0 {
		t.Fatal("no eligible queries")
	}
	s := sacsearch.NewSearcher(ds.Graph)
	res, err := s.AppFast(qs[0], 4, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() < 5 {
		t.Fatalf("community too small for k=4: %d", res.Size())
	}
}

func TestFacadeGeneratedGraph(t *testing.T) {
	g := sacsearch.GenerateSocialGraph(800, 4000, 5)
	if g.NumVertices() != 800 {
		t.Fatalf("n = %d", g.NumVertices())
	}
	checkins := sacsearch.GenerateCheckins(g, 6)
	if len(checkins) == 0 {
		t.Fatal("no check-ins")
	}
	movers := sacsearch.SelectMovers(g, checkins, 4, 5)
	if len(movers) == 0 {
		t.Fatal("no movers")
	}
}

func TestFacadeDynamicReplay(t *testing.T) {
	g := sacsearch.GenerateSocialGraph(600, 3600, 9)
	checkins := sacsearch.GenerateCheckins(g, 10)
	movers := sacsearch.SelectMovers(g, checkins, 4, 5)
	s := sacsearch.NewSearcher(g)
	search := func(q sacsearch.V, k int) ([]sacsearch.V, sacsearch.Circle, error) {
		res, err := s.AppFast(q, k, 0.5)
		if err != nil {
			return nil, sacsearch.Circle{}, err
		}
		return res.Members, res.MCC, nil
	}
	timelines, err := sacsearch.Replay(g, checkins, movers, 200, 3, search)
	if err != nil {
		t.Fatal(err)
	}
	points := sacsearch.Decay(timelines, []float64{1, 10})
	if len(points) != 2 {
		t.Fatalf("points = %v", points)
	}
}

func TestFacadeKTruss(t *testing.T) {
	g := buildToy(t)
	s := sacsearch.NewSearcherWithStructure(g, sacsearch.StructureKTruss)
	res, err := s.Exact(0, 3) // triangles are 3-trusses
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 3 {
		t.Fatalf("3-truss SAC = %v", res.Members)
	}
}
