// Package version carries the build identity stamped into release
// binaries. CI overrides the variables with -ldflags:
//
//	go build -ldflags "-X sacsearch/internal/version.Version=v1.2.3 \
//	                   -X sacsearch/internal/version.Commit=abc1234" ./...
//
// A plain `go build` leaves the defaults, so local binaries report
// "devel" instead of lying about a release.
package version

import "runtime"

var (
	// Version is the release tag, or "devel" for unstamped builds.
	Version = "devel"
	// Commit is the VCS commit hash, or "devel" for unstamped builds.
	Commit = "devel"
)

// Info is the build block embedded in /v1/health and logged at boot.
type Info struct {
	Version string `json:"version"`
	Commit  string `json:"commit"`
	Go      string `json:"go"`
}

// Get returns the build identity of the running binary.
func Get() Info {
	return Info{Version: Version, Commit: Commit, Go: runtime.Version()}
}
