// Package gen implements the synthetic-data substrate. The paper evaluates
// on four geo-social datasets (Brightkite, Gowalla, Flickr, Foursquare) plus
// two synthetic graphs produced by GTGraph; neither the datasets nor GTGraph
// can be shipped here, so this package regenerates their statistical shape
// from scratch following the paper's own recipe (Section 5.1):
//
//  1. a power-law-degree graph of the target size (preferential attachment
//     by default; R-MAT also available),
//  2. vertex locations assigned by BFS propagation — a seed vertex lands
//     uniformly in [0,1]², and each newly reached neighbor is placed at a
//     distance drawn from N(µ=0.09, σ=0.16) from its parent (values the
//     paper derived from Brightkite), clipped to the unit square,
//  3. optionally, a timestamped check-in stream per user for the dynamic
//     experiment of Section 5.2.3.
package gen

import (
	"math"
	"math/rand"

	"sacsearch/internal/geom"
	"sacsearch/internal/graph"
)

// Spatial placement defaults from Section 5.1.
const (
	DefaultDistMean  = 0.09
	DefaultDistSigma = 0.16
)

// PowerLawGraph generates an undirected graph with n vertices and
// approximately m edges whose degree distribution follows a power law, using
// preferential attachment with a repeated-endpoints sampler. The result is
// connected for n ≥ 2 (every new vertex attaches to existing ones).
func PowerLawGraph(n, m int, seed int64) *graph.Builder {
	rnd := rand.New(rand.NewSource(seed))
	b := graph.NewBuilder(n)
	if n < 2 {
		return b
	}
	// Average attachments per vertex; spread the remainder stochastically so
	// the final edge count lands near m.
	avg := float64(m) / float64(n-1)
	if avg < 1 {
		avg = 1
	}
	// endpoints holds every edge endpoint seen so far; sampling uniformly
	// from it realizes degree-proportional attachment.
	endpoints := make([]graph.V, 0, 2*m+2)
	b.AddEdge(0, 1)
	endpoints = append(endpoints, 0, 1)
	for v := 2; v < n; v++ {
		attach := int(avg)
		if rnd.Float64() < avg-float64(attach) {
			attach++
		}
		if attach < 1 {
			attach = 1
		}
		for e := 0; e < attach; e++ {
			var to graph.V
			if rnd.Float64() < 0.1 {
				// Small uniform component keeps the tail from starving.
				to = graph.V(rnd.Intn(v))
			} else {
				to = endpoints[rnd.Intn(len(endpoints))]
			}
			if to == graph.V(v) {
				continue
			}
			b.AddEdge(graph.V(v), to)
			endpoints = append(endpoints, graph.V(v), to)
		}
	}
	return b
}

// RMATGraph generates an R-MAT graph with 2^scale vertices and m edge
// samples using the standard (a,b,c,d) recursive quadrant probabilities.
// GTGraph's default R-MAT parameters are a=0.45, b=0.15, c=0.15, d=0.25.
func RMATGraph(scale uint, m int, a, b, c float64, seed int64) *graph.Builder {
	rnd := rand.New(rand.NewSource(seed))
	n := 1 << scale
	bld := graph.NewBuilder(n)
	for e := 0; e < m; e++ {
		u, v := 0, 0
		for bit := 0; bit < int(scale); bit++ {
			r := rnd.Float64()
			switch {
			case r < a:
				// upper-left: no bits set
			case r < a+b:
				v |= 1 << bit
			case r < a+b+c:
				u |= 1 << bit
			default:
				u |= 1 << bit
				v |= 1 << bit
			}
		}
		if u != v {
			bld.AddEdge(graph.V(u), graph.V(v))
		}
	}
	return bld
}

// CommunityOverlay spends roughly extraEdges additional edges planting
// dense groups over the builder's vertices: repeatedly pick a random group
// of 12-40 vertices and wire it with edge probability ≈0.55. Preferential
// attachment alone caps every core number at the attachment count (the
// well-known BA property), which would leave the paper's k ∈ {4..16} sweep
// with nothing to find; real geo-social graphs get their deep cores from
// exactly this kind of dense cluster.
func CommunityOverlay(b *graph.Builder, extraEdges int, seed int64) {
	rnd := rand.New(rand.NewSource(seed))
	n := b.NumVertices()
	if n < 4 || extraEdges <= 0 {
		return
	}
	spent := 0
	group := make([]graph.V, 0, 40)
	for spent < extraEdges {
		size := 12 + rnd.Intn(29)
		if size > n {
			size = n
		}
		group = group[:0]
		for len(group) < size {
			group = append(group, graph.V(rnd.Intn(n)))
		}
		for i := 1; i < len(group); i++ {
			for j := 0; j < i; j++ {
				if rnd.Float64() < 0.55 {
					b.AddEdge(group[i], group[j])
					spent++
				}
			}
		}
	}
}

// SocialGraph composes PowerLawGraph and CommunityOverlay: a power-law
// backbone carrying ~72% of the edge budget plus dense planted groups for
// the rest. This is the generator dataset presets use.
func SocialGraph(n, m int, seed int64) *graph.Builder {
	backbone := int(float64(m) * 0.72)
	b := PowerLawGraph(n, backbone, seed)
	CommunityOverlay(b, m-backbone, seed+7)
	return b
}

// PlaceSpatial assigns a location to every vertex of the builder by BFS
// propagation (Section 5.1): seed vertices get uniform positions; each newly
// reached neighbor is placed at distance ~ N(mean, sigma) (truncated at 0)
// and uniform angle from its parent, clipped to [0,1]². Disconnected
// components each get their own uniform seed.
func PlaceSpatial(b *graph.Builder, mean, sigma float64, seed int64) {
	rnd := rand.New(rand.NewSource(seed))
	n := b.NumVertices()
	if n == 0 {
		return
	}
	// The builder has no adjacency yet (only the edge log), so build a
	// temporary adjacency for the BFS.
	g := b.Build()
	placed := make([]bool, n)
	queue := make([]graph.V, 0, n)
	for s := 0; s < n; s++ {
		if placed[s] {
			continue
		}
		p := geom.Point{X: rnd.Float64(), Y: rnd.Float64()}
		b.SetLoc(graph.V(s), p)
		placed[s] = true
		queue = append(queue[:0], graph.V(s))
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			vp := b.LocOf(v)
			for _, u := range g.Neighbors(v) {
				if placed[u] {
					continue
				}
				d := rnd.NormFloat64()*sigma + mean
				if d < 0 {
					d = -d
				}
				ang := rnd.Float64() * 2 * math.Pi
				up := geom.Point{
					X: clamp01(vp.X + d*math.Cos(ang)),
					Y: clamp01(vp.Y + d*math.Sin(ang)),
				}
				b.SetLoc(u, up)
				placed[u] = true
				queue = append(queue, u)
			}
		}
	}
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
