package core

import (
	"context"
	"errors"
	"fmt"
	"reflect"
	"sync"
	"testing"

	"sacsearch/internal/graph"
)

// TestSearchMatchesLegacyDifferential is the unified-API contract test:
// for every one of the six algorithms, Searcher.Search(ctx, Query) must
// return results identical to the legacy per-algorithm method — same
// members, same MCC, same δ — or fail with the same sentinel. The Search
// side runs on pooled workers across goroutines, so `go test -race` also
// proves the unified path is safe under the pool.
func TestSearchMatchesLegacyDifferential(t *testing.T) {
	g := clusteredGraph(17, 5, 7, 25)
	legacy := NewSearcher(g)
	pool := NewPool(NewSearcher(g))

	type variant struct {
		name   string
		query  Query // Q and K filled per case
		legacy func(q graph.V, k int) (*Result, error)
	}
	variants := []variant{
		{"exact", Query{Algo: "exact"},
			func(q graph.V, k int) (*Result, error) { return legacy.Exact(q, k) }},
		{"exact+", Query{Algo: "exact+", EpsA: Float(1e-3)},
			func(q graph.V, k int) (*Result, error) { return legacy.ExactPlus(q, k, 1e-3) }},
		{"appinc", Query{Algo: "appinc"},
			func(q graph.V, k int) (*Result, error) { return legacy.AppInc(q, k) }},
		{"appfast", Query{Algo: "appfast", EpsF: Float(0.5)},
			func(q graph.V, k int) (*Result, error) { return legacy.AppFast(q, k, 0.5) }},
		{"appacc", Query{Algo: "appacc", EpsA: Float(0.5)},
			func(q graph.V, k int) (*Result, error) { return legacy.AppAcc(q, k, 0.5) }},
		{"theta", Query{Algo: "theta", Theta: Float(0.3)},
			func(q graph.V, k int) (*Result, error) { return legacy.ThetaSAC(q, k, 0.3) }},
	}

	type testCase struct {
		variant
		q graph.V
		k int
	}
	var cases []testCase
	step := g.NumVertices() / 12
	if step < 1 {
		step = 1
	}
	for _, v := range variants {
		for q := 0; q < g.NumVertices(); q += step {
			for _, k := range []int{2, 4} {
				cases = append(cases, testCase{v, graph.V(q), k})
			}
		}
	}

	// Legacy answers first, serially, on their own searcher.
	type expectation struct {
		res *Result
		err error
	}
	want := make([]expectation, len(cases))
	for i, tc := range cases {
		res, err := tc.legacy(tc.q, tc.k)
		want[i] = expectation{res, err}
	}

	// Unified answers concurrently on pooled workers.
	got := make([]expectation, len(cases))
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			ws := pool.Get()
			defer pool.Put(ws)
			for i := w; i < len(cases); i += 4 {
				cq := cases[i].query
				cq.Q, cq.K = cases[i].q, cases[i].k
				res, err := ws.Search(context.Background(), cq)
				got[i] = expectation{res, err}
			}
		}(w)
	}
	wg.Wait()

	for i, tc := range cases {
		label := fmt.Sprintf("%s q=%d k=%d", tc.name, tc.q, tc.k)
		w, g := want[i], got[i]
		if (w.err == nil) != (g.err == nil) {
			t.Fatalf("%s: legacy err = %v, Search err = %v", label, w.err, g.err)
		}
		if w.err != nil {
			if !errors.Is(g.err, ErrNoCommunity) || !errors.Is(w.err, ErrNoCommunity) {
				t.Fatalf("%s: error mismatch: legacy %v, Search %v", label, w.err, g.err)
			}
			continue
		}
		if !reflect.DeepEqual(w.res.Members, g.res.Members) {
			t.Fatalf("%s: members differ:\nlegacy %v\nsearch %v", label, w.res.Members, g.res.Members)
		}
		if w.res.MCC != g.res.MCC || w.res.Delta != g.res.Delta {
			t.Fatalf("%s: geometry differs: legacy MCC %+v δ %v, search MCC %+v δ %v",
				label, w.res.MCC, w.res.Delta, g.res.MCC, g.res.Delta)
		}
		if w.res.Query != g.res.Query || w.res.K != g.res.K {
			t.Fatalf("%s: echo differs: legacy (%d,%d), search (%d,%d)",
				label, w.res.Query, w.res.K, g.res.Query, g.res.K)
		}
	}
}
