// Package ktruss implements the k-truss substrate. The paper notes (Sections
// 1 and 3) that the minimum-degree structure cohesiveness of SAC search "can
// be easily replaced by other metrics like k-truss"; this package provides
// that replacement: a truss decomposition of the whole graph and a restricted
// checker that answers "does G[S] contain a connected k-truss with q?".
//
// A k-truss is a subgraph in which every edge participates in at least k-2
// triangles of the subgraph. We use plain vertex connectivity for the
// "connected" requirement (Huang et al. [19] use triangle connectivity; for
// the community shapes exercised here the two coincide on all fixtures, and
// vertex connectivity matches the k-core variant's semantics).
package ktruss

import (
	"sort"

	"sacsearch/internal/graph"
)

// edgeKey packs an undirected edge (u < v) into one comparable value.
func edgeKey(u, v graph.V) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(uint32(u))<<32 | uint64(uint32(v))
}

// Decompose returns the truss number of every undirected edge of g, as a map
// from packed edge key to truss number. Edges in no triangle have truss 2.
func Decompose(g *graph.Graph) map[uint64]int32 {
	type edge struct {
		u, v graph.V
	}
	var edges []edge
	n := g.NumVertices()
	for u := 0; u < n; u++ {
		for _, v := range g.Neighbors(graph.V(u)) {
			if graph.V(u) < v {
				edges = append(edges, edge{graph.V(u), v})
			}
		}
	}
	sup := make(map[uint64]int32, len(edges))
	alive := make(map[uint64]bool, len(edges))
	for _, e := range edges {
		s := int32(countCommon(g, e.u, e.v, nil))
		sup[edgeKey(e.u, e.v)] = s
		alive[edgeKey(e.u, e.v)] = true
	}
	truss := make(map[uint64]int32, len(edges))

	// Peel edges in increasing support order. A simple re-sorted loop is
	// O(m² log m) worst case but the graphs fed to the truss extension are
	// community sized; the whole-graph decomposition is only used on the
	// moderate fixtures and datasets.
	remaining := make([]edge, len(edges))
	copy(remaining, edges)
	k := int32(2)
	for len(remaining) > 0 {
		// Remove all edges with support <= k-2, cascading.
		progress := true
		for progress {
			progress = false
			keep := remaining[:0]
			for _, e := range remaining {
				key := edgeKey(e.u, e.v)
				if sup[key] <= k-2 {
					truss[key] = k
					alive[key] = false
					progress = true
					// Decrement support of the other two edges of each
					// triangle through this edge.
					forEachCommon(g, e.u, e.v, func(w graph.V) {
						k1 := edgeKey(e.u, w)
						k2 := edgeKey(e.v, w)
						if alive[k1] && alive[k2] {
							sup[k1]--
							sup[k2]--
						}
					})
				} else {
					keep = append(keep, e)
				}
			}
			remaining = keep
		}
		k++
	}
	return truss
}

// countCommon returns |nb(u) ∩ nb(v)|, optionally restricted to the marker.
func countCommon(g *graph.Graph, u, v graph.V, within *graph.Marker) int {
	a := g.Neighbors(u)
	b := g.Neighbors(v)
	i, j, c := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			if within == nil || within.Has(a[i]) {
				c++
			}
			i++
			j++
		}
	}
	return c
}

// forEachCommon invokes fn for every common neighbor of u and v.
func forEachCommon(g *graph.Graph, u, v graph.V, fn func(w graph.V)) {
	a := g.Neighbors(u)
	b := g.Neighbors(v)
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			fn(a[i])
			i++
			j++
		}
	}
}

// CommunityOf returns the vertices of the connected k-truss containing q
// (edges with truss ≥ k, vertices reached from q through them), or nil when
// q is incident to no such edge. truss must come from Decompose(g). For k<=2
// every edge qualifies, so the result is q's connected component (or nil if
// q is isolated).
func CommunityOf(g *graph.Graph, truss map[uint64]int32, q graph.V, k int) []graph.V {
	hasEdge := false
	for _, u := range g.Neighbors(q) {
		if truss[edgeKey(q, u)] >= int32(k) {
			hasEdge = true
			break
		}
	}
	if !hasEdge {
		return nil
	}
	n := g.NumVertices()
	visited := graph.NewMarker(n)
	visited.Mark(q)
	out := []graph.V{q}
	for head := 0; head < len(out); head++ {
		v := out[head]
		for _, u := range g.Neighbors(v) {
			if !visited.Has(u) && truss[edgeKey(v, u)] >= int32(k) {
				visited.Mark(u)
				out = append(out, u)
			}
		}
	}
	return out
}

// Checker answers restricted truss feasibility queries, mirroring
// kcore.Peeler: given candidate set S and query q, return the connected
// k-truss of G[S] containing q, or nil. It holds scratch space; not safe for
// concurrent use.
type Checker struct {
	g       *graph.Graph
	inS     *graph.Marker
	visited *graph.Marker
	sup     map[uint64]int32
	alive   map[uint64]bool
	queue   []uint64
	comp    []graph.V
}

// NewChecker creates a Checker for g.
func NewChecker(g *graph.Graph) *Checker {
	n := g.NumVertices()
	return &Checker{
		g:       g,
		inS:     graph.NewMarker(n),
		visited: graph.NewMarker(n),
		sup:     make(map[uint64]int32),
		alive:   make(map[uint64]bool),
	}
}

// SetGraph rebinds the Checker to another graph with the same vertex count
// (snapshot serving hands workers freshly published clones). A different
// vertex count panics.
func (c *Checker) SetGraph(g *graph.Graph) {
	if g.NumVertices() != c.inS.Len() {
		panic("ktruss: SetGraph with a different vertex count")
	}
	c.g = g
}

// KTrussWithin returns the vertices of the connected k-truss of G[S]
// containing q, or nil. The returned slice is owned by the Checker until the
// next call.
func (c *Checker) KTrussWithin(S []graph.V, q graph.V, k int) []graph.V {
	g := c.g
	c.inS.Reset()
	qSeen := false
	for _, v := range S {
		c.inS.Mark(v)
		if v == q {
			qSeen = true
		}
	}
	if !qSeen {
		return nil
	}
	// Support of every edge of G[S].
	clear(c.sup)
	clear(c.alive)
	c.queue = c.queue[:0]
	for _, u := range S {
		for _, v := range g.Neighbors(u) {
			if u < v && c.inS.Has(v) {
				key := edgeKey(u, v)
				s := int32(countCommon(g, u, v, c.inS))
				c.sup[key] = s
				c.alive[key] = true
				if s < int32(k)-2 {
					c.queue = append(c.queue, key)
				}
			}
		}
	}
	// Peel edges with support < k-2.
	for head := 0; head < len(c.queue); head++ {
		key := c.queue[head]
		if !c.alive[key] {
			continue
		}
		c.alive[key] = false
		u := graph.V(key >> 32)
		v := graph.V(key & 0xffffffff)
		forEachCommon(g, u, v, func(w graph.V) {
			if !c.inS.Has(w) {
				return
			}
			k1 := edgeKey(u, w)
			k2 := edgeKey(v, w)
			if c.alive[k1] && c.alive[k2] {
				c.sup[k1]--
				if c.sup[k1] < int32(k)-2 {
					c.queue = append(c.queue, k1)
				}
				c.sup[k2]--
				if c.sup[k2] < int32(k)-2 {
					c.queue = append(c.queue, k2)
				}
			}
		})
	}
	// BFS from q over surviving edges.
	hasEdge := false
	for _, u := range g.Neighbors(q) {
		if c.inS.Has(u) && c.alive[edgeKey(q, u)] {
			hasEdge = true
			break
		}
	}
	if !hasEdge {
		return nil
	}
	c.visited.Reset()
	c.visited.Mark(q)
	c.comp = append(c.comp[:0], q)
	for head := 0; head < len(c.comp); head++ {
		v := c.comp[head]
		for _, u := range g.Neighbors(v) {
			if c.inS.Has(u) && !c.visited.Has(u) && c.alive[edgeKey(v, u)] {
				c.visited.Mark(u)
				c.comp = append(c.comp, u)
			}
		}
	}
	return c.comp
}

// TrussNumbers returns the sorted distinct truss values present in a
// decomposition — handy for tests and reporting.
func TrussNumbers(truss map[uint64]int32) []int32 {
	seen := map[int32]bool{}
	for _, t := range truss {
		seen[t] = true
	}
	out := make([]int32, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
