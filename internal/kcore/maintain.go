package kcore

import (
	"sacsearch/internal/graph"
)

// Incremental core maintenance. Re-peeling the whole graph after every edge
// change costs O(m); the streaming insight (Sarıyüce et al., "Streaming
// Algorithms for k-Core Decomposition") is that one edge change moves core
// numbers by at most 1, and only within the subcore — the set of vertices
// with core number K = min(core(u), core(v)) reachable from the changed
// edge's endpoints through vertices of core exactly K. A Maintainer walks
// that subcore, recomputes support locally, and promotes or demotes just the
// vertices whose numbers actually change, so maintenance cost tracks the
// size of the affected community rather than the graph.
//
// The Maintainer updates the core slice in place. That slice may be shared —
// core.Searcher clones share one decomposition — so a single Maintainer
// update under the owner's write lock refreshes every searcher at once.

// Maintainer keeps a core decomposition current across edge insertions and
// removals. It owns scratch sized to the graph, so repeated updates do not
// allocate; it is not safe for concurrent use (callers serialize updates
// with queries, e.g. via the server's write lock).
type Maintainer struct {
	g    *graph.Graph
	core []int32

	cd      []int32       // candidate support counters
	inC     *graph.Marker // candidate-set membership
	cand    []graph.V     // candidate set (BFS order)
	queue   []graph.V     // BFS / peeling queue
	visited *graph.Marker
}

// NewMaintainer wraps g's existing decomposition. core must be the output of
// Decompose for g's current topology (len n); it is updated in place by
// InsertEdge/RemoveEdge, so slices shared with other consumers stay current.
func NewMaintainer(g *graph.Graph, core []int32) *Maintainer {
	n := g.NumVertices()
	return &Maintainer{
		g:       g,
		core:    core,
		cd:      make([]int32, n),
		inC:     graph.NewMarker(n),
		cand:    make([]graph.V, 0, 256),
		queue:   make([]graph.V, 0, 256),
		visited: graph.NewMarker(n),
	}
}

// Core returns the maintained core-number slice (shared, updated in place).
func (m *Maintainer) Core() []int32 { return m.core }

// InsertEdge adds {u, v} to the graph and incrementally updates core
// numbers. It reports whether the edge set changed (false for self-loops and
// already-present edges, which leave the decomposition untouched).
func (m *Maintainer) InsertEdge(u, v graph.V) bool {
	if !m.g.AddEdge(u, v) {
		return false
	}
	// Only vertices with core number K = min(core(u), core(v)) can be
	// promoted, and the promoted set is connected to the new edge through
	// core-K vertices: collect it by BFS from whichever endpoints sit at K.
	k := m.core[u]
	if m.core[v] < k {
		k = m.core[v]
	}
	m.collectSubcore(k, u, v)

	// Support within the candidate set: a candidate reaches core K+1 iff it
	// keeps ≥ K+1 neighbors that will also have core ≥ K+1 — neighbors
	// already above K, or fellow candidates that survive. Peel candidates
	// whose support falls below K+1; survivors are promoted.
	m.queue = m.queue[:0]
	for _, c := range m.cand {
		d := int32(0)
		for _, w := range m.g.Neighbors(c) {
			if m.core[w] > k || m.inC.Has(w) {
				d++
			}
		}
		m.cd[c] = d
		if d < k+1 {
			m.queue = append(m.queue, c)
		}
	}
	for head := 0; head < len(m.queue); head++ {
		c := m.queue[head]
		if !m.inC.Has(c) {
			continue
		}
		m.inC.Unmark(c)
		for _, w := range m.g.Neighbors(c) {
			if m.inC.Has(w) {
				m.cd[w]--
				if m.cd[w] == k {
					m.queue = append(m.queue, w)
				}
			}
		}
	}
	for _, c := range m.cand {
		if m.inC.Has(c) {
			m.core[c] = k + 1
		}
	}
	return true
}

// RemoveEdge deletes {u, v} from the graph and incrementally updates core
// numbers. It reports whether the edge existed.
func (m *Maintainer) RemoveEdge(u, v graph.V) bool {
	ku, kv := int32(0), int32(0)
	if u != v && u >= 0 && v >= 0 && int(u) < m.g.NumVertices() && int(v) < m.g.NumVertices() {
		ku, kv = m.core[u], m.core[v]
	}
	if !m.g.RemoveEdge(u, v) {
		return false
	}
	k := ku
	if kv < k {
		k = kv
	}
	// Only core-K vertices connected to an endpoint through core-K vertices
	// can be demoted (an endpoint above K never counted the other towards
	// its support). The demotion cascade stays inside that subcore.
	m.collectSubcore(k, u, v)

	// A candidate keeps core K iff it retains ≥ K neighbors of core ≥ K;
	// demotions cascade through the candidate set. Demoted vertices land at
	// exactly K-1 (a single edge removal moves core numbers by at most 1).
	m.queue = m.queue[:0]
	for _, c := range m.cand {
		d := int32(0)
		for _, w := range m.g.Neighbors(c) {
			if m.core[w] >= k {
				d++
			}
		}
		m.cd[c] = d
		if d < k {
			m.queue = append(m.queue, c)
		}
	}
	for head := 0; head < len(m.queue); head++ {
		c := m.queue[head]
		if !m.inC.Has(c) {
			continue
		}
		m.inC.Unmark(c)
		m.core[c] = k - 1
		for _, w := range m.g.Neighbors(c) {
			if m.inC.Has(w) {
				m.cd[w]--
				if m.cd[w] == k-1 {
					m.queue = append(m.queue, w)
				}
			}
		}
	}
	return true
}

// collectSubcore fills cand/inC with the vertices of core number exactly k
// reachable from the endpoints (those at k) through core-k vertices, in the
// graph's current topology.
func (m *Maintainer) collectSubcore(k int32, u, v graph.V) {
	m.inC.Reset()
	m.visited.Reset()
	m.cand = m.cand[:0]
	m.queue = m.queue[:0]
	for _, r := range [2]graph.V{u, v} {
		if m.core[r] == k && !m.visited.Has(r) {
			m.visited.Mark(r)
			m.queue = append(m.queue, r)
		}
	}
	for head := 0; head < len(m.queue); head++ {
		c := m.queue[head]
		m.inC.Mark(c)
		m.cand = append(m.cand, c)
		for _, w := range m.g.Neighbors(c) {
			if m.core[w] == k && !m.visited.Has(w) {
				m.visited.Mark(w)
				m.queue = append(m.queue, w)
			}
		}
	}
}
